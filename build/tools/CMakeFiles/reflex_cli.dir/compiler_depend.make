# Empty compiler generated dependencies file for reflex_cli.
# This may be replaced when dependencies are built.
