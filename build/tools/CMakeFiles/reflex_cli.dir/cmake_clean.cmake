file(REMOVE_RECURSE
  "CMakeFiles/reflex_cli.dir/reflex_cli.cc.o"
  "CMakeFiles/reflex_cli.dir/reflex_cli.cc.o.d"
  "reflex"
  "reflex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reflex_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
