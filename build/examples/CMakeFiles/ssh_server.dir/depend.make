# Empty dependencies file for ssh_server.
# This may be replaced when dependencies are built.
