file(REMOVE_RECURSE
  "CMakeFiles/ssh_server.dir/ssh_server.cpp.o"
  "CMakeFiles/ssh_server.dir/ssh_server.cpp.o.d"
  "ssh_server"
  "ssh_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssh_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
