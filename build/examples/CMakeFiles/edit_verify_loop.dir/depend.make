# Empty dependencies file for edit_verify_loop.
# This may be replaced when dependencies are built.
