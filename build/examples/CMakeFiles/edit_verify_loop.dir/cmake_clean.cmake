file(REMOVE_RECURSE
  "CMakeFiles/edit_verify_loop.dir/edit_verify_loop.cpp.o"
  "CMakeFiles/edit_verify_loop.dir/edit_verify_loop.cpp.o.d"
  "edit_verify_loop"
  "edit_verify_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edit_verify_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
