# Empty compiler generated dependencies file for web_browser.
# This may be replaced when dependencies are built.
