file(REMOVE_RECURSE
  "CMakeFiles/web_browser.dir/web_browser.cpp.o"
  "CMakeFiles/web_browser.dir/web_browser.cpp.o.d"
  "web_browser"
  "web_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
