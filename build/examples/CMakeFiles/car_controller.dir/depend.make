# Empty dependencies file for car_controller.
# This may be replaced when dependencies are built.
