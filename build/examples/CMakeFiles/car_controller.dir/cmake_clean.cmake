file(REMOVE_RECURSE
  "CMakeFiles/car_controller.dir/car_controller.cpp.o"
  "CMakeFiles/car_controller.dir/car_controller.cpp.o.d"
  "car_controller"
  "car_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/car_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
