# Empty dependencies file for web_server.
# This may be replaced when dependencies are built.
