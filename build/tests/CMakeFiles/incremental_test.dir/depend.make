# Empty dependencies file for incremental_test.
# This may be replaced when dependencies are built.
