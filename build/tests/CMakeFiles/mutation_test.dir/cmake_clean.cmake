file(REMOVE_RECURSE
  "CMakeFiles/mutation_test.dir/mutation_test.cc.o"
  "CMakeFiles/mutation_test.dir/mutation_test.cc.o.d"
  "mutation_test"
  "mutation_test.pdb"
  "mutation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
