file(REMOVE_RECURSE
  "CMakeFiles/bmc_test.dir/bmc_test.cc.o"
  "CMakeFiles/bmc_test.dir/bmc_test.cc.o.d"
  "bmc_test"
  "bmc_test.pdb"
  "bmc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
