# Empty compiler generated dependencies file for bmc_test.
# This may be replaced when dependencies are built.
