# Empty dependencies file for symexec_test.
# This may be replaced when dependencies are built.
