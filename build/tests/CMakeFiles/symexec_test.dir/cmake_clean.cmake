file(REMOVE_RECURSE
  "CMakeFiles/symexec_test.dir/symexec_test.cc.o"
  "CMakeFiles/symexec_test.dir/symexec_test.cc.o.d"
  "symexec_test"
  "symexec_test.pdb"
  "symexec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symexec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
