# Empty compiler generated dependencies file for term_test.
# This may be replaced when dependencies are built.
