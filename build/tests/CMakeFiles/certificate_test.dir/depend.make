# Empty dependencies file for certificate_test.
# This may be replaced when dependencies are built.
