file(REMOVE_RECURSE
  "CMakeFiles/certificate_test.dir/certificate_test.cc.o"
  "CMakeFiles/certificate_test.dir/certificate_test.cc.o.d"
  "certificate_test"
  "certificate_test.pdb"
  "certificate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certificate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
