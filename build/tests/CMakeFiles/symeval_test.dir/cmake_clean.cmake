file(REMOVE_RECURSE
  "CMakeFiles/symeval_test.dir/symeval_test.cc.o"
  "CMakeFiles/symeval_test.dir/symeval_test.cc.o.d"
  "symeval_test"
  "symeval_test.pdb"
  "symeval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symeval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
