# Empty compiler generated dependencies file for symeval_test.
# This may be replaced when dependencies are built.
