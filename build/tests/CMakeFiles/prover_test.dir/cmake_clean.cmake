file(REMOVE_RECURSE
  "CMakeFiles/prover_test.dir/prover_test.cc.o"
  "CMakeFiles/prover_test.dir/prover_test.cc.o.d"
  "prover_test"
  "prover_test.pdb"
  "prover_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
