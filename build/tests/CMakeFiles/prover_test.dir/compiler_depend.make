# Empty compiler generated dependencies file for prover_test.
# This may be replaced when dependencies are built.
