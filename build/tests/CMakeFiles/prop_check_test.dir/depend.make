# Empty dependencies file for prop_check_test.
# This may be replaced when dependencies are built.
