file(REMOVE_RECURSE
  "CMakeFiles/prop_check_test.dir/prop_check_test.cc.o"
  "CMakeFiles/prop_check_test.dir/prop_check_test.cc.o.d"
  "prop_check_test"
  "prop_check_test.pdb"
  "prop_check_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
