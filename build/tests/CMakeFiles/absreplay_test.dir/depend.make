# Empty dependencies file for absreplay_test.
# This may be replaced when dependencies are built.
