file(REMOVE_RECURSE
  "CMakeFiles/absreplay_test.dir/absreplay_test.cc.o"
  "CMakeFiles/absreplay_test.dir/absreplay_test.cc.o.d"
  "absreplay_test"
  "absreplay_test.pdb"
  "absreplay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/absreplay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
