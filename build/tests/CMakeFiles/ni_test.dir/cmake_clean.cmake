file(REMOVE_RECURSE
  "CMakeFiles/ni_test.dir/ni_test.cc.o"
  "CMakeFiles/ni_test.dir/ni_test.cc.o.d"
  "ni_test"
  "ni_test.pdb"
  "ni_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ni_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
