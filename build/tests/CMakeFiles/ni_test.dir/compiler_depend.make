# Empty compiler generated dependencies file for ni_test.
# This may be replaced when dependencies are built.
