# Empty compiler generated dependencies file for reference_semantics_test.
# This may be replaced when dependencies are built.
