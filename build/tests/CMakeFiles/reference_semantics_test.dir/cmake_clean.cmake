file(REMOVE_RECURSE
  "CMakeFiles/reference_semantics_test.dir/reference_semantics_test.cc.o"
  "CMakeFiles/reference_semantics_test.dir/reference_semantics_test.cc.o.d"
  "reference_semantics_test"
  "reference_semantics_test.pdb"
  "reference_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reference_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
