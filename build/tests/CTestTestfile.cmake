# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/value_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/validate_test[1]_include.cmake")
include("/root/repo/build/tests/pattern_test[1]_include.cmake")
include("/root/repo/build/tests/prop_check_test[1]_include.cmake")
include("/root/repo/build/tests/roundtrip_test[1]_include.cmake")
include("/root/repo/build/tests/term_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/symexec_test[1]_include.cmake")
include("/root/repo/build/tests/prover_test[1]_include.cmake")
include("/root/repo/build/tests/ni_test[1]_include.cmake")
include("/root/repo/build/tests/certificate_test[1]_include.cmake")
include("/root/repo/build/tests/bmc_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/absreplay_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_test[1]_include.cmake")
include("/root/repo/build/tests/refinement_test[1]_include.cmake")
include("/root/repo/build/tests/mutation_test[1]_include.cmake")
include("/root/repo/build/tests/synthetic_test[1]_include.cmake")
include("/root/repo/build/tests/symeval_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/incremental_test[1]_include.cmake")
include("/root/repo/build/tests/reference_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
