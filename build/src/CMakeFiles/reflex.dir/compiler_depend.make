# Empty compiler generated dependencies file for reflex.
# This may be replaced when dependencies are built.
