file(REMOVE_RECURSE
  "libreflex.a"
)
