# Empty dependencies file for reflex.
# This may be replaced when dependencies are built.
