
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/cmd.cc" "src/CMakeFiles/reflex.dir/ast/cmd.cc.o" "gcc" "src/CMakeFiles/reflex.dir/ast/cmd.cc.o.d"
  "/root/repo/src/ast/expr.cc" "src/CMakeFiles/reflex.dir/ast/expr.cc.o" "gcc" "src/CMakeFiles/reflex.dir/ast/expr.cc.o.d"
  "/root/repo/src/ast/printer.cc" "src/CMakeFiles/reflex.dir/ast/printer.cc.o" "gcc" "src/CMakeFiles/reflex.dir/ast/printer.cc.o.d"
  "/root/repo/src/ast/program.cc" "src/CMakeFiles/reflex.dir/ast/program.cc.o" "gcc" "src/CMakeFiles/reflex.dir/ast/program.cc.o.d"
  "/root/repo/src/ast/types.cc" "src/CMakeFiles/reflex.dir/ast/types.cc.o" "gcc" "src/CMakeFiles/reflex.dir/ast/types.cc.o.d"
  "/root/repo/src/ast/validate.cc" "src/CMakeFiles/reflex.dir/ast/validate.cc.o" "gcc" "src/CMakeFiles/reflex.dir/ast/validate.cc.o.d"
  "/root/repo/src/interp/evaluator.cc" "src/CMakeFiles/reflex.dir/interp/evaluator.cc.o" "gcc" "src/CMakeFiles/reflex.dir/interp/evaluator.cc.o.d"
  "/root/repo/src/interp/runtime.cc" "src/CMakeFiles/reflex.dir/interp/runtime.cc.o" "gcc" "src/CMakeFiles/reflex.dir/interp/runtime.cc.o.d"
  "/root/repo/src/interp/scripts.cc" "src/CMakeFiles/reflex.dir/interp/scripts.cc.o" "gcc" "src/CMakeFiles/reflex.dir/interp/scripts.cc.o.d"
  "/root/repo/src/kernels/browser.cc" "src/CMakeFiles/reflex.dir/kernels/browser.cc.o" "gcc" "src/CMakeFiles/reflex.dir/kernels/browser.cc.o.d"
  "/root/repo/src/kernels/browser2.cc" "src/CMakeFiles/reflex.dir/kernels/browser2.cc.o" "gcc" "src/CMakeFiles/reflex.dir/kernels/browser2.cc.o.d"
  "/root/repo/src/kernels/browser3.cc" "src/CMakeFiles/reflex.dir/kernels/browser3.cc.o" "gcc" "src/CMakeFiles/reflex.dir/kernels/browser3.cc.o.d"
  "/root/repo/src/kernels/car.cc" "src/CMakeFiles/reflex.dir/kernels/car.cc.o" "gcc" "src/CMakeFiles/reflex.dir/kernels/car.cc.o.d"
  "/root/repo/src/kernels/kernels.cc" "src/CMakeFiles/reflex.dir/kernels/kernels.cc.o" "gcc" "src/CMakeFiles/reflex.dir/kernels/kernels.cc.o.d"
  "/root/repo/src/kernels/scripts.cc" "src/CMakeFiles/reflex.dir/kernels/scripts.cc.o" "gcc" "src/CMakeFiles/reflex.dir/kernels/scripts.cc.o.d"
  "/root/repo/src/kernels/ssh.cc" "src/CMakeFiles/reflex.dir/kernels/ssh.cc.o" "gcc" "src/CMakeFiles/reflex.dir/kernels/ssh.cc.o.d"
  "/root/repo/src/kernels/ssh2.cc" "src/CMakeFiles/reflex.dir/kernels/ssh2.cc.o" "gcc" "src/CMakeFiles/reflex.dir/kernels/ssh2.cc.o.d"
  "/root/repo/src/kernels/synthetic.cc" "src/CMakeFiles/reflex.dir/kernels/synthetic.cc.o" "gcc" "src/CMakeFiles/reflex.dir/kernels/synthetic.cc.o.d"
  "/root/repo/src/kernels/webserver.cc" "src/CMakeFiles/reflex.dir/kernels/webserver.cc.o" "gcc" "src/CMakeFiles/reflex.dir/kernels/webserver.cc.o.d"
  "/root/repo/src/parser/lexer.cc" "src/CMakeFiles/reflex.dir/parser/lexer.cc.o" "gcc" "src/CMakeFiles/reflex.dir/parser/lexer.cc.o.d"
  "/root/repo/src/parser/parser.cc" "src/CMakeFiles/reflex.dir/parser/parser.cc.o" "gcc" "src/CMakeFiles/reflex.dir/parser/parser.cc.o.d"
  "/root/repo/src/prop/check.cc" "src/CMakeFiles/reflex.dir/prop/check.cc.o" "gcc" "src/CMakeFiles/reflex.dir/prop/check.cc.o.d"
  "/root/repo/src/prop/property.cc" "src/CMakeFiles/reflex.dir/prop/property.cc.o" "gcc" "src/CMakeFiles/reflex.dir/prop/property.cc.o.d"
  "/root/repo/src/reflex/api.cc" "src/CMakeFiles/reflex.dir/reflex/api.cc.o" "gcc" "src/CMakeFiles/reflex.dir/reflex/api.cc.o.d"
  "/root/repo/src/support/diagnostics.cc" "src/CMakeFiles/reflex.dir/support/diagnostics.cc.o" "gcc" "src/CMakeFiles/reflex.dir/support/diagnostics.cc.o.d"
  "/root/repo/src/support/interner.cc" "src/CMakeFiles/reflex.dir/support/interner.cc.o" "gcc" "src/CMakeFiles/reflex.dir/support/interner.cc.o.d"
  "/root/repo/src/support/json.cc" "src/CMakeFiles/reflex.dir/support/json.cc.o" "gcc" "src/CMakeFiles/reflex.dir/support/json.cc.o.d"
  "/root/repo/src/support/strings.cc" "src/CMakeFiles/reflex.dir/support/strings.cc.o" "gcc" "src/CMakeFiles/reflex.dir/support/strings.cc.o.d"
  "/root/repo/src/sym/solver.cc" "src/CMakeFiles/reflex.dir/sym/solver.cc.o" "gcc" "src/CMakeFiles/reflex.dir/sym/solver.cc.o.d"
  "/root/repo/src/sym/symeval.cc" "src/CMakeFiles/reflex.dir/sym/symeval.cc.o" "gcc" "src/CMakeFiles/reflex.dir/sym/symeval.cc.o.d"
  "/root/repo/src/sym/term.cc" "src/CMakeFiles/reflex.dir/sym/term.cc.o" "gcc" "src/CMakeFiles/reflex.dir/sym/term.cc.o.d"
  "/root/repo/src/trace/action.cc" "src/CMakeFiles/reflex.dir/trace/action.cc.o" "gcc" "src/CMakeFiles/reflex.dir/trace/action.cc.o.d"
  "/root/repo/src/trace/pattern.cc" "src/CMakeFiles/reflex.dir/trace/pattern.cc.o" "gcc" "src/CMakeFiles/reflex.dir/trace/pattern.cc.o.d"
  "/root/repo/src/trace/value.cc" "src/CMakeFiles/reflex.dir/trace/value.cc.o" "gcc" "src/CMakeFiles/reflex.dir/trace/value.cc.o.d"
  "/root/repo/src/verify/absreplay.cc" "src/CMakeFiles/reflex.dir/verify/absreplay.cc.o" "gcc" "src/CMakeFiles/reflex.dir/verify/absreplay.cc.o.d"
  "/root/repo/src/verify/behabs.cc" "src/CMakeFiles/reflex.dir/verify/behabs.cc.o" "gcc" "src/CMakeFiles/reflex.dir/verify/behabs.cc.o.d"
  "/root/repo/src/verify/bmc.cc" "src/CMakeFiles/reflex.dir/verify/bmc.cc.o" "gcc" "src/CMakeFiles/reflex.dir/verify/bmc.cc.o.d"
  "/root/repo/src/verify/certificate.cc" "src/CMakeFiles/reflex.dir/verify/certificate.cc.o" "gcc" "src/CMakeFiles/reflex.dir/verify/certificate.cc.o.d"
  "/root/repo/src/verify/checker.cc" "src/CMakeFiles/reflex.dir/verify/checker.cc.o" "gcc" "src/CMakeFiles/reflex.dir/verify/checker.cc.o.d"
  "/root/repo/src/verify/incremental.cc" "src/CMakeFiles/reflex.dir/verify/incremental.cc.o" "gcc" "src/CMakeFiles/reflex.dir/verify/incremental.cc.o.d"
  "/root/repo/src/verify/invariant.cc" "src/CMakeFiles/reflex.dir/verify/invariant.cc.o" "gcc" "src/CMakeFiles/reflex.dir/verify/invariant.cc.o.d"
  "/root/repo/src/verify/ni.cc" "src/CMakeFiles/reflex.dir/verify/ni.cc.o" "gcc" "src/CMakeFiles/reflex.dir/verify/ni.cc.o.d"
  "/root/repo/src/verify/prover.cc" "src/CMakeFiles/reflex.dir/verify/prover.cc.o" "gcc" "src/CMakeFiles/reflex.dir/verify/prover.cc.o.d"
  "/root/repo/src/verify/symexec.cc" "src/CMakeFiles/reflex.dir/verify/symexec.cc.o" "gcc" "src/CMakeFiles/reflex.dir/verify/symexec.cc.o.d"
  "/root/repo/src/verify/symstate.cc" "src/CMakeFiles/reflex.dir/verify/symstate.cc.o" "gcc" "src/CMakeFiles/reflex.dir/verify/symstate.cc.o.d"
  "/root/repo/src/verify/verifier.cc" "src/CMakeFiles/reflex.dir/verify/verifier.cc.o" "gcc" "src/CMakeFiles/reflex.dir/verify/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
