file(REMOVE_RECURSE
  "CMakeFiles/bench_bughunt.dir/bench_bughunt.cc.o"
  "CMakeFiles/bench_bughunt.dir/bench_bughunt.cc.o.d"
  "bench_bughunt"
  "bench_bughunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bughunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
