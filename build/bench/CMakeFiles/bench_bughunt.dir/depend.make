# Empty dependencies file for bench_bughunt.
# This may be replaced when dependencies are built.
