//===- bench/bench_ablation.cc - §6.4 optimization ablation -----*- C++ -*-===//
//
// Reproduces the quantitative claims of §6.4: "we were able to obtain
// tremendous speedups (80x on average and over 1000x for some benchmarks)
// and radically reduce memory usage (5x on average and over 35x for some
// benchmarks) by implementing several optimizations, including
// domain-specific reduction strategies and skipping symbolic evaluation of
// handlers for which a simple syntactic check suffices (both benefits of
// LAC), and saving subproofs at key cut points."
//
// The three optimizations map onto three toggles:
//   syntactic-skip  -> VerifyOptions::SyntacticSkip
//   term reduction  -> VerifyOptions::Simplify (TermContext folding)
//   subproof cache  -> VerifyOptions::CacheInvariants (invariant proofs
//                      reused across obligations and properties)
//
// For each configuration the bench verifies all 41 properties repeatedly
// and reports wall-clock, solver work, and allocated term count (the
// memory proxy). Expected shape: the fully optimized configuration is the
// fastest and smallest; disabling everything costs a large multiplicative
// factor. Absolute factors differ from the paper's (different proof
// representation), the monotone ordering is the reproduced result.
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"
#include "kernels/synthetic.h"
#include "support/timer.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace reflex;

namespace {

struct Config {
  const char *Name;
  bool SyntacticSkip;
  bool Simplify;
  bool Cache;
};

struct Measurement {
  double Millis = 0;
  uint64_t SolverQueries = 0;
  size_t Terms = 0;
  bool AllProved = true;
};

Measurement measure(const Config &C, unsigned Repeats) {
  Measurement M;
  WallTimer Timer;
  for (unsigned I = 0; I < Repeats; ++I) {
    for (const kernels::KernelDef *K : kernels::all()) {
      ProgramPtr P = kernels::load(*K);
      VerifyOptions Opts;
      Opts.SyntacticSkip = C.SyntacticSkip;
      Opts.Simplify = C.Simplify;
      Opts.CacheInvariants = C.Cache;
      // The certificate checker re-runs the prover; keep it on (it is
      // part of the measured pipeline, like Coq's proof-term checking,
      // which the paper's time column also includes).
      VerificationReport R = verifyProgram(*P, Opts);
      M.AllProved &= R.allProved();
      M.SolverQueries += R.SolverQueries;
      M.Terms += R.TermCount;
    }
  }
  M.Millis = Timer.elapsedMillis() / Repeats;
  M.SolverQueries /= Repeats;
  M.Terms /= Repeats;
  return M;
}

} // namespace

int main() {
  const unsigned Repeats = 5;
  const std::vector<Config> Configs = {
      {"full (all optimizations)", true, true, true},
      {"no syntactic skip", false, true, true},
      {"no term reduction", true, false, true},
      {"no subproof cache", true, true, false},
      {"none (all disabled)", false, false, false},
  };

  std::printf("=== §6.4 ablation: proof-search optimizations ===\n");
  std::printf("(41 properties x %u repeats per configuration; times are "
              "per full 41-property run)\n\n",
              Repeats);
  std::printf("%-28s %12s %14s %12s %10s\n", "configuration", "time(ms)",
              "solver queries", "terms", "proved");

  std::vector<Measurement> Results;
  for (const Config &C : Configs) {
    Measurement M = measure(C, Repeats);
    Results.push_back(M);
    std::printf("%-28s %12.2f %14llu %12zu %10s\n", C.Name, M.Millis,
                static_cast<unsigned long long>(M.SolverQueries), M.Terms,
                M.AllProved ? "41/41" : "INCOMPLETE");
  }

  std::printf("\nsolver-work ratio on the 41 paper properties (none vs "
              "full): %.1fx\n",
              static_cast<double>(Results.back().SolverQueries) /
                  static_cast<double>(Results.front().SolverQueries));
  std::printf("(the paper kernels are small; the optimizations' large "
              "multiplicative wins appear at scale, below)\n");

  // ----- Scaling study: where the optimizations earn their keep ---------
  // Chain kernels grow the number of handlers and properties; the
  // syntactic skip turns the per-invariant induction from O(handlers)
  // symbolic work into O(1), and the subproof cache collapses the N
  // identical Marker invariants into one proof.
  std::printf("\n=== scaling: synthetic chain kernels ===\n");
  std::printf("%-8s %-28s %12s %14s %12s %8s\n", "stages", "configuration",
              "time(ms)", "solver queries", "terms", "proved");

  bool Shape = true;
  for (const Measurement &M : Results)
    Shape &= M.AllProved;

  double FullLast = 0, NoneLast = 0, NoSkipLast = 0, NoCacheLast = 0;
  uint64_t FullQ = 1, NoneQ = 1, NoCacheQ = 1;
  size_t FullTerms = 1, NoneTerms = 1;
  for (unsigned Stages : {8u, 16u, 32u}) {
    std::string Source = kernels::syntheticChainKernel(Stages);
    Result<ProgramPtr> P = loadProgram(Source, "chain");
    if (!P) {
      std::printf("chain kernel failed to load: %s\n", P.error().c_str());
      return 1;
    }
    for (const Config &C : Configs) {
      VerifyOptions Opts;
      Opts.SyntacticSkip = C.SyntacticSkip;
      Opts.Simplify = C.Simplify;
      Opts.CacheInvariants = C.Cache;
      WallTimer Timer;
      VerificationReport R = verifyProgram(**P, Opts);
      double Ms = Timer.elapsedMillis();
      Shape &= R.allProved();
      std::printf("%-8u %-28s %12.2f %14llu %12zu %8s\n", Stages, C.Name, Ms,
                  static_cast<unsigned long long>(R.SolverQueries),
                  R.TermCount, R.allProved() ? "all" : "INCOMPLETE");
      if (Stages == 32) {
        if (std::string(C.Name).rfind("full", 0) == 0) {
          FullLast = Ms;
          FullQ = R.SolverQueries;
          FullTerms = R.TermCount;
        } else if (std::string(C.Name) == "no syntactic skip") {
          NoSkipLast = Ms;
        } else if (std::string(C.Name) == "no subproof cache") {
          NoCacheLast = Ms;
          NoCacheQ = R.SolverQueries;
        } else if (std::string(C.Name).rfind("none", 0) == 0) {
          NoneLast = Ms;
          NoneQ = R.SolverQueries;
          NoneTerms = R.TermCount;
        }
      }
    }
  }

  std::printf("\n=== Summary (32-stage chain) ===\n");
  std::printf("speedup, full optimizations vs none:  %.1fx   (paper: 80x "
              "mean, >1000x max, vs unoptimized Ltac)\n",
              NoneLast / FullLast);
  std::printf("speedup from syntactic skip alone:    %.1fx\n",
              NoSkipLast / FullLast);
  std::printf("speedup from subproof cache alone:    %.1fx wall, %.1fx "
              "solver work\n",
              NoCacheLast / FullLast,
              static_cast<double>(NoCacheQ) / static_cast<double>(FullQ));
  std::printf("solver-work ratio (none vs full):     %.1fx\n",
              static_cast<double>(NoneQ) / static_cast<double>(FullQ));
  std::printf("term-allocation ratio (memory proxy): %.1fx   (paper: 5x "
              "mean, >35x max)\n",
              static_cast<double>(NoneTerms) /
                  static_cast<double>(FullTerms));

  Shape &= NoneLast > FullLast && NoSkipLast > FullLast;
  std::printf("\nshape: every configuration proves everything, and "
              "disabling optimizations costs a multiplicative factor that "
              "grows with program size: %s\n",
              Shape ? "yes" : "NO");
  return Shape ? 0 : 1;
}
