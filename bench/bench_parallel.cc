//===- bench/bench_parallel.cc - Parallel + cached verification -----------===//
//
// The verification-service bench: all seven kernels (41 properties)
// verified sequentially, then on N workers (shared frozen abstraction +
// cross-worker caches, with a sharing-off ablation row), then against a
// cold and a warm persistent proof cache — the warm cache measured twice,
// once with the full obligation-replay re-check and once on the fast
// hash-chain path against a freshly reopened cache (so the open-time
// preload index is exercised). Writes BENCH_parallel.json so later PRs
// can track the perf trajectory. Timings are medians over `reps`
// repetitions (medians resist scheduler noise; minima hide it), the
// sequential-vs-parallel speedups are medians of *paired*
// adjacent-batch ratios (neighboring batches see nearly the same
// machine, so container jitter cancels instead of masquerading as a
// speedup or slowdown), and speedups are reported to two decimals —
// the honest precision at this host's noise floor.
//
// Correctness gates (exit non-zero on failure):
//  * every parallel run's per-property statuses and reasons are identical
//    to the sequential run's (the scheduler's determinism contract);
//  * both warm-cache runs serve every property from the cache, with every
//    proved verdict re-validated (full replay resp. fast hash chain).
//
// Flags:
//   --jobs N    largest worker count to measure (default 4; 0 = cores)
//   --smoke     one repetition, no speedup expectations — the TSan
//               harness uses this to race-check the service cheaply
//   --out FILE  JSON output path (default BENCH_parallel.json)
//
//===----------------------------------------------------------------------===//

#include "bench_util.h"
#include "kernels/kernels.h"
#include "service/scheduler.h"
#include "service/threadpool.h"
#include "support/json.h"
#include "support/timer.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

using namespace reflex;

namespace {

struct Suite {
  std::vector<ProgramPtr> Owned;
  std::vector<const Program *> Programs;
};

Suite loadSuite() {
  Suite S;
  for (const kernels::KernelDef *K : kernels::all()) {
    S.Owned.push_back(kernels::load(*K));
    S.Programs.push_back(S.Owned.back().get());
  }
  return S;
}

/// Median wall clock over \p Runs repetitions (odd Runs → true median).
/// Medians, not minima: a minimum under-reports contended phases and can
/// even go negative in derived overhead percentages when noise exceeds
/// the effect; the median is a consistent estimator of the typical run.
double medianOverRuns(unsigned Runs,
                      const std::vector<const Program *> &Programs,
                      const SchedulerOptions &Opts, BatchOutcome *Last) {
  std::vector<double> Ms;
  Ms.reserve(Runs);
  for (unsigned I = 0; I < Runs; ++I) {
    BatchOutcome Out = verifyPrograms(Programs, Opts);
    Ms.push_back(Out.TotalMillis);
    if (Last)
      *Last = std::move(Out);
  }
  return benchutil::median(std::move(Ms));
}

} // namespace

int main(int Argc, char **Argv) {
  benchutil::BenchArgs BA;
  if (!benchutil::parseBenchArgs(Argc, Argv, "bench_parallel",
                                 "BENCH_parallel.json", {"--jobs"}, BA))
    return 2;
  unsigned MaxJobs = unsigned(BA.num("--jobs", 4));
  const bool Smoke = BA.Smoke;
  const std::string &OutPath = BA.OutPath;
  if (MaxJobs == 0)
    MaxJobs = ThreadPool::defaultWorkerCount();
  const unsigned Runs = Smoke ? 1 : 5;
  // Paired samples per repetition, and batches per sample: a speedup is
  // estimated from Runs * Inner paired ratios, each ratio formed from
  // two adjacent samples of Sub whole batches (median). A batch is a few
  // milliseconds, so even Runs * Inner * Sub batches per configuration
  // total a couple of seconds — cheap insurance against the container's
  // heavy-tailed scheduling noise.
  const unsigned Inner = Smoke ? 1 : 10;
  const unsigned Sub = Smoke ? 1 : 3;

  Suite S = loadSuite();
  std::printf("=== Parallel verification service: %zu kernels, %u "
              "properties ===\n\n",
              S.Programs.size(), kernels::totalProperties());

  // Measured configurations: the sequential baseline, the parallel sweep
  // (2, 4, ..., MaxJobs; dedup, ascending), and the sharing-off ablation
  // at the widest worker count (private per-worker abstractions and
  // caches, i.e. the pre-sharing scheduler; recorded, not gated).
  std::vector<unsigned> JobCounts;
  for (unsigned J = 2; J < MaxJobs; J *= 2)
    JobCounts.push_back(J);
  if (MaxJobs >= 2)
    JobCounts.push_back(MaxJobs);

  // Paired batches: every parallel configuration is measured as a series
  // of (sequential batch, parallel batch) pairs run back to back, and its
  // speedup is the median of the per-pair ratios over all Runs * Inner
  // pairs. Container jitter on this host is batch-scale (a batch is a
  // few milliseconds; neighboring batches see nearly the same machine,
  // batches seconds apart do not), so pairing at the batch level is what
  // actually cancels it — ratios of phase medians measured far apart
  // absorb the drift between the phases. Within a pair the order
  // alternates (seq-then-par, par-then-seq), so any systematic
  // first-vs-second-of-pair effect cancels too.
  SchedulerOptions Seq;
  Seq.Jobs = 1;
  verifyPrograms(S.Programs, Seq); // untimed warm-up
  std::vector<double> SeqSamples;
  BatchOutcome SeqOut;
  std::vector<benchutil::PairedSamples> ParPairs(JobCounts.size());
  std::vector<BatchOutcome> ParOut(JobCounts.size());
  std::vector<double> NoShareSamples;
  BatchOutcome NoShareOut;
  for (size_t JI = 0; JI < JobCounts.size(); ++JI) {
    SchedulerOptions Par;
    Par.Jobs = JobCounts[JI];
    ParPairs[JI] = benchutil::measurePaired(
        Runs * Inner,
        [&] { return medianOverRuns(Sub, S.Programs, Seq, &SeqOut); },
        [&] { return medianOverRuns(Sub, S.Programs, Par, &ParOut[JI]); });
    SeqSamples.insert(SeqSamples.end(), ParPairs[JI].NumMs.begin(),
                      ParPairs[JI].NumMs.end());
  }
  if (JobCounts.empty())
    for (unsigned R = 0; R < Runs * Inner; ++R)
      SeqSamples.push_back(medianOverRuns(Sub, S.Programs, Seq, &SeqOut));
  if (MaxJobs >= 2) {
    SchedulerOptions NS;
    NS.Jobs = MaxJobs;
    NS.SharedCaches = false;
    for (unsigned R = 0; R < Runs * Inner; ++R)
      NoShareSamples.push_back(
          medianOverRuns(Sub, S.Programs, NS, &NoShareOut));
  }

  double SeqMs = benchutil::median(SeqSamples);
  auto SeqVerdicts = benchutil::flatVerdicts(SeqOut);
  std::printf("%-24s %10.2f ms   (%u/%u proved)\n", "sequential (1 worker)",
              SeqMs, SeqOut.provedCount(), SeqOut.propertyCount());

  struct ParallelRow {
    unsigned Jobs;
    double Ms;
    double Speedup;
  };
  std::vector<ParallelRow> Rows;
  bool Deterministic = true;
  for (size_t JI = 0; JI < JobCounts.size(); ++JI) {
    unsigned J = JobCounts[JI];
    if (benchutil::flatVerdicts(ParOut[JI]) != SeqVerdicts) {
      std::fprintf(stderr,
                   "FAIL: %u-worker verdicts differ from sequential\n", J);
      Deterministic = false;
    }
    double Ms = ParPairs[JI].denMedian();
    double Speedup = ParPairs[JI].speedup();
    Rows.push_back({J, Ms, Speedup});
    char Label[64];
    std::snprintf(Label, sizeof(Label), "parallel (%u workers)", J);
    std::printf("%-24s %10.2f ms   %.2fx\n", Label, Ms, Speedup);
  }

  double NoShareMs = 0;
  if (MaxJobs >= 2) {
    NoShareMs = benchutil::median(NoShareSamples);
    if (benchutil::flatVerdicts(NoShareOut) != SeqVerdicts) {
      std::fprintf(stderr, "FAIL: sharing-off verdicts differ from "
                           "sequential\n");
      Deterministic = false;
    }
    char Label[64];
    std::snprintf(Label, sizeof(Label), "no-share (%u workers)", MaxJobs);
    std::printf("%-24s %10.2f ms   %.2fx\n", Label, NoShareMs,
                NoShareMs > 0 ? SeqMs / NoShareMs : 0);
  }

  // Proof cache: cold populate, then two warm phases that must serve all
  // 41 verdicts from disk — first with the full obligation-replay
  // re-check, then on the fast hash-chain path against a *reopened*
  // cache, so the open-time preload index (one stat+read pass) is what
  // serves the hits. The fast phase is the headline warm number: it is
  // the steady state of an incremental re-verification service.
  std::filesystem::path CacheDir =
      std::filesystem::temp_directory_path() /
      ("reflex-bench-cache-" + std::to_string(::getpid()));
  double ColdMs = 0, WarmFullMs = 0, WarmFastMs = 0;
  // Per-phase costs inside the warm lookups (last measured batch): JSON
  // decode of the cached entries vs certificate re-validation. With the
  // content-keyed re-check memo, a warm steady-state batch replays no
  // certificate it has already replayed this process, so the full-path
  // recheck_ms collapses after the first warm batch.
  double WarmDecodeMs = 0, WarmRecheckMs = 0;
  double FastDecodeMs = 0, FastRecheckMs = 0;
  uint64_t WarmHits = 0, WarmRejected = 0, FastHits = 0;
  bool WarmAllCached = false, FastAllCached = false;
  {
    Result<std::unique_ptr<ProofCache>> Cache =
        ProofCache::open(CacheDir.string());
    if (!Cache.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", Cache.error().c_str());
      return 1;
    }
    SchedulerOptions Cached;
    Cached.Jobs = MaxJobs;
    Cached.Cache = Cache->get();
    BatchOutcome Cold = verifyPrograms(S.Programs, Cached);
    ColdMs = Cold.TotalMillis;
    BatchOutcome Warm;
    WarmFullMs = medianOverRuns(Runs, S.Programs, Cached, &Warm);
    WarmHits = Warm.CacheStats.Hits;
    WarmRejected = Warm.CacheStats.Rejected;
    WarmDecodeMs = Warm.CacheStats.DecodeMillis;
    WarmRecheckMs = Warm.CacheStats.RecheckMillis;
    WarmAllCached = WarmHits == Warm.propertyCount();
    for (const VerificationReport &R : Warm.Reports)
      for (const PropertyResult &PR : R.Results)
        if (PR.Status == VerifyStatus::Proved && !PR.CertChecked)
          WarmAllCached = false;
    if (benchutil::flatVerdicts(Warm) != SeqVerdicts) {
      std::fprintf(stderr, "FAIL: warm-cache verdicts differ from "
                           "sequential\n");
      Deterministic = false;
    }
    std::printf("%-24s %10.2f ms\n", "cache cold (populate)", ColdMs);
    std::printf("%-24s %10.2f ms   %.2fx vs sequential, %llu/%u from "
                "cache\n",
                "cache warm (full)", WarmFullMs,
                WarmFullMs > 0 ? SeqMs / WarmFullMs : 0,
                (unsigned long long)WarmHits, Warm.propertyCount());
    std::printf("%-24s decode %.2f ms, re-check %.2f ms\n", "",
                WarmDecodeMs, WarmRecheckMs);
  }
  {
    Result<std::unique_ptr<ProofCache>> Cache =
        ProofCache::open(CacheDir.string());
    if (!Cache.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", Cache.error().c_str());
      return 1;
    }
    SchedulerOptions Fast;
    Fast.Jobs = MaxJobs;
    Fast.Cache = Cache->get();
    Fast.Verify.FastCacheRecheck = true;
    BatchOutcome Out;
    WarmFastMs = medianOverRuns(Runs, S.Programs, Fast, &Out);
    FastHits = Out.CacheStats.Hits;
    FastDecodeMs = Out.CacheStats.DecodeMillis;
    FastRecheckMs = Out.CacheStats.RecheckMillis;
    FastAllCached = FastHits == Out.propertyCount();
    for (const VerificationReport &R : Out.Reports)
      for (const PropertyResult &PR : R.Results)
        if (PR.Status == VerifyStatus::Proved && !PR.CertChecked &&
            !PR.FastRecheck)
          FastAllCached = false;
    if (benchutil::flatVerdicts(Out) != SeqVerdicts) {
      std::fprintf(stderr, "FAIL: fast warm-cache verdicts differ from "
                           "sequential\n");
      Deterministic = false;
    }
    std::printf("%-24s %10.2f ms   %.2fx vs sequential, %llu/%u from "
                "cache\n",
                "cache warm (fast)", WarmFastMs,
                WarmFastMs > 0 ? SeqMs / WarmFastMs : 0,
                (unsigned long long)FastHits, Out.propertyCount());
    std::printf("%-24s decode %.2f ms, re-check %.2f ms\n", "",
                FastDecodeMs, FastRecheckMs);
  }
  std::error_code EC;
  std::filesystem::remove_all(CacheDir, EC);

  // JSON trajectory record.
  JsonWriter W;
  W.beginObject();
  W.field("bench", "parallel");
  W.field("smoke", Smoke);
  W.field("reps", int64_t(Runs));
  W.field("kernels", int64_t(S.Programs.size()));
  W.field("properties", int64_t(SeqOut.propertyCount()));
  W.field("proved", int64_t(SeqOut.provedCount()));
  W.key("sequential_ms");
  W.value(SeqMs);
  W.key("parallel");
  W.beginArray();
  for (const ParallelRow &R : Rows) {
    W.beginObject();
    W.field("jobs", int64_t(R.Jobs));
    W.key("ms");
    W.value(R.Ms);
    W.key("speedup");
    W.value(R.Speedup);
    W.endObject();
  }
  W.endArray();
  if (MaxJobs >= 2) {
    W.key("noshare_ms");
    W.value(NoShareMs);
  }
  W.key("cache");
  W.beginObject();
  W.key("cold_ms");
  W.value(ColdMs);
  W.key("warm_full_ms");
  W.value(WarmFullMs);
  W.key("warm_fast_ms");
  W.value(WarmFastMs);
  W.key("warm_full_decode_ms");
  W.value(WarmDecodeMs);
  W.key("warm_full_recheck_ms");
  W.value(WarmRecheckMs);
  W.key("warm_fast_decode_ms");
  W.value(FastDecodeMs);
  W.key("warm_fast_recheck_ms");
  W.value(FastRecheckMs);
  // Headline: the fast hash-chain path is the steady-state warm cost.
  W.key("warm_speedup_vs_sequential");
  W.value(benchutil::round2(WarmFastMs > 0 ? SeqMs / WarmFastMs : 0));
  W.key("warm_full_speedup_vs_sequential");
  W.value(benchutil::round2(WarmFullMs > 0 ? SeqMs / WarmFullMs : 0));
  W.field("warm_hits", int64_t(WarmHits));
  W.field("warm_fast_hits", int64_t(FastHits));
  W.field("warm_rejected", int64_t(WarmRejected));
  W.field("warm_all_cached", WarmAllCached);
  W.field("warm_fast_all_cached", FastAllCached);
  W.endObject();
  W.field("deterministic", Deterministic);
  W.endObject();
  if (!benchutil::writeJsonRecord(W, OutPath))
    return 1;

  if (!Deterministic || !WarmAllCached || !FastAllCached) {
    std::fprintf(stderr, "FAIL: %s\n",
                 !Deterministic  ? "nondeterministic verdicts"
                 : !WarmAllCached ? "warm cache did not serve all verdicts"
                                  : "fast warm cache did not serve all "
                                    "verdicts");
    return 1;
  }
  return 0;
}
