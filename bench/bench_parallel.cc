//===- bench/bench_parallel.cc - Parallel + cached verification -----------===//
//
// The verification-service bench: all seven kernels (41 properties)
// verified sequentially, then on N workers, then against a cold and a
// warm persistent proof cache. Writes BENCH_parallel.json so later PRs
// can track the perf trajectory.
//
// Correctness gates (exit non-zero on failure):
//  * every parallel run's per-property statuses and reasons are identical
//    to the sequential run's (the scheduler's determinism contract);
//  * the warm-cache run serves every property from the cache, with every
//    proved verdict re-validated by the certificate checker.
//
// Flags:
//   --jobs N    largest worker count to measure (default 4; 0 = cores)
//   --smoke     one repetition, no speedup expectations — the TSan
//               harness uses this to race-check the service cheaply
//   --out FILE  JSON output path (default BENCH_parallel.json)
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"
#include "service/scheduler.h"
#include "service/threadpool.h"
#include "support/json.h"
#include "support/timer.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

using namespace reflex;

namespace {

struct Suite {
  std::vector<ProgramPtr> Owned;
  std::vector<const Program *> Programs;
};

Suite loadSuite() {
  Suite S;
  for (const kernels::KernelDef *K : kernels::all()) {
    S.Owned.push_back(kernels::load(*K));
    S.Programs.push_back(S.Owned.back().get());
  }
  return S;
}

/// Statuses+reasons of a batch, flattened in deterministic order.
std::vector<std::pair<std::string, std::string>>
verdicts(const BatchOutcome &Out) {
  std::vector<std::pair<std::string, std::string>> V;
  for (const VerificationReport &R : Out.Reports)
    for (const PropertyResult &PR : R.Results)
      V.emplace_back(std::string(verifyStatusName(PR.Status)) + "/" + PR.Name,
                     PR.Reason);
  return V;
}

double minOverRuns(unsigned Runs, const std::vector<const Program *> &Programs,
                   const SchedulerOptions &Opts, BatchOutcome *Last) {
  double Best = -1;
  for (unsigned I = 0; I < Runs; ++I) {
    BatchOutcome Out = verifyPrograms(Programs, Opts);
    if (Best < 0 || Out.TotalMillis < Best)
      Best = Out.TotalMillis;
    if (Last)
      *Last = std::move(Out);
  }
  return Best;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned MaxJobs = 4;
  bool Smoke = false;
  std::string OutPath = "BENCH_parallel.json";
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--jobs") && I + 1 < Argc)
      MaxJobs = unsigned(std::stoul(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--smoke"))
      Smoke = true;
    else if (!std::strcmp(Argv[I], "--out") && I + 1 < Argc)
      OutPath = Argv[++I];
    else {
      std::fprintf(stderr, "usage: bench_parallel [--jobs N] [--smoke] "
                           "[--out FILE]\n");
      return 2;
    }
  }
  if (MaxJobs == 0)
    MaxJobs = ThreadPool::defaultWorkerCount();
  const unsigned Runs = Smoke ? 1 : 3;

  Suite S = loadSuite();
  std::printf("=== Parallel verification service: %zu kernels, %u "
              "properties ===\n\n",
              S.Programs.size(), kernels::totalProperties());

  // Sequential baseline.
  SchedulerOptions Seq;
  Seq.Jobs = 1;
  BatchOutcome SeqOut;
  double SeqMs = minOverRuns(Runs, S.Programs, Seq, &SeqOut);
  auto SeqVerdicts = verdicts(SeqOut);
  std::printf("%-24s %10.2f ms   (%u/%u proved)\n", "sequential (1 worker)",
              SeqMs, SeqOut.provedCount(), SeqOut.propertyCount());

  // Parallel sweep: 2, 4, ..., MaxJobs (dedup, ascending).
  std::vector<unsigned> JobCounts;
  for (unsigned J = 2; J < MaxJobs; J *= 2)
    JobCounts.push_back(J);
  if (MaxJobs >= 2)
    JobCounts.push_back(MaxJobs);

  struct ParallelRow {
    unsigned Jobs;
    double Ms;
    double Speedup;
  };
  std::vector<ParallelRow> Rows;
  bool Deterministic = true;
  for (unsigned J : JobCounts) {
    SchedulerOptions Par;
    Par.Jobs = J;
    BatchOutcome Out;
    double Ms = minOverRuns(Runs, S.Programs, Par, &Out);
    if (verdicts(Out) != SeqVerdicts) {
      std::fprintf(stderr,
                   "FAIL: %u-worker verdicts differ from sequential\n", J);
      Deterministic = false;
    }
    double Speedup = Ms > 0 ? SeqMs / Ms : 0;
    Rows.push_back({J, Ms, Speedup});
    char Label[64];
    std::snprintf(Label, sizeof(Label), "parallel (%u workers)", J);
    std::printf("%-24s %10.2f ms   %.2fx\n", Label, Ms, Speedup);
  }

  // Proof cache: cold populate, then a warm run that must serve all 41
  // verdicts from disk (proved ones re-checked by the checker).
  std::filesystem::path CacheDir =
      std::filesystem::temp_directory_path() /
      ("reflex-bench-cache-" + std::to_string(::getpid()));
  double ColdMs = 0, WarmMs = 0;
  uint64_t WarmHits = 0, WarmRejected = 0;
  bool WarmAllCached = false;
  {
    Result<std::unique_ptr<ProofCache>> Cache =
        ProofCache::open(CacheDir.string());
    if (!Cache.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", Cache.error().c_str());
      return 1;
    }
    SchedulerOptions Cached;
    Cached.Jobs = MaxJobs;
    Cached.Cache = Cache->get();
    BatchOutcome Cold = verifyPrograms(S.Programs, Cached);
    ColdMs = Cold.TotalMillis;
    BatchOutcome Warm = verifyPrograms(S.Programs, Cached);
    WarmMs = Warm.TotalMillis;
    WarmHits = Warm.CacheStats.Hits;
    WarmRejected = Warm.CacheStats.Rejected;
    WarmAllCached = WarmHits == Warm.propertyCount();
    for (const VerificationReport &R : Warm.Reports)
      for (const PropertyResult &PR : R.Results)
        if (PR.Status == VerifyStatus::Proved && !PR.CertChecked)
          WarmAllCached = false;
    if (verdicts(Warm) != SeqVerdicts) {
      std::fprintf(stderr, "FAIL: warm-cache verdicts differ from "
                           "sequential\n");
      Deterministic = false;
    }
    std::printf("%-24s %10.2f ms\n", "cache cold (populate)", ColdMs);
    std::printf("%-24s %10.2f ms   %.2fx vs sequential, %llu/%u from "
                "cache\n",
                "cache warm", WarmMs, WarmMs > 0 ? SeqMs / WarmMs : 0,
                (unsigned long long)WarmHits, Warm.propertyCount());
  }
  std::error_code EC;
  std::filesystem::remove_all(CacheDir, EC);

  // JSON trajectory record.
  JsonWriter W;
  W.beginObject();
  W.field("bench", "parallel");
  W.field("smoke", Smoke);
  W.field("kernels", int64_t(S.Programs.size()));
  W.field("properties", int64_t(SeqOut.propertyCount()));
  W.field("proved", int64_t(SeqOut.provedCount()));
  W.key("sequential_ms");
  W.value(SeqMs);
  W.key("parallel");
  W.beginArray();
  for (const ParallelRow &R : Rows) {
    W.beginObject();
    W.field("jobs", int64_t(R.Jobs));
    W.key("ms");
    W.value(R.Ms);
    W.key("speedup");
    W.value(R.Speedup);
    W.endObject();
  }
  W.endArray();
  W.key("cache");
  W.beginObject();
  W.key("cold_ms");
  W.value(ColdMs);
  W.key("warm_ms");
  W.value(WarmMs);
  W.key("warm_speedup_vs_sequential");
  W.value(WarmMs > 0 ? SeqMs / WarmMs : 0);
  W.field("warm_hits", int64_t(WarmHits));
  W.field("warm_rejected", int64_t(WarmRejected));
  W.field("warm_all_cached", WarmAllCached);
  W.endObject();
  W.field("deterministic", Deterministic);
  W.endObject();
  std::ofstream Out(OutPath);
  Out << W.take() << "\n";
  std::printf("\nwrote %s\n", OutPath.c_str());

  if (!Deterministic || !WarmAllCached) {
    std::fprintf(stderr, "FAIL: %s\n",
                 !Deterministic ? "nondeterministic verdicts"
                                : "warm cache did not serve all verdicts");
    return 1;
  }
  return 0;
}
