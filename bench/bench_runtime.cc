//===- bench/bench_runtime.cc - §6.4 interactive speed ----------*- C++ -*-===//
//
// Reproduces the §6.4 claim that "the generated executables run at
// interactive speeds": microbenchmarks of the kernel event loop servicing
// exchanges with simulated components. Reported as exchanges/second per
// kernel — any figure in the tens of thousands or more is far beyond what
// "interactive" requires (the paper browsed GMail through its kernel).
//
// Uses google-benchmark; each iteration rebuilds the runtime and services
// a fixed batch of exchanges, so the per-iteration time covers init +
// scheduling + handler execution + trace recording.
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"

#include <benchmark/benchmark.h>

using namespace reflex;

namespace {

void runKernel(benchmark::State &State, const kernels::KernelDef &K) {
  ProgramPtr P = kernels::load(K);
  size_t Exchanges = 0;
  for (auto _ : State) {
    Runtime Rt(*P, K.MakeScripts(), K.MakeCalls(), /*Seed=*/42);
    Rt.start();
    Exchanges += Rt.run(10000);
    benchmark::DoNotOptimize(Rt.trace().Actions.size());
  }
  State.counters["exchanges/s"] = benchmark::Counter(
      static_cast<double>(Exchanges), benchmark::Counter::kIsRate);
}

void BM_Ssh(benchmark::State &State) { runKernel(State, kernels::ssh()); }
void BM_Ssh2(benchmark::State &State) { runKernel(State, kernels::ssh2()); }
void BM_Browser(benchmark::State &State) {
  runKernel(State, kernels::browser());
}
void BM_Browser3(benchmark::State &State) {
  runKernel(State, kernels::browser3());
}
void BM_Webserver(benchmark::State &State) {
  runKernel(State, kernels::webserver());
}
void BM_Car(benchmark::State &State) { runKernel(State, kernels::car()); }

/// A synthetic high-throughput workload: one chatty component driving the
/// kernel hard, to measure the per-exchange cost in isolation.
void BM_ExchangeLatency(benchmark::State &State) {
  static const char Source[] = R"rfx(
program pingpong;
component Peer "peer.py";
message Ping(num);
message Pong(num);
var count: num = 0;
init { X <- spawn Peer(); }
handler Peer => Ping(n) {
  count = count + 1;
  send(X, Pong(n));
}
)rfx";
  Result<ProgramPtr> P = loadProgram(Source);
  if (!P) {
    State.SkipWithError("pingpong kernel failed to load");
    return;
  }
  struct Chatty : ComponentScript {
    int64_t N = 0;
    void onStart() override { sendToKernel(msg("Ping", {Value::num(N++)})); }
    void onMessage(const Message &M) override {
      if (M.Name == "Pong")
        sendToKernel(msg("Ping", {Value::num(N++)}));
    }
  };
  size_t Exchanges = 0;
  for (auto _ : State) {
    Runtime Rt(**P,
               [](const ComponentInstance &) {
                 return std::make_unique<Chatty>();
               },
               CallRegistry(), 7);
    Rt.start();
    Exchanges += Rt.run(5000);
  }
  State.counters["exchanges/s"] = benchmark::Counter(
      static_cast<double>(Exchanges), benchmark::Counter::kIsRate);
}

} // namespace

BENCHMARK(BM_Car);
BENCHMARK(BM_Ssh);
BENCHMARK(BM_Ssh2);
BENCHMARK(BM_Browser);
BENCHMARK(BM_Browser3);
BENCHMARK(BM_Webserver);
BENCHMARK(BM_ExchangeLatency);

BENCHMARK_MAIN();
