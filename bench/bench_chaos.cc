//===- bench/bench_chaos.cc - Crash recovery and overload shedding --------===//
//
// The crash-safety tentpole, measured and gated: a daemon that is killed
// with SIGKILL mid-service must come back cheaper than starting cold,
// and an overloaded daemon must shed load structurally without dropping
// anything it accepted.
//
// Protocol, phase 1 (recovery): a real `reflex daemon` process (fork +
// exec, journal on) warms a session on the chain kernel; SIGKILL; the
// journal tail is then deliberately torn, as if the kill had caught an
// append mid-write. A fresh daemon process on the same cache dir replays
// the journal (re-validating every Proved certificate) before it binds
// its socket — the measured socket-ready time therefore brackets
// recovery. The warm arm is the recovered session's `edit` round-trip
// with unchanged source; the cold arm is a full one-shot `reflex verify`
// of the same file. Paired, alternating order; the metric is the median
// of paired ratios.
//
// Protocol, phase 2 (shedding): an in-process daemon with a single
// admission slot; one client occupies it with a long verify while
// impatient clients hammer the socket. Raw clients must see the
// structured `overloaded` frame; retrying clients must eventually
// succeed; the occupant's accepted request must complete. Accepted and
// dropped are counted exactly.
//
// Gates (exit non-zero):
//  * always: recovered verdicts are byte-level consistent with a
//    from-scratch run (proved count, full reuse: reused == properties,
//    reverified == 0); the journal recovered the session and truncated
//    the torn tail; at least one request was shed; zero accepted
//    requests were dropped.
//  * outside --smoke: post-crash warm re-verify >= 2x over cold.
//
// Flags:
//   --stages N  chain-kernel size (default 12)
//   --smoke     two repetitions, no speedup gate (CI under sanitizers)
//   --out FILE  JSON output path (default BENCH_chaos.json)
//
//===----------------------------------------------------------------------===//

#include "daemon/client.h"
#include "daemon/daemon.h"
#include "kernels/synthetic.h"
#include "reflex/reflex.h"
#include "service/scheduler.h"
#include "support/json.h"
#include "support/timer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace reflex;

namespace {

bool GatesOk = true;

void fail(const char *Fmt, ...) {
  va_list Ap;
  va_start(Ap, Fmt);
  std::fprintf(stderr, "FAIL: ");
  std::vfprintf(stderr, Fmt, Ap);
  std::fprintf(stderr, "\n");
  va_end(Ap);
  GatesOk = false;
}

ProgramPtr mustLoad(const std::string &Src, const char *What) {
  Result<ProgramPtr> P = loadProgram(Src, What);
  if (!P.ok()) {
    std::fprintf(stderr, "FAIL: cannot load %s: %s\n", What, P.error().c_str());
    std::exit(1);
  }
  return P.take();
}

double median(std::vector<double> V) {
  std::sort(V.begin(), V.end());
  return V[V.size() / 2];
}

std::string frame(const std::string &Verb, const std::string &Session = "",
                  const std::string &Program = "") {
  JsonWriter W;
  W.beginObject();
  W.field("verb", Verb);
  if (!Session.empty())
    W.field("session", Session);
  if (!Program.empty())
    W.field("program", Program);
  W.endObject();
  return W.take();
}

pid_t spawnDaemon(const std::string &Socket, const std::string &CacheDir) {
  pid_t Pid = ::fork();
  if (Pid == 0) {
    std::string Bin = REFLEX_CLI_PATH;
    std::string A0 = "daemon", A1 = "--socket", A3 = "--cache-dir";
    std::string Sock = Socket, Dir = CacheDir;
    char *Argv[] = {Bin.data(), A0.data(), A1.data(),  Sock.data(),
                    A3.data(),  Dir.data(), nullptr};
    (void)::freopen("/dev/null", "w", stdout);
    ::execv(Bin.c_str(), Argv);
    _exit(127);
  }
  return Pid;
}

bool waitForDaemon(const std::string &Socket, int BudgetMs) {
  for (int Waited = 0; Waited < BudgetMs; Waited += 20) {
    if (DaemonClient::connect(Socket).ok())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Stages = 12;
  bool Smoke = false;
  std::string OutPath = "BENCH_chaos.json";
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--stages") && I + 1 < Argc)
      Stages = unsigned(std::stoul(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--smoke"))
      Smoke = true;
    else if (!std::strcmp(Argv[I], "--out") && I + 1 < Argc)
      OutPath = Argv[++I];
    else {
      std::fprintf(stderr,
                   "usage: bench_chaos [--stages N] [--smoke] [--out FILE]\n");
      return 2;
    }
  }
  const unsigned Reps = Smoke ? 2 : 10;

  std::string Src = kernels::syntheticChainKernel(Stages);
  ProgramPtr P = mustLoad(Src, "chain");
  size_t Props = P->Properties.size();
  SchedulerOptions SOpts;
  SOpts.Jobs = 0;
  unsigned WantProved = verifyPrograms({P.get()}, SOpts).provedCount();

  std::string Dir = "/tmp/rfx-bench-chaos-" + std::to_string(::getpid());
  std::filesystem::create_directories(Dir + "/cache");
  std::string File = Dir + "/chain.rfx";
  std::ofstream(File) << Src;
  std::string Socket = Dir + "/d.sock";
  std::string CacheDir = Dir + "/cache";

  //===------------------------------------------------------------------===//
  // Phase 1: kill -9, torn journal, recovery
  //===------------------------------------------------------------------===//

  pid_t Pid = spawnDaemon(Socket, CacheDir);
  if (Pid <= 0 || !waitForDaemon(Socket, 60000)) {
    std::fprintf(stderr, "FAIL: daemon never came up\n");
    return 1;
  }
  {
    Result<DaemonClient> C = DaemonClient::connect(Socket);
    Result<JsonValue> R = C.ok()
                              ? C->call(frame("open-session", "bench", Src))
                              : Result<JsonValue>(Error(C.error()));
    if (!R.ok() || !R->getBool("ok") ||
        unsigned(R->getNumber("proved")) != WantProved) {
      std::fprintf(stderr, "FAIL: warm-up open-session diverged\n");
      return 1;
    }
  }

  ::kill(Pid, SIGKILL);
  int Status = 0;
  ::waitpid(Pid, &Status, 0);
  {
    // The kill that also caught an append mid-write.
    std::ofstream Tail(CacheDir + "/verdicts.journal",
                       std::ios::binary | std::ios::app);
    Tail << "RJ1 deadbeef {\"type\":\"torn";
  }

  WallTimer RecoverTimer;
  pid_t Pid2 = spawnDaemon(Socket, CacheDir);
  if (Pid2 <= 0 || !waitForDaemon(Socket, 120000)) {
    std::fprintf(stderr, "FAIL: daemon never recovered after kill -9\n");
    return 1;
  }
  // The socket appears only after replay + certificate re-validation:
  // socket-ready time brackets recovery (plus process startup).
  double RecoveryMs = RecoverTimer.elapsedMillis();

  double SessionsRecovered = 0, VerdictsRecovered = 0, BytesTruncated = 0,
         ReplayMs = 0;
  {
    Result<DaemonClient> C = DaemonClient::connect(Socket);
    Result<JsonValue> S = C.ok() ? C->call(frame("stats"))
                                 : Result<JsonValue>(Error(C.error()));
    const JsonValue *J = S.ok() ? S->get("journal") : nullptr;
    if (!J) {
      fail("restarted daemon reports no journal stats");
    } else {
      SessionsRecovered = J->getNumber("sessions_recovered");
      VerdictsRecovered = J->getNumber("verdicts_recovered");
      BytesTruncated = J->getNumber("bytes_truncated");
      ReplayMs = J->getNumber("recovery_millis");
      if (SessionsRecovered < 1)
        fail("journal recovered no sessions after kill -9");
      if (BytesTruncated <= 0)
        fail("the torn journal tail was not truncated");
    }
  }

  Result<DaemonClient> Warm = DaemonClient::connect(Socket);
  if (!Warm.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", Warm.error().c_str());
    return 1;
  }
  auto WarmReverify = [&] {
    std::string F = frame("edit", "bench", Src);
    WallTimer T;
    Result<std::string> Raw = Warm->callRaw(F);
    double Ms = T.elapsedMillis();
    Result<JsonValue> Resp =
        Raw.ok() ? parseJson(*Raw) : Result<JsonValue>(Error(Raw.error()));
    if (!Resp.ok() || !Resp->getBool("ok") ||
        unsigned(Resp->getNumber("proved")) != WantProved)
      fail("post-crash re-verify diverged from the from-scratch run");
    else if (size_t(Resp->getNumber("reused")) != Props ||
             Resp->getNumber("reverified") != 0)
      fail("post-crash re-verify did not reuse every recovered verdict "
           "(reused %.0f, reverified %.0f)",
           Resp->getNumber("reused"), Resp->getNumber("reverified"));
    return Ms;
  };
  auto ColdRun = [&] {
    std::string Cmd =
        std::string(REFLEX_CLI_PATH) + " verify " + File + " > /dev/null 2>&1";
    WallTimer T;
    int Rc = std::system(Cmd.c_str());
    if (Rc != 0)
      fail("cold CLI run exited %d", Rc);
    return T.elapsedMillis();
  };

  ColdRun();      // untimed warm-ups: page cache,
  WarmReverify(); // recovered session verdict store

  std::vector<double> ColdMsS, WarmMsS, Ratios;
  for (unsigned R = 0; R < Reps; ++R) {
    double ColdMs = 0, WarmMs = 0;
    if (R % 2 == 0) {
      ColdMs = ColdRun();
      WarmMs = WarmReverify();
    } else {
      WarmMs = WarmReverify();
      ColdMs = ColdRun();
    }
    ColdMsS.push_back(ColdMs);
    WarmMsS.push_back(WarmMs);
    Ratios.push_back(WarmMs > 0 ? ColdMs / WarmMs : 0);
  }

  // Graceful drain: SIGTERM must exit 0 — the same contract the
  // supervisor uses to tell a deliberate stop from a crash.
  ::kill(Pid2, SIGTERM);
  ::waitpid(Pid2, &Status, 0);
  if (!WIFEXITED(Status) || WEXITSTATUS(Status) != 0)
    fail("SIGTERM drain did not exit 0");

  //===------------------------------------------------------------------===//
  // Phase 2: overload shedding
  //===------------------------------------------------------------------===//

  uint64_t ShedSeen = 0, AcceptedOk = 0, AcceptedDropped = 0, RetriedOk = 0;
  {
    DaemonOptions DOpts;
    DOpts.SocketPath = Dir + "/shed.sock";
    DOpts.MaxInFlight = 1;
    DOpts.RetryAfterMs = 25;
    Result<std::unique_ptr<ReflexDaemon>> D = ReflexDaemon::start(DOpts);
    if (!D.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", D.error().c_str());
      return 1;
    }
    (*D)->serveInBackground();

    // Occupy the single slot with a long verify whose response we will
    // collect at the end — if the daemon drops it, that is a dropped
    // accepted request and the gate fails.
    std::string Slow = kernels::syntheticChainKernel(
        std::max(80u, Stages * 4));
    Result<DaemonClient> Occupant = DaemonClient::connect((*D)->socketPath());
    if (!Occupant.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", Occupant.error().c_str());
      return 1;
    }
    if (!Occupant->socket().sendAll(frame("verify", "", Slow) + "\n").ok())
      fail("occupant send failed");
    std::this_thread::sleep_for(std::chrono::milliseconds(150));

    // Impatient raw clients: each must be answered with the structured
    // overloaded frame, not a hang, not a cut connection.
    for (int I = 0; I < 4; ++I) {
      Result<DaemonClient> C = DaemonClient::connect((*D)->socketPath());
      if (!C.ok())
        continue;
      Result<JsonValue> R = C->call(frame("verify", "", Src));
      if (R.ok() && !R->getBool("ok") && R->getBool("overloaded") &&
          R->getNumber("retry_after_ms") == 25)
        ++ShedSeen;
      else if (R.ok() && R->getBool("ok"))
        ++AcceptedOk; // slot freed mid-hammer: legitimately served
    }
    if (ShedSeen == 0)
      fail("no request was shed with the structured overloaded error");

    // Patient clients ride the slot out on the retry schedule.
    std::vector<std::thread> Patient;
    std::atomic<uint64_t> PatientOk{0};
    for (int I = 0; I < 3; ++I)
      Patient.emplace_back([&, I] {
        DaemonRetryOptions RO;
        RO.MaxAttempts = 200;
        RO.BaseBackoffMs = 25;
        RO.BackoffCapMs = 200;
        RO.Seed = uint64_t(I) + 1; // distinct seeds: no retry stampede
        Result<JsonValue> R = DaemonClient::callWithRetry(
            (*D)->socketPath(), frame("verify", "", Src), RO);
        if (R.ok() && R->getBool("ok") &&
            unsigned(R->getNumber("proved")) == WantProved)
          PatientOk.fetch_add(1);
      });
    for (std::thread &T : Patient)
      T.join();
    RetriedOk = PatientOk.load();
    if (RetriedOk != 3)
      fail("only %llu of 3 retrying clients succeeded",
           (unsigned long long)RetriedOk);

    // The occupant's accepted request: completed, never dropped.
    std::string RawSlow;
    Result<bool> Got = Occupant->socket().readLine(RawSlow, 256u << 20);
    Result<JsonValue> SlowResp = (Got.ok() && *Got)
                                     ? parseJson(RawSlow)
                                     : Result<JsonValue>(Error("dropped"));
    if (SlowResp.ok() && SlowResp->getBool("ok"))
      ++AcceptedOk;
    else
      ++AcceptedDropped;
    if (AcceptedDropped > 0)
      fail("an accepted request was dropped under overload");

    (*D)->stop();
  }

  std::filesystem::remove_all(Dir);

  auto Round2 = [](double X) { return std::round(X * 100) / 100; };
  double ColdMs = median(ColdMsS), WarmMs = median(WarmMsS);
  double Speedup = Round2(median(Ratios));
  std::printf("=== crash recovery and shedding (%zu properties) ===\n", Props);
  std::printf("%-36s %10.2f ms\n", "cold one-shot CLI", ColdMs);
  std::printf("%-36s %10.2f ms   %.2fx\n", "post-crash warm re-verify", WarmMs,
              Speedup);
  std::printf("%-36s %10.2f ms (replay %.2f ms)\n",
              "restart-to-socket-ready", RecoveryMs, ReplayMs);
  std::printf("%-36s %llu shed / %llu retried-ok / %llu dropped\n",
              "overload", (unsigned long long)ShedSeen,
              (unsigned long long)RetriedOk,
              (unsigned long long)AcceptedDropped);

  JsonWriter W;
  W.beginObject();
  W.field("bench", "chaos");
  W.field("smoke", Smoke);
  W.field("reps", int64_t(Reps));
  W.field("chain_stages", int64_t(Stages));
  W.field("properties", int64_t(Props));
  W.key("cold_start_verify_ms");
  W.value(ColdMs);
  W.key("post_crash_warm_reverify_ms");
  W.value(WarmMs);
  W.key("crash_recovery_speedup");
  W.value(Speedup);
  W.key("restart_to_ready_ms");
  W.value(Round2(RecoveryMs));
  W.key("journal_replay_ms");
  W.value(Round2(ReplayMs));
  W.field("sessions_recovered", int64_t(SessionsRecovered));
  W.field("verdicts_recovered", int64_t(VerdictsRecovered));
  W.field("journal_bytes_truncated", int64_t(BytesTruncated));
  W.field("shed_requests", int64_t(ShedSeen));
  W.field("retried_ok", int64_t(RetriedOk));
  W.field("accepted_ok", int64_t(AcceptedOk));
  W.field("accepted_dropped", int64_t(AcceptedDropped));
  W.field("gates_ok", GatesOk);
  W.endObject();
  std::ofstream Out(OutPath);
  Out << W.take() << "\n";
  std::printf("\nwrote %s\n", OutPath.c_str());

  if (!GatesOk) {
    std::fprintf(stderr, "FAIL: chaos gates failed\n");
    return 1;
  }
  if (!Smoke && Speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: post-crash warm re-verify %.2fx below the 2x gate\n",
                 Speedup);
    return 1;
  }
  return 0;
}
