//===- bench/bench_solver.cc - Incremental solver core bench --------------===//
//
// The solver-core bench: pins the incremental assumption-based core
// (sym/solver.h) against the from-scratch reference algorithm on the
// query mix the prover actually issues — a shared path-condition prefix
// probed by many small assumption sets. The workload is the symbolic
// path conditions of the two scaling kernel families (branch-nest depth
// for long conditions, fleet width for many handlers): for every handler
// path, each of its condition literals is probed positively (consistent)
// and negated (contradictory), plus every literal of the handler's other
// paths.
//
//  * scratch      — per probe, the reference solver re-solves the full
//                   literal set (path condition + probe) from scratch;
//  * incremental  — the path condition is asserted once (push/assume),
//                   then each probe is a checkAssuming against the
//                   persistent congruence closure;
//  * logged       — the incremental arm with reason-trail recording on,
//                   to price the proof-logging overhead;
//  * lifo         — the incremental arm with the historical LIFO
//                   pending-merge drain instead of activity-driven
//                   ordering, to price the ordering heuristic in
//                   isolation (merge_order_delta_pct).
//
// Both timed arms run with the memo disabled — the bench prices the
// solving itself, not the cache in front of it. Arms alternate per
// repetition and the headline speedup is the median of paired adjacent
// ratios (the bench_parallel convention, so container jitter cancels).
//
// Correctness gates (exit non-zero on failure):
//  * per-query parity: every incremental arm's SatResult sequence
//    (activity-ordered, logged, and lifo) equals the reference arm's;
//  * every reason trail recorded by the logged arm survives the
//    independent replayer (replayReasonTrail);
//  * outside --smoke, incremental speedup >= 2x.
//
// Flags:
//   --depth N   branch-kernel nesting depth (default 6: 64 paths)
//   --lanes N   fleet-kernel width (default 8)
//   --smoke     one repetition, no speedup gate (CI races/sanitizers)
//   --out FILE  JSON output path (default BENCH_solver.json)
//
//===----------------------------------------------------------------------===//

#include "kernels/synthetic.h"
#include "reflex/reflex.h"
#include "support/json.h"
#include "support/timer.h"
#include "sym/solver.h"
#include "verify/behabs.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace reflex;

namespace {

/// One family: a path condition plus the probe sets checked under it.
struct QueryFamily {
  std::vector<Lit> Cond;
  std::vector<Lit> Probes;
};

/// Builds the workload for one program: symbolically executes it and
/// turns every handler path into a query family (see file header).
void collectFamilies(TermContext &Ctx, const Program &P,
                     std::vector<QueryFamily> &Out) {
  BehAbs Abs = buildBehAbs(Ctx, P);
  for (const HandlerSummary &H : Abs.Handlers) {
    for (size_t I = 0; I < H.Paths.size(); ++I) {
      const SymPath &Path = H.Paths[I];
      if (Path.Cond.empty())
        continue;
      QueryFamily F;
      F.Cond = Path.Cond;
      for (const Lit &L : Path.Cond) {
        F.Probes.push_back(L);
        F.Probes.push_back(Lit(L.Atom, !L.Pos));
      }
      for (size_t J = 0; J < H.Paths.size(); ++J) {
        if (J == I)
          continue;
        for (const Lit &L : H.Paths[J].Cond)
          F.Probes.push_back(L);
      }
      Out.push_back(std::move(F));
    }
  }
}

/// Runs every family through the reference solver (full literal set per
/// probe, from scratch). Appends one SatResult per query to \p Results.
double runScratch(TermContext &Ctx, const std::vector<QueryFamily> &Fams,
                  std::vector<SatResult> *Results) {
  Solver S(Ctx);
  S.setMemoEnabled(false);
  S.setIncrementalEnabled(false);
  WallTimer T;
  for (const QueryFamily &F : Fams) {
    for (const Lit &Probe : F.Probes) {
      std::vector<Lit> Full = F.Cond;
      Full.push_back(Probe);
      SatResult R = S.checkLits(Full);
      if (Results)
        Results->push_back(R);
    }
  }
  return T.elapsedMillis();
}

/// Runs every family through the incremental core: the condition is
/// asserted once per family, each probe is one checkAssuming.
/// \p Activity selects activity-driven pending-merge ordering (the
/// default) or the historical LIFO drain — the A/B arm that prices the
/// ordering heuristic.
double runIncremental(TermContext &Ctx, const std::vector<QueryFamily> &Fams,
                      bool Log, std::vector<SatResult> *Results,
                      SolverStats *StatsOut,
                      std::vector<ReasonTrail> *TrailsOut,
                      bool Activity = true) {
  Solver S(Ctx);
  S.setMemoEnabled(false);
  S.setLogEnabled(Log);
  S.setActivityMergeOrder(Activity);
  WallTimer T;
  for (const QueryFamily &F : Fams) {
    Solver::Scope Sc(S, F.Cond);
    for (const Lit &Probe : F.Probes) {
      SatResult R = S.checkAssuming({Probe});
      if (Results)
        Results->push_back(R);
    }
  }
  double Ms = T.elapsedMillis();
  if (StatsOut)
    *StatsOut = S.stats();
  if (TrailsOut)
    *TrailsOut = S.reasonTrails();
  return Ms;
}

double median(std::vector<double> V) {
  std::sort(V.begin(), V.end());
  return V.empty() ? 0 : V[V.size() / 2];
}

double Round2(double X) { return std::round(X * 100) / 100; }

} // namespace

int main(int Argc, char **Argv) {
  unsigned Depth = 6, Lanes = 8;
  bool Smoke = false;
  std::string OutPath = "BENCH_solver.json";
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--depth") && I + 1 < Argc)
      Depth = unsigned(std::stoul(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--lanes") && I + 1 < Argc)
      Lanes = unsigned(std::stoul(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--smoke"))
      Smoke = true;
    else if (!std::strcmp(Argv[I], "--out") && I + 1 < Argc)
      OutPath = Argv[++I];
    else {
      std::fprintf(stderr, "usage: bench_solver [--depth N] [--lanes N] "
                           "[--smoke] [--out FILE]\n");
      return 2;
    }
  }
  const unsigned Reps = Smoke ? 1 : 7;

  // One term context for the whole bench: families from both kernel
  // families share it, as the prover's queries share a session context.
  TermContext Ctx;
  std::vector<QueryFamily> Fams;
  size_t QueryCount = 0;
  for (const std::string &Src : {kernels::syntheticBranchKernel(Depth),
                                 kernels::syntheticFleetKernel(Lanes)}) {
    Result<ProgramPtr> P = loadProgram(Src, "bench_solver");
    if (!P.ok()) {
      std::fprintf(stderr, "bench_solver: kernel failed to load: %s\n",
                   P.error().c_str());
      return 1;
    }
    collectFamilies(Ctx, **P, Fams);
  }
  for (const QueryFamily &F : Fams)
    QueryCount += F.Probes.size();
  std::printf("=== Solver core: %zu families, %zu queries "
              "(branch depth %u, fleet lanes %u) ===\n\n",
              Fams.size(), QueryCount, Depth, Lanes);

  // Parity gate (untimed): identical SatResult sequences, and every
  // recorded reason trail replays through the independent validator.
  std::vector<SatResult> Ref, Inc, IncLogged, IncLifo;
  runScratch(Ctx, Fams, &Ref);
  runIncremental(Ctx, Fams, /*Log=*/false, &Inc, nullptr, nullptr);
  std::vector<ReasonTrail> Trails;
  runIncremental(Ctx, Fams, /*Log=*/true, &IncLogged, nullptr, &Trails);
  runIncremental(Ctx, Fams, /*Log=*/false, &IncLifo, nullptr, nullptr,
                 /*Activity=*/false);
  if (Ref != Inc || Ref != IncLogged || Ref != IncLifo) {
    size_t At = 0;
    while (At < Ref.size() && Ref[At] == Inc[At] && Ref[At] == IncLogged[At] &&
           Ref[At] == IncLifo[At])
      ++At;
    std::fprintf(stderr,
                 "FAIL: incremental/reference verdict mismatch at query "
                 "%zu of %zu\n",
                 At, Ref.size());
    return 1;
  }
  size_t UnsatCount = 0;
  for (SatResult R : Ref)
    UnsatCount += R == SatResult::Unsat;
  for (size_t I = 0; I < Trails.size(); ++I) {
    std::string Why;
    if (!replayReasonTrail(Ctx, Trails[I], Why)) {
      std::fprintf(stderr, "FAIL: reason trail %zu failed replay: %s\n", I,
                   Why.c_str());
      return 1;
    }
  }
  std::printf("parity: %zu queries agree across 4 arms (%zu unsat); %zu "
              "reason trails replayed\n",
              Ref.size(), UnsatCount, Trails.size());

  // Timed arms, alternating per repetition; paired adjacent ratios. The
  // lifo arm re-runs the incremental core with the historical LIFO
  // pending-merge drain, so merge_order_delta_pct below prices the
  // activity-driven ordering in isolation.
  std::vector<double> ScratchMsS, IncMsS, LoggedMsS, LifoMsS, Ratios,
      OrderRatios;
  SolverStats LastStats;
  for (unsigned R = 0; R < Reps; ++R) {
    double SMs, IMs;
    if (R % 2 == 0) {
      SMs = runScratch(Ctx, Fams, nullptr);
      IMs = runIncremental(Ctx, Fams, false, nullptr, nullptr, nullptr);
    } else {
      IMs = runIncremental(Ctx, Fams, false, nullptr, nullptr, nullptr);
      SMs = runScratch(Ctx, Fams, nullptr);
    }
    double FMs = runIncremental(Ctx, Fams, false, nullptr, nullptr, nullptr,
                                /*Activity=*/false);
    double LMs = runIncremental(Ctx, Fams, true, nullptr, &LastStats, nullptr);
    ScratchMsS.push_back(SMs);
    IncMsS.push_back(IMs);
    LoggedMsS.push_back(LMs);
    LifoMsS.push_back(FMs);
    Ratios.push_back(SMs / std::max(IMs, 1e-6));
    OrderRatios.push_back(FMs / std::max(IMs, 1e-6));
  }
  double ScratchMs = median(ScratchMsS), IncMs = median(IncMsS);
  double LoggedMs = median(LoggedMsS);
  double LifoMs = median(LifoMsS);
  double Speedup = Round2(median(Ratios));
  double OrderDeltaPct = Round2((median(OrderRatios) - 1.0) * 100);
  double QpsScratch = QueryCount / std::max(ScratchMs, 1e-6) * 1e3;
  double QpsInc = QueryCount / std::max(IncMs, 1e-6) * 1e3;
  double LogOverheadPct =
      Round2((LoggedMs - IncMs) / std::max(IncMs, 1e-6) * 100);

  std::printf("\nscratch:      %8.2f ms  (%.0f queries/s)\n", ScratchMs,
              QpsScratch);
  std::printf("incremental:  %8.2f ms  (%.0f queries/s)  speedup %.2fx\n",
              IncMs, QpsInc, Speedup);
  std::printf("lifo order:   %8.2f ms  (activity ordering delta %+.2f%%)\n",
              LifoMs, OrderDeltaPct);
  std::printf("with logging: %8.2f ms  (overhead %.2f%%, %llu trail "
              "bytes)\n",
              LoggedMs, LogOverheadPct,
              (unsigned long long)LastStats.ReasonLogBytes);

  JsonWriter W;
  W.beginObject();
  W.field("bench", "solver");
  W.field("branch_depth", int64_t(Depth));
  W.field("fleet_lanes", int64_t(Lanes));
  W.field("families", int64_t(Fams.size()));
  W.field("queries", int64_t(QueryCount));
  W.field("unsat_queries", int64_t(UnsatCount));
  W.field("trails_replayed", int64_t(Trails.size()));
  W.key("scratch_ms");
  W.value(Round2(ScratchMs));
  W.key("incremental_ms");
  W.value(Round2(IncMs));
  W.key("logged_ms");
  W.value(Round2(LoggedMs));
  W.key("lifo_merge_ms");
  W.value(Round2(LifoMs));
  W.key("merge_order_delta_pct");
  W.value(OrderDeltaPct);
  W.key("queries_per_sec_scratch");
  W.value(Round2(QpsScratch));
  W.key("queries_per_sec_incremental");
  W.value(Round2(QpsInc));
  W.key("speedup");
  W.value(Speedup);
  W.key("reason_log_overhead_pct");
  W.value(LogOverheadPct);
  W.field("smoke", Smoke);
  W.endObject();
  std::ofstream Out(OutPath);
  Out << W.take() << "\n";
  std::printf("\nwrote %s\n", OutPath.c_str());

  if (!Smoke && Speedup < 2.0) {
    std::fprintf(stderr, "FAIL: incremental speedup %.2fx < 2x gate\n",
                 Speedup);
    return 1;
  }
  return 0;
}
