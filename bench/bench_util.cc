//===- bench/bench_util.cc - Shared bench measurement scaffolding ---------===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace reflex {
namespace benchutil {

double median(std::vector<double> V) {
  if (V.empty()) {
    std::fprintf(stderr, "bench_util: median of zero samples\n");
    std::abort();
  }
  std::sort(V.begin(), V.end());
  return V[V.size() / 2];
}

double round2(double X) { return std::round(X * 100) / 100; }

PairedSamples measurePaired(unsigned Pairs,
                            const std::function<double()> &Num,
                            const std::function<double()> &Den) {
  PairedSamples S;
  S.NumMs.reserve(Pairs);
  S.DenMs.reserve(Pairs);
  S.Ratios.reserve(Pairs);
  for (unsigned R = 0; R < Pairs; ++R) {
    double N = 0, D = 0;
    if (R % 2 == 0) {
      N = Num();
      D = Den();
    } else {
      D = Den();
      N = Num();
    }
    S.NumMs.push_back(N);
    S.DenMs.push_back(D);
    S.Ratios.push_back(D > 0 ? N / D : 0);
  }
  return S;
}

namespace {

int usageFor(const std::string &Name,
             const std::vector<std::string> &NumFlags) {
  std::string Line = "usage: " + Name;
  for (const std::string &F : NumFlags)
    Line += " [" + F + " N]";
  Line += " [--smoke] [--out FILE]\n";
  std::fprintf(stderr, "%s", Line.c_str());
  return 2;
}

} // namespace

bool parseBenchArgs(int Argc, char **Argv, const std::string &Name,
                    const std::string &DefaultOut,
                    const std::vector<std::string> &NumFlags,
                    BenchArgs &Out) {
  Out.OutPath = DefaultOut;
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg == "--smoke") {
      Out.Smoke = true;
      continue;
    }
    if (Arg == "--out" && I + 1 < Argc) {
      Out.OutPath = Argv[++I];
      continue;
    }
    auto It = std::find(NumFlags.begin(), NumFlags.end(), Arg);
    if (It != NumFlags.end() && I + 1 < Argc) {
      const char *Val = Argv[++I];
      errno = 0;
      char *End = nullptr;
      unsigned long V = std::strtoul(Val, &End, 10);
      if (End == Val || *End != '\0' || errno == ERANGE) {
        std::fprintf(stderr, "error: option '%s' needs a number, got '%s'\n",
                     Arg.c_str(), Val);
        usageFor(Name, NumFlags);
        return false;
      }
      Out.Nums[Arg] = V;
      continue;
    }
    usageFor(Name, NumFlags);
    return false;
  }
  return true;
}

std::vector<std::pair<std::string, std::string>>
flatVerdicts(const BatchOutcome &Out) {
  std::vector<std::pair<std::string, std::string>> V;
  for (const VerificationReport &R : Out.Reports)
    for (const PropertyResult &PR : R.Results)
      V.emplace_back(std::string(verifyStatusName(PR.Status)) + "/" + PR.Name,
                     PR.Reason);
  return V;
}

bool writeJsonRecord(JsonWriter &W, const std::string &OutPath) {
  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", OutPath.c_str());
    return false;
  }
  Out << W.take() << "\n";
  std::printf("\nwrote %s\n", OutPath.c_str());
  return true;
}

} // namespace benchutil
} // namespace reflex
