//===- bench/bench_corpus.cc - Generated-corpus macro bench ---------------===//
//
// The scenario-factory macro bench: a pinned-seed generated corpus
// (src/gen/, seed 42 scale 6 by default — 13 kernels, 251 properties
// with construction-time known verdicts) driven through the whole
// service surface at a workload one hand-written kernel suite cannot
// reach: hundreds of properties, whole runs measured in seconds rather
// than milliseconds. Arms:
//
//  * oracle        — the full differential harness (src/gen/oracle.h):
//                    verdicts vs ground truth, counterexamples vs the
//                    concrete semantics, interpreter traces vs the
//                    abstraction, parity across engines × jobs ×
//                    sharing × cache states;
//  * cold/parallel — sequential baseline vs the parallel scheduler,
//                    paired adjacent batches (speedup recorded);
//  * dedupe        — the corpus submitted twice in one batch; every
//                    duplicated property must be deduplicated before
//                    dispatch;
//  * cache         — per repetition: wipe, cold populate, warm serve;
//                    the warm batch must serve every cacheable verdict
//                    from disk (Refuted is never persisted) and beat
//                    cold by >= 2x outside --smoke;
//  * incremental   — every kernel edited interface-preservingly (one
//                    no-op self-assignment), re-verified through a
//                    warmed IncrementalVerifier in audit mode: verdicts
//                    byte-identical to from-scratch, reuse counted;
//  * daemon        — every kernel verified over the reflexd wire
//                    protocol (in-process daemon, real socket), with
//                    statuses and reasons byte-identical to the local
//                    baseline (the determinism contract across the
//                    wire, bmc_payloads and all).
//
// Regression gates (exit non-zero on failure): zero oracle mismatches,
// same-seed regeneration byte-identical, verdict parity on every arm,
// dedupe count >= the property count, the warm-cache hit floor, the
// >= 2x warm-vs-cold speedup (timed runs), and — timed runs — at least
// 200 generated properties, so the corpus cannot quietly shrink below
// the scale this bench exists to exercise.
//
// Flags:
//   --seed N    corpus seed (default 42 — pinned; BENCH_corpus.json is
//               only comparable across runs at the pinned seed/scale)
//   --scale N   corpus scale (default 6; --smoke defaults to 2)
//   --jobs N    parallel worker count (default 4)
//   --smoke     one repetition, small scale, no speedup/size gates
//   --out FILE  JSON output path (default BENCH_corpus.json)
//
//===----------------------------------------------------------------------===//

#include "ast/cmd.h"
#include "bench_util.h"
#include "daemon/client.h"
#include "daemon/daemon.h"
#include "gen/generator.h"
#include "gen/oracle.h"
#include "reflex/reflex.h"
#include "service/scheduler.h"
#include "support/json.h"
#include "support/timer.h"
#include "verify/incremental.h"

#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include <unistd.h>

using namespace reflex;

namespace {

/// Inserts \p Stmt at the start of the \p I-th handler's body (0-based,
/// source order) — the same interface-preserving mutation idiom as
/// bench_incremental.
std::string mutateHandler(const std::string &Src, size_t I,
                          const std::string &Stmt) {
  size_t Pos = 0;
  for (size_t N = 0;; ++N) {
    Pos = Src.find("\nhandler ", Pos);
    if (Pos == std::string::npos)
      return {};
    size_t Brace = Src.find('{', Pos);
    if (Brace == std::string::npos)
      return {};
    if (N == I)
      return Src.substr(0, Brace + 1) + "\n  " + Stmt + Src.substr(Brace + 1);
    Pos = Brace;
  }
}

/// A no-op self-assignment of a variable handler \p H already assigns
/// (assign set unchanged, so the edit is interface-preserving). Empty
/// when the handler assigns nothing.
std::string nopFor(const Handler &H) {
  std::set<std::string> Assigned;
  collectAssignedVars(*H.Body, Assigned);
  if (Assigned.empty())
    return {};
  const std::string &V = *Assigned.begin();
  return V + " = " + V + ";";
}

struct EditedInstance {
  const gen::GeneratedInstance *Pristine = nullptr;
  ProgramPtr Edited;
};

/// The daemon verify frame for one instance, spelling the corpus verify
/// options with the exact protocol keys (docs/DAEMON.md).
std::string verifyFrame(const std::string &Source, unsigned Jobs) {
  VerifyOptions VO = gen::corpusVerifyOptions();
  JsonWriter W;
  W.beginObject();
  W.field("verb", "verify");
  W.field("program", Source);
  W.key("options");
  W.beginObject();
  W.field("jobs", int64_t(Jobs));
  W.field("bmc_depth", int64_t(VO.BmcDepthOnUnknown));
  W.field("bmc_states", int64_t(VO.Bmc.MaxStates));
  W.field("bmc_payloads", int64_t(VO.Bmc.MaxPayloadsPerMessage));
  W.endObject();
  W.endObject();
  return W.take();
}

} // namespace

int main(int Argc, char **Argv) {
  benchutil::BenchArgs BA;
  if (!benchutil::parseBenchArgs(Argc, Argv, "bench_corpus",
                                 "BENCH_corpus.json",
                                 {"--seed", "--scale", "--jobs"}, BA))
    return 2;
  const bool Smoke = BA.Smoke;
  gen::GenConfig C;
  C.Seed = BA.num("--seed", 42);
  C.Scale = unsigned(BA.num("--scale", Smoke ? 2 : 6));
  const unsigned Jobs = unsigned(BA.num("--jobs", 4));
  const unsigned Reps = Smoke ? 1 : 3;
  bool GatesOk = true;

  // --- Generate (timed) + same-seed regeneration determinism gate ------
  WallTimer GenTimer;
  gen::GeneratedCorpus Corpus = gen::generateCorpus(C);
  double GenMs = GenTimer.elapsedMillis();
  const size_t Props = Corpus.totalProperties();
  size_t ExpRefuted = 0, ExpProved = 0, ExpUnknown = 0;
  for (const gen::GeneratedInstance &Inst : Corpus.Instances)
    for (const gen::ExpectedVerdict &E : Inst.Expected)
      switch (E.Expect) {
      case gen::ExpectKind::Proved:
        ++ExpProved;
        break;
      case gen::ExpectKind::Refuted:
        ++ExpRefuted;
        break;
      case gen::ExpectKind::Unknown:
        ++ExpUnknown;
        break;
      }
  std::printf("=== Corpus macro bench: seed %llu scale %u — %zu kernels, "
              "%zu properties (%zu/%zu/%zu P/R/U expected) ===\n\n",
              (unsigned long long)C.Seed, C.Scale, Corpus.Instances.size(),
              Props, ExpProved, ExpRefuted, ExpUnknown);
  {
    gen::GeneratedCorpus Again = gen::generateCorpus(C);
    bool Same = Again.Instances.size() == Corpus.Instances.size() &&
                gen::corpusManifest(Again) == gen::corpusManifest(Corpus);
    for (size_t I = 0; Same && I < Corpus.Instances.size(); ++I)
      Same = Again.Instances[I].Source == Corpus.Instances[I].Source;
    if (!Same) {
      GatesOk = false;
      std::fprintf(stderr, "FAIL: same-seed regeneration is not "
                           "byte-identical\n");
    }
  }
  if (!Smoke && Props < 200) {
    GatesOk = false;
    std::fprintf(stderr,
                 "FAIL: corpus has %zu properties, below the 200 floor\n",
                 Props);
  }

  // --- Differential oracle (zero-mismatch gate) -------------------------
  gen::OracleOptions OOpts;
  OOpts.Jobs = Jobs;
  WallTimer OracleTimer;
  gen::OracleReport Oracle = gen::runOracle(Corpus, OOpts);
  double OracleMs = OracleTimer.elapsedMillis();
  std::printf("%-24s %10.2f ms   %zu proved+cert, %zu refuted+ce, %zu "
              "unknown, %zu parity arms\n",
              "differential oracle", OracleMs, Oracle.ProvedCertChecked,
              Oracle.RefutedConfirmed, Oracle.UnknownConfirmed,
              Oracle.ParityArms);
  if (!Oracle.clean()) {
    GatesOk = false;
    std::fprintf(stderr, "FAIL: oracle found %zu mismatch%s:\n%s",
                 Oracle.Mismatches.size(),
                 Oracle.Mismatches.size() == 1 ? "" : "es",
                 gen::describeMismatches(Oracle).c_str());
  }

  std::vector<const Program *> Programs;
  for (const gen::GeneratedInstance &Inst : Corpus.Instances)
    Programs.push_back(Inst.Program.get());

  // --- Cold sequential vs parallel (paired) -----------------------------
  SchedulerOptions Seq;
  Seq.Jobs = 1;
  Seq.Verify = gen::corpusVerifyOptions();
  SchedulerOptions Par = Seq;
  Par.Jobs = Jobs;
  verifyPrograms(Programs, Seq); // untimed warm-up
  BatchOutcome SeqOut, ParOut;
  benchutil::PairedSamples ParPairs = benchutil::measurePaired(
      Reps,
      [&] {
        SeqOut = verifyPrograms(Programs, Seq);
        return SeqOut.TotalMillis;
      },
      [&] {
        ParOut = verifyPrograms(Programs, Par);
        return ParOut.TotalMillis;
      });
  const double SeqMs = ParPairs.numMedian();
  const double ParMs = ParPairs.denMedian();
  auto BaseVerdicts = benchutil::flatVerdicts(SeqOut);
  if (benchutil::flatVerdicts(ParOut) != BaseVerdicts) {
    GatesOk = false;
    std::fprintf(stderr,
                 "FAIL: %u-worker verdicts differ from sequential\n", Jobs);
  }
  std::printf("%-24s %10.2f ms   (%u/%u proved)\n", "cold sequential", SeqMs,
              SeqOut.provedCount(), SeqOut.propertyCount());
  char ParLabel[64];
  std::snprintf(ParLabel, sizeof(ParLabel), "parallel (%u workers)", Jobs);
  std::printf("%-24s %10.2f ms   %.2fx\n", ParLabel, ParMs,
              ParPairs.speedup());

  // --- Dedupe: the corpus submitted twice in one batch ------------------
  std::vector<const Program *> Doubled = Programs;
  Doubled.insert(Doubled.end(), Programs.begin(), Programs.end());
  BatchOutcome Dd = verifyPrograms(Doubled, Par);
  auto DoubledVerdicts = BaseVerdicts;
  DoubledVerdicts.insert(DoubledVerdicts.end(), BaseVerdicts.begin(),
                         BaseVerdicts.end());
  if (benchutil::flatVerdicts(Dd) != DoubledVerdicts) {
    GatesOk = false;
    std::fprintf(stderr, "FAIL: doubled-batch verdicts differ from two "
                         "copies of the baseline\n");
  }
  if (Dd.DedupedJobs < Props) {
    GatesOk = false;
    std::fprintf(stderr,
                 "FAIL: doubled batch deduplicated %llu jobs, expected at "
                 "least %zu\n",
                 (unsigned long long)Dd.DedupedJobs, Props);
  }
  std::printf("%-24s %10.2f ms   %llu jobs deduplicated\n", "dedupe (2x batch)",
              Dd.TotalMillis, (unsigned long long)Dd.DedupedJobs);

  // --- Cache: wipe -> cold populate -> warm serve, per repetition -------
  // Refuted verdicts are never persisted (nothing to re-check on reload),
  // so the warm floor is the cacheable count, not the property count.
  const size_t Cacheable = Props - ExpRefuted;
  std::filesystem::path CacheDir =
      std::filesystem::temp_directory_path() /
      ("reflex-bench-corpus-" + std::to_string(::getpid()));
  std::vector<double> ColdMsS, WarmMsS, CacheRatios;
  bool WarmFloorOk = true, WarmParityOk = true;
  uint64_t WarmServed = 0;
  for (unsigned R = 0; R < Reps; ++R) {
    std::error_code EC;
    std::filesystem::remove_all(CacheDir, EC);
    Result<std::unique_ptr<ProofCache>> Cache =
        ProofCache::open(CacheDir.string());
    if (!Cache.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", Cache.error().c_str());
      return 1;
    }
    SchedulerOptions Cached = Par;
    Cached.Cache = Cache->get();
    BatchOutcome Cold = verifyPrograms(Programs, Cached);
    ColdMsS.push_back(Cold.TotalMillis);
    std::vector<double> Warm;
    BatchOutcome WarmOut;
    for (unsigned W = 0; W < (Smoke ? 1u : 3u); ++W) {
      WarmOut = verifyPrograms(Programs, Cached);
      Warm.push_back(WarmOut.TotalMillis);
    }
    double WarmMs = benchutil::median(Warm);
    WarmMsS.push_back(WarmMs);
    CacheRatios.push_back(WarmMs > 0 ? Cold.TotalMillis / WarmMs : 0);
    WarmServed = WarmOut.CacheStats.Hits + WarmOut.CacheStats.FootprintHits;
    if (WarmServed < Cacheable)
      WarmFloorOk = false;
    if (benchutil::flatVerdicts(WarmOut) != BaseVerdicts)
      WarmParityOk = false;
  }
  std::error_code EC;
  std::filesystem::remove_all(CacheDir, EC);
  double ColdMs = benchutil::median(ColdMsS);
  double WarmMs = benchutil::median(WarmMsS);
  double CacheSpeedup = benchutil::round2(benchutil::median(CacheRatios));
  std::printf("%-24s %10.2f ms\n", "cache cold (populate)", ColdMs);
  std::printf("%-24s %10.2f ms   %.2fx vs cold, %llu/%zu cacheable served\n",
              "cache warm", WarmMs, CacheSpeedup,
              (unsigned long long)WarmServed, Cacheable);
  if (!WarmFloorOk) {
    GatesOk = false;
    std::fprintf(stderr,
                 "FAIL: warm cache served %llu verdicts, below the %zu "
                 "cacheable floor\n",
                 (unsigned long long)WarmServed, Cacheable);
  }
  if (!WarmParityOk) {
    GatesOk = false;
    std::fprintf(stderr, "FAIL: warm-cache verdicts differ from baseline\n");
  }
  if (!Smoke && CacheSpeedup < 2.0) {
    GatesOk = false;
    std::fprintf(stderr, "FAIL: warm-vs-cold speedup %.2fx below the 2x "
                         "gate\n",
                 CacheSpeedup);
  }

  // --- Incremental: one no-op edit per kernel, audited reuse ------------
  std::vector<EditedInstance> Edits;
  for (const gen::GeneratedInstance &Inst : Corpus.Instances) {
    size_t EditIdx = SIZE_MAX;
    std::string Nop;
    for (size_t I = 0; I < Inst.Program->Handlers.size(); ++I) {
      std::string N = nopFor(Inst.Program->Handlers[I]);
      if (!N.empty()) {
        EditIdx = I;
        Nop = N;
      }
    }
    if (EditIdx == SIZE_MAX)
      continue;
    Result<ProgramPtr> P =
        loadProgram(mutateHandler(Inst.Source, EditIdx, Nop), Inst.Name);
    if (!P.ok()) {
      GatesOk = false;
      std::fprintf(stderr, "FAIL: edited %s does not load: %s\n",
                   Inst.Name.c_str(), P.error().c_str());
      continue;
    }
    Edits.push_back({&Inst, P.take()});
  }
  const VerifyOptions VOpts = gen::corpusVerifyOptions();
  uint64_t Reused = 0, Reverified = 0;
  bool AuditOk = true;
  for (const EditedInstance &E : Edits) {
    IncrementalVerifier IV(VOpts);
    IV.setAuditReuse(true);
    IV.verify(*E.Pristine->Program);
    IncrementalVerifier::Outcome Out = IV.verify(*E.Edited);
    Reused += Out.Reused;
    Reverified += Out.Reverified;
    if (Out.AuditFailures) {
      AuditOk = false;
      for (const std::string &Err : Out.AuditErrors)
        std::fprintf(stderr, "FAIL: %s audit: %s\n",
                     E.Pristine->Name.c_str(), Err.c_str());
    }
    VerificationReport Fresh = verifyProgram(*E.Edited, VOpts);
    if (Out.Report.Results.size() != Fresh.Results.size()) {
      AuditOk = false;
      continue;
    }
    for (size_t I = 0; I < Fresh.Results.size(); ++I) {
      const PropertyResult &Got = Out.Report.Results[I];
      const PropertyResult &Want = Fresh.Results[I];
      if (Got.Status != Want.Status || Got.Reason != Want.Reason ||
          Got.CertJson != Want.CertJson) {
        AuditOk = false;
        std::fprintf(stderr,
                     "FAIL: %s / %s: incremental verdict differs from "
                     "from-scratch\n",
                     E.Pristine->Name.c_str(), Want.Name.c_str());
      }
    }
  }
  if (!AuditOk)
    GatesOk = false;
  auto FullBatch = [&] {
    double Ms = 0;
    for (const EditedInstance &E : Edits) {
      IncrementalVerifier IV(VOpts);
      Ms += IV.verify(*E.Edited).Report.TotalMillis;
    }
    return Ms;
  };
  auto EditOneBatch = [&] {
    double Ms = 0;
    for (const EditedInstance &E : Edits) {
      IncrementalVerifier IV(VOpts);
      IV.verify(*E.Pristine->Program); // untimed pre-edit warm-up
      Ms += IV.verify(*E.Edited).Report.TotalMillis;
    }
    return Ms;
  };
  benchutil::PairedSamples IncPairs =
      benchutil::measurePaired(Reps, FullBatch, EditOneBatch);
  std::printf("%-24s %10.2f ms\n", "full re-verify (edited)",
              IncPairs.numMedian());
  std::printf("%-24s %10.2f ms   %.2fx vs full, %llu reused + %llu "
              "re-verified\n",
              "incremental edit-one", IncPairs.denMedian(),
              IncPairs.speedup(), (unsigned long long)Reused,
              (unsigned long long)Reverified);

  // --- Daemon: the corpus over the wire ---------------------------------
  std::string DaemonDir =
      "/tmp/rfx-bench-corpus-" + std::to_string(::getpid());
  std::filesystem::create_directories(DaemonDir);
  std::string Socket = DaemonDir + "/d.sock";
  DaemonOptions DOpts;
  DOpts.SocketPath = Socket;
  DOpts.Jobs = Jobs;
  double DaemonMs = 0;
  bool DaemonParityOk = true;
  {
    Result<std::unique_ptr<ReflexDaemon>> D = ReflexDaemon::start(DOpts);
    if (!D.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", D.error().c_str());
      return 1;
    }
    (*D)->serveInBackground();
    Result<DaemonClient> Client = DaemonClient::connect(Socket);
    if (!Client.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", Client.error().c_str());
      return 1;
    }
    auto DaemonBatch = [&](bool Compare) {
      WallTimer T;
      for (size_t I = 0; I < Corpus.Instances.size(); ++I) {
        const gen::GeneratedInstance &Inst = Corpus.Instances[I];
        Result<JsonValue> Resp =
            Client->call(verifyFrame(Inst.Source, Jobs));
        if (!Resp.ok() || !Resp->getBool("ok")) {
          DaemonParityOk = false;
          std::fprintf(stderr, "FAIL: daemon verify of %s: %s\n",
                       Inst.Name.c_str(),
                       Resp.ok() ? Resp->getString("error").c_str()
                                 : Resp.error().c_str());
          continue;
        }
        if (!Compare)
          continue;
        const JsonValue *Results = Resp->get("results");
        const VerificationReport &Base = SeqOut.Reports[I];
        if (!Results || !Results->isArray() ||
            Results->items().size() != Base.Results.size()) {
          DaemonParityOk = false;
          std::fprintf(stderr, "FAIL: daemon result shape for %s\n",
                       Inst.Name.c_str());
          continue;
        }
        for (size_t J = 0; J < Base.Results.size(); ++J) {
          const JsonValue &Got = Results->items()[J];
          const PropertyResult &Want = Base.Results[J];
          if (Got.getString("name") != Want.Name ||
              Got.getString("status") != verifyStatusName(Want.Status) ||
              (Want.Status != VerifyStatus::Proved &&
               Got.getString("reason") != Want.Reason)) {
            DaemonParityOk = false;
            std::fprintf(stderr,
                         "FAIL: daemon verdict for %s/%s differs from the "
                         "local baseline\n",
                         Inst.Name.c_str(), Want.Name.c_str());
          }
        }
      }
      return T.elapsedMillis();
    };
    DaemonBatch(/*Compare=*/true); // parity pass, also warms the daemon
    std::vector<double> DaemonMsS;
    for (unsigned R = 0; R < Reps; ++R)
      DaemonMsS.push_back(DaemonBatch(/*Compare=*/false));
    DaemonMs = benchutil::median(DaemonMsS);
    (void)Client->call("{\"verb\":\"shutdown\"}");
    (*D)->stop();
    D->reset();
  }
  std::filesystem::remove_all(DaemonDir, EC);
  if (!DaemonParityOk)
    GatesOk = false;
  std::printf("%-24s %10.2f ms   (wire round-trips, %zu kernels)\n",
              "daemon batch", DaemonMs, Corpus.Instances.size());

  // --- JSON trajectory record -------------------------------------------
  JsonWriter W;
  W.beginObject();
  W.field("bench", "corpus");
  W.field("smoke", Smoke);
  W.field("seed", int64_t(C.Seed));
  W.field("scale", int64_t(C.Scale));
  W.field("reps", int64_t(Reps));
  W.field("kernels", int64_t(Corpus.Instances.size()));
  W.field("properties", int64_t(Props));
  W.field("expected_proved", int64_t(ExpProved));
  W.field("expected_refuted", int64_t(ExpRefuted));
  W.field("expected_unknown", int64_t(ExpUnknown));
  W.key("gen_ms");
  W.value(GenMs);
  W.key("oracle");
  W.beginObject();
  W.key("ms");
  W.value(OracleMs);
  W.field("proved_cert_checked", int64_t(Oracle.ProvedCertChecked));
  W.field("refuted_confirmed", int64_t(Oracle.RefutedConfirmed));
  W.field("unknown_confirmed", int64_t(Oracle.UnknownConfirmed));
  W.field("interp_traces", int64_t(Oracle.InterpTraces));
  W.field("interp_exchanges", int64_t(Oracle.InterpExchanges));
  W.field("parity_arms", int64_t(Oracle.ParityArms));
  W.field("mismatches", int64_t(Oracle.Mismatches.size()));
  W.endObject();
  W.key("sequential_ms");
  W.value(SeqMs);
  W.key("parallel");
  W.beginObject();
  W.field("jobs", int64_t(Jobs));
  W.key("ms");
  W.value(ParMs);
  W.key("speedup");
  W.value(ParPairs.speedup());
  W.endObject();
  W.field("deduped_jobs", int64_t(Dd.DedupedJobs));
  W.key("cache");
  W.beginObject();
  W.key("cold_ms");
  W.value(ColdMs);
  W.key("warm_ms");
  W.value(WarmMs);
  W.key("warm_speedup_vs_cold");
  W.value(CacheSpeedup);
  W.field("warm_served", int64_t(WarmServed));
  W.field("cacheable", int64_t(Cacheable));
  W.endObject();
  W.key("incremental");
  W.beginObject();
  W.key("full_reverify_ms");
  W.value(IncPairs.numMedian());
  W.key("edit_one_ms");
  W.value(IncPairs.denMedian());
  W.key("edit_one_speedup");
  W.value(IncPairs.speedup());
  W.field("reused", int64_t(Reused));
  W.field("reverified", int64_t(Reverified));
  W.field("audit_ok", AuditOk);
  W.endObject();
  W.key("daemon_ms");
  W.value(DaemonMs);
  W.field("gates_ok", GatesOk);
  W.endObject();
  if (!benchutil::writeJsonRecord(W, BA.OutPath))
    return 1;

  if (!GatesOk) {
    std::fprintf(stderr, "FAIL: corpus bench gates failed\n");
    return 1;
  }
  return 0;
}
