//===- bench/bench_util.h - Shared bench measurement scaffolding -*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement and reporting idioms every bench_* binary repeats:
///
///  * median-of-samples (medians resist the container's heavy-tailed
///    scheduler noise; minima hide contended phases and can drive derived
///    overhead percentages negative);
///  * the paired adjacent-batch ratio estimator — a speedup is the median
///    of per-pair ratios, each pair's two batches run back to back with
///    alternating order, so batch-scale container jitter cancels instead
///    of masquerading as a speedup or slowdown;
///  * two-decimal rounding for reported speedups (the honest precision at
///    this host's noise floor);
///  * the common flag grammar (--smoke, --out FILE, named numeric flags)
///    with a structured usage error on junk;
///  * the flattened per-property (status/name, reason) verdict key that
///    the scheduler's determinism contract is gated on;
///  * the JSON-trajectory tail (write the record, print the path).
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_BENCH_BENCH_UTIL_H
#define REFLEX_BENCH_BENCH_UTIL_H

#include "service/scheduler.h"
#include "support/json.h"

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace reflex {
namespace benchutil {

/// Median of \p V (odd sizes → true median). Aborts on empty input — a
/// bench that measured nothing has a bug, not a zero.
double median(std::vector<double> V);

/// Two significant decimals: the per-ratio noise floor on this host is a
/// couple of percent, so further digits are not signal.
double round2(double X);

/// One paired-ratio experiment: per-pair samples of the two arms plus the
/// per-pair Num/Den ratios (Num is conventionally the slower baseline, so
/// the ratio reads as the speedup of Den).
struct PairedSamples {
  std::vector<double> NumMs;
  std::vector<double> DenMs;
  std::vector<double> Ratios;

  double numMedian() const { return median(NumMs); }
  double denMedian() const { return median(DenMs); }
  /// round2(median of the per-pair ratios) — the headline speedup.
  double speedup() const { return round2(median(Ratios)); }
};

/// Runs \p Pairs (baseline, candidate) pairs back to back. Within a pair
/// the order alternates (num-then-den on even pairs, den-then-num on odd
/// ones), so any systematic first-of-pair effect cancels too. Each thunk
/// returns one timed sample in milliseconds — callers that want
/// sub-batch medians take them inside the thunk.
PairedSamples measurePaired(unsigned Pairs,
                            const std::function<double()> &Num,
                            const std::function<double()> &Den);

/// The common bench command line: --smoke, --out FILE, plus a
/// bench-specific set of numeric value flags ("--jobs", "--stages", ...).
struct BenchArgs {
  bool Smoke = false;
  std::string OutPath;
  std::map<std::string, size_t> Nums;

  size_t num(const std::string &Flag, size_t Default) const {
    auto It = Nums.find(Flag);
    return It == Nums.end() ? Default : It->second;
  }
};

/// Parses argv. \p NumFlags lists the accepted numeric value flags; any
/// other argument (or a non-numeric value) prints a usage line built from
/// \p Name + \p NumFlags to stderr and returns false — callers `return 2`.
bool parseBenchArgs(int Argc, char **Argv, const std::string &Name,
                    const std::string &DefaultOut,
                    const std::vector<std::string> &NumFlags, BenchArgs &Out);

/// Statuses+reasons of a batch, flattened in deterministic report order:
/// ("Status/Name", Reason) per property. Two batches verified under the
/// same options must compare equal — the determinism contract.
std::vector<std::pair<std::string, std::string>>
flatVerdicts(const BatchOutcome &Out);

/// Writes the JSON record to \p OutPath (with trailing newline) and
/// prints "wrote <path>". Returns false (after an stderr message) when
/// the file cannot be written. Consumes the writer.
bool writeJsonRecord(JsonWriter &W, const std::string &OutPath);

} // namespace benchutil
} // namespace reflex

#endif // REFLEX_BENCH_BENCH_UTIL_H
