//===- bench/bench_daemon.cc - Warm daemon vs cold one-shot CLI -----------===//
//
// The reason reflexd exists, measured: the re-verify step of the paper's
// edit-verify loop through a warm daemon session (parsed program, frozen
// abstraction, shared cache tiers, and footprint-reusable verdicts all
// resident) versus the cold one-shot CLI the workflow would otherwise
// pay per iteration (process spawn, parse, abstraction build, full
// verification).
//
// Protocol: one in-process daemon, one session opened on the pristine
// kernel (untimed warm-up). Two scenarios, each measured as back-to-back
// *pairs* with alternating order so machine jitter cancels; the metric
// is the median of the paired cold/warm ratios.
//
//  * warm re-verify (the headline, gated): an `edit` round-trip with the
//    unchanged source — the watch-mode tick after a save that did not
//    change the kernel. The daemon re-fingerprints the program and
//    serves every verdict from the session's footprint-checked store;
//    the cold arm is a full fork/exec `reflex verify` of the same file.
//    Gate (outside --smoke): >= 3x.
//  * one-handler edit (reported, ungated): the `edit` round-trip after a
//    real interface-preserving change. Footprint-disjoint verdicts are
//    reused; the dependents re-verify through the scheduler — but a
//    changed program forces a fresh frozen abstraction, which is O(all
//    handlers), so this ratio is workload-dependent by nature. Reported
//    so the trajectory is visible; bench_incremental gates the
//    underlying reuse machinery.
//
// Correctness gates (exit non-zero): every daemon response must be ok,
// prove exactly what a from-scratch scheduler run proves for the same
// source, and the warm re-verify must actually reuse every verdict
// (reused == properties, reverified == 0) — otherwise the bench would
// be timing the wrong thing.
//
// Flags:
//   --stages N  chain-kernel size (default 12)
//   --smoke     two repetitions, no speedup gate (CI under sanitizers)
//   --out FILE  JSON output path (default BENCH_daemon.json)
//
//===----------------------------------------------------------------------===//

#include "ast/cmd.h"
#include "daemon/client.h"
#include "daemon/daemon.h"
#include "kernels/synthetic.h"
#include "reflex/reflex.h"
#include "service/scheduler.h"
#include "support/json.h"
#include "support/timer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <unistd.h>

using namespace reflex;

namespace {

std::string mutateHandler(const std::string &Src, size_t I,
                          const std::string &Stmt) {
  size_t Pos = 0;
  for (size_t N = 0;; ++N) {
    Pos = Src.find("\nhandler ", Pos);
    if (Pos == std::string::npos)
      return {};
    size_t Brace = Src.find('{', Pos);
    if (Brace == std::string::npos)
      return {};
    if (N == I)
      return Src.substr(0, Brace + 1) + "\n  " + Stmt + Src.substr(Brace + 1);
    Pos = Brace;
  }
}

std::string nopFor(const Handler &H) {
  std::set<std::string> Assigned;
  collectAssignedVars(*H.Body, Assigned);
  if (Assigned.empty())
    return {};
  const std::string &V = *Assigned.begin();
  return V + " = " + V + ";";
}

ProgramPtr mustLoad(const std::string &Src, const char *What) {
  Result<ProgramPtr> P = loadProgram(Src, What);
  if (!P.ok()) {
    std::fprintf(stderr, "FAIL: cannot load %s: %s\n", What, P.error().c_str());
    std::exit(1);
  }
  return P.take();
}

double median(std::vector<double> V) {
  std::sort(V.begin(), V.end());
  return V[V.size() / 2];
}

std::string editFrame(const std::string &Session, const std::string &Program) {
  JsonWriter W;
  W.beginObject();
  W.field("verb", "edit");
  W.field("session", Session);
  W.field("program", Program);
  W.endObject();
  return W.take();
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Stages = 12;
  bool Smoke = false;
  std::string OutPath = "BENCH_daemon.json";
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--stages") && I + 1 < Argc)
      Stages = unsigned(std::stoul(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--smoke"))
      Smoke = true;
    else if (!std::strcmp(Argv[I], "--out") && I + 1 < Argc)
      OutPath = Argv[++I];
    else {
      std::fprintf(stderr,
                   "usage: bench_daemon [--stages N] [--smoke] [--out FILE]\n");
      return 2;
    }
  }
  const unsigned Reps = Smoke ? 2 : 10;

  // The subject: the synthetic stage chain (many properties — the
  // workload sessions exist for) and an interface-preserving one-handler
  // edit of it.
  std::string Src1 = kernels::syntheticChainKernel(Stages);
  ProgramPtr P1 = mustLoad(Src1, "chain");
  size_t EditIdx = SIZE_MAX;
  std::string Nop;
  for (size_t I = 0; I < P1->Handlers.size(); ++I) {
    std::string N = nopFor(P1->Handlers[I]);
    if (!N.empty()) {
      EditIdx = I;
      Nop = N;
    }
  }
  if (EditIdx == SIZE_MAX) {
    std::fprintf(stderr, "FAIL: chain kernel has no editable handler\n");
    return 1;
  }
  std::string SrcOne = mutateHandler(Src1, EditIdx, Nop);
  ProgramPtr POne = mustLoad(SrcOne, "chain (edited)");

  // Expected proved counts, from scratch, for the correctness gate.
  SchedulerOptions SOpts;
  SOpts.Jobs = 0;
  unsigned Proved1 = verifyPrograms({P1.get()}, SOpts).provedCount();
  unsigned ProvedOne = verifyPrograms({POne.get()}, SOpts).provedCount();
  size_t Props = P1->Properties.size();

  // Kernel files for the cold CLI runs.
  std::string Dir = "/tmp/rfx-bench-daemon-" + std::to_string(::getpid());
  std::filesystem::create_directories(Dir);
  std::string File1 = Dir + "/chain.rfx";
  std::string FileOne = Dir + "/chain_one.rfx";
  std::ofstream(File1) << Src1;
  std::ofstream(FileOne) << SrcOne;

  // The daemon, in process, with a warm session on the pristine kernel.
  std::string Socket = Dir + "/d.sock";
  DaemonOptions DOpts;
  DOpts.SocketPath = Socket;
  Result<std::unique_ptr<ReflexDaemon>> D = ReflexDaemon::start(DOpts);
  if (!D.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", D.error().c_str());
    return 1;
  }
  (*D)->serveInBackground();
  Result<DaemonClient> C = DaemonClient::connect(Socket);
  if (!C.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", C.error().c_str());
    return 1;
  }

  bool VerdictsOk = true;
  auto Expect = [&](const Result<JsonValue> &Resp, unsigned WantProved,
                    const char *What) {
    if (!Resp.ok() || !Resp->getBool("ok") ||
        unsigned(Resp->getNumber("proved")) != WantProved) {
      VerdictsOk = false;
      std::fprintf(stderr, "FAIL: %s did not prove %u properties (%s)\n",
                   What, WantProved,
                   Resp.ok() ? Resp->getString("error").c_str()
                             : Resp.error().c_str());
    }
  };
  {
    JsonWriter W;
    W.beginObject();
    W.field("verb", "open-session");
    W.field("session", "bench");
    W.field("program", Src1);
    W.endObject();
    Expect(C->call(W.take()), Proved1, "open-session");
  }

  auto ColdRun = [&](const std::string &File) {
    std::string Cmd =
        std::string(REFLEX_CLI_PATH) + " verify " + File + " > /dev/null 2>&1";
    WallTimer T;
    int Rc = std::system(Cmd.c_str());
    if (Rc != 0) {
      VerdictsOk = false;
      std::fprintf(stderr, "FAIL: cold CLI run exited %d\n", Rc);
    }
    return T.elapsedMillis();
  };
  // The warm re-verify: the session already sits at Src1; every verdict
  // must come back from the footprint-checked store. Timed as the raw
  // round-trip (request on the wire -> response frame off the wire) —
  // what the client does with the response afterwards is its own
  // business, exactly as the cold arm's timing ends when the CLI exits.
  auto WarmReverify = [&] {
    std::string Frame = editFrame("bench", Src1);
    WallTimer T;
    Result<std::string> Raw = C->callRaw(Frame);
    double Ms = T.elapsedMillis();
    Result<JsonValue> Resp =
        Raw.ok() ? parseJson(*Raw) : Result<JsonValue>(Error(Raw.error()));
    Expect(Resp, Proved1, "warm re-verify");
    if (Resp.ok() && (size_t(Resp->getNumber("reused")) != Props ||
                      Resp->getNumber("reverified") != 0)) {
      VerdictsOk = false;
      std::fprintf(stderr,
                   "FAIL: warm re-verify did not reuse every verdict\n");
    }
    return Ms;
  };
  auto WarmEdit = [&](bool Edited) {
    std::string Frame = editFrame("bench", Edited ? SrcOne : Src1);
    WallTimer T;
    Result<std::string> Raw = C->callRaw(Frame);
    double Ms = T.elapsedMillis();
    Result<JsonValue> Resp =
        Raw.ok() ? parseJson(*Raw) : Result<JsonValue>(Error(Raw.error()));
    Expect(Resp, Edited ? ProvedOne : Proved1, "edit");
    return Ms;
  };

  ColdRun(File1); // untimed warm-ups: page cache for the CLI
  WarmReverify(); // and the session's verdict store

  // Scenario 1 (gated): warm re-verify vs cold one-shot, paired.
  std::vector<double> ColdMsS, ReMsS, ReRatios;
  for (unsigned R = 0; R < Reps; ++R) {
    double ColdMs = 0, ReMs = 0;
    if (R % 2 == 0) {
      ColdMs = ColdRun(File1);
      ReMs = WarmReverify();
    } else {
      ReMs = WarmReverify();
      ColdMs = ColdRun(File1);
    }
    ColdMsS.push_back(ColdMs);
    ReMsS.push_back(ReMs);
    ReRatios.push_back(ReMs > 0 ? ColdMs / ReMs : 0);
  }

  // Scenario 2 (reported): a real one-handler edit each round-trip,
  // alternating sources so every request is a genuine program change.
  std::vector<double> EditColdMsS, EditMsS, EditRatios;
  WarmEdit(true); // leave the session mid-alternation, untimed
  for (unsigned R = 0; R < Reps; ++R) {
    bool Edited = (R % 2) != 0; // session currently holds the other one
    const std::string &File = Edited ? FileOne : File1;
    double ColdMs = 0, EditMs = 0;
    if (R % 2 == 0) {
      ColdMs = ColdRun(File);
      EditMs = WarmEdit(Edited);
    } else {
      EditMs = WarmEdit(Edited);
      ColdMs = ColdRun(File);
    }
    EditColdMsS.push_back(ColdMs);
    EditMsS.push_back(EditMs);
    EditRatios.push_back(EditMs > 0 ? ColdMs / EditMs : 0);
  }

  (void)C->call("{\"verb\":\"shutdown\"}");
  (*D)->stop();
  D->reset();
  std::filesystem::remove_all(Dir);

  auto Round2 = [](double X) { return std::round(X * 100) / 100; };
  double ColdMs = median(ColdMsS), ReMs = median(ReMsS);
  double EditColdMs = median(EditColdMsS), EditMs = median(EditMsS);
  double Speedup = Round2(median(ReRatios));
  double EditSpeedup = Round2(median(EditRatios));
  std::printf("=== reflexd warm session vs cold one-shot CLI (%zu "
              "properties) ===\n",
              Props);
  std::printf("%-34s %10.2f ms\n", "cold one-shot CLI", ColdMs);
  std::printf("%-34s %10.2f ms   %.2fx\n", "warm re-verify (unchanged)", ReMs,
              Speedup);
  std::printf("%-34s %10.2f ms   %.2fx (cold: %.2f ms)\n",
              "warm one-handler edit", EditMs, EditSpeedup, EditColdMs);

  JsonWriter W;
  W.beginObject();
  W.field("bench", "daemon");
  W.field("smoke", Smoke);
  W.field("reps", int64_t(Reps));
  W.field("chain_stages", int64_t(Stages));
  W.field("properties", int64_t(Props));
  W.key("cold_cli_ms");
  W.value(ColdMs);
  W.key("warm_reverify_ms");
  W.value(ReMs);
  W.key("warm_session_speedup");
  W.value(Speedup);
  W.key("edit_cold_cli_ms");
  W.value(EditColdMs);
  W.key("warm_edit_ms");
  W.value(EditMs);
  W.key("warm_edit_speedup");
  W.value(EditSpeedup);
  W.field("verdicts_ok", VerdictsOk);
  W.endObject();
  std::ofstream Out(OutPath);
  Out << W.take() << "\n";
  std::printf("\nwrote %s\n", OutPath.c_str());

  if (!VerdictsOk) {
    std::fprintf(stderr, "FAIL: daemon verdicts diverged from scratch runs\n");
    return 1;
  }
  if (!Smoke && Speedup < 3.0) {
    std::fprintf(stderr,
                 "FAIL: warm re-verify speedup %.2fx below the 3x gate\n",
                 Speedup);
    return 1;
  }
  return 0;
}
