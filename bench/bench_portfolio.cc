//===- bench/bench_portfolio.cc - Engine portfolio bench ------------------===//
//
// The proof-engine portfolio bench (docs/ENGINES.md): the seven paper
// kernels plus the pdrlock demo kernel verified under each engine —
// induction, PDR, and the racing portfolio — with per-engine timings and
// proved counts, written to BENCH_portfolio.json.
//
// Correctness gates (exit non-zero on failure):
//  * separation: pdrlock's RogueNeedsBlessing is Unknown under induction
//    but Proved under PDR with a checker-accepted clausal certificate —
//    the portfolio's reason to exist;
//  * the portfolio serves that property through PDR, and its verdicts
//    over the whole suite are byte-identical (statuses, reasons,
//    certificates, serving engines) across one worker and many — the
//    canonical selection rule erases the race's timing;
//  * every engine's verdicts are themselves jobs-count independent.
//
// Flags:
//   --jobs N    parallel worker count for the parity check (default 4;
//               0 = cores)
//   --smoke     one repetition (the ctest gate uses this)
//   --out FILE  JSON output path (default BENCH_portfolio.json)
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"
#include "service/scheduler.h"
#include "service/threadpool.h"
#include "support/json.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace reflex;

namespace {

struct Suite {
  std::vector<ProgramPtr> Owned;
  std::vector<const Program *> Programs;
};

Suite loadSuite() {
  Suite S;
  for (const kernels::KernelDef *K : kernels::all()) {
    S.Owned.push_back(kernels::load(*K));
    S.Programs.push_back(S.Owned.back().get());
  }
  // The engine-separating demo kernel rides along (not part of the
  // paper's 41-property evaluation set).
  S.Owned.push_back(kernels::load(kernels::pdrlock()));
  S.Programs.push_back(S.Owned.back().get());
  return S;
}

/// Everything a verdict is made of, flattened in deterministic order:
/// status, reason, serving engine, and the certificate bytes.
std::vector<std::string> verdicts(const BatchOutcome &Out) {
  std::vector<std::string> V;
  for (const VerificationReport &R : Out.Reports)
    for (const PropertyResult &PR : R.Results)
      V.push_back(PR.Name + "|" + verifyStatusName(PR.Status) + "|" +
                  PR.Reason + "|" + PR.ServedBy + "|" + PR.CertJson);
  return V;
}

double medianMs(unsigned Runs, const std::vector<const Program *> &Programs,
                const SchedulerOptions &Opts, BatchOutcome *Last) {
  std::vector<double> Ms;
  Ms.reserve(Runs);
  for (unsigned I = 0; I < Runs; ++I) {
    BatchOutcome Out = verifyPrograms(Programs, Opts);
    Ms.push_back(Out.TotalMillis);
    if (Last)
      *Last = std::move(Out);
  }
  std::sort(Ms.begin(), Ms.end());
  return Ms[Ms.size() / 2];
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Jobs = 4;
  bool Smoke = false;
  std::string OutPath = "BENCH_portfolio.json";
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--jobs") && I + 1 < Argc)
      Jobs = unsigned(std::stoul(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--smoke"))
      Smoke = true;
    else if (!std::strcmp(Argv[I], "--out") && I + 1 < Argc)
      OutPath = Argv[++I];
    else {
      std::fprintf(stderr, "usage: bench_portfolio [--jobs N] [--smoke] "
                           "[--out FILE]\n");
      return 2;
    }
  }
  if (Jobs == 0)
    Jobs = ThreadPool::defaultWorkerCount();
  const unsigned Runs = Smoke ? 1 : 5;

  Suite S = loadSuite();
  std::printf("=== Engine portfolio: %zu kernels (incl. pdrlock) ===\n\n",
              S.Programs.size());

  bool Ok = true;

  // --- Gate 1: the engines separate on pdrlock -------------------------
  const Program *Pdrlock = S.Programs.back();
  unsigned SeparatedProps = 0;
  bool PdrCertChecked = false;
  {
    VerifyOptions Ind;
    Ind.Engine = EngineKind::Induction;
    VerificationReport IndR = verifyProgram(*Pdrlock, Ind);
    VerifyOptions Pdr;
    Pdr.Engine = EngineKind::Pdr;
    VerificationReport PdrR = verifyProgram(*Pdrlock, Pdr);
    for (size_t I = 0; I < IndR.Results.size(); ++I) {
      const PropertyResult &A = IndR.Results[I];
      const PropertyResult &B = PdrR.Results[I];
      if (A.Status == VerifyStatus::Unknown &&
          B.Status == VerifyStatus::Proved) {
        ++SeparatedProps;
        PdrCertChecked = PdrCertChecked || B.CertChecked;
        std::printf("separated: %-28s induction=%s pdr=%s%s\n",
                    A.Name.c_str(), verifyStatusName(A.Status),
                    verifyStatusName(B.Status),
                    B.CertChecked ? " [cert checked]" : "");
      }
    }
  }
  if (SeparatedProps == 0 || !PdrCertChecked) {
    std::fprintf(stderr, "FAIL: no property is Unknown under induction but "
                         "Proved (cert-checked) under PDR\n");
    Ok = false;
  }

  // --- Gate 2: the portfolio serves it through PDR ---------------------
  {
    VerifyOptions Port;
    Port.Engine = EngineKind::Portfolio;
    VerificationReport R = verifyProgram(*Pdrlock, Port);
    const PropertyResult *PR = R.find("RogueNeedsBlessing");
    if (!PR || PR->Status != VerifyStatus::Proved || PR->ServedBy != "pdr") {
      std::fprintf(stderr, "FAIL: portfolio did not serve "
                           "RogueNeedsBlessing through PDR\n");
      Ok = false;
    }
  }

  // --- Timings + Gate 3: jobs-1-vs-N byte parity per engine ------------
  struct EngineRow {
    const char *Name;
    EngineKind Kind;
    double SeqMs = 0;
    double ParMs = 0;
    unsigned Proved = 0;
    unsigned Properties = 0;
  };
  std::vector<EngineRow> Rows = {
      {"induction", EngineKind::Induction},
      {"pdr", EngineKind::Pdr},
      {"portfolio", EngineKind::Portfolio},
  };
  for (EngineRow &Row : Rows) {
    SchedulerOptions Seq;
    Seq.Jobs = 1;
    Seq.Verify.Engine = Row.Kind;
    SchedulerOptions Par = Seq;
    Par.Jobs = Jobs;
    BatchOutcome SeqOut, ParOut;
    Row.SeqMs = medianMs(Runs, S.Programs, Seq, &SeqOut);
    Row.ParMs = medianMs(Runs, S.Programs, Par, &ParOut);
    Row.Proved = SeqOut.provedCount();
    Row.Properties = ParOut.propertyCount();
    if (verdicts(SeqOut) != verdicts(ParOut)) {
      std::fprintf(stderr,
                   "FAIL: %s verdicts differ between 1 and %u workers\n",
                   Row.Name, Jobs);
      Ok = false;
    }
    std::printf("%-12s %3u/%3u proved   seq %8.2f ms   %u workers %8.2f "
                "ms\n",
                Row.Name, Row.Proved, Row.Properties, Row.SeqMs, Jobs,
                Row.ParMs);
  }

  JsonWriter W;
  W.beginObject();
  W.field("bench", "portfolio");
  W.field("jobs", int64_t(Jobs));
  W.field("smoke", Smoke);
  W.field("separated_properties", int64_t(SeparatedProps));
  W.key("engines");
  W.beginArray();
  for (const EngineRow &Row : Rows) {
    W.beginObject();
    W.field("engine", Row.Name);
    W.field("proved", int64_t(Row.Proved));
    W.field("properties", int64_t(Row.Properties));
    W.key("seq_ms");
    W.value(Row.SeqMs);
    W.key("par_ms");
    W.value(Row.ParMs);
    W.endObject();
  }
  W.endArray();
  W.field("deterministic", Ok);
  W.endObject();
  std::ofstream OutF(OutPath, std::ios::trunc);
  OutF << W.take() << "\n";
  std::printf("\nwrote %s\n", OutPath.c_str());

  if (!Ok) {
    std::fprintf(stderr, "\nFAIL: portfolio gates failed\n");
    return 1;
  }
  std::printf("portfolio gates passed\n");
  return 0;
}
