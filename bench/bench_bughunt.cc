//===- bench/bench_bughunt.cc - §6.3 utility: catching bugs -----*- C++ -*-===//
//
// Reproduces §6.3 ("Reflex Utility"): the automation catches injected
// bugs — in the paper, a browser protocol change silently broke properties
// until the automation failed to prove them, and two web-server policies
// turned out to be simply false. This bench injects representative bugs
// into each kernel (by mutating the embedded Reflex source), re-runs the
// prover on the affected property, and — where the property is a trace
// property — asks the bounded model checker for a concrete counterexample
// trace.
//
// Expected shape: every mutant is rejected by the prover (no false
// "Proved"), and the BMC produces a concrete violating trace for each
// genuinely false trace property.
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace reflex;

namespace {

struct Mutation {
  const char *Kernel;
  const char *Description;
  /// Source rewrite: find -> replace (must occur exactly once).
  const char *Find;
  const char *Replace;
  /// The property the bug breaks.
  const char *Property;
  /// BMC depth sufficient to expose it (0: property is NI, no BMC).
  size_t BmcDepth;
};

const std::vector<Mutation> Mutations = {
    {"ssh", "terminal handed out without checking authentication",
     "handler Connection => ReqTerm(user) {\n  if (auth_ok && user == "
     "auth_user) {\n    send(T, CreatePty(user));\n  }\n}",
     "handler Connection => ReqTerm(user) {\n  send(T, CreatePty(user));\n}",
     "AuthBeforeTerm", 1},
    {"ssh", "attempt counter never advances past the first attempt",
     "attempts = 1;", "attempts = 0;", "FirstAttemptDisablesItself", 2},
    {"car", "crash flag never set, so doors can lock after a crash",
     "crashed = true;", "nop;", "NoLockAfterCrash", 2},
    {"car", "airbag deployment no longer immediate after crash",
     "send(A, Deploy());\n  send(D, DoorsMsg(\"unlock\"));",
     "send(D, DoorsMsg(\"unlock\"));\n  send(A, Deploy());",
     "AirbagsImmediatelyAfterCrash", 1},
    {"browser", "cookie routed to an arbitrary domain's cookie process",
     "lookup CookieProc(domain == sender.domain) as cp {\n    send(cp, "
     "CookieSet(sender.domain, k, v));",
     "lookup CookieProc() as cp {\n    send(cp, "
     "CookieSet(sender.domain, k, v));",
     "CookiesStayInDomain", 3},
    {"browser", "cross-domain cookie flow breaks non-interference",
     "lookup Tab(domain == sender.domain) as t {\n    send(t, "
     "DeliverCookie(k, v));",
     "lookup Tab() as t {\n    send(t, DeliverCookie(k, v));",
     "DomainNonInterference", 0},
    {"browser", "socket whitelist check dropped",
     "if (host == sender.domain) {\n    send(N, SocketOpen(host));\n  }",
     "send(N, SocketOpen(host));", "TabsOnlyOpenAllowedSockets", 1},
    {"webserver", "client handler spawned straight from a connection "
     "attempt, before credentials are checked",
     "handler Listener => Connect(user, pass) {\n  send(ACL, "
     "CheckCred(user, pass));\n}",
     "handler Listener => Connect(user, pass) {\n  nc <- spawn "
     "Client(user);\n  send(ACL, CheckCred(user, pass));\n}",
     "ClientOnlySpawnedOnLogin", 1},
    {"webserver", "duplicate client handlers for the same user",
     "lookup Client(user == u) as c {\n    nop;\n  } else {\n    nc <- "
     "spawn Client(u);\n    send(nc, Welcome(u));\n  }",
     "nc <- spawn Client(u);\n  send(nc, Welcome(u));",
     "ClientsNeverDuplicated", 3},
};

} // namespace

int main() {
  std::printf("=== §6.3: the automation catches injected bugs ===\n\n");
  unsigned Rejected = 0, Refuted = 0, NeedBmc = 0;

  for (const Mutation &M : Mutations) {
    const kernels::KernelDef *K = nullptr;
    for (const kernels::KernelDef *Cand : kernels::all())
      if (Cand->Name == M.Kernel)
        K = Cand;
    std::string Source = K->Source;
    size_t Pos = Source.find(M.Find);
    if (Pos == std::string::npos) {
      std::printf("%-9s MUTATION PATTERN NOT FOUND: %s\n", M.Kernel,
                  M.Description);
      return 1;
    }
    Source.replace(Pos, std::string(M.Find).size(), M.Replace);

    Result<ProgramPtr> P = loadProgram(Source, M.Kernel);
    if (!P) {
      std::printf("%-9s mutant failed to load: %s\n", M.Kernel,
                  P.error().c_str());
      return 1;
    }
    const Property *Prop = (*P)->findProperty(M.Property);

    VerifySession Session(**P);
    PropertyResult R = Session.verify(*Prop);
    bool Caught = R.Status != VerifyStatus::Proved;
    Rejected += Caught;

    std::string BmcNote = "-";
    if (Caught && M.BmcDepth > 0) {
      ++NeedBmc;
      BmcOptions BOpts;
      BOpts.MaxDepth = M.BmcDepth + 1;
      BmcResult B = bmcSearch(**P, *Prop, BOpts);
      if (B.Violated) {
        ++Refuted;
        BmcNote = "counterexample with " +
                  std::to_string(B.Counterexample.Actions.size()) +
                  " actions (" + std::to_string(B.StatesExplored) +
                  " states explored)";
      } else {
        BmcNote = "NO COUNTEREXAMPLE FOUND";
      }
    } else if (Caught) {
      BmcNote = "non-interference (hyperproperty; no single-trace "
                "counterexample)";
    }

    std::printf("%-9s %-62s\n          prover: %-8s bmc: %s\n",
                M.Kernel, M.Description,
                Caught ? "rejected" : "PROVED (BUG MISSED!)",
                BmcNote.c_str());
  }

  std::printf("\n=== Summary ===\n");
  std::printf("mutants rejected by the prover: %u / %zu\n", Rejected,
              Mutations.size());
  std::printf("false trace properties refuted with a concrete trace: %u / "
              "%u\n",
              Refuted, NeedBmc);
  return (Rejected == Mutations.size() && Refuted == NeedBmc) ? 0 : 1;
}
