//===- bench/bench_table1.cc - Reproduce Table 1 ----------------*- C++ -*-===//
//
// Regenerates the paper's Table 1: per benchmark, the size of the verified
// Reflex kernel (code / properties, in lines) next to the size of the
// surrounding sandboxed components. In the paper the components are real
// systems (WebKit-based browser parts: 970,240 LoC; OpenSSH-derived SSH
// components: 89,567 LoC; Python web server parts: 386 LoC); in this
// reproduction they are simulation scripts, so the absolute component
// numbers are not comparable — the *shape* that carries the paper's point
// is the ratio: the verified kernel is tiny (tens of lines) against the
// unverified component mass, which is exactly what privilege separation
// buys.
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"
#include "support/strings.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace reflex;

/// Counts non-blank, non-comment lines of the file at \p Path (relative to
/// the repo root, baked in at configure time).
static unsigned fileLoc(const std::string &Path) {
  std::ifstream In(std::string(REFLEX_SOURCE_DIR) + "/" + Path);
  if (!In)
    return 0;
  std::stringstream SS;
  SS << In.rdbuf();
  return countCodeLines(SS.str());
}

int main() {
  std::printf("=== Table 1: benchmark sizes (lines of code) ===\n\n");
  std::printf("%-10s | %-28s | %-28s | %s\n", "kernel",
              "kernel code/props (ours)", "kernel code/props (paper)",
              "components: ours scripts / paper");
  std::printf("%.*s\n", 118,
              "--------------------------------------------------------------"
              "--------------------------------------------------------");

  unsigned TotalKernel = 0, TotalComponents = 0;
  for (const kernels::KernelDef *K : kernels::all()) {
    // Split the embedded source at the first property declaration: code
    // above, property specifications below (the paper reports "Kernel
    // Code / Properties" the same way).
    size_t PropPos = K->Source.find("property ");
    std::string Code = K->Source.substr(0, PropPos);
    std::string Props =
        PropPos == std::string::npos ? "" : K->Source.substr(PropPos);
    unsigned CodeLoc = countCodeLines(Code);
    unsigned PropsLoc = countCodeLines(Props);
    unsigned ScriptLoc = fileLoc("src/kernels/" + K->Name + ".cc");
    if (K->Name.rfind("browser", 0) == 0)
      ScriptLoc += fileLoc("src/kernels/scripts.cc");
    TotalKernel += CodeLoc + PropsLoc;
    TotalComponents += ScriptLoc;

    char PaperKernel[64] = "-";
    if (K->PaperKernelLoc)
      std::snprintf(PaperKernel, sizeof(PaperKernel), "%u / %u",
                    K->PaperKernelLoc, K->PaperPropsLoc);
    char PaperComp[32] = "-";
    if (K->PaperComponentLoc)
      std::snprintf(PaperComp, sizeof(PaperComp), "%u",
                    K->PaperComponentLoc);
    char Ours[64];
    std::snprintf(Ours, sizeof(Ours), "%u / %u", CodeLoc, PropsLoc);
    char Comp[64];
    std::snprintf(Comp, sizeof(Comp), "%u / %s", ScriptLoc, PaperComp);
    std::printf("%-10s | %-28s | %-28s | %s\n", K->Name.c_str(), Ours,
                PaperKernel, Comp);
  }

  std::printf("\nshape check (the paper's point): verified kernel code is "
              "orders of magnitude smaller than the component mass it "
              "mediates.\n");
  std::printf("  total verified kernel lines (ours): %u\n", TotalKernel);
  std::printf("  total component lines (ours, simulation stand-ins): %u\n",
              TotalComponents);
  std::printf("  paper: 201 kernel-code lines + 88 property lines vs "
              "1,060,193 component lines\n");
  return 0;
}
