//===- bench/bench_incremental.cc - Edit-localized re-verification --------===//
//
// The incremental re-verification bench: for every example kernel plus a
// synthetic stage-chain kernel, measure the edit-verify loop the proof
// footprints exist to accelerate. Three scenarios per kernel:
//
//  * cold            — first verification of the pristine kernel (the
//                      baseline a fresh checkout pays);
//  * edit one        — one handler body edited interface-preservingly
//                      (a semantically no-op self-assignment of a
//                      variable the handler already assigns), then
//                      re-verified through an IncrementalVerifier warmed
//                      on the pristine kernel: only properties whose
//                      proof footprints touch the edited handler re-run;
//  * edit all        — every handler edited, so every footprint is hit
//                      and everything re-verifies (the incremental
//                      machinery's worst case, bounding its overhead).
//
// The headline number is the edit-one speedup versus a from-scratch
// verification of the *edited* kernel, estimated — like bench_parallel —
// as the median of paired adjacent ratios (full and incremental batches
// run back to back with alternating order, so container jitter cancels
// instead of masquerading as a speedup).
//
// Correctness gates (exit non-zero on failure):
//  * the mutation audit: the incremental verdicts for the edited kernel
//    are byte-identical (status, reason, certificate JSON) to a
//    from-scratch verification, and audit mode's internal re-proving of
//    every reused verdict finds no mismatch;
//  * outside --smoke, the aggregate edit-one speedup is >= 3x.
//
// Flags:
//   --stages N  chain-kernel size (default 12; more stages, more
//               edit-disjoint properties)
//   --smoke     one repetition, no speedup gate (CI races/sanitizers)
//   --out FILE  JSON output path (default BENCH_incremental.json)
//
//===----------------------------------------------------------------------===//

#include "ast/cmd.h"
#include "kernels/kernels.h"
#include "kernels/synthetic.h"
#include "reflex/reflex.h"
#include "support/json.h"
#include "support/timer.h"
#include "verify/incremental.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

using namespace reflex;

namespace {

/// Inserts \p Stmt at the start of the \p I-th handler's body (0-based,
/// source order). Returns "" past the last handler.
std::string mutateHandler(const std::string &Src, size_t I,
                          const std::string &Stmt) {
  size_t Pos = 0;
  for (size_t N = 0;; ++N) {
    Pos = Src.find("\nhandler ", Pos);
    if (Pos == std::string::npos)
      return {};
    size_t Brace = Src.find('{', Pos);
    if (Brace == std::string::npos)
      return {};
    if (N == I)
      return Src.substr(0, Brace + 1) + "\n  " + Stmt + Src.substr(Brace + 1);
    Pos = Brace;
  }
}

/// A no-op, interface-preserving statement for handler \p H: a
/// self-assignment of a variable the handler already assigns (the assign
/// set — which the prover's skip predicates factor through — is
/// unchanged). Empty when the handler assigns nothing.
std::string nopFor(const Handler &H) {
  std::set<std::string> Assigned;
  collectAssignedVars(*H.Body, Assigned);
  if (Assigned.empty())
    return {};
  const std::string &V = *Assigned.begin();
  return V + " = " + V + ";";
}

struct Subject {
  std::string Name;
  std::string Src1;    // pristine
  std::string SrcOne;  // one handler edited (iface-preserving)
  std::string SrcAll;  // every editable handler edited
  ProgramPtr P1, POne, PAll;
};

ProgramPtr mustLoad(const std::string &Src, const std::string &What) {
  Result<ProgramPtr> P = loadProgram(Src, What);
  if (!P.ok()) {
    std::fprintf(stderr, "FAIL: cannot load %s: %s\n", What.c_str(),
                 P.error().c_str());
    std::exit(1);
  }
  return P.take();
}

/// Builds the edited variants. The edit-one handler is the *last* handler
/// with a non-empty assign set — late handlers tend to sit outside most
/// proofs' footprints, which is the representative "small localized edit"
/// this bench exists to measure. Kernels where no handler assigns
/// anything cannot be edited interface-preservingly and are dropped.
bool buildSubject(const std::string &Name, const std::string &Src,
                  Subject &S) {
  S.Name = Name;
  S.Src1 = Src;
  S.P1 = mustLoad(Src, Name);

  size_t EditIdx = SIZE_MAX;
  std::string EditNop;
  for (size_t I = 0; I < S.P1->Handlers.size(); ++I) {
    std::string Nop = nopFor(S.P1->Handlers[I]);
    if (!Nop.empty()) {
      EditIdx = I;
      EditNop = Nop;
    }
  }
  if (EditIdx == SIZE_MAX)
    return false;
  S.SrcOne = mutateHandler(Src, EditIdx, EditNop);
  S.POne = mustLoad(S.SrcOne, Name + " (one edit)");

  S.SrcAll = Src;
  for (size_t I = 0; I < S.P1->Handlers.size(); ++I) {
    std::string Nop = nopFor(S.P1->Handlers[I]);
    if (Nop.empty())
      continue;
    S.SrcAll = mutateHandler(S.SrcAll, I, Nop);
  }
  S.PAll = mustLoad(S.SrcAll, Name + " (all edited)");
  return true;
}

double median(std::vector<double> V) {
  std::sort(V.begin(), V.end());
  return V[V.size() / 2];
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Stages = 12;
  bool Smoke = false;
  std::string OutPath = "BENCH_incremental.json";
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--stages") && I + 1 < Argc)
      Stages = unsigned(std::stoul(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--smoke"))
      Smoke = true;
    else if (!std::strcmp(Argv[I], "--out") && I + 1 < Argc)
      OutPath = Argv[++I];
    else {
      std::fprintf(stderr, "usage: bench_incremental [--stages N] [--smoke] "
                           "[--out FILE]\n");
      return 2;
    }
  }
  const unsigned Runs = Smoke ? 1 : 5;
  const unsigned Inner = Smoke ? 1 : 6;

  std::vector<Subject> Subjects;
  for (const kernels::KernelDef *K : kernels::all()) {
    Subject S;
    if (buildSubject(K->Name, K->Source, S))
      Subjects.push_back(std::move(S));
    else
      std::printf("(skipping %s: no interface-preserving edit exists)\n",
                  K->Name.c_str());
  }
  {
    Subject S;
    if (buildSubject("chain" + std::to_string(Stages),
                     kernels::syntheticChainKernel(Stages), S))
      Subjects.push_back(std::move(S));
  }

  size_t TotalProps = 0;
  for (const Subject &S : Subjects)
    TotalProps += S.P1->Properties.size();
  std::printf("=== Incremental re-verification: %zu kernels, %zu "
              "properties ===\n\n",
              Subjects.size(), TotalProps);

  // Mutation audit (untimed, gating): the incremental verdicts for every
  // edited variant must be byte-identical to a from-scratch verification,
  // and audit mode must re-prove every reused verdict without mismatch.
  bool AuditOk = true;
  uint64_t ReusedOne = 0, ReverifiedOne = 0;
  for (const Subject &S : Subjects) {
    for (const Program *Edited : {S.POne.get(), S.PAll.get()}) {
      IncrementalVerifier IV;
      IV.setAuditReuse(true);
      IV.verify(*S.P1);
      IncrementalVerifier::Outcome Out = IV.verify(*Edited);
      if (Edited == S.POne.get()) {
        ReusedOne += Out.Reused;
        ReverifiedOne += Out.Reverified;
      }
      if (Out.AuditFailures) {
        AuditOk = false;
        for (const std::string &Err : Out.AuditErrors)
          std::fprintf(stderr, "FAIL: %s audit: %s\n", S.Name.c_str(),
                       Err.c_str());
      }
      VerificationReport Fresh = verifyProgram(*Edited);
      if (Out.Report.Results.size() != Fresh.Results.size()) {
        AuditOk = false;
        continue;
      }
      for (size_t I = 0; I < Fresh.Results.size(); ++I) {
        const PropertyResult &Got = Out.Report.Results[I];
        const PropertyResult &Want = Fresh.Results[I];
        if (Got.Status != Want.Status || Got.Reason != Want.Reason ||
            Got.CertJson != Want.CertJson) {
          AuditOk = false;
          std::fprintf(stderr,
                       "FAIL: %s / %s: incremental verdict differs from "
                       "from-scratch\n",
                       S.Name.c_str(), Want.Name.c_str());
        }
      }
    }
  }
  std::printf("mutation audit: %s (%llu reused + %llu re-verified across "
              "one-handler edits)\n\n",
              AuditOk ? "byte-identical verdicts" : "FAILED",
              (unsigned long long)ReusedOne,
              (unsigned long long)ReverifiedOne);

  // Timed phases. Aggregate (summed over kernels) per sample; the
  // edit-one speedup is the median of paired adjacent ratios, full and
  // incremental batches back to back with alternating order.
  auto ColdBatch = [&] {
    double Ms = 0;
    for (const Subject &S : Subjects) {
      IncrementalVerifier IV;
      Ms += IV.verify(*S.P1).Report.TotalMillis;
    }
    return Ms;
  };
  auto FullBatch = [&] {
    double Ms = 0;
    for (const Subject &S : Subjects) {
      IncrementalVerifier IV;
      Ms += IV.verify(*S.POne).Report.TotalMillis;
    }
    return Ms;
  };
  auto EditOneBatch = [&] {
    double Ms = 0;
    for (const Subject &S : Subjects) {
      IncrementalVerifier IV;
      IV.verify(*S.P1); // untimed warm-up: the pre-edit session
      Ms += IV.verify(*S.POne).Report.TotalMillis;
    }
    return Ms;
  };
  auto EditAllBatch = [&] {
    double Ms = 0;
    for (const Subject &S : Subjects) {
      IncrementalVerifier IV;
      IV.verify(*S.P1);
      Ms += IV.verify(*S.PAll).Report.TotalMillis;
    }
    return Ms;
  };

  ColdBatch(); // untimed warm-up
  std::vector<double> ColdMsS, FullMsS, OneMsS, AllMsS, Ratios;
  for (unsigned R = 0; R < Runs * Inner; ++R) {
    ColdMsS.push_back(ColdBatch());
    AllMsS.push_back(EditAllBatch());
    double Full = 0, One = 0;
    if (R % 2 == 0) {
      Full = FullBatch();
      One = EditOneBatch();
    } else {
      One = EditOneBatch();
      Full = FullBatch();
    }
    FullMsS.push_back(Full);
    OneMsS.push_back(One);
    Ratios.push_back(One > 0 ? Full / One : 0);
  }
  auto Round2 = [](double X) { return std::round(X * 100) / 100; };
  double ColdMs = median(ColdMsS), FullMs = median(FullMsS);
  double OneMs = median(OneMsS), AllMs = median(AllMsS);
  double Speedup = Round2(median(Ratios));

  std::printf("%-28s %10.2f ms\n", "cold (pristine)", ColdMs);
  std::printf("%-28s %10.2f ms\n", "full re-verify (edited)", FullMs);
  std::printf("%-28s %10.2f ms   %.2fx vs full\n", "edit one handler", OneMs,
              Speedup);
  std::printf("%-28s %10.2f ms\n", "edit all handlers", AllMs);

  JsonWriter W;
  W.beginObject();
  W.field("bench", "incremental");
  W.field("smoke", Smoke);
  W.field("reps", int64_t(Runs));
  W.field("kernels", int64_t(Subjects.size()));
  W.field("properties", int64_t(TotalProps));
  W.field("chain_stages", int64_t(Stages));
  W.key("cold_ms");
  W.value(ColdMs);
  W.key("full_reverify_ms");
  W.value(FullMs);
  W.key("edit_one_handler_ms");
  W.value(OneMs);
  W.key("edit_all_handlers_ms");
  W.value(AllMs);
  W.key("edit_one_speedup_vs_full");
  W.value(Speedup);
  W.field("edit_one_reused", int64_t(ReusedOne));
  W.field("edit_one_reverified", int64_t(ReverifiedOne));
  W.field("mutation_audit_ok", AuditOk);
  W.endObject();
  std::ofstream Out(OutPath);
  Out << W.take() << "\n";
  std::printf("\nwrote %s\n", OutPath.c_str());

  if (!AuditOk) {
    std::fprintf(stderr, "FAIL: mutation audit found diverging verdicts\n");
    return 1;
  }
  if (!Smoke && Speedup < 3.0) {
    std::fprintf(stderr,
                 "FAIL: edit-one speedup %.2fx below the 3x gate\n", Speedup);
    return 1;
  }
  return 0;
}
