//===- bench/bench_incremental.cc - Edit-localized re-verification --------===//
//
// The incremental re-verification bench: for every example kernel plus a
// synthetic stage-chain kernel, measure the edit-verify loop the proof
// footprints exist to accelerate. Three scenarios per kernel:
//
//  * cold            — first verification of the pristine kernel (the
//                      baseline a fresh checkout pays);
//  * edit one        — one handler body edited interface-preservingly
//                      (a semantically no-op self-assignment of a
//                      variable the handler already assigns), then
//                      re-verified through an IncrementalVerifier warmed
//                      on the pristine kernel: only properties whose
//                      proof footprints touch the edited handler re-run;
//  * edit all        — every handler edited, so every footprint is hit
//                      and everything re-verifies (the incremental
//                      machinery's worst case, bounding its overhead).
//
// The headline number is the edit-one speedup versus a from-scratch
// verification of the *edited* kernel, estimated — like bench_parallel —
// as the median of paired adjacent ratios (full and incremental batches
// run back to back with alternating order, so container jitter cancels
// instead of masquerading as a speedup).
//
// A fourth scenario measures the *path-granular* footprints specifically:
//
//  * edit one branch  — per-leaf branch kernels (syntheticBranchKernel
//                       sweeps, one property per leaf) with one leaf's
//                       scratch literal edited. Path-granular footprints
//                       re-verify exactly the one property whose proof
//                       entered the edited leaf; the handler-granular
//                       baseline (setPathGranularity(false)) re-verifies
//                       the whole Gated_* family.
//
// Correctness gates (exit non-zero on failure):
//  * the mutation audit: the incremental verdicts for the edited kernel
//    are byte-identical (status, reason, certificate JSON) to a
//    from-scratch verification, and audit mode's internal re-proving of
//    every reused verdict finds no mismatch (the branch-kernel edits are
//    audited the same way);
//  * outside --smoke, the aggregate edit-one speedup is >= 3x and the
//    edit-one-branch speedup versus the handler-granular baseline is
//    >= 2x.
//
// Flags:
//   --stages N  chain-kernel size (default 12; more stages, more
//               edit-disjoint properties)
//   --smoke     one repetition, no speedup gates (CI races/sanitizers)
//   --out FILE  JSON output path (default BENCH_incremental.json)
//
//===----------------------------------------------------------------------===//

#include "ast/cmd.h"
#include "bench_util.h"
#include "kernels/kernels.h"
#include "kernels/synthetic.h"
#include "reflex/reflex.h"
#include "support/json.h"
#include "support/timer.h"
#include "verify/incremental.h"

#include <cstdio>
#include <set>
#include <string>
#include <vector>

using namespace reflex;

namespace {

/// Inserts \p Stmt at the start of the \p I-th handler's body (0-based,
/// source order). Returns "" past the last handler.
std::string mutateHandler(const std::string &Src, size_t I,
                          const std::string &Stmt) {
  size_t Pos = 0;
  for (size_t N = 0;; ++N) {
    Pos = Src.find("\nhandler ", Pos);
    if (Pos == std::string::npos)
      return {};
    size_t Brace = Src.find('{', Pos);
    if (Brace == std::string::npos)
      return {};
    if (N == I)
      return Src.substr(0, Brace + 1) + "\n  " + Stmt + Src.substr(Brace + 1);
    Pos = Brace;
  }
}

/// A no-op, interface-preserving statement for handler \p H: a
/// self-assignment of a variable the handler already assigns (the assign
/// set — which the prover's skip predicates factor through — is
/// unchanged). Empty when the handler assigns nothing.
std::string nopFor(const Handler &H) {
  std::set<std::string> Assigned;
  collectAssignedVars(*H.Body, Assigned);
  if (Assigned.empty())
    return {};
  const std::string &V = *Assigned.begin();
  return V + " = " + V + ";";
}

struct Subject {
  std::string Name;
  std::string Src1;    // pristine
  std::string SrcOne;  // one handler edited (iface-preserving)
  std::string SrcAll;  // every editable handler edited
  ProgramPtr P1, POne, PAll;
};

ProgramPtr mustLoad(const std::string &Src, const std::string &What) {
  Result<ProgramPtr> P = loadProgram(Src, What);
  if (!P.ok()) {
    std::fprintf(stderr, "FAIL: cannot load %s: %s\n", What.c_str(),
                 P.error().c_str());
    std::exit(1);
  }
  return P.take();
}

/// Builds the edited variants. The edit-one handler is the *last* handler
/// with a non-empty assign set — late handlers tend to sit outside most
/// proofs' footprints, which is the representative "small localized edit"
/// this bench exists to measure. Kernels where no handler assigns
/// anything cannot be edited interface-preservingly and are dropped.
bool buildSubject(const std::string &Name, const std::string &Src,
                  Subject &S) {
  S.Name = Name;
  S.Src1 = Src;
  S.P1 = mustLoad(Src, Name);

  size_t EditIdx = SIZE_MAX;
  std::string EditNop;
  for (size_t I = 0; I < S.P1->Handlers.size(); ++I) {
    std::string Nop = nopFor(S.P1->Handlers[I]);
    if (!Nop.empty()) {
      EditIdx = I;
      EditNop = Nop;
    }
  }
  if (EditIdx == SIZE_MAX)
    return false;
  S.SrcOne = mutateHandler(Src, EditIdx, EditNop);
  S.POne = mustLoad(S.SrcOne, Name + " (one edit)");

  S.SrcAll = Src;
  for (size_t I = 0; I < S.P1->Handlers.size(); ++I) {
    std::string Nop = nopFor(S.P1->Handlers[I]);
    if (Nop.empty())
      continue;
    S.SrcAll = mutateHandler(S.SrcAll, I, Nop);
  }
  S.PAll = mustLoad(S.SrcAll, Name + " (all edited)");
  return true;
}

/// A per-leaf branch kernel plus the variant with one leaf's scratch
/// literal rewritten to a fresh value no other leaf uses. The edit
/// changes exactly one path's post-state (never its emits), so it is the
/// sharpest possible probe of path-granular reuse.
struct BranchSubject {
  unsigned Depth = 0;
  ProgramPtr P1, PEdit;
};

BranchSubject buildBranchSubject(unsigned Depth) {
  BranchSubject S;
  S.Depth = Depth;
  std::string Src = kernels::syntheticBranchKernel(Depth, true);
  const unsigned EditLeaf = (1u << Depth) / 2;
  std::string Old = "scratch = " + std::to_string(EditLeaf) + ";";
  std::string New = "scratch = " + std::to_string(7777 + EditLeaf) + ";";
  size_t Pos = Src.find(Old);
  if (Pos == std::string::npos) {
    std::fprintf(stderr, "FAIL: branch kernel is missing '%s'\n",
                 Old.c_str());
    std::exit(1);
  }
  std::string Src2 = Src;
  Src2.replace(Pos, Old.size(), New);
  std::string Name = "branch" + std::to_string(Depth) + "pl";
  S.P1 = mustLoad(Src, Name);
  S.PEdit = mustLoad(Src2, Name + " (one leaf edited)");
  return S;
}

} // namespace

int main(int Argc, char **Argv) {
  benchutil::BenchArgs BA;
  if (!benchutil::parseBenchArgs(Argc, Argv, "bench_incremental",
                                 "BENCH_incremental.json", {"--stages"}, BA))
    return 2;
  const unsigned Stages = unsigned(BA.num("--stages", 12));
  const bool Smoke = BA.Smoke;
  const std::string &OutPath = BA.OutPath;
  const unsigned Runs = Smoke ? 1 : 5;
  const unsigned Inner = Smoke ? 1 : 6;

  std::vector<Subject> Subjects;
  for (const kernels::KernelDef *K : kernels::all()) {
    Subject S;
    if (buildSubject(K->Name, K->Source, S))
      Subjects.push_back(std::move(S));
    else
      std::printf("(skipping %s: no interface-preserving edit exists)\n",
                  K->Name.c_str());
  }
  {
    Subject S;
    if (buildSubject("chain" + std::to_string(Stages),
                     kernels::syntheticChainKernel(Stages), S))
      Subjects.push_back(std::move(S));
  }

  size_t TotalProps = 0;
  for (const Subject &S : Subjects)
    TotalProps += S.P1->Properties.size();
  std::printf("=== Incremental re-verification: %zu kernels, %zu "
              "properties ===\n\n",
              Subjects.size(), TotalProps);

  // Mutation audit (untimed, gating): the incremental verdicts for every
  // edited variant must be byte-identical to a from-scratch verification,
  // and audit mode must re-prove every reused verdict without mismatch.
  bool AuditOk = true;
  uint64_t ReusedOne = 0, ReverifiedOne = 0;
  for (const Subject &S : Subjects) {
    for (const Program *Edited : {S.POne.get(), S.PAll.get()}) {
      IncrementalVerifier IV;
      IV.setAuditReuse(true);
      IV.verify(*S.P1);
      IncrementalVerifier::Outcome Out = IV.verify(*Edited);
      if (Edited == S.POne.get()) {
        ReusedOne += Out.Reused;
        ReverifiedOne += Out.Reverified;
      }
      if (Out.AuditFailures) {
        AuditOk = false;
        for (const std::string &Err : Out.AuditErrors)
          std::fprintf(stderr, "FAIL: %s audit: %s\n", S.Name.c_str(),
                       Err.c_str());
      }
      VerificationReport Fresh = verifyProgram(*Edited);
      if (Out.Report.Results.size() != Fresh.Results.size()) {
        AuditOk = false;
        continue;
      }
      for (size_t I = 0; I < Fresh.Results.size(); ++I) {
        const PropertyResult &Got = Out.Report.Results[I];
        const PropertyResult &Want = Fresh.Results[I];
        if (Got.Status != Want.Status || Got.Reason != Want.Reason ||
            Got.CertJson != Want.CertJson) {
          AuditOk = false;
          std::fprintf(stderr,
                       "FAIL: %s / %s: incremental verdict differs from "
                       "from-scratch\n",
                       S.Name.c_str(), Want.Name.c_str());
        }
      }
    }
  }
  std::printf("mutation audit: %s (%llu reused + %llu re-verified across "
              "one-handler edits)\n\n",
              AuditOk ? "byte-identical verdicts" : "FAILED",
              (unsigned long long)ReusedOne,
              (unsigned long long)ReverifiedOne);

  // The path-granularity probe: per-leaf branch kernels with one leaf's
  // scratch literal edited. Audited (byte-identical to from-scratch) in
  // path mode, then timed against the handler-granular baseline.
  std::vector<BranchSubject> Branches;
  for (unsigned D : Smoke ? std::vector<unsigned>{2}
                          : std::vector<unsigned>{2, 3, 4})
    Branches.push_back(buildBranchSubject(D));

  uint64_t BranchPathReused = 0, BranchPathReverified = 0;
  uint64_t BranchHandlerReverified = 0;
  for (const BranchSubject &B : Branches) {
    IncrementalVerifier IV;
    IV.setAuditReuse(true);
    IV.verify(*B.P1);
    IncrementalVerifier::Outcome Out = IV.verify(*B.PEdit);
    BranchPathReused += Out.Reused;
    BranchPathReverified += Out.Reverified;
    if (Out.AuditFailures) {
      AuditOk = false;
      for (const std::string &Err : Out.AuditErrors)
        std::fprintf(stderr, "FAIL: branch%upl audit: %s\n", B.Depth,
                     Err.c_str());
    }
    VerificationReport Fresh = verifyProgram(*B.PEdit);
    if (Out.Report.Results.size() != Fresh.Results.size()) {
      AuditOk = false;
      continue;
    }
    for (size_t I = 0; I < Fresh.Results.size(); ++I) {
      const PropertyResult &Got = Out.Report.Results[I];
      const PropertyResult &Want = Fresh.Results[I];
      if (Got.Status != Want.Status || Got.Reason != Want.Reason ||
          Got.CertJson != Want.CertJson) {
        AuditOk = false;
        std::fprintf(stderr,
                     "FAIL: branch%upl / %s: incremental verdict differs "
                     "from from-scratch\n",
                     B.Depth, Want.Name.c_str());
      }
    }

    IncrementalVerifier Baseline;
    Baseline.setPathGranularity(false);
    Baseline.verify(*B.P1);
    IncrementalVerifier::Outcome Base = Baseline.verify(*B.PEdit);
    BranchHandlerReverified += Base.Reverified;
    if (Base.Reverified <= Out.Reverified) {
      AuditOk = false;
      std::fprintf(stderr,
                   "FAIL: branch%upl: path granularity re-verified %llu "
                   "properties, no fewer than the handler baseline's %llu\n",
                   B.Depth, (unsigned long long)Out.Reverified,
                   (unsigned long long)Base.Reverified);
    }
  }
  std::printf("branch-leaf audit: %s (%llu reused + %llu re-verified "
              "path-granularly; handler baseline re-verified %llu)\n\n",
              AuditOk ? "byte-identical verdicts" : "FAILED",
              (unsigned long long)BranchPathReused,
              (unsigned long long)BranchPathReverified,
              (unsigned long long)BranchHandlerReverified);

  // Timed phases. Aggregate (summed over kernels) per sample; the
  // edit-one speedup is the median of paired adjacent ratios, full and
  // incremental batches back to back with alternating order.
  auto ColdBatch = [&] {
    double Ms = 0;
    for (const Subject &S : Subjects) {
      IncrementalVerifier IV;
      Ms += IV.verify(*S.P1).Report.TotalMillis;
    }
    return Ms;
  };
  auto FullBatch = [&] {
    double Ms = 0;
    for (const Subject &S : Subjects) {
      IncrementalVerifier IV;
      Ms += IV.verify(*S.POne).Report.TotalMillis;
    }
    return Ms;
  };
  auto EditOneBatch = [&] {
    double Ms = 0;
    for (const Subject &S : Subjects) {
      IncrementalVerifier IV;
      IV.verify(*S.P1); // untimed warm-up: the pre-edit session
      Ms += IV.verify(*S.POne).Report.TotalMillis;
    }
    return Ms;
  };
  auto EditAllBatch = [&] {
    double Ms = 0;
    for (const Subject &S : Subjects) {
      IncrementalVerifier IV;
      IV.verify(*S.P1);
      Ms += IV.verify(*S.PAll).Report.TotalMillis;
    }
    return Ms;
  };

  // The branch probe, timed at both granularities. The warmed pre-edit
  // session is untimed in both arms; only the post-edit re-verification
  // differs (one property versus the whole per-leaf family).
  auto BranchBatch = [&](bool PathGranular) {
    double Ms = 0;
    for (const BranchSubject &B : Branches) {
      IncrementalVerifier IV;
      IV.setPathGranularity(PathGranular);
      IV.verify(*B.P1);
      Ms += IV.verify(*B.PEdit).Report.TotalMillis;
    }
    return Ms;
  };

  ColdBatch(); // untimed warm-up
  std::vector<double> ColdMsS, AllMsS;
  for (unsigned R = 0; R < Runs * Inner; ++R) {
    ColdMsS.push_back(ColdBatch());
    AllMsS.push_back(EditAllBatch());
  }
  benchutil::PairedSamples EditPairs =
      benchutil::measurePaired(Runs * Inner, FullBatch, EditOneBatch);
  benchutil::PairedSamples BranchPairs = benchutil::measurePaired(
      Runs * Inner, [&] { return BranchBatch(false); },
      [&] { return BranchBatch(true); });
  double ColdMs = benchutil::median(ColdMsS);
  double AllMs = benchutil::median(AllMsS);
  double FullMs = EditPairs.numMedian(), OneMs = EditPairs.denMedian();
  double Speedup = EditPairs.speedup();
  double BranchHandlerMs = BranchPairs.numMedian();
  double BranchPathMs = BranchPairs.denMedian();
  double BranchSpeedup = BranchPairs.speedup();

  std::printf("%-28s %10.2f ms\n", "cold (pristine)", ColdMs);
  std::printf("%-28s %10.2f ms\n", "full re-verify (edited)", FullMs);
  std::printf("%-28s %10.2f ms   %.2fx vs full\n", "edit one handler", OneMs,
              Speedup);
  std::printf("%-28s %10.2f ms\n", "edit all handlers", AllMs);
  std::printf("%-28s %10.2f ms\n", "edit one branch (handler)",
              BranchHandlerMs);
  std::printf("%-28s %10.2f ms   %.2fx vs handler-granular\n",
              "edit one branch (path)", BranchPathMs, BranchSpeedup);

  JsonWriter W;
  W.beginObject();
  W.field("bench", "incremental");
  W.field("smoke", Smoke);
  W.field("reps", int64_t(Runs));
  W.field("kernels", int64_t(Subjects.size()));
  W.field("properties", int64_t(TotalProps));
  W.field("chain_stages", int64_t(Stages));
  W.key("cold_ms");
  W.value(ColdMs);
  W.key("full_reverify_ms");
  W.value(FullMs);
  W.key("edit_one_handler_ms");
  W.value(OneMs);
  W.key("edit_all_handlers_ms");
  W.value(AllMs);
  W.key("edit_one_speedup_vs_full");
  W.value(Speedup);
  W.field("edit_one_reused", int64_t(ReusedOne));
  W.field("edit_one_reverified", int64_t(ReverifiedOne));
  W.field("branch_kernels", int64_t(Branches.size()));
  W.key("edit_one_branch_path_ms");
  W.value(BranchPathMs);
  W.key("edit_one_branch_handler_ms");
  W.value(BranchHandlerMs);
  W.key("edit_one_branch_speedup");
  W.value(BranchSpeedup);
  W.field("edit_one_branch_reused", int64_t(BranchPathReused));
  W.field("edit_one_branch_reverified", int64_t(BranchPathReverified));
  W.field("edit_one_branch_handler_reverified",
          int64_t(BranchHandlerReverified));
  W.field("mutation_audit_ok", AuditOk);
  W.endObject();
  if (!benchutil::writeJsonRecord(W, OutPath))
    return 1;

  if (!AuditOk) {
    std::fprintf(stderr, "FAIL: mutation audit found diverging verdicts\n");
    return 1;
  }
  if (!Smoke && Speedup < 3.0) {
    std::fprintf(stderr,
                 "FAIL: edit-one speedup %.2fx below the 3x gate\n", Speedup);
    return 1;
  }
  if (!Smoke && BranchSpeedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: edit-one-branch speedup %.2fx below the 2x gate\n",
                 BranchSpeedup);
    return 1;
  }
  return 0;
}
