//===- bench/bench_fig6.cc - Reproduce Figure 6 -----------------*- C++ -*-===//
//
// Regenerates the paper's Figure 6: all 41 properties across the seven
// benchmark kernels, each proved fully automatically, with per-property
// verification time. Prints our wall-clock next to the paper's reported
// seconds.
//
// Expected shape (recorded in EXPERIMENTS.md): 41/41 Proved with checked
// certificates; non-interference rows are the slowest within each kernel
// (as in the paper, where "Different domains do not interfere" dominates
// every browser variant). Absolute times are not comparable: the paper
// type-checks Coq proof terms; we emit and re-check explicit certificates.
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"
#include "support/timer.h"

#include <algorithm>
#include <memory>
#include <vector>

#include <cstdio>
#include <map>

using namespace reflex;

int main() {
  std::printf("=== Figure 6: benchmark properties, proved fully "
              "automatically ===\n\n");
  std::printf("%-10s %-52s %10s %12s %s\n", "kernel", "policy description",
              "paper(s)", "ours(ms)", "status");
  std::printf("%.*s\n", 100,
              "----------------------------------------------------------"
              "------------------------------------------");

  unsigned Proved = 0, Total = 0;
  double SlowestMs = 0;
  std::string SlowestName;
  std::map<std::string, double> KernelNiMs, KernelMaxTraceMs;
  bool AllCertsChecked = true;

  // Timings are the minimum over several independent sessions: at
  // sub-millisecond scales a single shot is too noisy for the ordering
  // comparisons below.
  const unsigned TimingRuns = 5;
  for (const kernels::KernelDef *K : kernels::all()) {
    ProgramPtr P = kernels::load(*K);
    VerifyOptions Opts;
    VerifySession Session(*P, Opts);
    std::vector<std::unique_ptr<VerifySession>> TimingSessions;
    for (unsigned I = 0; I < TimingRuns; ++I)
      TimingSessions.push_back(std::make_unique<VerifySession>(*P, Opts));
    for (const kernels::PropertyRow &Row : K->Rows) {
      const Property *Prop = P->findProperty(Row.PropertyName);
      if (!Prop) {
        std::printf("%-10s %-52s MISSING PROPERTY %s\n", K->Name.c_str(),
                    Row.PaperDescription.c_str(), Row.PropertyName.c_str());
        continue;
      }
      PropertyResult R = Session.verify(*Prop);
      for (auto &TS : TimingSessions)
        R.Millis = std::min(R.Millis, TS->verify(*Prop).Millis);
      ++Total;
      bool Ok = R.Status == VerifyStatus::Proved;
      if (Ok)
        ++Proved;
      AllCertsChecked &= !Ok || R.CertChecked;
      std::printf("%-10s %-52s %10.0f %12.2f %s%s\n", K->Name.c_str(),
                  Row.PaperDescription.c_str(), Row.PaperSeconds, R.Millis,
                  verifyStatusName(R.Status),
                  Ok ? (R.CertChecked ? " (cert checked)" : "") : "");
      if (!Ok)
        std::printf("           !! %s\n", R.Reason.c_str());
      if (R.Millis > SlowestMs) {
        SlowestMs = R.Millis;
        SlowestName = K->Name + "/" + Row.PropertyName;
      }
      if (!Prop->isTrace())
        KernelNiMs[K->Name] = R.Millis;
      else if (R.Millis > KernelMaxTraceMs[K->Name])
        KernelMaxTraceMs[K->Name] = R.Millis;
    }
  }

  std::printf("\n=== Summary ===\n");
  std::printf("properties proved automatically: %u / %u (paper: 41 / 41)\n",
              Proved, Total);
  std::printf("all certificates re-checked by independent checker: %s\n",
              AllCertsChecked ? "yes" : "NO");
  std::printf("slowest verification: %s at %.2f ms (paper: 532 s, browser3 "
              "non-interference)\n",
              SlowestName.c_str(), SlowestMs);

  // Shape check mirroring the paper: in each *browser* variant, the
  // non-interference property is the slowest row (paper: 229/338/532 s are
  // the browser maxima). In the car kernel the paper's slowest row is
  // "Doors can not lock after a crash" (21 s), not non-interference — the
  // same ordering this reproduction shows.
  std::printf("\nshape: non-interference dominates each browser variant "
              "(paper: yes):\n");
  for (const auto &[Kernel, NiMs] : KernelNiMs) {
    if (Kernel.rfind("browser", 0) != 0)
      continue;
    std::printf("  %-10s NI %.2f ms vs slowest trace property %.2f ms -> "
                "%s\n",
                Kernel.c_str(), NiMs, KernelMaxTraceMs[Kernel],
                NiMs >= KernelMaxTraceMs[Kernel] ? "dominates"
                                                 : "does not dominate");
  }
  std::printf("shape: car's slowest property is NoLockAfterCrash, not NI "
              "(paper: 21 s vs 13 s): %s\n",
              KernelMaxTraceMs["car"] >= KernelNiMs["car"] ? "yes" : "NO");

  return (Proved == Total && Total == kernels::totalProperties()) ? 0 : 1;
}
