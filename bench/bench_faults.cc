//===- bench/bench_faults.cc - Budget + fault-tolerance overhead ----------===//
//
// The robustness bench: what does deadline-aware, fault-tolerant
// verification cost when nothing goes wrong, and what does it deliver
// when everything does? Writes BENCH_faults.json.
//
// Measurements over the full suite (all kernels, 41 properties):
//  * baseline: sequential verification, no budgets armed;
//  * budgeted: the same run under a generous wall-clock deadline and step
//    budget — every prover/solver/symexec hot loop polls the deadline but
//    it never fires, so the delta is pure cancellation-poll overhead
//    (goal: < 5%);
//  * faulted: a seeded fault plan misbehaving across cache IO and worker
//    attempts, with retries — the resilience row.
//
// Correctness gates (exit non-zero on failure):
//  * budgeted per-property statuses and reasons are identical to the
//    baseline's (an unfired budget must be invisible);
//  * the faulted batch completes with a verdict for every property.
// The overhead percentage is recorded, not gated: the CI container has a
// single core and noisy wall clocks. Timings are medians over `reps`
// repetitions, and the overhead is the median of *paired* ratios —
// baseline and budgeted timed back-to-back with alternating order, so
// batch-scale machine jitter cancels instead of swamping the sub-5%
// effect (earlier estimators produced impossible negative overheads).
//
// Flags:
//   --smoke     one repetition (the sanitizer harnesses use this)
//   --out FILE  JSON output path (default BENCH_faults.json)
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"
#include "service/scheduler.h"
#include "support/json.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

using namespace reflex;

namespace {

struct Suite {
  std::vector<ProgramPtr> Owned;
  std::vector<const Program *> Programs;
};

Suite loadSuite() {
  Suite S;
  for (const kernels::KernelDef *K : kernels::all()) {
    S.Owned.push_back(kernels::load(*K));
    S.Programs.push_back(S.Owned.back().get());
  }
  return S;
}

std::vector<std::string> verdicts(const BatchOutcome &Out) {
  std::vector<std::string> V;
  for (const VerificationReport &R : Out.Reports)
    for (const PropertyResult &PR : R.Results)
      V.push_back(PR.Name + "|" + verifyStatusName(PR.Status) + "|" +
                  PR.Reason);
  return V;
}

/// Median wall clock over \p Runs repetitions (odd Runs → true median).
/// The median is robust to scheduler noise in both directions; a minimum
/// systematically under-reports whichever phase happens to get lucky,
/// which is how an overhead *percentage* of two minima once went
/// negative.
double medianOverRuns(unsigned Runs,
                      const std::vector<const Program *> &Programs,
                      const SchedulerOptions &Opts, BatchOutcome *Last) {
  std::vector<double> Ms;
  Ms.reserve(Runs);
  for (unsigned I = 0; I < Runs; ++I) {
    BatchOutcome Out = verifyPrograms(Programs, Opts);
    Ms.push_back(Out.TotalMillis);
    if (Last)
      *Last = std::move(Out);
  }
  std::sort(Ms.begin(), Ms.end());
  return Ms[Ms.size() / 2];
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  std::string OutPath = "BENCH_faults.json";
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--smoke"))
      Smoke = true;
    else if (!std::strcmp(Argv[I], "--out") && I + 1 < Argc)
      OutPath = Argv[++I];
    else {
      std::fprintf(stderr, "usage: bench_faults [--smoke] [--out FILE]\n");
      return 2;
    }
  }
  const unsigned Runs = Smoke ? 1 : 5;

  Suite S = loadSuite();
  std::printf("=== Budgets + fault tolerance: %zu kernels, %u properties "
              "===\n\n",
              S.Programs.size(), kernels::totalProperties());

  // Baseline: no budgets, nothing polls. Budgeted: generous limits that
  // never fire — the delta is the cost of the expired() polls threaded
  // through every hot loop. The two are timed as *pairs*, back-to-back
  // with alternating order (the batch right after a config switch ran
  // measurably slower on the CI container), and the overhead is the
  // median of the paired ratios; unpaired group medians let batch-scale
  // jitter swamp the effect.
  SchedulerOptions Base;
  Base.Jobs = 1;
  SchedulerOptions Budgeted = Base;
  Budgeted.Verify.TimeoutMillis = 10 * 60 * 1000;
  Budgeted.Verify.StepBudget = uint64_t(1) << 60;

  const unsigned Pairs = Smoke ? 1 : Runs * 3; // paired samples
  const unsigned Sub = Smoke ? 1 : 3;          // batches per sample
  BatchOutcome BaseOut, BudgetOut;
  verifyPrograms(S.Programs, Base); // untimed warm-up (cold-start costs)
  std::vector<double> BaseSamples, BudgetSamples, Ratios;
  for (unsigned I = 0; I < Pairs; ++I) {
    double B = 0, G = 0;
    if (I % 2 == 0) {
      B = medianOverRuns(Sub, S.Programs, Base, &BaseOut);
      G = medianOverRuns(Sub, S.Programs, Budgeted, &BudgetOut);
    } else {
      G = medianOverRuns(Sub, S.Programs, Budgeted, &BudgetOut);
      B = medianOverRuns(Sub, S.Programs, Base, &BaseOut);
    }
    BaseSamples.push_back(B);
    BudgetSamples.push_back(G);
    Ratios.push_back(B > 0 ? G / B : 1);
  }
  auto Median = [](std::vector<double> V) {
    std::sort(V.begin(), V.end());
    return V[V.size() / 2];
  };
  double BaseMs = Median(BaseSamples);
  double BudgetMs = Median(BudgetSamples);
  double OverheadPct =
      std::round((Median(Ratios) - 1.0) * 100.0 * 100) / 100;
  auto BaseVerdicts = verdicts(BaseOut);
  std::printf("%-28s %10.2f ms   (%u/%u proved)\n", "baseline (no budget)",
              BaseMs, BaseOut.provedCount(), BaseOut.propertyCount());
  std::printf("%-28s %10.2f ms   (%+.2f%% poll overhead)\n",
              "budgeted (never fires)", BudgetMs, OverheadPct);

  bool Deterministic = true;
  if (verdicts(BudgetOut) != BaseVerdicts) {
    std::fprintf(stderr,
                 "FAIL: an unfired budget changed verdicts or reasons\n");
    Deterministic = false;
  }
  if (OverheadPct >= 5.0)
    std::printf("  note: poll overhead above the 5%% goal (single-core "
                "CI wall clocks are noisy; recorded, not gated)\n");

  // Faulted: seeded misbehavior across cache IO, worker attempts, and
  // injected budgets — the batch must still produce every verdict.
  std::filesystem::path CacheDir =
      std::filesystem::temp_directory_path() /
      ("reflex-bench-faults-" + std::to_string(::getpid()));
  std::filesystem::remove_all(CacheDir);
  double FaultMs = 0;
  uint64_t Quarantined = 0, Rejected = 0;
  bool FaultedComplete = true;
  {
    Result<std::unique_ptr<ProofCache>> Cache =
        ProofCache::open(CacheDir.string());
    if (!Cache.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", Cache.error().c_str());
      return 1;
    }
    FaultPlan Plan(/*Seed=*/20140611, /*Permille=*/150);
    (*Cache)->setFaultPlan(&Plan);
    SchedulerOptions Faulted;
    Faulted.Jobs = 1;
    Faulted.Cache = Cache->get();
    Faulted.Faults = &Plan;
    Faulted.Retries = 2;
    Faulted.RetryBackoffMs = 0;
    // Two passes: the first stores under write faults, the second reads
    // back under read faults (the quarantine path).
    verifyPrograms(S.Programs, Faulted);
    BatchOutcome FaultOut;
    FaultMs = medianOverRuns(1, S.Programs, Faulted, &FaultOut);
    Quarantined = (*Cache)->stats().Quarantined;
    Rejected = (*Cache)->stats().Rejected;
    unsigned Slots = 0;
    for (const VerificationReport &R : FaultOut.Reports)
      Slots += unsigned(R.Results.size());
    if (Slots != FaultOut.propertyCount() ||
        Slots != kernels::totalProperties()) {
      std::fprintf(stderr, "FAIL: faulted batch lost verdict slots\n");
      FaultedComplete = false;
    }
    std::printf("%-28s %10.2f ms   (%llu quarantined, %llu rejected)\n",
                "faulted (15%, 2 retries)", FaultMs,
                (unsigned long long)Quarantined,
                (unsigned long long)Rejected);
  }
  std::error_code EC;
  std::filesystem::remove_all(CacheDir, EC);

  JsonWriter W;
  W.beginObject();
  W.field("bench", "faults");
  W.field("smoke", Smoke);
  W.field("reps", int64_t(Runs));
  W.field("properties", int64_t(BaseOut.propertyCount()));
  W.field("proved", int64_t(BaseOut.provedCount()));
  W.key("baseline_ms");
  W.value(BaseMs);
  W.key("budgeted_ms");
  W.value(BudgetMs);
  W.key("poll_overhead_pct");
  W.value(OverheadPct);
  W.field("poll_overhead_under_goal", OverheadPct < 5.0);
  W.key("faulted");
  W.beginObject();
  W.key("ms");
  W.value(FaultMs);
  W.field("quarantined", int64_t(Quarantined));
  W.field("rejected", int64_t(Rejected));
  W.field("complete", FaultedComplete);
  W.endObject();
  W.field("deterministic", Deterministic);
  W.endObject();
  std::ofstream Out(OutPath);
  Out << W.take() << "\n";
  std::printf("\nwrote %s\n", OutPath.c_str());

  return Deterministic && FaultedComplete ? 0 : 1;
}
