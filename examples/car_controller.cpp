//===- examples/car_controller.cpp - The automobile benchmark ---*- C++ -*-===//
//
// Drives the hypothetical automobile controller (paper Figure 5, motivated
// by Koscher et al.'s car-hacking study): verifies all eight safety
// policies — including that nothing interferes with the engine and that
// the doors can never lock again after a crash — then simulates a drive
// ending in a crash and shows the kernel refusing a post-crash lock
// request.
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"

#include <cstdio>

using namespace reflex;

int main() {
  const kernels::KernelDef &K = kernels::car();
  ProgramPtr P = kernels::load(K);

  std::printf("=== automobile controller kernel ===\n\n");
  VerificationReport Report = verifyProgram(*P);
  for (const PropertyResult &R : Report.Results)
    std::printf("  %-36s %s (%.2f ms)\n", R.Name.c_str(),
                verifyStatusName(R.Status), R.Millis);
  if (!Report.allProved()) {
    std::printf("verification failed\n");
    return 1;
  }

  std::printf("\n=== simulated drive ===\n");
  Runtime Rt(*P, K.MakeScripts(), K.MakeCalls(), /*Seed=*/11);
  Rt.enableMonitor();
  Rt.start();
  Rt.run(100);
  const Trace &Tr = Rt.trace();
  std::printf("%s", Tr.str().c_str());

  // Count what happened around the crash.
  bool Crash = false, Deployed = false;
  unsigned LockRequests = 0, LocksGranted = 0, PostCrashLocks = 0;
  for (const Action &A : Tr.Actions) {
    if (A.Kind == Action::Recv && A.Msg.Name == "Crash")
      Crash = true;
    if (A.Kind == Action::Send && A.Msg.Name == "Deploy")
      Deployed = true;
    if (A.Kind == Action::Recv && A.Msg.Name == "LockReq")
      ++LockRequests;
    if (A.Kind == Action::Send && A.Msg.Name == "DoorsMsg" &&
        A.Msg.Args[0] == Value::str("lock")) {
      ++LocksGranted;
      if (Crash)
        ++PostCrashLocks;
    }
  }

  std::printf("\ncrash received: %s; airbags deployed: %s\n",
              Crash ? "yes" : "no", Deployed ? "yes" : "no");
  std::printf("lock requests: %u, granted: %u, granted after the crash: %u "
              "(must be 0)\n",
              LockRequests, LocksGranted, PostCrashLocks);
  std::printf("runtime monitor: %s\n",
              Rt.lastViolation() ? Rt.lastViolation()->Explanation.c_str()
                                 : "no violations (as proved)");
  return (Crash && Deployed && PostCrashLocks == 0 && !Rt.lastViolation())
             ? 0
             : 1;
}
