//===- examples/edit_verify_loop.cpp - The edit-verify workflow --*- C++ -*-===//
//
// The workflow the paper argues Reflex enables: "modifying such
// applications does not create any additional proof burden since the
// verification is carried out fully automatically" (§1), and its §6.4
// future work, incremental re-verification. This example walks an
// editing session on the SSH kernel:
//
//   1. verify the kernel (everything runs),
//   2. re-verify unchanged (everything reused),
//   3. add a new property (only it is verified),
//   4. edit a handler (everything re-verifies — and still proves,
//      because the edit preserves the policies),
//   5. break the kernel (the affected property is caught immediately).
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"
#include "verify/incremental.h"

#include <cstdio>

using namespace reflex;

static void show(const char *Step, const IncrementalVerifier::Outcome &Out) {
  unsigned Proved = Out.Report.provedCount();
  std::printf("%-48s verified %u, reused %u, proved %u/%zu (%.2f ms)\n",
              Step, Out.Reverified, Out.Reused, Proved,
              Out.Report.Results.size(), Out.Report.TotalMillis);
  for (const PropertyResult &R : Out.Report.Results)
    if (R.Status != VerifyStatus::Proved)
      std::printf("    %s: %s\n      %s\n", R.Name.c_str(),
                  verifyStatusName(R.Status), R.Reason.c_str());
}

int main() {
  const kernels::KernelDef &K = kernels::ssh();
  IncrementalVerifier IV;

  std::printf("=== an editing session on the SSH kernel ===\n\n");

  // 1. First verification: everything runs.
  ProgramPtr V1 = kernels::load(K);
  show("1. initial verification:", IV.verify(*V1));

  // 2. Re-verify with no changes: everything reused.
  show("2. re-run, nothing changed:", IV.verify(*V1));

  // 3. Add a property: only the new obligation is verified.
  std::string Src3 = std::string(K.Source) +
                     "\nproperty TermHandoffNeedsPty: forall u, fd.\n"
                     "  [Recv(Terminal, Pty(u, fd))] Enables "
                     "[Send(Connection, TermFd(u, fd))];\n";
  Result<ProgramPtr> V3 = loadProgram(Src3, "ssh+prop");
  if (!V3) {
    std::fprintf(stderr, "%s\n", V3.error().c_str());
    return 1;
  }
  show("3. one new property added:", IV.verify(**V3));

  // 4. A policy-preserving edit (swap the two assignment statements):
  //    the structural fingerprint changes, so everything re-verifies —
  //    and still proves. (A comments-only edit would not even trigger
  //    re-verification: the fingerprint is over the AST, not the text.)
  std::string Src4 = Src3;
  size_t Pos = Src4.find("auth_ok = true;\n  auth_user = user;");
  Src4.replace(Pos, std::string("auth_ok = true;\n  auth_user = user;").size(),
               "auth_user = user;\n  auth_ok = true;");
  Result<ProgramPtr> V4 = loadProgram(Src4, "ssh-edited");
  IncrementalVerifier::Outcome Out4 = IV.verify(**V4);
  show("4. handler edited (policy-preserving):", Out4);
  if (!Out4.Report.allProved())
    return 1;

  // 5. A breaking edit: drop the authentication guard.
  std::string Src5 = Src4;
  Pos = Src5.find("if (auth_ok && user == auth_user) {\n    send(T, "
                  "CreatePty(user));\n  }");
  Src5.replace(Pos,
               std::string("if (auth_ok && user == auth_user) {\n    "
                           "send(T, CreatePty(user));\n  }")
                   .size(),
               "send(T, CreatePty(user));");
  Result<ProgramPtr> V5 = loadProgram(Src5, "ssh-broken");
  IncrementalVerifier::Outcome Out5 = IV.verify(**V5);
  show("5. auth guard dropped (the bug):", Out5);

  bool Caught = !Out5.Report.allProved();
  std::printf("\nthe automation %s the injected bug — no proof was ever "
              "written by hand.\n",
              Caught ? "caught" : "MISSED");
  return Caught ? 0 : 1;
}
