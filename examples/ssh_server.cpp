//===- examples/ssh_server.cpp - The SSH benchmark, end to end ---*- C++ -*-===//
//
// Drives the paper's flagship example (Figure 2/3): the privilege-
// separated SSH server. Verifies the five security policies of the ssh
// kernel, then simulates a session: a client fumbles its password twice,
// logs in on the third attempt, and receives direct PTY access — with the
// kernel mediating every step and the runtime monitor confirming the
// proved properties on the live trace.
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"
#include "support/strings.h"

#include <cstdio>

using namespace reflex;

int main() {
  const kernels::KernelDef &K = kernels::ssh();
  ProgramPtr P = kernels::load(K);

  std::printf("=== SSH server kernel (%u lines of Reflex) ===\n\n",
              countCodeLines(K.Source));

  // Pushbutton verification of all five policies.
  VerificationReport Report = verifyProgram(*P);
  for (const PropertyResult &R : Report.Results)
    std::printf("  %-28s %s (%.2f ms)\n", R.Name.c_str(),
                verifyStatusName(R.Status), R.Millis);
  if (!Report.allProved()) {
    std::printf("verification failed\n");
    return 1;
  }

  // Simulate a session. The Connection script tries "hunter1", "hunter3",
  // then the correct "hunter2", then requests a terminal.
  std::printf("\n=== simulated session ===\n");
  Runtime Rt(*P, K.MakeScripts(), K.MakeCalls(), /*Seed=*/2026);
  Rt.enableMonitor();
  Rt.start();
  Rt.run(200);

  const Trace &Tr = Rt.trace();
  std::printf("%s", Tr.str().c_str());

  // Narrate the outcome.
  bool SawPty = false, SawTermFd = false;
  unsigned Attempts = 0;
  for (const Action &A : Tr.Actions) {
    if (A.Kind == Action::Send && A.Msg.Name == "CheckAuth")
      ++Attempts;
    if (A.Kind == Action::Send && A.Msg.Name == "CreatePty")
      SawPty = true;
    if (A.Kind == Action::Send && A.Msg.Name == "TermFd")
      SawTermFd = true;
  }
  std::printf("\nauthentication attempts forwarded to Password: %u (limit "
              "3, enforced by the verified kernel)\n",
              Attempts);
  std::printf("PTY created after successful login: %s\n",
              SawPty ? "yes" : "no");
  std::printf("client received direct terminal descriptor: %s\n",
              SawTermFd ? "yes" : "no");
  std::printf("runtime monitor: %s\n",
              Rt.lastViolation() ? Rt.lastViolation()->Explanation.c_str()
                                 : "no violations (as proved)");
  return (SawTermFd && !Rt.lastViolation()) ? 0 : 1;
}
