//===- examples/web_browser.cpp - The browser benchmark ---------*- C++ -*-===//
//
// Drives the Quark-style browser kernel (browser3 variant, the richest):
// verifies all seven policies including domain non-interference with the
// θv variable labeling, then simulates a browsing session — two domains,
// a duplicate tab-id attempt the kernel refuses, cookies confined to
// their domains, a cross-domain socket denied, and keystrokes routed to
// the focused tab only.
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"

#include <cstdio>

using namespace reflex;

int main() {
  const kernels::KernelDef &K = kernels::browser3();
  ProgramPtr P = kernels::load(K);

  std::printf("=== browser kernel (browser3 variant) ===\n\n");
  VerificationReport Report = verifyProgram(*P);
  for (const PropertyResult &R : Report.Results)
    std::printf("  %-32s %s (%.2f ms)\n", R.Name.c_str(),
                verifyStatusName(R.Status), R.Millis);
  if (!Report.allProved()) {
    std::printf("verification failed\n");
    return 1;
  }

  std::printf("\n=== simulated browsing session ===\n");
  Runtime Rt(*P, K.MakeScripts(), K.MakeCalls(), /*Seed=*/7);
  Rt.enableMonitor();
  Rt.start();
  Rt.run(500);
  const Trace &Tr = Rt.trace();

  // Summarize what the kernel allowed and refused.
  unsigned Tabs = 0, CookieProcs = 0, SocketsGranted = 0, CookieSets = 0,
           KeyDeliveries = 0;
  for (const ComponentInstance &C : Tr.Components) {
    Tabs += C.TypeName == "Tab";
    CookieProcs += C.TypeName == "CookieProc";
  }
  unsigned SocketRequests = 0, CreateTabs = 0;
  for (const Action &A : Tr.Actions) {
    if (A.Kind == Action::Recv && A.Msg.Name == "OpenSocket")
      ++SocketRequests;
    if (A.Kind == Action::Recv && A.Msg.Name == "CreateTab")
      ++CreateTabs;
    if (A.Kind == Action::Send && A.Msg.Name == "SocketOpen")
      ++SocketsGranted;
    if (A.Kind == Action::Send && A.Msg.Name == "CookieSet")
      ++CookieSets;
    if (A.Kind == Action::Send && A.Msg.Name == "KeyInput")
      ++KeyDeliveries;
  }

  std::printf("tab creation requests: %u -> tabs spawned: %u (duplicate id "
              "refused)\n",
              CreateTabs, Tabs);
  std::printf("cookie processes: %u (one per domain)\n", CookieProcs);
  std::printf("cookie writes routed: %u (each to its own domain's "
              "process)\n",
              CookieSets);
  std::printf("socket requests: %u -> granted: %u (cross-domain denied)\n",
              SocketRequests, SocketsGranted);
  std::printf("keystroke deliveries to focused tab: %u\n", KeyDeliveries);
  std::printf("runtime monitor: %s\n",
              Rt.lastViolation() ? Rt.lastViolation()->Explanation.c_str()
                                 : "no violations (as proved)");

  bool Shape = Tabs == 2 && CreateTabs == 3 && SocketsGranted * 2 ==
               SocketRequests && !Rt.lastViolation();
  return Shape ? 0 : 1;
}
