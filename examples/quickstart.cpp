//===- examples/quickstart.cpp - Five-minute tour ----------------*- C++ -*-===//
//
// The smallest end-to-end use of the library: write a reactive kernel in
// the Reflex DSL, get its safety property proved fully automatically (no
// proof code anywhere), and then actually run it against a simulated
// component.
//
// The toy system is a door controller: a badge reader reports scans, and
// the controller must never unlock the door for a badge it has not been
// told is valid.
//
//===----------------------------------------------------------------------===//

#include "reflex/reflex.h"

#include <cstdio>

using namespace reflex;

static const char Source[] = R"rfx(
program doorlock;

component Reader "badge-reader.c";
component Door "door-actuator.c";
component Admin "admin-console.py";

message BadgeScanned(str);   # Reader: someone scanned badge `b`
message Unlock(str);         # kernel -> Door: open for badge `b`
message Grant(str);          # Admin: badge `b` is now authorized

# Note the has_grant flag: a first draft of this kernel guarded the unlock
# with just `b == granted` — and the prover refused it, because scanning
# the empty badge "" would match granted's *initial* value and unlock the
# door before any grant. Exactly the kind of corner case §6.3 reports the
# automation catching.
var granted: str = "";
var has_grant: bool = false;

init {
  R <- spawn Reader();
  D <- spawn Door();
  A <- spawn Admin();
}

handler Admin => Grant(b) {
  granted = b;
  has_grant = true;
}

handler Reader => BadgeScanned(b) {
  if (has_grant && b == granted) {
    send(D, Unlock(b));
  }
}

# The policy: the door only ever unlocks for a badge the admin granted.
property UnlockRequiresGrant: forall b.
  [Recv(Admin, Grant(b))] Enables [Send(Door, Unlock(b))];
)rfx";

int main() {
  // 1. Parse + validate.
  Result<ProgramPtr> P = loadProgram(Source, "doorlock");
  if (!P) {
    std::fprintf(stderr, "%s\n", P.error().c_str());
    return 1;
  }

  // 2. Pushbutton verification: no tactics, no annotations.
  VerificationReport Report = verifyProgram(**P);
  for (const PropertyResult &R : Report.Results) {
    std::printf("%-22s %s (%.2f ms)%s\n", R.Name.c_str(),
                verifyStatusName(R.Status), R.Millis,
                R.CertChecked ? ", certificate independently re-checked"
                              : "");
    if (R.Status != VerifyStatus::Proved)
      std::printf("  reason: %s\n", R.Reason.c_str());
  }
  if (!Report.allProved())
    return 1;

  // 3. Run the kernel against simulated components: the reader scans an
  //    unauthorized badge (ignored), the admin grants it, the reader scans
  //    again (unlocked).
  ScriptFactory Scripts =
      [](const ComponentInstance &C) -> std::unique_ptr<ComponentScript> {
    if (C.TypeName == "Reader")
      return std::make_unique<ScriptedComponent>(
          std::vector<Message>{
              msg("BadgeScanned", {Value::str("badge-7")}),
              msg("BadgeScanned", {Value::str("badge-7")})},
          std::map<std::string, ScriptedComponent::Responder>{});
    if (C.TypeName == "Admin")
      return std::make_unique<ScriptedComponent>(
          std::vector<Message>{msg("Grant", {Value::str("badge-7")})},
          std::map<std::string, ScriptedComponent::Responder>{});
    return nullptr;
  };

  Runtime Rt(**P, Scripts, CallRegistry(), /*Seed=*/3);
  Rt.enableMonitor(); // re-checks the proved properties on the live trace
  Rt.start();
  Rt.run(100);

  std::printf("\nconcrete trace (%zu actions):\n%s",
              Rt.trace().Actions.size(), Rt.trace().str().c_str());
  std::printf("\nruntime monitor: %s\n",
              Rt.lastViolation() ? Rt.lastViolation()->Explanation.c_str()
                                 : "no violations (as proved)");
  return Rt.lastViolation() ? 1 : 0;
}
