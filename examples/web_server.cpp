//===- examples/web_server.cpp - The web server benchmark -------*- C++ -*-===//
//
// Drives the authenticated file server: verifies the six access-control
// policies, then simulates traffic — a valid login (client handler
// spawned, exactly once, despite a repeated login), a failed login
// (dropped), an authorized file request served from disk, and an
// unauthorized path refused by the access controller.
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"

#include <cstdio>

using namespace reflex;

int main() {
  const kernels::KernelDef &K = kernels::webserver();
  ProgramPtr P = kernels::load(K);

  std::printf("=== web server kernel ===\n\n");
  VerificationReport Report = verifyProgram(*P);
  for (const PropertyResult &R : Report.Results)
    std::printf("  %-30s %s (%.2f ms)\n", R.Name.c_str(),
                verifyStatusName(R.Status), R.Millis);
  if (!Report.allProved()) {
    std::printf("verification failed\n");
    return 1;
  }

  std::printf("\n=== simulated traffic ===\n");
  Runtime Rt(*P, K.MakeScripts(), K.MakeCalls(), /*Seed=*/5);
  Rt.enableMonitor();
  Rt.start();
  Rt.run(300);
  const Trace &Tr = Rt.trace();

  unsigned Clients = 0, FileReqs = 0, DiskReads = 0, Delivered = 0,
           Connects = 0;
  for (const ComponentInstance &C : Tr.Components)
    Clients += C.TypeName == "Client";
  for (const Action &A : Tr.Actions) {
    if (A.Kind == Action::Recv && A.Msg.Name == "Connect")
      ++Connects;
    if (A.Kind == Action::Recv && A.Msg.Name == "FileReq")
      ++FileReqs;
    if (A.Kind == Action::Send && A.Msg.Name == "ReadFile")
      ++DiskReads;
    if (A.Kind == Action::Send && A.Msg.Name == "Deliver")
      ++Delivered;
  }

  std::printf("connection attempts: %u (alice twice with good creds, "
              "mallory once with bad)\n",
              Connects);
  std::printf("client handlers spawned: %u (one per user, never "
              "duplicated)\n",
              Clients);
  std::printf("file requests: %u; authorized disk reads: %u; files "
              "delivered: %u\n",
              FileReqs, DiskReads, Delivered);
  std::printf("(the /etc/shadow request was refused by the access "
              "controller: %s)\n",
              DiskReads < FileReqs ? "yes" : "NO");
  std::printf("runtime monitor: %s\n",
              Rt.lastViolation() ? Rt.lastViolation()->Explanation.c_str()
                                 : "no violations (as proved)");
  return (Clients == 1 && DiskReads == 1 && Delivered == 1 &&
          !Rt.lastViolation())
             ? 0
             : 1;
}
