#!/usr/bin/env bash
# Runs the service benches in smoke mode as a fast CI gate.
#
# Smoke mode is one repetition with no speedup expectations: the benches
# exit non-zero on what must *never* regress — nondeterministic verdicts
# across worker counts or sharing modes, a warm proof cache that fails
# to serve (and re-validate) every verdict on both re-check paths, or a
# fault-tolerance failure in bench_faults, or an incremental
# re-verification whose verdicts diverge from a from-scratch run
# (bench_incremental's mutation audit), or a crash-recovery/overload
# regression in bench_chaos (lost sessions, un-truncated torn journal
# tails, dropped accepted requests), or a generated-corpus failure in
# bench_corpus (an oracle mismatch between the verifier and the
# construction-time ground truth, a non-reproducible seed, a dedupe or
# warm-cache coverage hole, a daemon wire verdict diverging from the
# local baseline). The timed, multi-repetition runs that produce the
# committed BENCH_*.json artifacts are run manually.
#
# Usage: tools/run_bench_smoke.sh [build-dir]       (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j --target bench_parallel bench_faults \
  bench_incremental bench_chaos bench_solver bench_corpus reflex_cli

ctest --test-dir "$BUILD" -L bench-smoke --output-on-failure

echo "bench-smoke: all gates passed"
