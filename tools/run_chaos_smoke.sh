#!/usr/bin/env bash
# Chaos smoke for the shipped binary under supervision: start
# `reflex daemon --supervise`, warm a session, kill -9 the serving child
# and watch the supervisor restart it with the session recovered from
# the journal; corrupt the journal tail and kill -9 again to prove torn
# tails are truncated, not served; finally SIGTERM the supervisor and
# require a clean drain (exit 0). Wired into ctest under the
# bench-smoke and chaos labels (tools/run_chaos_smoke.sh <reflex-cli>).
set -u

CLI="${1:-${REFLEX_CLI:-}}"
if [ -z "$CLI" ] || [ ! -x "$CLI" ]; then
  echo "usage: $0 <path-to-reflex-cli>" >&2
  exit 2
fi

WORK="$(mktemp -d /tmp/rfx-chaos-XXXXXX)"
SOCK="$WORK/d.sock"
LOG="$WORK/daemon.log"
CACHE="$WORK/cache"
SUP_PID=""

cleanup() {
  [ -n "$SUP_PID" ] && kill -9 "$SUP_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $1" >&2
  [ -f "$LOG" ] && sed 's/^/  daemon: /' "$LOG" >&2
  exit 1
}

cat > "$WORK/demo.rfx" <<'EOF'
program demo;
component Admin "admin.py";
component Door "door.c";
message Grant(str);
message Scan(str);
message Unlock(str);
var granted: str = "";
var armed: bool = false;
init {
  A <- spawn Admin();
  D <- spawn Door();
}
handler Admin => Grant(b) { granted = b; armed = true; }
handler Door => Scan(b) {
  if (armed && b == granted) { send(D, Unlock(b)); }
}
property UnlockNeedsGrant: forall b.
  [Recv(Admin, Grant(b))] Enables [Send(Door, Unlock(b))];
EOF

json_escape_file() { # embed a file's content as a JSON string
  sed -e 's/\\/\\\\/g' -e 's/"/\\"/g' "$1" | awk '{printf "%s\\n", $0}'
}
SRC="$(json_escape_file "$WORK/demo.rfx")"

"$CLI" daemon --socket "$SOCK" --cache-dir "$CACHE" \
  --supervise --max-restarts 5 > "$LOG" 2>&1 &
SUP_PID=$!

# The socket only appears once recovery (empty, first time) is done and
# the child is serving.
wait_ready() {
  for _ in $(seq 1 200); do
    if "$CLI" client --socket "$SOCK" --frame '{"verb":"ping"}' \
         2>/dev/null | grep -q '"ok":true'; then
      return 0
    fi
    kill -0 "$SUP_PID" 2>/dev/null || fail "supervisor died"
    sleep 0.05
  done
  fail "daemon never became ready"
}
serving_pid() {
  grep '"event":"serving"' "$LOG" | tail -1 \
    | sed 's/.*"pid":\([0-9]*\).*/\1/'
}
ask() {
  local what="$1" frame="$2"
  local resp
  resp="$("$CLI" client --socket "$SOCK" --frame "$frame")" \
    || fail "$what: client transport error"
  case "$resp" in
    '{"ok":true'*) ;;
    *) fail "$what: $resp" ;;
  esac
  echo "$resp"
}

wait_ready
R="$(ask open-session "{\"verb\":\"open-session\",\"session\":\"s\",\"program\":\"$SRC\"}")"
case "$R" in *'"proved":1'*) ;; *) fail "open-session did not prove: $R" ;; esac

# Round 1: kill -9 the serving child. The supervisor must restart it and
# the journal must bring the session back, verdicts fully reusable.
PID1="$(serving_pid)"
[ -n "$PID1" ] || fail "no serving event in the supervisor log"
kill -9 "$PID1" || fail "cannot kill serving child $PID1"
for _ in $(seq 1 200); do
  P="$(serving_pid)"
  [ -n "$P" ] && [ "$P" != "$PID1" ] && break
  sleep 0.05
done
[ "$(serving_pid)" != "$PID1" ] || fail "supervisor never restarted the child"
wait_ready

R="$(ask stats '{"verb":"stats"}')"
case "$R" in
  *'"sessions_recovered":1'*) ;;
  *) fail "restarted daemon recovered no session: $R" ;;
esac
R="$(ask edit "{\"verb\":\"edit\",\"session\":\"s\",\"program\":\"$SRC\"}")"
case "$R" in *'"proved":1'*) ;; *) fail "post-crash edit did not prove: $R" ;; esac
case "$R" in *'"reverified":0'*) ;; *) fail "post-crash edit re-verified instead of reusing: $R" ;; esac

# Round 2: tear the journal tail (a crash mid-append), kill -9 again.
# Recovery must truncate the tear and still serve the session.
printf 'RJ1 deadbeef {"type":"torn' >> "$CACHE/verdicts.journal" \
  || fail "cannot corrupt the journal"
PID2="$(serving_pid)"
kill -9 "$PID2" || fail "cannot kill serving child $PID2"
for _ in $(seq 1 200); do
  P="$(serving_pid)"
  [ -n "$P" ] && [ "$P" != "$PID2" ] && break
  sleep 0.05
done
[ "$(serving_pid)" != "$PID2" ] || fail "supervisor never restarted after round 2"
wait_ready

R="$(ask stats '{"verb":"stats"}')"
case "$R" in
  *'"sessions_recovered":1'*) ;;
  *) fail "round-2 restart recovered no session: $R" ;;
esac
case "$R" in
  *'"bytes_truncated":0'*) fail "torn journal tail was not truncated: $R" ;;
esac
R="$(ask edit "{\"verb\":\"edit\",\"session\":\"s\",\"program\":\"$SRC\"}")"
case "$R" in *'"proved":1'*) ;; *) fail "round-2 edit did not prove: $R" ;; esac

# Drain: SIGTERM to the supervisor forwards to the child, which stops
# accepting, finishes in flight, flushes, and exits 0 — a deliberate
# stop the supervisor must not restart.
kill -TERM "$SUP_PID" || fail "cannot signal the supervisor"
wait "$SUP_PID"
RC=$?
SUP_PID=""
[ "$RC" -eq 0 ] || fail "supervised drain exited $RC, want 0"
grep -q '"event":"stopped"' "$LOG" || fail "supervisor never logged the stop"
grep -q '"event":"restarting"' "$LOG" || fail "no restart was ever logged"

echo "PASS: chaos smoke (kill -9 x2, torn journal, recovery, clean drain)"
