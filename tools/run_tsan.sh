#!/usr/bin/env bash
# Race-checks the verification service under ThreadSanitizer.
#
# Builds the tree into build-tsan/ with -fsanitize=thread (the
# REFLEX_SANITIZE CMake option), then runs the two concurrent entry
# points:
#   * tests/service_test      — thread pool, scheduler, shared proof cache
#   * tests/daemon_test       — reflexd: thread-per-client request handling,
#                               per-request watcher threads, shared sessions
#   * bench/bench_parallel    — the full 41-property suite on 4 workers,
#                               in --smoke mode (one repetition)
#   * tests/prover_test       — the portfolio's engine race (PDR on a
#                               background session vs induction)
#   * bench/bench_portfolio   — every kernel under every engine at 1 and
#                               4 workers, in --smoke mode
#   * tests/chaos_test        — journal appends from handler threads,
#                               overload shedding under concurrent
#                               clients, supervised restarts
#   * tests/solver_test       — the incremental solver core incl. the
#                               shared cross-worker memo tier
#   * tests/solver_diff_test  — incremental-vs-reference differential and
#                               verdict parity across jobs/sharing/faults
#                               (racing workers share the solver memo)
#   * bench/bench_solver      — scoped-vs-scratch query parity + reason
#                               trail replay, in --smoke mode
#   * bench/bench_incremental — footprint-reuse scenarios incl. the
#                               path-granular branch-leaf audit, with
#                               scheduler-batched re-verification,
#                               in --smoke mode
#   * tests/corpus_diff_test  — the generated-corpus differential oracle:
#                               parity arms race the scheduler across
#                               jobs/sharing/cache states on machine-made
#                               kernels
#
# Usage: tools/run_tsan.sh [build-dir]       (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build-tsan}"

cmake -B "$BUILD" -S . -DREFLEX_SANITIZE=thread >/dev/null
cmake --build "$BUILD" -j --target service_test daemon_test prover_test \
  chaos_test solver_test solver_diff_test corpus_diff_test bench_parallel \
  bench_portfolio bench_solver bench_incremental

# Halt on the first report and fail the script (exit code 66 is TSan's
# conventional "issues found" code under halt_on_error).
export TSAN_OPTIONS="halt_on_error=1 exitcode=66 ${TSAN_OPTIONS:-}"

echo "== service_test (TSan) =="
"$BUILD/tests/service_test"

echo "== daemon_test (TSan) =="
"$BUILD/tests/daemon_test"

echo "== bench_parallel --jobs 4 --smoke (TSan) =="
"$BUILD/bench/bench_parallel" --jobs 4 --smoke \
  --out "$BUILD/BENCH_parallel.smoke.json"

echo "== prover_test (TSan) =="
"$BUILD/tests/prover_test"

echo "== bench_portfolio --jobs 4 --smoke (TSan) =="
"$BUILD/bench/bench_portfolio" --jobs 4 --smoke \
  --out "$BUILD/BENCH_portfolio.smoke.json"

echo "== chaos_test (TSan) =="
"$BUILD/tests/chaos_test"

echo "== solver_test (TSan) =="
"$BUILD/tests/solver_test"

echo "== solver_diff_test (TSan) =="
"$BUILD/tests/solver_diff_test"

echo "== bench_solver --smoke (TSan) =="
"$BUILD/bench/bench_solver" --smoke --depth 4 --lanes 4 \
  --out "$BUILD/BENCH_solver.smoke.json"

echo "== bench_incremental --smoke (TSan) =="
"$BUILD/bench/bench_incremental" --smoke --stages 6 \
  --out "$BUILD/BENCH_incremental.smoke.json"

echo "== corpus_diff_test (TSan) =="
"$BUILD/tests/corpus_diff_test"

echo "TSan: no data races reported"
