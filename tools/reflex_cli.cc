//===- tools/reflex_cli.cc - The reflex command-line driver -----*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
// The user-facing entry point (the role the paper's Python frontend +
// coqc pipeline played): point it at a .rfx file and it verifies,
// refutes, runs, or pretty-prints the kernel.
//
//   reflex verify  <file.rfx> [options]   prove every property
//   reflex bmc     <file.rfx> --property P [--depth N]
//                                         search for a counterexample
//   reflex run     <file.rfx> [--steps N --seed S]
//                                         fuzz the kernel with random
//                                         component traffic, under the
//                                         runtime monitor
//   reflex print   <file.rfx>             parse, validate, pretty-print
//   reflex info    <file.rfx>             inventory + abstraction stats
//   reflex gen     --seed N --scale S     emit a seeded corpus of kernels
//                  [--out DIR] [--check]  with known-verdict properties,
//                                         and/or cross-check it with the
//                                         differential oracle
//
//===----------------------------------------------------------------------===//

#include "daemon/client.h"
#include "daemon/daemon.h"
#include "daemon/supervisor.h"
#include "gen/generator.h"
#include "gen/oracle.h"
#include "kernels/synthetic.h"
#include "reflex/reflex.h"
#include "service/scheduler.h"
#include "support/strings.h"
#include "support/timer.h"

#include <iostream>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace reflex;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: reflex <command> <file.rfx> [options]\n"
      "\n"
      "commands:\n"
      "  verify   prove every property of the program fully automatically\n"
      "           options: --no-skip --no-simplify --no-cache --no-check\n"
      "                    --engine induction|pdr|portfolio (which proof\n"
      "                    engine serves trace properties; portfolio races\n"
      "                    both, see docs/ENGINES.md)\n"
      "                    --bmc-depth N (refute Unknowns)  --certs FILE\n"
      "                    --json FILE (machine-readable report)\n"
      "                    --jobs N (parallel verification; 0 = all cores)\n"
      "                    --cache-dir PATH (persistent proof cache;\n"
      "                    cached proofs are re-checked by the certificate\n"
      "                    checker before reuse)\n"
      "                    --fast-cache (accept cached proofs after the\n"
      "                    hash-chain + structural validation instead of a\n"
      "                    full obligation replay)\n"
      "                    --audit-footprints (re-prove every verdict that\n"
      "                    was served from a cache or footprint instead of\n"
      "                    a fresh proof search; any disagreement aborts\n"
      "                    with exit code 4)\n"
      "                    --no-share (build private per-worker\n"
      "                    abstractions instead of one shared frozen\n"
      "                    abstraction with cross-worker caches)\n"
      "                    --timeout-ms N / --step-budget N (per-property\n"
      "                    budgets; exhausted properties report Timeout /\n"
      "                    ResourceExhausted, exit code 3)\n"
      "                    --retries N (retry crashed or budget-exhausted\n"
      "                    jobs on a fresh session)\n"
      "                    --fault-seed S (deterministic fault injection\n"
      "                    into cache IO and workers, for drills)\n"
      "           exit codes: 0 all proved, 1 refuted or unknown,\n"
      "                       2 usage/IO error, 3 budget exhausted only,\n"
      "                       4 footprint audit mismatch\n"
      "  bmc      bounded search for a counterexample trace\n"
      "           options: --property NAME (required) --depth N\n"
      "  run      drive the kernel with random component traffic\n"
      "           options: --steps N --seed S --quiet\n"
      "  print    parse + validate + pretty-print\n"
      "  info     program inventory and behavioral-abstraction statistics\n"
      "  cache-gc drop proof-cache entries for every program except this\n"
      "           one (footprint-aware compaction)\n"
      "           options: --cache-dir PATH (required)\n"
      "  daemon   run reflexd, the persistent verification daemon (no\n"
      "           file argument; see docs/DAEMON.md)\n"
      "           options: --socket PATH (required) --jobs N\n"
      "                    --cache-dir PATH --max-sessions N\n"
      "                    --request-timeout-ms N --auto-gc\n"
      "                    --no-journal (skip the durable verdict journal\n"
      "                    even when --cache-dir is set)\n"
      "                    --max-clients N / --max-inflight N (overload\n"
      "                    shedding; shed work gets a structured\n"
      "                    'overloaded' error with a retry hint)\n"
      "                    --retry-after-ms N (the hint, default 100)\n"
      "                    --io-timeout-ms N (per-frame socket progress\n"
      "                    timeout; slow clients are disconnected)\n"
      "                    --drain-cancel-ms N (grace before in-flight\n"
      "                    work is cancelled during SIGTERM drain)\n"
      "                    --supervise (run the serving process as a\n"
      "                    restarted child; see docs/ROBUSTNESS.md)\n"
      "                    --max-restarts N --restart-window-ms N\n"
      "                    (crash-loop detector for --supervise)\n"
      "  gen      emit a seeded, fully deterministic corpus of kernels\n"
      "           whose properties have construction-time known verdicts\n"
      "           (no file argument; see docs/CORPUS.md)\n"
      "           options: --seed N (default 1) --scale S (default 3)\n"
      "                    --out DIR (write <name>.rfx files plus a\n"
      "                    manifest.json with expected verdicts and\n"
      "                    source hashes)\n"
      "                    --check (run the differential oracle: verdicts\n"
      "                    vs ground truth, counterexamples vs concrete\n"
      "                    semantics, interpreter traces vs abstraction,\n"
      "                    parity across engines/jobs/sharing/cache)\n"
      "                    --jobs N (parallel oracle arms, default 4)\n"
      "           at least one of --out/--check is required\n"
      "           exit codes: 0 ok, 1 oracle mismatch, 2 usage/IO error\n"
      "  client   send newline-delimited JSON frames to a running daemon\n"
      "           (no file argument)\n"
      "           options: --socket PATH (required)\n"
      "                    --frame JSON (one request; default: read\n"
      "                    frames from stdin, one per line)\n"
      "           exit codes: 0 every response ok, 1 a response carried\n"
      "                       an error, 2 usage/connect failure\n");
  return 2;
}

Result<std::string> readFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return Error("cannot open '" + Path + "'");
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

struct Args {
  std::string Command;
  std::string File;
  std::map<std::string, std::string> Options; // --key [value]
};

bool takesValue(const std::string &Key) {
  return Key == "--bmc-depth" || Key == "--certs" || Key == "--property" ||
         Key == "--depth" || Key == "--steps" || Key == "--seed" ||
         Key == "--json" || Key == "--jobs" || Key == "--cache-dir" ||
         Key == "--timeout-ms" || Key == "--step-budget" ||
         Key == "--retries" || Key == "--fault-seed" || Key == "--socket" ||
         Key == "--max-sessions" || Key == "--request-timeout-ms" ||
         Key == "--frame" || Key == "--engine" || Key == "--max-clients" ||
         Key == "--max-inflight" || Key == "--io-timeout-ms" ||
         Key == "--retry-after-ms" || Key == "--drain-cancel-ms" ||
         Key == "--max-restarts" || Key == "--restart-window-ms" ||
         Key == "--scale" || Key == "--out";
}

/// daemon/client/gen take no .rfx file — everything is options.
bool fileLess(const std::string &Command) {
  return Command == "daemon" || Command == "client" || Command == "gen";
}

Result<Args> parseArgs(int Argc, char **Argv) {
  if (Argc < 2)
    return Error("missing command or file");
  Args A;
  A.Command = Argv[1];
  int OptStart = 3;
  if (fileLess(A.Command)) {
    OptStart = 2;
  } else {
    if (Argc < 3)
      return Error("missing command or file");
    A.File = Argv[2];
  }
  for (int I = OptStart; I < Argc; ++I) {
    std::string Key = Argv[I];
    if (!startsWith(Key, "--"))
      return Error("unexpected argument '" + Key + "'");
    if (takesValue(Key)) {
      if (I + 1 >= Argc)
        return Error("option '" + Key + "' needs a value");
      A.Options[Key] = Argv[++I];
    } else {
      A.Options[Key] = "";
    }
  }
  return A;
}

size_t numOption(const Args &A, const std::string &Key, size_t Default) {
  auto It = A.Options.find(Key);
  if (It == A.Options.end())
    return Default;
  errno = 0;
  char *End = nullptr;
  unsigned long V = std::strtoul(It->second.c_str(), &End, 10);
  if (End == It->second.c_str() || *End != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "error: option '%s' needs a number, got '%s'\n",
                 Key.c_str(), It->second.c_str());
    std::exit(2);
  }
  return V;
}

int cmdVerify(const Args &A, const Program &P) {
  SchedulerOptions SOpts;
  VerifyOptions &Opts = SOpts.Verify;
  Opts.SyntacticSkip = !A.Options.count("--no-skip");
  Opts.Simplify = !A.Options.count("--no-simplify");
  Opts.CacheInvariants = !A.Options.count("--no-cache");
  Opts.CheckCertificates = !A.Options.count("--no-check");
  Opts.BmcDepthOnUnknown = numOption(A, "--bmc-depth", 0);
  Opts.TimeoutMillis = numOption(A, "--timeout-ms", 0);
  Opts.StepBudget = numOption(A, "--step-budget", 0);
  Opts.FastCacheRecheck = A.Options.count("--fast-cache") != 0;
  if (auto It = A.Options.find("--engine"); It != A.Options.end()) {
    std::optional<EngineKind> K = parseEngineKind(It->second);
    if (!K) {
      std::fprintf(stderr,
                   "error: option '--engine' must be induction, pdr, or "
                   "portfolio, got '%s'\n",
                   It->second.c_str());
      return 2;
    }
    Opts.Engine = *K;
  }
  SOpts.Jobs = unsigned(numOption(A, "--jobs", 1));
  SOpts.Retries = unsigned(numOption(A, "--retries", 0));
  SOpts.SharedCaches = !A.Options.count("--no-share");

  // --fault-seed arms a deterministic failure drill: ~3% of fault-plan
  // decisions (cache IO operations, worker attempts) misbehave, chosen
  // purely by (seed, site, key). Same seed, same faults, any --jobs.
  FaultPlan Plan;
  if (A.Options.count("--fault-seed")) {
    Plan = FaultPlan(numOption(A, "--fault-seed", 0), /*Permille=*/30);
    SOpts.Faults = &Plan;
  }

  std::unique_ptr<ProofCache> Cache;
  if (auto It = A.Options.find("--cache-dir"); It != A.Options.end()) {
    Result<std::unique_ptr<ProofCache>> Opened = ProofCache::open(It->second);
    if (!Opened.ok()) {
      std::fprintf(stderr, "error: %s\n", Opened.error().c_str());
      return 2;
    }
    Cache = Opened.take();
    if (SOpts.Faults)
      Cache->setFaultPlan(SOpts.Faults);
    SOpts.Cache = Cache.get();
  }

  BatchOutcome Batch = verifyPrograms({&P}, SOpts);
  VerificationReport &Report = Batch.Reports[0];

  std::string CertJson = "[";
  for (size_t I = 0; I < Report.Results.size(); ++I) {
    const PropertyResult &R = Report.Results[I];
    std::printf("%-36s %-8s %8.2f ms%s%s\n", R.Name.c_str(),
                verifyStatusName(R.Status), R.Millis,
                R.Status == VerifyStatus::Proved
                    ? (R.CertChecked ? "  [cert checked]" : "")
                    : "",
                R.CacheHit ? (R.FootprintHit ? "  [cached, footprint]"
                                             : "  [cached]")
                           : "");
    if (R.Status != VerifyStatus::Proved)
      std::printf("    %s\n", R.Reason.c_str());
    if (R.Status == VerifyStatus::Refuted)
      std::printf("    counterexample:\n%s",
                  R.Counterexample.str().c_str());
    if (R.Status == VerifyStatus::Proved) {
      // CertJson was exported while the verifying session was alive (the
      // scheduler's sessions are gone by now).
      if (CertJson.size() > 1)
        CertJson += ",";
      CertJson += R.CertJson;
    }
  }
  CertJson += "]";

  if (auto It = A.Options.find("--certs"); It != A.Options.end()) {
    std::ofstream Out(It->second);
    Out << CertJson << "\n";
    std::printf("certificates written to %s\n", It->second.c_str());
  }
  if (auto It = A.Options.find("--json"); It != A.Options.end()) {
    std::ofstream Out(It->second);
    Out << Report.toJson() << "\n";
    std::printf("report written to %s\n", It->second.c_str());
  }

  if (Cache) {
    std::printf("\nproof cache: %llu hit%s, %llu miss%s (%s)\n",
                (unsigned long long)Report.ProofCacheHits,
                Report.ProofCacheHits == 1 ? "" : "s",
                (unsigned long long)Report.ProofCacheMisses,
                Report.ProofCacheMisses == 1 ? "" : "es",
                Cache->directory().c_str());
    if (Batch.CacheStats.FootprintHits)
      std::printf("  footprint-relative hits: %llu (served despite edits "
                  "outside the proof's footprint)\n",
                  (unsigned long long)Batch.CacheStats.FootprintHits);
    if (Batch.CacheStats.PathHits || Batch.CacheStats.PathFallbacks)
      std::printf("  path-granular: %llu hit%s only the per-statement rule "
                  "could serve, %llu fallback%s fully re-verified\n",
                  (unsigned long long)Batch.CacheStats.PathHits,
                  Batch.CacheStats.PathHits == 1 ? "" : "s",
                  (unsigned long long)Batch.CacheStats.PathFallbacks,
                  Batch.CacheStats.PathFallbacks == 1 ? "" : "s");
    if (Batch.CacheStats.DecodeMillis || Batch.CacheStats.RecheckMillis)
      std::printf("  decode %.2f ms, re-check %.2f ms\n",
                  Batch.CacheStats.DecodeMillis,
                  Batch.CacheStats.RecheckMillis);
    ProofCache::Stats CS = Cache->stats();
    if (CS.Quarantined || CS.SweptTmp)
      std::printf("proof cache hygiene: %llu entr%s quarantined, %llu "
                  "orphaned tmp file%s swept\n",
                  (unsigned long long)CS.Quarantined,
                  CS.Quarantined == 1 ? "y" : "ies",
                  (unsigned long long)CS.SweptTmp,
                  CS.SweptTmp == 1 ? "" : "s");
  }
  if (Batch.DedupedJobs)
    std::printf("deduplicated %llu identical job%s before dispatch\n",
                (unsigned long long)Batch.DedupedJobs,
                Batch.DedupedJobs == 1 ? "" : "s");
  std::printf("\n%u/%zu properties proved in %.2f ms\n",
              Report.provedCount(), Report.Results.size(),
              Report.TotalMillis);

  // --audit-footprints: distrust every verdict that was served without a
  // fresh proof search this run (a cache hit, footprint-relative or not)
  // and re-prove it from scratch. Verdicts are deterministic functions of
  // (program, property, options), so any disagreement means a reuse
  // decision was unsound — abort loudly rather than report it.
  if (A.Options.count("--audit-footprints")) {
    unsigned Audited = 0, PathAudited = 0, Mismatches = 0;
    std::unique_ptr<VerifySession> Fresh;
    for (const PropertyResult &R : Report.Results) {
      if (!R.CacheHit)
        continue;
      const Property *Prop = P.findProperty(R.Name);
      if (!Prop)
        continue;
      if (!Fresh)
        Fresh = std::make_unique<VerifySession>(P, Opts);
      PropertyResult Ref = Fresh->verify(*Prop);
      ++Audited;
      if (R.PathHit)
        ++PathAudited;
      std::string Why;
      if (Ref.Status != R.Status)
        Why = std::string("status: served ") + verifyStatusName(R.Status) +
              ", fresh " + verifyStatusName(Ref.Status);
      else if (Ref.Reason != R.Reason)
        Why = "reason: served '" + R.Reason + "', fresh '" + Ref.Reason + "'";
      else if (R.Status == VerifyStatus::Proved && Ref.CertJson != R.CertJson)
        Why = "certificate JSON differs";
      if (!Why.empty()) {
        ++Mismatches;
        std::fprintf(stderr, "audit FAILURE for %s: %s\n", R.Name.c_str(),
                     Why.c_str());
      }
    }
    std::printf("footprint audit: %u reused verdict%s re-proved "
                "(%u served path-granularly), %u mismatch%s\n",
                Audited, Audited == 1 ? "" : "s", PathAudited, Mismatches,
                Mismatches == 1 ? "" : "es");
    if (Mismatches)
      return 4;
  }

  // Exit codes: 0 all proved; 1 a definitive non-proof (Refuted, or an
  // Unknown the automation could not discharge); 3 when the *only*
  // failures are budget/cancellation statuses — the caller can retry
  // with a bigger budget, nothing was disproved.
  if (Report.allProved())
    return 0;
  bool OnlyBudget = true;
  for (const PropertyResult &R : Report.Results)
    if (R.Status != VerifyStatus::Proved && !isBudgetStatus(R.Status))
      OnlyBudget = false;
  return OnlyBudget ? 3 : 1;
}

int cmdBmc(const Args &A, const Program &P) {
  auto It = A.Options.find("--property");
  if (It == A.Options.end()) {
    std::fprintf(stderr, "bmc requires --property NAME\n");
    return 2;
  }
  const Property *Prop = P.findProperty(It->second);
  if (!Prop) {
    std::fprintf(stderr, "no property named '%s'\n", It->second.c_str());
    return 2;
  }
  BmcOptions Opts;
  Opts.MaxDepth = numOption(A, "--depth", 4);
  WallTimer Timer;
  BmcResult R = bmcSearch(P, *Prop, Opts);
  std::printf("explored %zu states in %.2f ms\n", R.StatesExplored,
              Timer.elapsedMillis());
  if (!R.Violated) {
    std::printf("no violation within %zu exchanges\n", Opts.MaxDepth);
    return 0;
  }
  std::printf("VIOLATION: %s\n%s", R.Explanation.c_str(),
              R.Counterexample.str().c_str());
  return 1;
}

/// A fuzzing script: every component fires a few random messages with
/// payloads from the harvested domains.
class FuzzScript : public ComponentScript {
public:
  FuzzScript(const Program &P, uint64_t Seed, unsigned Burst)
      : P(P), Rand(Seed), Burst(Burst) {}

  void onStart() override { fire(); }
  void onMessage(const Message &) override {
    if (Rand.chance(1, 2))
      fire();
  }

private:
  void fire() {
    for (unsigned I = 0; I < Burst; ++I) {
      const MessageDecl &MD =
          P.Messages[Rand.below(P.Messages.size())];
      Message M;
      M.Name = MD.Name;
      for (BaseType Ty : MD.Payload) {
        std::vector<Value> Dom = harvestDomain(P, Ty);
        if (Dom.empty())
          Dom.push_back(Value::num(0));
        M.Args.push_back(Dom[Rand.below(Dom.size())]);
      }
      sendToKernel(std::move(M));
    }
  }

  const Program &P;
  Rng Rand;
  unsigned Burst;
};

int cmdRun(const Args &A, const Program &P) {
  size_t Steps = numOption(A, "--steps", 200);
  uint64_t Seed = numOption(A, "--seed", 1);
  bool Quiet = A.Options.count("--quiet") != 0;

  Runtime Rt(
      P,
      [&](const ComponentInstance &) -> std::unique_ptr<ComponentScript> {
        return std::make_unique<FuzzScript>(P, Seed++, 3);
      },
      CallRegistry(), Seed);
  Rt.enableMonitor();
  Rt.start();
  size_t Done = Rt.run(Steps);
  if (!Quiet)
    std::printf("%s", Rt.trace().str().c_str());
  std::printf("serviced %zu exchanges, %zu trace actions, %zu components\n",
              Done, Rt.trace().Actions.size(),
              Rt.trace().Components.size());
  if (Rt.lastViolation()) {
    std::printf("MONITOR VIOLATION: %s\n",
                Rt.lastViolation()->Explanation.c_str());
    return 1;
  }
  std::printf("runtime monitor: all declared trace properties held\n");
  return 0;
}

int cmdCacheGc(const Args &A, const Program &P) {
  auto It = A.Options.find("--cache-dir");
  if (It == A.Options.end()) {
    std::fprintf(stderr, "cache-gc requires --cache-dir PATH\n");
    return 2;
  }
  Result<std::unique_ptr<ProofCache>> Cache = ProofCache::open(It->second);
  if (!Cache.ok()) {
    std::fprintf(stderr, "error: %s\n", Cache.error().c_str());
    return 2;
  }
  // Footprint-aware compaction: this program's declaration identity is
  // the only live one; entries for any other program are dropped.
  // Surviving entries keep serving warm hits unchanged.
  std::string Live =
      ProofCache::declId(ProgramFingerprints::compute(P).DeclFp);
  ProofCache::GcOutcome G = (*Cache)->gc({Live});
  std::printf("proof cache gc (%s):\n", It->second.c_str());
  std::printf("  scanned %llu entr%s, dropped %llu, kept %llu\n",
              (unsigned long long)G.Scanned, G.Scanned == 1 ? "y" : "ies",
              (unsigned long long)G.Dropped, (unsigned long long)G.Kept);
  std::printf("  quarantine: kept %llu, evicted %llu\n",
              (unsigned long long)G.QuarantineKept,
              (unsigned long long)G.QuarantineEvicted);
  return 0;
}

// Set by the SIGTERM/SIGINT handler and read by a watcher thread that
// turns the flag into a stop() call (stop() takes locks, which a
// handler must never do). A lock-free atomic is both async-signal-safe
// and race-free against the watcher; sig_atomic_t alone is only the
// former.
std::atomic<int> DrainSignal{0};
static_assert(std::atomic<int>::is_always_lock_free);

void noteDrainSignal(int Sig) {
  DrainSignal.store(Sig, std::memory_order_relaxed);
}

int runDaemon(const Args &A) {
  DaemonOptions O;
  O.SocketPath = A.Options.find("--socket")->second;
  O.Jobs = unsigned(numOption(A, "--jobs", 0));
  O.MaxSessions = unsigned(numOption(A, "--max-sessions", 8));
  O.RequestTimeoutMs = numOption(A, "--request-timeout-ms", 0);
  O.AutoGc = A.Options.count("--auto-gc") != 0;
  if (auto C = A.Options.find("--cache-dir"); C != A.Options.end())
    O.CacheDir = C->second;
  O.Journal = A.Options.count("--no-journal") == 0;
  O.MaxClients = unsigned(numOption(A, "--max-clients", 0));
  O.MaxInFlight = unsigned(numOption(A, "--max-inflight", 0));
  O.IoTimeoutMs = numOption(A, "--io-timeout-ms", 0);
  O.RetryAfterMs = numOption(A, "--retry-after-ms", 100);
  O.DrainCancelMs = numOption(A, "--drain-cancel-ms", 0);

  Result<std::unique_ptr<ReflexDaemon>> D = ReflexDaemon::start(O);
  if (!D.ok()) {
    std::fprintf(stderr, "error: %s\n", D.error().c_str());
    return 2;
  }

  // Graceful drain: SIGTERM/SIGINT stop the accept loop; serve() then
  // finishes (or, past the --drain-cancel-ms grace, cancels) in-flight
  // work, flushes the journal via the daemon teardown, and we exit 0 —
  // which a supervisor treats as a deliberate stop, not a crash.
  DrainSignal.store(0, std::memory_order_relaxed);
  struct sigaction SA {};
  SA.sa_handler = noteDrainSignal;
  sigemptyset(&SA.sa_mask);
  struct sigaction OldTerm {}, OldInt {};
  ::sigaction(SIGTERM, &SA, &OldTerm);
  ::sigaction(SIGINT, &SA, &OldInt);
  std::atomic<bool> Done{false};
  std::thread Watcher([&] {
    while (!Done.load(std::memory_order_relaxed)) {
      if (DrainSignal.load(std::memory_order_relaxed)) {
        (*D)->stop();
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  std::printf("reflexd listening on %s\n", O.SocketPath.c_str());
  std::fflush(stdout);
  (*D)->serve();
  Done.store(true, std::memory_order_relaxed);
  Watcher.join();
  ::sigaction(SIGTERM, &OldTerm, nullptr);
  ::sigaction(SIGINT, &OldInt, nullptr);
  D->reset(); // full teardown (journal flush, socket unlink) before the
              // shutdown message, so watchers of stdout see a done deal
  std::printf("reflexd shut down\n");
  std::fflush(stdout);
  return 0;
}

int cmdDaemon(const Args &A) {
  if (A.Options.find("--socket") == A.Options.end()) {
    std::fprintf(stderr, "daemon requires --socket PATH\n");
    return 2;
  }
  if (A.Options.count("--supervise")) {
    SupervisorOptions SO;
    SO.MaxRestarts = unsigned(numOption(A, "--max-restarts", 5));
    SO.RestartWindowMs = numOption(A, "--restart-window-ms", 30000);
    return runSupervised(SO, [&A] { return runDaemon(A); });
  }
  return runDaemon(A);
}

int cmdClient(const Args &A) {
  auto It = A.Options.find("--socket");
  if (It == A.Options.end()) {
    std::fprintf(stderr, "client requires --socket PATH\n");
    return 2;
  }
  Result<DaemonClient> C = DaemonClient::connect(It->second);
  if (!C.ok()) {
    std::fprintf(stderr, "error: %s\n", C.error().c_str());
    return 2;
  }
  bool AllOk = true;
  auto RoundTrip = [&](const std::string &Frame) -> bool {
    Result<std::string> Resp = C->callRaw(Frame);
    if (!Resp.ok()) {
      std::fprintf(stderr, "error: %s\n", Resp.error().c_str());
      return false;
    }
    std::printf("%s\n", Resp->c_str());
    Result<JsonValue> Doc = parseJson(*Resp);
    AllOk = AllOk && Doc.ok() && Doc->getBool("ok", false);
    return true;
  };
  if (auto F = A.Options.find("--frame"); F != A.Options.end()) {
    if (!RoundTrip(F->second))
      return 2;
  } else {
    std::string Line;
    while (std::getline(std::cin, Line)) {
      if (Line.empty())
        continue;
      if (!RoundTrip(Line))
        return 2;
    }
  }
  return AllOk ? 0 : 1;
}

int cmdInfo(const Args &, const Program &P) {
  std::printf("program: %s\n", P.Name.empty() ? "<unnamed>" : P.Name.c_str());
  std::printf("  component types: %zu\n", P.Components.size());
  std::printf("  message types:   %zu\n", P.Messages.size());
  std::printf("  state variables: %zu\n", P.StateVars.size());
  std::printf("  handlers:        %zu (of %zu possible exchange cases)\n",
              P.Handlers.size(), P.Components.size() * P.Messages.size());
  std::printf("  properties:      %zu\n", P.Properties.size());

  TermContext Ctx;
  BehAbs Abs = buildBehAbs(Ctx, P);
  size_t Paths = 0, Emits = 0;
  for (const HandlerSummary &S : Abs.Handlers) {
    Paths += S.Paths.size();
    for (const SymPath &Path : S.Paths)
      Emits += Path.Emits.size();
  }
  std::printf("behavioral abstraction:\n");
  std::printf("  init paths:      %zu\n", Abs.Init.Paths.size());
  std::printf("  handler paths:   %zu across %zu cases\n", Paths,
              Abs.Handlers.size());
  std::printf("  emitted actions: %zu symbolic\n", Emits);
  std::printf("  terms allocated: %zu\n", Ctx.termCount());
  return 0;
}

int cmdGen(const Args &A) {
  gen::GenConfig C;
  C.Seed = numOption(A, "--seed", 1);
  C.Scale = unsigned(numOption(A, "--scale", 3));
  const bool Check = A.Options.count("--check") != 0;
  auto OutIt = A.Options.find("--out");
  if (!Check && OutIt == A.Options.end()) {
    std::fprintf(stderr,
                 "error: gen needs --out DIR and/or --check (a corpus "
                 "with nowhere to go and nothing to verify is a no-op)\n");
    return 2;
  }

  gen::GeneratedCorpus Corpus = gen::generateCorpus(C);
  std::printf("generated %zu kernels, %zu properties, %zu handlers "
              "(seed %llu, scale %u)\n",
              Corpus.Instances.size(), Corpus.totalProperties(),
              Corpus.totalHandlers(), (unsigned long long)C.Seed, C.Scale);

  if (OutIt != A.Options.end()) {
    std::filesystem::path Dir(OutIt->second);
    std::error_code EC;
    std::filesystem::create_directories(Dir, EC);
    if (EC) {
      std::fprintf(stderr, "error: cannot create '%s': %s\n",
                   Dir.string().c_str(), EC.message().c_str());
      return 2;
    }
    for (const gen::GeneratedInstance &Inst : Corpus.Instances) {
      std::ofstream Out(Dir / (Inst.Name + ".rfx"));
      if (!Out) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     (Dir / (Inst.Name + ".rfx")).string().c_str());
        return 2;
      }
      Out << Inst.Source;
    }
    std::ofstream Manifest(Dir / "manifest.json");
    if (!Manifest) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   (Dir / "manifest.json").string().c_str());
      return 2;
    }
    Manifest << gen::corpusManifest(Corpus) << "\n";
    std::printf("wrote %zu .rfx files + manifest.json to %s\n",
                Corpus.Instances.size(), Dir.string().c_str());
  }

  if (Check) {
    gen::OracleOptions OOpts;
    OOpts.Jobs = unsigned(numOption(A, "--jobs", 4));
    WallTimer Timer;
    gen::OracleReport R = gen::runOracle(Corpus, OOpts);
    std::printf("oracle: %zu properties cross-checked in %.2f ms\n"
                "  proved with checked certificates: %zu\n"
                "  refuted with confirmed counterexamples: %zu\n"
                "  unknown (NI split policies) confirmed: %zu\n"
                "  interpreter traces replayed: %zu (%zu exchanges)\n"
                "  parity arms compared: %zu\n",
                R.Properties, Timer.elapsedMillis(), R.ProvedCertChecked,
                R.RefutedConfirmed, R.UnknownConfirmed, R.InterpTraces,
                R.InterpExchanges, R.ParityArms);
    if (!R.clean()) {
      std::fprintf(stderr, "oracle found %zu mismatch%s:\n%s",
                   R.Mismatches.size(),
                   R.Mismatches.size() == 1 ? "" : "es",
                   gen::describeMismatches(R).c_str());
      return 1;
    }
    std::printf("  mismatches: 0\n");
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Result<Args> A = parseArgs(Argc, Argv);
  if (!A.ok()) {
    std::fprintf(stderr, "error: %s\n", A.error().c_str());
    return usage();
  }

  // File-less commands dispatch before any program is loaded.
  if (A->Command == "daemon")
    return cmdDaemon(*A);
  if (A->Command == "client")
    return cmdClient(*A);
  if (A->Command == "gen")
    return cmdGen(*A);

  Result<std::string> Source = readFile(A->File);
  if (!Source.ok()) {
    std::fprintf(stderr, "error: %s\n", Source.error().c_str());
    return 2;
  }
  Result<ProgramPtr> P = loadProgram(*Source, A->File);
  if (!P.ok()) {
    std::fprintf(stderr, "%s", P.error().c_str());
    return 1;
  }

  if (A->Command == "verify")
    return cmdVerify(*A, **P);
  if (A->Command == "bmc")
    return cmdBmc(*A, **P);
  if (A->Command == "run")
    return cmdRun(*A, **P);
  if (A->Command == "print") {
    std::printf("%s", printProgram(**P).c_str());
    return 0;
  }
  if (A->Command == "info")
    return cmdInfo(*A, **P);
  if (A->Command == "cache-gc")
    return cmdCacheGc(*A, **P);
  std::fprintf(stderr, "unknown command '%s'\n", A->Command.c_str());
  return usage();
}
