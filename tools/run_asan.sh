#!/usr/bin/env bash
# Memory- and UB-checks the fault-tolerance paths under ASan + UBSan.
#
# Builds the tree into build-asan/ with -fsanitize=address,undefined (the
# REFLEX_SANITIZE CMake option accepts the comma-separated list), then
# runs the entry points that exercise injected faults, corrupted cache
# entries, worker retries, and script crash isolation:
#   * tests/service_test      — quarantine, orphan sweep, faulted batches
#   * tests/daemon_test       — reflexd request/session/GC lifecycle incl.
#                               malformed-frame and vanished-client paths
#   * tests/robustness_test   — seeded pipeline fuzz, runtime crash isolation
#   * bench/bench_faults      — budgets + faults over the full suite,
#                               in --smoke mode (one repetition)
#   * tests/certificate_test  — certificate tampering/truncation incl.
#                               the PDR clausal certificates
#   * bench/bench_portfolio   — every kernel under every engine (the
#                               portfolio race allocates across threads),
#                               in --smoke mode
#   * tests/chaos_test        — torn/tampered journal replay, kill -9
#                               recovery, shedding, supervised restarts
#   * tests/solver_test       — the incremental core's undo trail and
#                               watched-term indexing (pointer-heavy)
#   * tests/solver_diff_test  — randomized scoped-vs-scratch solving and
#                               tampered reason-trail rejection
#   * bench/bench_solver      — scoped-vs-scratch query parity + reason
#                               trail replay, in --smoke mode
#   * tests/footprint_stmt_test — per-statement mutation audits and the
#                               path-fingerprint machinery (render-heavy,
#                               cache entry decode/migration)
#   * bench/bench_incremental — footprint-reuse scenarios incl. the
#                               path-granular branch-leaf audit,
#                               in --smoke mode
#   * tests/gen_test          — the scenario factory: seeded emission,
#                               manifest rendering, ill-formed mutants
#                               through the validator's error paths
#   * tests/corpus_diff_test  — the differential oracle end to end incl.
#                               counterexample replay and interpreter
#                               refinement on machine-made kernels
#
# Usage: tools/run_asan.sh [build-dir]       (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build-asan}"

cmake -B "$BUILD" -S . -DREFLEX_SANITIZE=address,undefined >/dev/null
cmake --build "$BUILD" -j --target service_test daemon_test robustness_test \
  certificate_test chaos_test solver_test solver_diff_test \
  footprint_stmt_test gen_test corpus_diff_test bench_faults \
  bench_portfolio bench_solver bench_incremental

# Fail the script on the first report from either sanitizer.
export ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 ${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}"

echo "== service_test (ASan+UBSan) =="
"$BUILD/tests/service_test"

echo "== daemon_test (ASan+UBSan) =="
"$BUILD/tests/daemon_test"

echo "== robustness_test (ASan+UBSan) =="
"$BUILD/tests/robustness_test"

echo "== bench_faults --smoke (ASan+UBSan) =="
"$BUILD/bench/bench_faults" --smoke --out "$BUILD/BENCH_faults.smoke.json"

echo "== certificate_test (ASan+UBSan) =="
"$BUILD/tests/certificate_test"

echo "== bench_portfolio --smoke (ASan+UBSan) =="
"$BUILD/bench/bench_portfolio" --smoke \
  --out "$BUILD/BENCH_portfolio.smoke.json"

echo "== chaos_test (ASan+UBSan) =="
"$BUILD/tests/chaos_test"

echo "== solver_test (ASan+UBSan) =="
"$BUILD/tests/solver_test"

echo "== solver_diff_test (ASan+UBSan) =="
"$BUILD/tests/solver_diff_test"

echo "== bench_solver --smoke (ASan+UBSan) =="
"$BUILD/bench/bench_solver" --smoke --depth 4 --lanes 4 \
  --out "$BUILD/BENCH_solver.smoke.json"

echo "== footprint_stmt_test (ASan+UBSan) =="
"$BUILD/tests/footprint_stmt_test"

echo "== bench_incremental --smoke (ASan+UBSan) =="
"$BUILD/bench/bench_incremental" --smoke --stages 6 \
  --out "$BUILD/BENCH_incremental.smoke.json"

echo "== gen_test (ASan+UBSan) =="
"$BUILD/tests/gen_test"

echo "== corpus_diff_test (ASan+UBSan) =="
"$BUILD/tests/corpus_diff_test"

echo "ASan/UBSan: no issues reported"
