#!/usr/bin/env bash
# End-to-end reflexd smoke: start the daemon through the real CLI, drive
# one full session lifecycle through `reflex client`, and check every
# response is ok. Exercises the shipped binaries exactly as a user would
# (tools/run_daemon_smoke.sh <path-to-reflex-cli>); wired into ctest
# under the bench-smoke label.
set -u

CLI="${1:-${REFLEX_CLI:-}}"
if [ -z "$CLI" ] || [ ! -x "$CLI" ]; then
  echo "usage: $0 <path-to-reflex-cli>" >&2
  exit 2
fi

WORK="$(mktemp -d /tmp/rfx-smoke-XXXXXX)"
SOCK="$WORK/d.sock"
LOG="$WORK/daemon.log"
DAEMON_PID=""

cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $1" >&2
  [ -f "$LOG" ] && sed 's/^/  daemon: /' "$LOG" >&2
  exit 1
}

cat > "$WORK/demo.rfx" <<'EOF'
program demo;
component Admin "admin.py";
component Door "door.c";
message Grant(str);
message Scan(str);
message Unlock(str);
var granted: str = "";
var armed: bool = false;
init {
  A <- spawn Admin();
  D <- spawn Door();
}
handler Admin => Grant(b) { granted = b; armed = true; }
handler Door => Scan(b) {
  if (armed && b == granted) { send(D, Unlock(b)); }
}
property UnlockNeedsGrant: forall b.
  [Recv(Admin, Grant(b))] Enables [Send(Door, Unlock(b))];
EOF
# The same kernel with an interface-preserving no-op edit in one handler.
sed 's/{ granted = b; armed = true; }/{ granted = b; armed = true; armed = armed; }/' \
  "$WORK/demo.rfx" > "$WORK/demo_edit.rfx"

"$CLI" daemon --socket "$SOCK" --cache-dir "$WORK/cache" > "$LOG" 2>&1 &
DAEMON_PID=$!

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon exited before binding"
  sleep 0.05
done
[ -S "$SOCK" ] || fail "socket never appeared at $SOCK"

# One frame per verb; every response must be ok:true.
ask() {
  local what="$1" frame="$2"
  local resp
  resp="$("$CLI" client --socket "$SOCK" --frame "$frame")" \
    || fail "$what: client transport error"
  case "$resp" in
    '{"ok":true'*) ;;
    *) fail "$what: $resp" ;;
  esac
  echo "$resp"
}

json_escape_file() { # embed a file's content as a JSON string
  sed -e 's/\\/\\\\/g' -e 's/"/\\"/g' "$1" | awk '{printf "%s\\n", $0}'
}
SRC1="$(json_escape_file "$WORK/demo.rfx")"
SRC2="$(json_escape_file "$WORK/demo_edit.rfx")"

ask ping '{"verb":"ping"}' > /dev/null
R="$(ask verify "{\"verb\":\"verify\",\"program\":\"$SRC1\"}")"
case "$R" in *'"proved":1'*) ;; *) fail "verify did not prove: $R" ;; esac
ask open-session "{\"verb\":\"open-session\",\"session\":\"s\",\"program\":\"$SRC1\"}" > /dev/null
R="$(ask edit "{\"verb\":\"edit\",\"session\":\"s\",\"program\":\"$SRC2\"}")"
case "$R" in *'"proved":1'*) ;; *) fail "edit did not prove: $R" ;; esac
R="$(ask stats '{"verb":"stats"}')"
case "$R" in *'"verbs"'*) ;; *) fail "stats has no verbs object: $R" ;; esac
ask close-session '{"verb":"close-session","session":"s"}' > /dev/null
ask cache-gc '{"verb":"cache-gc"}' > /dev/null
ask shutdown '{"verb":"shutdown"}' > /dev/null

wait "$DAEMON_PID" || fail "daemon exited non-zero after shutdown"
DAEMON_PID=""
grep -q "reflexd shut down" "$LOG" || fail "daemon never logged shutdown"
echo "PASS: daemon smoke (verify, session edit, stats, gc, shutdown)"
