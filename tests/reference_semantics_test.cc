//===- tests/reference_semantics_test.cc - Coq definitions oracle -*- C++-*-===//
//
// prop/check.cc implements the §4.1 primitives chronologically and checks
// universally quantified variables via the trigger discipline (each
// trigger occurrence determines the binding). This suite transcribes the
// paper's Coq definitions *literally* — reverse-chronological traces,
// decomposition into suffix ++ action :: prefix, and outermost universal
// quantification realized by enumerating every assignment over the value
// domain — and differentially tests the production checker against the
// transcription on random traces and patterns.
//
//   Definition immbefore A B tr := forall b pre suf,
//     AMatch B b -> tr = suf ++ b :: pre ->
//     exists a pre', AMatch A a /\ pre = a :: pre'.
//   Definition enables A B tr := forall b pre suf,
//     AMatch B b -> tr = suf ++ b :: pre ->
//     exists a pre' suf', AMatch A a /\ pre = suf' ++ a :: pre'.
//   Definition disables A B tr := forall a pre suf,
//     AMatch A a -> tr = suf ++ a :: pre ->
//     forall b, AMatch B b -> ~ In b suf.
//   Definition immafter A B tr := immbefore B A (rev tr).
//   Definition ensures  A B tr := enables  B A (rev tr).
//
//===----------------------------------------------------------------------===//

#include "prop/check.h"
#include "support/rng.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace reflex {
namespace {

/// Reverse-chronological view: index 0 is the most recent action (the
/// paper's list head).
std::vector<const Action *> revView(const Trace &T) {
  std::vector<const Action *> R;
  for (auto It = T.Actions.rbegin(); It != T.Actions.rend(); ++It)
    R.push_back(&*It);
  return R;
}

/// AMatch under a *ground* pattern instance (binding fixed up front).
bool amatch(const Action &A, const ActionPattern &Pat, const Trace &T,
            const Binding &Sigma) {
  Binding B = Sigma;
  return matchAction(A, Pat, T, B);
}

// --- Literal transcriptions over the reverse view -------------------------

bool refImmBefore(const ActionPattern &A, const ActionPattern &B,
                  const std::vector<const Action *> &Rev, const Trace &T,
                  const Binding &Sigma) {
  for (size_t I = 0; I < Rev.size(); ++I) {
    if (!amatch(*Rev[I], B, T, Sigma))
      continue;
    // pre = Rev[I+1..]; need pre = a :: pre' with AMatch A a.
    if (I + 1 >= Rev.size() || !amatch(*Rev[I + 1], A, T, Sigma))
      return false;
  }
  return true;
}

bool refEnables(const ActionPattern &A, const ActionPattern &B,
                const std::vector<const Action *> &Rev, const Trace &T,
                const Binding &Sigma) {
  for (size_t I = 0; I < Rev.size(); ++I) {
    if (!amatch(*Rev[I], B, T, Sigma))
      continue;
    bool Found = false;
    for (size_t J = I + 1; J < Rev.size() && !Found; ++J)
      Found = amatch(*Rev[J], A, T, Sigma);
    if (!Found)
      return false;
  }
  return true;
}

bool refDisables(const ActionPattern &A, const ActionPattern &B,
                 const std::vector<const Action *> &Rev, const Trace &T,
                 const Binding &Sigma) {
  // For every decomposition suf ++ a :: pre with AMatch A a, no b in suf
  // (i.e. more recent than a) matches B.
  for (size_t I = 0; I < Rev.size(); ++I) {
    if (!amatch(*Rev[I], A, T, Sigma))
      continue;
    for (size_t J = 0; J < I; ++J)
      if (amatch(*Rev[J], B, T, Sigma))
        return false;
  }
  return true;
}

bool refHolds(const TraceProperty &P, const Trace &T, const Binding &Sigma) {
  std::vector<const Action *> Rev = revView(T);
  std::vector<const Action *> Fwd(Rev.rbegin(), Rev.rend());
  switch (P.Op) {
  case TraceOp::ImmBefore:
    return refImmBefore(P.A, P.B, Rev, T, Sigma);
  case TraceOp::Enables:
    return refEnables(P.A, P.B, Rev, T, Sigma);
  case TraceOp::Disables:
    return refDisables(P.A, P.B, Rev, T, Sigma);
  case TraceOp::ImmAfter: // immafter A B tr := immbefore B A (rev tr)
    return refImmBefore(P.B, P.A, Fwd, T, Sigma);
  case TraceOp::Ensures: // ensures A B tr := enables B A (rev tr)
    return refEnables(P.B, P.A, Fwd, T, Sigma);
  }
  return false;
}

/// Outermost universal quantification: enumerate every assignment of the
/// property's variables over \p Domain.
bool refHoldsForall(const TraceProperty &P, const Trace &T,
                    const std::vector<Value> &Domain) {
  std::set<std::string> Vars(P.Vars.begin(), P.Vars.end());
  std::vector<std::string> Order(Vars.begin(), Vars.end());
  std::vector<size_t> Idx(Order.size(), 0);
  while (true) {
    Binding Sigma;
    for (size_t I = 0; I < Order.size(); ++I)
      Sigma.emplace(Order[I], Domain[Idx[I]]);
    if (!refHolds(P, T, Sigma))
      return false;
    // Next assignment.
    size_t K = 0;
    while (K < Idx.size() && ++Idx[K] == Domain.size()) {
      Idx[K] = 0;
      ++K;
    }
    if (K == Idx.size() && !Idx.empty())
      return true;
    if (Idx.empty())
      return true;
  }
}

// --- Differential sweep ----------------------------------------------------

ActionPattern mkPat(ActionPattern::PatKind Kind, PatTerm Arg0, PatTerm Arg1) {
  ActionPattern P;
  P.Kind = Kind;
  P.Comp.TypeName = "C";
  P.Msg.MsgName = "M";
  P.Msg.Args = {std::move(Arg0), std::move(Arg1)};
  return P;
}

class OracleSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OracleSweep, ProductionCheckerMatchesCoqTranscription) {
  Rng Rand(GetParam());
  // Value domain: everything that can appear in traces and patterns, plus
  // one value that never appears (quantifiers must survive it).
  std::vector<Value> Domain{Value::num(0), Value::num(1), Value::num(2),
                            Value::num(99)};

  for (int Round = 0; Round < 300; ++Round) {
    // Random trace over Send/Recv of M(tag, tag).
    Trace T;
    T.Components.push_back({0, "C", {}});
    size_t Len = Rand.below(9);
    for (size_t I = 0; I < Len; ++I) {
      Message M;
      M.Name = "M";
      M.Args = {Value::num(static_cast<int64_t>(Rand.below(3))),
                Value::num(static_cast<int64_t>(Rand.below(3)))};
      T.Actions.push_back(Rand.chance(1, 2) ? Action::send(0, M)
                                            : Action::recv(0, M));
    }

    // Random property respecting the trigger discipline: put variables in
    // the trigger; the obligation may reuse them or hold literals/wilds.
    TraceProperty P;
    P.Op = static_cast<TraceOp>(Rand.below(5));
    bool UseVarU = Rand.chance(1, 2);
    bool UseVarV = Rand.chance(1, 3);
    auto TriggerTerm = [&](bool Var, const char *Name) {
      if (Var)
        return PatTerm::var(Name);
      if (Rand.chance(1, 3))
        return PatTerm::wild();
      return PatTerm::lit(Value::num(static_cast<int64_t>(Rand.below(3))));
    };
    auto ObligationTerm = [&](bool Var, const char *Name) {
      if (Var && Rand.chance(1, 2))
        return PatTerm::var(Name); // reuse the trigger variable
      if (Rand.chance(1, 3))
        return PatTerm::wild();
      return PatTerm::lit(Value::num(static_cast<int64_t>(Rand.below(3))));
    };
    ActionPattern Trigger =
        mkPat(Rand.chance(1, 2) ? ActionPattern::Send : ActionPattern::Recv,
              TriggerTerm(UseVarU, "u"), TriggerTerm(UseVarV, "v"));
    ActionPattern Obligation =
        mkPat(Rand.chance(1, 2) ? ActionPattern::Send : ActionPattern::Recv,
              ObligationTerm(UseVarU, "u"), ObligationTerm(UseVarV, "v"));
    if (UseVarU)
      P.Vars.push_back("u");
    if (UseVarV)
      P.Vars.push_back("v");
    bool TriggerIsB = P.Op == TraceOp::ImmBefore ||
                      P.Op == TraceOp::Enables || P.Op == TraceOp::Disables;
    P.A = TriggerIsB ? Obligation : Trigger;
    P.B = TriggerIsB ? Trigger : Obligation;

    bool Production = !checkTraceProperty(T, P).has_value();
    bool Reference = refHoldsForall(P, T, Domain);
    ASSERT_EQ(Production, Reference)
        << traceOpName(P.Op) << " [" << P.A.str() << "] op [" << P.B.str()
        << "]\ntrace:\n"
        << T.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleSweep,
                         ::testing::Values(1u, 12u, 123u, 1234u, 12345u));

} // namespace
} // namespace reflex
