//===- tests/bmc_test.cc - Bounded model checker tests ----------*- C++ -*-===//

#include "prop/check.h"
#include "test_util.h"

namespace reflex {
namespace {

const char Broken[] = R"(
component A "a";
component B "b";
message Ping(num);
message Mark(num);
init {
  X <- spawn A();
  Y <- spawn B();
}
handler A => Ping(n) {
  send(Y, Mark(n));
}
property MarkNeedsPong: forall n.
  [Recv(B, Ping(n))] Enables [Send(B, Mark(n))];
)";

TEST(Bmc, FindsGenuineCounterexample) {
  ProgramPtr P = mustLoad(Broken);
  const Property *Prop = P->findProperty("MarkNeedsPong");
  BmcOptions Opts;
  Opts.MaxDepth = 2;
  BmcResult R = bmcSearch(*P, *Prop, Opts);
  ASSERT_TRUE(R.Violated);
  EXPECT_FALSE(R.Counterexample.Actions.empty());
  // The counterexample genuinely violates the property under the
  // reference semantics.
  auto V = checkTraceProperty(R.Counterexample, Prop->traceProp());
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(R.Explanation, V->Explanation);
}

TEST(Bmc, TruePropertyHasNoCounterexample) {
  const char Good[] = R"(
component A "a";
component B "b";
message Ping(num);
message Mark(num);
var seen: bool = false;
init {
  X <- spawn A();
  Y <- spawn B();
}
handler B => Ping(n) { seen = true; }
handler A => Ping(n) {
  if (seen) {
    send(Y, Mark(n));
  }
}
property PingBeforeMark:
  [Recv(B, Ping(_))] Enables [Send(B, Mark(_))];
)";
  ProgramPtr P = mustLoad(Good);
  BmcOptions Opts;
  Opts.MaxDepth = 3;
  BmcResult R = bmcSearch(*P, *P->findProperty("PingBeforeMark"), Opts);
  EXPECT_FALSE(R.Violated);
  EXPECT_GT(R.StatesExplored, 0u);
}

TEST(Bmc, DepthLimitRespected) {
  // The bug needs two exchanges; depth 1 cannot see it.
  const char TwoStep[] = R"(
component A "a";
message Tick();
message Tock();
var armed: bool = false;
init { X <- spawn A(); }
handler A => Tick() {
  if (armed) {
    send(X, Tock());
  }
  armed = true;
}
property NeverTock:
  [Send(A, Tock())] Disables [Send(A, Tock())];
property TockNeedsTock:
  [Recv(A, Tock())] Enables [Send(A, Tock())];
)";
  ProgramPtr P = mustLoad(TwoStep);
  // "Tock requires a prior received Tock" is false, but only two Ticks
  // deep (armed must first be set).
  const Property *Prop = P->findProperty("TockNeedsTock");
  BmcOptions Shallow;
  Shallow.MaxDepth = 1;
  EXPECT_FALSE(bmcSearch(*P, *Prop, Shallow).Violated);
  BmcOptions Deep;
  Deep.MaxDepth = 2;
  EXPECT_TRUE(bmcSearch(*P, *Prop, Deep).Violated);
}

TEST(Bmc, HarvestsLiteralsFromProperties) {
  // The violating payload value appears only in the property text; the
  // domain collector must pick it up.
  const char NeedsLiteral[] = R"(
component A "a";
message Put(str);
message Echo(str);
init { X <- spawn A(); }
handler A => Put(s) {
  if (s == "magic") {
    send(X, Echo(s));
  }
}
property NoMagicEcho:
  [Recv(A, Put("magic"))] Disables [Send(A, Echo("magic"))];
)";
  ProgramPtr P = mustLoad(NeedsLiteral);
  BmcOptions Opts;
  Opts.MaxDepth = 2;
  BmcResult R = bmcSearch(*P, *P->findProperty("NoMagicEcho"), Opts);
  EXPECT_TRUE(R.Violated);
}

TEST(Bmc, NonTracePropertiesAreSkipped) {
  const char WithNI[] = R"(
component A "a";
message Ping(num);
init { X <- spawn A(); }
property NI: noninterference { high components: A; high vars: ; };
)";
  ProgramPtr P = mustLoad(WithNI);
  BmcResult R = bmcSearch(*P, *P->findProperty("NI"));
  EXPECT_FALSE(R.Violated);
  EXPECT_EQ(R.StatesExplored, 0u);
}

TEST(Bmc, VerifierIntegration) {
  // BmcDepthOnUnknown turns an Unknown into a Refuted with a trace.
  ProgramPtr P = mustLoad(Broken);
  VerifyOptions Opts;
  Opts.BmcDepthOnUnknown = 2;
  VerificationReport Rep = verifyProgram(*P, Opts);
  ASSERT_EQ(Rep.Results.size(), 1u);
  EXPECT_EQ(Rep.Results[0].Status, VerifyStatus::Refuted);
  EXPECT_FALSE(Rep.Results[0].Counterexample.Actions.empty());
}

} // namespace
} // namespace reflex
