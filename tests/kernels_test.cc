//===- tests/kernels_test.cc - Benchmark integration tests ------*- C++ -*-===//
//
// The headline result as a test: all 41 properties of the seven benchmark
// kernels prove fully automatically with checked certificates (paper
// Figure 6, §6.2), and the property inventory matches the paper row for
// row.
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"
#include "test_util.h"

namespace reflex {
namespace {

TEST(Kernels, FortyOnePropertiesTotal) {
  EXPECT_EQ(kernels::totalProperties(), 41u) << "Figure 6 has 41 rows";
  // Per-kernel counts as in the paper.
  std::map<std::string, size_t> Expected{
      {"car", 8},  {"browser", 6}, {"browser2", 7}, {"browser3", 7},
      {"ssh", 5},  {"ssh2", 2},    {"webserver", 6}};
  for (const kernels::KernelDef *K : kernels::all())
    EXPECT_EQ(K->Rows.size(), Expected[K->Name]) << K->Name;
}

TEST(Kernels, EveryRowNamesARealProperty) {
  for (const kernels::KernelDef *K : kernels::all()) {
    ProgramPtr P = kernels::load(*K);
    for (const kernels::PropertyRow &Row : K->Rows) {
      EXPECT_NE(P->findProperty(Row.PropertyName), nullptr)
          << K->Name << "/" << Row.PropertyName;
      EXPECT_GT(Row.PaperSeconds, 0) << "paper time missing";
    }
    // And conversely: every property of the kernel is a Figure 6 row.
    EXPECT_EQ(P->Properties.size(), K->Rows.size()) << K->Name;
  }
}

// The headline: each kernel proves all its properties, pushbutton.
class KernelProofs : public ::testing::TestWithParam<const kernels::KernelDef *> {};

TEST_P(KernelProofs, AllPropertiesProvedWithCheckedCertificates) {
  const kernels::KernelDef *K = GetParam();
  ProgramPtr P = kernels::load(*K);
  VerificationReport R = verifyProgram(*P);
  EXPECT_TRUE(R.allProved());
  for (const PropertyResult &Res : R.Results) {
    EXPECT_EQ(Res.Status, VerifyStatus::Proved)
        << K->Name << "/" << Res.Name << ": " << Res.Reason;
    EXPECT_TRUE(Res.CertChecked) << K->Name << "/" << Res.Name;
    EXPECT_FALSE(Res.Cert.Steps.empty() && Res.Cert.NICases.empty())
        << "certificates are non-trivial";
  }
}

TEST_P(KernelProofs, SimulationRunsCleanUnderMonitor) {
  const kernels::KernelDef *K = GetParam();
  ProgramPtr P = kernels::load(*K);
  Runtime Rt(*P, K->MakeScripts(), K->MakeCalls(), /*Seed=*/1);
  Rt.enableMonitor();
  Rt.start();
  size_t Steps = Rt.run(1000);
  EXPECT_GT(Steps, 0u) << "the scripts must actually drive the kernel";
  EXPECT_FALSE(Rt.lastViolation().has_value())
      << Rt.lastViolation()->Explanation;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelProofs, ::testing::ValuesIn(kernels::all()),
    [](const ::testing::TestParamInfo<const kernels::KernelDef *> &Info) {
      return Info.param->Name;
    });

TEST(Kernels, SshSessionEstablishesTerminal) {
  const kernels::KernelDef &K = kernels::ssh();
  ProgramPtr P = kernels::load(K);
  Runtime Rt(*P, K.MakeScripts(), K.MakeCalls(), 42);
  Rt.start();
  Rt.run(100);
  bool TermFd = false;
  unsigned Attempts = 0;
  for (const Action &A : Rt.trace().Actions) {
    TermFd |= A.Kind == Action::Send && A.Msg.Name == "TermFd";
    Attempts += A.Kind == Action::Send && A.Msg.Name == "CheckAuth";
  }
  EXPECT_TRUE(TermFd) << "the scripted session must log in";
  EXPECT_LE(Attempts, 3u) << "the verified limit";
}

TEST(Kernels, BrowserRefusesDuplicateTabAndCrossDomainSocket) {
  const kernels::KernelDef &K = kernels::browser();
  ProgramPtr P = kernels::load(K);
  Runtime Rt(*P, K.MakeScripts(), K.MakeCalls(), 42);
  Rt.start();
  Rt.run(1000);
  unsigned Tabs = 0, Created = 0, SocketReqs = 0, SocketGrants = 0;
  for (const ComponentInstance &C : Rt.trace().Components)
    Tabs += C.TypeName == "Tab";
  for (const Action &A : Rt.trace().Actions) {
    Created += A.Kind == Action::Recv && A.Msg.Name == "CreateTab";
    SocketReqs += A.Kind == Action::Recv && A.Msg.Name == "OpenSocket";
    SocketGrants += A.Kind == Action::Send && A.Msg.Name == "SocketOpen";
  }
  EXPECT_EQ(Created, 3u);
  EXPECT_EQ(Tabs, 2u) << "duplicate id refused";
  EXPECT_EQ(SocketReqs, 4u) << "each tab tries own + cross domain";
  EXPECT_EQ(SocketGrants, 2u) << "only own-domain sockets granted";
}

TEST(Kernels, BrowserNavigationIsSameOrigin) {
  const kernels::KernelDef &K = kernels::browser2();
  ProgramPtr P = kernels::load(K);
  Runtime Rt(*P, K.MakeScripts(), K.MakeCalls(), 42);
  Rt.start();
  Rt.run(1000);
  unsigned NavReqs = 0, Loads = 0;
  for (const Action &A : Rt.trace().Actions) {
    NavReqs += A.Kind == Action::Recv && A.Msg.Name == "Navigate";
    Loads += A.Kind == Action::Send && A.Msg.Name == "LoadUrl";
  }
  EXPECT_EQ(NavReqs, 4u) << "each tab tries own + cross domain";
  EXPECT_EQ(Loads, 2u) << "cross-domain navigations dropped";
}

TEST(Kernels, Ssh2CounterLimitsAttempts) {
  const kernels::KernelDef &K = kernels::ssh2();
  ProgramPtr P = kernels::load(K);
  Runtime Rt(*P, K.MakeScripts(), K.MakeCalls(), 7);
  Rt.start();
  Rt.run(100);
  unsigned Approved = 0, Requested = 0;
  for (const Action &A : Rt.trace().Actions) {
    Requested += A.Kind == Action::Send && A.Msg.Name == "CountReq";
    Approved += A.Kind == Action::Recv && A.Msg.Name == "Approved";
  }
  EXPECT_EQ(Requested, 4u);
  EXPECT_EQ(Approved, 3u) << "counter component enforces the limit";
}

} // namespace
} // namespace reflex
