//===- tests/chaos_test.cc - Crash-safety and overload chaos tests --------===//
//
// The crash-safe daemon under deliberate abuse: torn and tampered
// journals, kill -9 mid-batch, overload shedding, slow-loris clients,
// seeded socket faults, supervised restarts, and the proof cache's
// manifest/quarantine bounds. The invariant everything here defends is
// the determinism contract: whatever the failure, every verdict a
// client actually receives is byte-identical to a cold one-shot run —
// recovery may cost time, never correctness.
//
//===----------------------------------------------------------------------===//

#include "daemon/client.h"
#include "daemon/daemon.h"
#include "daemon/journal.h"
#include "daemon/protocol.h"
#include "daemon/supervisor.h"
#include "kernels/kernels.h"
#include "kernels/synthetic.h"
#include "service/proofcache.h"
#include "service/scheduler.h"
#include "support/faultinject.h"
#include "support/socket.h"
#include "verify/engine.h"
#include "verify/footprint.h"
#include "test_util.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace reflex {
namespace {

namespace fs = std::filesystem;

/// AF_UNIX paths must fit sun_path (~107 bytes): short /tmp names.
std::string sockPath(const char *Tag) {
  static std::atomic<unsigned> Counter{0};
  std::string P = "/tmp/rfxc-" + std::to_string(::getpid()) + "-" + Tag +
                  "-" + std::to_string(Counter++) + ".sock";
  ::unlink(P.c_str());
  return P;
}

std::string tempDir(const std::string &Name) {
  std::string P = std::string(::testing::TempDir()) + Name;
  fs::remove_all(P);
  fs::create_directories(P);
  return P;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

void spit(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Bytes;
}

struct TestDaemon {
  std::unique_ptr<ReflexDaemon> D;

  explicit TestDaemon(DaemonOptions O) {
    Result<std::unique_ptr<ReflexDaemon>> R = ReflexDaemon::start(O);
    EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.error());
    if (!R.ok())
      return;
    D = R.take();
    D->serveInBackground();
  }
  ~TestDaemon() {
    if (D)
      D->stop();
  }
};

DaemonClient mustConnect(const std::string &Socket) {
  Result<DaemonClient> C = DaemonClient::connect(Socket);
  EXPECT_TRUE(C.ok()) << (C.ok() ? "" : C.error());
  return C.take();
}

JsonValue mustCall(DaemonClient &C, const std::string &Frame) {
  Result<JsonValue> R = C.call(Frame);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.error());
  return R.ok() ? R.take() : JsonValue();
}

std::string frame(const std::string &Verb, const std::string &Session = "",
                  const std::string &Program = "",
                  const std::string &OptionsJson = "") {
  JsonWriter W;
  W.beginObject();
  W.field("verb", Verb);
  if (!Session.empty())
    W.field("session", Session);
  if (!Program.empty())
    W.field("program", Program);
  if (!OptionsJson.empty()) {
    W.key("options");
    W.rawValue(OptionsJson);
  }
  W.endObject();
  return W.take();
}

void canonInto(const JsonValue &V, JsonWriter &W) {
  if (V.isObject()) {
    W.beginObject();
    for (const auto &[K, E] : V.entries()) {
      W.key(K);
      canonInto(E, W);
    }
    W.endObject();
  } else if (V.isArray()) {
    W.beginArray();
    for (const JsonValue &E : V.items())
      canonInto(E, W);
    W.endArray();
  } else if (V.isString()) {
    W.value(V.stringValue());
  } else if (V.isBool()) {
    W.value(V.boolValue());
  } else if (V.isNumber()) {
    W.value(V.numberValue());
  } else {
    W.nullValue();
  }
}

std::string canon(const JsonValue &V) {
  JsonWriter W;
  canonInto(V, W);
  return W.take();
}

std::string canon(const std::string &Json) {
  Result<JsonValue> V = parseJson(Json);
  EXPECT_TRUE(V.ok()) << (V.ok() ? "" : V.error());
  return V.ok() ? canon(*V) : std::string();
}

/// Byte-parity: the response's results equal \p Want property for
/// property — status, reason, certificate JSON.
void expectResultsMatch(const JsonValue &Resp, const VerificationReport &Want,
                        const std::string &What) {
  const JsonValue *Results = Resp.get("results");
  ASSERT_NE(Results, nullptr) << What;
  ASSERT_TRUE(Results->isArray()) << What;
  ASSERT_EQ(Results->items().size(), Want.Results.size()) << What;
  for (size_t I = 0; I < Want.Results.size(); ++I) {
    const JsonValue &Got = Results->items()[I];
    const PropertyResult &W = Want.Results[I];
    EXPECT_EQ(Got.getString("name"), W.Name) << What;
    EXPECT_EQ(Got.getString("status"), verifyStatusName(W.Status))
        << What << ": " << W.Name;
    if (W.Status != VerifyStatus::Proved) {
      EXPECT_EQ(Got.getString("reason"), W.Reason) << What << ": " << W.Name;
    } else if (!W.CertJson.empty()) {
      const JsonValue *Cert = Got.get("cert");
      ASSERT_NE(Cert, nullptr) << What << ": " << W.Name;
      EXPECT_EQ(canon(*Cert), canon(W.CertJson)) << What << ": " << W.Name;
    }
  }
  EXPECT_EQ(int64_t(Resp.getNumber("proved")), int64_t(Want.provedCount()))
      << What;
}

VerificationReport freshReport(const Program &P, EngineKind Engine =
                                                     EngineKind::Induction) {
  SchedulerOptions S;
  S.Jobs = 0;
  S.Verify.Engine = Engine;
  return verifyPrograms({&P}, S).Reports[0];
}

//===----------------------------------------------------------------------===//
// Journal: round trip, torn tails, checksums
//===----------------------------------------------------------------------===//

JournalVerdict sampleVerdict(const std::string &Text, VerifyStatus St) {
  JournalVerdict V;
  V.PropertyText = Text;
  V.PropertyName = "p";
  V.Status = St;
  V.Millis = 1.5;
  V.ServedBy = "induction";
  if (St == VerifyStatus::Proved) {
    V.CanonicalCert = "{\"engine\":\"induction\",\"inv\":\"x\"}";
    V.CertJson = "{\"cert\":1}";
  } else {
    V.Reason = "gave up";
  }
  V.FootprintCollected = true;
  V.Footprint = {"h1", "h2"};
  return V;
}

TEST(Chaos, JournalRoundTripReplaysSessionsVerdictsAndCloses) {
  std::string Dir = tempDir("chaos_journal_rt");
  std::string Path = Dir + "/verdicts.journal";
  {
    JournalReplay R0;
    Result<std::unique_ptr<VerdictJournal>> J =
        VerdictJournal::open(Path, &R0);
    ASSERT_TRUE(J.ok()) << J.error();
    EXPECT_EQ(R0.RecordsReplayed, 0u);
    ASSERT_TRUE((*J)->appendSession("s1", frame("open-session", "s1", "src1"),
                                    "decl1")
                    .ok());
    ASSERT_TRUE(
        (*J)->appendVerdict("s1", sampleVerdict("[p1]", VerifyStatus::Proved))
            .ok());
    ASSERT_TRUE(
        (*J)->appendVerdict("s1", sampleVerdict("[p2]", VerifyStatus::Unknown))
            .ok());
    ASSERT_TRUE((*J)->appendSession("s2", frame("open-session", "s2", "src2"),
                                    "decl2")
                    .ok());
    ASSERT_TRUE((*J)->appendClose("s2").ok());
    EXPECT_GT((*J)->sizeBytes(), 0u);
  }

  JournalReplay R;
  Result<std::unique_ptr<VerdictJournal>> J = VerdictJournal::open(Path, &R);
  ASSERT_TRUE(J.ok()) << J.error();
  EXPECT_EQ(R.RecordsReplayed, 5u);
  EXPECT_EQ(R.RecordsDiscarded, 0u);
  EXPECT_EQ(R.BytesTruncated, 0u);
  // s2 was closed; only s1 and its two verdicts survive.
  ASSERT_EQ(R.Sessions.size(), 1u);
  const JournalSession &S = R.Sessions[0];
  EXPECT_EQ(S.Name, "s1");
  EXPECT_EQ(S.DeclSha256, "decl1");
  ASSERT_EQ(S.Verdicts.size(), 2u);
  const JournalVerdict &V1 = S.Verdicts.at("[p1]");
  EXPECT_EQ(V1.Status, VerifyStatus::Proved);
  EXPECT_EQ(V1.CanonicalCert, "{\"engine\":\"induction\",\"inv\":\"x\"}");
  EXPECT_EQ(V1.CertJson, "{\"cert\":1}");
  EXPECT_EQ(V1.ServedBy, "induction");
  EXPECT_TRUE(V1.FootprintCollected);
  EXPECT_EQ(V1.Footprint, (std::vector<std::string>{"h1", "h2"}));
  EXPECT_EQ(S.Verdicts.at("[p2]").Status, VerifyStatus::Unknown);
  EXPECT_EQ(S.Verdicts.at("[p2]").Reason, "gave up");
}

TEST(Chaos, JournalTornTailIsTruncatedAndTheNextOpenIsClean) {
  std::string Dir = tempDir("chaos_journal_tear");
  std::string Path = Dir + "/verdicts.journal";
  {
    JournalReplay R0;
    Result<std::unique_ptr<VerdictJournal>> J =
        VerdictJournal::open(Path, &R0);
    ASSERT_TRUE(J.ok()) << J.error();
    ASSERT_TRUE((*J)->appendSession("s1", frame("open-session", "s1", "x"),
                                    "d1")
                    .ok());
  }
  // A crash mid-append: half a record, no trailing newline.
  std::string Bytes = slurp(Path);
  std::string Half =
      VerdictJournal::encodeRecord("{\"type\":\"session\",\"sess");
  spit(Path, Bytes + Half.substr(0, Half.size() / 2));

  JournalReplay R;
  {
    Result<std::unique_ptr<VerdictJournal>> J = VerdictJournal::open(Path, &R);
    ASSERT_TRUE(J.ok()) << J.error();
  }
  EXPECT_EQ(R.RecordsReplayed, 1u);
  EXPECT_EQ(R.RecordsDiscarded, 1u);
  EXPECT_GT(R.BytesTruncated, 0u);
  ASSERT_EQ(R.Sessions.size(), 1u);
  EXPECT_EQ(R.Sessions[0].Name, "s1");

  // open() compacted the tear off the file: a second replay is clean.
  JournalReplay R2;
  Result<std::unique_ptr<VerdictJournal>> J2 = VerdictJournal::open(Path, &R2);
  ASSERT_TRUE(J2.ok()) << J2.error();
  EXPECT_EQ(R2.RecordsReplayed, 1u);
  EXPECT_EQ(R2.RecordsDiscarded, 0u);
  EXPECT_EQ(R2.BytesTruncated, 0u);
}

TEST(Chaos, JournalChecksumMismatchCutsEverythingFromTheDamage) {
  std::string Dir = tempDir("chaos_journal_sum");
  std::string Path = Dir + "/verdicts.journal";
  {
    JournalReplay R0;
    Result<std::unique_ptr<VerdictJournal>> J =
        VerdictJournal::open(Path, &R0);
    ASSERT_TRUE(J.ok()) << J.error();
    ASSERT_TRUE((*J)->appendSession("s1", frame("open-session", "s1", "x"),
                                    "d1")
                    .ok());
    ASSERT_TRUE((*J)->appendSession("s2", frame("open-session", "s2", "y"),
                                    "d2")
                    .ok());
  }
  // Flip one payload byte of the first record: its checksum no longer
  // matches, so it AND everything after it (now of uncertain framing)
  // is discarded. A journal never serves silently-corrupted bytes.
  std::string Bytes = slurp(Path);
  size_t P = Bytes.find("\"session\":\"s1\"");
  ASSERT_NE(P, std::string::npos);
  Bytes[P + 12] = '9'; // s1 -> s9 without touching the recorded sha
  spit(Path, Bytes);

  JournalReplay R;
  Result<std::unique_ptr<VerdictJournal>> J = VerdictJournal::open(Path, &R);
  ASSERT_TRUE(J.ok()) << J.error();
  EXPECT_EQ(R.RecordsReplayed, 0u);
  EXPECT_EQ(R.RecordsDiscarded, 2u);
  EXPECT_TRUE(R.Sessions.empty());
}

//===----------------------------------------------------------------------===//
// Daemon recovery: restart, tamper, close
//===----------------------------------------------------------------------===//

TEST(Chaos, RestartedDaemonRecoversSessionsByteIdentically) {
  std::string CacheDir = tempDir("chaos_recover");
  const kernels::KernelDef &K = kernels::ssh2();
  ProgramPtr P = kernels::load(K);
  VerificationReport Want = freshReport(*P);

  {
    DaemonOptions O;
    O.SocketPath = sockPath("rec1");
    O.CacheDir = CacheDir;
    TestDaemon TD(O);
    ASSERT_NE(TD.D, nullptr);
    DaemonClient C = mustConnect(TD.D->socketPath());
    JsonValue Open = mustCall(C, frame("open-session", "warm", K.Source));
    ASSERT_TRUE(Open.getBool("ok")) << Open.getString("error");
  } // daemon dies without close-session: the journal keeps the session

  DaemonOptions O;
  O.SocketPath = sockPath("rec2");
  O.CacheDir = CacheDir;
  TestDaemon TD(O);
  ASSERT_NE(TD.D, nullptr);
  DaemonClient C = mustConnect(TD.D->socketPath());

  JsonValue S = mustCall(C, frame("stats"));
  const JsonValue *J = S.get("journal");
  ASSERT_NE(J, nullptr);
  EXPECT_EQ(J->getNumber("sessions_recovered"), 1.0);
  EXPECT_GE(J->getNumber("verdicts_recovered"), 1.0);
  EXPECT_EQ(J->getNumber("verdicts_rejected"), 0.0);
  EXPECT_GE(J->getNumber("recovery_millis"), 0.0);

  // The recovered session answers an edit without ever being re-opened,
  // serving every verdict from the journal-seeded state — byte-identical
  // to a cold one-shot run.
  JsonValue Edit = mustCall(C, frame("edit", "warm", K.Source));
  ASSERT_TRUE(Edit.getBool("ok")) << Edit.getString("error");
  EXPECT_EQ(int64_t(Edit.getNumber("reused")),
            int64_t(P->Properties.size()));
  EXPECT_EQ(Edit.getNumber("reverified"), 0.0);
  expectResultsMatch(Edit, Want, "post-restart edit");
}

TEST(Chaos, TamperedJournalCertificateIsReverifiedNeverServed) {
  std::string CacheDir = tempDir("chaos_tamper");
  const kernels::KernelDef &K = kernels::ssh2();
  ProgramPtr P = kernels::load(K);
  VerificationReport Want = freshReport(*P);

  {
    DaemonOptions O;
    O.SocketPath = sockPath("tam1");
    O.CacheDir = CacheDir;
    TestDaemon TD(O);
    ASSERT_NE(TD.D, nullptr);
    DaemonClient C = mustConnect(TD.D->socketPath());
    ASSERT_TRUE(mustCall(C, frame("open-session", "warm", K.Source))
                    .getBool("ok"));
  }

  // Tamper with a journaled certificate but keep the record's checksum
  // valid (an attacker with file access, or a very unlucky disk, can do
  // exactly this): replay must reject it through the certificate
  // checker, not serve it.
  std::string Path = CacheDir + "/verdicts.journal";
  std::string Bytes = slurp(Path);
  std::istringstream In(Bytes);
  std::string Line, Rebuilt;
  bool Tampered = false;
  while (std::getline(In, Line)) {
    size_t Sp2 = Line.find(' ', Line.find(' ') + 1);
    ASSERT_NE(Sp2, std::string::npos);
    std::string Payload = Line.substr(Sp2 + 1);
    if (!Tampered && Payload.find("\"type\":\"verdict\"") !=
                         std::string::npos) {
      size_t CPos = Payload.find("\"canonical_cert\":\"");
      if (CPos != std::string::npos) {
        // Swap a digit inside the certificate body for another digit:
        // the JSON stays well-formed, the proof becomes a lie. The
        // certificate is an escaped JSON string, so the scan must treat
        // \" as content and stop only at the unescaped closing quote.
        for (size_t I = CPos + 18;
             I < Payload.size() &&
             !(Payload[I] == '"' && Payload[I - 1] != '\\');
             ++I)
          if (Payload[I] >= '0' && Payload[I] <= '8') {
            ++Payload[I];
            Tampered = true;
            break;
          }
      }
    }
    Rebuilt += VerdictJournal::encodeRecord(Payload) + "\n";
  }
  ASSERT_TRUE(Tampered) << "no journaled certificate found to tamper with";
  spit(Path, Rebuilt);

  DaemonOptions O;
  O.SocketPath = sockPath("tam2");
  O.CacheDir = CacheDir;
  TestDaemon TD(O);
  ASSERT_NE(TD.D, nullptr);
  DaemonClient C = mustConnect(TD.D->socketPath());

  JsonValue S = mustCall(C, frame("stats"));
  const JsonValue *J = S.get("journal");
  ASSERT_NE(J, nullptr);
  EXPECT_GE(J->getNumber("verdicts_rejected"), 1.0)
      << "the tampered certificate must die at the checker";

  // The rejected verdict is simply re-verified; the client still gets
  // byte-identical results.
  JsonValue Edit = mustCall(C, frame("edit", "warm", K.Source));
  ASSERT_TRUE(Edit.getBool("ok")) << Edit.getString("error");
  EXPECT_GE(Edit.getNumber("reverified"), 1.0);
  expectResultsMatch(Edit, Want, "post-tamper edit");
}

TEST(Chaos, ClosedSessionsAreNotResurrectedByRecovery) {
  std::string CacheDir = tempDir("chaos_closed");
  const kernels::KernelDef &K = kernels::car();
  {
    DaemonOptions O;
    O.SocketPath = sockPath("cls1");
    O.CacheDir = CacheDir;
    TestDaemon TD(O);
    ASSERT_NE(TD.D, nullptr);
    DaemonClient C = mustConnect(TD.D->socketPath());
    ASSERT_TRUE(mustCall(C, frame("open-session", "gone", K.Source))
                    .getBool("ok"));
    ASSERT_TRUE(mustCall(C, frame("close-session", "gone")).getBool("ok"));
  }

  DaemonOptions O;
  O.SocketPath = sockPath("cls2");
  O.CacheDir = CacheDir;
  TestDaemon TD(O);
  ASSERT_NE(TD.D, nullptr);
  DaemonClient C = mustConnect(TD.D->socketPath());
  JsonValue S = mustCall(C, frame("stats"));
  const JsonValue *J = S.get("journal");
  ASSERT_NE(J, nullptr);
  EXPECT_EQ(J->getNumber("sessions_recovered"), 0.0);
  JsonValue Edit = mustCall(C, frame("edit", "gone", K.Source));
  EXPECT_FALSE(Edit.getBool("ok"));
}

//===----------------------------------------------------------------------===//
// kill -9 mid-batch: the flagship chaos gate
//===----------------------------------------------------------------------===//

pid_t spawnDaemon(const std::vector<std::string> &Args) {
  pid_t Pid = ::fork();
  if (Pid == 0) {
    std::vector<char *> Argv;
    static std::string Bin = REFLEX_CLI_PATH;
    Argv.push_back(Bin.data());
    std::vector<std::string> Copy = Args; // stable storage in the child
    for (std::string &A : Copy)
      Argv.push_back(A.data());
    Argv.push_back(nullptr);
    (void)::freopen("/dev/null", "w", stdout);
    ::execv(Bin.c_str(), Argv.data());
    _exit(127);
  }
  return Pid;
}

bool waitForDaemon(const std::string &Socket, int BudgetMs) {
  for (int Waited = 0; Waited < BudgetMs; Waited += 20) {
    if (DaemonClient::connect(Socket).ok())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

TEST(Chaos, KillNineMidBatchThenRecoveryIsByteIdenticalForAllKernels) {
  std::string CacheDir = tempDir("chaos_kill9");
  std::string Socket = sockPath("k9");
  const std::vector<std::string> Args = {"daemon",        "--socket",
                                         Socket,          "--cache-dir",
                                         CacheDir,        "--max-sessions",
                                         "32"};

  struct Work {
    std::string Name;
    std::string Source;
    std::string Options;
    size_t Properties = 0;
    VerificationReport Want;
  };
  std::vector<Work> Batch;
  for (const kernels::KernelDef *K : kernels::all()) {
    Work W;
    W.Name = std::string("k-") + K->Name;
    W.Source = K->Source;
    ProgramPtr P = kernels::load(*K);
    W.Properties = P->Properties.size();
    W.Want = freshReport(*P);
    Batch.push_back(std::move(W));
  }
  for (EngineKind E : {EngineKind::Pdr, EngineKind::Portfolio}) {
    Work W;
    W.Name = std::string("eng-") + engineKindName(E);
    W.Source = kernels::pdrlock().Source;
    W.Options = std::string("{\"engine\":\"") + engineKindName(E) + "\"}";
    ProgramPtr P = kernels::load(kernels::pdrlock());
    W.Properties = P->Properties.size();
    W.Want = freshReport(*P, E);
    Batch.push_back(std::move(W));
  }

  pid_t Pid = spawnDaemon(Args);
  ASSERT_GT(Pid, 0);
  ASSERT_TRUE(waitForDaemon(Socket, 30000)) << "daemon never came up";
  for (const Work &W : Batch) {
    DaemonClient C = mustConnect(Socket);
    JsonValue Open =
        mustCall(C, frame("open-session", W.Name, W.Source, W.Options));
    ASSERT_TRUE(Open.getBool("ok")) << W.Name << ": "
                                    << Open.getString("error");
    expectResultsMatch(Open, W.Want, W.Name + " before the kill");
  }

  // kill -9: no drain, no flush beyond what each append already fsync'd.
  ASSERT_EQ(::kill(Pid, SIGKILL), 0);
  int Status = 0;
  ASSERT_EQ(::waitpid(Pid, &Status, 0), Pid);
  ASSERT_TRUE(WIFSIGNALED(Status));

  // Salt the wound: a torn tail on the journal, as if the kill had also
  // caught an append mid-write.
  {
    std::ofstream Tail(CacheDir + "/verdicts.journal",
                       std::ios::binary | std::ios::app);
    Tail << "RJ1 deadbeef {\"type\":\"torn";
  }

  pid_t Pid2 = spawnDaemon(Args);
  ASSERT_GT(Pid2, 0);
  // The socket only appears after replay + re-validation: readiness
  // implies recovery is complete.
  ASSERT_TRUE(waitForDaemon(Socket, 60000)) << "daemon never recovered";

  {
    DaemonClient C = mustConnect(Socket);
    JsonValue S = mustCall(C, frame("stats"));
    const JsonValue *J = S.get("journal");
    ASSERT_NE(J, nullptr);
    EXPECT_EQ(size_t(J->getNumber("sessions_recovered")), Batch.size());
    EXPECT_GT(J->getNumber("bytes_truncated"), 0.0)
        << "the torn tail must be detected and cut";
  }

  for (const Work &W : Batch) {
    DaemonClient C = mustConnect(Socket);
    JsonValue Edit = mustCall(C, frame("edit", W.Name, W.Source, W.Options));
    ASSERT_TRUE(Edit.getBool("ok")) << W.Name << ": "
                                    << Edit.getString("error");
    EXPECT_GE(Edit.getNumber("reused"), 1.0)
        << W.Name << ": recovery must seed at least one verdict";
    EXPECT_EQ(size_t(Edit.getNumber("reused") +
                     Edit.getNumber("reverified")),
              W.Properties)
        << W.Name;
    expectResultsMatch(Edit, W.Want, W.Name + " after kill -9");
  }

  // SIGTERM drains and exits 0 — the supervisor's "deliberate stop".
  ASSERT_EQ(::kill(Pid2, SIGTERM), 0);
  ASSERT_EQ(::waitpid(Pid2, &Status, 0), Pid2);
  ASSERT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), 0);
}

//===----------------------------------------------------------------------===//
// Overload shedding
//===----------------------------------------------------------------------===//

TEST(Chaos, InFlightCapShedsStructurallyAndRetryingClientsSucceed) {
  DaemonOptions O;
  O.SocketPath = sockPath("shed");
  O.MaxInFlight = 1;
  O.RetryAfterMs = 42;
  TestDaemon TD(O);
  ASSERT_NE(TD.D, nullptr);
  const std::string Socket = TD.D->socketPath();

  // Occupy the single slot with a deliberately long verify (a 140-stage
  // chain runs for over a second) whose response we do not read yet.
  std::string Slow = kernels::syntheticChainKernel(140);
  Result<DaemonClient> A = DaemonClient::connect(Socket);
  ASSERT_TRUE(A.ok()) << A.error();
  ASSERT_TRUE(A->socket().sendAll(frame("verify", "", Slow) + "\n").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(250));

  // A second verify is shed with the structured overload error...
  DaemonClient B = mustConnect(Socket);
  JsonValue Shed = mustCall(B, frame("verify", "", kernels::ssh2().Source));
  EXPECT_FALSE(Shed.getBool("ok"));
  EXPECT_TRUE(Shed.getBool("overloaded"));
  EXPECT_EQ(Shed.getNumber("retry_after_ms"), 42.0);
  // ...but cheap verbs are never shed: the gate admits work, not pings.
  EXPECT_TRUE(mustCall(B, frame("ping")).getBool("ok"));

  // A retrying client waits the slot out and succeeds.
  DaemonRetryOptions RO;
  RO.MaxAttempts = 60;
  RO.BaseBackoffMs = 100;
  RO.BackoffCapMs = 400;
  RO.Seed = 7;
  unsigned Attempts = 0;
  Result<JsonValue> R = DaemonClient::callWithRetry(
      Socket, frame("verify", "", kernels::ssh2().Source), RO, &Attempts);
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_TRUE(R->getBool("ok")) << R->getString("error");
  EXPECT_GE(Attempts, 1u);

  // The accepted slow request was never dropped: its full response is
  // still there to read.
  std::string FrameA;
  // Only requests are frame-capped; a 279-property response is larger.
  Result<bool> Got = A->socket().readLine(FrameA, 256u << 20);
  ASSERT_TRUE(Got.ok()) << Got.error();
  ASSERT_TRUE(*Got);
  Result<JsonValue> RespA = parseJson(FrameA);
  ASSERT_TRUE(RespA.ok());
  EXPECT_TRUE(RespA->getBool("ok")) << RespA->getString("error");

  JsonValue S = mustCall(B, frame("stats"));
  const JsonValue *ShedStats = S.get("shed");
  ASSERT_NE(ShedStats, nullptr);
  EXPECT_GE(ShedStats->getNumber("requests"), 1.0);
}

TEST(Chaos, ConnectionCapShedsAtAcceptWithAStructuredFrame) {
  DaemonOptions O;
  O.SocketPath = sockPath("conncap");
  O.MaxClients = 1;
  O.RetryAfterMs = 17;
  TestDaemon TD(O);
  ASSERT_NE(TD.D, nullptr);
  const std::string Socket = TD.D->socketPath();

  DaemonClient A = mustConnect(Socket);
  EXPECT_TRUE(mustCall(A, frame("ping")).getBool("ok"));

  // The second connection is answered-then-closed without a handler
  // thread ever existing for it.
  Result<UnixSocket> B = UnixSocket::connectTo(Socket);
  ASSERT_TRUE(B.ok()) << B.error();
  std::string Line;
  Result<bool> Got = B->readLine(Line, DaemonMaxFrameBytes);
  ASSERT_TRUE(Got.ok()) << Got.error();
  ASSERT_TRUE(*Got);
  Result<JsonValue> Doc = parseJson(Line);
  ASSERT_TRUE(Doc.ok());
  EXPECT_FALSE(Doc->getBool("ok"));
  EXPECT_TRUE(Doc->getBool("overloaded"));
  EXPECT_EQ(Doc->getNumber("retry_after_ms"), 17.0);
  std::string Rest;
  Result<bool> Eof = B->readLine(Rest, DaemonMaxFrameBytes);
  ASSERT_TRUE(Eof.ok()) << Eof.error();
  EXPECT_FALSE(*Eof) << "the shed connection must be closed";

  // The admitted client is unaffected, and its seat frees on disconnect.
  EXPECT_TRUE(mustCall(A, frame("stats")).getBool("ok"));
}

//===----------------------------------------------------------------------===//
// Slow clients and hostile frames
//===----------------------------------------------------------------------===//

TEST(Chaos, SlowLorisClientHitsTheProgressTimeoutNotAThread) {
  DaemonOptions O;
  O.SocketPath = sockPath("loris");
  O.IoTimeoutMs = 150;
  TestDaemon TD(O);
  ASSERT_NE(TD.D, nullptr);

  auto T0 = std::chrono::steady_clock::now();
  Result<UnixSocket> S = UnixSocket::connectTo(TD.D->socketPath());
  ASSERT_TRUE(S.ok()) << S.error();
  // One byte per tick, never a newline: steady progress that would pin a
  // handler thread forever under an idle-based timeout. The frame
  // deadline (armed at the first byte) kills it instead.
  bool Disconnected = false;
  for (int I = 0; I < 200 && !Disconnected; ++I) {
    if (!S->sendAll("x").ok()) {
      Disconnected = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  if (!Disconnected) {
    std::string Out;
    Result<bool> R = S->readLine(Out, DaemonMaxFrameBytes);
    Disconnected = !R.ok() || !*R;
  }
  auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - T0)
                     .count();
  EXPECT_TRUE(Disconnected);
  EXPECT_LT(Elapsed, 5000) << "the trickler must die within a few windows";

  // The handler thread it occupied is free again.
  DaemonClient C = mustConnect(TD.D->socketPath());
  EXPECT_TRUE(mustCall(C, frame("ping")).getBool("ok"));
}

TEST(Chaos, OversizedFrameSplitAcrossManyWritesIsStillRejected) {
  DaemonOptions O;
  O.SocketPath = sockPath("bigsplit");
  TestDaemon TD(O);
  ASSERT_NE(TD.D, nullptr);

  Result<UnixSocket> S = UnixSocket::connectTo(TD.D->socketPath());
  ASSERT_TRUE(S.ok()) << S.error();
  // An over-limit frame dribbled in 64 KiB slices: the cap must trigger
  // on accumulated size, not on any single read.
  const std::string Chunk(64 * 1024, 'x');
  size_t Sent = 0;
  bool PeerGaveUp = false;
  while (Sent < DaemonMaxFrameBytes + 256 * 1024) {
    if (!S->sendAll(Chunk).ok()) {
      PeerGaveUp = true; // daemon already rejected and closed — fine
      break;
    }
    Sent += Chunk.size();
  }
  if (!PeerGaveUp)
    (void)S->sendAll("\n");
  std::string Resp;
  Result<bool> Got = S->readLine(Resp, DaemonMaxFrameBytes);
  if (Got.ok() && *Got) {
    EXPECT_NE(Resp.find("frame too large"), std::string::npos) << Resp;
  }

  DaemonClient C = mustConnect(TD.D->socketPath());
  EXPECT_TRUE(mustCall(C, frame("ping")).getBool("ok"));
}

//===----------------------------------------------------------------------===//
// Seeded socket chaos
//===----------------------------------------------------------------------===//

TEST(Chaos, ShortReadsWritesAndDelaysAreAbsorbedByteIdentically) {
  // Every server-side read is forced through 1-8-byte chunks and every
  // write is delayed: the retry loops must reassemble the exact stream.
  FaultPlan Chunky;
  Chunky.addRule({"sock.read", "", FaultKind::Truncate});
  Chunky.addRule({"sock.write", "", FaultKind::Delay});
  DaemonOptions O;
  O.SocketPath = sockPath("chunky");
  O.SockFaults = &Chunky;
  TestDaemon TD(O);
  ASSERT_NE(TD.D, nullptr);

  const kernels::KernelDef &K = kernels::ssh2();
  ProgramPtr P = kernels::load(K);
  VerificationReport Want = freshReport(*P);
  DaemonClient C = mustConnect(TD.D->socketPath());
  JsonValue Resp = mustCall(C, frame("verify", "", K.Source));
  ASSERT_TRUE(Resp.getBool("ok")) << Resp.getString("error");
  expectResultsMatch(Resp, Want, "chunked+delayed transport");
}

TEST(Chaos, RandomSocketFaultsNeverCorruptVerdictsAndTheDaemonSurvives) {
  // A seeded background of connection resets, short transfers, and
  // delays on every server socket. Clients may lose their connection;
  // no client may ever receive a wrong verdict.
  FaultPlan Stormy(0xC0FFEE, 60); // 6% of socket ops misbehave
  DaemonOptions O;
  O.SocketPath = sockPath("storm");
  O.SockFaults = &Stormy;
  TestDaemon TD(O);
  ASSERT_NE(TD.D, nullptr);

  const kernels::KernelDef &K = kernels::ssh2();
  ProgramPtr P = kernels::load(K);
  VerificationReport Want = freshReport(*P);
  unsigned OkCount = 0, LostCount = 0;
  for (int I = 0; I < 12; ++I) {
    Result<DaemonClient> C = DaemonClient::connect(TD.D->socketPath());
    if (!C.ok()) {
      ++LostCount;
      continue;
    }
    Result<JsonValue> R = C->call(frame("verify", "", K.Source));
    if (!R.ok()) {
      ++LostCount; // injected reset mid-exchange: an honest failure
      continue;
    }
    if (R->getBool("ok")) {
      expectResultsMatch(*R, Want, "client " + std::to_string(I) +
                                       " under socket storm");
      ++OkCount;
    }
  }
  EXPECT_GT(OkCount, 0u) << "the storm must not take out every client";

  // The daemon itself survived the storm (retry past injected faults).
  bool Alive = false;
  for (int I = 0; I < 20 && !Alive; ++I) {
    Result<DaemonClient> C = DaemonClient::connect(TD.D->socketPath());
    if (C.ok()) {
      Result<JsonValue> R = C->call(frame("ping"));
      Alive = R.ok() && R->getBool("ok");
    }
  }
  EXPECT_TRUE(Alive);
}

//===----------------------------------------------------------------------===//
// Supervision
//===----------------------------------------------------------------------===//

TEST(Chaos, SupervisorRestartsACrashedChildThenStopsCleanly) {
  std::string Dir = tempDir("chaos_sup");
  std::string Counter = Dir + "/runs";
  std::string LogPath = Dir + "/log";
  FILE *Log = std::fopen(LogPath.c_str(), "w");
  ASSERT_NE(Log, nullptr);

  SupervisorOptions SO;
  SO.BackoffMs = 5;
  SO.BackoffCapMs = 20;
  SO.Log = Log;
  int Exit = runSupervised(SO, [&Counter] {
    // Crash on the first run, exit cleanly on the second. The runs
    // communicate through the filesystem — the child is a fork.
    size_t Runs = slurp(Counter).size();
    std::ofstream(Counter, std::ios::app) << "x";
    return Runs == 0 ? 9 : 0;
  });
  std::fclose(Log);

  EXPECT_EQ(Exit, 0);
  EXPECT_EQ(slurp(Counter).size(), 2u);
  std::string Events = slurp(LogPath);
  EXPECT_NE(Events.find("\"event\":\"serving\""), std::string::npos);
  EXPECT_NE(Events.find("\"event\":\"exited\""), std::string::npos);
  EXPECT_NE(Events.find("\"code\":9"), std::string::npos);
  EXPECT_NE(Events.find("\"event\":\"restarting\""), std::string::npos);
  EXPECT_NE(Events.find("\"event\":\"stopped\""), std::string::npos);
}

TEST(Chaos, SupervisorGivesUpOnACrashLoopWithAStructuredEvent) {
  std::string Dir = tempDir("chaos_suploop");
  std::string LogPath = Dir + "/log";
  FILE *Log = std::fopen(LogPath.c_str(), "w");
  ASSERT_NE(Log, nullptr);

  SupervisorOptions SO;
  SO.MaxRestarts = 2;
  SO.RestartWindowMs = 60000;
  SO.BackoffMs = 1;
  SO.BackoffCapMs = 2;
  SO.Log = Log;
  int Exit = runSupervised(SO, [] { return 7; });
  std::fclose(Log);

  EXPECT_EQ(Exit, 1);
  std::string Events = slurp(LogPath);
  EXPECT_NE(Events.find("\"event\":\"giving-up\""), std::string::npos);
  // MaxRestarts restarts = MaxRestarts + 1 serving attempts, no more.
  size_t Serving = 0;
  for (size_t P = Events.find("\"event\":\"serving\"");
       P != std::string::npos;
       P = Events.find("\"event\":\"serving\"", P + 1))
    ++Serving;
  EXPECT_EQ(Serving, 3u);
}

//===----------------------------------------------------------------------===//
// Proof cache hygiene: manifest atomicity, quarantine bound
//===----------------------------------------------------------------------===//

TEST(Chaos, TruncatedGcManifestIsEmptyWithAWarningNotACrash) {
  std::string Dir = tempDir("chaos_manifest");
  ProgramPtr P = kernels::load(kernels::ssh2());
  std::string Live = ProofCache::declId(ProgramFingerprints::compute(*P).DeclFp);
  {
    Result<std::unique_ptr<ProofCache>> Cache = ProofCache::open(Dir);
    ASSERT_TRUE(Cache.ok()) << Cache.error();
    SchedulerOptions S;
    S.Cache = Cache->get();
    verifyPrograms({P.get()}, S);
    ASSERT_GT(Cache->get()->stats().Stores, 0u);
    (*Cache)->gc({Live}); // writes a valid manifest
  }

  // Tear the manifest the way a crash mid-write would (if the atomic
  // publish path were ever broken): cut it in half.
  std::string Manifest = Dir + "/gc.manifest";
  std::string Bytes = slurp(Manifest);
  ASSERT_GT(Bytes.size(), 2u);
  spit(Manifest, Bytes.substr(0, Bytes.size() / 2));

  Result<std::unique_ptr<ProofCache>> Cache = ProofCache::open(Dir);
  ASSERT_TRUE(Cache.ok()) << Cache.error();
  ProofCache::GcOutcome G = (*Cache)->gc({Live});
  EXPECT_EQ((*Cache)->stats().ManifestCorrupt, 1u);
  EXPECT_EQ(G.Dropped, 0u) << "live entries must survive a lost manifest";
  EXPECT_GT(G.Kept, 0u);

  // That gc stored a fresh, valid manifest: the damage does not recur.
  (*Cache)->gc({Live});
  EXPECT_EQ((*Cache)->stats().ManifestCorrupt, 1u);
}

TEST(Chaos, QuarantineIsBoundedWithOldestFirstEviction) {
  std::string Dir = tempDir("chaos_quar");
  Result<std::unique_ptr<ProofCache>> Cache = ProofCache::open(Dir);
  ASSERT_TRUE(Cache.ok()) << Cache.error();
  (*Cache)->setQuarantineMax(3);

  fs::path QDir = fs::path(Dir) / "quarantine";
  fs::create_directories(QDir);
  auto Now = fs::file_time_type::clock::now();
  for (int I = 0; I < 6; ++I) {
    fs::path F = QDir / ("q" + std::to_string(I) + ".json");
    spit(F.string(), "evidence " + std::to_string(I));
    // Distinct ages, q0 the oldest.
    fs::last_write_time(F, Now - std::chrono::minutes(60 - I));
  }

  ProofCache::GcOutcome G = (*Cache)->gc({});
  EXPECT_EQ(G.QuarantineEvicted, 3u);
  EXPECT_EQ(G.QuarantineKept, 3u);
  for (int I = 0; I < 3; ++I)
    EXPECT_FALSE(fs::exists(QDir / ("q" + std::to_string(I) + ".json")))
        << "q" << I << " is among the oldest and must be evicted";
  for (int I = 3; I < 6; ++I)
    EXPECT_TRUE(fs::exists(QDir / ("q" + std::to_string(I) + ".json")))
        << "q" << I << " is among the newest and must survive";
}

//===----------------------------------------------------------------------===//
// Client retry schedule
//===----------------------------------------------------------------------===//

TEST(Chaos, RetryingClientRidesOutADaemonRestartWindow) {
  // No daemon at first: connect failures are retried on the backoff
  // schedule (a supervised daemon mid-restart looks exactly like this).
  std::string Socket = sockPath("ride");
  std::thread Late([&Socket] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    DaemonOptions O;
    O.SocketPath = Socket;
    Result<std::unique_ptr<ReflexDaemon>> D = ReflexDaemon::start(O);
    ASSERT_TRUE(D.ok()) << D.error();
    (*D)->serveInBackground();
    std::this_thread::sleep_for(std::chrono::milliseconds(2500));
    (*D)->stop();
  });
  DaemonRetryOptions RO;
  RO.MaxAttempts = 30;
  RO.BaseBackoffMs = 50;
  RO.BackoffCapMs = 200;
  RO.Seed = 3;
  unsigned Attempts = 0;
  Result<JsonValue> R =
      DaemonClient::callWithRetry(Socket, frame("ping"), RO, &Attempts);
  Late.join();
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_TRUE(R->getBool("ok"));
  EXPECT_GT(Attempts, 1u) << "the first attempts must have found no socket";
}

} // namespace
} // namespace reflex
