//===- tests/cli_test.cc - CLI driver integration ---------------*- C++ -*-===//
//
// End-to-end tests of the `reflex` command-line driver: write a .rfx file,
// invoke the binary, check exit codes and output. The binary path is baked
// in by CMake.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

struct CliResult {
  int ExitCode = -1;
  std::string Output;
};

CliResult runCli(const std::string &ArgsAfterBinary) {
  std::string Cmd =
      std::string(REFLEX_CLI_PATH) + " " + ArgsAfterBinary + " 2>&1";
  FILE *Pipe = popen(Cmd.c_str(), "r");
  EXPECT_NE(Pipe, nullptr);
  CliResult R;
  std::array<char, 4096> Buf;
  size_t N;
  while ((N = fread(Buf.data(), 1, Buf.size(), Pipe)) > 0)
    R.Output.append(Buf.data(), N);
  int Status = pclose(Pipe);
  R.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}

const char GoodKernel[] = R"(
program demo;
component Admin "admin.py";
component Door "door.c";
message Grant(str);
message Scan(str);
message Unlock(str);
var granted: str = "";
var armed: bool = false;
init {
  A <- spawn Admin();
  D <- spawn Door();
}
handler Admin => Grant(b) { granted = b; armed = true; }
handler Door => Scan(b) {
  if (armed && b == granted) { send(D, Unlock(b)); }
}
property UnlockNeedsGrant: forall b.
  [Recv(Admin, Grant(b))] Enables [Send(Door, Unlock(b))];
)";

std::string writeTemp(const std::string &Content, const char *Name) {
  std::string Path = std::string(::testing::TempDir()) + Name;
  std::ofstream Out(Path);
  Out << Content;
  return Path;
}

TEST(Cli, VerifyProvedKernelExitsZero) {
  std::string Path = writeTemp(GoodKernel, "good.rfx");
  CliResult R = runCli("verify " + Path);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("Proved"), std::string::npos);
  EXPECT_NE(R.Output.find("cert checked"), std::string::npos);
  EXPECT_NE(R.Output.find("1/1 properties proved"), std::string::npos);
}

TEST(Cli, VerifyBrokenKernelExitsNonZero) {
  std::string Broken(GoodKernel);
  size_t Pos = Broken.find("if (armed && b == granted) { ");
  ASSERT_NE(Pos, std::string::npos);
  Broken.replace(Pos, std::string("if (armed && b == granted) { ").size(),
                 "if (true) { ");
  std::string Path = writeTemp(Broken, "broken.rfx");
  CliResult R = runCli("verify " + Path + " --bmc-depth 2");
  EXPECT_EQ(R.ExitCode, 1) << R.Output;
  EXPECT_NE(R.Output.find("Refuted"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("counterexample"), std::string::npos);
}

TEST(Cli, BmcFindsViolation) {
  std::string Broken(GoodKernel);
  size_t Pos = Broken.find("if (armed && b == granted) { ");
  Broken.replace(Pos, std::string("if (armed && b == granted) { ").size(),
                 "if (true) { ");
  std::string Path = writeTemp(Broken, "broken2.rfx");
  CliResult R =
      runCli("bmc " + Path + " --property UnlockNeedsGrant --depth 2");
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Output.find("VIOLATION"), std::string::npos) << R.Output;
}

TEST(Cli, RunUnderMonitorIsClean) {
  std::string Path = writeTemp(GoodKernel, "run.rfx");
  CliResult R = runCli("run " + Path + " --steps 50 --quiet --seed 9");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("all declared trace properties held"),
            std::string::npos);
}

TEST(Cli, PrintRoundTrips) {
  std::string Path = writeTemp(GoodKernel, "print.rfx");
  CliResult R = runCli("print " + Path);
  ASSERT_EQ(R.ExitCode, 0);
  // The printed output is itself loadable.
  std::string Path2 = writeTemp(R.Output, "printed.rfx");
  CliResult R2 = runCli("verify " + Path2);
  EXPECT_EQ(R2.ExitCode, 0) << R2.Output;
}

TEST(Cli, JsonReportAndCertsWritten) {
  std::string Path = writeTemp(GoodKernel, "json.rfx");
  std::string Json = std::string(::testing::TempDir()) + "report.json";
  std::string Certs = std::string(::testing::TempDir()) + "certs.json";
  CliResult R =
      runCli("verify " + Path + " --json " + Json + " --certs " + Certs);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  std::ifstream JIn(Json);
  std::stringstream JS;
  JS << JIn.rdbuf();
  EXPECT_NE(JS.str().find("\"status\":\"Proved\""), std::string::npos);
  EXPECT_NE(JS.str().find("\"cert_checked\":true"), std::string::npos);
  std::ifstream CIn(Certs);
  std::stringstream CS;
  CS << CIn.rdbuf();
  EXPECT_NE(CS.str().find("\"property\":\"UnlockNeedsGrant\""),
            std::string::npos);
}

TEST(Cli, ParallelJobsAndProofCache) {
  std::string Path = writeTemp(GoodKernel, "jobs.rfx");
  std::string CacheDir = std::string(::testing::TempDir()) + "proofcache";
  std::filesystem::remove_all(CacheDir); // a stale dir would warm the cache

  // Parallel verification with a cold cache: everything misses.
  CliResult Cold =
      runCli("verify " + Path + " --jobs 4 --cache-dir " + CacheDir);
  EXPECT_EQ(Cold.ExitCode, 0) << Cold.Output;
  EXPECT_NE(Cold.Output.find("1/1 properties proved"), std::string::npos);
  EXPECT_NE(Cold.Output.find("proof cache: 0 hits, 1 miss"),
            std::string::npos)
      << Cold.Output;

  // Second run: the verdict comes from the cache, checker re-validated.
  CliResult Warm =
      runCli("verify " + Path + " --jobs 4 --cache-dir " + CacheDir);
  EXPECT_EQ(Warm.ExitCode, 0) << Warm.Output;
  EXPECT_NE(Warm.Output.find("[cached]"), std::string::npos) << Warm.Output;
  EXPECT_NE(Warm.Output.find("cert checked"), std::string::npos);
  EXPECT_NE(Warm.Output.find("proof cache: 1 hit, 0 misses"),
            std::string::npos)
      << Warm.Output;

  // --jobs must not change verdicts: sequential output agrees.
  CliResult Seq = runCli("verify " + Path + " --jobs 1");
  EXPECT_EQ(Seq.ExitCode, 0) << Seq.Output;
  EXPECT_NE(Seq.Output.find("1/1 properties proved"), std::string::npos);

  // An unusable cache directory is a hard error, not silent degradation.
  CliResult Bad = runCli("verify " + Path + " --cache-dir /proc/nope");
  EXPECT_EQ(Bad.ExitCode, 2) << Bad.Output;
}

TEST(Cli, AuditFootprintsReProvesCachedVerdicts) {
  std::string Path = writeTemp(GoodKernel, "audit.rfx");
  std::string CacheDir = std::string(::testing::TempDir()) + "auditcache";
  std::filesystem::remove_all(CacheDir);

  CliResult Cold = runCli("verify " + Path + " --cache-dir " + CacheDir);
  ASSERT_EQ(Cold.ExitCode, 0) << Cold.Output;

  // The warm run serves the verdict from the cache; the audit re-proves
  // it from scratch and must find byte-identical results.
  CliResult Warm = runCli("verify " + Path + " --cache-dir " + CacheDir +
                          " --audit-footprints");
  EXPECT_EQ(Warm.ExitCode, 0) << Warm.Output;
  EXPECT_NE(Warm.Output.find("[cached]"), std::string::npos) << Warm.Output;
  EXPECT_NE(Warm.Output.find(
                "footprint audit: 1 reused verdict re-proved "
                "(0 served path-granularly), 0 mismatches"),
            std::string::npos)
      << Warm.Output;

  // Without reuse there is nothing to audit; the flag is still accepted.
  CliResult NoCache = runCli("verify " + Path + " --audit-footprints");
  EXPECT_EQ(NoCache.ExitCode, 0) << NoCache.Output;
  EXPECT_NE(NoCache.Output.find("0 reused verdicts re-proved"),
            std::string::npos)
      << NoCache.Output;
}

TEST(Cli, InfoReportsInventory) {
  std::string Path = writeTemp(GoodKernel, "info.rfx");
  CliResult R = runCli("info " + Path);
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("component types: 2"), std::string::npos);
  EXPECT_NE(R.Output.find("behavioral abstraction"), std::string::npos);
}

TEST(Cli, BadUsage) {
  EXPECT_EQ(runCli("").ExitCode, 2);
  EXPECT_EQ(runCli("frobnicate /nonexistent.rfx").ExitCode, 2);
  std::string Path = writeTemp(GoodKernel, "usage.rfx");
  EXPECT_EQ(runCli("bmc " + Path).ExitCode, 2) << "missing --property";
  EXPECT_EQ(runCli("verify /does/not/exist.rfx").ExitCode, 2);
  CliResult BadNum = runCli("verify " + Path + " --jobs abc");
  EXPECT_EQ(BadNum.ExitCode, 2) << "non-numeric --jobs must not abort";
  EXPECT_NE(BadNum.Output.find("needs a number"), std::string::npos);
}

TEST(Cli, BudgetFlagsRejectNonNumericValues) {
  std::string Path = writeTemp(GoodKernel, "budgetflags.rfx");
  for (const char *Flag :
       {"--timeout-ms", "--step-budget", "--retries", "--fault-seed"}) {
    CliResult Bad = runCli("verify " + Path + " " + Flag + " abc");
    EXPECT_EQ(Bad.ExitCode, 2) << Flag << "\n" << Bad.Output;
    EXPECT_NE(Bad.Output.find("needs a number"), std::string::npos)
        << Flag << "\n" << Bad.Output;
  }
}

TEST(Cli, BudgetExhaustionGetsItsOwnExitCode) {
  std::string Path = writeTemp(GoodKernel, "budget.rfx");

  // A one-step budget cannot prove anything — but that is not a
  // refutation, so the exit code is 3, not 1.
  CliResult Exhausted = runCli("verify " + Path + " --step-budget 1");
  EXPECT_EQ(Exhausted.ExitCode, 3) << Exhausted.Output;
  EXPECT_NE(Exhausted.Output.find("ResourceExhausted"), std::string::npos)
      << Exhausted.Output;
  EXPECT_NE(Exhausted.Output.find("step budget"), std::string::npos)
      << Exhausted.Output;

  // Generous budgets (and retries) change nothing about a proving run.
  CliResult Fine = runCli("verify " + Path +
                          " --timeout-ms 60000 --step-budget 100000000"
                          " --retries 2");
  EXPECT_EQ(Fine.ExitCode, 0) << Fine.Output;
  EXPECT_NE(Fine.Output.find("1/1 properties proved"), std::string::npos);
}

TEST(Cli, FaultSeedRunsToCompletion) {
  std::string Path = writeTemp(GoodKernel, "faultseed.rfx");
  std::string CacheDir = std::string(::testing::TempDir()) + "faultcache";
  std::filesystem::remove_all(CacheDir);
  // Whatever the injected faults do, the run must produce a complete
  // report — never a crash, never a silent partial batch.
  CliResult R = runCli("verify " + Path + " --fault-seed 7 --retries 3" +
                       " --cache-dir " + CacheDir + " --jobs 2");
  EXPECT_NE(R.ExitCode, 2) << R.Output;
  EXPECT_NE(R.Output.find("properties proved"), std::string::npos)
      << R.Output;
  // Same seed, same outcome: fault decisions are deterministic.
  std::filesystem::remove_all(CacheDir);
  CliResult R2 = runCli("verify " + Path + " --fault-seed 7 --retries 3" +
                        " --cache-dir " + CacheDir + " --jobs 2");
  EXPECT_EQ(R.ExitCode, R2.ExitCode);
}

TEST(Cli, SyntaxErrorsRenderDiagnostics) {
  std::string Path = writeTemp("component ;;;", "bad.rfx");
  CliResult R = runCli("verify " + Path);
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Output.find("error:"), std::string::npos);
}

} // namespace
