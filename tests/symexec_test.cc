//===- tests/symexec_test.cc - Symbolic execution tests ---------*- C++ -*-===//

#include "test_util.h"
#include "verify/behabs.h"

namespace reflex {
namespace {

const char Base[] = R"(
component C "c" { tag: str };
component D "d";
message M(str, num);
message N(str);
var flag: bool = false;
var count: num = 0;
init {
  X <- spawn C("root");
  Y <- spawn D();
}
)";

struct SymExecTest : ::testing::Test {
  TermContext Ctx;

  BehAbs build(const std::string &Extra) {
    Prog = mustLoad(std::string(Base) + Extra);
    EXPECT_NE(Prog, nullptr);
    return buildBehAbs(Ctx, *Prog);
  }

  ProgramPtr Prog;
};

TEST_F(SymExecTest, InitSummary) {
  BehAbs Abs = build("");
  ASSERT_EQ(Abs.Init.Paths.size(), 1u);
  const SymPath &P = Abs.Init.Paths[0];
  // Two spawns in order.
  ASSERT_EQ(P.Emits.size(), 2u);
  EXPECT_EQ(P.Emits[0].Kind, SymAction::Spawn);
  EXPECT_EQ(Ctx.symbolStr(P.Emits[0].Comp->Str), "C");
  EXPECT_EQ(P.Emits[0].Comp->Ident, CompIdent::InitRigid);
  EXPECT_EQ(Ctx.symbolStr(P.Emits[1].Comp->Str), "D");
  // Component globals recorded.
  ASSERT_TRUE(Abs.Init.CompGlobals.count("X"));
  EXPECT_EQ(Abs.Init.CompGlobals.at("X"), P.Emits[0].Comp);
  // Init updates carry every state variable's initial value.
  EXPECT_EQ(P.Updates.at("flag"), Ctx.boolLit(false));
  EXPECT_EQ(P.Updates.at("count"), Ctx.numLit(0));
}

TEST_F(SymExecTest, EverySummaryExists) {
  BehAbs Abs = build("handler C => N(s) { nop; }");
  // 2 component types x 2 message types.
  EXPECT_EQ(Abs.Handlers.size(), 4u);
  const HandlerSummary *Declared = Abs.findSummary("C", "N");
  ASSERT_NE(Declared, nullptr);
  EXPECT_FALSE(Declared->IsDefault);
  const HandlerSummary *Default = Abs.findSummary("D", "M");
  ASSERT_NE(Default, nullptr);
  EXPECT_TRUE(Default->IsDefault);
  // Default paths emit exactly Select + Recv.
  ASSERT_EQ(Default->Paths.size(), 1u);
  ASSERT_EQ(Default->Paths[0].Emits.size(), 2u);
  EXPECT_EQ(Default->Paths[0].Emits[0].Kind, SymAction::Select);
  EXPECT_EQ(Default->Paths[0].Emits[1].Kind, SymAction::Recv);
}

TEST_F(SymExecTest, BranchesSplitPaths) {
  BehAbs Abs = build(R"(
handler C => M(s, n) {
  if (flag && n == count) {
    send(Y, N(s));
  } else {
    count = n;
  }
}
)");
  const HandlerSummary *S = Abs.findSummary("C", "M");
  ASSERT_NE(S, nullptr);
  // Then-path (one DNF disjunct) + two else-disjuncts (!flag | n != count).
  EXPECT_EQ(S->Paths.size(), 3u);
  // The then-path emits the send and has two condition literals.
  const SymPath *Then = nullptr;
  for (const SymPath &P : S->Paths)
    if (P.Emits.size() == 3)
      Then = &P;
  ASSERT_NE(Then, nullptr);
  EXPECT_EQ(Then->Cond.size(), 2u);
  EXPECT_EQ(Then->Emits[2].Kind, SymAction::Send);
  EXPECT_TRUE(Then->Updates.empty());
  // Else-paths update count to the parameter.
  for (const SymPath &P : S->Paths)
    if (&P != Then) {
      ASSERT_TRUE(P.Updates.count("count"));
      EXPECT_EQ(P.Updates.at("count")->Tag, SymTag::Fresh);
    }
}

TEST_F(SymExecTest, SenderIsFlexPreWithFields) {
  BehAbs Abs = build("handler C => N(s) { send(sender, N(sender.tag)); }");
  const HandlerSummary *S = Abs.findSummary("C", "N");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->SenderComp->Ident, CompIdent::FlexPre);
  ASSERT_EQ(S->SenderComp->Ops.size(), 1u);
  // The send's payload is exactly the sender's config-field symbol.
  const SymPath &P = S->Paths[0];
  EXPECT_EQ(P.Emits[2].Args[0], S->SenderComp->Ops[0]);
  // The sender participates in the component-origin axiom.
  ASSERT_EQ(P.FoundComps.size(), 1u);
  EXPECT_EQ(P.FoundComps[0], S->SenderComp);
}

TEST_F(SymExecTest, LookupBranches) {
  BehAbs Abs = build(R"(
handler D => N(s) {
  lookup C(tag == s) as c {
    send(c, N(s));
  } else {
    fresh <- spawn C(s);
  }
}
)");
  const HandlerSummary *S = Abs.findSummary("D", "N");
  ASSERT_EQ(S->Paths.size(), 2u);
  const SymPath &Found = S->Paths[0];
  const SymPath &Missing = S->Paths[1];
  // Found: constraint literal ties the bound comp's field to the param.
  ASSERT_EQ(Found.Cond.size(), 1u);
  EXPECT_EQ(Found.Cond[0].Atom->Kind, TermKind::Eq);
  ASSERT_EQ(Found.LookupComps.size(), 1u);
  EXPECT_EQ(Found.LookupComps[0]->Ident, CompIdent::FlexPre);
  // FoundComps: sender + the lookup result.
  EXPECT_EQ(Found.FoundComps.size(), 2u);
  // Missing: a NoComp fact and a NewRigid spawn.
  ASSERT_EQ(Missing.NoComp.size(), 1u);
  EXPECT_EQ(Missing.NoComp[0].TypeName, "C");
  ASSERT_EQ(Missing.Emits.size(), 3u);
  EXPECT_EQ(Missing.Emits[2].Kind, SymAction::Spawn);
  EXPECT_EQ(Missing.Emits[2].Comp->Ident, CompIdent::NewRigid);
}

TEST_F(SymExecTest, LookupAfterSpawnIsFlexAny) {
  BehAbs Abs = build(R"(
handler D => N(s) {
  fresh <- spawn C(s);
  lookup C(tag == s) as c {
    send(c, N(s));
  }
}
)");
  const HandlerSummary *S = Abs.findSummary("D", "N");
  const SymPath &Found = S->Paths[0];
  ASSERT_EQ(Found.LookupComps.size(), 1u);
  EXPECT_EQ(Found.LookupComps[0]->Ident, CompIdent::FlexAny)
      << "the lookup may find the component spawned just above";
  // FlexAny lookups do not feed the origin axiom (only the sender here).
  EXPECT_EQ(Found.FoundComps.size(), 1u);
}

TEST_F(SymExecTest, CallsProduceFreshSymbolsAndEmissions) {
  BehAbs Abs = build(R"(
handler C => N(s) {
  r <- call "fetch"(s);
  send(Y, N(r));
}
)");
  const HandlerSummary *S = Abs.findSummary("C", "N");
  const SymPath &P = S->Paths[0];
  ASSERT_EQ(P.Emits.size(), 4u);
  EXPECT_EQ(P.Emits[2].Kind, SymAction::Call);
  EXPECT_EQ(P.Emits[2].CallFn, "fetch");
  ASSERT_NE(P.Emits[2].CallResult, nullptr);
  EXPECT_EQ(P.Emits[3].Args[0], P.Emits[2].CallResult)
      << "the send forwards the nondeterministic result";
}

TEST_F(SymExecTest, StateUpdateChains) {
  BehAbs Abs = build(R"(
handler C => M(s, n) {
  count = count + 1;
  count = count + 1;
}
)");
  const HandlerSummary *S = Abs.findSummary("C", "M");
  const SymPath &P = S->Paths[0];
  // count' = (count + 1) + 1 (builder folding is local, not associative).
  TermRef CountSym = Ctx.stateSym("count", BaseType::Num);
  EXPECT_EQ(P.Updates.at("count"),
            Ctx.add(Ctx.add(CountSym, Ctx.numLit(1)), Ctx.numLit(1)));
}

} // namespace
} // namespace reflex
