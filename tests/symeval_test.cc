//===- tests/symeval_test.cc - Differential expression semantics -*- C++ -*-===//
//
// The symbolic evaluator (sym/symeval) and the concrete evaluator
// (interp/evaluator) implement the same expression language twice. This
// suite checks them against each other: randomly generated well-typed
// expressions, evaluated (a) concretely and (b) symbolically over ground
// terms, must agree — a classic differential test that pins the two
// semantics together.
//
//===----------------------------------------------------------------------===//

#include "interp/evaluator.h"
#include "support/rng.h"
#include "sym/symeval.h"
#include "test_util.h"

namespace reflex {
namespace {

/// Random well-typed expression generator over two num vars, one bool
/// var, one str var, and literals.
class ExprGen {
public:
  explicit ExprGen(uint64_t Seed) : Rand(Seed) {}

  ExprPtr gen(BaseType Ty, unsigned Depth) {
    if (Depth == 0 || Rand.chance(1, 4))
      return leaf(Ty);
    switch (Ty) {
    case BaseType::Num: {
      BinOp Op = Rand.chance(1, 2) ? BinOp::Add : BinOp::Sub;
      return bin(Op, gen(BaseType::Num, Depth - 1),
                 gen(BaseType::Num, Depth - 1));
    }
    case BaseType::Bool: {
      switch (Rand.below(5)) {
      case 0:
        return bin(BinOp::And, gen(BaseType::Bool, Depth - 1),
                   gen(BaseType::Bool, Depth - 1));
      case 1:
        return bin(BinOp::Or, gen(BaseType::Bool, Depth - 1),
                   gen(BaseType::Bool, Depth - 1));
      case 2:
        return std::make_unique<UnaryExpr>(gen(BaseType::Bool, Depth - 1),
                                           SourceLoc());
      case 3: {
        BinOp Op = static_cast<BinOp>(
            static_cast<int>(BinOp::Lt) + Rand.below(4));
        return bin(Op, gen(BaseType::Num, Depth - 1),
                   gen(BaseType::Num, Depth - 1));
      }
      default: {
        BaseType Side = Rand.chance(1, 2) ? BaseType::Num : BaseType::Str;
        BinOp Op = Rand.chance(1, 2) ? BinOp::Eq : BinOp::Ne;
        return bin(Op, gen(Side, Depth - 1), gen(Side, Depth - 1));
      }
      }
    }
    case BaseType::Str:
      return leaf(Ty);
    default:
      return leaf(BaseType::Num);
    }
  }

private:
  ExprPtr bin(BinOp Op, ExprPtr L, ExprPtr R) {
    return std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R),
                                        SourceLoc());
  }

  ExprPtr leaf(BaseType Ty) {
    switch (Ty) {
    case BaseType::Num:
      if (Rand.chance(1, 2))
        return std::make_unique<VarRefExpr>(Rand.chance(1, 2) ? "n1" : "n2",
                                            SourceLoc());
      // Non-negative only: the surface syntax has no negative literals
      // (and this expression is reparsed through the printer).
      return std::make_unique<LitExpr>(
          Value::num(static_cast<int64_t>(Rand.below(5))), SourceLoc());
    case BaseType::Bool:
      if (Rand.chance(1, 2))
        return std::make_unique<VarRefExpr>("b1", SourceLoc());
      return std::make_unique<LitExpr>(Value::boolean(Rand.chance(1, 2)),
                                       SourceLoc());
    case BaseType::Str:
      if (Rand.chance(1, 2))
        return std::make_unique<VarRefExpr>("s1", SourceLoc());
      return std::make_unique<LitExpr>(
          Value::str(Rand.chance(1, 2) ? "x" : "y"), SourceLoc());
    default:
      return leaf(BaseType::Num);
    }
  }

  Rng Rand;
};

/// Embeds the expression into a kernel so the validator types it, then
/// evaluates the handler both ways.
class DiffEval : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DiffEval, SymbolicAndConcreteAgreeOnGroundInputs) {
  ExprGen Gen(GetParam());
  Rng ValRand(GetParam() * 7919 + 1);

  for (int Round = 0; Round < 40; ++Round) {
    ExprPtr E = Gen.gen(BaseType::Bool, 4);
    std::string ExprText = printExpr(*E);

    // Kernel: assign the expression to a bool variable.
    std::string Src = "component A \"a\";\nmessage M();\n"
                      "var n1: num = 0;\nvar n2: num = 0;\n"
                      "var b1: bool = false;\nvar s1: str = \"\";\n"
                      "var out: bool = false;\n"
                      "init { X <- spawn A(); }\n"
                      "handler A => M() { out = " +
                      ExprText + "; }\n";
    ProgramPtr P = mustLoad(Src);
    ASSERT_NE(P, nullptr) << ExprText;

    // Ground inputs.
    Value N1 = Value::num(static_cast<int64_t>(ValRand.below(7)) - 3);
    Value N2 = Value::num(static_cast<int64_t>(ValRand.below(7)) - 3);
    Value B1 = Value::boolean(ValRand.chance(1, 2));
    Value S1 = Value::str(ValRand.chance(1, 2) ? "x" : "y");

    // (a) Concrete.
    Evaluator Eval(*P);
    KernelState St;
    Eval.runInit(St, {});
    St.Vars["n1"] = N1;
    St.Vars["n2"] = N2;
    St.Vars["b1"] = B1;
    St.Vars["s1"] = S1;
    Message M;
    M.Name = "M";
    Eval.runExchange(St, 0, M, {});
    bool Concrete = St.Vars.at("out").asBool();

    // (b) Symbolic over ground terms.
    TermContext Ctx;
    SymEnv Env;
    Env.Vars["n1"] = Ctx.lit(N1);
    Env.Vars["n2"] = Ctx.lit(N2);
    Env.Vars["b1"] = Ctx.lit(B1);
    Env.Vars["s1"] = Ctx.lit(S1);
    const auto &Body = castCmd<BlockCmd>(*P->Handlers[0].Body);
    const auto &Assign = castCmd<AssignCmd>(*Body.commands()[0]);
    TermRef T = symEvalExpr(Ctx, Assign.rhs(), Env);
    auto Folded = Ctx.literalValue(T);
    ASSERT_TRUE(Folded.has_value())
        << "ground symbolic evaluation must fold: " << ExprText;
    EXPECT_EQ(Folded->asBool(), Concrete)
        << ExprText << " with n1=" << N1.str() << " n2=" << N2.str()
        << " b1=" << B1.str() << " s1=" << S1.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffEval,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u));

TEST(SymEval, ConfigReads) {
  ProgramPtr P = mustLoad(R"(
component T "t" { a: str, b: num };
message M();
var out: num = 0;
init { X <- spawn T("hi", 7); }
handler T => M() { out = sender.b; }
)");
  TermContext Ctx;
  SymEnv Env;
  Env.Sender = Ctx.comp("T", CompIdent::FlexPre, 0,
                        {Ctx.strLit("hi"), Ctx.numLit(7)});
  const auto &Body = castCmd<BlockCmd>(*P->Handlers[0].Body);
  const auto &Assign = castCmd<AssignCmd>(*Body.commands()[0]);
  EXPECT_EQ(symEvalExpr(Ctx, Assign.rhs(), Env), Ctx.numLit(7));
}

} // namespace
} // namespace reflex
