//===- tests/service_test.cc - Verification service -------------*- C++ -*-===//
//
// The parallel verification service and its persistent proof cache:
// thread pool lifecycle, deterministic scheduler merges, SHA-256 /
// JSON-parser support pieces, cold/warm cache flows, and the trust
// story — a tampered cache entry must be rejected by the certificate
// checker and the property fully re-verified.
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"
#include "service/scheduler.h"
#include "service/threadpool.h"
#include "support/json.h"
#include "support/sha256.h"
#include "test_util.h"
#include "verify/incremental.h"

#include <atomic>
#include <filesystem>
#include <thread>
#include <fstream>
#include <sstream>

#include <unistd.h>

namespace reflex {
namespace {

namespace fs = std::filesystem;

/// A throwaway cache directory, removed on destruction.
class TempDir {
public:
  explicit TempDir(const std::string &Tag)
      : Path(fs::temp_directory_path() /
             ("reflex-" + Tag + "-" + std::to_string(::getpid()))) {
    fs::remove_all(Path);
  }
  ~TempDir() {
    std::error_code EC;
    fs::remove_all(Path, EC);
  }
  std::string str() const { return Path.string(); }

private:
  fs::path Path;
};

/// A kernel with one provable and one unprovable property — exercises
/// both cacheable verdict kinds without a 41-property run.
const char *MixedSrc = R"(
component A "a";
message Ping(num);
message Mark(num);
init { X <- spawn A(); }
handler A => Ping(n) { send(X, Mark(n)); }
property Bad: forall n.
  [Recv(A, Mark(n))] Enables [Send(A, Mark(n))];
property Fine: forall n.
  [Recv(A, Ping(n))] Ensures [Send(A, Mark(n))];
)";

std::unique_ptr<ProofCache> mustOpen(const std::string &Dir) {
  Result<std::unique_ptr<ProofCache>> C = ProofCache::open(Dir);
  EXPECT_TRUE(C.ok()) << (C.ok() ? "" : C.error());
  return C.ok() ? C.take() : nullptr;
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, RunsEveryPostedTask) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.workerCount(), 4u);
  std::atomic<int> Ran{0};
  for (int I = 0; I < 200; ++I)
    EXPECT_TRUE(Pool.post([&] { Ran.fetch_add(1); }));
  Pool.wait();
  EXPECT_EQ(Ran.load(), 200);

  // The pool is reusable after a drain.
  for (int I = 0; I < 50; ++I)
    EXPECT_TRUE(Pool.post([&] { Ran.fetch_add(1); }));
  Pool.wait();
  EXPECT_EQ(Ran.load(), 250);
}

TEST(ThreadPool, ShutdownIsIdempotentAndRejectsLatePosts) {
  ThreadPool Pool(2);
  std::atomic<int> Ran{0};
  for (int I = 0; I < 20; ++I)
    Pool.post([&] { Ran.fetch_add(1); });
  Pool.shutdown();
  EXPECT_EQ(Ran.load(), 20) << "shutdown drains already-accepted work";
  EXPECT_FALSE(Pool.post([&] { Ran.fetch_add(1); }));
  Pool.shutdown(); // second shutdown is a no-op
  EXPECT_EQ(Ran.load(), 20);
}

TEST(ThreadPool, ZeroWorkersMeansHardwareConcurrency) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.workerCount(), ThreadPool::defaultWorkerCount());
  EXPECT_GE(ThreadPool::defaultWorkerCount(), 1u);
}

//===----------------------------------------------------------------------===//
// Support pieces the cache key rests on
//===----------------------------------------------------------------------===//

TEST(Sha256, MatchesKnownVectors) {
  // FIPS 180-4 test vectors.
  EXPECT_EQ(
      sha256Hex(""),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      sha256Hex("abc"),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  // Multi-block input (448 bits of message + padding spills a block).
  EXPECT_EQ(
      sha256Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  // Incremental updates equal one-shot hashing.
  Sha256 H;
  H.update("ab");
  H.update("c");
  EXPECT_EQ(H.hexDigest(), sha256Hex("abc"));
}

TEST(Sha256, FieldFramingPreventsConcatenationCollisions) {
  Sha256 A;
  A.updateField("ab");
  A.updateField("c");
  Sha256 B;
  B.updateField("a");
  B.updateField("bc");
  EXPECT_NE(A.hexDigest(), B.hexDigest());
}

TEST(Json, ParserReadsWriterOutput) {
  JsonWriter W;
  W.beginObject();
  W.field("name", "quote\" slash\\ tab\t");
  W.field("count", int64_t(41));
  W.field("flag", true);
  W.key("xs");
  W.beginArray();
  W.value(int64_t(1));
  W.nullValue();
  W.value(-2.5);
  W.endArray();
  W.endObject();

  Result<JsonValue> Doc = parseJson(W.take());
  ASSERT_TRUE(Doc.ok()) << Doc.error();
  ASSERT_TRUE(Doc->isObject());
  EXPECT_EQ(Doc->getString("name"), "quote\" slash\\ tab\t");
  EXPECT_EQ(Doc->getNumber("count", 0), 41);
  EXPECT_TRUE(Doc->getBool("flag", false));
  const JsonValue *Xs = Doc->get("xs");
  ASSERT_NE(Xs, nullptr);
  ASSERT_TRUE(Xs->isArray());
  ASSERT_EQ(Xs->items().size(), 3u);
  EXPECT_EQ(Xs->items()[0].numberValue(), 1);
  EXPECT_TRUE(Xs->items()[1].isNull());
  EXPECT_EQ(Xs->items()[2].numberValue(), -2.5);
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_FALSE(parseJson("").ok());
  EXPECT_FALSE(parseJson("{").ok());
  EXPECT_FALSE(parseJson("{\"a\":1,}").ok());
  EXPECT_FALSE(parseJson("{\"a\":1} trailing").ok());
  EXPECT_FALSE(parseJson("\"bad escape \\q\"").ok());
  EXPECT_FALSE(parseJson("{\"a\" 1}").ok());
  // Unicode escapes decode to UTF-8.
  Result<JsonValue> U = parseJson("\"\\u00e9\"");
  ASSERT_TRUE(U.ok()) << U.error();
  EXPECT_EQ(U->stringValue(), "\xc3\xa9");
}

//===----------------------------------------------------------------------===//
// Scheduler determinism
//===----------------------------------------------------------------------===//

TEST(Scheduler, ParallelVerdictsMatchSequential) {
  ProgramPtr Ssh = kernels::load(kernels::ssh());
  ProgramPtr Ssh2 = kernels::load(kernels::ssh2());
  ProgramPtr Web = kernels::load(kernels::webserver());
  std::vector<const Program *> Programs{Ssh.get(), Ssh2.get(), Web.get()};

  SchedulerOptions Seq;
  Seq.Jobs = 1;
  BatchOutcome A = verifyPrograms(Programs, Seq);

  SchedulerOptions Par;
  Par.Jobs = 4;
  BatchOutcome B = verifyPrograms(Programs, Par);

  ASSERT_EQ(A.Reports.size(), Programs.size());
  ASSERT_EQ(B.Reports.size(), Programs.size());
  for (size_t P = 0; P < Programs.size(); ++P) {
    const VerificationReport &RA = A.Reports[P];
    const VerificationReport &RB = B.Reports[P];
    EXPECT_EQ(RB.ProgramName, Programs[P]->Name);
    ASSERT_EQ(RA.Results.size(), RB.Results.size());
    ASSERT_EQ(RB.Results.size(), Programs[P]->Properties.size());
    for (size_t I = 0; I < RA.Results.size(); ++I) {
      // Declaration order, byte-identical status + reason.
      EXPECT_EQ(RB.Results[I].Name, Programs[P]->Properties[I].Name);
      EXPECT_EQ(RA.Results[I].Status, RB.Results[I].Status)
          << RA.Results[I].Name;
      EXPECT_EQ(RA.Results[I].Reason, RB.Results[I].Reason)
          << RA.Results[I].Name;
    }
  }
  EXPECT_EQ(A.provedCount(), B.provedCount());
  EXPECT_EQ(B.propertyCount(),
            unsigned(Ssh->Properties.size() + Ssh2->Properties.size() +
                     Web->Properties.size()));
  EXPECT_TRUE(B.allProved());
}

TEST(Scheduler, SingleProgramParallelReportLooksLikeVerifyAll) {
  ProgramPtr P = kernels::load(kernels::car());
  SchedulerOptions Opts;
  Opts.Jobs = 4;
  VerificationReport R = verifyParallel(*P, Opts);
  VerificationReport Fresh = verifyProgram(*P);

  ASSERT_EQ(R.Results.size(), Fresh.Results.size());
  for (size_t I = 0; I < R.Results.size(); ++I) {
    EXPECT_EQ(R.Results[I].Name, Fresh.Results[I].Name);
    EXPECT_EQ(R.Results[I].Status, Fresh.Results[I].Status);
    EXPECT_EQ(R.Results[I].Reason, Fresh.Results[I].Reason);
    if (R.Results[I].Status == VerifyStatus::Proved) {
      EXPECT_TRUE(R.Results[I].CertChecked);
      EXPECT_FALSE(R.Results[I].CertJson.empty())
          << "merged results must carry session-independent certificates";
    }
  }
  EXPECT_GT(R.SolverQueries, 0u);
}

//===----------------------------------------------------------------------===//
// Proof cache
//===----------------------------------------------------------------------===//

TEST(ProofCache, KeyIsStableAndContentAddressed) {
  ProgramPtr P = mustLoad(MixedSrc);
  ASSERT_NE(P, nullptr);
  ProgramFingerprints FP = ProgramFingerprints::compute(*P);
  VerifyOptions Opts;

  std::string K1 = ProofCache::keyFor(FP.DeclFp, P->Properties[0], Opts);
  EXPECT_EQ(K1.size(), 64u);
  EXPECT_EQ(K1.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(K1, ProofCache::keyFor(FP.DeclFp, P->Properties[0], Opts));

  // Any input change changes the key.
  EXPECT_NE(K1, ProofCache::keyFor(FP.DeclFp, P->Properties[1], Opts));
  EXPECT_NE(K1, ProofCache::keyFor(FP.DeclFp + "x", P->Properties[0], Opts));
  VerifyOptions NoSimp = Opts;
  NoSimp.Simplify = false;
  EXPECT_NE(K1, ProofCache::keyFor(FP.DeclFp, P->Properties[0], NoSimp));
}

TEST(ProofCache, ColdMissThenRevalidatedWarmHit) {
  TempDir Dir("cache-warm");
  ProgramPtr P = mustLoad(MixedSrc);
  ASSERT_NE(P, nullptr);
  ProgramFingerprints FP = ProgramFingerprints::compute(*P);

  // Cold: both verdict kinds (Proved "Fine", Unknown "Bad") miss + store.
  {
    std::unique_ptr<ProofCache> Cache = mustOpen(Dir.str());
    ASSERT_NE(Cache, nullptr);
    VerifySession S(*P);
    for (const Property &Prop : P->Properties) {
      PropertyResult R = verifyPropertyCached(S, Prop, Cache.get(), &FP);
      EXPECT_FALSE(R.CacheHit);
    }
    EXPECT_EQ(Cache->stats().Misses, 2u);
    EXPECT_EQ(Cache->stats().Stores, 2u);
    EXPECT_EQ(Cache->stats().Hits, 0u);
  }

  // Warm, in a fresh process-equivalent (new cache handle, new session):
  // the proved verdict is served only after checker re-validation; the
  // unknown verdict is reused directly.
  std::unique_ptr<ProofCache> Cache = mustOpen(Dir.str());
  ASSERT_NE(Cache, nullptr);
  VerifySession S(*P);
  PropertyResult Bad =
      verifyPropertyCached(S, P->Properties[0], Cache.get(), &FP);
  PropertyResult Fine =
      verifyPropertyCached(S, P->Properties[1], Cache.get(), &FP);

  EXPECT_EQ(Bad.Status, VerifyStatus::Unknown);
  EXPECT_TRUE(Bad.CacheHit);
  EXPECT_FALSE(Bad.Reason.empty());

  EXPECT_EQ(Fine.Status, VerifyStatus::Proved);
  EXPECT_TRUE(Fine.CacheHit);
  EXPECT_TRUE(Fine.CertChecked) << "proved hits must be re-validated";
  EXPECT_FALSE(Fine.CertJson.empty());
  EXPECT_EQ(Cache->stats().Hits, 2u);
  EXPECT_EQ(Cache->stats().Rejected, 0u);
}

TEST(ProofCache, TamperedCertificateIsRejectedAndReVerified) {
  TempDir Dir("cache-tamper");
  ProgramPtr P = mustLoad(MixedSrc);
  ASSERT_NE(P, nullptr);
  ProgramFingerprints FP = ProgramFingerprints::compute(*P);
  const Property &Fine = P->Properties[1];
  std::string Key = ProofCache::keyFor(FP.DeclFp, Fine, VerifyOptions{});
  std::string EntryPath = Dir.str() + "/" + Key + ".json";

  std::unique_ptr<ProofCache> Cache = mustOpen(Dir.str());
  ASSERT_NE(Cache, nullptr);
  {
    VerifySession S(*P);
    PropertyResult R = verifyPropertyCached(S, Fine, Cache.get(), &FP);
    ASSERT_EQ(R.Status, VerifyStatus::Proved);
  }

  // Tamper: prepend junk to the canonical certificate inside the entry.
  // The file stays valid JSON; only the proof content is wrong.
  std::string Entry;
  {
    std::ifstream In(EntryPath);
    ASSERT_TRUE(In.good()) << "no entry at " << EntryPath;
    std::stringstream SS;
    SS << In.rdbuf();
    Entry = SS.str();
  }
  size_t Pos = Entry.find("\"canonical_cert\":\"");
  ASSERT_NE(Pos, std::string::npos);
  Entry.insert(Pos + std::string("\"canonical_cert\":\"").size(), "XX");
  {
    std::ofstream Out(EntryPath, std::ios::trunc);
    Out << Entry;
  }

  // The checker must refuse the tampered proof; the property is then
  // re-verified from scratch (not served from the cache) and the entry
  // overwritten with an honest one.
  {
    VerifySession S(*P);
    PropertyResult R = verifyPropertyCached(S, Fine, Cache.get(), &FP);
    EXPECT_EQ(R.Status, VerifyStatus::Proved);
    EXPECT_FALSE(R.CacheHit);
    EXPECT_TRUE(R.CertChecked);
  }
  EXPECT_EQ(Cache->stats().Rejected, 1u);

  // The overwritten entry is trustworthy again.
  {
    VerifySession S(*P);
    PropertyResult R = verifyPropertyCached(S, Fine, Cache.get(), &FP);
    EXPECT_TRUE(R.CacheHit);
    EXPECT_TRUE(R.CertChecked);
  }
}

TEST(ProofCache, MalformedEntryIsAMiss) {
  TempDir Dir("cache-garbage");
  ProgramPtr P = mustLoad(MixedSrc);
  ASSERT_NE(P, nullptr);
  ProgramFingerprints FP = ProgramFingerprints::compute(*P);
  const Property &Fine = P->Properties[1];
  std::string Key = ProofCache::keyFor(FP.DeclFp, Fine, VerifyOptions{});

  std::unique_ptr<ProofCache> Cache = mustOpen(Dir.str());
  ASSERT_NE(Cache, nullptr);
  {
    std::ofstream Out(Dir.str() + "/" + Key + ".json");
    Out << "this is not json{{{";
  }
  EXPECT_FALSE(Cache->lookup(Key).has_value());

  VerifySession S(*P);
  PropertyResult R = verifyPropertyCached(S, Fine, Cache.get(), &FP);
  EXPECT_EQ(R.Status, VerifyStatus::Proved);
  EXPECT_FALSE(R.CacheHit);
  EXPECT_EQ(Cache->stats().Misses, 1u);
  EXPECT_EQ(Cache->stats().Stores, 1u) << "the garbage entry is replaced";
  EXPECT_TRUE(Cache->lookup(Key).has_value());
}

//===----------------------------------------------------------------------===//
// Cache hardening: orphan sweep + corruption quarantine
//===----------------------------------------------------------------------===//

std::string readAll(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

void writeAll(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Bytes;
}

size_t fileCount(const fs::path &Dir) {
  size_t N = 0;
  std::error_code EC;
  for (const fs::directory_entry &DE : fs::directory_iterator(Dir, EC))
    if (DE.is_regular_file())
      ++N;
  return N;
}

TEST(ProofCache, OrphanedTmpFilesAreSweptAtOpen) {
  TempDir Dir("cache-sweep");
  fs::create_directories(Dir.str());
  // Two stranded temp files from "crashed writers", one real entry.
  writeAll(Dir.str() + "/aaaa.json.tmp.1234", "half-written junk");
  writeAll(Dir.str() + "/bbbb.json.tmp.99", "{\"version\":1");
  writeAll(Dir.str() + "/keep.json", "{}");

  std::unique_ptr<ProofCache> Cache = mustOpen(Dir.str());
  ASSERT_NE(Cache, nullptr);
  EXPECT_EQ(Cache->stats().SweptTmp, 2u);
  EXPECT_FALSE(fs::exists(Dir.str() + "/aaaa.json.tmp.1234"));
  EXPECT_FALSE(fs::exists(Dir.str() + "/bbbb.json.tmp.99"));
  EXPECT_TRUE(fs::exists(Dir.str() + "/keep.json"))
      << "only *.json.tmp.* files may be swept";
}

/// Populates the cache with MixedSrc's provable property and corrupts the
/// stored entry via \p Mutate; the damaged entry must be quarantined (the
/// evidence preserved on disk, not deleted), the property fully
/// re-verified, and a fresh trustworthy entry published.
void corruptionRoundTrip(const char *Tag,
                         void (*Mutate)(std::string &Entry)) {
  TempDir Dir(std::string("cache-") + Tag);
  ProgramPtr P = mustLoad(MixedSrc);
  ASSERT_NE(P, nullptr);
  ProgramFingerprints FP = ProgramFingerprints::compute(*P);
  const Property &Fine = P->Properties[1];
  std::string Key = ProofCache::keyFor(FP.DeclFp, Fine, VerifyOptions{});
  std::string EntryPath = Dir.str() + "/" + Key + ".json";

  std::unique_ptr<ProofCache> Cache = mustOpen(Dir.str());
  ASSERT_NE(Cache, nullptr);
  {
    VerifySession S(*P);
    PropertyResult R = verifyPropertyCached(S, Fine, Cache.get(), &FP);
    ASSERT_EQ(R.Status, VerifyStatus::Proved);
  }

  std::string Entry = readAll(EntryPath);
  ASSERT_FALSE(Entry.empty());
  Mutate(Entry);
  writeAll(EntryPath, Entry);

  {
    VerifySession S(*P);
    PropertyResult R = verifyPropertyCached(S, Fine, Cache.get(), &FP);
    EXPECT_EQ(R.Status, VerifyStatus::Proved);
    EXPECT_FALSE(R.CacheHit) << "damaged entries must not be served";
    EXPECT_TRUE(R.CertChecked);
  }
  EXPECT_EQ(Cache->stats().Rejected, 1u);
  EXPECT_EQ(Cache->stats().Quarantined, 1u);
  EXPECT_TRUE(
      fs::exists(fs::path(Dir.str()) / "quarantine" / (Key + ".json")))
      << "quarantine preserves the evidence under the entry's key";

  // The re-verification published an honest replacement.
  {
    VerifySession S(*P);
    PropertyResult R = verifyPropertyCached(S, Fine, Cache.get(), &FP);
    EXPECT_TRUE(R.CacheHit);
    EXPECT_TRUE(R.CertChecked);
  }
  EXPECT_EQ(Cache->stats().Quarantined, 1u) << "no second quarantine";
}

TEST(ProofCache, TruncatedEntryIsQuarantinedAndReVerified) {
  corruptionRoundTrip("truncated", [](std::string &Entry) {
    Entry.resize(Entry.size() / 2); // a torn write that got published
  });
}

TEST(ProofCache, BitFlippedCertificateIsQuarantinedAndReVerified) {
  corruptionRoundTrip("bitflip", [](std::string &Entry) {
    size_t Pos = Entry.find("\"canonical_cert\":\"");
    ASSERT_NE(Pos, std::string::npos);
    size_t Target = Pos + std::string("\"canonical_cert\":\"").size() + 5;
    ASSERT_LT(Target, Entry.size());
    Entry[Target] = char(Entry[Target] ^ 0x04); // silent bit rot
  });
}

TEST(ProofCache, WrongVersionEntryIsStaleMissNotQuarantined) {
  // A well-formed entry whose version field is simply from another release
  // is *stale*, not damaged: it must decode to a plain miss — no
  // quarantine, no rejection — and be overwritten by the re-verification.
  TempDir Dir("cache-stale");
  ProgramPtr P = mustLoad(MixedSrc);
  ASSERT_NE(P, nullptr);
  ProgramFingerprints FP = ProgramFingerprints::compute(*P);
  const Property &Fine = P->Properties[1];
  std::string Key = ProofCache::keyFor(FP.DeclFp, Fine, VerifyOptions{});
  std::string EntryPath = Dir.str() + "/" + Key + ".json";

  std::unique_ptr<ProofCache> Cache = mustOpen(Dir.str());
  ASSERT_NE(Cache, nullptr);
  {
    VerifySession S(*P);
    PropertyResult R = verifyPropertyCached(S, Fine, Cache.get(), &FP);
    ASSERT_EQ(R.Status, VerifyStatus::Proved);
  }

  std::string Entry = readAll(EntryPath);
  size_t Pos = Entry.find("\"version\":3");
  ASSERT_NE(Pos, std::string::npos);
  Entry.replace(Pos, std::string("\"version\":3").size(), "\"version\":99");
  writeAll(EntryPath, Entry);

  {
    VerifySession S(*P);
    PropertyResult R = verifyPropertyCached(S, Fine, Cache.get(), &FP);
    EXPECT_EQ(R.Status, VerifyStatus::Proved);
    EXPECT_FALSE(R.CacheHit) << "stale entries are misses, never served";
    EXPECT_TRUE(R.CertChecked);
  }
  EXPECT_EQ(Cache->stats().Rejected, 0u) << "stale is not damage";
  EXPECT_EQ(Cache->stats().Quarantined, 0u) << "stale is not damage";
  EXPECT_FALSE(
      fs::exists(fs::path(Dir.str()) / "quarantine" / (Key + ".json")));

  // The re-verification overwrote the stale entry with a current one.
  EXPECT_NE(readAll(EntryPath).find("\"version\":3"), std::string::npos);
  {
    VerifySession S(*P);
    PropertyResult R = verifyPropertyCached(S, Fine, Cache.get(), &FP);
    EXPECT_TRUE(R.CacheHit);
    EXPECT_TRUE(R.CertChecked);
  }
}

TEST(ProofCache, InjectedIOFaultsNeverServeDamage) {
  TempDir Dir("cache-faultio");
  ProgramPtr P = mustLoad(MixedSrc);
  ASSERT_NE(P, nullptr);
  ProgramFingerprints FP = ProgramFingerprints::compute(*P);
  const Property &Fine = P->Properties[1];
  std::string Key = ProofCache::keyFor(FP.DeclFp, Fine, VerifyOptions{});

  std::unique_ptr<ProofCache> Cache = mustOpen(Dir.str());
  ASSERT_NE(Cache, nullptr);
  {
    VerifySession S(*P);
    ASSERT_EQ(verifyPropertyCached(S, Fine, Cache.get(), &FP).Status,
              VerifyStatus::Proved);
  }

  // Read failure: the verdict is still right, served by re-verification;
  // the intact file is not quarantined (an IO error is not damage).
  FaultPlan ReadFail;
  ReadFail.addRule({"cache.read", "", FaultKind::Fail});
  Cache->setFaultPlan(&ReadFail);
  {
    VerifySession S(*P);
    PropertyResult R = verifyPropertyCached(S, Fine, Cache.get(), &FP);
    EXPECT_EQ(R.Status, VerifyStatus::Proved);
    EXPECT_FALSE(R.CacheHit);
  }
  EXPECT_EQ(Cache->stats().Quarantined, 0u);
  EXPECT_TRUE(fs::exists(Dir.str() + "/" + Key + ".json"));

  // Truncated read: the bytes handed back are damaged even though the
  // file is fine — lookup must reject rather than trust them.
  FaultPlan ReadTorn;
  ReadTorn.addRule({"cache.read", "", FaultKind::Truncate});
  Cache->setFaultPlan(&ReadTorn);
  {
    VerifySession S(*P);
    PropertyResult R = verifyPropertyCached(S, Fine, Cache.get(), &FP);
    EXPECT_EQ(R.Status, VerifyStatus::Proved);
    EXPECT_FALSE(R.CacheHit);
  }

  // Rename failure: the store is refused, no half-published entry and no
  // leftover temp file in the cache directory.
  Cache->setFaultPlan(nullptr);
  TempDir Dir2("cache-faultrename");
  std::unique_ptr<ProofCache> Cache2 = mustOpen(Dir2.str());
  ASSERT_NE(Cache2, nullptr);
  FaultPlan NoRename;
  NoRename.addRule({"cache.rename", "", FaultKind::Fail});
  Cache2->setFaultPlan(&NoRename);
  {
    VerifySession S(*P);
    PropertyResult R = verifyPropertyCached(S, Fine, Cache2.get(), &FP);
    EXPECT_EQ(R.Status, VerifyStatus::Proved) << "verdict survives";
  }
  EXPECT_EQ(Cache2->stats().Stores, 0u);
  EXPECT_EQ(fileCount(Dir2.str()), 0u) << "failed publishes leave no junk";
}

TEST(ProofCache, OpenFailsOnUnwritableDirectory) {
  Result<std::unique_ptr<ProofCache>> C =
      ProofCache::open("/proc/reflex-no-such-cache");
  EXPECT_FALSE(C.ok());
}

TEST(Scheduler, WarmCacheServesWholeBatch) {
  TempDir Dir("cache-batch");
  ProgramPtr Ssh = kernels::load(kernels::ssh());
  ProgramPtr Ssh2 = kernels::load(kernels::ssh2());
  std::vector<const Program *> Programs{Ssh.get(), Ssh2.get()};

  std::unique_ptr<ProofCache> Cache = mustOpen(Dir.str());
  ASSERT_NE(Cache, nullptr);
  SchedulerOptions Opts;
  Opts.Jobs = 4;
  Opts.Cache = Cache.get();

  BatchOutcome Cold = verifyPrograms(Programs, Opts);
  EXPECT_EQ(Cold.CacheStats.Hits, 0u);
  EXPECT_EQ(Cold.CacheStats.Misses, Cold.propertyCount());

  BatchOutcome Warm = verifyPrograms(Programs, Opts);
  EXPECT_EQ(Warm.CacheStats.Hits, Warm.propertyCount());
  EXPECT_EQ(Warm.CacheStats.Misses, 0u);
  EXPECT_EQ(Warm.CacheStats.Rejected, 0u);
  ASSERT_EQ(Warm.Reports.size(), Cold.Reports.size());
  for (size_t P = 0; P < Warm.Reports.size(); ++P) {
    EXPECT_EQ(Warm.Reports[P].ProofCacheHits,
              Warm.Reports[P].Results.size());
    for (size_t I = 0; I < Warm.Reports[P].Results.size(); ++I) {
      const PropertyResult &W = Warm.Reports[P].Results[I];
      const PropertyResult &C = Cold.Reports[P].Results[I];
      EXPECT_EQ(W.Status, C.Status) << W.Name;
      EXPECT_EQ(W.Reason, C.Reason) << W.Name;
      EXPECT_TRUE(W.CacheHit);
      if (W.Status == VerifyStatus::Proved) {
        EXPECT_TRUE(W.CertChecked);
      }
    }
  }
}

TEST(ProofCache, FootprintRelativeHitSurvivesUnrelatedEdit) {
  TempDir Dir("cache-footprint");
  const kernels::KernelDef &K = kernels::ssh();
  ProgramPtr P1 = kernels::load(K);

  // Warm the cache from the pristine kernel.
  std::unique_ptr<ProofCache> Cache = mustOpen(Dir.str());
  ASSERT_NE(Cache, nullptr);
  ProgramFingerprints Fp1 = ProgramFingerprints::compute(*P1);
  {
    VerifySession S(*P1);
    for (const Property &Prop : P1->Properties)
      ASSERT_EQ(verifyPropertyCached(S, Prop, Cache.get(), &Fp1).Status,
                VerifyStatus::Proved);
  }

  // Edit one handler body without changing its interface or its symbolic
  // behaviour: Password=>Auth gains a duplicated assignment. The printed
  // body (and so the handler fingerprint) changes, but every path's
  // symbolic post-state is identical — path-granular validation serves
  // the whole batch, including the proofs that consulted the handler.
  std::string Src2 = K.Source;
  size_t Pos = Src2.find("auth_ok = true;");
  ASSERT_NE(Pos, std::string::npos);
  Src2.insert(Pos, "auth_user = user;\n  ");
  ProgramPtr P2 = mustLoad(Src2);
  ASSERT_NE(P2, nullptr);
  ProgramFingerprints Fp2 = ProgramFingerprints::compute(*P2);
  ASSERT_EQ(Fp1.DeclFp, Fp2.DeclFp);
  ASSERT_NE(Fp1.HandlersFp, Fp2.HandlersFp);

  uint64_t FootprintHits = 0, Misses = 0;
  {
    VerifySession S(*P2);
    for (const Property &Prop : P2->Properties) {
      PropertyResult R = verifyPropertyCached(S, Prop, Cache.get(), &Fp2);
      EXPECT_EQ(R.Status, VerifyStatus::Proved) << Prop.Name;
      if (R.FootprintHit) {
        EXPECT_TRUE(R.CacheHit);
        EXPECT_TRUE(R.CertChecked)
            << "footprint-relative proved hits replay the checker too";
        ++FootprintHits;
      }
      if (!R.CacheHit)
        ++Misses;
    }
  }
  EXPECT_EQ(Misses, 0u)
      << "a symbolically invisible edit re-verifies nothing";
  EXPECT_EQ(FootprintHits, uint64_t(P2->Properties.size()));
  EXPECT_EQ(Cache->stats().FootprintHits, FootprintHits);
  EXPECT_EQ(Cache->stats().Quarantined, 0u)
      << "a stale entry is a miss, not damage";

  // A semantically *visible* body edit of Connection=>ReqAuth — the third
  // attempt now parks the counter at 4 instead of 3 — changes the entered
  // paths' full fingerprints. Proofs that consulted that path fall back
  // and re-verify; proofs disjoint from the handler still hit.
  std::string SrcV = K.Source;
  Pos = SrcV.find("attempts = 3;");
  ASSERT_NE(Pos, std::string::npos);
  SrcV.replace(Pos, std::string("attempts = 3;").size(), "attempts = 4;");
  ProgramPtr PV = mustLoad(SrcV);
  ASSERT_NE(PV, nullptr);
  ProgramFingerprints FpV = ProgramFingerprints::compute(*PV);
  ASSERT_EQ(Fp1.DeclFp, FpV.DeclFp);

  uint64_t VisHits = 0, VisMisses = 0;
  {
    VerifySession S(*PV);
    for (const Property &Prop : PV->Properties) {
      PropertyResult R = verifyPropertyCached(S, Prop, Cache.get(), &FpV);
      EXPECT_EQ(R.Status, VerifyStatus::Proved) << Prop.Name;
      if (R.FootprintHit)
        ++VisHits;
      if (!R.CacheHit) {
        ++VisMisses;
        EXPECT_TRUE(R.PathFallback) << Prop.Name;
      }
    }
  }
  EXPECT_GT(VisHits, 0u)
      << "proofs disjoint from Connection=>ReqAuth must still be served";
  EXPECT_GT(VisMisses, 0u)
      << "proofs that consulted the edited path must re-verify";
  EXPECT_GE(Cache->stats().PathFallbacks, VisMisses);

  // An interface-changing edit of the same handler invalidates even the
  // disjoint proofs: the skip predicates factor through the interface.
  std::string Src3 = K.Source;
  Pos = Src3.find("auth_ok = true;");
  ASSERT_NE(Pos, std::string::npos);
  Src3.insert(Pos, "attempts = attempts;\n  ");
  ProgramPtr P3 = mustLoad(Src3);
  ASSERT_NE(P3, nullptr);
  ProgramFingerprints Fp3 = ProgramFingerprints::compute(*P3);
  {
    VerifySession S(*P3);
    PropertyResult R =
        verifyPropertyCached(S, P3->Properties[0], Cache.get(), &Fp3);
    EXPECT_EQ(R.Status, VerifyStatus::Proved);
    EXPECT_FALSE(R.CacheHit);
  }
}

TEST(Scheduler, IdenticalJobsAreDedupedBeforeDispatch) {
  // The same kernel loaded twice: every (program, property) pair of the
  // second copy is byte-identical to the first's, so only the first
  // copy's jobs dispatch and the duplicates' slots carry copies.
  ProgramPtr A = kernels::load(kernels::ssh());
  ProgramPtr B = kernels::load(kernels::ssh());
  SchedulerOptions Opts;
  Opts.Jobs = 4;
  BatchOutcome Out = verifyPrograms({A.get(), B.get()}, Opts);

  EXPECT_EQ(Out.DedupedJobs, uint64_t(B->Properties.size()));
  ASSERT_EQ(Out.Reports.size(), 2u);
  ASSERT_EQ(Out.Reports[0].Results.size(), Out.Reports[1].Results.size());
  EXPECT_TRUE(Out.allProved());
  for (size_t I = 0; I < Out.Reports[0].Results.size(); ++I) {
    const PropertyResult &R0 = Out.Reports[0].Results[I];
    const PropertyResult &R1 = Out.Reports[1].Results[I];
    EXPECT_EQ(R0.Name, R1.Name);
    EXPECT_EQ(R0.Status, R1.Status);
    EXPECT_EQ(R0.Reason, R1.Reason);
    EXPECT_EQ(R0.CertJson, R1.CertJson)
        << "deduped slots carry the canonical job's certificate";
  }

  // Distinct programs never dedupe.
  ProgramPtr C = kernels::load(kernels::ssh2());
  BatchOutcome Mixed = verifyPrograms({A.get(), C.get()}, Opts);
  EXPECT_EQ(Mixed.DedupedJobs, 0u);
}

//===----------------------------------------------------------------------===//
// Scheduler fault tolerance: retries, crash isolation, injected budgets
//===----------------------------------------------------------------------===//

TEST(Scheduler, WorkerCrashIsRetriedThenIsolated) {
  ProgramPtr P = mustLoad(MixedSrc);
  ASSERT_NE(P, nullptr);
  // Property order in MixedSrc: Bad (Unknown), Fine (Proved).
  FaultPlan Plan;
  // Fine's worker throws on attempt 0 only: the retry must succeed.
  Plan.addRule({"worker", "/Fine#0", FaultKind::Fail});
  // Bad's worker throws on every attempt: the job must exhaust its
  // retries and report the crash in place — the batch still completes.
  Plan.addRule({"worker", "/Bad", FaultKind::Fail});

  SchedulerOptions Opts;
  Opts.Jobs = 1;
  Opts.Retries = 1;
  Opts.RetryBackoffMs = 0;
  Opts.Faults = &Plan;
  BatchOutcome Out = verifyPrograms({P.get()}, Opts);

  ASSERT_EQ(Out.Reports.size(), 1u);
  ASSERT_EQ(Out.Reports[0].Results.size(), 2u);
  const PropertyResult &Bad = Out.Reports[0].Results[0];
  const PropertyResult &Fine = Out.Reports[0].Results[1];

  EXPECT_EQ(Bad.Name, "Bad");
  EXPECT_EQ(Bad.Status, VerifyStatus::Aborted);
  EXPECT_NE(Bad.Reason.find("worker crashed"), std::string::npos)
      << Bad.Reason;
  EXPECT_NE(Bad.Reason.find("injected worker fault"), std::string::npos);
  EXPECT_NE(Bad.Reason.find("2 attempts"), std::string::npos);
  EXPECT_EQ(Bad.Attempts, 2u);

  EXPECT_EQ(Fine.Name, "Fine");
  EXPECT_EQ(Fine.Status, VerifyStatus::Proved)
      << "a crash on the first attempt must not cost the verdict";
  EXPECT_TRUE(Fine.CertChecked);
  EXPECT_EQ(Fine.Attempts, 2u);
}

TEST(Scheduler, InjectedBudgetExhaustionIsReportedNotCached) {
  TempDir Dir("cache-budget");
  ProgramPtr P = mustLoad(MixedSrc);
  ASSERT_NE(P, nullptr);
  std::unique_ptr<ProofCache> Cache = mustOpen(Dir.str());
  ASSERT_NE(Cache, nullptr);

  FaultPlan Plan;
  Plan.addRule({"budget", "/Fine", FaultKind::Fail}); // one-step budget
  SchedulerOptions Opts;
  Opts.Jobs = 1;
  Opts.Retries = 1;
  Opts.RetryBackoffMs = 0;
  Opts.Faults = &Plan;
  Opts.Cache = Cache.get();
  BatchOutcome Out = verifyPrograms({P.get()}, Opts);

  ASSERT_EQ(Out.Reports.size(), 1u);
  const PropertyResult &Fine = Out.Reports[0].Results[1];
  EXPECT_EQ(Fine.Status, VerifyStatus::ResourceExhausted);
  EXPECT_NE(Fine.Reason.find("step budget"), std::string::npos)
      << Fine.Reason;
  EXPECT_EQ(Fine.Attempts, 2u) << "budget statuses are transient: retried";

  // Budget statuses are circumstances, not verdicts: never persisted.
  std::string Key = ProofCache::keyFor(ProgramFingerprints::compute(*P).DeclFp,
                                       P->Properties[1], VerifyOptions{});
  EXPECT_FALSE(fs::exists(Dir.str() + "/" + Key + ".json"));

  // Without the fault the same batch proves Fine — and the cached entry
  // appears.
  SchedulerOptions Clean = Opts;
  Clean.Faults = nullptr;
  BatchOutcome Ok = verifyPrograms({P.get()}, Clean);
  EXPECT_EQ(Ok.Reports[0].Results[1].Status, VerifyStatus::Proved);
  EXPECT_TRUE(fs::exists(Dir.str() + "/" + Key + ".json"));
}

/// The PR's acceptance scenario: a warm cache with three unusable
/// entries (truncated, bit-flipped — damage; wrong version — stale),
/// one property whose worker crashes on every attempt, and one property
/// that exhausts an injected budget. The batch must complete with a
/// declaration-ordered report, identical verdicts at 1 and 4 workers,
/// the two damaged entries quarantined on disk, and the stale entry
/// re-verified in place without quarantine.
std::vector<std::string> runFaultedAcceptanceBatch(unsigned Jobs,
                                                   bool SharedCaches = true) {
  ProgramPtr Ssh = kernels::load(kernels::ssh());
  ProgramPtr Car = kernels::load(kernels::car());
  std::vector<const Program *> Programs{Ssh.get(), Car.get()};

  TempDir Dir("cache-accept-" + std::to_string(Jobs));
  std::unique_ptr<ProofCache> Cache = mustOpen(Dir.str());
  EXPECT_NE(Cache, nullptr);

  // Warm the cache faultlessly.
  SchedulerOptions Fill;
  Fill.Jobs = Jobs;
  Fill.SharedCaches = SharedCaches;
  Fill.Cache = Cache.get();
  BatchOutcome Cold = verifyPrograms(Programs, Fill);
  EXPECT_TRUE(Cold.allProved());

  // Corrupt three of car's entries on disk, three different ways.
  EXPECT_GE(Car->Properties.size(), 3u);
  std::vector<std::string> CorruptKeys;
  for (size_t I = 0; I < 3; ++I) {
    std::string Key = ProofCache::keyFor(ProgramFingerprints::compute(*Car).DeclFp,
                                         Car->Properties[I],
                                         VerifyOptions{});
    std::string Path = Dir.str() + "/" + Key + ".json";
    std::string Entry = readAll(Path);
    EXPECT_FALSE(Entry.empty()) << Path;
    if (I == 0) {
      Entry.resize(Entry.size() / 2);
    } else if (I == 1) {
      size_t Pos = Entry.find("\"canonical_cert\":\"");
      EXPECT_NE(Pos, std::string::npos);
      Entry[Pos + 25] = char(Entry[Pos + 25] ^ 0x04);
    } else {
      size_t Pos = Entry.find("\"version\":3");
      EXPECT_NE(Pos, std::string::npos);
      Entry.replace(Pos, std::string("\"version\":3").size(),
                    "\"version\":99");
    }
    writeAll(Path, Entry);
    CorruptKeys.push_back(Key);
  }

  // Stage the runtime faults: ssh's first property crashes its worker on
  // every attempt, ssh's second runs under an injected one-step budget.
  FaultPlan Plan;
  Plan.addRule({"worker", Ssh->Name + "/" + Ssh->Properties[0].Name,
                FaultKind::Fail});
  Plan.addRule({"budget", Ssh->Name + "/" + Ssh->Properties[1].Name,
                FaultKind::Fail});

  SchedulerOptions Opts;
  Opts.Jobs = Jobs;
  Opts.SharedCaches = SharedCaches;
  Opts.Cache = Cache.get();
  Opts.Faults = &Plan;
  Opts.Retries = 1;
  Opts.RetryBackoffMs = 0;
  BatchOutcome Out = verifyPrograms(Programs, Opts);

  // Complete, declaration-ordered report.
  EXPECT_EQ(Out.Reports.size(), 2u);
  std::vector<std::string> Flat;
  for (size_t PI = 0; PI < Programs.size(); ++PI) {
    EXPECT_EQ(Out.Reports[PI].Results.size(),
              Programs[PI]->Properties.size());
    for (size_t I = 0; I < Out.Reports[PI].Results.size(); ++I) {
      const PropertyResult &R = Out.Reports[PI].Results[I];
      EXPECT_EQ(R.Name, Programs[PI]->Properties[I].Name)
          << "declaration order";
      Flat.push_back(R.Name + "|" + verifyStatusName(R.Status) + "|" +
                     R.Reason + "|" + std::to_string(R.Attempts));
    }
  }

  // The staged outcomes.
  EXPECT_EQ(Out.Reports[0].Results[0].Status, VerifyStatus::Aborted);
  EXPECT_NE(Out.Reports[0].Results[0].Reason.find("worker crashed"),
            std::string::npos);
  EXPECT_EQ(Out.Reports[0].Results[1].Status,
            VerifyStatus::ResourceExhausted);
  for (size_t I = 2; I < Out.Reports[0].Results.size(); ++I)
    EXPECT_EQ(Out.Reports[0].Results[I].Status, VerifyStatus::Proved);
  for (const PropertyResult &R : Out.Reports[1].Results)
    EXPECT_EQ(R.Status, VerifyStatus::Proved)
        << "corrupted entries re-verify: " << R.Name;

  // The evidence: both damaged entries quarantined, counted once; the
  // stale (wrong-version) entry is a plain miss, never quarantined.
  EXPECT_EQ(Out.CacheStats.Quarantined, 2u);
  EXPECT_EQ(Out.CacheStats.Rejected, 2u);
  for (size_t I = 0; I < 2; ++I)
    EXPECT_TRUE(fs::exists(fs::path(Dir.str()) / "quarantine" /
                           (CorruptKeys[I] + ".json")))
        << CorruptKeys[I];
  EXPECT_FALSE(fs::exists(fs::path(Dir.str()) / "quarantine" /
                          (CorruptKeys[2] + ".json")))
      << "stale entries are not evidence of damage";
  return Flat;
}

TEST(Scheduler, FaultedBatchIsCompleteAndDeterministicAcrossWorkerCounts) {
  std::vector<std::string> OneWorker = runFaultedAcceptanceBatch(1);
  std::vector<std::string> FourWorkers = runFaultedAcceptanceBatch(4);
  EXPECT_EQ(OneWorker, FourWorkers)
      << "verdicts, reasons, and attempt counts must not depend on the "
         "worker count";
}

TEST(Scheduler, SharingToggleDoesNotChangeFaultedVerdicts) {
  // The same seeded fault plan (worker crashes, injected budgets,
  // corrupted cache entries) at four workers, with the phase-1/phase-2
  // sharing on and off: the shared frozen abstraction and the
  // cross-worker cache tiers are semantically transparent, so the
  // verdict list — including failure reasons and attempt counts — must
  // not depend on the toggle.
  std::vector<std::string> Shared = runFaultedAcceptanceBatch(4, true);
  std::vector<std::string> Private = runFaultedAcceptanceBatch(4, false);
  EXPECT_EQ(Shared, Private)
      << "SchedulerOptions::SharedCaches must not change verdicts";
}

/// Footprint-relative warm batch under faults: warm a cache from the
/// pristine ssh kernel, edit one handler body interface-preservingly but
/// semantically visibly (the third login attempt parks the counter at 4),
/// then re-verify the edited kernel from the warm cache with an injected
/// first-attempt worker crash. Footprint-relative hits must serve the
/// edit-disjoint proofs, and the flattened verdicts must not depend on
/// the worker count.
std::vector<std::string> runFootprintWarmBatch(unsigned Jobs) {
  const kernels::KernelDef &K = kernels::ssh();
  ProgramPtr P1 = kernels::load(K);
  std::string Src2 = K.Source;
  size_t Pos = Src2.find("attempts = 3;");
  EXPECT_NE(Pos, std::string::npos);
  Src2.replace(Pos, std::string("attempts = 3;").size(), "attempts = 4;");
  ProgramPtr P2 = mustLoad(Src2);
  EXPECT_NE(P2, nullptr);

  TempDir Dir("cache-fpwarm-" + std::to_string(Jobs));
  std::unique_ptr<ProofCache> Cache = mustOpen(Dir.str());
  EXPECT_NE(Cache, nullptr);
  SchedulerOptions Fill;
  Fill.Jobs = Jobs;
  Fill.Cache = Cache.get();
  BatchOutcome Cold = verifyPrograms({P1.get()}, Fill);
  EXPECT_TRUE(Cold.allProved());

  FaultPlan Plan;
  Plan.addRule({"worker", P2->Name + "/" + P2->Properties[0].Name + "#0",
                FaultKind::Fail});
  SchedulerOptions Opts;
  Opts.Jobs = Jobs;
  Opts.Cache = Cache.get();
  Opts.Faults = &Plan;
  Opts.Retries = 1;
  Opts.RetryBackoffMs = 0;
  BatchOutcome Out = verifyPrograms({P2.get()}, Opts);
  EXPECT_TRUE(Out.allProved());
  EXPECT_GT(Out.CacheStats.FootprintHits, 0u)
      << "edit-disjoint proofs must be served footprint-relatively";
  EXPECT_GT(Out.CacheStats.Misses, 0u)
      << "the edited handler's dependents must re-verify";

  std::vector<std::string> Flat;
  for (const PropertyResult &R : Out.Reports[0].Results)
    Flat.push_back(R.Name + "|" + verifyStatusName(R.Status) + "|" +
                   R.Reason + "|" + std::to_string(R.Attempts) + "|" +
                   (R.FootprintHit ? "fp" : "-"));
  return Flat;
}

TEST(Scheduler, FootprintWarmBatchDeterministicAcrossWorkerCounts) {
  std::vector<std::string> OneWorker = runFootprintWarmBatch(1);
  std::vector<std::string> FourWorkers = runFootprintWarmBatch(4);
  EXPECT_EQ(OneWorker, FourWorkers)
      << "footprint-relative reuse must not depend on the worker count";
}

//===----------------------------------------------------------------------===//
// Two-phase sharing: one frozen abstraction, many racing sessions
//===----------------------------------------------------------------------===//

/// Serializes a report with the run-to-run-varying fields (wall clock and
/// work-effort counters — timing and effort, never verdicts; shared-cache
/// hits legitimately shift work between racing sessions) zeroed, so what
/// remains must be byte-identical across worker counts and interleavings:
/// names, statuses, reasons, certificate checks, attempt counts.
std::string stableReportJson(VerificationReport R) {
  R.TotalMillis = 0;
  R.TermCount = 0;
  R.SolverQueries = 0;
  R.InvariantCacheHits = 0;
  R.SolverMemoHits = 0;
  R.SolverAssumptionChecks = 0;
  R.SolverTrailUndos = 0;
  R.SolverReasonLogBytes = 0;
  for (PropertyResult &PR : R.Results)
    PR.Millis = 0;
  return R.toJson();
}

TEST(Scheduler, RacingSessionsOverOneFrozenAbstractionAgree) {
  // The cross-thread schedule the scheduler cannot produce on a small
  // machine (it never runs more OS threads than cores): four raw threads,
  // each with a private overlay session, racing over one shared
  // FrozenAbstraction and one set of cross-worker cache tiers. Under TSan
  // (tools/run_tsan.sh) this is the data-race check for the whole
  // phase-1/phase-2 sharing design; on any host it checks that every
  // racing session produces the one-worker report, byte for byte.
  ProgramPtr P = kernels::load(kernels::ssh2());
  std::shared_ptr<const FrozenAbstraction> Abs =
      FrozenAbstraction::build(*P);
  ASSERT_EQ(Abs->buildOutcome(), BudgetOutcome::Ok);
  SharedVerifyCaches Caches;

  SchedulerOptions Seq;
  Seq.Jobs = 1;
  VerificationReport RefReport = verifyParallel(*P, Seq);
  std::vector<std::string> RefCerts;
  for (const PropertyResult &PR : RefReport.Results)
    RefCerts.push_back(PR.CertJson);
  std::string Ref = stableReportJson(std::move(RefReport));

  constexpr unsigned NumThreads = 4;
  std::vector<std::string> Got(NumThreads);
  std::vector<std::vector<std::string>> Certs(NumThreads);
  {
    std::vector<std::thread> Threads;
    for (unsigned T = 0; T < NumThreads; ++T)
      Threads.emplace_back([&, T] {
        VerifySession S(Abs, &Caches);
        VerificationReport R = S.verifyAll();
        for (const PropertyResult &PR : R.Results)
          Certs[T].push_back(PR.CertJson);
        Got[T] = stableReportJson(std::move(R));
      });
    for (std::thread &T : Threads)
      T.join();
  }
  for (unsigned T = 0; T < NumThreads; ++T) {
    EXPECT_EQ(Got[T], Ref) << "thread " << T;
    EXPECT_EQ(Certs[T], RefCerts)
        << "thread " << T << ": certificates must be interleaving-free";
  }
}

//===----------------------------------------------------------------------===//
// Incremental verifier backed by the persistent cache
//===----------------------------------------------------------------------===//

TEST(Incremental, PersistentCacheSurvivesVerifierInstances) {
  TempDir Dir("cache-incr");
  ProgramPtr P = kernels::load(kernels::ssh2());
  std::unique_ptr<ProofCache> Cache = mustOpen(Dir.str());
  ASSERT_NE(Cache, nullptr);

  // First instance: populates the cache.
  {
    IncrementalVerifier IV(VerifyOptions{}, Cache.get());
    auto Out = IV.verify(*P);
    EXPECT_EQ(Out.CacheHits, 0u);
    EXPECT_EQ(Out.Reverified, P->Properties.size());
    EXPECT_TRUE(Out.Report.allProved());
  }

  // Second instance (a "restarted process"): no in-memory verdicts, so
  // everything re-verifies — but every verdict is answered by the
  // persistent cache, checker-validated.
  IncrementalVerifier IV(VerifyOptions{}, Cache.get());
  auto Out = IV.verify(*P);
  EXPECT_EQ(Out.Reused, 0u);
  EXPECT_EQ(Out.Reverified, P->Properties.size());
  EXPECT_EQ(Out.CacheHits, P->Properties.size());
  EXPECT_TRUE(Out.Report.allProved());

  // Third call on the same instance: in-memory reuse, and the reused
  // proved verdicts still carry their certificate JSON.
  auto Again = IV.verify(*P);
  EXPECT_EQ(Again.Reused, P->Properties.size());
  for (const PropertyResult &R : Again.Report.Results) {
    if (R.Status == VerifyStatus::Proved) {
      EXPECT_FALSE(R.CertJson.empty())
          << "reused verdicts must retain certificates: " << R.Name;
    }
  }
}

//===----------------------------------------------------------------------===//
// Batch cancellation (SchedulerOptions::Cancel)
//===----------------------------------------------------------------------===//

TEST(Scheduler, CancelledBatchAbortsEveryJobInPlace) {
  ProgramPtr P = kernels::load(kernels::ssh());
  SchedulerOptions S;
  S.Jobs = 2;
  S.Cancel = std::make_shared<CancelFlag>();
  S.Cancel->cancel(); // beats dispatch: every job aborts without running
  BatchOutcome B = verifyPrograms({P.get()}, S);
  ASSERT_EQ(B.Reports[0].Results.size(), P->Properties.size());
  for (const PropertyResult &R : B.Reports[0].Results) {
    EXPECT_EQ(R.Status, VerifyStatus::Aborted) << R.Name;
    EXPECT_EQ(R.Reason, "verification budget exhausted: cancelled by caller");
    EXPECT_EQ(R.Attempts, 1u) << "Aborted must never be retried: " << R.Name;
  }
}

TEST(Scheduler, CancelledBatchLeavesLaterIdenticalBatchesByteIdentical) {
  ProgramPtr P = kernels::load(kernels::ssh2());
  TempDir Dir("cache-cancel");
  std::unique_ptr<ProofCache> Cache = mustOpen(Dir.str());
  ASSERT_NE(Cache, nullptr);

  // The baseline: the batch's verdicts with no cancellation anywhere in
  // the process's history (fresh share, fresh cache-free run).
  SchedulerOptions Base;
  Base.Jobs = 2;
  BatchOutcome Want = verifyPrograms({P.get()}, Base);

  // A cancelled batch against a persistent share and a proof cache: the
  // worst case for poisoning, since both outlive the batch.
  VerifyShare Share;
  SchedulerOptions S = Base;
  S.Cache = Cache.get();
  S.Share = &Share;
  S.Cancel = std::make_shared<CancelFlag>();
  S.Cancel->cancel();
  BatchOutcome Cancelled = verifyPrograms({P.get()}, S);
  for (const PropertyResult &R : Cancelled.Reports[0].Results)
    EXPECT_EQ(R.Status, VerifyStatus::Aborted) << R.Name;
  EXPECT_EQ(Cache->stats().Stores, 0u)
      << "Aborted results must never be cached";

  // The identical batch with a live (unfired) token, reusing the same
  // share and cache: byte-identical to the never-cancelled baseline.
  S.Cancel = std::make_shared<CancelFlag>();
  BatchOutcome Clean = verifyPrograms({P.get()}, S);
  ASSERT_EQ(Clean.Reports[0].Results.size(), Want.Reports[0].Results.size());
  for (size_t I = 0; I < Want.Reports[0].Results.size(); ++I) {
    const PropertyResult &Got = Clean.Reports[0].Results[I];
    const PropertyResult &W = Want.Reports[0].Results[I];
    EXPECT_EQ(Got.Name, W.Name);
    EXPECT_EQ(Got.Status, W.Status) << W.Name;
    EXPECT_EQ(Got.Reason, W.Reason) << W.Name;
    EXPECT_EQ(Got.CertJson, W.CertJson) << W.Name;
  }
}

//===----------------------------------------------------------------------===//
// Session-scoped batches and persistent shares
//===----------------------------------------------------------------------===//

TEST(Scheduler, PropertySubsetVerifiesExactlyTheRequestedIndices) {
  ProgramPtr P = kernels::load(kernels::ssh());
  SchedulerOptions S;
  S.Jobs = 2;
  BatchOutcome Full = verifyPrograms({P.get()}, S);

  // Reversed order, with an out-of-range index that must be ignored.
  std::vector<size_t> Idx;
  for (size_t I = P->Properties.size(); I-- > 0;)
    Idx.push_back(I);
  Idx.push_back(P->Properties.size() + 7);
  BatchOutcome Sub = verifyPropertySubset(*P, Idx, S);
  ASSERT_EQ(Sub.Reports.size(), 1u);
  ASSERT_EQ(Sub.Reports[0].Results.size(), P->Properties.size());
  for (size_t J = 0; J < P->Properties.size(); ++J) {
    const PropertyResult &Got = Sub.Reports[0].Results[J];
    const PropertyResult &W =
        Full.Reports[0].Results[P->Properties.size() - 1 - J];
    EXPECT_EQ(Got.Name, W.Name) << "subset order must follow PropIdx";
    EXPECT_EQ(Got.Status, W.Status) << W.Name;
    EXPECT_EQ(Got.Reason, W.Reason) << W.Name;
    EXPECT_EQ(Got.CertJson, W.CertJson) << W.Name;
  }
}

TEST(Scheduler, PersistentShareStaysWarmAndVerdictIdenticalAcrossBatches) {
  ProgramPtr P = kernels::load(kernels::ssh2());
  SchedulerOptions S;
  S.Jobs = 2;
  BatchOutcome Want = verifyPrograms({P.get()}, S);

  VerifyShare Share;
  EXPECT_FALSE(Share.warm());
  S.Share = &Share;
  for (int Round = 0; Round < 3; ++Round) {
    BatchOutcome B = verifyPrograms({P.get()}, S);
    EXPECT_TRUE(Share.warm()) << "round " << Round
                              << " should leave the abstraction built";
    ASSERT_EQ(B.Reports[0].Results.size(), Want.Reports[0].Results.size());
    for (size_t I = 0; I < Want.Reports[0].Results.size(); ++I) {
      const PropertyResult &Got = B.Reports[0].Results[I];
      const PropertyResult &W = Want.Reports[0].Results[I];
      EXPECT_EQ(Got.Status, W.Status) << W.Name << " round " << Round;
      EXPECT_EQ(Got.Reason, W.Reason) << W.Name << " round " << Round;
      EXPECT_EQ(Got.CertJson, W.CertJson) << W.Name << " round " << Round;
    }
  }
}

//===----------------------------------------------------------------------===//
// Footprint-aware cache GC
//===----------------------------------------------------------------------===//

TEST(ProofCache, GcDropsDeadProgramsAndKeepsLiveOnesWarm) {
  TempDir Dir("cache-gc");
  ProgramPtr Live = kernels::load(kernels::ssh2());
  ProgramPtr Dead = kernels::load(kernels::car());
  std::string LiveId =
      ProofCache::declId(ProgramFingerprints::compute(*Live).DeclFp);

  uint64_t LiveStores = 0, DeadStores = 0;
  {
    std::unique_ptr<ProofCache> Cache = mustOpen(Dir.str());
    ASSERT_NE(Cache, nullptr);
    SchedulerOptions S;
    S.Cache = Cache.get();
    verifyPrograms({Live.get()}, S);
    LiveStores = Cache->stats().Stores;
    verifyPrograms({Dead.get()}, S);
    DeadStores = Cache->stats().Stores - LiveStores;
  }
  ASSERT_GT(LiveStores, 0u);
  ASSERT_GT(DeadStores, 0u);
  auto CountEntries = [&] {
    size_t N = 0;
    for (const auto &E : fs::directory_iterator(Dir.str()))
      if (E.is_regular_file() && E.path().extension() == ".json")
        ++N;
    return N;
  };
  ASSERT_EQ(CountEntries(), size_t(LiveStores + DeadStores));

  // Reopen (a fresh process) and collect everything but Live.
  std::unique_ptr<ProofCache> Cache = mustOpen(Dir.str());
  ASSERT_NE(Cache, nullptr);
  ProofCache::GcOutcome G = Cache->gc({LiveId});
  EXPECT_EQ(G.Scanned, LiveStores + DeadStores);
  EXPECT_EQ(G.Dropped, DeadStores);
  EXPECT_EQ(G.Kept, LiveStores);
  EXPECT_EQ(CountEntries(), size_t(LiveStores))
      << "GC must shrink the directory to the live entries";
  EXPECT_EQ(Cache->stats().GcRuns, 1u);
  EXPECT_EQ(Cache->stats().GcDropped, DeadStores);

  // The survivors still serve checker-validated warm hits...
  SchedulerOptions S;
  S.Cache = Cache.get();
  BatchOutcome Warm = verifyPrograms({Live.get()}, S);
  EXPECT_EQ(Warm.Reports[0].ProofCacheHits, Live->Properties.size());
  EXPECT_EQ(Warm.Reports[0].ProofCacheMisses, 0u);
  // ...and the collected program is simply a cold miss again.
  BatchOutcome Cold = verifyPrograms({Dead.get()}, S);
  EXPECT_EQ(Cold.Reports[0].ProofCacheHits, 0u);
  EXPECT_GT(Cold.Reports[0].ProofCacheMisses, 0u);
}

TEST(ProofCache, GcTreatsUndecodableEntriesAsDead) {
  TempDir Dir("cache-gc-junk");
  ProgramPtr Live = kernels::load(kernels::ssh2());
  std::string LiveId =
      ProofCache::declId(ProgramFingerprints::compute(*Live).DeclFp);
  std::unique_ptr<ProofCache> Cache = mustOpen(Dir.str());
  ASSERT_NE(Cache, nullptr);
  SchedulerOptions S;
  S.Cache = Cache.get();
  verifyPrograms({Live.get()}, S);
  uint64_t Stores = Cache->stats().Stores;
  ASSERT_GT(Stores, 0u);

  // An entry nobody can decode carries no provenance; dropping it only
  // costs a re-verification, so GC collects it.
  std::ofstream(fs::path(Dir.str()) / "garbage.json") << "{not json";
  ProofCache::GcOutcome G = Cache->gc({LiveId});
  EXPECT_EQ(G.Scanned, Stores + 1);
  EXPECT_EQ(G.Dropped, 1u);
  EXPECT_EQ(G.Kept, Stores);
}

//===----------------------------------------------------------------------===//
// Proof engines through the service layer (docs/ENGINES.md)
//===----------------------------------------------------------------------===//

/// The whole suite plus the engine-separating pdrlock kernel, verified
/// under \p Kind, flattened to byte-comparable verdict strings.
std::vector<std::string> runEngineBatch(EngineKind Kind, unsigned Jobs,
                                        bool Shared, uint64_t FaultSeed = 0) {
  ProgramPtr Ssh2 = kernels::load(kernels::ssh2());
  ProgramPtr Car = kernels::load(kernels::car());
  ProgramPtr Lock = kernels::load(kernels::pdrlock());
  std::vector<const Program *> Programs{Ssh2.get(), Car.get(), Lock.get()};

  SchedulerOptions Opts;
  Opts.Jobs = Jobs;
  Opts.SharedCaches = Shared;
  Opts.Verify.Engine = Kind;
  // A seeded probabilistic plan plus one staged crash: every fault
  // decision is a pure function of (site, key, seed), so the flattened
  // verdicts must be identical for the same seed at any worker count.
  FaultPlan Plan(FaultSeed, FaultSeed ? 10 : 0);
  if (FaultSeed) {
    Plan.addRule({"worker", Lock->Name + "/" +
                      Lock->Properties[0].Name + "#0",
                  FaultKind::Fail});
    Opts.Faults = &Plan;
    Opts.Retries = 1;
    Opts.RetryBackoffMs = 0;
  }
  BatchOutcome Out = verifyPrograms(Programs, Opts);
  std::vector<std::string> Flat;
  for (const VerificationReport &Rep : Out.Reports)
    for (const PropertyResult &R : Rep.Results)
      Flat.push_back(R.Name + "|" + verifyStatusName(R.Status) + "|" +
                     R.Reason + "|" + R.ServedBy + "|" + R.CertJson);
  return Flat;
}

TEST(Scheduler, PdrVerdictsDeterministicAcrossWorkersAndSharing) {
  std::vector<std::string> Base = runEngineBatch(EngineKind::Pdr, 1, true);
  EXPECT_EQ(Base, runEngineBatch(EngineKind::Pdr, 4, true));
  EXPECT_EQ(Base, runEngineBatch(EngineKind::Pdr, 4, false));
}

TEST(Scheduler, PortfolioVerdictsDeterministicAcrossWorkersAndSharing) {
  // The race's timing must be erased by the canonical selection rule:
  // statuses, reasons, serving engines, and certificate bytes all agree
  // across worker counts and the sharing toggle.
  std::vector<std::string> Base =
      runEngineBatch(EngineKind::Portfolio, 1, true);
  EXPECT_EQ(Base, runEngineBatch(EngineKind::Portfolio, 4, true));
  EXPECT_EQ(Base, runEngineBatch(EngineKind::Portfolio, 4, false));
}

TEST(Scheduler, FaultedPortfolioVerdictsAreSeedDeterministic) {
  // A seeded worker crash on pdrlock's property, retried once: the final
  // verdicts (portfolio selection included) must not depend on the
  // worker count.
  std::vector<std::string> One =
      runEngineBatch(EngineKind::Portfolio, 1, true, 7);
  std::vector<std::string> Four =
      runEngineBatch(EngineKind::Portfolio, 4, true, 7);
  EXPECT_EQ(One, Four);
}

TEST(ProofCache, EngineJoinsTheCacheKey) {
  ProgramPtr P = kernels::load(kernels::pdrlock());
  ASSERT_NE(P, nullptr);
  ProgramFingerprints FP = ProgramFingerprints::compute(*P);
  const Property &Prop = P->Properties[0];
  VerifyOptions Ind, Pdr, Port;
  Pdr.Engine = EngineKind::Pdr;
  Port.Engine = EngineKind::Portfolio;
  std::string KInd = ProofCache::keyFor(FP.DeclFp, Prop, Ind);
  std::string KPdr = ProofCache::keyFor(FP.DeclFp, Prop, Pdr);
  std::string KPort = ProofCache::keyFor(FP.DeclFp, Prop, Port);
  // Different engines may return different verdicts for the same
  // property, so they must never share an entry.
  EXPECT_NE(KInd, KPdr);
  EXPECT_NE(KInd, KPort);
  EXPECT_NE(KPdr, KPort);
}

TEST(ProofCache, PdrWarmHitRestoresServingEngine) {
  TempDir Dir("cache-pdr-warm");
  ProgramPtr P = kernels::load(kernels::pdrlock());
  ASSERT_NE(P, nullptr);
  ProgramFingerprints FP = ProgramFingerprints::compute(*P);
  VerifyOptions VO;
  VO.Engine = EngineKind::Pdr;
  const Property &Prop = P->Properties[0];

  std::unique_ptr<ProofCache> Cache = mustOpen(Dir.str());
  ASSERT_NE(Cache, nullptr);
  std::string ColdCert, ColdServed;
  {
    VerifySession S(*P, VO);
    PropertyResult R = verifyPropertyCached(S, Prop, Cache.get(), &FP);
    ASSERT_EQ(R.Status, VerifyStatus::Proved) << R.Reason;
    EXPECT_FALSE(R.CacheHit);
    ColdCert = R.CertJson;
    ColdServed = R.ServedBy;
  }
  EXPECT_EQ(ColdServed, "pdr");
  {
    VerifySession S(*P, VO);
    PropertyResult R = verifyPropertyCached(S, Prop, Cache.get(), &FP);
    EXPECT_EQ(R.Status, VerifyStatus::Proved);
    EXPECT_TRUE(R.CacheHit);
    EXPECT_EQ(R.ServedBy, ColdServed)
        << "warm hits must say which engine produced the proof";
    EXPECT_EQ(R.CertJson, ColdCert);
  }
  // The same property under the default engine is a separate key: the
  // warm PDR proof must not leak into an induction lookup.
  {
    VerifySession S(*P);
    PropertyResult R = verifyPropertyCached(S, Prop, Cache.get(), &FP);
    EXPECT_FALSE(R.CacheHit);
    EXPECT_EQ(R.Status, VerifyStatus::Unknown);
  }
}

TEST(ProofCache, DamagedPdrEntryIsQuarantinedAndReVerified) {
  TempDir Dir("cache-pdr-damage");
  ProgramPtr P = kernels::load(kernels::pdrlock());
  ASSERT_NE(P, nullptr);
  ProgramFingerprints FP = ProgramFingerprints::compute(*P);
  VerifyOptions VO;
  VO.Engine = EngineKind::Pdr;
  const Property &Prop = P->Properties[0];
  std::string Key = ProofCache::keyFor(FP.DeclFp, Prop, VO);
  std::string EntryPath = Dir.str() + "/" + Key + ".json";

  std::unique_ptr<ProofCache> Cache = mustOpen(Dir.str());
  ASSERT_NE(Cache, nullptr);
  {
    VerifySession S(*P, VO);
    PropertyResult R = verifyPropertyCached(S, Prop, Cache.get(), &FP);
    ASSERT_EQ(R.Status, VerifyStatus::Proved) << R.Reason;
  }

  // Corrupt a clause literal inside the stored clausal certificate.
  std::string Entry = readAll(EntryPath);
  size_t Pos = Entry.find("!armed");
  ASSERT_NE(Pos, std::string::npos) << Entry;
  Entry.replace(Pos, 6, "!prime");
  writeAll(EntryPath, Entry);

  {
    VerifySession S(*P, VO);
    PropertyResult R = verifyPropertyCached(S, Prop, Cache.get(), &FP);
    EXPECT_EQ(R.Status, VerifyStatus::Proved);
    EXPECT_FALSE(R.CacheHit) << "a tampered PDR certificate was served";
    EXPECT_TRUE(R.CertChecked);
  }
  EXPECT_EQ(Cache->stats().Quarantined, 1u);
  EXPECT_TRUE(
      fs::exists(fs::path(Dir.str()) / "quarantine" / (Key + ".json")));
}

//===----------------------------------------------------------------------===//
// GC live-set manifest: liveness persists across cache reopenings
//===----------------------------------------------------------------------===//

TEST(ProofCache, GcManifestKeepsRecentlyLiveProgramsAcrossReopen) {
  TempDir Dir("cache-gc-manifest");
  ProgramPtr A = kernels::load(kernels::ssh2());
  ProgramPtr B = kernels::load(kernels::car());
  std::string AId =
      ProofCache::declId(ProgramFingerprints::compute(*A).DeclFp);
  std::string BId =
      ProofCache::declId(ProgramFingerprints::compute(*B).DeclFp);

  uint64_t AStores = 0, BStores = 0;
  {
    // Process 1 verifies both programs and runs a gc naming both live —
    // the manifest now remembers when each was last claimed.
    std::unique_ptr<ProofCache> Cache = mustOpen(Dir.str());
    ASSERT_NE(Cache, nullptr);
    SchedulerOptions S;
    S.Cache = Cache.get();
    verifyPrograms({A.get()}, S);
    AStores = Cache->stats().Stores;
    verifyPrograms({B.get()}, S);
    BStores = Cache->stats().Stores - AStores;
    ProofCache::GcOutcome G = Cache->gc({AId, BId});
    EXPECT_EQ(G.Dropped, 0u);
  }
  ASSERT_GT(AStores, 0u);
  ASSERT_GT(BStores, 0u);
  EXPECT_TRUE(fs::exists(fs::path(Dir.str()) / "gc.manifest"));

  {
    // Process 2 (a daemon restart) only names A live. B was claimed
    // within the manifest window, so its entries survive the restart
    // instead of being dropped by the first post-restart gc.
    std::unique_ptr<ProofCache> Cache = mustOpen(Dir.str());
    ASSERT_NE(Cache, nullptr);
    ProofCache::GcOutcome G = Cache->gc({AId});
    EXPECT_EQ(G.Dropped, 0u)
        << "recently-live programs must survive a restart's gc";
    EXPECT_EQ(G.Kept, AStores + BStores);
    EXPECT_EQ(G.ManifestLive, 1u)
        << "exactly one program (B) is alive only through the manifest";
  }

  {
    // With the manifest contribution disabled the old semantics return:
    // anything outside the caller's live set is collected immediately.
    std::unique_ptr<ProofCache> Cache = mustOpen(Dir.str());
    ASSERT_NE(Cache, nullptr);
    Cache->setGcManifestMaxAge(0);
    ProofCache::GcOutcome G = Cache->gc({AId});
    EXPECT_EQ(G.Dropped, BStores);
    EXPECT_EQ(G.Kept, AStores);
    EXPECT_EQ(G.ManifestLive, 0u);
  }

  // The manifest itself is metadata, never a collectable entry.
  EXPECT_TRUE(fs::exists(fs::path(Dir.str()) / "gc.manifest"));
}

TEST(ProofCache, GcManifestExpiredStampsDoNotKeepEntriesAlive) {
  TempDir Dir("cache-gc-manifest-age");
  ProgramPtr A = kernels::load(kernels::ssh2());
  ProgramPtr B = kernels::load(kernels::car());
  std::string AId =
      ProofCache::declId(ProgramFingerprints::compute(*A).DeclFp);
  std::string BId =
      ProofCache::declId(ProgramFingerprints::compute(*B).DeclFp);
  {
    std::unique_ptr<ProofCache> Cache = mustOpen(Dir.str());
    ASSERT_NE(Cache, nullptr);
    SchedulerOptions S;
    S.Cache = Cache.get();
    verifyPrograms({A.get()}, S);
    verifyPrograms({B.get()}, S);
    Cache->gc({AId, BId});
  }
  // Rewrite B's stamp as ancient so the window has lapsed.
  fs::path Manifest = fs::path(Dir.str()) / "gc.manifest";
  std::string Bytes = readAll(Manifest.string());
  size_t Pos = Bytes.find("\"" + BId + "\":");
  ASSERT_NE(Pos, std::string::npos) << Bytes;
  size_t ValStart = Pos + BId.size() + 3;
  size_t ValEnd = Bytes.find_first_of(",}", ValStart);
  ASSERT_NE(ValEnd, std::string::npos);
  Bytes.replace(ValStart, ValEnd - ValStart, "1");
  writeAll(Manifest.string(), Bytes);

  std::unique_ptr<ProofCache> Cache = mustOpen(Dir.str());
  ASSERT_NE(Cache, nullptr);
  ProofCache::GcOutcome G = Cache->gc({AId});
  EXPECT_GT(G.Dropped, 0u)
      << "an expired manifest stamp must not keep dead entries alive";
  EXPECT_EQ(G.ManifestLive, 0u);
}

} // namespace
} // namespace reflex
