//===- tests/prover_test.cc - Trace-property prover tests -------*- C++ -*-===//
//
// Exercises each discharge mechanism of §5.1 in isolation on minimal
// kernels: local obligations, branch-condition invariants, nested
// induction, the component-origin and failed-lookup axioms — plus the
// prover's honest incompleteness (Unknown, never a false Proved).
//
//===----------------------------------------------------------------------===//

#include "test_util.h"

#include "kernels/kernels.h"

namespace reflex {
namespace {

void expectProved(const std::string &Src, const std::string &Prop) {
  ProgramPtr P = mustLoad(Src);
  ASSERT_NE(P, nullptr);
  PropertyResult R = verifyOne(*P, Prop);
  EXPECT_EQ(R.Status, VerifyStatus::Proved) << Prop << ": " << R.Reason;
  EXPECT_TRUE(R.CertChecked);
}

void expectUnknown(const std::string &Src, const std::string &Prop) {
  ProgramPtr P = mustLoad(Src);
  ASSERT_NE(P, nullptr);
  PropertyResult R = verifyOne(*P, Prop);
  EXPECT_EQ(R.Status, VerifyStatus::Unknown) << Prop;
  EXPECT_FALSE(R.Reason.empty());
}

const char Pingpong[] = R"(
component A "a";
component B "b";
message Ping(num);
message Pong(num);
message Mark(num);
var seen: bool = false;
init {
  X <- spawn A();
  Y <- spawn B();
}
)";

TEST(Prover, EnsuresAndImmAfterLocal) {
  std::string Src = std::string(Pingpong) + R"(
handler A => Ping(n) {
  send(Y, Pong(n));
  send(Y, Mark(n));
}
property SameExchange: forall n.
  [Recv(A, Ping(n))] Ensures [Send(B, Mark(n))];
property Adjacent: forall n.
  [Recv(A, Ping(n))] ImmAfter [Send(B, Pong(n))];
property AdjacentPair: forall n.
  [Send(B, Pong(n))] ImmAfter [Send(B, Mark(n))];
)";
  expectProved(Src, "SameExchange");
  expectProved(Src, "Adjacent");
  expectProved(Src, "AdjacentPair");
}

TEST(Prover, ImmAfterFailsWhenNotAdjacent) {
  std::string Src = std::string(Pingpong) + R"(
handler A => Ping(n) {
  send(Y, Pong(n));
  send(Y, Pong(n + 1));
  send(Y, Mark(n));
}
property Adjacent: forall n.
  [Recv(A, Ping(n))] ImmAfter [Send(B, Mark(n))];
)";
  expectUnknown(Src, "Adjacent");
}

TEST(Prover, ImmAfterFailsWhenTriggerIsLast) {
  std::string Src = std::string(Pingpong) + R"(
handler A => Ping(n) {
  send(Y, Pong(n));
}
property PongThenMark: forall n.
  [Send(B, Pong(n))] ImmAfter [Send(B, Mark(n))];
)";
  expectUnknown(Src, "PongThenMark");
}

TEST(Prover, ImmBeforeLocal) {
  std::string Src = std::string(Pingpong) + R"(
handler A => Ping(n) {
  send(Y, Pong(n));
}
property RecvJustBefore: forall n.
  [Recv(A, Ping(n))] ImmBefore [Send(B, Pong(n))];
)";
  expectProved(Src, "RecvJustBefore");
}

TEST(Prover, EnablesViaLocalRecv) {
  std::string Src = std::string(Pingpong) + R"(
handler A => Ping(n) {
  send(Y, Pong(n));
}
property PingBeforePong: forall n.
  [Recv(A, Ping(n))] Enables [Send(B, Pong(n))];
)";
  expectProved(Src, "PingBeforePong");
}

TEST(Prover, EnablesViaGuardInvariant) {
  // The SSH authentication shape: a state pair guards the send.
  std::string Src = std::string(Pingpong) + R"(
var armed_by: num = 0;
handler B => Pong(n) {
  seen = true;
  armed_by = n;
}
handler A => Ping(n) {
  if (seen && n == armed_by) {
    send(Y, Mark(n));
  }
}
property ArmBeforeFire: forall n.
  [Recv(B, Pong(n))] Enables [Send(B, Mark(n))];
)";
  expectProved(Src, "ArmBeforeFire");
}

TEST(Prover, EnablesUnknownWithoutGuard) {
  // No branch condition ties the send to any history: honest Unknown
  // (and in fact the property is false).
  std::string Src = std::string(Pingpong) + R"(
handler A => Ping(n) {
  send(Y, Mark(n));
}
property ArmBeforeFire: forall n.
  [Recv(B, Pong(n))] Enables [Send(B, Mark(n))];
)";
  expectUnknown(Src, "ArmBeforeFire");
}

TEST(Prover, DisablesViaFlagInvariant) {
  // The car-doors shape: once the flag is up, the action is gone forever.
  std::string Src = std::string(Pingpong) + R"(
handler B => Pong(n) {
  seen = true;
}
handler A => Ping(n) {
  if (!seen) {
    send(Y, Mark(n));
  }
}
property PongKillsMark:
  [Recv(B, Pong(_))] Disables [Send(B, Mark(_))];
)";
  expectProved(Src, "PongKillsMark");
}

TEST(Prover, DisablesCounterChain) {
  // The nested-induction shape: the guard at the trigger does not survive
  // the stage-advancing handler, so the prover must strengthen through
  // the pre-state (the paper's second induction).
  std::string Src = std::string(Pingpong) + R"(
var stage: num = 0;
handler A => Ping(n) {
  if (stage == 0) {
    stage = 1;
    send(Y, Mark(1));
  } else {
    if (stage == 1) {
      stage = 2;
      send(Y, Mark(2));
    }
  }
}
property SecondOnlyOnce:
  [Send(B, Mark(2))] Disables [Send(B, Mark(2))];
property MarkOneFirst:
  [Send(B, Mark(1))] Enables [Send(B, Mark(2))];
)";
  expectProved(Src, "SecondOnlyOnce");
  expectProved(Src, "MarkOneFirst");
}

const char LookupKernel[] = R"(
component Registry "r";
component Worker "w" { name: str };
message Register(str);
message Notify(str);
init {
  R <- spawn Registry();
}
handler Registry => Register(n) {
  lookup Worker(name == n) as w {
    send(w, Notify(n));
  } else {
    fresh <- spawn Worker(n);
  }
}
)";

TEST(Prover, DisablesViaFailedLookup) {
  expectProved(std::string(LookupKernel) + R"(
property NoDuplicateWorkers: forall n.
  [Spawn(Worker(name = n))] Disables [Spawn(Worker(name = n))];
)",
               "NoDuplicateWorkers");
}

TEST(Prover, EnablesViaComponentOrigin) {
  expectProved(std::string(LookupKernel) + R"(
property NotifyRequiresSpawn: forall n.
  [Spawn(Worker(name = n))] Enables [Send(Worker(name = n), Notify(n))];
)",
               "NotifyRequiresSpawn");
}

TEST(Prover, OriginViaSender) {
  // The webserver shape: the *sender's* own existence witnesses its spawn.
  expectProved(std::string(LookupKernel) + R"(
message FromWorker(str);
handler Worker => FromWorker(s) {
  send(R, Register(sender.name));
}
property SenderWasSpawned: forall n.
  [Spawn(Worker(name = n))] Enables [Send(Registry, Register(n))];
)",
               "SenderWasSpawned");
}

TEST(Prover, BaseCaseInitViolations) {
  // Init itself emits the trigger with no enabling action: Unknown.
  std::string Src = R"(
component A "a";
message Ping(num);
message Pong(num);
init {
  X <- spawn A();
  send(X, Pong(1));
}
property NeedsPing: forall n.
  [Recv(A, Ping(n))] Enables [Send(A, Pong(n))];
)";
  expectUnknown(Src, "NeedsPing");
}

TEST(Prover, InitCanDischargeLocally) {
  std::string Src = R"(
component A "a";
message Ping(num);
message Pong(num);
init {
  X <- spawn A();
  send(X, Ping(1));
  send(X, Pong(1));
}
property PingThenPong: forall n.
  [Send(A, Ping(n))] Enables [Send(A, Pong(n))];
)";
  expectProved(Src, "PingThenPong");
}

TEST(Prover, FdescPatternVariables) {
  // File descriptors flow through patterns like any payload: the SSH
  // PTY-handoff shape.
  std::string Src = R"(
component Term "t";
component Conn "c";
message Pty(str, fdesc);
message Handoff(str, fdesc);
init {
  T <- spawn Term();
  C <- spawn Conn();
}
handler Term => Pty(u, fd) {
  send(C, Handoff(u, fd));
}
property ExactDescriptor: forall u, fd.
  [Recv(Term, Pty(u, fd))] Enables [Send(Conn, Handoff(u, fd))];
)";
  expectProved(Src, "ExactDescriptor");
}

TEST(Prover, DisablesBaseCaseInInit) {
  // Init emits the disabling action and then the trigger: Unknown (and
  // genuinely false).
  std::string Src = R"(
component A "a";
message Kill();
message Go();
init {
  X <- spawn A();
  send(X, Kill());
  send(X, Go());
}
property KillStopsGo:
  [Send(A, Kill())] Disables [Send(A, Go())];
)";
  expectUnknown(Src, "KillStopsGo");
  // The other order is fine.
  std::string Ok = R"(
component A "a";
message Kill();
message Go();
init {
  X <- spawn A();
  send(X, Go());
  send(X, Kill());
}
property KillStopsGo:
  [Send(A, Kill())] Disables [Send(A, Go())];
)";
  expectProved(Ok, "KillStopsGo");
}

TEST(Prover, UnhandledRecvCanBeATrigger) {
  // Recv actions exist for every (component type, message type), even
  // without a handler; a trigger matching such a Recv generates real
  // obligations.
  std::string Src = std::string(Pingpong) + R"(
property PongNeedsMark: forall n.
  [Send(B, Mark(n))] Enables [Recv(B, Pong(n))];
)";
  // No handler ever receives Pong from B... but the default handler's
  // Recv emission makes the trigger reachable, with no Mark ever sent
  // before it: Unknown.
  expectUnknown(Src, "PongNeedsMark");
}

TEST(Prover, LiteralPayloadsDiscriminate) {
  // Mark(1) vs Mark(2): literal patterns must not cross-match.
  std::string Src = std::string(Pingpong) + R"(
handler A => Ping(n) {
  send(Y, Mark(1));
}
property OnlyOne:
  [Send(B, Mark(2))] Disables [Send(B, Mark(2))];
)";
  // Vacuously true: Mark(2) is never sent; every case discharges as
  // no-trigger or structurally-impossible.
  expectProved(Src, "OnlyOne");
}

TEST(Prover, CertificateShape) {
  std::string Src = std::string(Pingpong) + R"(
handler B => Pong(n) {
  seen = true;
}
handler A => Ping(n) {
  if (seen) {
    send(Y, Mark(n));
  }
}
property PongBeforeMark:
  [Recv(B, Pong(_))] Enables [Send(B, Mark(_))];
)";
  ProgramPtr P = mustLoad(Src);
  PropertyResult R = verifyOne(*P, "PongBeforeMark");
  ASSERT_EQ(R.Status, VerifyStatus::Proved);
  // The certificate must contain an invariant-history step referencing a
  // recorded invariant with the {seen} guard.
  bool FoundInvariantStep = false;
  for (const ProofStep &S : R.Cert.Steps)
    if (S.Kind == Justify::InvariantHistory) {
      FoundInvariantStep = true;
      EXPECT_NE(R.Cert.findInvariant(S.InvariantId), nullptr);
    }
  EXPECT_TRUE(FoundInvariantStep);
  ASSERT_FALSE(R.Cert.Invariants.empty());
  EXPECT_FALSE(R.Cert.Invariants[0].Forbids);
  // And it exports as JSON mentioning the guard variable.
  VerifySession S(*P);
  PropertyResult R2 = S.verify(*P->findProperty("PongBeforeMark"));
  std::string Json = R2.Cert.toJson(S.termContext());
  EXPECT_NE(Json.find("\"seen\""), std::string::npos);
  EXPECT_NE(Json.find("invariant-history"), std::string::npos);
}

TEST(Prover, OptionsDoNotChangeVerdicts) {
  // All four optimization configurations agree on a mixed kernel.
  std::string Src = std::string(Pingpong) + R"(
handler B => Pong(n) {
  seen = true;
}
handler A => Ping(n) {
  if (seen) {
    send(Y, Mark(n));
  }
}
property PongBeforeMark:
  [Recv(B, Pong(_))] Enables [Send(B, Mark(_))];
property Impossible: forall n.
  [Recv(A, Ping(n))] ImmAfter [Send(B, Pong(n))];
)";
  ProgramPtr P = mustLoad(Src);
  for (bool Skip : {false, true})
    for (bool Simplify : {false, true})
      for (bool Cache : {false, true}) {
        VerifyOptions O;
        O.SyntacticSkip = Skip;
        O.Simplify = Simplify;
        O.CacheInvariants = Cache;
        VerificationReport Rep = verifyProgram(*P, O);
        EXPECT_EQ(Rep.Results[0].Status, VerifyStatus::Proved)
            << Skip << Simplify << Cache;
        EXPECT_EQ(Rep.Results[1].Status, VerifyStatus::Unknown)
            << Skip << Simplify << Cache;
      }
}

//===----------------------------------------------------------------------===//
// The PDR engine (verify/pdr.h) and the portfolio (verify/engine.h)
//===----------------------------------------------------------------------===//

TEST(Pdr, SeparatesFromInductionOnPdrlock) {
  // pdrlock's property needs a mutually inductive strengthening:
  // induction's hierarchical guard chasing cycles and gives up, PDR's
  // frames close the mutual dependency (kernels/pdrlock.cc).
  ProgramPtr P = kernels::load(kernels::pdrlock());
  ASSERT_NE(P, nullptr);

  VerifyOptions Ind;
  Ind.Engine = EngineKind::Induction;
  PropertyResult IndR = verifyOne(*P, "RogueNeedsBlessing", Ind);
  EXPECT_EQ(IndR.Status, VerifyStatus::Unknown) << IndR.Reason;
  EXPECT_EQ(IndR.ServedBy, "induction");

  VerifyOptions Pdr;
  Pdr.Engine = EngineKind::Pdr;
  PropertyResult PdrR = verifyOne(*P, "RogueNeedsBlessing", Pdr);
  EXPECT_EQ(PdrR.Status, VerifyStatus::Proved) << PdrR.Reason;
  EXPECT_TRUE(PdrR.CertChecked);
  EXPECT_EQ(PdrR.ServedBy, "pdr");
  EXPECT_EQ(PdrR.Cert.Engine, "pdr");
  // The discovered invariant is the two-clause conjunction
  // {!armed, !primed}.
  EXPECT_EQ(PdrR.Cert.InvClauses.size(), 2u);

  VerifyOptions Port;
  Port.Engine = EngineKind::Portfolio;
  PropertyResult PortR = verifyOne(*P, "RogueNeedsBlessing", Port);
  EXPECT_EQ(PortR.Status, VerifyStatus::Proved) << PortR.Reason;
  EXPECT_EQ(PortR.ServedBy, "pdr");
  EXPECT_EQ(PortR.CertJson, PdrR.CertJson)
      << "the portfolio must serve the PDR proof byte-identically";
}

TEST(Pdr, AgreesWithInductionOnLocallyDischargeable) {
  // A property every engine discharges without frames: the obligation
  // scan (shared with induction) finds the trigger in the same path, so
  // PDR proves it with an empty clause set.
  std::string Src = std::string(Pingpong) + R"(
handler A => Ping(n) {
  send(Y, Pong(n));
}
property PingBeforePong: forall n.
  [Recv(A, Ping(n))] Enables [Send(B, Pong(n))];
)";
  ProgramPtr P = mustLoad(Src);
  ASSERT_NE(P, nullptr);
  VerifyOptions Pdr;
  Pdr.Engine = EngineKind::Pdr;
  PropertyResult R = verifyOne(*P, "PingBeforePong", Pdr);
  EXPECT_EQ(R.Status, VerifyStatus::Proved) << R.Reason;
  EXPECT_TRUE(R.CertChecked);
  EXPECT_TRUE(R.Cert.InvClauses.empty());
}

TEST(Pdr, HonestUnknownOnUnconditionalEmission) {
  // The emission has no state-pure pre-state to block (the handler sends
  // unconditionally), so PDR reports Unknown with a reason — never a
  // false Proved.
  std::string Src = std::string(Pingpong) + R"(
handler A => Ping(n) {
  send(Y, Mark(n));
}
property ArmBeforeFire: forall n.
  [Recv(B, Pong(n))] Enables [Send(B, Mark(n))];
)";
  ProgramPtr P = mustLoad(Src);
  ASSERT_NE(P, nullptr);
  VerifyOptions Pdr;
  Pdr.Engine = EngineKind::Pdr;
  PropertyResult R = verifyOne(*P, "ArmBeforeFire", Pdr);
  EXPECT_EQ(R.Status, VerifyStatus::Unknown);
  EXPECT_FALSE(R.Reason.empty());
}

// pdrlock with the bootstrap deadlock broken: Boot primes the interlock
// from any unarmed state, so the rogue emission is genuinely reachable
// and the property is false.
const char PdrBoot[] = R"(
component Driver "driver.py";
component Sink "sink.c";
message Boot();
message Commit();
message Bless(str);
message Fire(str);
message Blessed(str);
message Rogue(str);
var armed: bool = false;
var primed: bool = false;
init {
  D <- spawn Driver();
  S <- spawn Sink();
}
handler Driver => Boot() {
  if (!armed) {
    primed = true;
  }
}
handler Driver => Commit() {
  if (primed) {
    armed = true;
  }
}
handler Driver => Bless(u) {
  send(S, Blessed(u));
}
handler Driver => Fire(u) {
  if (armed) {
    send(S, Rogue(u));
  }
}
property RogueNeedsBlessing: forall u.
  [Send(Sink, Blessed(u))] Enables [Send(Sink, Rogue(u))];
)";

TEST(Pdr, RefutesWithConcreteConfirmedTrace) {
  // PDR's backward chase reaches the initial states; the abstract
  // counterexample is replayed by bounded concrete search, so Refuted
  // carries a real trace exactly like BMC's.
  ProgramPtr P = mustLoad(PdrBoot);
  ASSERT_NE(P, nullptr);
  VerifyOptions Pdr;
  Pdr.Engine = EngineKind::Pdr;
  PropertyResult R = verifyOne(*P, "RogueNeedsBlessing", Pdr);
  EXPECT_EQ(R.Status, VerifyStatus::Refuted) << R.Reason;
  EXPECT_FALSE(R.Counterexample.Actions.empty());
  EXPECT_FALSE(R.Reason.empty());

  // Induction alone cannot decide it...
  VerifyOptions Ind;
  Ind.Engine = EngineKind::Induction;
  PropertyResult IndR = verifyOne(*P, "RogueNeedsBlessing", Ind);
  EXPECT_EQ(IndR.Status, VerifyStatus::Unknown);

  // ...so the portfolio serves PDR's sound refutation.
  VerifyOptions Port;
  Port.Engine = EngineKind::Portfolio;
  PropertyResult PortR = verifyOne(*P, "RogueNeedsBlessing", Port);
  EXPECT_EQ(PortR.Status, VerifyStatus::Refuted);
  EXPECT_EQ(PortR.ServedBy, "pdr");
  EXPECT_EQ(PortR.Reason, R.Reason);
}

TEST(Pdr, PortfolioPrefersInductionWhenBothProve) {
  // Canonical selection: when induction proves, its certificate is
  // served regardless of which engine finished first (verdicts must be
  // functions of (program, property, options), not of the race).
  std::string Src = std::string(Pingpong) + R"(
handler A => Ping(n) {
  send(Y, Pong(n));
}
property PingBeforePong: forall n.
  [Recv(A, Ping(n))] Enables [Send(B, Pong(n))];
)";
  ProgramPtr P = mustLoad(Src);
  ASSERT_NE(P, nullptr);
  VerifyOptions Port;
  Port.Engine = EngineKind::Portfolio;
  PropertyResult R = verifyOne(*P, "PingBeforePong", Port);
  EXPECT_EQ(R.Status, VerifyStatus::Proved) << R.Reason;
  EXPECT_EQ(R.ServedBy, "induction");
  VerifyOptions Ind;
  PropertyResult IndR = verifyOne(*P, "PingBeforePong", Ind);
  EXPECT_EQ(R.CertJson, IndR.CertJson);
}

TEST(Pdr, NonTracePropertiesFallBackToInduction) {
  // NI properties have no transition-relation formulation here; every
  // engine choice serves them through the induction path.
  ProgramPtr P = kernels::load(kernels::ssh2());
  ASSERT_NE(P, nullptr);
  for (EngineKind K : {EngineKind::Pdr, EngineKind::Portfolio}) {
    VerifyOptions O;
    O.Engine = K;
    VerificationReport Rep = verifyProgram(*P, O);
    for (const PropertyResult &R : Rep.Results) {
      const Property *Prop = P->findProperty(R.Name);
      if (Prop && !Prop->isTrace())
        EXPECT_EQ(R.ServedBy, "induction") << R.Name;
    }
  }
}

} // namespace
} // namespace reflex
