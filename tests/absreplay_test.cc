//===- tests/absreplay_test.cc - Trace inclusion tests ----------*- C++ -*-===//
//
// Tests the dynamic stand-in for the paper's once-and-for-all soundness
// theorem: concrete traces replay into the behavioral abstraction, and
// corrupted traces (actions the program could not have produced) are
// rejected.
//
//===----------------------------------------------------------------------===//

#include "test_util.h"
#include "verify/absreplay.h"

namespace reflex {
namespace {

const char Kernel[] = R"(
component A "a";
component B "b" { tag: str };
message Ping(num);
message Pong(num);
message Make(str);
message Fetch(str);
var count: num = 0;
init {
  X <- spawn A();
}
handler A => Ping(n) {
  if (n == count) {
    count = count + 1;
    send(X, Pong(count));
  }
}
handler A => Make(t) {
  lookup B(tag == t) as b {
    send(b, Ping(0));
  } else {
    fresh <- spawn B(t);
  }
}
handler A => Fetch(u) {
  r <- call "wget"(u);
  send(X, Make(r));
}
)";

struct ReplayTest : ::testing::Test {
  void SetUp() override {
    P = mustLoad(Kernel);
    ASSERT_NE(P, nullptr);
    Abs = buildBehAbs(Ctx, *P);
  }

  Trace runScripted(std::vector<Message> Requests) {
    Runtime Rt(*P,
               [&](const ComponentInstance &C)
                   -> std::unique_ptr<ComponentScript> {
                 if (C.TypeName != "A")
                   return nullptr;
                 return std::make_unique<ScriptedComponent>(
                     Requests,
                     std::map<std::string, ScriptedComponent::Responder>{});
               },
               Calls, 1);
    Rt.start();
    Rt.run(100);
    return Rt.trace();
  }

  ProgramPtr P;
  TermContext Ctx;
  BehAbs Abs;
  CallRegistry Calls;
};

TEST_F(ReplayTest, StraightLineRunIncluded) {
  Trace Tr = runScripted({msg("Ping", {Value::num(0)}),
                          msg("Ping", {Value::num(1)}),
                          msg("Ping", {Value::num(5)})});
  ReplayResult R = replayTrace(Ctx, *P, Abs, Tr);
  EXPECT_TRUE(R.Included) << R.Why;
  EXPECT_EQ(R.Exchanges, 3u);
}

TEST_F(ReplayTest, LookupBothBranchesIncluded) {
  Trace Tr = runScripted({msg("Make", {Value::str("x")}),
                          msg("Make", {Value::str("x")}),
                          msg("Make", {Value::str("y")})});
  ReplayResult R = replayTrace(Ctx, *P, Abs, Tr);
  EXPECT_TRUE(R.Included) << R.Why;
}

TEST_F(ReplayTest, CallResultsReplayFromTrace) {
  Calls.add("wget", [](const std::vector<Value> &Args) {
    return Value::str("page:" + Args[0].asStr());
  });
  Trace Tr = runScripted({msg("Fetch", {Value::str("u1")})});
  ReplayResult R = replayTrace(Ctx, *P, Abs, Tr);
  EXPECT_TRUE(R.Included) << R.Why;
}

TEST_F(ReplayTest, ForgedSendRejected) {
  Trace Tr = runScripted({msg("Ping", {Value::num(0)})});
  // Forge an extra send the kernel never performed.
  Message Evil;
  Evil.Name = "Pong";
  Evil.Args = {Value::num(99)};
  Tr.Actions.push_back(Action::send(0, Evil));
  ReplayResult R = replayTrace(Ctx, *P, Abs, Tr);
  EXPECT_FALSE(R.Included);
}

TEST_F(ReplayTest, WrongPayloadRejected) {
  Trace Tr = runScripted({msg("Ping", {Value::num(0)})});
  // Tamper with the payload of the genuine Pong (count+1 == 1 -> 42).
  for (Action &A : Tr.Actions)
    if (A.Kind == Action::Send)
      A.Msg.Args[0] = Value::num(42);
  ReplayResult R = replayTrace(Ctx, *P, Abs, Tr);
  EXPECT_FALSE(R.Included);
}

TEST_F(ReplayTest, DroppedResponseRejected) {
  Trace Tr = runScripted({msg("Ping", {Value::num(0)})});
  // Remove the kernel's response: the Ping exchange no longer matches any
  // path (the taken branch requires the send).
  ASSERT_EQ(Tr.Actions.back().Kind, Action::Send);
  Tr.Actions.pop_back();
  ReplayResult R = replayTrace(Ctx, *P, Abs, Tr);
  EXPECT_FALSE(R.Included);
}

TEST_F(ReplayTest, WrongBranchRejected) {
  // A response where the branch condition was false.
  Trace Tr = runScripted({msg("Ping", {Value::num(7)})}); // 7 != count: quiet
  Message Forged;
  Forged.Name = "Pong";
  Forged.Args = {Value::num(1)};
  Tr.Actions.push_back(Action::send(0, Forged));
  ReplayResult R = replayTrace(Ctx, *P, Abs, Tr);
  EXPECT_FALSE(R.Included);
}

} // namespace
} // namespace reflex
