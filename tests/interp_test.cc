//===- tests/interp_test.cc - Interpreter and runtime tests -----*- C++ -*-===//

#include "test_util.h"

namespace reflex {
namespace {

const char Kernel[] = R"(
component A "a";
component B "b" { tag: str };
message Ping(num);
message Pong(num);
message Make(str);
message Fetch(str);
var count: num = 0;
init {
  X <- spawn A();
}
handler A => Ping(n) {
  count = count + n;
  send(X, Pong(count));
}
handler A => Make(t) {
  lookup B(tag == t) as b {
    send(b, Ping(0));
  } else {
    fresh <- spawn B(t);
  }
}
handler A => Fetch(u) {
  r <- call "wget"(u);
  send(X, Make(r));
}
)";

struct InterpTest : ::testing::Test {
  void SetUp() override {
    P = mustLoad(Kernel);
    ASSERT_NE(P, nullptr);
    Eval = std::make_unique<Evaluator>(*P);
  }

  Message mk(const char *Name, std::vector<Value> Args = {}) {
    Message M;
    M.Name = Name;
    M.Args = std::move(Args);
    return M;
  }

  ProgramPtr P;
  std::unique_ptr<Evaluator> Eval;
};

TEST_F(InterpTest, InitSpawnsAndSeedsVars) {
  KernelState St;
  Eval->runInit(St, {});
  EXPECT_EQ(St.Vars.at("count"), Value::num(0));
  ASSERT_EQ(St.Tr.Components.size(), 1u);
  EXPECT_EQ(St.Tr.Components[0].TypeName, "A");
  EXPECT_EQ(St.Vars.at("X"), Value::comp(0));
  ASSERT_EQ(St.Tr.Actions.size(), 1u);
  EXPECT_EQ(St.Tr.Actions[0].Kind, Action::Spawn);
}

TEST_F(InterpTest, ExchangeRecordsSelectRecvAndEffects) {
  KernelState St;
  std::vector<Message> Sent;
  EffectHooks Hooks;
  Hooks.OnSend = [&](const ComponentInstance &, const Message &M) {
    Sent.push_back(M);
  };
  Eval->runInit(St, Hooks);
  Eval->runExchange(St, 0, mk("Ping", {Value::num(5)}), Hooks);
  // Trace: Spawn, Select, Recv, Send.
  ASSERT_EQ(St.Tr.Actions.size(), 4u);
  EXPECT_EQ(St.Tr.Actions[1].Kind, Action::Select);
  EXPECT_EQ(St.Tr.Actions[2].Kind, Action::Recv);
  EXPECT_EQ(St.Tr.Actions[3].Kind, Action::Send);
  EXPECT_EQ(St.Vars.at("count"), Value::num(5));
  ASSERT_EQ(Sent.size(), 1u);
  EXPECT_EQ(Sent[0].Args[0], Value::num(5));
  // Second exchange accumulates.
  Eval->runExchange(St, 0, mk("Ping", {Value::num(2)}), Hooks);
  EXPECT_EQ(St.Vars.at("count"), Value::num(7));
}

TEST_F(InterpTest, UnhandledMessageIsNoResponse) {
  KernelState St;
  Eval->runInit(St, {});
  Eval->runExchange(St, 0, mk("Pong", {Value::num(1)}), {});
  // Select + Recv recorded, nothing else, no state change.
  ASSERT_EQ(St.Tr.Actions.size(), 3u);
  EXPECT_EQ(St.Vars.at("count"), Value::num(0));
}

TEST_F(InterpTest, LookupOldestFirstAndSpawn) {
  KernelState St;
  Eval->runInit(St, {});
  Eval->runExchange(St, 0, mk("Make", {Value::str("x")}), {});
  ASSERT_EQ(St.Tr.Components.size(), 2u);
  EXPECT_EQ(St.Tr.Components[1].Config[0], Value::str("x"));
  // Second Make("x") finds the existing one: sends Ping(0) to it.
  std::vector<int64_t> Targets;
  EffectHooks Hooks;
  Hooks.OnSend = [&](const ComponentInstance &C, const Message &) {
    Targets.push_back(C.Id);
  };
  Eval->runExchange(St, 0, mk("Make", {Value::str("x")}), Hooks);
  EXPECT_EQ(St.Tr.Components.size(), 2u) << "no duplicate spawn";
  ASSERT_EQ(Targets.size(), 1u);
  EXPECT_EQ(Targets[0], 1);
}

TEST_F(InterpTest, CallsUseHooksAndRecordActions) {
  KernelState St;
  EffectHooks Hooks;
  Hooks.OnCall = [](const std::string &Fn, const std::vector<Value> &Args) {
    EXPECT_EQ(Fn, "wget");
    return Value::str("fetched:" + Args[0].asStr());
  };
  std::vector<Message> Sent;
  Hooks.OnSend = [&](const ComponentInstance &, const Message &M) {
    Sent.push_back(M);
  };
  Eval->runInit(St, Hooks);
  Eval->runExchange(St, 0, mk("Fetch", {Value::str("url")}), Hooks);
  ASSERT_EQ(Sent.size(), 1u);
  EXPECT_EQ(Sent[0].Args[0], Value::str("fetched:url"));
  // The Call action is in the trace with its result.
  bool SawCall = false;
  for (const Action &A : St.Tr.Actions)
    if (A.Kind == Action::Call) {
      SawCall = true;
      EXPECT_EQ(A.CallResult, Value::str("fetched:url"));
    }
  EXPECT_TRUE(SawCall);
}

TEST_F(InterpTest, StateHashDistinguishes) {
  KernelState A, B;
  Eval->runInit(A, {});
  Eval->runInit(B, {});
  EXPECT_EQ(A.stateHash(), B.stateHash());
  Eval->runExchange(B, 0, mk("Ping", {Value::num(1)}), {});
  EXPECT_NE(A.stateHash(), B.stateHash());
}

TEST(Runtime, ScriptsDriveTheLoop) {
  ProgramPtr P = mustLoad(Kernel);
  struct Pinger : ComponentScript {
    void onStart() override { sendToKernel(msg("Ping", {Value::num(1)})); }
    void onMessage(const Message &M) override {
      if (M.Name == "Pong" && M.Args[0].asNum() < 4)
        sendToKernel(msg("Ping", {Value::num(1)}));
    }
  };
  Runtime Rt(*P,
             [](const ComponentInstance &C)
                 -> std::unique_ptr<ComponentScript> {
               if (C.TypeName == "A")
                 return std::make_unique<Pinger>();
               return nullptr;
             },
             CallRegistry(), 1);
  Rt.start();
  size_t Steps = Rt.run(100);
  EXPECT_EQ(Steps, 4u) << "ping until count reaches 4";
  EXPECT_EQ(Rt.state().Vars.at("count"), Value::num(4));
}

TEST(Runtime, DeterministicUnderSeed) {
  ProgramPtr P = mustLoad(Kernel);
  auto Factory = [](const ComponentInstance &C)
      -> std::unique_ptr<ComponentScript> {
    if (C.TypeName != "A")
      return nullptr;
    return std::make_unique<ScriptedComponent>(
        std::vector<Message>{msg("Ping", {Value::num(1)}),
                             msg("Make", {Value::str("b")}),
                             msg("Ping", {Value::num(2)})},
        std::map<std::string, ScriptedComponent::Responder>{});
  };
  Runtime R1(*P, Factory, CallRegistry(), 99);
  Runtime R2(*P, Factory, CallRegistry(), 99);
  R1.start();
  R2.start();
  R1.run(50);
  R2.run(50);
  EXPECT_EQ(R1.trace().str(), R2.trace().str());
}

TEST(Runtime, MonitorFlagsViolations) {
  // A kernel that violates its own declared property at runtime.
  const char Bad[] = R"(
component A "a";
message Ping(num);
message Mark(num);
init { X <- spawn A(); }
handler A => Ping(n) { send(X, Mark(n)); }
property Impossible:
  [Recv(A, Mark(_))] Enables [Send(A, Mark(_))];
)";
  ProgramPtr P = mustLoad(Bad);
  Runtime Rt(*P,
             [](const ComponentInstance &)
                 -> std::unique_ptr<ComponentScript> {
               return std::make_unique<ScriptedComponent>(
                   std::vector<Message>{msg("Ping", {Value::num(1)})},
                   std::map<std::string, ScriptedComponent::Responder>{});
             },
             CallRegistry(), 1);
  Rt.enableMonitor();
  Rt.start();
  Rt.run(10);
  ASSERT_TRUE(Rt.lastViolation().has_value());
  EXPECT_NE(Rt.lastViolation()->Explanation.find("Mark"), std::string::npos);
}

} // namespace
} // namespace reflex
