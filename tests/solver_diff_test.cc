//===- tests/solver_diff_test.cc - Incremental solver differential --------===//
//
// Differential testing of the incremental assumption-based solver core
// against the from-scratch reference algorithm, at three levels:
//
//  1. seeded random literal sets, randomly partitioned into nested
//     assertion scopes plus a final assumption set: scoped incremental
//     checks must return the same SatResult as the reference solving the
//     flattened set — memo off (real solving), memo on (transparency),
//     and logging on (recording must not change answers);
//
//  2. whole-system verdict parity: every example kernel (plus pdrlock)
//     under every engine, verified at jobs 1 vs 4, sharing on vs off,
//     and under an injected first-attempt-crash fault plan — the full
//     per-property verdict JSON (status, reason, certificate bytes,
//     engine) must be byte-identical to the sequential reference;
//
//  3. the solver-level proof log: recorded reason trails replay through
//     the independent validator, tampered trails are rejected, and the
//     rendered log is deterministic across sessions.
//
// Also pins the SharedSolverMemo publication contract: assumption-scoped
// checks must never publish to the cross-worker tier (their keys cover
// scope-local literals other workers cannot see).
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"
#include "service/scheduler.h"
#include "support/faultinject.h"
#include "support/rng.h"
#include "sym/solver.h"
#include "test_util.h"

#include <sstream>

namespace reflex {
namespace {

//===----------------------------------------------------------------------===//
// 1. Randomized scoped-vs-scratch differential
//===----------------------------------------------------------------------===//

class SolverDiff : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverDiff, ScopedChecksMatchScratchReference) {
  Rng Rand(GetParam());
  unsigned Unsat = 0, Maybe = 0;
  for (int Round = 0; Round < 300; ++Round) {
    TermContext Ctx;
    TermRef Vars[4] = {Ctx.stateSym("x", BaseType::Num),
                       Ctx.stateSym("y", BaseType::Num),
                       Ctx.stateSym("z", BaseType::Num),
                       Ctx.stateSym("w", BaseType::Num)};
    TermRef B0 = Ctx.stateSym("b0", BaseType::Bool);
    TermRef B1 = Ctx.stateSym("b1", BaseType::Bool);

    auto RandNumTerm = [&]() -> TermRef {
      switch (Rand.below(4)) {
      case 0:
      case 1:
        return Vars[Rand.below(4)];
      case 2:
        return Ctx.numLit(static_cast<int64_t>(Rand.below(4)));
      default:
        return Ctx.add(Vars[Rand.below(4)],
                       Ctx.numLit(static_cast<int64_t>(Rand.below(3))));
      }
    };
    auto RandLit = [&]() -> Lit {
      bool Pos = Rand.chance(2, 3);
      switch (Rand.below(5)) {
      case 0:
        return Lit(Ctx.eq(RandNumTerm(), RandNumTerm()), Pos);
      case 1:
        return Lit(Ctx.lt(RandNumTerm(), RandNumTerm()), Pos);
      case 2:
        return Lit(Ctx.le(RandNumTerm(), RandNumTerm()), Pos);
      case 3:
        return Lit(B0, Pos);
      default:
        return Lit(B1, Pos);
      }
    };

    // Random nested scopes (0-3 scopes of 0-3 literals each) plus a
    // final assumption set (0-3 literals).
    std::vector<std::vector<Lit>> Scopes(Rand.below(4));
    for (std::vector<Lit> &Sc : Scopes)
      for (size_t I = Rand.below(4); I > 0; --I)
        Sc.push_back(RandLit());
    std::vector<Lit> Assume;
    for (size_t I = Rand.below(4); I > 0; --I)
      Assume.push_back(RandLit());

    std::vector<Lit> Flat;
    for (const std::vector<Lit> &Sc : Scopes)
      Flat.insert(Flat.end(), Sc.begin(), Sc.end());
    Flat.insert(Flat.end(), Assume.begin(), Assume.end());

    // Reference: the original algorithm over the flattened set.
    Solver Ref(Ctx);
    Ref.setMemoEnabled(false);
    Ref.setIncrementalEnabled(false);
    SatResult Want = Ref.checkLits(Flat);

    // Incremental, memo off: real scoped solving.
    Solver Inc(Ctx);
    Inc.setMemoEnabled(false);
    {
      std::vector<std::unique_ptr<Solver::Scope>> Open;
      for (const std::vector<Lit> &Sc : Scopes)
        Open.push_back(std::make_unique<Solver::Scope>(Inc, Sc));
      ASSERT_EQ(Inc.checkAssuming(Assume), Want)
          << "seed " << GetParam() << " round " << Round;
      // The same check after an unrelated sibling scope detour: pop must
      // fully rewind the congruence closure.
      if (!Scopes.empty()) {
        { Solver::Scope Detour(Inc, {RandLit()}); (void)Inc.check(); }
        ASSERT_EQ(Inc.checkAssuming(Assume), Want)
            << "after detour: seed " << GetParam() << " round " << Round;
      }
    }
    ASSERT_EQ(Inc.scopeDepth(), 0u);

    // Incremental, memo on + logging on: both must be invisible.
    Solver Memo(Ctx);
    Memo.setLogEnabled(true);
    {
      std::vector<std::unique_ptr<Solver::Scope>> Open;
      for (const std::vector<Lit> &Sc : Scopes)
        Open.push_back(std::make_unique<Solver::Scope>(Memo, Sc));
      ASSERT_EQ(Memo.checkAssuming(Assume), Want);
      ASSERT_EQ(Memo.checkAssuming(Assume), Want) << "memo hit changed it";
    }
    // Every recorded trail replays through the independent validator.
    for (const ReasonTrail &T : Memo.reasonTrails()) {
      std::string Why;
      EXPECT_TRUE(replayReasonTrail(Ctx, T, Why)) << Why;
    }

    (Want == SatResult::Unsat ? Unsat : Maybe) += 1;
  }
  // The generator must exercise both answers, or the diff is vacuous.
  EXPECT_GT(Unsat, 25u);
  EXPECT_GT(Maybe, 25u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverDiff,
                         ::testing::Values(3u, 33u, 333u, 3333u));

//===----------------------------------------------------------------------===//
// 2. Whole-system verdict parity across execution configurations
//===----------------------------------------------------------------------===//

/// The full verdict content of a report: everything except work/timing
/// counters and attempt counts (retries legitimately vary under fault
/// injection; verdicts must not).
std::string verdictJson(const VerificationReport &R) {
  std::ostringstream OS;
  for (const PropertyResult &PR : R.Results)
    OS << PR.Name << "|" << verifyStatusName(PR.Status) << "|" << PR.Reason
       << "|" << PR.ServedBy << "|" << PR.CertChecked << "|" << PR.CertJson
       << "\n";
  return OS.str();
}

TEST(SolverParity, VerdictsIdenticalAcrossJobsSharingEnginesAndFaults) {
  std::vector<ProgramPtr> Programs;
  for (const kernels::KernelDef *K : kernels::all())
    Programs.push_back(kernels::load(*K));
  Programs.push_back(kernels::load(kernels::pdrlock()));

  // Every first attempt crashes; the retry must reproduce the verdict.
  FaultPlan FirstAttemptCrash;
  FirstAttemptCrash.addRule({"worker", "#0", FaultKind::Fail});

  for (EngineKind Eng :
       {EngineKind::Induction, EngineKind::Pdr, EngineKind::Portfolio}) {
    for (const ProgramPtr &P : Programs) {
      SchedulerOptions RefOpts;
      RefOpts.Jobs = 1;
      RefOpts.SharedCaches = false;
      RefOpts.Verify.Engine = Eng;
      std::string Ref =
          verdictJson(verifyPrograms({P.get()}, RefOpts).Reports[0]);

      auto Check = [&](SchedulerOptions O, const char *What) {
        O.Verify.Engine = Eng;
        std::string Got = verdictJson(verifyPrograms({P.get()}, O).Reports[0]);
        EXPECT_EQ(Got, Ref) << P->Name << " engine " << unsigned(Eng)
                            << " config: " << What;
      };

      SchedulerOptions J4;
      J4.Jobs = 4;
      Check(J4, "jobs=4 sharing=on");

      SchedulerOptions J4Private;
      J4Private.Jobs = 4;
      J4Private.SharedCaches = false;
      Check(J4Private, "jobs=4 sharing=off");

      SchedulerOptions Faulted;
      Faulted.Jobs = 4;
      Faulted.Retries = 1;
      Faulted.RetryBackoffMs = 0;
      Faulted.Faults = &FirstAttemptCrash;
      Check(Faulted, "jobs=4 first-attempt-crash");
    }
  }
}

//===----------------------------------------------------------------------===//
// Shared-memo publication contract
//===----------------------------------------------------------------------===//

TEST(SolverSharedMemo, AssumptionScopedChecksAreNeverPublished) {
  // All atoms are minted in the base before the freeze: the shared tier
  // only accepts queries whose atoms the other workers' overlays share.
  TermContext Base;
  TermRef X = Base.stateSym("x", BaseType::Num);
  TermRef Y = Base.stateSym("y", BaseType::Num);
  std::vector<Lit> BasePure = {Lit(Base.eq(X, Base.numLit(1)), true),
                               Lit(Base.eq(X, Y), true)};
  std::vector<Lit> Goal = {Lit(Base.eq(Y, Base.numLit(2)), true)};
  Lit FreshGoal(Base.eq(Y, Base.numLit(3)), true);
  Base.freeze();

  TermContext Overlay(&Base);
  SharedSolverMemo Shared;
  Solver S(Overlay);
  S.setSharedMemo(&Shared);

  // Scoped checks — even over base-pure literals — stay private: the
  // memo key covers the scope stack, which other workers cannot see.
  {
    Solver::Scope Sc(S, BasePure);
    EXPECT_EQ(S.checkAssuming(Goal), SatResult::Unsat);
    EXPECT_EQ(S.check(), SatResult::Maybe);
  }
  EXPECT_EQ(Shared.size(), 0u)
      << "assumption-scoped checks must not publish to the shared tier";

  // A *fresh* base-pure query at scope 0 publishes. (The flattened form
  // of the scoped query above would not: it shares the scoped check's
  // memo key — the memo is keyed on the full literal set — so it is
  // answered privately without re-solving.)
  std::vector<Lit> Fresh = BasePure;
  Fresh.push_back(FreshGoal);
  EXPECT_EQ(S.checkLits(Fresh), SatResult::Unsat);
  EXPECT_GT(Shared.size(), 0u);
}

//===----------------------------------------------------------------------===//
// 3. Reason trails: tampering is rejected, rendering is deterministic
//===----------------------------------------------------------------------===//

class TrailTamper : public ::testing::Test {
protected:
  void SetUp() override {
    X = Ctx.stateSym("x", BaseType::Num);
    Y = Ctx.stateSym("y", BaseType::Num);
    Solver S(Ctx);
    S.setLogEnabled(true);
    Solver::Scope Sc(S, {Lit(Ctx.eq(X, Y), true),
                         Lit(Ctx.eq(X, Ctx.numLit(1)), true)});
    ASSERT_EQ(S.checkAssuming({Lit(Ctx.eq(Y, Ctx.numLit(2)), true)}),
              SatResult::Unsat);
    ASSERT_FALSE(S.reasonTrails().empty());
    Trail = S.reasonTrails().back();
    std::string Why;
    ASSERT_TRUE(replayReasonTrail(Ctx, Trail, Why)) << Why;
  }

  TermContext Ctx;
  TermRef X = nullptr, Y = nullptr;
  ReasonTrail Trail;
};

TEST_F(TrailTamper, DroppedStepIsRejected) {
  ReasonTrail T = Trail;
  ASSERT_GT(T.Steps.size(), 1u);
  T.Steps.erase(T.Steps.begin());
  std::string Why;
  EXPECT_FALSE(replayReasonTrail(Ctx, T, Why));
  EXPECT_FALSE(Why.empty());
}

TEST_F(TrailTamper, ForeignPremiseIsRejected) {
  // Rewrite every input-literal premise to a literal the query never
  // asserted: the replayer must refuse the justification.
  ReasonTrail T = Trail;
  Lit Foreign(Ctx.eq(X, Ctx.numLit(77)), true);
  bool Rewrote = false;
  for (TrailStep &St : T.Steps)
    if (St.From.Atom) {
      St.From = Foreign;
      Rewrote = true;
    }
  ASSERT_TRUE(Rewrote);
  std::string Why;
  EXPECT_FALSE(replayReasonTrail(Ctx, T, Why));
}

TEST_F(TrailTamper, EmptiedTrailIsRejected) {
  ReasonTrail T = Trail;
  T.Steps.clear();
  std::string Why;
  EXPECT_FALSE(replayReasonTrail(Ctx, T, Why));
}

TEST_F(TrailTamper, RenderingIsDeterministicAcrossSessions) {
  // A second solver, different query history first: the trail for the
  // same query must render byte-identically.
  Solver S2(Ctx);
  S2.setLogEnabled(true);
  { Solver::Scope Warm(S2, {Lit(Ctx.lt(X, Ctx.numLit(9)), true)});
    (void)S2.check(); }
  Solver::Scope Sc(S2, {Lit(Ctx.eq(X, Y), true),
                        Lit(Ctx.eq(X, Ctx.numLit(1)), true)});
  ASSERT_EQ(S2.checkAssuming({Lit(Ctx.eq(Y, Ctx.numLit(2)), true)}),
            SatResult::Unsat);
  EXPECT_EQ(formatReasonTrail(Ctx, S2.reasonTrails().back()),
            formatReasonTrail(Ctx, Trail));
}

} // namespace
} // namespace reflex
