//===- tests/refinement_test.cc - Property-based refinement -----*- C++ -*-===//
//
// The dynamic counterpart of Figure 1's once-and-for-all theorem, checked
// property-based-style across all kernels and many random schedules:
//
//  (1) every trace the interpreter produces is included in the
//      behavioral abstraction (interp ⊑ BehAbs), and
//  (2) every trace satisfies every *proved* trace property (the
//      end-to-end guarantee: prover verdicts transfer to real runs).
//
// Scheduling is the nondeterminism being swept: each seed yields a
// different interleaving of component requests.
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"
#include "test_util.h"
#include "verify/absreplay.h"

namespace reflex {
namespace {

using RefinementParam = std::tuple<const kernels::KernelDef *, uint64_t>;

class Refinement : public ::testing::TestWithParam<RefinementParam> {};

TEST_P(Refinement, TraceIncludedInBehAbsAndSatisfiesProvedProperties) {
  const auto &[K, Seed] = GetParam();
  ProgramPtr P = kernels::load(*K);

  Runtime Rt(*P, K->MakeScripts(), K->MakeCalls(), Seed);
  Rt.start();
  Rt.run(2000);
  const Trace &Tr = Rt.trace();
  ASSERT_FALSE(Tr.Actions.empty());

  // (1) Inclusion in the abstraction.
  TermContext Ctx;
  BehAbs Abs = buildBehAbs(Ctx, *P);
  ReplayResult Replay = replayTrace(Ctx, *P, Abs, Tr);
  EXPECT_TRUE(Replay.Included) << K->Name << " seed " << Seed << ": "
                               << Replay.Why;

  // (2) Every proved trace property holds on the concrete trace.
  VerifySession Session(*P);
  for (const Property &Prop : P->Properties) {
    if (!Prop.isTrace())
      continue;
    PropertyResult R = Session.verify(Prop);
    ASSERT_EQ(R.Status, VerifyStatus::Proved) << Prop.Name;
    auto V = checkTraceProperty(Tr, Prop.traceProp());
    EXPECT_FALSE(V.has_value())
        << K->Name << " seed " << Seed << " property " << Prop.Name << ": "
        << (V ? V->Explanation : "");
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsManySeeds, Refinement,
    ::testing::Combine(::testing::ValuesIn(kernels::all()),
                       ::testing::Values(1u, 7u, 42u, 1234u, 987654321u)),
    [](const ::testing::TestParamInfo<RefinementParam> &Info) {
      return std::get<0>(Info.param)->Name + "_seed" +
             std::to_string(std::get<1>(Info.param));
    });

// Prefix-closure: every prefix ending at an exchange boundary is itself a
// reachable trace and must satisfy the proved properties too (BehAbs is a
// predicate on all reachable states, not just quiescent ones).
TEST(RefinementPrefixes, SshPrefixesSatisfyProperties) {
  const kernels::KernelDef &K = kernels::ssh();
  ProgramPtr P = kernels::load(K);
  Runtime Rt(*P, K.MakeScripts(), K.MakeCalls(), 5);
  Rt.enableMonitor(); // the monitor checks after every exchange
  Rt.start();
  Rt.run(2000);
  EXPECT_FALSE(Rt.lastViolation().has_value())
      << Rt.lastViolation()->Explanation;
}

} // namespace
} // namespace reflex
