//===- tests/roundtrip_test.cc - Printer round-trips ------------*- C++ -*-===//
//
// printProgram's output must reparse to an equivalent program: we check
// print -> parse -> print is a fixpoint, for hand-written programs, all
// seven benchmark kernels, and generated chain kernels.
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"
#include "kernels/synthetic.h"
#include "test_util.h"

namespace reflex {
namespace {

void expectRoundTrip(const std::string &Source, const std::string &Label) {
  ProgramPtr P1 = mustLoad(Source);
  ASSERT_NE(P1, nullptr) << Label;
  std::string Printed1 = printProgram(*P1);
  ProgramPtr P2 = mustLoad(Printed1);
  ASSERT_NE(P2, nullptr) << Label << ": printer output failed to reparse:\n"
                         << Printed1;
  std::string Printed2 = printProgram(*P2);
  EXPECT_EQ(Printed1, Printed2) << Label << ": print->parse->print moved";
  // Structure is preserved too.
  EXPECT_EQ(P1->Components.size(), P2->Components.size());
  EXPECT_EQ(P1->Messages.size(), P2->Messages.size());
  EXPECT_EQ(P1->StateVars.size(), P2->StateVars.size());
  EXPECT_EQ(P1->Handlers.size(), P2->Handlers.size());
  EXPECT_EQ(P1->Properties.size(), P2->Properties.size());
}

TEST(RoundTrip, AllConstructs) {
  expectRoundTrip(R"(
program everything;
component C "path with spaces" { tag: str, n: num, live: bool };
component D "d";
message M(str, num, bool, fdesc);
message Empty();
var s: str = "quote\"inside";
var b: bool = false;
var n: num = 42;
init {
  X <- spawn C("x", 0, true);
  Y <- spawn D();
}
handler C => M(a, b2, c, d) {
  n = n + 1 - 2;
  s = a;
  if (!(c && b) || n < 3) {
    send(Y, Empty());
  } else {
    r <- call "fn"(a, b2);
    lookup C(tag == r, n == 0) as other {
      send(other, M(other.tag, 1, true, d));
    } else {
      Z <- spawn C(r, 9, false);
    }
  }
}
property P1: forall v.
  [Recv(C(tag = v), M(_, _, _, _))] Enables [Send(C(tag = v), M(v, 3, true, _))];
property P2: forall t.
  noninterference {
    high components: C(tag = t), D;
    high vars: n, s;
  };
)",
                  "everything");
}

TEST(RoundTrip, AllBenchmarkKernels) {
  for (const kernels::KernelDef *K : kernels::all())
    expectRoundTrip(K->Source, K->Name);
}

TEST(RoundTrip, SyntheticChains) {
  for (unsigned N : {2u, 5u, 9u})
    expectRoundTrip(kernels::syntheticChainKernel(N),
                    "chain" + std::to_string(N));
}

TEST(RoundTrip, VerificationAgreesAcrossRoundTrip) {
  // A printed-and-reparsed kernel proves exactly the same properties.
  const kernels::KernelDef &K = kernels::ssh();
  ProgramPtr P1 = kernels::load(K);
  ProgramPtr P2 = mustLoad(printProgram(*P1));
  VerificationReport R1 = verifyProgram(*P1);
  VerificationReport R2 = verifyProgram(*P2);
  ASSERT_EQ(R1.Results.size(), R2.Results.size());
  for (size_t I = 0; I < R1.Results.size(); ++I)
    EXPECT_EQ(R1.Results[I].Status, R2.Results[I].Status)
        << R1.Results[I].Name;
}

} // namespace
} // namespace reflex
