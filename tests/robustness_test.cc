//===- tests/robustness_test.cc - Whole-system robustness -------*- C++ -*-===//
//
// The system must never crash, hang, or accept garbage. Frontend: fuzz
// with random token soup, truncations of valid programs, and deeply
// nested input — every outcome is a valid Program or clean diagnostics.
// Service: seeded fault plans (cache IO faults x worker throws x budget
// exhaustion) over the full verification pipeline — every batch
// completes with worker-count-independent verdicts. Runtime: a component
// script that throws is isolated while the event loop and monitor keep
// running.
//
//===----------------------------------------------------------------------===//

#include "interp/scripts.h"
#include "kernels/kernels.h"
#include "service/scheduler.h"
#include "support/rng.h"
#include "test_util.h"

#include <filesystem>

#include <unistd.h>

namespace reflex {
namespace {

class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, RandomTokenSoupNeverCrashes) {
  static const char *Pieces[] = {
      "component", "message",  "var",    "init",   "handler", "property",
      "forall",    "send",     "spawn",  "call",   "lookup",  "if",
      "else",      "nop",      "sender", "true",   "false",   "atmostonce",
      "Enables",   "Disables", "C",      "M",      "x",       "{",
      "}",         "(",        ")",      "[",      "]",       ",",
      ";",         ":",        ".",      "=",      "==",      "!=",
      "<-",        "=>",       "&&",     "||",     "!",       "+",
      "-",         "<",        "<=",     "42",     "\"s\"",   "_",
      "num",       "str",      "bool",   "@",      "\\",
  };
  Rng Rand(GetParam());
  for (int Round = 0; Round < 200; ++Round) {
    std::string Src;
    size_t Len = Rand.below(60);
    for (size_t I = 0; I < Len; ++I) {
      Src += Pieces[Rand.below(std::size(Pieces))];
      Src += ' ';
    }
    DiagnosticEngine D;
    ProgramPtr P = parseProgram(Src, D);
    if (P) {
      // If it parses, validation must also terminate cleanly.
      validateProgram(*P, D);
    } else {
      EXPECT_TRUE(D.hasErrors()) << "null result requires diagnostics:\n"
                                 << Src;
    }
  }
}

TEST_P(ParserFuzz, TruncationsOfValidKernelsNeverCrash) {
  Rng Rand(GetParam() * 31 + 7);
  for (const kernels::KernelDef *K : kernels::all()) {
    const std::string &Src = K->Source;
    for (int Round = 0; Round < 25; ++Round) {
      std::string Cut = Src.substr(0, Rand.below(Src.size()));
      DiagnosticEngine D;
      ProgramPtr P = parseProgram(Cut, D);
      if (P)
        validateProgram(*P, D);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(11u, 22u, 33u));

TEST(Robustness, DeeplyNestedExpressionsAndBlocks) {
  // 200 levels of parenthesization and 100 nested ifs: must parse (or
  // fail) without stack issues at this depth.
  std::string Expr(200, '(');
  Expr += "0";
  Expr += std::string(200, ')');
  std::string Nest;
  for (int I = 0; I < 100; ++I)
    Nest += "if (true) {\n";
  Nest += "x = " + Expr + ";\n";
  for (int I = 0; I < 100; ++I)
    Nest += "}\n";
  std::string Src = "component C \"c\";\nmessage M();\nvar x: num = 0;\n"
                    "handler C => M() {\n" +
                    Nest + "}\n";
  ProgramPtr P = mustLoad(Src);
  ASSERT_NE(P, nullptr);
  // The whole pipeline handles it too.
  VerificationReport R = verifyProgram(*P);
  EXPECT_TRUE(R.Results.empty()); // no properties, nothing to prove
}

TEST(Robustness, VerifierIsDeterministicAcrossSessions) {
  // Two independent sessions over the same kernel produce structurally
  // identical certificates (the foundation the checker stands on).
  const kernels::KernelDef &K = kernels::ssh();
  ProgramPtr P1 = kernels::load(K);
  ProgramPtr P2 = kernels::load(K);
  VerifySession S1(*P1), S2(*P2);
  for (const Property &Prop : P1->Properties) {
    PropertyResult R1 = S1.verify(Prop);
    PropertyResult R2 = S2.verify(*P2->findProperty(Prop.Name));
    ASSERT_EQ(R1.Status, R2.Status) << Prop.Name;
    EXPECT_EQ(R1.Cert.toJson(S1.termContext()),
              R2.Cert.toJson(S2.termContext()))
        << Prop.Name;
  }
}

TEST(Robustness, SymbolicExecutionLimitsReportIncomplete) {
  // A condition that blows the DNF cap must yield Unknown, not wrong.
  std::string Cond = "b0";
  for (int I = 1; I < 16; ++I)
    Cond = "(" + Cond + " || b" + std::to_string(I) + ") && (c" +
           std::to_string(I) + " || d" + std::to_string(I) + ")";
  std::string Vars;
  for (int I = 0; I < 16; ++I) {
    Vars += "var b" + std::to_string(I) + ": bool = false;\n";
    Vars += "var c" + std::to_string(I) + ": bool = false;\n";
    Vars += "var d" + std::to_string(I) + ": bool = false;\n";
  }
  std::string Src = "component C \"c\";\nmessage M();\nmessage N();\n" +
                    Vars +
                    "init { X <- spawn C(); }\n"
                    "handler C => M() { if (" +
                    Cond + ") { send(X, N()); } }\n"
                    "property P: [Recv(C, M())] Enables [Send(C, N())];\n";
  ProgramPtr P = mustLoad(Src);
  ASSERT_NE(P, nullptr);
  PropertyResult R = verifyOne(*P, "P");
  EXPECT_EQ(R.Status, VerifyStatus::Unknown);
  EXPECT_NE(R.Reason.find("incomplete"), std::string::npos) << R.Reason;
}

//===----------------------------------------------------------------------===//
// Fault-injected verification pipeline
//===----------------------------------------------------------------------===//

namespace fs = std::filesystem;

/// A throwaway cache directory, removed on destruction.
class TempDir {
public:
  explicit TempDir(const std::string &Tag)
      : Path(fs::temp_directory_path() /
             ("reflex-" + Tag + "-" + std::to_string(::getpid()))) {
    fs::remove_all(Path);
  }
  ~TempDir() {
    std::error_code EC;
    fs::remove_all(Path, EC);
  }
  std::string str() const { return Path.string(); }

private:
  fs::path Path;
};

/// One faulted run of the pipeline: cold batch then warm batch against a
/// fresh cache, all IO and worker decisions driven by \p Plan. Returns
/// the flattened (name, status, reason, attempts) list of the two runs.
std::vector<std::string>
faultedPipeline(const std::vector<const Program *> &Programs,
                const FaultPlan &Plan, unsigned Jobs,
                const std::string &Tag) {
  TempDir Dir(Tag);
  Result<std::unique_ptr<ProofCache>> Cache = ProofCache::open(Dir.str());
  EXPECT_TRUE(Cache.ok()) << (Cache.ok() ? "" : Cache.error());
  if (!Cache.ok())
    return {};
  (*Cache)->setFaultPlan(&Plan);

  SchedulerOptions Opts;
  Opts.Jobs = Jobs;
  Opts.Cache = Cache->get();
  Opts.Faults = &Plan;
  Opts.Retries = 2;
  Opts.RetryBackoffMs = 0;

  std::vector<std::string> Flat;
  for (int Pass = 0; Pass < 2; ++Pass) { // cold (writes), warm (reads)
    BatchOutcome Out = verifyPrograms(Programs, Opts);
    EXPECT_EQ(Out.Reports.size(), Programs.size()) << "batch completes";
    for (size_t PI = 0; PI < Out.Reports.size(); ++PI) {
      EXPECT_EQ(Out.Reports[PI].Results.size(),
                Programs[PI]->Properties.size())
          << "every property gets a verdict slot";
      for (size_t I = 0; I < Out.Reports[PI].Results.size(); ++I) {
        const PropertyResult &R = Out.Reports[PI].Results[I];
        EXPECT_EQ(R.Name, Programs[PI]->Properties[I].Name)
            << "declaration order survives faults";
        Flat.push_back(R.Name + "|" + verifyStatusName(R.Status) + "|" +
                       R.Reason + "|" + std::to_string(R.Attempts));
      }
    }
  }
  return Flat;
}

class PipelineFaultFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineFaultFuzz, FaultedBatchesCompleteDeterministically) {
  ProgramPtr Ssh = kernels::load(kernels::ssh());
  ProgramPtr Web = kernels::load(kernels::webserver());
  std::vector<const Program *> Programs{Ssh.get(), Web.get()};

  // A hefty background fault rate: ~15% of every cache read/write/rename,
  // worker attempt, and budget decision misbehaves, with the kind (fail /
  // truncate / bit-flip) drawn from the same seeded hash.
  FaultPlan Plan(GetParam(), /*Permille=*/150);

  std::string Tag = "fuzz-" + std::to_string(GetParam());
  std::vector<std::string> OneWorker =
      faultedPipeline(Programs, Plan, 1, Tag + "-j1");
  std::vector<std::string> FourWorkers =
      faultedPipeline(Programs, Plan, 4, Tag + "-j4");
  ASSERT_FALSE(OneWorker.empty());
  EXPECT_EQ(OneWorker, FourWorkers)
      << "fault decisions are pure in (seed, site, key): the worker "
         "count must not change any verdict, reason, or attempt count";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFaultFuzz,
                         ::testing::Values(101u, 202u, 303u));

//===----------------------------------------------------------------------===//
// Runtime crash isolation
//===----------------------------------------------------------------------===//

TEST(Robustness, CrashingComponentScriptIsIsolated) {
  // A (id 0) crashes on its first delivery; B (id 1) keeps exchanging;
  // C (id 2) crashes during onStart. The kernel event loop and the
  // runtime monitor must shrug — exactly like the paper's sandboxed
  // component processes dying under a live kernel.
  const char Src[] = R"(
component A "a";
component B "b";
component C "c";
message Ping(num);
message Mark(num);
var pings: num = 0;
init { X <- spawn A(); Y <- spawn B(); Z <- spawn C(); }
handler A => Ping(n) { pings = pings + 1; send(X, Mark(n)); }
handler B => Ping(n) { pings = pings + 1; send(Y, Mark(n)); }
property PingFirst: forall n.
  [Recv(A, Ping(n))] Enables [Send(A, Mark(n))];
)";
  ProgramPtr P = mustLoad(Src);
  ASSERT_NE(P, nullptr);

  int BMarks = 0;
  auto Factory = [&BMarks](const ComponentInstance &C)
      -> std::unique_ptr<ComponentScript> {
    if (C.TypeName == "A")
      return std::make_unique<LambdaScript>(
          [](const LambdaScript::SendFn &Send) {
            Message M;
            M.Name = "Ping";
            M.Args = {Value::num(1)};
            Send(std::move(M));
          },
          [](const Message &, const LambdaScript::SendFn &) {
            throw std::runtime_error("mark handler exploded");
          });
    if (C.TypeName == "B")
      return std::make_unique<LambdaScript>(
          [](const LambdaScript::SendFn &Send) {
            Message M;
            M.Name = "Ping";
            M.Args = {Value::num(2)};
            Send(std::move(M));
          },
          [&BMarks](const Message &, const LambdaScript::SendFn &Send) {
            if (++BMarks < 3) {
              Message M;
              M.Name = "Ping";
              M.Args = {Value::num(2)};
              Send(std::move(M));
            }
          });
    return std::make_unique<LambdaScript>(
        [](const LambdaScript::SendFn &) {
          throw std::runtime_error("boot failure");
        },
        nullptr);
  };

  Runtime Rt(*P, Factory, CallRegistry(), /*Seed=*/3);
  Rt.enableMonitor();
  Rt.start();
  EXPECT_TRUE(Rt.isCrashed(2)) << "C dies in onStart, during init";
  Rt.run(100);

  // Both crashes recorded with their phase and message; the victims are
  // detached (never ready again), everyone else kept running.
  ASSERT_EQ(Rt.crashedCount(), 2u);
  EXPECT_TRUE(Rt.isCrashed(0));
  EXPECT_FALSE(Rt.isCrashed(1));
  EXPECT_EQ(Rt.script(0), nullptr);
  EXPECT_EQ(Rt.script(2), nullptr);
  EXPECT_NE(Rt.script(1), nullptr);
  for (const Runtime::CrashRecord &C : Rt.crashes()) {
    if (C.Id == 0) {
      EXPECT_EQ(C.Where, "onMessage");
      EXPECT_EQ(C.What, "mark handler exploded");
    } else {
      EXPECT_EQ(C.Id, 2);
      EXPECT_EQ(C.Where, "onStart");
      EXPECT_EQ(C.What, "boot failure");
    }
  }

  // B's exchanges went on after A's crash, and the monitor stayed live
  // and clean on the growing trace.
  EXPECT_EQ(BMarks, 3) << "B ping-pongs to completion";
  EXPECT_GE(Rt.state().Vars.at("pings").asNum(), 4);
  EXPECT_FALSE(Rt.lastViolation().has_value());

  // Crash isolation must not leak into verification: the same program
  // still proves its property.
  PropertyResult R = verifyOne(*P, "PingFirst");
  EXPECT_EQ(R.Status, VerifyStatus::Proved);
}

} // namespace
} // namespace reflex
