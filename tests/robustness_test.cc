//===- tests/robustness_test.cc - Frontend robustness -----------*- C++ -*-===//
//
// The frontend must never crash, hang, or accept garbage: fuzz it with
// random token soup, truncations of valid programs, and deeply nested
// input. Every outcome must be either a valid Program or clean
// diagnostics.
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"
#include "support/rng.h"
#include "test_util.h"

namespace reflex {
namespace {

class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, RandomTokenSoupNeverCrashes) {
  static const char *Pieces[] = {
      "component", "message",  "var",    "init",   "handler", "property",
      "forall",    "send",     "spawn",  "call",   "lookup",  "if",
      "else",      "nop",      "sender", "true",   "false",   "atmostonce",
      "Enables",   "Disables", "C",      "M",      "x",       "{",
      "}",         "(",        ")",      "[",      "]",       ",",
      ";",         ":",        ".",      "=",      "==",      "!=",
      "<-",        "=>",       "&&",     "||",     "!",       "+",
      "-",         "<",        "<=",     "42",     "\"s\"",   "_",
      "num",       "str",      "bool",   "@",      "\\",
  };
  Rng Rand(GetParam());
  for (int Round = 0; Round < 200; ++Round) {
    std::string Src;
    size_t Len = Rand.below(60);
    for (size_t I = 0; I < Len; ++I) {
      Src += Pieces[Rand.below(std::size(Pieces))];
      Src += ' ';
    }
    DiagnosticEngine D;
    ProgramPtr P = parseProgram(Src, D);
    if (P) {
      // If it parses, validation must also terminate cleanly.
      validateProgram(*P, D);
    } else {
      EXPECT_TRUE(D.hasErrors()) << "null result requires diagnostics:\n"
                                 << Src;
    }
  }
}

TEST_P(ParserFuzz, TruncationsOfValidKernelsNeverCrash) {
  Rng Rand(GetParam() * 31 + 7);
  for (const kernels::KernelDef *K : kernels::all()) {
    const std::string &Src = K->Source;
    for (int Round = 0; Round < 25; ++Round) {
      std::string Cut = Src.substr(0, Rand.below(Src.size()));
      DiagnosticEngine D;
      ProgramPtr P = parseProgram(Cut, D);
      if (P)
        validateProgram(*P, D);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(11u, 22u, 33u));

TEST(Robustness, DeeplyNestedExpressionsAndBlocks) {
  // 200 levels of parenthesization and 100 nested ifs: must parse (or
  // fail) without stack issues at this depth.
  std::string Expr(200, '(');
  Expr += "0";
  Expr += std::string(200, ')');
  std::string Nest;
  for (int I = 0; I < 100; ++I)
    Nest += "if (true) {\n";
  Nest += "x = " + Expr + ";\n";
  for (int I = 0; I < 100; ++I)
    Nest += "}\n";
  std::string Src = "component C \"c\";\nmessage M();\nvar x: num = 0;\n"
                    "handler C => M() {\n" +
                    Nest + "}\n";
  ProgramPtr P = mustLoad(Src);
  ASSERT_NE(P, nullptr);
  // The whole pipeline handles it too.
  VerificationReport R = verifyProgram(*P);
  EXPECT_TRUE(R.Results.empty()); // no properties, nothing to prove
}

TEST(Robustness, VerifierIsDeterministicAcrossSessions) {
  // Two independent sessions over the same kernel produce structurally
  // identical certificates (the foundation the checker stands on).
  const kernels::KernelDef &K = kernels::ssh();
  ProgramPtr P1 = kernels::load(K);
  ProgramPtr P2 = kernels::load(K);
  VerifySession S1(*P1), S2(*P2);
  for (const Property &Prop : P1->Properties) {
    PropertyResult R1 = S1.verify(Prop);
    PropertyResult R2 = S2.verify(*P2->findProperty(Prop.Name));
    ASSERT_EQ(R1.Status, R2.Status) << Prop.Name;
    EXPECT_EQ(R1.Cert.toJson(S1.termContext()),
              R2.Cert.toJson(S2.termContext()))
        << Prop.Name;
  }
}

TEST(Robustness, SymbolicExecutionLimitsReportIncomplete) {
  // A condition that blows the DNF cap must yield Unknown, not wrong.
  std::string Cond = "b0";
  for (int I = 1; I < 16; ++I)
    Cond = "(" + Cond + " || b" + std::to_string(I) + ") && (c" +
           std::to_string(I) + " || d" + std::to_string(I) + ")";
  std::string Vars;
  for (int I = 0; I < 16; ++I) {
    Vars += "var b" + std::to_string(I) + ": bool = false;\n";
    Vars += "var c" + std::to_string(I) + ": bool = false;\n";
    Vars += "var d" + std::to_string(I) + ": bool = false;\n";
  }
  std::string Src = "component C \"c\";\nmessage M();\nmessage N();\n" +
                    Vars +
                    "init { X <- spawn C(); }\n"
                    "handler C => M() { if (" +
                    Cond + ") { send(X, N()); } }\n"
                    "property P: [Recv(C, M())] Enables [Send(C, N())];\n";
  ProgramPtr P = mustLoad(Src);
  ASSERT_NE(P, nullptr);
  PropertyResult R = verifyOne(*P, "P");
  EXPECT_EQ(R.Status, VerifyStatus::Unknown);
  EXPECT_NE(R.Reason.find("incomplete"), std::string::npos) << R.Reason;
}

} // namespace
} // namespace reflex
