//===- tests/value_test.cc - Values, actions, traces ------------*- C++ -*-===//

#include "trace/action.h"

#include <gtest/gtest.h>

namespace reflex {
namespace {

TEST(Value, KindsAndEquality) {
  EXPECT_EQ(Value::num(3), Value::num(3));
  EXPECT_NE(Value::num(3), Value::num(4));
  EXPECT_NE(Value::num(1), Value::boolean(true)) << "typed equality";
  EXPECT_EQ(Value::str("a"), Value::str("a"));
  EXPECT_NE(Value::str("a"), Value::str("b"));
  EXPECT_EQ(Value::fdesc(5), Value::fdesc(5));
  EXPECT_NE(Value::fdesc(5), Value::comp(5)) << "fdesc is not comp";
}

TEST(Value, Printing) {
  EXPECT_EQ(Value::num(-7).str(), "-7");
  EXPECT_EQ(Value::str("hi\"there").str(), "\"hi\\\"there\"");
  EXPECT_EQ(Value::boolean(true).str(), "true");
  EXPECT_EQ(Value::boolean(false).str(), "false");
  EXPECT_EQ(Value::fdesc(3).str(), "fd#3");
  EXPECT_EQ(Value::comp(2).str(), "comp#2");
}

TEST(Value, HashDistinguishesKinds) {
  EXPECT_NE(Value::num(1).hash(), Value::boolean(true).hash());
  EXPECT_EQ(Value::str("x").hash(), Value::str("x").hash());
}

TEST(Action, ConstructorsAndPrinting) {
  Message M;
  M.Name = "Ping";
  M.Args = {Value::num(1), Value::str("a")};
  EXPECT_EQ(M.str(), "Ping(1, \"a\")");

  EXPECT_EQ(Action::select(2).str(), "Select(comp#2)");
  EXPECT_EQ(Action::recv(0, M).str(), "Recv(comp#0, Ping(1, \"a\"))");
  EXPECT_EQ(Action::send(1, M).str(), "Send(comp#1, Ping(1, \"a\"))");
  EXPECT_EQ(Action::spawn(3).str(), "Spawn(comp#3)");
  EXPECT_EQ(
      Action::call("wget", {Value::str("url")}, Value::str("body")).str(),
      "Call(wget, [\"url\"] -> \"body\")");
}

TEST(Trace, FindComponent) {
  Trace T;
  T.Components.push_back({0, "Tab", {Value::str("a.com")}});
  T.Components.push_back({1, "Tab", {Value::str("b.com")}});
  ASSERT_NE(T.findComponent(1), nullptr);
  EXPECT_EQ(T.findComponent(1)->Config[0], Value::str("b.com"));
  EXPECT_EQ(T.findComponent(9), nullptr);
}

TEST(Trace, Rendering) {
  Trace T;
  T.Components.push_back({0, "Door", {}});
  T.Actions.push_back(Action::spawn(0));
  T.Actions.push_back(Action::select(0));
  std::string S = T.str();
  EXPECT_NE(S.find("0: Spawn(comp#0)"), std::string::npos);
  EXPECT_NE(S.find("Door#0"), std::string::npos);
}

} // namespace
} // namespace reflex
