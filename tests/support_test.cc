//===- tests/support_test.cc - Support library tests ------------*- C++ -*-===//

#include "support/diagnostics.h"
#include "support/interner.h"
#include "support/json.h"
#include "support/result.h"
#include "support/rng.h"
#include "support/strings.h"

#include <gtest/gtest.h>

namespace reflex {
namespace {

TEST(Strings, SplitKeepsEmptyPieces) {
  auto Parts = splitString("a,,b,", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[1], "");
  EXPECT_EQ(Parts[2], "b");
  EXPECT_EQ(Parts[3], "");
}

TEST(Strings, SplitNoSeparator) {
  auto Parts = splitString("hello", ',');
  ASSERT_EQ(Parts.size(), 1u);
  EXPECT_EQ(Parts[0], "hello");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trimString("  x \t\n"), "x");
  EXPECT_EQ(trimString(""), "");
  EXPECT_EQ(trimString(" \t "), "");
  EXPECT_EQ(trimString("no-trim"), "no-trim");
}

TEST(Strings, Join) {
  EXPECT_EQ(joinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(joinStrings({}, ", "), "");
  EXPECT_EQ(joinStrings({"solo"}, "-"), "solo");
}

TEST(Strings, Escape) {
  EXPECT_EQ(escapeString("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(escapeString("plain"), "plain");
}

TEST(Strings, CountCodeLines) {
  EXPECT_EQ(countCodeLines("a\n\n# comment\n  b\n   # also comment\n"), 2u);
  EXPECT_EQ(countCodeLines(""), 0u);
  EXPECT_EQ(countCodeLines("x"), 1u);
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(startsWith("handler", "hand"));
  EXPECT_FALSE(startsWith("hand", "handler"));
  EXPECT_TRUE(startsWith("x", ""));
}

TEST(Interner, SameStringSameSymbol) {
  StringInterner I;
  Symbol A = I.intern("hello");
  Symbol B = I.intern("hello");
  Symbol C = I.intern("world");
  EXPECT_EQ(A, B);
  EXPECT_NE(A.Id, C.Id);
  EXPECT_EQ(I.str(A), "hello");
  EXPECT_EQ(I.str(C), "world");
}

TEST(Interner, EmptyStringIsSymbolZero) {
  StringInterner I;
  EXPECT_EQ(I.intern("").Id, 0u);
}

TEST(Interner, StableAcrossGrowth) {
  StringInterner I;
  Symbol First = I.intern("first");
  const std::string *Addr = &I.str(First);
  for (int N = 0; N < 1000; ++N)
    I.intern("s" + std::to_string(N));
  EXPECT_EQ(&I.str(First), Addr) << "string storage must be stable";
  EXPECT_EQ(I.str(First), "first");
}

TEST(Json, ObjectsArraysEscaping) {
  JsonWriter W;
  W.beginObject();
  W.field("name", "a\"b");
  W.key("list");
  W.beginArray();
  W.value(int64_t(1));
  W.value(true);
  W.nullValue();
  W.endArray();
  W.key("nested");
  W.beginObject();
  W.field("x", int64_t(-3));
  W.endObject();
  W.endObject();
  EXPECT_EQ(W.str(),
            R"({"name":"a\"b","list":[1,true,null],"nested":{"x":-3}})");
}

TEST(Json, EmptyContainers) {
  JsonWriter W;
  W.beginObject();
  W.key("a");
  W.beginArray();
  W.endArray();
  W.endObject();
  EXPECT_EQ(W.str(), R"({"a":[]})");
}

TEST(Diagnostics, CountsAndRenders) {
  DiagnosticEngine D;
  EXPECT_FALSE(D.hasErrors());
  D.warning(SourceLoc(1, 2), "watch out");
  EXPECT_FALSE(D.hasErrors());
  D.error(SourceLoc(2, 3), "boom");
  D.note(SourceLoc(2, 3), "context");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  std::string Out = D.render("file.rfx", "line one\nline two\n");
  EXPECT_NE(Out.find("file.rfx:2:3: error: boom"), std::string::npos);
  EXPECT_NE(Out.find("line two"), std::string::npos);
  EXPECT_NE(Out.find("^"), std::string::npos);
}

TEST(Result, ValueAndError) {
  Result<int> Ok = 42;
  ASSERT_TRUE(Ok.ok());
  EXPECT_EQ(*Ok, 42);
  Result<int> Err = Error("nope");
  ASSERT_FALSE(Err.ok());
  EXPECT_EQ(Err.error(), "nope");
  Result<void> VOk;
  EXPECT_TRUE(VOk.ok());
  Result<void> VErr = Error("bad");
  EXPECT_FALSE(VErr.ok());
}

TEST(Rng, DeterministicAndBounded) {
  Rng A(123), B(123), C(124);
  EXPECT_EQ(A.next(), B.next());
  EXPECT_NE(Rng(123).next(), C.next());
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(10), 10u);
}

} // namespace
} // namespace reflex
