//===- tests/gen_test.cc - Scenario factory unit tests ----------*- C++ -*-===//
//
// The generator's own contracts (src/gen/generator.h): every emitted
// source is already the printer's fixpoint (print -> parse -> print is
// the identity on it), the same (seed, scale) reproduces the corpus
// byte for byte, expected verdicts line up one-to-one with declared
// properties, the manifest is well-formed JSON carrying all of it, and
// the deliberately ill-formed mutants actually fail validation with the
// promised diagnostic. The *verdicts* themselves are cross-checked by
// the differential oracle (tests/corpus_diff_test.cc, bench_corpus).
//
//===----------------------------------------------------------------------===//

#include "gen/generator.h"
#include "support/json.h"
#include "test_util.h"

#include <set>

namespace reflex {
namespace {

using gen::ExpectKind;
using gen::GenConfig;
using gen::GeneratedCorpus;
using gen::GeneratedInstance;

GenConfig cfg(uint64_t Seed, unsigned Scale) {
  GenConfig C;
  C.Seed = Seed;
  C.Scale = Scale;
  return C;
}

TEST(Gen, SourcesAreCanonicalAndRoundTrip) {
  for (uint64_t Seed : {1ull, 7ull, 42ull}) {
    for (unsigned Scale : {1u, 2u, 3u}) {
      GeneratedCorpus Corpus = gen::generateCorpus(cfg(Seed, Scale));
      ASSERT_FALSE(Corpus.Instances.empty());
      for (const GeneratedInstance &Inst : Corpus.Instances) {
        SCOPED_TRACE("seed " + std::to_string(Seed) + " scale " +
                     std::to_string(Scale) + " " + Inst.Name);
        // The shipped source is the canonical form: printing the parsed
        // program reproduces it exactly, so print -> parse -> print is a
        // fixpoint from the first hop.
        ASSERT_NE(Inst.Program, nullptr);
        EXPECT_EQ(Inst.Source, printProgram(*Inst.Program));
        ProgramPtr Reparsed = mustLoad(Inst.Source);
        ASSERT_NE(Reparsed, nullptr);
        EXPECT_EQ(printProgram(*Reparsed), Inst.Source);
        EXPECT_EQ(Reparsed->Handlers.size(), Inst.Program->Handlers.size());
        EXPECT_EQ(Reparsed->Properties.size(),
                  Inst.Program->Properties.size());
      }
    }
  }
}

TEST(Gen, SameConfigIsByteIdentical) {
  GeneratedCorpus A = gen::generateCorpus(cfg(42, 2));
  GeneratedCorpus B = gen::generateCorpus(cfg(42, 2));
  ASSERT_EQ(A.Instances.size(), B.Instances.size());
  for (size_t I = 0; I < A.Instances.size(); ++I) {
    EXPECT_EQ(A.Instances[I].Name, B.Instances[I].Name);
    EXPECT_EQ(A.Instances[I].Source, B.Instances[I].Source);
    EXPECT_EQ(A.Instances[I].BugNote, B.Instances[I].BugNote);
  }
  EXPECT_EQ(gen::corpusManifest(A), gen::corpusManifest(B));
}

TEST(Gen, DifferentSeedsDiverge) {
  GeneratedCorpus A = gen::generateCorpus(cfg(1, 2));
  GeneratedCorpus B = gen::generateCorpus(cfg(2, 2));
  bool AnyDiff = A.Instances.size() != B.Instances.size();
  for (size_t I = 0; !AnyDiff && I < A.Instances.size(); ++I)
    AnyDiff = A.Instances[I].Source != B.Instances[I].Source;
  EXPECT_TRUE(AnyDiff) << "seeds 1 and 2 produced identical corpora";
}

TEST(Gen, ExpectedVerdictsMatchDeclaredProperties) {
  GeneratedCorpus Corpus = gen::generateCorpus(cfg(3, 2));
  size_t Bugged = 0, NiUnknown = 0;
  for (const GeneratedInstance &Inst : Corpus.Instances) {
    SCOPED_TRACE(Inst.Name);
    // One expectation per property, in declaration order.
    ASSERT_EQ(Inst.Expected.size(), Inst.Program->Properties.size());
    for (size_t I = 0; I < Inst.Expected.size(); ++I) {
      EXPECT_EQ(Inst.Expected[I].Property, Inst.Program->Properties[I].Name);
      EXPECT_FALSE(Inst.Expected[I].Why.empty());
      EXPECT_EQ(Inst.findExpected(Inst.Expected[I].Property),
                &Inst.Expected[I]);
    }
    size_t Refuted = 0;
    for (const gen::ExpectedVerdict &E : Inst.Expected) {
      if (E.Expect == ExpectKind::Refuted)
        ++Refuted;
      if (E.Expect == ExpectKind::Unknown)
        ++NiUnknown;
    }
    if (Inst.HasBug) {
      ++Bugged;
      EXPECT_FALSE(Inst.BugNote.empty());
      // A seeded fault breaks exactly the one property it names.
      EXPECT_EQ(Refuted, 1u);
    } else {
      EXPECT_EQ(Refuted, 0u);
    }
  }
  EXPECT_GT(Bugged, 0u);
  EXPECT_GT(NiUnknown, 0u) << "no driver-low NI policy in the corpus";
}

TEST(Gen, ManifestIsWellFormedJson) {
  GeneratedCorpus Corpus = gen::generateCorpus(cfg(5, 1));
  Result<JsonValue> Doc = parseJson(gen::corpusManifest(Corpus));
  ASSERT_TRUE(Doc.ok()) << Doc.error();
  EXPECT_EQ(Doc->getNumber("seed"), 5);
  EXPECT_EQ(Doc->getNumber("scale"), 1);
  EXPECT_EQ(Doc->getNumber("bmc_depth"), gen::corpusBmcDepth());
  EXPECT_EQ(size_t(Doc->getNumber("instances")), Corpus.Instances.size());
  EXPECT_EQ(size_t(Doc->getNumber("properties")), Corpus.totalProperties());
  const JsonValue *Kernels = Doc->get("kernels");
  ASSERT_NE(Kernels, nullptr);
  ASSERT_TRUE(Kernels->isArray());
  ASSERT_EQ(Kernels->items().size(), Corpus.Instances.size());
  for (size_t I = 0; I < Corpus.Instances.size(); ++I) {
    const JsonValue &K = Kernels->items()[I];
    EXPECT_EQ(K.getString("name"), Corpus.Instances[I].Name);
    EXPECT_EQ(K.getString("file"), Corpus.Instances[I].Name + ".rfx");
    EXPECT_EQ(K.getString("sha256").size(), 64u);
    const JsonValue *Expected = K.get("expected");
    ASSERT_NE(Expected, nullptr);
    EXPECT_EQ(Expected->items().size(), Corpus.Instances[I].Expected.size());
  }
}

TEST(Gen, InstanceNamesAreUnique) {
  GeneratedCorpus Corpus = gen::generateCorpus(cfg(9, 3));
  std::set<std::string> Names;
  for (const GeneratedInstance &Inst : Corpus.Instances)
    EXPECT_TRUE(Names.insert(Inst.Name).second)
        << "duplicate instance name " << Inst.Name;
}

TEST(Gen, IllFormedMutantsFailValidation) {
  for (uint64_t Seed : {1ull, 11ull}) {
    std::vector<gen::IllFormedMutant> Mutants =
        gen::generateIllFormedMutants(cfg(Seed, 2));
    ASSERT_FALSE(Mutants.empty());
    for (const gen::IllFormedMutant &M : Mutants) {
      SCOPED_TRACE("seed " + std::to_string(Seed) + " " + M.Name);
      ASSERT_FALSE(M.Needle.empty());
      expectLoadError(M.Source, M.Needle);
    }
  }
}

TEST(Gen, CorpusVerifyOptionsPinTheBmcBound) {
  VerifyOptions Opts = gen::corpusVerifyOptions();
  EXPECT_EQ(Opts.BmcDepthOnUnknown, gen::corpusBmcDepth());
  // The corpus' wide message alphabets force the narrowed payload cap;
  // without it the depth bound cannot complete under the state cap and
  // the (b) flavor degrades from Refuted to Unknown (generator.cc).
  EXPECT_LT(Opts.Bmc.MaxPayloadsPerMessage,
            BmcOptions().MaxPayloadsPerMessage);
}

} // namespace
} // namespace reflex
