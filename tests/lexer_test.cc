//===- tests/lexer_test.cc - Lexer tests ------------------------*- C++ -*-===//

#include "parser/lexer.h"

#include <gtest/gtest.h>

namespace reflex {
namespace {

std::vector<Token> lexOk(std::string_view Src) {
  DiagnosticEngine D;
  auto Toks = lexSource(Src, D);
  EXPECT_FALSE(D.hasErrors()) << D.render("lex", Src);
  return Toks;
}

std::vector<TokKind> kindsOf(std::string_view Src) {
  std::vector<TokKind> Out;
  for (const Token &T : lexOk(Src))
    Out.push_back(T.Kind);
  return Out;
}

TEST(Lexer, KeywordsVsIdentifiers) {
  auto Toks = lexOk("handler Handler sender senders");
  ASSERT_EQ(Toks.size(), 5u); // + Eof
  EXPECT_EQ(Toks[0].Kind, TokKind::KwHandler);
  EXPECT_EQ(Toks[1].Kind, TokKind::Ident);
  EXPECT_EQ(Toks[1].Text, "Handler");
  EXPECT_EQ(Toks[2].Kind, TokKind::KwSender);
  EXPECT_EQ(Toks[3].Kind, TokKind::Ident) << "prefix of keyword + more";
}

TEST(Lexer, Numbers) {
  auto Toks = lexOk("0 42 123456789");
  EXPECT_EQ(Toks[0].NumVal, 0);
  EXPECT_EQ(Toks[1].NumVal, 42);
  EXPECT_EQ(Toks[2].NumVal, 123456789);
}

TEST(Lexer, StringsAndEscapes) {
  auto Toks = lexOk(R"("plain" "with \"quote\"" "tab\there" "back\\slash")");
  EXPECT_EQ(Toks[0].Text, "plain");
  EXPECT_EQ(Toks[1].Text, "with \"quote\"");
  EXPECT_EQ(Toks[2].Text, "tab\there");
  EXPECT_EQ(Toks[3].Text, "back\\slash");
}

TEST(Lexer, UnterminatedStringIsError) {
  DiagnosticEngine D;
  lexSource("\"oops", D);
  EXPECT_TRUE(D.hasErrors());
}

TEST(Lexer, OperatorsMaximalMunch) {
  auto Kinds = kindsOf("= == => <- < <= > >= ! != && ||");
  std::vector<TokKind> Expected = {
      TokKind::Equal,  TokKind::EqEq,      TokKind::FatArrow,
      TokKind::Bind,   TokKind::Less,      TokKind::LessEq,
      TokKind::Greater, TokKind::GreaterEq, TokKind::Bang,
      TokKind::NotEq,  TokKind::AndAnd,    TokKind::OrOr,
      TokKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, CommentsBothStyles) {
  auto Kinds = kindsOf("a # to end of line == ;\nb // also c\nc");
  std::vector<TokKind> Expected = {TokKind::Ident, TokKind::Ident,
                                   TokKind::Ident, TokKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, WildcardVsIdentifier) {
  auto Toks = lexOk("_ _x x_");
  EXPECT_EQ(Toks[0].Kind, TokKind::Underscore);
  EXPECT_EQ(Toks[1].Kind, TokKind::Ident);
  EXPECT_EQ(Toks[1].Text, "_x");
  EXPECT_EQ(Toks[2].Kind, TokKind::Ident);
}

TEST(Lexer, LocationsAreOneBased) {
  auto Toks = lexOk("a\n  b");
  EXPECT_EQ(Toks[0].Loc, SourceLoc(1, 1));
  EXPECT_EQ(Toks[1].Loc, SourceLoc(2, 3));
}

TEST(Lexer, UnknownCharacterIsError) {
  DiagnosticEngine D;
  lexSource("a @ b", D);
  EXPECT_TRUE(D.hasErrors());
}

TEST(Lexer, AlwaysEndsWithEof) {
  EXPECT_EQ(lexOk("").back().Kind, TokKind::Eof);
  EXPECT_EQ(lexOk("x").back().Kind, TokKind::Eof);
}

} // namespace
} // namespace reflex
