//===- tests/footprint_stmt_test.cc - Statement-level footprints -*- C++ -*-===//
//
// The soundness gate behind path-granular proof footprints: exhaustive
// *per-statement* mutations of every example kernel (every statement of
// every handler, not just one edit per handler), across proof engines,
// always requiring the incremental verdict set to be byte-identical —
// status, reason, certificate JSON — to a from-scratch verification of
// the mutated program, with audit mode re-proving every reused verdict
// inside the verifier. Plus: the per-leaf branch kernel whose edits
// genuinely need the per-path rule (PathHits), and the v2 -> v3 cache
// entry migration contract (stale entries are plain misses — never
// quarantined, never served).
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"
#include "kernels/synthetic.h"
#include "service/proofcache.h"
#include "test_util.h"
#include "verify/incremental.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

namespace reflex {
namespace {

namespace fs = std::filesystem;

/// Positions of every statement terminator `;` inside handler bodies of
/// \p Src, in source order.
std::vector<size_t> statementPositions(const std::string &Src) {
  std::vector<size_t> Out;
  size_t Pos = 0;
  while ((Pos = Src.find("handler ", Pos)) != std::string::npos) {
    size_t Open = Src.find('{', Pos);
    if (Open == std::string::npos)
      break;
    int Depth = 0;
    size_t I = Open;
    for (; I < Src.size(); ++I) {
      if (Src[I] == '#') { // Reflex line comment
        I = Src.find('\n', I);
        if (I == std::string::npos)
          break;
      } else if (Src[I] == '"') {
        I = Src.find('"', I + 1);
        if (I == std::string::npos)
          break;
      } else if (Src[I] == '{') {
        ++Depth;
      } else if (Src[I] == '}') {
        if (--Depth == 0)
          break;
      } else if (Src[I] == ';' && Depth > 0) {
        Out.push_back(I);
      }
    }
    Pos = I;
  }
  return Out;
}

/// The mutated source: a no-op self-assignment of \p Var inserted right
/// after the statement ending at \p SemiPos.
std::string mutateAtStatement(const std::string &Src, size_t SemiPos,
                              const std::string &Var) {
  std::string Out = Src;
  Out.insert(SemiPos + 1, "\n  " + Var + " = " + Var + ";");
  return Out;
}

/// One audited incremental step P1 -> P2 under \p Opts: verdicts must be
/// byte-identical to a fresh verification of P2, and the verifier's own
/// audit must find no mismatch. \p What labels failures.
void expectStatementAuditClean(const Program &P1, const Program &P2,
                               const VerifyOptions &Opts,
                               const std::string &What) {
  IncrementalVerifier IV(Opts);
  IV.setAuditReuse(true);
  IV.verify(P1);
  auto Out = IV.verify(P2);
  EXPECT_EQ(Out.AuditFailures, 0u) << What;
  for (const std::string &Err : Out.AuditErrors)
    ADD_FAILURE() << What << ": " << Err;

  VerificationReport Fresh = verifyProgram(P2, Opts);
  ASSERT_EQ(Out.Report.Results.size(), Fresh.Results.size()) << What;
  for (size_t I = 0; I < Fresh.Results.size(); ++I) {
    const PropertyResult &Got = Out.Report.Results[I];
    const PropertyResult &Want = Fresh.Results[I];
    EXPECT_EQ(Got.Status, Want.Status) << What << " " << Want.Name;
    EXPECT_EQ(Got.Reason, Want.Reason) << What << " " << Want.Name;
    EXPECT_EQ(Got.CertJson, Want.CertJson) << What << " " << Want.Name;
  }
}

TEST(FootprintStmt, PerStatementMutationAuditEveryKernel) {
  // Every statement of every handler of every example kernel, mutated in
  // turn. The inserted no-op self-assignment lands *inside whatever
  // branch arm the statement occupies*, so the sweep covers every
  // symbolic path: edits to paths a proof entered must re-verify, edits
  // confined to paths it never entered must reuse — and either way the
  // final verdict set equals a from-scratch run byte for byte.
  for (const kernels::KernelDef *K : kernels::all()) {
    ProgramPtr P1 = kernels::load(*K);
    if (P1->StateVars.empty())
      continue; // the no-op statement needs a variable to re-assign
    const std::string Var = P1->StateVars.front().Name;
    std::vector<size_t> Stmts = statementPositions(K->Source);
    ASSERT_FALSE(Stmts.empty()) << K->Name;
    for (size_t S = 0; S < Stmts.size(); ++S) {
      std::string Src2 = mutateAtStatement(K->Source, Stmts[S], Var);
      ProgramPtr P2 = mustLoad(Src2);
      ASSERT_NE(P2, nullptr) << K->Name << " stmt " << S;
      expectStatementAuditClean(
          *P1, *P2, VerifyOptions{},
          std::string(K->Name) + " stmt " + std::to_string(S));
    }
  }
}

TEST(FootprintStmt, PerStatementMutationAuditAcrossEngines) {
  // The per-path reuse rule must be engine-agnostic: PDR and portfolio
  // verdicts reuse (or re-verify) under exactly the same footprint
  // discipline as induction, and their certificates survive the
  // byte-identity bar too. Swept on the branch-heaviest paper kernel.
  const kernels::KernelDef &K = kernels::ssh();
  ProgramPtr P1 = kernels::load(K);
  const std::string Var = P1->StateVars.front().Name;
  std::vector<size_t> Stmts = statementPositions(K.Source);
  ASSERT_FALSE(Stmts.empty());
  for (EngineKind Eng :
       {EngineKind::Induction, EngineKind::Pdr, EngineKind::Portfolio}) {
    VerifyOptions Opts;
    Opts.Engine = Eng;
    for (size_t S = 0; S < Stmts.size(); ++S) {
      std::string Src2 = mutateAtStatement(K.Source, Stmts[S], Var);
      ProgramPtr P2 = mustLoad(Src2);
      ASSERT_NE(P2, nullptr) << engineKindName(Eng) << " stmt " << S;
      expectStatementAuditClean(*P1, *P2, Opts,
                                std::string(engineKindName(Eng)) + " stmt " +
                                    std::to_string(S));
    }
  }
}

TEST(FootprintStmt, BranchLeafEditNeedsExactlyThePathRule) {
  // The per-leaf branch kernel is the workload the per-path rule exists
  // for: each Gated_L proof enters exactly leaf L of the probe handler,
  // so editing one leaf's stamped literal must re-verify exactly that
  // leaf's property — every other Gated proof survives only through the
  // per-path rule (the handler's whole-summary fingerprint DID change),
  // which is what Report.PathHits counts.
  const unsigned Depth = 3, Leaves = 1u << Depth;
  std::string Src1 = kernels::syntheticBranchKernel(Depth, true);
  ProgramPtr P1 = mustLoad(Src1);
  ASSERT_NE(P1, nullptr);

  const unsigned EditLeaf = Leaves / 2;
  std::string Needle = "scratch = " + std::to_string(EditLeaf) + ";";
  size_t Pos = Src1.find(Needle);
  ASSERT_NE(Pos, std::string::npos);
  std::string Src2 = Src1;
  Src2.replace(Pos, Needle.size(),
               "scratch = " + std::to_string(9000 + EditLeaf) + ";");
  ProgramPtr P2 = mustLoad(Src2);
  ASSERT_NE(P2, nullptr);

  IncrementalVerifier IV;
  IV.setAuditReuse(true);
  IV.verify(*P1);
  auto Out = IV.verify(*P2);
  EXPECT_EQ(Out.Reverified, 1u) << "exactly the edited leaf's property";
  EXPECT_EQ(Out.Reused, unsigned(P2->Properties.size()) - 1);
  EXPECT_EQ(Out.Report.PathHits, uint64_t(Leaves - 1))
      << "every surviving Gated proof needed the per-path rule";
  EXPECT_EQ(Out.AuditFailures, 0u);
  for (const std::string &Err : Out.AuditErrors)
    ADD_FAILURE() << Err;

  VerificationReport Fresh = verifyProgram(*P2);
  ASSERT_EQ(Out.Report.Results.size(), Fresh.Results.size());
  for (size_t I = 0; I < Fresh.Results.size(); ++I) {
    EXPECT_EQ(Out.Report.Results[I].Status, Fresh.Results[I].Status)
        << Fresh.Results[I].Name;
    EXPECT_EQ(Out.Report.Results[I].CertJson, Fresh.Results[I].CertJson)
        << Fresh.Results[I].Name;
  }

  // Handler-granular baseline on the same edit: the probe handler's
  // summary changed, so every proof that consulted it re-verifies.
  IncrementalVerifier Handler;
  Handler.setPathGranularity(false);
  Handler.verify(*P1);
  auto Base = Handler.verify(*P2);
  EXPECT_GT(Base.Reverified, Out.Reverified)
      << "the per-path rule must beat the handler-level rule here";
  EXPECT_EQ(Base.Report.PathHits, 0u);
}

//===----------------------------------------------------------------------===//
// Cache entry migration: v2 -> v3
//===----------------------------------------------------------------------===//

class TempDir {
public:
  explicit TempDir(const std::string &Tag)
      : Path(fs::temp_directory_path() /
             ("reflex-" + Tag + "-" + std::to_string(::getpid()))) {
    fs::remove_all(Path);
  }
  ~TempDir() {
    std::error_code EC;
    fs::remove_all(Path, EC);
  }
  std::string str() const { return Path.string(); }

private:
  fs::path Path;
};

std::string readAll(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

void writeAll(const std::string &Path, const std::string &Data) {
  std::ofstream Out(Path, std::ios::trunc | std::ios::binary);
  Out << Data;
}

/// Rewrites a freshly stored v3 entry into the shape a v2 binary wrote:
/// version 2, no "path_fps" field. Aborts the test on unexpected shape.
std::string downgradeToV2(const std::string &Entry) {
  std::string Out = Entry;
  size_t V = Out.find("\"version\":3");
  EXPECT_NE(V, std::string::npos);
  if (V == std::string::npos)
    return Out;
  Out.replace(V, std::string("\"version\":3").size(), "\"version\":2");
  size_t PF = Out.find(",\"path_fps\":");
  if (PF != std::string::npos) {
    // Drop the whole field: scan the value with a bracket depth counter
    // (fingerprints and path ids contain no brackets, so no string
    // escapes to worry about).
    size_t I = Out.find(':', PF) + 1;
    int Depth = 0;
    do {
      if (Out[I] == '[' || Out[I] == '{')
        ++Depth;
      else if (Out[I] == ']' || Out[I] == '}')
        --Depth;
      ++I;
    } while (Depth > 0 && I < Out.size());
    Out.erase(PF, I - PF);
  }
  return Out;
}

TEST(FootprintStmt, CacheV2EntryMigratesAsPlainMiss) {
  // A v2-shaped entry (older binary, handler-granular era) under a v3
  // binary: a *stale* entry, not a damaged one. Contract: plain miss —
  // never quarantined, never counted rejected, and above all never
  // served — then overwritten in place by the re-verification's v3
  // entry, which serves normally from then on.
  TempDir Dir("cache-v2-migration");
  ProgramPtr P = mustLoad(std::string(kernels::ssh().Source));
  ASSERT_NE(P, nullptr);
  ProgramFingerprints FP = ProgramFingerprints::compute(*P);
  const Property &Prop = P->Properties.front();
  std::string Key = ProofCache::keyFor(FP.DeclFp, Prop, VerifyOptions{});
  std::string EntryPath = Dir.str() + "/" + Key + ".json";

  {
    Result<std::unique_ptr<ProofCache>> C = ProofCache::open(Dir.str());
    ASSERT_TRUE(C.ok()) << C.error();
    std::unique_ptr<ProofCache> Cache = C.take();
    {
      VerifySession S(*P);
      PropertyResult R = verifyPropertyCached(S, Prop, Cache.get(), &FP);
      ASSERT_EQ(R.Status, VerifyStatus::Proved);
    }
    std::string Entry = readAll(EntryPath);
    ASSERT_NE(Entry.find("\"version\":3"), std::string::npos);
    writeAll(EntryPath, downgradeToV2(Entry));
  }

  // Fresh cache handle, as after a binary upgrade.
  Result<std::unique_ptr<ProofCache>> C = ProofCache::open(Dir.str());
  ASSERT_TRUE(C.ok()) << C.error();
  std::unique_ptr<ProofCache> Cache = C.take();
  {
    VerifySession S(*P);
    PropertyResult R = verifyPropertyCached(S, Prop, Cache.get(), &FP);
    EXPECT_EQ(R.Status, VerifyStatus::Proved);
    EXPECT_FALSE(R.CacheHit) << "a stale entry must never be served";
    EXPECT_TRUE(R.CertChecked);
  }
  EXPECT_EQ(Cache->stats().Quarantined, 0u)
      << "stale is not damage: nothing to preserve as evidence";
  EXPECT_EQ(Cache->stats().Rejected, 0u);
  EXPECT_FALSE(
      fs::exists(fs::path(Dir.str()) / "quarantine" / (Key + ".json")));
  EXPECT_NE(readAll(EntryPath).find("\"version\":3"), std::string::npos)
      << "re-verification overwrites the stale entry in place";

  // The migrated entry serves normally.
  VerifySession S(*P);
  PropertyResult R = verifyPropertyCached(S, Prop, Cache.get(), &FP);
  EXPECT_TRUE(R.CacheHit);
  EXPECT_TRUE(R.CertChecked);
}

} // namespace
} // namespace reflex
