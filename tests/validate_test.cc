//===- tests/validate_test.cc - Semantic validation tests -------*- C++ -*-===//
//
// The validator stands in for the Coq embedding's dependent types: every
// way a Reflex program could "go wrong" must be rejected statically.
//
//===----------------------------------------------------------------------===//

#include "test_util.h"

namespace reflex {
namespace {

// A well-formed scaffold the negative cases mutate.
const char Scaffold[] = R"(
component C "c" { tag: str };
component D "d";
message M(str, num);
message N(str);
var flag: bool = false;
var count: num = 0;
init {
  X <- spawn C("x");
  Y <- spawn D();
}
handler C => M(s, n) {
  if (flag && n == count) {
    send(Y, N(s));
  }
}
)";

TEST(Validate, ScaffoldIsValid) {
  ProgramPtr P = mustLoad(Scaffold);
  ASSERT_NE(P, nullptr);
  // Component globals were recorded.
  ASSERT_EQ(P->CompGlobals.size(), 2u);
  EXPECT_EQ(P->CompGlobals[0].CompType, "C");
}

TEST(Validate, DuplicateDeclarations) {
  expectLoadError("component C \"a\";\ncomponent C \"b\";",
                  "duplicate component type");
  expectLoadError("message M();\nmessage M(str);",
                  "duplicate message type");
  expectLoadError("var x: num = 0;\nvar x: str = \"\";",
                  "duplicate state variable");
  expectLoadError("component C \"c\" { f: str, f: num };",
                  "duplicate config field");
  expectLoadError("component C \"c\";\nmessage M();\n"
                  "handler C => M() { nop; }\nhandler C => M() { nop; }",
                  "duplicate handler");
}

TEST(Validate, StateVarRules) {
  expectLoadError("var x: num = \"s\";", "initializer type");
  // fdesc state variables are unrepresentable (no fdesc literals) and
  // explicitly rejected.
  expectLoadError("var x: fdesc = 0;", "state variables must be");
}

TEST(Validate, MessagePayloadRules) {
  // comp is not even spellable as a payload type.
  expectLoadError("message M(comp);", "unknown type");
}

TEST(Validate, UndefinedNames) {
  expectLoadError("component C \"c\";\nmessage M();\n"
                  "handler C => M() { x = 1; }",
                  "undeclared variable");
  expectLoadError("component C \"c\";\nmessage M(num);\n"
                  "handler C => M(n) { send(nobody, M(n)); }",
                  "undefined variable");
  expectLoadError("component C \"c\";\nmessage M();\n"
                  "handler D => M() { nop; }",
                  "unknown component type");
  expectLoadError("component C \"c\";\nhandler C => M() { nop; }",
                  "unknown message type");
  expectLoadError("component C \"c\";\nmessage M();\n"
                  "handler C => M() { send(sender, Z()); }",
                  "unknown message type");
}

TEST(Validate, ArityAndTypes) {
  expectLoadError("component C \"c\";\nmessage M(str);\n"
                  "handler C => M() { nop; }",
                  "parameters");
  expectLoadError(std::string(Scaffold) +
                      "handler C => N(s) { send(Y, N(3)); }",
                  "must be str");
  expectLoadError(std::string(Scaffold) +
                      "handler C => N(s) { count = s; }",
                  "assigning str");
  expectLoadError(std::string(Scaffold) +
                      "handler C => N(s) { if (s) { nop; } }",
                  "must be bool");
  expectLoadError(std::string(Scaffold) +
                      "handler C => N(s) { send(s, N(s)); }",
                  "must be a component");
  expectLoadError(std::string(Scaffold) +
                      "handler C => N(s) { Z <- spawn C(); }",
                  "wrong number of config values");
  expectLoadError(std::string(Scaffold) +
                      "handler C => N(s) { Z <- spawn C(3); }",
                  "must be str");
}

TEST(Validate, ImmutabilityDisciplines) {
  // Parameters are immutable.
  expectLoadError(std::string(Scaffold) + "handler C => N(s) { s = \"x\"; }",
                  "not assignable");
  // Component globals are immutable.
  expectLoadError(std::string(Scaffold) + "handler C => N(s) { X = Y; }",
                  "not assignable");
  // Rebinding is rejected.
  expectLoadError(std::string(Scaffold) +
                      "handler C => N(s) { X <- spawn D(); }",
                  "already bound");
}

TEST(Validate, ComponentEqualityRejected) {
  // LAC restriction: components are identified via lookup, never compared.
  expectLoadError(std::string(Scaffold) +
                      "handler C => N(s) { if (sender == X) { nop; } }",
                  "components cannot be compared");
}

TEST(Validate, SenderOnlyInHandlers) {
  expectLoadError("component C \"c\" { f: str };\ninit { Z <- spawn "
                  "C(sender.f); }",
                  "'sender' is only available in handlers");
}

TEST(Validate, ConfigFieldResolution) {
  ProgramPtr P = mustLoad(std::string(Scaffold) +
                          "handler C => N(s) { flag = sender.tag == s; }");
  ASSERT_NE(P, nullptr);
  expectLoadError(std::string(Scaffold) +
                      "handler C => N(s) { flag = sender.nope == s; }",
                  "no config field");
  // Config reads require a component-typed base.
  expectLoadError(std::string(Scaffold) +
                      "handler C => N(s) { flag = s.tag == s; }",
                  "requires a component-typed expression");
}

TEST(Validate, LookupRules) {
  ProgramPtr P = mustLoad(std::string(Scaffold) + R"(
handler C => N(s) {
  lookup C(tag == s) as other {
    send(other, N(other.tag));
  }
}
)");
  ASSERT_NE(P, nullptr);
  expectLoadError(std::string(Scaffold) +
                      "handler C => N(s) { lookup C(zz == s) as o { nop; } }",
                  "no config field");
  expectLoadError(std::string(Scaffold) +
                      "handler C => N(s) { lookup C(tag == 3) as o { nop; } }",
                  "type mismatch");
}

TEST(Validate, BranchBindingsDoNotEscape) {
  expectLoadError(std::string(Scaffold) + R"(
handler C => N(s) {
  if (flag) {
    r <- call "f"(s);
  }
  send(Y, N(r));
}
)",
                  "undefined variable 'r'");
}

TEST(Validate, PropertyPatternRules) {
  const std::string Base = "component Tab \"t\" { domain: str };\n"
                           "message Put(str);\n";
  // Undeclared forall variable.
  expectLoadError(Base + "property P:\n  [Recv(Tab(domain = d), Put(_))] "
                         "Enables [Send(Tab, Put(_))];",
                  "not declared in the forall clause");
  // Unused forall variable.
  expectLoadError(Base + "property P: forall d.\n  [Recv(Tab, Put(_))] "
                         "Enables [Send(Tab, Put(_))];",
                  "never used");
  // Trigger-variable discipline: for Enables the trigger is B.
  expectLoadError(Base + "property P: forall d.\n  [Recv(Tab(domain = d), "
                         "Put(_))] Enables [Send(Tab, Put(_))];",
                  "must occur in the trigger");
  // ...for Ensures the trigger is A, so the same shape is fine.
  ProgramPtr P = mustLoad(Base + "property P: forall d.\n  "
                                 "[Recv(Tab(domain = d), Put(_))] Ensures "
                                 "[Send(Tab, Put(_))];");
  ASSERT_NE(P, nullptr);
  // Field indices got resolved.
  EXPECT_EQ(P->Properties[0].traceProp().A.Comp.Fields[0].FieldIndex, 0);
}

TEST(Validate, PropertyPatternTyping) {
  const std::string Base = "component Tab \"t\" { domain: str };\n"
                           "message Put(str, num);\n";
  expectLoadError(Base + "property P:\n  [Recv(Tab, Put(_, \"s\"))] Enables "
                         "[Send(Tab, Put(_, _))];",
                  "has type str, expected num");
  expectLoadError(Base + "property P: forall v.\n  [Recv(Tab, Put(v, v))] "
                         "Enables [Send(Tab, Put(v, v))];",
                  "used at both");
  expectLoadError(Base + "property P:\n  [Recv(Tab, Put(_))] Enables "
                         "[Send(Tab, Put(_, _))];",
                  "wrong number of payload patterns");
  expectLoadError(Base + "property P:\n  [Recv(Zed, Put(_, _))] Enables "
                         "[Send(Tab, Put(_, _))];",
                  "unknown component type");
}

TEST(Validate, NIPropertyRules) {
  const std::string Base = "component Tab \"t\" { domain: str };\n"
                           "message Put(str);\nvar x: num = 0;\n";
  ProgramPtr P = mustLoad(Base + "property NI: forall d.\n  noninterference "
                                 "{ high components: Tab(domain = d); high "
                                 "vars: x; };");
  ASSERT_NE(P, nullptr);
  expectLoadError(Base + "property NI:\n  noninterference { high "
                         "components: ; high vars: zz; };",
                  "unknown state variable");
  expectLoadError(Base + "property NI: forall d.\n  noninterference { high "
                         "components: Tab; high vars: ; };",
                  "never used");
}

} // namespace
} // namespace reflex
