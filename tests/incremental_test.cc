//===- tests/incremental_test.cc - Incremental re-verification --*- C++ -*-===//

#include "kernels/kernels.h"
#include "test_util.h"
#include "verify/incremental.h"

namespace reflex {
namespace {

TEST(Incremental, UnchangedProgramReusesEverything) {
  ProgramPtr P = kernels::load(kernels::ssh());
  IncrementalVerifier IV;
  auto First = IV.verify(*P);
  EXPECT_EQ(First.Reverified, P->Properties.size());
  EXPECT_EQ(First.Reused, 0u);
  EXPECT_TRUE(First.Report.allProved());

  auto Second = IV.verify(*P);
  EXPECT_EQ(Second.Reverified, 0u);
  EXPECT_EQ(Second.Reused, P->Properties.size());
  EXPECT_TRUE(Second.Report.allProved());
}

TEST(Incremental, NewPropertyOnlyVerifiesItself) {
  const kernels::KernelDef &K = kernels::ssh();
  ProgramPtr P1 = kernels::load(K);
  IncrementalVerifier IV;
  IV.verify(*P1);

  // Add one property; the code is unchanged.
  std::string Src2 = std::string(K.Source) +
                     "\nproperty ExtraAdjacent: forall u, p.\n"
                     "  [Recv(Connection, ReqAuth(u, p))] ImmBefore "
                     "[Send(Password, CheckAuth(u, p, 1))];\n";
  ProgramPtr P2 = mustLoad(Src2);
  ASSERT_NE(P2, nullptr);
  auto Out = IV.verify(*P2);
  EXPECT_EQ(Out.Reused, P1->Properties.size());
  EXPECT_EQ(Out.Reverified, 1u);
}

TEST(Incremental, IfacePreservingEditReverifiesOnlyDependents) {
  const kernels::KernelDef &K = kernels::ssh();
  ProgramPtr P1 = kernels::load(K);
  IncrementalVerifier IV;
  IV.verify(*P1);

  // Duplicate an assignment the Password=>Auth handler already performs:
  // its printed body changes but every path's symbolic post-state is
  // identical, so path-granular footprints reuse everything — even the
  // proofs that consulted the edited handler.
  std::string Src2 = K.Source;
  size_t Pos = Src2.find("auth_ok = true;");
  ASSERT_NE(Pos, std::string::npos);
  Src2.insert(Pos, "auth_user = user;\n  ");
  ProgramPtr P2 = mustLoad(Src2);
  ASSERT_NE(P2, nullptr);
  auto Out = IV.verify(*P2);
  EXPECT_EQ(Out.Reverified, 0u)
      << "a symbolically invisible edit re-verifies nothing";
  EXPECT_EQ(Out.Reused, unsigned(P2->Properties.size()));
  EXPECT_EQ(Out.FootprintReused, Out.Reused);
  EXPECT_TRUE(Out.Report.allProved()) << "the edit preserves the policies";

  // A semantically visible (but still interface-preserving) edit: the
  // third login attempt parks the counter at 4 instead of 3. Proofs that
  // entered that path of Connection=>ReqAuth fall back and re-verify;
  // edit-disjoint proofs such as AuthBeforeTerm's survive.
  std::string Src3 = K.Source;
  Pos = Src3.find("attempts = 3;");
  ASSERT_NE(Pos, std::string::npos);
  Src3.replace(Pos, std::string("attempts = 3;").size(), "attempts = 4;");
  ProgramPtr P3 = mustLoad(Src3);
  ASSERT_NE(P3, nullptr);
  auto Out3 = IV.verify(*P3);
  EXPECT_EQ(Out3.Reused + Out3.Reverified,
            unsigned(P3->Properties.size()));
  EXPECT_GT(Out3.Reused, 0u) << "edit-disjoint proofs must survive";
  EXPECT_EQ(Out3.FootprintReused, Out3.Reused);
  EXPECT_GT(Out3.Reverified, 0u)
      << "the attempt-counting proofs entered the edited path";
  EXPECT_GT(Out3.Report.PathFallbacks, 0u);
  EXPECT_TRUE(Out3.Report.allProved()) << "the edit preserves the policies";

  // The retained verdicts must be exactly what a fresh run produces.
  VerificationReport Fresh = verifyProgram(*P3);
  ASSERT_EQ(Out3.Report.Results.size(), Fresh.Results.size());
  for (size_t I = 0; I < Fresh.Results.size(); ++I) {
    EXPECT_EQ(Out3.Report.Results[I].Status, Fresh.Results[I].Status)
        << Fresh.Results[I].Name;
    EXPECT_EQ(Out3.Report.Results[I].CertJson, Fresh.Results[I].CertJson)
        << Fresh.Results[I].Name;
  }
}

TEST(Incremental, IfaceChangingEditInvalidatesEverything) {
  const kernels::KernelDef &K = kernels::ssh();
  ProgramPtr P1 = kernels::load(K);
  IncrementalVerifier IV;
  IV.verify(*P1);

  // A semantically harmless self-assignment of a variable the handler
  // does not otherwise assign: the assign set grows, so the handler's
  // *interface* fingerprint changes — and the prover's syntactic skip
  // predicates factor through exactly that interface, so no footprint is
  // trustworthy. Everything must re-verify.
  std::string Src2 = K.Source;
  size_t Pos = Src2.find("auth_ok = true;");
  ASSERT_NE(Pos, std::string::npos);
  Src2.insert(Pos, "attempts = attempts;\n  ");
  ProgramPtr P2 = mustLoad(Src2);
  ASSERT_NE(P2, nullptr);
  auto Out = IV.verify(*P2);
  EXPECT_EQ(Out.Reused, 0u);
  EXPECT_EQ(Out.Reverified, P2->Properties.size());
  EXPECT_TRUE(Out.Report.allProved()) << "the edit preserves the policies";
}

TEST(Incremental, DeclarationEditInvalidatesEverything) {
  const kernels::KernelDef &K = kernels::ssh();
  ProgramPtr P1 = kernels::load(K);
  IncrementalVerifier IV;
  IV.verify(*P1);

  // Add an unused state variable: no handler body changes, but the
  // declaration fingerprint does — default summaries and symbol meanings
  // are functions of the declarations, so nothing may be reused.
  std::string Src2 = K.Source;
  size_t Pos = Src2.find("var attempts");
  ASSERT_NE(Pos, std::string::npos);
  Src2.insert(Pos, "var spare: num = 0;\n");
  ProgramPtr P2 = mustLoad(Src2);
  ASSERT_NE(P2, nullptr);
  auto Out = IV.verify(*P2);
  EXPECT_EQ(Out.Reused, 0u);
  EXPECT_EQ(Out.Reverified, P2->Properties.size());
}

TEST(Incremental, VerdictsAgreeWithFreshVerification) {
  // Reused verdicts must equal what a fresh run produces — including for
  // a kernel with an unprovable property.
  std::string Src = R"(
component A "a";
message Ping(num);
message Mark(num);
init { X <- spawn A(); }
handler A => Ping(n) { send(X, Mark(n)); }
property Bad: forall n.
  [Recv(A, Mark(n))] Enables [Send(A, Mark(n))];
property Fine: forall n.
  [Recv(A, Ping(n))] Ensures [Send(A, Mark(n))];
)";
  ProgramPtr P = mustLoad(Src);
  IncrementalVerifier IV;
  IV.verify(*P);
  auto Cached = IV.verify(*P);
  VerificationReport Fresh = verifyProgram(*P);
  ASSERT_EQ(Cached.Report.Results.size(), Fresh.Results.size());
  for (size_t I = 0; I < Fresh.Results.size(); ++I)
    EXPECT_EQ(Cached.Report.Results[I].Status, Fresh.Results[I].Status)
        << Fresh.Results[I].Name;
}

/// Inserts \p Stmt at the start of the \p I-th handler's body (0-based,
/// source order). Returns "" when the source has fewer handlers.
std::string mutateHandler(const std::string &Src, size_t I,
                          const std::string &Stmt) {
  size_t Pos = 0;
  for (size_t N = 0;; ++N) {
    Pos = Src.find("\nhandler ", Pos);
    if (Pos == std::string::npos)
      return {};
    size_t Brace = Src.find('{', Pos);
    if (Brace == std::string::npos)
      return {};
    if (N == I)
      return Src.substr(0, Brace + 1) + "\n  " + Stmt +
             Src.substr(Brace + 1);
    Pos = Brace;
  }
}

TEST(Incremental, MutationAuditEveryHandlerOfEveryKernel) {
  // The exhaustive soundness audit behind the footprint machinery: for
  // every example kernel, edit each handler in turn (a self-assignment of
  // the first state variable — semantically a no-op, interface-preserving
  // exactly when the handler already assigns that variable, so both the
  // reuse and the invalidation paths are exercised across the sweep) and
  // require the incremental verdict set to be byte-identical — status,
  // reason, certificate JSON — to a from-scratch verification of the
  // mutated program. Audit mode additionally re-proves every reused
  // verdict inside the verifier itself.
  for (const kernels::KernelDef *K : kernels::all()) {
    ProgramPtr P1 = kernels::load(*K);
    if (P1->StateVars.empty())
      continue; // the no-op statement needs a variable to re-assign
    const std::string Var = P1->StateVars.front().Name;
    const std::string Nop = Var + " = " + Var + ";";
    for (size_t H = 0;; ++H) {
      std::string Src2 = mutateHandler(K->Source, H, Nop);
      if (Src2.empty())
        break;
      ProgramPtr P2 = mustLoad(Src2);
      ASSERT_NE(P2, nullptr) << K->Name << " handler " << H;

      IncrementalVerifier IV;
      IV.setAuditReuse(true);
      IV.verify(*P1);
      auto Out = IV.verify(*P2);
      EXPECT_EQ(Out.AuditFailures, 0u) << K->Name << " handler " << H;
      for (const std::string &Err : Out.AuditErrors)
        ADD_FAILURE() << K->Name << " handler " << H << ": " << Err;

      VerificationReport Fresh = verifyProgram(*P2);
      ASSERT_EQ(Out.Report.Results.size(), Fresh.Results.size());
      for (size_t I = 0; I < Fresh.Results.size(); ++I) {
        const PropertyResult &Got = Out.Report.Results[I];
        const PropertyResult &Want = Fresh.Results[I];
        EXPECT_EQ(Got.Status, Want.Status)
            << K->Name << " handler " << H << " " << Want.Name;
        EXPECT_EQ(Got.Reason, Want.Reason)
            << K->Name << " handler " << H << " " << Want.Name;
        EXPECT_EQ(Got.CertJson, Want.CertJson)
            << K->Name << " handler " << H << " " << Want.Name;
      }
    }
  }
}

TEST(Incremental, FingerprintStripsOnlyProperties) {
  ProgramPtr P1 = kernels::load(kernels::ssh());
  ProgramPtr P2 = kernels::load(kernels::ssh2());
  EXPECT_NE(codeFingerprint(*P1), codeFingerprint(*P2));
  EXPECT_EQ(codeFingerprint(*P1), codeFingerprint(*P1));
  EXPECT_EQ(codeFingerprint(*P1).find("property"), std::string::npos);
}

} // namespace
} // namespace reflex
