//===- tests/incremental_test.cc - Incremental re-verification --*- C++ -*-===//

#include "kernels/kernels.h"
#include "test_util.h"
#include "verify/incremental.h"

namespace reflex {
namespace {

TEST(Incremental, UnchangedProgramReusesEverything) {
  ProgramPtr P = kernels::load(kernels::ssh());
  IncrementalVerifier IV;
  auto First = IV.verify(*P);
  EXPECT_EQ(First.Reverified, P->Properties.size());
  EXPECT_EQ(First.Reused, 0u);
  EXPECT_TRUE(First.Report.allProved());

  auto Second = IV.verify(*P);
  EXPECT_EQ(Second.Reverified, 0u);
  EXPECT_EQ(Second.Reused, P->Properties.size());
  EXPECT_TRUE(Second.Report.allProved());
}

TEST(Incremental, NewPropertyOnlyVerifiesItself) {
  const kernels::KernelDef &K = kernels::ssh();
  ProgramPtr P1 = kernels::load(K);
  IncrementalVerifier IV;
  IV.verify(*P1);

  // Add one property; the code is unchanged.
  std::string Src2 = std::string(K.Source) +
                     "\nproperty ExtraAdjacent: forall u, p.\n"
                     "  [Recv(Connection, ReqAuth(u, p))] ImmBefore "
                     "[Send(Password, CheckAuth(u, p, 1))];\n";
  ProgramPtr P2 = mustLoad(Src2);
  ASSERT_NE(P2, nullptr);
  auto Out = IV.verify(*P2);
  EXPECT_EQ(Out.Reused, P1->Properties.size());
  EXPECT_EQ(Out.Reverified, 1u);
}

TEST(Incremental, CodeEditInvalidatesEverything) {
  const kernels::KernelDef &K = kernels::ssh();
  ProgramPtr P1 = kernels::load(K);
  IncrementalVerifier IV;
  IV.verify(*P1);

  // Change a handler body (behaviourally harmless, but the fingerprint
  // must be conservative).
  std::string Src2 = K.Source;
  size_t Pos = Src2.find("auth_ok = true;");
  ASSERT_NE(Pos, std::string::npos);
  Src2.insert(Pos, "auth_user = user;\n  ");
  ProgramPtr P2 = mustLoad(Src2);
  ASSERT_NE(P2, nullptr);
  auto Out = IV.verify(*P2);
  EXPECT_EQ(Out.Reused, 0u);
  EXPECT_EQ(Out.Reverified, P2->Properties.size());
  EXPECT_TRUE(Out.Report.allProved()) << "the edit preserves the policies";
}

TEST(Incremental, VerdictsAgreeWithFreshVerification) {
  // Reused verdicts must equal what a fresh run produces — including for
  // a kernel with an unprovable property.
  std::string Src = R"(
component A "a";
message Ping(num);
message Mark(num);
init { X <- spawn A(); }
handler A => Ping(n) { send(X, Mark(n)); }
property Bad: forall n.
  [Recv(A, Mark(n))] Enables [Send(A, Mark(n))];
property Fine: forall n.
  [Recv(A, Ping(n))] Ensures [Send(A, Mark(n))];
)";
  ProgramPtr P = mustLoad(Src);
  IncrementalVerifier IV;
  IV.verify(*P);
  auto Cached = IV.verify(*P);
  VerificationReport Fresh = verifyProgram(*P);
  ASSERT_EQ(Cached.Report.Results.size(), Fresh.Results.size());
  for (size_t I = 0; I < Fresh.Results.size(); ++I)
    EXPECT_EQ(Cached.Report.Results[I].Status, Fresh.Results[I].Status)
        << Fresh.Results[I].Name;
}

TEST(Incremental, FingerprintStripsOnlyProperties) {
  ProgramPtr P1 = kernels::load(kernels::ssh());
  ProgramPtr P2 = kernels::load(kernels::ssh2());
  EXPECT_NE(codeFingerprint(*P1), codeFingerprint(*P2));
  EXPECT_EQ(codeFingerprint(*P1), codeFingerprint(*P1));
  EXPECT_EQ(codeFingerprint(*P1).find("property"), std::string::npos);
}

} // namespace
} // namespace reflex
