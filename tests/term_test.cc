//===- tests/term_test.cc - Hash-consed term tests --------------*- C++ -*-===//

#include "sym/term.h"

#include <gtest/gtest.h>

namespace reflex {
namespace {

TEST(Term, HashConsing) {
  TermContext Ctx;
  EXPECT_EQ(Ctx.numLit(3), Ctx.numLit(3)) << "pointer equality";
  EXPECT_NE(Ctx.numLit(3), Ctx.numLit(4));
  EXPECT_EQ(Ctx.strLit("x"), Ctx.strLit("x"));
  EXPECT_EQ(Ctx.stateSym("v", BaseType::Num), Ctx.stateSym("v", BaseType::Num))
      << "state symbols are canonical";
  EXPECT_NE(Ctx.freshSym("f", BaseType::Num), Ctx.freshSym("f", BaseType::Num))
      << "fresh symbols are distinct";
  TermRef A = Ctx.stateSym("a", BaseType::Num);
  TermRef B = Ctx.stateSym("b", BaseType::Num);
  EXPECT_EQ(Ctx.add(A, B), Ctx.add(A, B));
}

TEST(Term, EqSimplification) {
  TermContext Ctx;
  TermRef X = Ctx.stateSym("x", BaseType::Num);
  EXPECT_EQ(Ctx.eq(X, X), Ctx.trueTerm());
  EXPECT_EQ(Ctx.eq(Ctx.numLit(1), Ctx.numLit(1)), Ctx.trueTerm());
  EXPECT_EQ(Ctx.eq(Ctx.numLit(1), Ctx.numLit(2)), Ctx.falseTerm());
  EXPECT_EQ(Ctx.eq(Ctx.strLit("a"), Ctx.strLit("b")), Ctx.falseTerm());
  // Operand order is normalized: x == 1 and 1 == x are the same node.
  EXPECT_EQ(Ctx.eq(X, Ctx.numLit(1)), Ctx.eq(Ctx.numLit(1), X));
}

TEST(Term, ComponentIdentityAlgebra) {
  TermContext Ctx;
  TermRef InitA = Ctx.comp("Tab", CompIdent::InitRigid, 0, {});
  TermRef InitB = Ctx.comp("Tab", CompIdent::InitRigid, 1, {});
  TermRef New = Ctx.comp("Tab", CompIdent::NewRigid, 2, {});
  TermRef Pre = Ctx.comp("Tab", CompIdent::FlexPre, 3, {});
  TermRef Any = Ctx.comp("Tab", CompIdent::FlexAny, 4, {});
  TermRef Other = Ctx.comp("CookieProc", CompIdent::FlexPre, 5, {});

  EXPECT_EQ(Ctx.eq(InitA, InitA), Ctx.trueTerm());
  EXPECT_EQ(Ctx.eq(InitA, InitB), Ctx.falseTerm()) << "distinct init comps";
  EXPECT_EQ(Ctx.eq(New, InitA), Ctx.falseTerm()) << "new != pre-existing";
  EXPECT_EQ(Ctx.eq(New, Pre), Ctx.falseTerm()) << "new != unknown pre";
  EXPECT_NE(Ctx.eq(Pre, InitA), Ctx.falseTerm()) << "pre may be an init comp";
  EXPECT_NE(Ctx.eq(Any, New), Ctx.falseTerm()) << "FlexAny is compatible";
  EXPECT_EQ(Ctx.eq(Pre, Other), Ctx.falseTerm()) << "type mismatch";
}

TEST(Term, BooleanAndArithmeticFolding) {
  TermContext Ctx;
  TermRef X = Ctx.stateSym("x", BaseType::Num);
  TermRef B = Ctx.stateSym("b", BaseType::Bool);
  EXPECT_EQ(Ctx.andT(Ctx.trueTerm(), B), B);
  EXPECT_EQ(Ctx.andT(Ctx.falseTerm(), B), Ctx.falseTerm());
  EXPECT_EQ(Ctx.orT(B, Ctx.trueTerm()), Ctx.trueTerm());
  EXPECT_EQ(Ctx.notT(Ctx.notT(B)), B);
  EXPECT_EQ(Ctx.add(Ctx.numLit(2), Ctx.numLit(3)), Ctx.numLit(5));
  EXPECT_EQ(Ctx.add(X, Ctx.numLit(0)), X);
  EXPECT_EQ(Ctx.sub(X, X), Ctx.numLit(0));
  EXPECT_EQ(Ctx.lt(Ctx.numLit(1), Ctx.numLit(2)), Ctx.trueTerm());
  EXPECT_EQ(Ctx.lt(X, X), Ctx.falseTerm());
  EXPECT_EQ(Ctx.le(X, X), Ctx.trueTerm());
}

TEST(Term, SimplifyToggle) {
  TermContext Ctx;
  Ctx.setSimplify(false);
  TermRef T = Ctx.eq(Ctx.numLit(1), Ctx.numLit(2));
  EXPECT_EQ(T->Kind, TermKind::Eq) << "no folding when disabled";
  TermRef A = Ctx.add(Ctx.numLit(2), Ctx.numLit(3));
  EXPECT_EQ(A->Kind, TermKind::Add);
}

TEST(Term, Substitution) {
  TermContext Ctx;
  TermRef X = Ctx.stateSym("x", BaseType::Num);
  TermRef Y = Ctx.stateSym("y", BaseType::Num);
  TermRef T = Ctx.eq(Ctx.add(X, Ctx.numLit(1)), Y);
  std::unordered_map<TermRef, TermRef> Map{{X, Ctx.numLit(4)}};
  TermRef S = Ctx.substitute(T, Map);
  EXPECT_EQ(S, Ctx.eq(Ctx.numLit(5), Y)) << "folds after substitution";
  EXPECT_EQ(Ctx.substitute(T, {}), T) << "empty map is identity";
}

TEST(Term, SubstitutionIntoComponents) {
  TermContext Ctx;
  TermRef D = Ctx.stateSym("d", BaseType::Str);
  TermRef C = Ctx.comp("Tab", CompIdent::NewRigid, 0, {D});
  std::unordered_map<TermRef, TermRef> Map{{D, Ctx.strLit("a.com")}};
  TermRef S = Ctx.substitute(C, Map);
  ASSERT_EQ(S->Kind, TermKind::Comp);
  EXPECT_EQ(S->Ops[0], Ctx.strLit("a.com"));
  EXPECT_EQ(S->IntVal, C->IntVal) << "identity preserved";
}

TEST(Term, LiteralValue) {
  TermContext Ctx;
  EXPECT_EQ(*Ctx.literalValue(Ctx.numLit(3)), Value::num(3));
  EXPECT_EQ(*Ctx.literalValue(Ctx.strLit("s")), Value::str("s"));
  EXPECT_EQ(*Ctx.literalValue(Ctx.boolLit(true)), Value::boolean(true));
  EXPECT_FALSE(
      Ctx.literalValue(Ctx.stateSym("x", BaseType::Num)).has_value());
}

TEST(Term, DnfSplitting) {
  TermContext Ctx;
  TermRef A = Ctx.stateSym("a", BaseType::Bool);
  TermRef B = Ctx.stateSym("b", BaseType::Bool);
  TermRef C = Ctx.stateSym("c", BaseType::Bool);

  // a && b, positive: one conjunct of two literals.
  auto D1 = splitCondDNF(Ctx.andT(A, B), true);
  ASSERT_TRUE(D1.has_value());
  ASSERT_EQ(D1->size(), 1u);
  EXPECT_EQ((*D1)[0].size(), 2u);

  // !(a && b): two disjuncts.
  auto D2 = splitCondDNF(Ctx.andT(A, B), false);
  ASSERT_TRUE(D2.has_value());
  EXPECT_EQ(D2->size(), 2u);
  EXPECT_FALSE((*D2)[0][0].Pos);

  // (a || b) && c: cross product -> two disjuncts of two lits.
  auto D3 = splitCondDNF(Ctx.andT(Ctx.orT(A, B), C), true);
  ASSERT_TRUE(D3.has_value());
  EXPECT_EQ(D3->size(), 2u);

  // Constant conditions.
  auto DT = splitCondDNF(Ctx.trueTerm(), true);
  ASSERT_TRUE(DT.has_value());
  ASSERT_EQ(DT->size(), 1u);
  EXPECT_TRUE((*DT)[0].empty()) << "trivially true disjunct";
  auto DF = splitCondDNF(Ctx.trueTerm(), false);
  ASSERT_TRUE(DF.has_value());
  EXPECT_TRUE(DF->empty()) << "no disjunct: false";
}

TEST(Term, DnfOverflowIsDetected) {
  TermContext Ctx;
  // (a1||b1) && (a2||b2) && ... doubles the disjunct count each time.
  TermRef Cond = Ctx.trueTerm();
  for (int I = 0; I < 12; ++I) {
    TermRef A = Ctx.freshSym("a", BaseType::Bool);
    TermRef B = Ctx.freshSym("b", BaseType::Bool);
    Cond = Ctx.andT(Cond, Ctx.orT(A, B));
  }
  EXPECT_FALSE(splitCondDNF(Cond, true, /*MaxDisjuncts=*/64).has_value());
}

TEST(Term, TermCountGrows) {
  TermContext Ctx;
  size_t Before = Ctx.termCount();
  Ctx.add(Ctx.stateSym("p", BaseType::Num), Ctx.numLit(1));
  EXPECT_GT(Ctx.termCount(), Before);
}

//===----------------------------------------------------------------------===//
// Frozen contexts and overlays (the phase-1/phase-2 sharing split)
//===----------------------------------------------------------------------===//

TEST(TermOverlay, DedupsIntoTheFrozenBaseByPointer) {
  TermContext Base;
  TermRef X = Base.stateSym("x", BaseType::Num);
  TermRef Sum = Base.add(X, Base.numLit(1));
  Base.freeze();

  TermContext Over(&Base);
  // Hash-consing looks through the layer: rebuilding a base term from the
  // overlay finds the base node itself, so mixed base/overlay terms keep
  // pointer-equality semantics.
  EXPECT_EQ(Over.stateSym("x", BaseType::Num), X) << "named-symbol lookup";
  EXPECT_EQ(Over.add(Over.stateSym("x", BaseType::Num), Over.numLit(1)), Sum);
  EXPECT_TRUE(Over.inFrozenBase(Sum));
  EXPECT_EQ(Over.baseTermCount(), uint32_t(Base.termCount()));
  EXPECT_EQ(Over.termCount(), Base.termCount()) << "no overlay allocations";
}

TEST(TermOverlay, NewTermsContinueTheIdSpace) {
  TermContext Base;
  Base.stateSym("x", BaseType::Num);
  Base.freeze();

  TermContext Over(&Base);
  TermRef Fresh = Over.numLit(42); // not in the base
  EXPECT_FALSE(Over.inFrozenBase(Fresh));
  EXPECT_GE(Fresh->Id, Over.baseTermCount());
  EXPECT_EQ(Over.termCount(), Base.termCount() + 1);
  // Overlay terms compose with base terms in new nodes.
  TermRef Mixed = Over.add(Over.stateSym("x", BaseType::Num), Fresh);
  EXPECT_FALSE(Over.inFrozenBase(Mixed));
  EXPECT_EQ(Mixed, Over.add(Over.stateSym("x", BaseType::Num),
                            Over.numLit(42)))
      << "hash-consing holds within the overlay too";
}

TEST(TermOverlay, SiblingOverlaysAreIndependentAndDeterministic) {
  TermContext Base;
  Base.stateSym("x", BaseType::Num);
  Base.freeze();

  // Two overlays over one base — the per-worker arrangement. Each is
  // private: the same new term gets the same deterministic id in both
  // (ids are a function of allocation order, which both repeat), but the
  // nodes live in their own arenas.
  TermContext A(&Base);
  TermContext B(&Base);
  TermRef FA = A.numLit(7);
  TermRef FB = B.numLit(7);
  EXPECT_NE(FA, FB) << "overlay allocations are private";
  EXPECT_EQ(FA->Id, FB->Id) << "but deterministic";
  EXPECT_EQ(A.str(FA), B.str(FB));
}

TEST(TermOverlay, FreezeStillServesExistingTerms) {
  TermContext Ctx;
  TermRef X = Ctx.stateSym("x", BaseType::Num);
  TermRef Lit = Ctx.numLit(3);
  TermRef Sum = Ctx.add(X, Lit);
  Ctx.freeze();
  EXPECT_TRUE(Ctx.frozen());
  // Reads and hash-cons *lookups* stay legal — only allocation aborts.
  EXPECT_EQ(Ctx.stateSym("x", BaseType::Num), X);
  EXPECT_EQ(Ctx.add(X, Lit), Sum);
  EXPECT_EQ(Ctx.str(Sum), Ctx.str(Sum));
}

TEST(TermContextDeathTest, BuildingANewTermOnAFrozenContextAborts) {
  TermContext Ctx;
  Ctx.stateSym("x", BaseType::Num);
  Ctx.freeze();
  // No overlay: allocating any term the context has not seen before is
  // the exact bug the freeze bit exists to catch (a worker mutating the
  // shared base instead of its overlay), so it must abort, not race.
  EXPECT_DEATH(Ctx.numLit(99), "frozen TermContext");
}

TEST(TermContextDeathTest, LayeringAnOverlayOnAnUnfrozenBaseAborts) {
  TermContext Base;
  Base.stateSym("x", BaseType::Num);
  // The base must be frozen before overlays read it lock-free.
  EXPECT_DEATH(TermContext{&Base}, "unfrozen base");
}

} // namespace
} // namespace reflex
