//===- tests/term_test.cc - Hash-consed term tests --------------*- C++ -*-===//

#include "sym/term.h"

#include <gtest/gtest.h>

namespace reflex {
namespace {

TEST(Term, HashConsing) {
  TermContext Ctx;
  EXPECT_EQ(Ctx.numLit(3), Ctx.numLit(3)) << "pointer equality";
  EXPECT_NE(Ctx.numLit(3), Ctx.numLit(4));
  EXPECT_EQ(Ctx.strLit("x"), Ctx.strLit("x"));
  EXPECT_EQ(Ctx.stateSym("v", BaseType::Num), Ctx.stateSym("v", BaseType::Num))
      << "state symbols are canonical";
  EXPECT_NE(Ctx.freshSym("f", BaseType::Num), Ctx.freshSym("f", BaseType::Num))
      << "fresh symbols are distinct";
  TermRef A = Ctx.stateSym("a", BaseType::Num);
  TermRef B = Ctx.stateSym("b", BaseType::Num);
  EXPECT_EQ(Ctx.add(A, B), Ctx.add(A, B));
}

TEST(Term, EqSimplification) {
  TermContext Ctx;
  TermRef X = Ctx.stateSym("x", BaseType::Num);
  EXPECT_EQ(Ctx.eq(X, X), Ctx.trueTerm());
  EXPECT_EQ(Ctx.eq(Ctx.numLit(1), Ctx.numLit(1)), Ctx.trueTerm());
  EXPECT_EQ(Ctx.eq(Ctx.numLit(1), Ctx.numLit(2)), Ctx.falseTerm());
  EXPECT_EQ(Ctx.eq(Ctx.strLit("a"), Ctx.strLit("b")), Ctx.falseTerm());
  // Operand order is normalized: x == 1 and 1 == x are the same node.
  EXPECT_EQ(Ctx.eq(X, Ctx.numLit(1)), Ctx.eq(Ctx.numLit(1), X));
}

TEST(Term, ComponentIdentityAlgebra) {
  TermContext Ctx;
  TermRef InitA = Ctx.comp("Tab", CompIdent::InitRigid, 0, {});
  TermRef InitB = Ctx.comp("Tab", CompIdent::InitRigid, 1, {});
  TermRef New = Ctx.comp("Tab", CompIdent::NewRigid, 2, {});
  TermRef Pre = Ctx.comp("Tab", CompIdent::FlexPre, 3, {});
  TermRef Any = Ctx.comp("Tab", CompIdent::FlexAny, 4, {});
  TermRef Other = Ctx.comp("CookieProc", CompIdent::FlexPre, 5, {});

  EXPECT_EQ(Ctx.eq(InitA, InitA), Ctx.trueTerm());
  EXPECT_EQ(Ctx.eq(InitA, InitB), Ctx.falseTerm()) << "distinct init comps";
  EXPECT_EQ(Ctx.eq(New, InitA), Ctx.falseTerm()) << "new != pre-existing";
  EXPECT_EQ(Ctx.eq(New, Pre), Ctx.falseTerm()) << "new != unknown pre";
  EXPECT_NE(Ctx.eq(Pre, InitA), Ctx.falseTerm()) << "pre may be an init comp";
  EXPECT_NE(Ctx.eq(Any, New), Ctx.falseTerm()) << "FlexAny is compatible";
  EXPECT_EQ(Ctx.eq(Pre, Other), Ctx.falseTerm()) << "type mismatch";
}

TEST(Term, BooleanAndArithmeticFolding) {
  TermContext Ctx;
  TermRef X = Ctx.stateSym("x", BaseType::Num);
  TermRef B = Ctx.stateSym("b", BaseType::Bool);
  EXPECT_EQ(Ctx.andT(Ctx.trueTerm(), B), B);
  EXPECT_EQ(Ctx.andT(Ctx.falseTerm(), B), Ctx.falseTerm());
  EXPECT_EQ(Ctx.orT(B, Ctx.trueTerm()), Ctx.trueTerm());
  EXPECT_EQ(Ctx.notT(Ctx.notT(B)), B);
  EXPECT_EQ(Ctx.add(Ctx.numLit(2), Ctx.numLit(3)), Ctx.numLit(5));
  EXPECT_EQ(Ctx.add(X, Ctx.numLit(0)), X);
  EXPECT_EQ(Ctx.sub(X, X), Ctx.numLit(0));
  EXPECT_EQ(Ctx.lt(Ctx.numLit(1), Ctx.numLit(2)), Ctx.trueTerm());
  EXPECT_EQ(Ctx.lt(X, X), Ctx.falseTerm());
  EXPECT_EQ(Ctx.le(X, X), Ctx.trueTerm());
}

TEST(Term, SimplifyToggle) {
  TermContext Ctx;
  Ctx.setSimplify(false);
  TermRef T = Ctx.eq(Ctx.numLit(1), Ctx.numLit(2));
  EXPECT_EQ(T->Kind, TermKind::Eq) << "no folding when disabled";
  TermRef A = Ctx.add(Ctx.numLit(2), Ctx.numLit(3));
  EXPECT_EQ(A->Kind, TermKind::Add);
}

TEST(Term, Substitution) {
  TermContext Ctx;
  TermRef X = Ctx.stateSym("x", BaseType::Num);
  TermRef Y = Ctx.stateSym("y", BaseType::Num);
  TermRef T = Ctx.eq(Ctx.add(X, Ctx.numLit(1)), Y);
  std::unordered_map<TermRef, TermRef> Map{{X, Ctx.numLit(4)}};
  TermRef S = Ctx.substitute(T, Map);
  EXPECT_EQ(S, Ctx.eq(Ctx.numLit(5), Y)) << "folds after substitution";
  EXPECT_EQ(Ctx.substitute(T, {}), T) << "empty map is identity";
}

TEST(Term, SubstitutionIntoComponents) {
  TermContext Ctx;
  TermRef D = Ctx.stateSym("d", BaseType::Str);
  TermRef C = Ctx.comp("Tab", CompIdent::NewRigid, 0, {D});
  std::unordered_map<TermRef, TermRef> Map{{D, Ctx.strLit("a.com")}};
  TermRef S = Ctx.substitute(C, Map);
  ASSERT_EQ(S->Kind, TermKind::Comp);
  EXPECT_EQ(S->Ops[0], Ctx.strLit("a.com"));
  EXPECT_EQ(S->IntVal, C->IntVal) << "identity preserved";
}

TEST(Term, LiteralValue) {
  TermContext Ctx;
  EXPECT_EQ(*Ctx.literalValue(Ctx.numLit(3)), Value::num(3));
  EXPECT_EQ(*Ctx.literalValue(Ctx.strLit("s")), Value::str("s"));
  EXPECT_EQ(*Ctx.literalValue(Ctx.boolLit(true)), Value::boolean(true));
  EXPECT_FALSE(
      Ctx.literalValue(Ctx.stateSym("x", BaseType::Num)).has_value());
}

TEST(Term, DnfSplitting) {
  TermContext Ctx;
  TermRef A = Ctx.stateSym("a", BaseType::Bool);
  TermRef B = Ctx.stateSym("b", BaseType::Bool);
  TermRef C = Ctx.stateSym("c", BaseType::Bool);

  // a && b, positive: one conjunct of two literals.
  auto D1 = splitCondDNF(Ctx.andT(A, B), true);
  ASSERT_TRUE(D1.has_value());
  ASSERT_EQ(D1->size(), 1u);
  EXPECT_EQ((*D1)[0].size(), 2u);

  // !(a && b): two disjuncts.
  auto D2 = splitCondDNF(Ctx.andT(A, B), false);
  ASSERT_TRUE(D2.has_value());
  EXPECT_EQ(D2->size(), 2u);
  EXPECT_FALSE((*D2)[0][0].Pos);

  // (a || b) && c: cross product -> two disjuncts of two lits.
  auto D3 = splitCondDNF(Ctx.andT(Ctx.orT(A, B), C), true);
  ASSERT_TRUE(D3.has_value());
  EXPECT_EQ(D3->size(), 2u);

  // Constant conditions.
  auto DT = splitCondDNF(Ctx.trueTerm(), true);
  ASSERT_TRUE(DT.has_value());
  ASSERT_EQ(DT->size(), 1u);
  EXPECT_TRUE((*DT)[0].empty()) << "trivially true disjunct";
  auto DF = splitCondDNF(Ctx.trueTerm(), false);
  ASSERT_TRUE(DF.has_value());
  EXPECT_TRUE(DF->empty()) << "no disjunct: false";
}

TEST(Term, DnfOverflowIsDetected) {
  TermContext Ctx;
  // (a1||b1) && (a2||b2) && ... doubles the disjunct count each time.
  TermRef Cond = Ctx.trueTerm();
  for (int I = 0; I < 12; ++I) {
    TermRef A = Ctx.freshSym("a", BaseType::Bool);
    TermRef B = Ctx.freshSym("b", BaseType::Bool);
    Cond = Ctx.andT(Cond, Ctx.orT(A, B));
  }
  EXPECT_FALSE(splitCondDNF(Cond, true, /*MaxDisjuncts=*/64).has_value());
}

TEST(Term, TermCountGrows) {
  TermContext Ctx;
  size_t Before = Ctx.termCount();
  Ctx.add(Ctx.stateSym("p", BaseType::Num), Ctx.numLit(1));
  EXPECT_GT(Ctx.termCount(), Before);
}

} // namespace
} // namespace reflex
