//===- tests/parser_test.cc - Parser tests ----------------------*- C++ -*-===//

#include "parser/parser.h"

#include <gtest/gtest.h>

namespace reflex {
namespace {

ProgramPtr parseOk(std::string_view Src) {
  DiagnosticEngine D;
  ProgramPtr P = parseProgram(Src, D);
  EXPECT_NE(P, nullptr) << D.render("parse", Src);
  return P;
}

void parseFails(std::string_view Src) {
  DiagnosticEngine D;
  EXPECT_EQ(parseProgram(Src, D), nullptr);
  EXPECT_TRUE(D.hasErrors());
}

TEST(Parser, Declarations) {
  ProgramPtr P = parseOk(R"(
program demo;
component Plain "a.py";
component WithCfg "b.py" { domain: str, id: num };
message Empty();
message Two(str, fdesc);
var count: num = 0;
var flag: bool = true;
var name: str = "x";
)");
  EXPECT_EQ(P->Name, "demo");
  ASSERT_EQ(P->Components.size(), 2u);
  EXPECT_EQ(P->Components[0].Executable, "a.py");
  ASSERT_EQ(P->Components[1].Config.size(), 2u);
  EXPECT_EQ(P->Components[1].Config[1].Type, BaseType::Num);
  ASSERT_EQ(P->Messages.size(), 2u);
  EXPECT_TRUE(P->Messages[0].Payload.empty());
  EXPECT_EQ(P->Messages[1].Payload[1], BaseType::Fdesc);
  ASSERT_EQ(P->StateVars.size(), 3u);
  EXPECT_EQ(P->StateVars[1].Init, Value::boolean(true));
}

TEST(Parser, HandlersAndCommands) {
  ProgramPtr P = parseOk(R"(
component C "c";
message M(num, str);
message N(str);
var x: num = 0;
init { A <- spawn C(); }
handler C => M(n, s) {
  x = n + 1;
  if (n == 3 || !(x < 2)) {
    send(A, N(s));
  } else {
    r <- call "fetch"(s);
    lookup C() as other {
      send(other, N(r));
    } else {
      fresh <- spawn C();
      nop;
    }
  }
}
)");
  ASSERT_EQ(P->Handlers.size(), 1u);
  const Handler &H = P->Handlers[0];
  EXPECT_EQ(H.CompType, "C");
  EXPECT_EQ(H.MsgName, "M");
  ASSERT_EQ(H.Params.size(), 2u);
  EXPECT_EQ(H.Params[1], "s");
  // The body parses into a block whose second command is an If with a
  // nested Else.
  const auto &Body = castCmd<BlockCmd>(*H.Body);
  ASSERT_EQ(Body.commands().size(), 2u);
  EXPECT_EQ(Body.commands()[0]->kind(), Cmd::Assign);
  const auto &If = castCmd<IfCmd>(*Body.commands()[1]);
  EXPECT_EQ(If.cond().kind(), Expr::Binary);
  EXPECT_EQ(cast<BinaryExpr>(If.cond()).op(), BinOp::Or);
}

TEST(Parser, ElseIfChains) {
  ProgramPtr P = parseOk(R"(
component C "c";
message M(num);
var x: num = 0;
handler C => M(n) {
  if (n == 0) { x = 1; }
  else if (n == 1) { x = 2; }
  else { x = 3; }
}
)");
  const auto &Body = castCmd<BlockCmd>(*P->Handlers[0].Body);
  const auto &If = castCmd<IfCmd>(*Body.commands()[0]);
  EXPECT_EQ(If.elseCmd().kind(), Cmd::If) << "else-if nests";
}

TEST(Parser, TraceProperties) {
  ProgramPtr P = parseOk(R"(
component Tab "t" { domain: str };
message Set(str, str);
message Put(str, str, num);
property Confined: forall d, k.
  [Recv(Tab(domain = d), Set(k, _))] Enables [Send(Tab(domain = d), Put(k, "lit", 3))];
)");
  ASSERT_EQ(P->Properties.size(), 1u);
  const TraceProperty &TP = P->Properties[0].traceProp();
  EXPECT_EQ(TP.Op, TraceOp::Enables);
  ASSERT_EQ(TP.Vars.size(), 2u);
  EXPECT_EQ(TP.A.Kind, ActionPattern::Recv);
  ASSERT_EQ(TP.A.Comp.Fields.size(), 1u);
  EXPECT_EQ(TP.A.Comp.Fields[0].Pat.Kind, PatTerm::Var);
  EXPECT_EQ(TP.A.Msg.Args[1].Kind, PatTerm::Wild);
  EXPECT_EQ(TP.B.Msg.Args[1].LitVal, Value::str("lit"));
  EXPECT_EQ(TP.B.Msg.Args[2].LitVal, Value::num(3));
}

TEST(Parser, AllFiveTraceOps) {
  const char *Ops[] = {"ImmBefore", "ImmAfter", "Enables", "Ensures",
                       "Disables"};
  TraceOp Expected[] = {TraceOp::ImmBefore, TraceOp::ImmAfter,
                        TraceOp::Enables, TraceOp::Ensures,
                        TraceOp::Disables};
  for (int I = 0; I < 5; ++I) {
    std::string Src = "component C \"c\";\nmessage M();\nproperty P:\n  "
                      "[Recv(C, M())] " +
                      std::string(Ops[I]) + " [Send(C, M())];\n";
    ProgramPtr P = parseOk(Src);
    EXPECT_EQ(P->Properties[0].traceProp().Op, Expected[I]) << Ops[I];
  }
}

TEST(Parser, NonInterferenceProperty) {
  ProgramPtr P = parseOk(R"(
component Tab "t" { domain: str };
component UI "u";
message M();
var focus: num = 0;
property NI: forall d.
  noninterference {
    high components: Tab(domain = d), UI;
    high vars: focus;
  };
property NIEmpty:
  noninterference {
    high components: ;
    high vars: ;
  };
)");
  const NIProperty &NI = P->Properties[0].niProp();
  ASSERT_TRUE(NI.Param.has_value());
  EXPECT_EQ(*NI.Param, "d");
  ASSERT_EQ(NI.HighComps.size(), 2u);
  EXPECT_EQ(NI.HighVars, std::vector<std::string>{"focus"});
  EXPECT_TRUE(P->Properties[1].niProp().HighComps.empty());
}

TEST(Parser, SpawnPattern) {
  ProgramPtr P = parseOk(R"(
component Tab "t" { id: num };
message M();
property Unique: forall i.
  [Spawn(Tab(id = i))] Disables [Spawn(Tab(id = i))];
)");
  EXPECT_EQ(P->Properties[0].traceProp().A.Kind, ActionPattern::Spawn);
}

TEST(Parser, SyntaxErrors) {
  parseFails("component;");                       // missing name
  parseFails("message M(;");                      // bad payload
  parseFails("var x num = 0;");                   // missing colon
  parseFails("handler C -> M() {}");              // wrong arrow
  parseFails("component C \"c\";\nhandler C => M() { x = ; }"); // bad expr
  parseFails("property P: [Recv(C, M())] Foo [Send(C, M())];"); // bad op
  parseFails("junk");                             // not a declaration
  parseFails("init { x <- fetch \"f\"(); }");     // bad bind keyword
}

TEST(Parser, AtMostOnceSugar) {
  // §6.2 future-work syntax, n = 1: desugars to self-Disables.
  ProgramPtr P = parseOk(R"(
component C "c";
message M(num);
property Once: forall n.
  atmostonce [Send(C, M(n))];
)");
  const TraceProperty &TP = P->Properties[0].traceProp();
  EXPECT_EQ(TP.Op, TraceOp::Disables);
  EXPECT_EQ(TP.A.str(), TP.B.str());
  EXPECT_EQ(TP.A.Kind, ActionPattern::Send);
}

TEST(Parser, BroadcastGetsTargetedDiagnostic) {
  DiagnosticEngine D;
  EXPECT_EQ(parseProgram("component C \"c\";\nmessage M();\n"
                         "handler C => M() { broadcast(C, M()); }",
                         D),
            nullptr);
  std::string Out = D.render("t");
  EXPECT_NE(Out.find("unbounded number of actions"), std::string::npos);
  EXPECT_NE(Out.find("lookup"), std::string::npos);
}

TEST(Parser, InitOnlyOnce) { parseFails("init {}\ninit {}"); }

TEST(Parser, MissingInitBecomesNop) {
  ProgramPtr P = parseOk("component C \"c\";\nmessage M();");
  ASSERT_NE(P->Init, nullptr);
  EXPECT_EQ(P->Init->kind(), Cmd::Nop);
}

} // namespace
} // namespace reflex
