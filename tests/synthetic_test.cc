//===- tests/synthetic_test.cc - Chain kernel scaling tests -----*- C++ -*-===//
//
// Property-style sweep over generated chain kernels: for every size, all
// properties prove under all optimization configurations (the §6.4
// optimizations are completeness-preserving), and the prover's verdicts
// are stable.
//
//===----------------------------------------------------------------------===//

#include "kernels/synthetic.h"
#include "test_util.h"

namespace reflex {
namespace {

class ChainSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ChainSweep, AllPropertiesProve) {
  unsigned Stages = GetParam();
  ProgramPtr P = mustLoad(kernels::syntheticChainKernel(Stages));
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->Properties.size(), 2 * Stages - 1u);
  VerificationReport R = verifyProgram(*P);
  for (const PropertyResult &Res : R.Results)
    EXPECT_EQ(Res.Status, VerifyStatus::Proved)
        << "chain" << Stages << "/" << Res.Name << ": " << Res.Reason;
}

TEST_P(ChainSweep, OptimizationsPreserveCompleteness) {
  unsigned Stages = GetParam();
  ProgramPtr P = mustLoad(kernels::syntheticChainKernel(Stages));
  for (bool Skip : {false, true})
    for (bool Cache : {false, true}) {
      VerifyOptions O;
      O.SyntacticSkip = Skip;
      O.CacheInvariants = Cache;
      EXPECT_TRUE(verifyProgram(*P, O).allProved())
          << "stages=" << Stages << " skip=" << Skip << " cache=" << Cache;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChainSweep,
                         ::testing::Values(2u, 3u, 5u, 8u, 13u));

class FleetSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(FleetSweep, AllPropertiesProve) {
  unsigned Lanes = GetParam();
  ProgramPtr P = mustLoad(kernels::syntheticFleetKernel(Lanes));
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->Properties.size(), 2 * Lanes);
  VerificationReport R = verifyProgram(*P);
  for (const PropertyResult &Res : R.Results)
    EXPECT_EQ(Res.Status, VerifyStatus::Proved)
        << "fleet" << Lanes << "/" << Res.Name << ": " << Res.Reason;
}

TEST_P(FleetSweep, OptimizationsPreserveCompleteness) {
  unsigned Lanes = GetParam();
  ProgramPtr P = mustLoad(kernels::syntheticFleetKernel(Lanes));
  for (bool Skip : {false, true})
    for (bool Cache : {false, true}) {
      VerifyOptions O;
      O.SyntacticSkip = Skip;
      O.CacheInvariants = Cache;
      EXPECT_TRUE(verifyProgram(*P, O).allProved())
          << "lanes=" << Lanes << " skip=" << Skip << " cache=" << Cache;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FleetSweep, ::testing::Values(1u, 4u, 10u));

TEST(Fleet, UngatedLaneIsRejected) {
  // Drop lane 1's gate: Use1 emits Out1 unconditionally, so Lane1 (every
  // Out1 preceded by Ack1) becomes unprovable (and false).
  std::string Src = kernels::syntheticFleetKernel(3);
  const char Guarded[] = "  if (open1) {\n    send(N1, Out1(x));\n  }";
  size_t Pos = Src.find(Guarded);
  ASSERT_NE(Pos, std::string::npos);
  Src.replace(Pos, sizeof(Guarded) - 1, "  send(N1, Out1(x));");
  ProgramPtr P = mustLoad(Src);
  ASSERT_NE(P, nullptr);
  PropertyResult R = verifyOne(*P, "Lane1");
  EXPECT_NE(R.Status, VerifyStatus::Proved);
  // The other lanes are untouched and still prove.
  EXPECT_EQ(verifyOne(*P, "Lane0").Status, VerifyStatus::Proved);
}

class BranchSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(BranchSweep, AllPropertiesProve) {
  unsigned Depth = GetParam();
  ProgramPtr P = mustLoad(kernels::syntheticBranchKernel(Depth));
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->Properties.size(), 2u);
  VerificationReport R = verifyProgram(*P);
  for (const PropertyResult &Res : R.Results)
    EXPECT_EQ(Res.Status, VerifyStatus::Proved)
        << "branch" << Depth << "/" << Res.Name << ": " << Res.Reason;
}

TEST_P(BranchSweep, OptimizationsPreserveCompleteness) {
  unsigned Depth = GetParam();
  ProgramPtr P = mustLoad(kernels::syntheticBranchKernel(Depth));
  for (bool Skip : {false, true})
    for (bool Cache : {false, true}) {
      VerifyOptions O;
      O.SyntacticSkip = Skip;
      O.CacheInvariants = Cache;
      EXPECT_TRUE(verifyProgram(*P, O).allProved())
          << "depth=" << Depth << " skip=" << Skip << " cache=" << Cache;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BranchSweep,
                         ::testing::Values(1u, 2u, 4u, 6u));

TEST(Branch, UnarmedLeafIsRejected) {
  // Remove the arm gate around the probe nest: Hit can be emitted before
  // Go, so Gated becomes unprovable (and false).
  std::string Src = kernels::syntheticBranchKernel(2);
  const char Gate[] = "if (armed) {";
  size_t Pos = Src.find(Gate, Src.find("Probe"));
  ASSERT_NE(Pos, std::string::npos);
  Src.replace(Pos, sizeof(Gate) - 1, "if (true) {");
  ProgramPtr P = mustLoad(Src);
  ASSERT_NE(P, nullptr);
  PropertyResult R = verifyOne(*P, "Gated");
  EXPECT_NE(R.Status, VerifyStatus::Proved);
}

TEST(Chain, BrokenChainIsRejected) {
  // Remove the guard of stage 2: Chain2 becomes unprovable (and false).
  std::string Src = kernels::syntheticChainKernel(4);
  const char Guarded[] = "if (done1 && !done2) {\n    done2 = true;\n"
                         "    send(W, Out2(x));\n  }";
  size_t Pos = Src.find(Guarded);
  ASSERT_NE(Pos, std::string::npos);
  Src.replace(Pos, sizeof(Guarded) - 1,
              "done2 = true;\n  send(W, Out2(x));");
  ProgramPtr P = mustLoad(Src);
  ASSERT_NE(P, nullptr);
  PropertyResult R = verifyOne(*P, "Chain2");
  EXPECT_NE(R.Status, VerifyStatus::Proved);
}

} // namespace
} // namespace reflex
