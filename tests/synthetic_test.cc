//===- tests/synthetic_test.cc - Chain kernel scaling tests -----*- C++ -*-===//
//
// Property-style sweep over generated chain kernels: for every size, all
// properties prove under all optimization configurations (the §6.4
// optimizations are completeness-preserving), and the prover's verdicts
// are stable.
//
//===----------------------------------------------------------------------===//

#include "kernels/synthetic.h"
#include "test_util.h"

namespace reflex {
namespace {

class ChainSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ChainSweep, AllPropertiesProve) {
  unsigned Stages = GetParam();
  ProgramPtr P = mustLoad(kernels::syntheticChainKernel(Stages));
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->Properties.size(), 2 * Stages - 1u);
  VerificationReport R = verifyProgram(*P);
  for (const PropertyResult &Res : R.Results)
    EXPECT_EQ(Res.Status, VerifyStatus::Proved)
        << "chain" << Stages << "/" << Res.Name << ": " << Res.Reason;
}

TEST_P(ChainSweep, OptimizationsPreserveCompleteness) {
  unsigned Stages = GetParam();
  ProgramPtr P = mustLoad(kernels::syntheticChainKernel(Stages));
  for (bool Skip : {false, true})
    for (bool Cache : {false, true}) {
      VerifyOptions O;
      O.SyntacticSkip = Skip;
      O.CacheInvariants = Cache;
      EXPECT_TRUE(verifyProgram(*P, O).allProved())
          << "stages=" << Stages << " skip=" << Skip << " cache=" << Cache;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChainSweep,
                         ::testing::Values(2u, 3u, 5u, 8u, 13u));

TEST(Chain, BrokenChainIsRejected) {
  // Remove the guard of stage 2: Chain2 becomes unprovable (and false).
  std::string Src = kernels::syntheticChainKernel(4);
  const char Guarded[] = "if (done1 && !done2) {\n    done2 = true;\n"
                         "    send(W, Out2(x));\n  }";
  size_t Pos = Src.find(Guarded);
  ASSERT_NE(Pos, std::string::npos);
  Src.replace(Pos, sizeof(Guarded) - 1,
              "done2 = true;\n  send(W, Out2(x));");
  ProgramPtr P = mustLoad(Src);
  ASSERT_NE(P, nullptr);
  PropertyResult R = verifyOne(*P, "Chain2");
  EXPECT_NE(R.Status, VerifyStatus::Proved);
}

} // namespace
} // namespace reflex
