//===- tests/solver_test.cc - Entailment engine tests -----------*- C++ -*-===//

#include "support/rng.h"
#include "sym/solver.h"

#include <gtest/gtest.h>

namespace reflex {
namespace {

struct SolverTest : ::testing::Test {
  TermContext Ctx;
  Solver S{Ctx};

  Lit eq(TermRef A, TermRef B, bool Pos = true) {
    return Lit(Ctx.eq(A, B), Pos);
  }
  TermRef sym(const char *N, BaseType Ty = BaseType::Num) {
    return Ctx.stateSym(N, Ty);
  }
};

TEST_F(SolverTest, EmptyIsSat) { EXPECT_TRUE(S.maybeSat({})); }

TEST_F(SolverTest, LiteralConflict) {
  TermRef X = sym("x");
  EXPECT_FALSE(S.maybeSat({eq(X, Ctx.numLit(1)), eq(X, Ctx.numLit(2))}));
  EXPECT_TRUE(S.maybeSat({eq(X, Ctx.numLit(1)), eq(X, Ctx.numLit(1))}));
}

TEST_F(SolverTest, TransitiveEquality) {
  TermRef X = sym("x"), Y = sym("y"), Z = sym("z");
  // x = y, y = z, x != z is unsat.
  EXPECT_FALSE(S.maybeSat({eq(X, Y), eq(Y, Z), eq(X, Z, false)}));
  EXPECT_TRUE(S.maybeSat({eq(X, Y), eq(X, Z, false)}));
}

TEST_F(SolverTest, StringEqualities) {
  TermRef D = sym("d", BaseType::Str);
  EXPECT_FALSE(S.maybeSat(
      {eq(D, Ctx.strLit("a.com")), eq(D, Ctx.strLit("b.com"))}));
}

TEST_F(SolverTest, CongruenceOverArithmetic) {
  TermRef X = sym("x"), Y = sym("y");
  // x = y implies x+1 = y+1: asserting the sums differ is unsat.
  TermRef X1 = Ctx.add(X, Ctx.numLit(1));
  TermRef Y1 = Ctx.add(Y, Ctx.numLit(1));
  EXPECT_FALSE(S.maybeSat({eq(X, Y), eq(X1, Y1, false)}));
}

TEST_F(SolverTest, ComponentProjection) {
  // Equal components have equal config fields.
  TermRef FA = Ctx.freshSym("fa", BaseType::Str);
  TermRef FB = Ctx.freshSym("fb", BaseType::Str);
  TermRef A = Ctx.comp("Tab", CompIdent::FlexPre, 0, {FA});
  TermRef B = Ctx.comp("Tab", CompIdent::FlexPre, 1, {FB});
  EXPECT_FALSE(S.maybeSat({eq(A, B), eq(FA, Ctx.strLit("x")),
                           eq(FB, Ctx.strLit("y"))}));
  EXPECT_TRUE(S.maybeSat({eq(A, B), eq(FA, Ctx.strLit("x")),
                          eq(FB, Ctx.strLit("x"))}));
}

TEST_F(SolverTest, ComponentIdentityConflicts) {
  TermRef I0 = Ctx.comp("T", CompIdent::InitRigid, 0, {});
  TermRef I1 = Ctx.comp("T", CompIdent::InitRigid, 1, {});
  TermRef New = Ctx.comp("T", CompIdent::NewRigid, 2, {});
  TermRef Pre = Ctx.comp("T", CompIdent::FlexPre, 3, {});
  // Even via a variable chain the identity algebra bites: pre = i0 and
  // pre = i1 forces i0 = i1, which is impossible. (Direct eq() would fold
  // to false; route through a shared FlexPre so the solver must do it.)
  EXPECT_FALSE(S.maybeSat({eq(Pre, I0), eq(Pre, I1)}));
  EXPECT_FALSE(S.maybeSat({eq(Pre, New)}));
  EXPECT_TRUE(S.maybeSat({eq(Pre, I0)}));
}

TEST_F(SolverTest, BoolAtoms) {
  TermRef B = sym("b", BaseType::Bool);
  EXPECT_FALSE(S.maybeSat({Lit(B, true), Lit(B, false)}));
  EXPECT_FALSE(S.maybeSat({Lit(B, true), eq(B, Ctx.boolLit(false))}));
  EXPECT_FALSE(S.maybeSat({Lit(Ctx.falseTerm(), true)}));
  EXPECT_TRUE(S.maybeSat({Lit(Ctx.falseTerm(), false)}));
}

TEST_F(SolverTest, NumericBounds) {
  TermRef X = sym("x");
  Lit Lt3(Ctx.lt(X, Ctx.numLit(3)), true);
  Lit Gt5(Ctx.lt(Ctx.numLit(5), X), true);
  EXPECT_FALSE(S.maybeSat({Lt3, Gt5})) << "x < 3 and 5 < x";
  EXPECT_FALSE(S.maybeSat({Lt3, eq(X, Ctx.numLit(7))}));
  EXPECT_TRUE(S.maybeSat({Lt3, eq(X, Ctx.numLit(2))}));
  // x < x is unsat even without values.
  EXPECT_FALSE(S.maybeSat({Lit(Ctx.lt(X, X), true)}));
  // Negation: !(x <= 3) with x == 2 is unsat.
  EXPECT_FALSE(S.maybeSat(
      {Lit(Ctx.le(X, Ctx.numLit(3)), false), eq(X, Ctx.numLit(2))}));
}

TEST_F(SolverTest, ArithmeticEvaluation) {
  TermRef X = sym("x");
  TermRef Sum = Ctx.add(X, sym("y"));
  // x = 2, y = 3, x + y != 5 is unsat.
  EXPECT_FALSE(S.maybeSat({eq(X, Ctx.numLit(2)),
                           eq(sym("y"), Ctx.numLit(3)),
                           eq(Sum, Ctx.numLit(5), false)}));
}

TEST_F(SolverTest, Entailment) {
  TermRef X = sym("x"), Y = sym("y");
  std::vector<Lit> Assume{eq(X, Y), eq(Y, Ctx.numLit(4))};
  EXPECT_TRUE(S.entails(Assume, eq(X, Ctx.numLit(4))));
  EXPECT_FALSE(S.entails(Assume, eq(X, Ctx.numLit(5))));
  EXPECT_TRUE(S.entails(Assume, eq(X, Ctx.numLit(5), false)))
      << "entailment of a negative literal";
  EXPECT_TRUE(S.entailsAll(Assume, Assume));
}

TEST_F(SolverTest, EntailGoalLiterallyPresent) {
  TermRef B = sym("b", BaseType::Bool);
  EXPECT_TRUE(S.entails({Lit(B, true)}, Lit(B, true)));
  EXPECT_FALSE(S.entails({}, Lit(B, true)));
}

TEST_F(SolverTest, MemoIsSemanticallyInvisible) {
  TermRef X = sym("x");
  std::vector<Lit> L{eq(X, Ctx.numLit(1)), eq(X, Ctx.numLit(2))};
  EXPECT_FALSE(S.maybeSat(L));
  EXPECT_FALSE(S.maybeSat(L)) << "memoized answer identical";
  Solver NoMemo(Ctx);
  NoMemo.setMemoEnabled(false);
  EXPECT_FALSE(NoMemo.maybeSat(L));
  NoMemo.maybeSat(L);
  EXPECT_EQ(NoMemo.queriesSolved(), 2u) << "each call recomputed";
  EXPECT_EQ(S.queriesSolved(), 1u) << "memo hit";
}

TEST_F(SolverTest, MergeOrderParityAcrossDrainPolicies) {
  // Activity-driven pending-merge ordering must be verdict-invisible:
  // congruence closure is confluent, so the activity-ordered drain, the
  // historical LIFO drain, and the from-scratch reference algorithm
  // agree on every query. Random literal sets over a small term algebra
  // exercise congruence cascades (shared subterms) and conflicts.
  Rng Rand(20260808);
  for (int Round = 0; Round < 200; ++Round) {
    TermContext C;
    Solver Act(C), Lifo(C), Ref(C);
    Act.setMemoEnabled(false);
    Lifo.setMemoEnabled(false);
    Lifo.setActivityMergeOrder(false);
    Ref.setMemoEnabled(false);
    Ref.setIncrementalEnabled(false);
    TermRef V[4] = {C.stateSym("x", BaseType::Num),
                    C.stateSym("y", BaseType::Num),
                    C.stateSym("z", BaseType::Num),
                    C.stateSym("w", BaseType::Num)};
    auto Term = [&]() -> TermRef {
      TermRef T = V[Rand.below(4)];
      for (unsigned K = Rand.below(3); K; --K)
        T = Rand.below(2) ? C.add(T, V[Rand.below(4)])
                          : C.add(T, C.numLit(int64_t(Rand.below(3))));
      return T;
    };
    std::vector<Lit> Ls;
    for (unsigned I = 0, N = 3 + Rand.below(8); I < N; ++I)
      Ls.push_back(Lit(C.eq(Term(), Term()), Rand.below(4) != 0));
    SatResult RA = Act.checkLits(Ls);
    SatResult RL = Lifo.checkLits(Ls);
    SatResult RR = Ref.checkLits(Ls);
    ASSERT_EQ(RA, RL) << "activity vs lifo drain disagree, round " << Round;
    ASSERT_EQ(RA, RR) << "incremental vs reference disagree, round " << Round;
  }
}

TEST_F(SolverTest, DepthZeroCapacitySweepIsVerdictNeutral) {
  // A burst of large queries inflates the watched-term signature tables;
  // once the workload shrinks, consecutive cold depth-0 epochs trigger
  // the capacity sweep (SolverStats::SigSweeps). The sweep only releases
  // empty-table bucket arrays, so queries before and after it answer
  // identically.
  S.setMemoEnabled(false);
  TermRef X = sym("x"), Y = sym("y");
  {
    // Burst epoch: ~2400 signature-bearing terms in one scope.
    Solver::Scope Sc(S);
    for (int I = 0; I < 800; ++I)
      S.assume(eq(Ctx.add(X, Ctx.numLit(I)), Ctx.add(Y, Ctx.numLit(I))));
    EXPECT_EQ(S.check(), SatResult::Maybe);
  }
  EXPECT_EQ(S.stats().SigSweeps, 0u) << "burst epoch is warm";
  for (int Epoch = 0; Epoch < 6; ++Epoch) {
    Solver::Scope Sc(S, {eq(X, Ctx.numLit(1))});
    EXPECT_FALSE(S.maybeSatUnder({eq(X, Ctx.numLit(2))}));
    EXPECT_TRUE(S.maybeSatUnder({eq(Y, Ctx.numLit(2))}));
  }
  EXPECT_GE(S.stats().SigSweeps, 1u)
      << "consecutive cold epochs release burst capacity";
  // Post-sweep, a fresh burst re-grows the tables and still solves
  // correctly.
  {
    Solver::Scope Sc(S);
    for (int I = 0; I < 800; ++I)
      S.assume(eq(Ctx.add(X, Ctx.numLit(I)), Ctx.add(Y, Ctx.numLit(I))));
    S.assume(eq(X, Ctx.numLit(1)));
    S.assume(eq(X, Ctx.numLit(2)));
    EXPECT_EQ(S.check(), SatResult::Unsat);
  }
}

// --- Soundness sweep against brute force ----------------------------------
// Every Proved verdict in the system rests on the solver's Unsat answers
// being sound. Generate random literal sets over three num variables and
// one bool variable, decide them by brute force over a small domain, and
// require: solver says Unsat => brute force finds no model. (The converse
// may fail — the engine is deliberately incomplete — but on this fragment
// we also count how often it detects genuine unsatisfiability.)

class SolverSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverSoundness, UnsatIsNeverWrong) {
  Rng Rand(GetParam());
  unsigned TrulyUnsat = 0, Detected = 0;
  for (int Round = 0; Round < 400; ++Round) {
    TermContext Ctx;
    Solver S(Ctx);
    TermRef Vars[3] = {Ctx.stateSym("x", BaseType::Num),
                       Ctx.stateSym("y", BaseType::Num),
                       Ctx.stateSym("z", BaseType::Num)};
    TermRef B = Ctx.stateSym("b", BaseType::Bool);

    auto RandNumTerm = [&]() -> TermRef {
      switch (Rand.below(4)) {
      case 0:
      case 1:
        return Vars[Rand.below(3)];
      case 2:
        return Ctx.numLit(static_cast<int64_t>(Rand.below(3)));
      default:
        return Ctx.add(Vars[Rand.below(3)],
                       Ctx.numLit(static_cast<int64_t>(Rand.below(2))));
      }
    };

    std::vector<Lit> Lits;
    size_t N = 2 + Rand.below(5);
    for (size_t I = 0; I < N; ++I) {
      bool Pos = Rand.chance(2, 3);
      switch (Rand.below(4)) {
      case 0:
        Lits.emplace_back(Ctx.eq(RandNumTerm(), RandNumTerm()), Pos);
        break;
      case 1:
        Lits.emplace_back(Ctx.lt(RandNumTerm(), RandNumTerm()), Pos);
        break;
      case 2:
        Lits.emplace_back(Ctx.le(RandNumTerm(), RandNumTerm()), Pos);
        break;
      default:
        Lits.emplace_back(B, Pos);
        break;
      }
    }

    // Brute force over x, y, z in [0, 3] and b in {false, true}. (The
    // domain is larger than the literal constants, so satisfiable sets
    // have witnesses inside it on this fragment.)
    bool Model = false;
    for (int64_t X = 0; X <= 3 && !Model; ++X)
      for (int64_t Y = 0; Y <= 3 && !Model; ++Y)
        for (int64_t Z = 0; Z <= 3 && !Model; ++Z)
          for (int Bv = 0; Bv <= 1 && !Model; ++Bv) {
            auto EvalNum = [&](TermRef T, auto &&Self) -> int64_t {
              if (T->Kind == TermKind::NumLit)
                return T->IntVal;
              if (T->Kind == TermKind::SymVar) {
                const std::string &Name = Ctx.symbolStr(T->Str);
                return Name == "x" ? X : Name == "y" ? Y : Z;
              }
              int64_t L = Self(T->Ops[0], Self);
              int64_t R = Self(T->Ops[1], Self);
              return T->Kind == TermKind::Add ? L + R : L - R;
            };
            bool Ok = true;
            for (const Lit &L : Lits) {
              bool V;
              switch (L.Atom->Kind) {
              case TermKind::Eq:
                V = EvalNum(L.Atom->Ops[0], EvalNum) ==
                    EvalNum(L.Atom->Ops[1], EvalNum);
                break;
              case TermKind::Lt:
                V = EvalNum(L.Atom->Ops[0], EvalNum) <
                    EvalNum(L.Atom->Ops[1], EvalNum);
                break;
              case TermKind::Le:
                V = EvalNum(L.Atom->Ops[0], EvalNum) <=
                    EvalNum(L.Atom->Ops[1], EvalNum);
                break;
              case TermKind::BoolLit:
                // Builder simplification folds ground atoms (e.g. 2 < 1)
                // to boolean literals before the solver sees them.
                V = L.Atom->IntVal != 0;
                break;
              default:
                V = Bv != 0; // the bool variable
                break;
              }
              if (V != L.Pos) {
                Ok = false;
                break;
              }
            }
            Model |= Ok;
          }

    bool SolverUnsat = !S.maybeSat(Lits);
    if (SolverUnsat)
      ASSERT_FALSE(Model) << "solver claimed Unsat for a satisfiable set!";
    if (!Model) {
      ++TrulyUnsat;
      Detected += SolverUnsat;
    }
  }
  // Effectiveness sanity: the fragment's contradictions are mostly within
  // reach of congruence + bounds.
  if (TrulyUnsat > 20)
    EXPECT_GT(Detected * 10, TrulyUnsat * 5)
        << "detected only " << Detected << " of " << TrulyUnsat;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverSoundness,
                         ::testing::Values(7u, 77u, 777u, 7777u));

// Property-style sweep: for all small integer pairs, the solver's verdict
// on {x == a, x == b} matches a == b.
class SolverEqSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SolverEqSweep, GroundEqualitiesDecided) {
  TermContext Ctx;
  Solver S(Ctx);
  auto [A, B] = GetParam();
  TermRef X = Ctx.stateSym("x", BaseType::Num);
  bool Sat = S.maybeSat({Lit(Ctx.eq(X, Ctx.numLit(A)), true),
                         Lit(Ctx.eq(X, Ctx.numLit(B)), true)});
  EXPECT_EQ(Sat, A == B);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, SolverEqSweep,
    ::testing::Values(std::pair{0, 0}, std::pair{0, 1}, std::pair{2, 2},
                      std::pair{-1, 1}, std::pair{5, -5},
                      std::pair{100, 100}));

} // namespace
} // namespace reflex
