//===- tests/test_util.h - Shared test helpers ------------------*- C++ -*-===//

#ifndef REFLEX_TESTS_TEST_UTIL_H
#define REFLEX_TESTS_TEST_UTIL_H

#include "reflex/reflex.h"

#include <gtest/gtest.h>

namespace reflex {

/// Parses + validates \p Source, failing the test with diagnostics on
/// error.
inline ProgramPtr mustLoad(const std::string &Source) {
  Result<ProgramPtr> R = loadProgram(Source, "test");
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.error());
  if (!R.ok())
    return nullptr;
  return R.take();
}

/// Expects that loading fails and the diagnostics mention \p Needle.
inline void expectLoadError(const std::string &Source,
                            const std::string &Needle) {
  Result<ProgramPtr> R = loadProgram(Source, "test");
  ASSERT_FALSE(R.ok()) << "expected failure mentioning: " << Needle;
  EXPECT_NE(R.error().find(Needle), std::string::npos)
      << "diagnostics were:\n"
      << R.error();
}

/// Verifies a single named property and returns its result.
inline PropertyResult verifyOne(const Program &P, const std::string &Name,
                                const VerifyOptions &Opts = {}) {
  const Property *Prop = P.findProperty(Name);
  EXPECT_NE(Prop, nullptr) << "no property " << Name;
  VerifySession S(P, Opts);
  return S.verify(*Prop);
}

} // namespace reflex

#endif // REFLEX_TESTS_TEST_UTIL_H
