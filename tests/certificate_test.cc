//===- tests/certificate_test.cc - Certificates and checking ----*- C++ -*-===//
//
// The de Bruijn criterion in miniature: certificates are explicit, export
// to JSON, and — crucially — the independent checker rejects *tampered*
// certificates, which is what separates it from a rubber stamp.
//
//===----------------------------------------------------------------------===//

#include "test_util.h"

namespace reflex {
namespace {

const char Kernel[] = R"(
component A "a";
component B "b";
message Ping(num);
message Mark(num);
var seen: bool = false;
init {
  X <- spawn A();
  Y <- spawn B();
}
handler B => Ping(n) { seen = true; }
handler A => Ping(n) {
  if (seen) {
    send(Y, Mark(n));
  }
}
property PingBeforeMark:
  [Recv(B, Ping(_))] Enables [Send(B, Mark(_))];
)";

struct CertTest : ::testing::Test {
  void SetUp() override {
    P = mustLoad(Kernel);
    ASSERT_NE(P, nullptr);
    Session = std::make_unique<VerifySession>(*P);
    R = Session->verify(*P->findProperty("PingBeforeMark"));
    ASSERT_EQ(R.Status, VerifyStatus::Proved);
    Opts.SyntacticSkip = true;
    Opts.CacheInvariants = true;
  }

  CheckOutcome check(const Certificate &Cert) {
    return checkCertificate(Session->termContext(), *P, Session->behAbs(),
                            *P->findProperty("PingBeforeMark"), Cert, Opts);
  }

  ProgramPtr P;
  std::unique_ptr<VerifySession> Session;
  PropertyResult R;
  ProverOptions Opts;
};

TEST_F(CertTest, GenuineCertificateAccepted) {
  CheckOutcome Out = check(R.Cert);
  EXPECT_TRUE(Out.Ok) << Out.Why;
}

TEST_F(CertTest, TamperedStepKindRejected) {
  Certificate Bad = R.Cert;
  ASSERT_FALSE(Bad.Steps.empty());
  // Claim a different justification for a real step.
  for (ProofStep &S : Bad.Steps)
    if (S.Kind == Justify::InvariantHistory) {
      S.Kind = Justify::LocalObligation;
      S.LocalIndex = 0;
      S.InvariantId = -1;
    }
  CheckOutcome Out = check(Bad);
  EXPECT_FALSE(Out.Ok);
}

TEST_F(CertTest, DroppedStepRejected) {
  Certificate Bad = R.Cert;
  ASSERT_FALSE(Bad.Steps.empty());
  Bad.Steps.pop_back();
  EXPECT_FALSE(check(Bad).Ok);
}

TEST_F(CertTest, TamperedInvariantGuardRejected) {
  Certificate Bad = R.Cert;
  ASSERT_FALSE(Bad.Invariants.empty());
  // Weaken the invariant guard to nothing.
  Bad.Invariants[0].Guard.clear();
  EXPECT_FALSE(check(Bad).Ok);
}

TEST_F(CertTest, ForeignCertificateRejected) {
  // A certificate for a different property does not check.
  Certificate Foreign = R.Cert;
  Foreign.PropertyName = "SomethingElse";
  EXPECT_FALSE(check(Foreign).Ok);
}

TEST(NICertTest, TamperedNICertificateRejected) {
  const char NIKernel[] = R"(
component Hi "h";
component Lo "l";
message Poke(str);
var secret: str = "";
init {
  H <- spawn Hi();
  L <- spawn Lo();
}
handler Hi => Poke(s) { secret = s; }
property NI: noninterference { high components: Hi; high vars: secret; };
)";
  ProgramPtr P = mustLoad(NIKernel);
  ASSERT_NE(P, nullptr);
  VerifySession Session(*P);
  PropertyResult R = Session.verify(*P->findProperty("NI"));
  ASSERT_EQ(R.Status, VerifyStatus::Proved);
  ASSERT_FALSE(R.Cert.NICases.empty());

  ProverOptions Opts;
  CheckOutcome Good = checkCertificate(Session.termContext(), *P,
                                       Session.behAbs(),
                                       *P->findProperty("NI"), R.Cert, Opts);
  EXPECT_TRUE(Good.Ok) << Good.Why;

  Certificate Bad = R.Cert;
  Bad.NICases[0].SenderHigh = !Bad.NICases[0].SenderHigh;
  EXPECT_FALSE(checkCertificate(Session.termContext(), *P, Session.behAbs(),
                                *P->findProperty("NI"), Bad, Opts)
                   .Ok);
  Certificate Dropped = R.Cert;
  Dropped.NICases.pop_back();
  EXPECT_FALSE(checkCertificate(Session.termContext(), *P, Session.behAbs(),
                                *P->findProperty("NI"), Dropped, Opts)
                   .Ok);
}

TEST_F(CertTest, JsonExportIsWellFormedish) {
  std::string Json = R.Cert.toJson(Session->termContext());
  // Spot checks: balanced-ish structure and the expected fields.
  EXPECT_EQ(Json.front(), '{');
  EXPECT_EQ(Json.back(), '}');
  EXPECT_NE(Json.find("\"property\":\"PingBeforeMark\""), std::string::npos);
  EXPECT_NE(Json.find("\"kind\":\"Enables\""), std::string::npos);
  EXPECT_NE(Json.find("\"steps\":"), std::string::npos);
  EXPECT_NE(Json.find("\"invariants\":"), std::string::npos);
  size_t Opens = std::count(Json.begin(), Json.end(), '{');
  size_t Closes = std::count(Json.begin(), Json.end(), '}');
  EXPECT_EQ(Opens, Closes);
}

TEST_F(CertTest, CheckerOptionsMustMatchProducer) {
  // Option toggles change the certificate's *shape* (e.g. syntactic-skip
  // steps); a checker configured differently must reject rather than
  // silently accept.
  ProverOptions Mismatched;
  Mismatched.SyntacticSkip = false;
  Mismatched.CacheInvariants = true;
  CheckOutcome Out =
      checkCertificate(Session->termContext(), *P, Session->behAbs(),
                       *P->findProperty("PingBeforeMark"), R.Cert,
                       Mismatched);
  EXPECT_FALSE(Out.Ok);
}

TEST_F(CertTest, VerifierDowngradesOnRejectedCertificate) {
  // End-to-end: VerifySession itself refuses to report Proved when the
  // checker is on and (hypothetically) the certificate were bad. We can't
  // inject a bad cert through the public API, so instead assert the flag
  // is set on the good path.
  EXPECT_TRUE(R.CertChecked);
}

} // namespace
} // namespace reflex
