//===- tests/certificate_test.cc - Certificates and checking ----*- C++ -*-===//
//
// The de Bruijn criterion in miniature: certificates are explicit, export
// to JSON, and — crucially — the independent checker rejects *tampered*
// certificates, which is what separates it from a rubber stamp.
//
//===----------------------------------------------------------------------===//

#include "test_util.h"

#include "kernels/kernels.h"
#include "verify/pdr.h"

namespace reflex {
namespace {

const char Kernel[] = R"(
component A "a";
component B "b";
message Ping(num);
message Mark(num);
var seen: bool = false;
init {
  X <- spawn A();
  Y <- spawn B();
}
handler B => Ping(n) { seen = true; }
handler A => Ping(n) {
  if (seen) {
    send(Y, Mark(n));
  }
}
property PingBeforeMark:
  [Recv(B, Ping(_))] Enables [Send(B, Mark(_))];
)";

struct CertTest : ::testing::Test {
  void SetUp() override {
    P = mustLoad(Kernel);
    ASSERT_NE(P, nullptr);
    Session = std::make_unique<VerifySession>(*P);
    R = Session->verify(*P->findProperty("PingBeforeMark"));
    ASSERT_EQ(R.Status, VerifyStatus::Proved);
    Opts.SyntacticSkip = true;
    Opts.CacheInvariants = true;
  }

  CheckOutcome check(const Certificate &Cert) {
    return checkCertificate(Session->termContext(), *P, Session->behAbs(),
                            *P->findProperty("PingBeforeMark"), Cert, Opts);
  }

  ProgramPtr P;
  std::unique_ptr<VerifySession> Session;
  PropertyResult R;
  ProverOptions Opts;
};

TEST_F(CertTest, GenuineCertificateAccepted) {
  CheckOutcome Out = check(R.Cert);
  EXPECT_TRUE(Out.Ok) << Out.Why;
}

TEST_F(CertTest, TamperedStepKindRejected) {
  Certificate Bad = R.Cert;
  ASSERT_FALSE(Bad.Steps.empty());
  // Claim a different justification for a real step.
  for (ProofStep &S : Bad.Steps)
    if (S.Kind == Justify::InvariantHistory) {
      S.Kind = Justify::LocalObligation;
      S.LocalIndex = 0;
      S.InvariantId = -1;
    }
  CheckOutcome Out = check(Bad);
  EXPECT_FALSE(Out.Ok);
}

TEST_F(CertTest, DroppedStepRejected) {
  Certificate Bad = R.Cert;
  ASSERT_FALSE(Bad.Steps.empty());
  Bad.Steps.pop_back();
  EXPECT_FALSE(check(Bad).Ok);
}

TEST_F(CertTest, TamperedInvariantGuardRejected) {
  Certificate Bad = R.Cert;
  ASSERT_FALSE(Bad.Invariants.empty());
  // Weaken the invariant guard to nothing.
  Bad.Invariants[0].Guard.clear();
  EXPECT_FALSE(check(Bad).Ok);
}

TEST_F(CertTest, ForeignCertificateRejected) {
  // A certificate for a different property does not check.
  Certificate Foreign = R.Cert;
  Foreign.PropertyName = "SomethingElse";
  EXPECT_FALSE(check(Foreign).Ok);
}

TEST(NICertTest, TamperedNICertificateRejected) {
  const char NIKernel[] = R"(
component Hi "h";
component Lo "l";
message Poke(str);
var secret: str = "";
init {
  H <- spawn Hi();
  L <- spawn Lo();
}
handler Hi => Poke(s) { secret = s; }
property NI: noninterference { high components: Hi; high vars: secret; };
)";
  ProgramPtr P = mustLoad(NIKernel);
  ASSERT_NE(P, nullptr);
  VerifySession Session(*P);
  PropertyResult R = Session.verify(*P->findProperty("NI"));
  ASSERT_EQ(R.Status, VerifyStatus::Proved);
  ASSERT_FALSE(R.Cert.NICases.empty());

  ProverOptions Opts;
  CheckOutcome Good = checkCertificate(Session.termContext(), *P,
                                       Session.behAbs(),
                                       *P->findProperty("NI"), R.Cert, Opts);
  EXPECT_TRUE(Good.Ok) << Good.Why;

  Certificate Bad = R.Cert;
  Bad.NICases[0].SenderHigh = !Bad.NICases[0].SenderHigh;
  EXPECT_FALSE(checkCertificate(Session.termContext(), *P, Session.behAbs(),
                                *P->findProperty("NI"), Bad, Opts)
                   .Ok);
  Certificate Dropped = R.Cert;
  Dropped.NICases.pop_back();
  EXPECT_FALSE(checkCertificate(Session.termContext(), *P, Session.behAbs(),
                                *P->findProperty("NI"), Dropped, Opts)
                   .Ok);
}

TEST_F(CertTest, JsonExportIsWellFormedish) {
  std::string Json = R.Cert.toJson(Session->termContext());
  // Spot checks: balanced-ish structure and the expected fields.
  EXPECT_EQ(Json.front(), '{');
  EXPECT_EQ(Json.back(), '}');
  EXPECT_NE(Json.find("\"property\":\"PingBeforeMark\""), std::string::npos);
  EXPECT_NE(Json.find("\"kind\":\"Enables\""), std::string::npos);
  EXPECT_NE(Json.find("\"steps\":"), std::string::npos);
  EXPECT_NE(Json.find("\"invariants\":"), std::string::npos);
  size_t Opens = std::count(Json.begin(), Json.end(), '{');
  size_t Closes = std::count(Json.begin(), Json.end(), '}');
  EXPECT_EQ(Opens, Closes);
}

TEST_F(CertTest, CheckerOptionsMustMatchProducer) {
  // Option toggles change the certificate's *shape* (e.g. syntactic-skip
  // steps); a checker configured differently must reject rather than
  // silently accept.
  ProverOptions Mismatched;
  Mismatched.SyntacticSkip = false;
  Mismatched.CacheInvariants = true;
  CheckOutcome Out =
      checkCertificate(Session->termContext(), *P, Session->behAbs(),
                       *P->findProperty("PingBeforeMark"), R.Cert,
                       Mismatched);
  EXPECT_FALSE(Out.Ok);
}

TEST_F(CertTest, VerifierDowngradesOnRejectedCertificate) {
  // End-to-end: VerifySession itself refuses to report Proved when the
  // checker is on and (hypothetically) the certificate were bad. We can't
  // inject a bad cert through the public API, so instead assert the flag
  // is set on the good path.
  EXPECT_TRUE(R.CertChecked);
}

//===----------------------------------------------------------------------===//
// PDR clausal certificates (verify/pdr.h): same de Bruijn discipline —
// the checker re-derives the frames proof and validates the clausal
// invariant, so tampered, truncated, and non-inductive clause sets are
// all rejected.
//===----------------------------------------------------------------------===//

struct PdrCertTest : ::testing::Test {
  void SetUp() override {
    P = kernels::load(kernels::pdrlock());
    ASSERT_NE(P, nullptr);
    Prop = P->findProperty("RogueNeedsBlessing");
    ASSERT_NE(Prop, nullptr);
    VerifyOptions VO;
    VO.Engine = EngineKind::Pdr;
    Session = std::make_unique<VerifySession>(*P, VO);
    R = Session->verify(*Prop);
    ASSERT_EQ(R.Status, VerifyStatus::Proved);
    Opts = proverOptions(VO);
  }

  CheckOutcome check(const Certificate &Cert) {
    return checkCertificate(Session->termContext(), *P, Session->behAbs(),
                            *Prop, Cert, Opts);
  }

  ProgramPtr P;
  const Property *Prop = nullptr;
  std::unique_ptr<VerifySession> Session;
  PropertyResult R;
  ProverOptions Opts;
};

TEST_F(PdrCertTest, GenuinePdrCertificateAccepted) {
  EXPECT_EQ(R.Cert.Engine, "pdr");
  ASSERT_FALSE(R.Cert.InvClauses.empty());
  CheckOutcome Out = check(R.Cert);
  EXPECT_TRUE(Out.Ok) << Out.Why;
}

TEST_F(PdrCertTest, TamperedClauseLiteralRejected) {
  Certificate Bad = R.Cert;
  ASSERT_FALSE(Bad.InvClauses.empty());
  ASSERT_FALSE(Bad.InvClauses[0].empty());
  Bad.InvClauses[0][0].Pos = !Bad.InvClauses[0][0].Pos;
  EXPECT_FALSE(check(Bad).Ok);
}

TEST_F(PdrCertTest, DroppedClauseRejected) {
  Certificate Bad = R.Cert;
  ASSERT_GT(Bad.InvClauses.size(), 1u);
  Bad.InvClauses.pop_back();
  EXPECT_FALSE(check(Bad).Ok);
}

TEST_F(PdrCertTest, ErasedEngineFieldRejected) {
  // Stripping the engine tag makes the checker re-derive by induction,
  // which cannot prove this property — the mismatch must reject.
  Certificate Bad = R.Cert;
  Bad.Engine.clear();
  EXPECT_FALSE(check(Bad).Ok);
}

TEST_F(PdrCertTest, NonInductiveClauseSetRejectedByInvariantCheck) {
  // {!armed} alone excludes the bad cube but is not consecutive (the
  // Commit transition re-establishes armed from a primed state); the
  // invariant validation must catch it independently of the step
  // comparison.
  Certificate Bad = R.Cert;
  std::vector<std::vector<Lit>> Clauses;
  for (const std::vector<Lit> &C : Bad.InvClauses) {
    ASSERT_EQ(C.size(), 1u);
    std::string S = Session->termContext().str(C[0].Atom);
    if (S == "armed")
      Clauses.push_back(C);
  }
  ASSERT_EQ(Clauses.size(), 1u);
  Bad.InvClauses = Clauses;
  Solver Solv(Session->termContext());
  std::string Why;
  EXPECT_FALSE(checkPdrInvariant(Session->termContext(), Solv, *P,
                                 Session->behAbs(), *Prop, Bad, Opts, Why));
  EXPECT_NE(Why.find("not preserved"), std::string::npos) << Why;
}

TEST_F(PdrCertTest, CanonicalRoundTripAccepted) {
  std::string Canonical = R.Cert.canonical(Session->termContext());
  EXPECT_NE(Canonical.find("\"engine\":\"pdr\""), std::string::npos);
  EXPECT_NE(Canonical.find("\"clauses\":"), std::string::npos);
  RecheckOutcome Out =
      checkCanonicalCertificate(Session->termContext(), *P,
                                Session->behAbs(), *Prop, Canonical, Opts);
  EXPECT_TRUE(Out.Ok) << Out.Why;
  EXPECT_EQ(Out.Rederived.Engine, "pdr");
}

TEST_F(PdrCertTest, TruncatedCanonicalRejected) {
  std::string Canonical = R.Cert.canonical(Session->termContext());
  std::string Truncated = Canonical.substr(0, Canonical.size() / 2);
  RecheckOutcome Out =
      checkCanonicalCertificate(Session->termContext(), *P,
                                Session->behAbs(), *Prop, Truncated, Opts);
  EXPECT_FALSE(Out.Ok);
}

TEST_F(PdrCertTest, CorruptedCanonicalClauseRejected) {
  std::string Canonical = R.Cert.canonical(Session->termContext());
  size_t At = Canonical.find("!armed");
  ASSERT_NE(At, std::string::npos);
  std::string Bad = Canonical;
  Bad.replace(At, 6, "!prime"); // still parses, different clause
  RecheckOutcome Out = checkCanonicalCertificate(
      Session->termContext(), *P, Session->behAbs(), *Prop, Bad, Opts);
  EXPECT_FALSE(Out.Ok);
}

TEST_F(PdrCertTest, InductionCertificateStaysEngineFree) {
  // Back-compat: induction certificates must not grow engine/clause
  // fields — their canonical bytes are pinned by pre-portfolio caches.
  ProgramPtr Q = mustLoad(Kernel);
  ASSERT_NE(Q, nullptr);
  PropertyResult IndR = verifyOne(*Q, "PingBeforeMark");
  ASSERT_EQ(IndR.Status, VerifyStatus::Proved);
  EXPECT_TRUE(IndR.Cert.Engine.empty());
  EXPECT_TRUE(IndR.Cert.InvClauses.empty());
  EXPECT_EQ(IndR.CertJson.find("\"engine\""), std::string::npos);
  EXPECT_EQ(IndR.CertJson.find("\"clauses\""), std::string::npos);
}

} // namespace
} // namespace reflex
