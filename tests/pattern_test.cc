//===- tests/pattern_test.cc - Concrete action-pattern matching -*- C++ -*-===//

#include "trace/pattern.h"

#include <gtest/gtest.h>

namespace reflex {
namespace {

/// A small trace fixture: two tabs and a cookie process.
Trace fixture() {
  Trace T;
  T.Components.push_back({0, "Tab", {Value::str("a.com"), Value::num(1)}});
  T.Components.push_back({1, "Tab", {Value::str("b.com"), Value::num(2)}});
  T.Components.push_back({2, "CookieProc", {Value::str("a.com")}});
  return T;
}

ActionPattern sendPat(std::string Type,
                      std::vector<CompFieldPattern> Fields,
                      std::string Msg, std::vector<PatTerm> Args) {
  ActionPattern P;
  P.Kind = ActionPattern::Send;
  P.Comp.TypeName = std::move(Type);
  P.Comp.Fields = std::move(Fields);
  P.Msg.MsgName = std::move(Msg);
  P.Msg.Args = std::move(Args);
  return P;
}

Message put(std::string K, std::string V) {
  Message M;
  M.Name = "Put";
  M.Args = {Value::str(std::move(K)), Value::str(std::move(V))};
  return M;
}

TEST(Pattern, KindMismatch) {
  Trace T = fixture();
  Binding B;
  ActionPattern P = sendPat("Tab", {}, "Put",
                            {PatTerm::wild(), PatTerm::wild()});
  EXPECT_FALSE(matchAction(Action::recv(0, put("k", "v")), P, T, B));
  EXPECT_TRUE(matchAction(Action::send(0, put("k", "v")), P, T, B));
}

TEST(Pattern, ComponentTypeAndFields) {
  Trace T = fixture();
  ActionPattern P = sendPat(
      "Tab", {{"domain", 0, PatTerm::lit(Value::str("a.com"))}}, "Put",
      {PatTerm::wild(), PatTerm::wild()});
  Binding B;
  EXPECT_TRUE(matchAction(Action::send(0, put("k", "v")), P, T, B));
  EXPECT_FALSE(matchAction(Action::send(1, put("k", "v")), P, T, B))
      << "wrong domain";
  EXPECT_FALSE(matchAction(Action::send(2, put("k", "v")), P, T, B))
      << "wrong component type";
}

TEST(Pattern, VariableBindingAndConsistency) {
  Trace T = fixture();
  // Send(Tab(domain = d), Put(k, d)): the same variable in two positions
  // must match the same value.
  ActionPattern P = sendPat("Tab", {{"domain", 0, PatTerm::var("d")}},
                            "Put", {PatTerm::var("k"), PatTerm::var("d")});
  {
    Binding B;
    EXPECT_TRUE(matchAction(Action::send(0, put("sid", "a.com")), P, T, B));
    EXPECT_EQ(B.at("d"), Value::str("a.com"));
    EXPECT_EQ(B.at("k"), Value::str("sid"));
  }
  {
    Binding B;
    EXPECT_FALSE(matchAction(Action::send(0, put("sid", "b.com")), P, T, B))
        << "payload d disagrees with config d";
    EXPECT_TRUE(B.empty()) << "failed match must not leak bindings";
  }
}

TEST(Pattern, PreboundVariablesConstrain) {
  Trace T = fixture();
  ActionPattern P = sendPat("Tab", {{"domain", 0, PatTerm::var("d")}},
                            "Put", {PatTerm::wild(), PatTerm::wild()});
  Binding B;
  B.emplace("d", Value::str("b.com"));
  EXPECT_FALSE(matchAction(Action::send(0, put("k", "v")), P, T, B));
  EXPECT_TRUE(matchAction(Action::send(1, put("k", "v")), P, T, B));
}

TEST(Pattern, SpawnPatternIgnoresMessage) {
  Trace T = fixture();
  ActionPattern P;
  P.Kind = ActionPattern::Spawn;
  P.Comp.TypeName = "Tab";
  P.Comp.Fields = {{"id", 1, PatTerm::var("i")}};
  Binding B;
  EXPECT_TRUE(matchAction(Action::spawn(1), P, T, B));
  EXPECT_EQ(B.at("i"), Value::num(2));
  EXPECT_FALSE(matchAction(Action::spawn(2), P, T, B))
      << "CookieProc is not a Tab";
}

TEST(Pattern, MessageNameAndArity) {
  Trace T = fixture();
  Binding B;
  ActionPattern P = sendPat("Tab", {}, "Put", {PatTerm::wild()});
  EXPECT_FALSE(matchAction(Action::send(0, put("k", "v")), P, T, B))
      << "arity mismatch";
  ActionPattern Q = sendPat("Tab", {}, "Get",
                            {PatTerm::wild(), PatTerm::wild()});
  EXPECT_FALSE(matchAction(Action::send(0, put("k", "v")), Q, T, B))
      << "name mismatch";
}

TEST(Pattern, CollectVars) {
  ActionPattern P = sendPat("Tab", {{"domain", 0, PatTerm::var("d")}},
                            "Put", {PatTerm::var("k"), PatTerm::wild()});
  std::set<std::string> Vars;
  P.collectVars(Vars);
  EXPECT_EQ(Vars, (std::set<std::string>{"d", "k"}));
}

} // namespace
} // namespace reflex
