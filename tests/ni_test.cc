//===- tests/ni_test.cc - Non-interference prover tests ---------*- C++ -*-===//
//
// Exercises the Theorem 1 sufficient conditions (§5.2) on minimal
// kernels: NIlo violations (low handlers reaching high components or
// state), NIhi violations (high behaviour depending on low data), the θv
// variable labeling, parameterized labelings with case splits, lookups
// over high-determined component sets, and the no-high-effects fallback.
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"
#include "test_util.h"

namespace reflex {
namespace {

void expectNI(const std::string &Src, const std::string &Prop, bool Holds,
              const std::string &WhyNeedle = "") {
  ProgramPtr P = mustLoad(Src);
  ASSERT_NE(P, nullptr);
  PropertyResult R = verifyOne(*P, Prop);
  if (Holds) {
    EXPECT_EQ(R.Status, VerifyStatus::Proved) << R.Reason;
    EXPECT_TRUE(R.CertChecked);
  } else {
    EXPECT_EQ(R.Status, VerifyStatus::Unknown);
    if (!WhyNeedle.empty()) {
      EXPECT_NE(R.Reason.find(WhyNeedle), std::string::npos) << R.Reason;
    }
  }
}

const char Base[] = R"(
component Hi "h";
component Lo "l";
message Poke(str);
message Data(str);
var secret: str = "";
var pub: str = "";
init {
  H <- spawn Hi();
  L <- spawn Lo();
}
)";

TEST(NI, IsolatedHandlersSatisfyNI) {
  expectNI(std::string(Base) + R"(
handler Hi => Poke(s) { secret = s; }
handler Lo => Poke(s) { pub = s; }
property NI: noninterference { high components: Hi; high vars: secret; };
)",
           "NI", true);
}

TEST(NI, LowSendToHighViolatesNIlo) {
  expectNI(std::string(Base) + R"(
handler Lo => Poke(s) { send(H, Data(s)); }
property NI: noninterference { high components: Hi; high vars: ; };
)",
           "NI", false, "NIlo");
}

TEST(NI, LowUpdateOfHighVarViolatesNIlo) {
  expectNI(std::string(Base) + R"(
handler Lo => Poke(s) { secret = s; }
property NI: noninterference { high components: Hi; high vars: secret; };
)",
           "NI", false, "high state");
}

TEST(NI, LowSpawnOfHighViolatesNIlo) {
  expectNI(std::string(Base) + R"(
handler Lo => Poke(s) { fresh <- spawn Hi(); }
property NI: noninterference { high components: Hi; high vars: ; };
)",
           "NI", false, "spawns");
}

TEST(NI, HighOutputDependingOnLowStateViolatesNIhi) {
  expectNI(std::string(Base) + R"(
handler Lo => Poke(s) { pub = s; }
handler Hi => Poke(s) { send(H, Data(pub)); }
property NI: noninterference { high components: Hi; high vars: secret; };
)",
           "NI", false, "depends on low");
}

TEST(NI, HighOutputFromHighDataIsFine) {
  expectNI(std::string(Base) + R"(
handler Hi => Poke(s) {
  secret = s;
  send(H, Data(secret));
}
property NI: noninterference { high components: Hi; high vars: secret; };
)",
           "NI", true);
}

TEST(NI, ThetaVMatters) {
  // The identical program passes or fails depending only on the variable
  // labeling — the paper's point about asking the user a simple question
  // instead of building a taint engine. (The write and the read must be
  // in different handlers: within one handler the assignment is inlined
  // and the flow is visibly high.)
  std::string Kernel = std::string(Base) + R"(
handler Hi => Poke(s) {
  secret = s;
}
handler Hi => Data(q) {
  send(H, Data(secret));
}
)";
  expectNI(Kernel + "property NI: noninterference { high components: Hi; "
                    "high vars: secret; };",
           "NI", true);
  expectNI(Kernel + "property NI: noninterference { high components: Hi; "
                    "high vars: ; };",
           "NI", false, "low data");
}

TEST(NI, BranchOnLowWithHighEffectsViolates) {
  expectNI(std::string(Base) + R"(
handler Lo => Poke(s) { pub = s; }
handler Hi => Poke(s) {
  if (pub == "go") {
    send(H, Data(s));
  }
}
property NI: noninterference { high components: Hi; high vars: secret; };
)",
           "NI", false, "low support");
}

TEST(NI, BranchOnLowWithoutHighEffectsFallback) {
  // The same low branch is fine when the handler only talks to low
  // components: the no-high-effects fallback applies.
  expectNI(std::string(Base) + R"(
handler Lo => Poke(s) { pub = s; }
handler Hi => Poke(s) {
  if (pub == "go") {
    send(L, Data(s));
  }
}
property NI: noninterference { high components: Hi; high vars: secret; };
)",
           "NI", true);
}

TEST(NI, CallResultsAreHighInputs) {
  // Nondeterministic contexts are inputs by definition (§4.2): a high
  // handler may freely use call results in high outputs.
  expectNI(std::string(Base) + R"(
handler Hi => Poke(s) {
  r <- call "wget"(s);
  send(H, Data(r));
}
property NI: noninterference { high components: Hi; high vars: ; };
)",
           "NI", true);
}

TEST(NI, CallInInitRejected) {
  expectNI(R"(
component Hi "h";
message Poke(str);
init {
  H <- spawn Hi();
  r <- call "boot"();
}
property NI: noninterference { high components: Hi; high vars: ; };
)",
           "NI", false, "init");
}

// --- Parameterized labelings (the browser shape) --------------------------

const char DomainBase[] = R"(
component UI "u";
component Tab "t" { domain: str };
message Open(str);
message Put(str);
message Deliver(str);
init {
  U <- spawn UI();
}
handler UI => Open(d) {
  fresh <- spawn Tab(d);
}
)";

TEST(NI, DomainCaseSplitHolds) {
  expectNI(std::string(DomainBase) + R"(
handler Tab => Put(v) {
  lookup Tab(domain == sender.domain) as peer {
    send(peer, Deliver(v));
  }
}
property NI: forall d.
  noninterference { high components: Tab(domain = d), UI; high vars: ; };
)",
           "NI", true);
}

TEST(NI, CrossDomainDeliveryViolates) {
  expectNI(std::string(DomainBase) + R"(
handler Tab => Put(v) {
  lookup Tab() as peer {
    send(peer, Deliver(v));
  }
}
property NI: forall d.
  noninterference { high components: Tab(domain = d), UI; high vars: ; };
)",
           "NI", false);
}

TEST(NI, HighDeterminedLookupAllowed) {
  // Tabs are spawned only by the always-high UI, so a lookup by a field
  // other than the partition parameter is still deterministic in both
  // runs (the HighDeterminedTypes rule).
  expectNI(std::string(DomainBase) + R"(
message Focus(str);
var focus: str = "";
handler UI => Focus(d) { focus = d; }
handler UI => Put(v) {
  lookup Tab(domain == focus) as t {
    send(t, Deliver(v));
  }
}
property NI: forall d.
  noninterference { high components: Tab(domain = d), UI; high vars: focus; };
)",
           "NI", true);
}

TEST(NI, HighDeterminedLookupNeedsHighConstraint) {
  // Same lookup, but focus is left low: the constraint itself leaks.
  expectNI(std::string(DomainBase) + R"(
message Focus(str);
var focus: str = "";
handler UI => Focus(d) { focus = d; }
handler UI => Put(v) {
  lookup Tab(domain == focus) as t {
    send(t, Deliver(v));
  }
}
property NI: forall d.
  noninterference { high components: Tab(domain = d), UI; high vars: ; };
)",
           "NI", false);
}

TEST(NI, AllBenchmarkNIPropertiesProve) {
  // The four NI rows of Figure 6 (car + three browsers), pinned here so a
  // regression points at this prover rather than the integration test.
  for (const kernels::KernelDef *K : kernels::all()) {
    SCOPED_TRACE(K->Name);
    ProgramPtr P = kernels::load(*K);
    for (const Property &Prop : P->Properties) {
      if (Prop.isTrace())
        continue;
      PropertyResult R = verifyOne(*P, Prop.Name);
      EXPECT_EQ(R.Status, VerifyStatus::Proved) << Prop.Name << R.Reason;
    }
  }
}

} // namespace
} // namespace reflex
