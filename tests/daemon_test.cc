//===- tests/daemon_test.cc - reflexd end-to-end tests --------------------===//
//
// The daemon subsystem under test end to end: an in-process ReflexDaemon
// serving a real AF_UNIX socket, talked to through DaemonClient (and raw
// sockets, for the malformed-stream cases). The central claim is
// byte-parity: every verdict the daemon returns — status, reason,
// certificate JSON — is identical to what a one-shot scheduler run (and
// therefore the CLI) produces for the same program and options, including
// verdicts served from a session's footprint reuse after edits and
// verdicts computed by concurrent clients.
//
//===----------------------------------------------------------------------===//

#include "ast/cmd.h"
#include "daemon/client.h"
#include "daemon/daemon.h"
#include "kernels/kernels.h"
#include "kernels/synthetic.h"
#include "service/scheduler.h"
#include "support/socket.h"
#include "test_util.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace reflex {
namespace {

namespace fs = std::filesystem;

/// AF_UNIX socket paths live in sun_path (~107 bytes), so gtest's deep
/// TempDir is unusable here; short unique /tmp paths instead.
std::string sockPath(const char *Tag) {
  static std::atomic<unsigned> Counter{0};
  std::string P = "/tmp/rfxd-" + std::to_string(::getpid()) + "-" + Tag +
                  "-" + std::to_string(Counter++) + ".sock";
  ::unlink(P.c_str());
  return P;
}

DaemonOptions daemonOptions(const char *Tag) {
  DaemonOptions O;
  O.SocketPath = sockPath(Tag);
  return O;
}

/// A daemon serving in the background for one test; stops and joins on
/// destruction.
struct TestDaemon {
  std::unique_ptr<ReflexDaemon> D;

  explicit TestDaemon(DaemonOptions O) {
    Result<std::unique_ptr<ReflexDaemon>> R = ReflexDaemon::start(O);
    EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.error());
    if (!R.ok())
      return;
    D = R.take();
    D->serveInBackground();
  }
  ~TestDaemon() {
    if (D)
      D->stop();
  }
};

DaemonClient mustConnect(const std::string &Socket) {
  Result<DaemonClient> C = DaemonClient::connect(Socket);
  EXPECT_TRUE(C.ok()) << (C.ok() ? "" : C.error());
  return C.take();
}

/// One round-trip that must parse; "ok" is the caller's to check.
JsonValue mustCall(DaemonClient &C, const std::string &Frame) {
  Result<JsonValue> R = C.call(Frame);
  EXPECT_TRUE(R.ok()) << (R.ok() ? "" : R.error());
  return R.ok() ? R.take() : JsonValue();
}

/// Builds a request frame. \p OptionsJson, when non-empty, is spliced as
/// the "options" object verbatim.
std::string frame(const std::string &Verb, const std::string &Session = "",
                  const std::string &Program = "",
                  const std::string &OptionsJson = "") {
  JsonWriter W;
  W.beginObject();
  W.field("verb", Verb);
  if (!Session.empty())
    W.field("session", Session);
  if (!Program.empty())
    W.field("program", Program);
  if (!OptionsJson.empty()) {
    W.key("options");
    W.rawValue(OptionsJson);
  }
  W.endObject();
  return W.take();
}

/// Canonical re-serialization, for comparing documents that went through
/// a parse (certificates spliced into responses vs. CertJson strings).
void canonInto(const JsonValue &V, JsonWriter &W) {
  if (V.isObject()) {
    W.beginObject();
    for (const auto &[K, E] : V.entries()) {
      W.key(K);
      canonInto(E, W);
    }
    W.endObject();
  } else if (V.isArray()) {
    W.beginArray();
    for (const JsonValue &E : V.items())
      canonInto(E, W);
    W.endArray();
  } else if (V.isString()) {
    W.value(V.stringValue());
  } else if (V.isBool()) {
    W.value(V.boolValue());
  } else if (V.isNumber()) {
    W.value(V.numberValue());
  } else {
    W.nullValue();
  }
}

std::string canon(const JsonValue &V) {
  JsonWriter W;
  canonInto(V, W);
  return W.take();
}

std::string canon(const std::string &Json) {
  Result<JsonValue> V = parseJson(Json);
  EXPECT_TRUE(V.ok()) << (V.ok() ? "" : V.error());
  return V.ok() ? canon(*V) : std::string();
}

/// The byte-parity assertion: the daemon response's results array equals
/// \p Want property for property — status, reason, certificate JSON.
void expectResultsMatch(const JsonValue &Resp, const VerificationReport &Want,
                        const std::string &What) {
  const JsonValue *Results = Resp.get("results");
  ASSERT_NE(Results, nullptr) << What;
  ASSERT_TRUE(Results->isArray()) << What;
  ASSERT_EQ(Results->items().size(), Want.Results.size()) << What;
  for (size_t I = 0; I < Want.Results.size(); ++I) {
    const JsonValue &Got = Results->items()[I];
    const PropertyResult &W = Want.Results[I];
    EXPECT_EQ(Got.getString("name"), W.Name) << What;
    EXPECT_EQ(Got.getString("status"), verifyStatusName(W.Status))
        << What << ": " << W.Name;
    if (W.Status != VerifyStatus::Proved) {
      EXPECT_EQ(Got.getString("reason"), W.Reason) << What << ": " << W.Name;
    } else if (!W.CertJson.empty()) {
      const JsonValue *Cert = Got.get("cert");
      ASSERT_NE(Cert, nullptr) << What << ": " << W.Name;
      EXPECT_EQ(canon(*Cert), canon(W.CertJson)) << What << ": " << W.Name;
    }
  }
  EXPECT_EQ(int64_t(Resp.getNumber("proved")), int64_t(Want.provedCount()))
      << What;
}

/// From bench_incremental: insert \p Stmt at the start of the I-th
/// handler's body.
std::string mutateHandler(const std::string &Src, size_t I,
                          const std::string &Stmt) {
  size_t Pos = 0;
  for (size_t N = 0;; ++N) {
    Pos = Src.find("\nhandler ", Pos);
    if (Pos == std::string::npos)
      return {};
    size_t Brace = Src.find('{', Pos);
    if (Brace == std::string::npos)
      return {};
    if (N == I)
      return Src.substr(0, Brace + 1) + "\n  " + Stmt + Src.substr(Brace + 1);
    Pos = Brace;
  }
}

/// An interface-preserving no-op edit: a self-assignment of a variable
/// the handler already assigns.
std::string nopFor(const Handler &H) {
  std::set<std::string> Assigned;
  collectAssignedVars(*H.Body, Assigned);
  if (Assigned.empty())
    return {};
  const std::string &V = *Assigned.begin();
  return V + " = " + V + ";";
}

/// The last interface-preservingly editable handler's edited source, or
/// "" when the kernel has none.
std::string editedVariant(const std::string &Src, const Program &P) {
  size_t EditIdx = SIZE_MAX;
  std::string Nop;
  for (size_t I = 0; I < P.Handlers.size(); ++I) {
    std::string N = nopFor(P.Handlers[I]);
    if (!N.empty()) {
      EditIdx = I;
      Nop = N;
    }
  }
  return EditIdx == SIZE_MAX ? std::string() : mutateHandler(Src, EditIdx, Nop);
}

VerificationReport freshReport(const Program &P) {
  SchedulerOptions S;
  S.Jobs = 0; // the daemon's default: all cores
  return verifyPrograms({&P}, S).Reports[0];
}

struct CliResult {
  int ExitCode = -1;
  std::string Output;
};

CliResult runCli(const std::string &ArgsAfterBinary) {
  std::string Cmd =
      std::string(REFLEX_CLI_PATH) + " " + ArgsAfterBinary + " 2>&1";
  FILE *Pipe = popen(Cmd.c_str(), "r");
  EXPECT_NE(Pipe, nullptr);
  CliResult R;
  std::array<char, 4096> Buf;
  size_t N;
  while ((N = fread(Buf.data(), 1, Buf.size(), Pipe)) > 0)
    R.Output.append(Buf.data(), N);
  int Status = pclose(Pipe);
  R.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}

std::string writeTemp(const std::string &Content, const std::string &Name) {
  std::string Path = std::string(::testing::TempDir()) + Name;
  std::ofstream Out(Path);
  Out << Content;
  return Path;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

//===----------------------------------------------------------------------===//
// Byte-parity: verify
//===----------------------------------------------------------------------===//

TEST(Daemon, VerifyMatchesOneShotForEveryKernel) {
  TestDaemon TD(daemonOptions("verify"));
  ASSERT_NE(TD.D, nullptr);
  DaemonClient C = mustConnect(TD.D->socketPath());

  for (const kernels::KernelDef *K : kernels::all()) {
    ProgramPtr P = kernels::load(*K);
    VerificationReport Want = freshReport(*P);
    JsonValue Resp = mustCall(C, frame("verify", "", K->Source));
    ASSERT_TRUE(Resp.getBool("ok")) << K->Name << ": "
                                    << Resp.getString("error");
    expectResultsMatch(Resp, Want, K->Name);
  }
}

TEST(Daemon, VerifyMatchesCliJsonAndCerts) {
  const kernels::KernelDef &K = kernels::ssh();
  std::string Src = writeTemp(K.Source, "daemon_cli_parity.rfx");
  std::string JsonOut = writeTemp("", "daemon_cli_parity.json");
  std::string CertsOut = writeTemp("", "daemon_cli_parity.certs");
  CliResult R = runCli("verify " + Src + " --json " + JsonOut + " --certs " +
                       CertsOut);
  ASSERT_EQ(R.ExitCode, 0) << R.Output;

  TestDaemon TD(daemonOptions("cli"));
  ASSERT_NE(TD.D, nullptr);
  DaemonClient C = mustConnect(TD.D->socketPath());
  JsonValue Resp = mustCall(C, frame("verify", "", K.Source));
  ASSERT_TRUE(Resp.getBool("ok")) << Resp.getString("error");

  Result<JsonValue> CliDoc = parseJson(slurp(JsonOut));
  ASSERT_TRUE(CliDoc.ok()) << (CliDoc.ok() ? "" : CliDoc.error());
  const JsonValue *CliProps = CliDoc->get("properties");
  const JsonValue *Results = Resp.get("results");
  ASSERT_NE(CliProps, nullptr);
  ASSERT_NE(Results, nullptr);
  ASSERT_EQ(Results->items().size(), CliProps->items().size());
  for (size_t I = 0; I < Results->items().size(); ++I) {
    const JsonValue &Got = Results->items()[I];
    const JsonValue &Want = CliProps->items()[I];
    EXPECT_EQ(Got.getString("name"), Want.getString("name"));
    EXPECT_EQ(Got.getString("status"), Want.getString("status"));
    if (Want.get("reason")) {
      EXPECT_EQ(Got.getString("reason"), Want.getString("reason"));
    }
  }

  // The CLI's --certs file is the array of exported certificates in
  // report order; the daemon splices the same documents into results[].
  Result<JsonValue> CliCerts = parseJson(slurp(CertsOut));
  ASSERT_TRUE(CliCerts.ok()) << (CliCerts.ok() ? "" : CliCerts.error());
  std::vector<const JsonValue *> DaemonCerts;
  for (const JsonValue &Got : Results->items())
    if (const JsonValue *Cert = Got.get("cert"))
      DaemonCerts.push_back(Cert);
  ASSERT_EQ(DaemonCerts.size(), CliCerts->items().size());
  for (size_t I = 0; I < DaemonCerts.size(); ++I)
    EXPECT_EQ(canon(*DaemonCerts[I]), canon(CliCerts->items()[I]));
}

//===----------------------------------------------------------------------===//
// Sessions: open, edit, reuse, close
//===----------------------------------------------------------------------===//

TEST(Daemon, SessionEditReusesFootprintsAndStaysByteIdentical) {
  const kernels::KernelDef &K = kernels::ssh();
  ProgramPtr P1 = kernels::load(K);
  std::string SrcOne = editedVariant(K.Source, *P1);
  ASSERT_FALSE(SrcOne.empty());
  ProgramPtr POne = mustLoad(SrcOne);

  VerificationReport Want1 = freshReport(*P1);
  VerificationReport WantOne = freshReport(*POne);

  TestDaemon TD(daemonOptions("sess"));
  ASSERT_NE(TD.D, nullptr);
  DaemonClient C = mustConnect(TD.D->socketPath());

  JsonValue Open = mustCall(C, frame("open-session", "s1", K.Source));
  ASSERT_TRUE(Open.getBool("ok")) << Open.getString("error");
  expectResultsMatch(Open, Want1, "open-session");
  EXPECT_EQ(int64_t(Open.getNumber("reverified")),
            int64_t(P1->Properties.size()));

  // Edit one handler interface-preservingly: footprint-disjoint verdicts
  // are served from the session, the dependents re-verify through the
  // scheduler — and the merged report is byte-identical to scratch.
  JsonValue Edit = mustCall(C, frame("edit", "s1", SrcOne));
  ASSERT_TRUE(Edit.getBool("ok")) << Edit.getString("error");
  expectResultsMatch(Edit, WantOne, "edit");
  EXPECT_GT(Edit.getNumber("reused"), 0) << "no footprint reuse at all";
  EXPECT_EQ(int64_t(Edit.getNumber("reused") + Edit.getNumber("reverified")),
            int64_t(POne->Properties.size()));
  EXPECT_EQ(Edit.getNumber("footprint_reused"), Edit.getNumber("reused"));

  // Re-sending the same source is a no-op edit: everything is reused.
  JsonValue Again = mustCall(C, frame("edit", "s1", SrcOne));
  ASSERT_TRUE(Again.getBool("ok")) << Again.getString("error");
  expectResultsMatch(Again, WantOne, "no-op edit");
  EXPECT_EQ(int64_t(Again.getNumber("reused")),
            int64_t(POne->Properties.size()));
  EXPECT_EQ(Again.getNumber("reverified"), 0);

  JsonValue Close = mustCall(C, frame("close-session", "s1"));
  EXPECT_TRUE(Close.getBool("ok"));
  EXPECT_TRUE(Close.getBool("closed"));
  JsonValue Gone = mustCall(C, frame("edit", "s1", SrcOne));
  EXPECT_FALSE(Gone.getBool("ok"));
  EXPECT_NE(Gone.getString("error").find("no open session"),
            std::string::npos);
}

TEST(Daemon, LruEvictionBoundsSessions) {
  DaemonOptions O = daemonOptions("lru");
  O.MaxSessions = 1;
  TestDaemon TD(O);
  ASSERT_NE(TD.D, nullptr);
  DaemonClient C = mustConnect(TD.D->socketPath());

  const std::string SrcA = kernels::ssh2().Source;
  const std::string SrcB = kernels::car().Source;
  ASSERT_TRUE(mustCall(C, frame("open-session", "a", SrcA)).getBool("ok"));
  ASSERT_TRUE(mustCall(C, frame("open-session", "b", SrcB)).getBool("ok"));

  // Opening b evicted a (the LRU bound is 1).
  JsonValue EditA = mustCall(C, frame("edit", "a", SrcA));
  EXPECT_FALSE(EditA.getBool("ok"));
  EXPECT_NE(EditA.getString("error").find("no open session"),
            std::string::npos);
  JsonValue EditB = mustCall(C, frame("edit", "b"));
  EXPECT_TRUE(EditB.getBool("ok")) << EditB.getString("error");
}

//===----------------------------------------------------------------------===//
// Concurrency
//===----------------------------------------------------------------------===//

TEST(Daemon, ConcurrentClientsOnIndependentSessionsMatchSoloRuns) {
  struct Work {
    const kernels::KernelDef *K;
    std::string SrcOne;
    VerificationReport Want1, WantOne;
  };
  std::vector<Work> Jobs;
  for (const kernels::KernelDef *K : {&kernels::ssh2(), &kernels::car()}) {
    Work Wk;
    Wk.K = K;
    ProgramPtr P1 = kernels::load(*K);
    Wk.SrcOne = editedVariant(K->Source, *P1);
    ASSERT_FALSE(Wk.SrcOne.empty()) << K->Name;
    ProgramPtr POne = mustLoad(Wk.SrcOne);
    Wk.Want1 = freshReport(*P1);
    Wk.WantOne = freshReport(*POne);
    Jobs.push_back(std::move(Wk));
  }

  TestDaemon TD(daemonOptions("conc"));
  ASSERT_NE(TD.D, nullptr);

  std::vector<std::thread> Threads;
  std::vector<std::string> Failures;
  std::mutex FailMu;
  for (size_t T = 0; T < Jobs.size(); ++T) {
    Threads.emplace_back([&, T] {
      const Work &Wk = Jobs[T];
      std::string Name = "c" + std::to_string(T);
      auto Fail = [&](const std::string &Msg) {
        std::lock_guard<std::mutex> Lock(FailMu);
        Failures.push_back(Wk.K->Name + ": " + Msg);
      };
      Result<DaemonClient> C = DaemonClient::connect(TD.D->socketPath());
      if (!C.ok())
        return Fail(C.error());
      for (unsigned Round = 0; Round < 2; ++Round) {
        Result<JsonValue> Open =
            C->call(frame("open-session", Name, Wk.K->Source));
        if (!Open.ok() || !Open->getBool("ok"))
          return Fail("open failed");
        expectResultsMatch(*Open, Wk.Want1, Wk.K->Name + " concurrent open");
        Result<JsonValue> Edit = C->call(frame("edit", Name, Wk.SrcOne));
        if (!Edit.ok() || !Edit->getBool("ok"))
          return Fail("edit failed");
        expectResultsMatch(*Edit, Wk.WantOne, Wk.K->Name + " concurrent edit");
      }
      (void)C->call(frame("close-session", Name));
    });
  }
  for (std::thread &T : Threads)
    T.join();
  for (const std::string &F : Failures)
    ADD_FAILURE() << F;
}

TEST(Daemon, VanishedClientDoesNotPoisonLaterRequests) {
  std::string Src = kernels::syntheticChainKernel(10);
  ProgramPtr P = mustLoad(Src);
  VerificationReport Want = freshReport(*P);

  TestDaemon TD(daemonOptions("gone"));
  ASSERT_NE(TD.D, nullptr);

  // A client that fires a verify and disconnects without reading: the
  // RequestWatch cancels the batch; Aborted results are never cached or
  // published, so nothing later can observe the abandonment.
  {
    Result<DaemonClient> C = DaemonClient::connect(TD.D->socketPath());
    ASSERT_TRUE(C.ok()) << C.error();
    ASSERT_TRUE(C->socket().sendAll(frame("verify", "", Src) + "\n").ok());
    // Destructor closes the socket with the request in flight.
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  DaemonClient C = mustConnect(TD.D->socketPath());
  JsonValue Resp = mustCall(C, frame("verify", "", Src));
  ASSERT_TRUE(Resp.getBool("ok")) << Resp.getString("error");
  expectResultsMatch(Resp, Want, "verify after vanished client");
}

//===----------------------------------------------------------------------===//
// Protocol robustness
//===----------------------------------------------------------------------===//

TEST(Daemon, MalformedRequestsGetStructuredErrorsAndTheDaemonSurvives) {
  TestDaemon TD(daemonOptions("robust"));
  ASSERT_NE(TD.D, nullptr);
  DaemonClient C = mustConnect(TD.D->socketPath());

  struct Case {
    const char *Frame;
    const char *ErrNeedle;
  };
  const Case Cases[] = {
      {"{nonsense", "malformed request frame"},
      {"42", "must be a JSON object"},
      {"{}", "missing its 'verb'"},
      {"{\"verb\":\"frobnicate\"}", "unknown verb"},
      {"{\"verb\":17}", "needs a string"},
      {"{\"verb\":\"verify\"}", "needs a 'program'"},
      {"{\"verb\":\"verify\",\"program\":\"program x;\",\"options\":7}",
       "'options' must be an object"},
      {"{\"verb\":\"verify\",\"program\":\"p\",\"options\":{\"jobs\":\"x\"}}",
       "non-negative integer"},
      {"{\"verb\":\"verify\",\"program\":\"p\",\"options\":"
       "{\"no_skip\":\"yes\"}}",
       "needs a boolean"},
      {"{\"verb\":\"verify\",\"program\":\"not a reflex program\"}", ""},
      {"{\"verb\":\"open-session\",\"program\":\"program x;\"}",
       "needs a 'session' name"},
      {"{\"verb\":\"cache-gc\"}", "no proof cache attached"},
  };
  for (const Case &K : Cases) {
    JsonValue Resp = mustCall(C, K.Frame);
    EXPECT_FALSE(Resp.getBool("ok")) << K.Frame;
    EXPECT_NE(Resp.getString("error").find(K.ErrNeedle), std::string::npos)
        << K.Frame << " -> " << Resp.getString("error");
    // The connection survives a structured error.
    JsonValue Ping = mustCall(C, frame("ping"));
    EXPECT_TRUE(Ping.getBool("ok")) << "connection died after: " << K.Frame;
  }
}

TEST(Daemon, OversizedFrameIsRejectedWithoutCrashing) {
  TestDaemon TD(daemonOptions("big"));
  ASSERT_NE(TD.D, nullptr);
  DaemonClient C = mustConnect(TD.D->socketPath());

  std::string Huge(DaemonMaxFrameBytes + 1024, 'x');
  Result<std::string> Resp = C.callRaw(Huge);
  // The daemon answers (best effort) with a structured error and drops
  // the unresynchronizable connection; a short read is also acceptable
  // if the drop wins the race.
  if (Resp.ok()) {
    EXPECT_NE(Resp->find("frame too large"), std::string::npos) << *Resp;
  }

  DaemonClient C2 = mustConnect(TD.D->socketPath());
  EXPECT_TRUE(mustCall(C2, frame("ping")).getBool("ok"));
}

TEST(Daemon, TruncatedFrameDoesNotKillTheDaemon) {
  TestDaemon TD(daemonOptions("trunc"));
  ASSERT_NE(TD.D, nullptr);
  {
    Result<DaemonClient> C = DaemonClient::connect(TD.D->socketPath());
    ASSERT_TRUE(C.ok()) << C.error();
    // Half a frame, no newline, then close.
    ASSERT_TRUE(C->socket().sendAll("{\"verb\":\"ver").ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  DaemonClient C2 = mustConnect(TD.D->socketPath());
  EXPECT_TRUE(mustCall(C2, frame("ping")).getBool("ok"));
}

//===----------------------------------------------------------------------===//
// Metrics, GC, shutdown
//===----------------------------------------------------------------------===//

TEST(Daemon, StatsReportCountsHistogramsAndCacheCounters) {
  std::string CacheDir =
      std::string(::testing::TempDir()) + "daemon_stats_cache";
  fs::remove_all(CacheDir);
  DaemonOptions O = daemonOptions("stats");
  O.CacheDir = CacheDir;
  TestDaemon TD(O);
  ASSERT_NE(TD.D, nullptr);
  DaemonClient C = mustConnect(TD.D->socketPath());

  const std::string Src = kernels::ssh2().Source;
  ASSERT_TRUE(mustCall(C, frame("verify", "", Src)).getBool("ok"));
  ASSERT_TRUE(mustCall(C, frame("verify", "", Src)).getBool("ok"));
  (void)mustCall(C, "{\"verb\":\"frobnicate\"}"); // one recorded error

  JsonValue S = mustCall(C, frame("stats"));
  ASSERT_TRUE(S.getBool("ok"));
  EXPECT_GE(S.getNumber("requests"), 3.0);
  EXPECT_GE(S.getNumber("errors"), 1.0);
  EXPECT_EQ(S.getNumber("sessions"), 0.0);
  EXPECT_GE(S.getNumber("known_programs"), 1.0);
  EXPECT_GE(S.getNumber("uptime_ms"), 0.0);

  const JsonValue *Verbs = S.get("verbs");
  ASSERT_NE(Verbs, nullptr);
  const JsonValue *V = Verbs->get("verify");
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->getNumber("count"), 2.0);
  const JsonValue *Lat = V->get("latency_ms");
  ASSERT_NE(Lat, nullptr);
  double Total = 0;
  for (const char *B : {"<1", "<10", "<100", "<1000", ">=1000"}) {
    ASSERT_NE(Lat->get(B), nullptr);
    Total += Lat->getNumber(B);
  }
  EXPECT_EQ(Total, 2.0) << "histogram buckets must sum to the verb count";

  // Second verify hit the proof cache the first one filled.
  const JsonValue *PC = S.get("proof_cache");
  ASSERT_NE(PC, nullptr);
  EXPECT_GE(PC->getNumber("stores"), 1.0);
  EXPECT_GE(PC->getNumber("hits"), 1.0);
}

TEST(Daemon, CacheGcDropsDeadProgramsAndKeepsWarmHitsAlive) {
  std::string CacheDir = std::string(::testing::TempDir()) + "daemon_gc_cache";
  fs::remove_all(CacheDir);

  // Seed the cache with a program the daemon will never see: its entries
  // are dead from the daemon's perspective and must be collected.
  {
    Result<std::unique_ptr<ProofCache>> Cache = ProofCache::open(CacheDir);
    ASSERT_TRUE(Cache.ok()) << Cache.error();
    ProgramPtr Dead = kernels::load(kernels::webserver());
    SchedulerOptions S;
    S.Cache = Cache->get();
    verifyPrograms({Dead.get()}, S);
    ASSERT_GT(Cache->get()->stats().Stores, 0u);
  }
  auto CountEntries = [&] {
    size_t N = 0;
    for (const auto &E : fs::directory_iterator(CacheDir))
      if (E.is_regular_file() && E.path().extension() == ".json")
        ++N;
    return N;
  };
  size_t SeedEntries = CountEntries();
  ASSERT_GT(SeedEntries, 0u);

  DaemonOptions O = daemonOptions("gc");
  O.CacheDir = CacheDir;
  TestDaemon TD(O);
  ASSERT_NE(TD.D, nullptr);
  DaemonClient C = mustConnect(TD.D->socketPath());

  const std::string Live = kernels::ssh2().Source;
  JsonValue First = mustCall(C, frame("verify", "", Live));
  ASSERT_TRUE(First.getBool("ok"));
  size_t LiveEntries = CountEntries() - SeedEntries;
  ASSERT_GT(LiveEntries, 0u);

  JsonValue Gc = mustCall(C, frame("cache-gc"));
  ASSERT_TRUE(Gc.getBool("ok")) << Gc.getString("error");
  EXPECT_EQ(size_t(Gc.getNumber("scanned")), SeedEntries + LiveEntries);
  EXPECT_EQ(size_t(Gc.getNumber("dropped")), SeedEntries);
  EXPECT_EQ(size_t(Gc.getNumber("kept")), LiveEntries);
  EXPECT_EQ(CountEntries(), LiveEntries) << "the cache directory must shrink";

  // The surviving entries still serve warm hits, byte-identically.
  ProgramPtr P = mustLoad(Live);
  VerificationReport Want = freshReport(*P);
  JsonValue Warm = mustCall(C, frame("verify", "", Live));
  ASSERT_TRUE(Warm.getBool("ok"));
  expectResultsMatch(Warm, Want, "post-GC warm verify");
  EXPECT_GT(Warm.getNumber("proof_cache_hits"), 0.0)
      << "GC must not evict live entries";
}

//===----------------------------------------------------------------------===//
// Proof engines over the wire (docs/ENGINES.md)
//===----------------------------------------------------------------------===//

TEST(Daemon, EngineOptionMatchesOneShotByteForByte) {
  TestDaemon TD(daemonOptions("engine"));
  ASSERT_NE(TD.D, nullptr);
  DaemonClient C = mustConnect(TD.D->socketPath());

  const kernels::KernelDef &K = kernels::pdrlock();
  ProgramPtr P = kernels::load(K);
  for (EngineKind Kind : {EngineKind::Pdr, EngineKind::Portfolio}) {
    SchedulerOptions S;
    S.Jobs = 0;
    S.Verify.Engine = Kind;
    VerificationReport Want = verifyPrograms({P.get()}, S).Reports[0];
    JsonValue Resp =
        mustCall(C, frame("verify", "", K.Source,
                          std::string("{\"engine\":\"") +
                              engineKindName(Kind) + "\"}"));
    ASSERT_TRUE(Resp.getBool("ok")) << Resp.getString("error");
    expectResultsMatch(Resp, Want, engineKindName(Kind));
    // The wire result names the engine that actually served each verdict.
    const JsonValue *Results = Resp.get("results");
    ASSERT_NE(Results, nullptr);
    for (size_t I = 0; I < Want.Results.size(); ++I)
      EXPECT_EQ(Results->items()[I].getString("engine"),
                Want.Results[I].ServedBy)
          << Want.Results[I].Name;
  }
}

TEST(Daemon, BadEngineOptionIsAStructuredError) {
  TestDaemon TD(daemonOptions("engine-bad"));
  ASSERT_NE(TD.D, nullptr);
  DaemonClient C = mustConnect(TD.D->socketPath());
  JsonValue Resp = mustCall(C, frame("verify", "", kernels::ssh2().Source,
                                     "{\"engine\":\"zzz\"}"));
  EXPECT_FALSE(Resp.getBool("ok"));
  EXPECT_NE(Resp.getString("error").find(
                "must be induction, pdr, or portfolio"),
            std::string::npos)
      << Resp.getString("error");
}

TEST(Daemon, StatsCountVerdictsServedPerEngine) {
  TestDaemon TD(daemonOptions("engine-stats"));
  ASSERT_NE(TD.D, nullptr);
  DaemonClient C = mustConnect(TD.D->socketPath());

  ASSERT_TRUE(
      mustCall(C, frame("verify", "", kernels::ssh2().Source)).getBool("ok"));
  ASSERT_TRUE(mustCall(C, frame("verify", "", kernels::pdrlock().Source,
                                "{\"engine\":\"pdr\"}"))
                  .getBool("ok"));

  JsonValue S = mustCall(C, frame("stats"));
  ASSERT_TRUE(S.getBool("ok"));
  const JsonValue *Engines = S.get("engines");
  ASSERT_NE(Engines, nullptr);
  EXPECT_GE(Engines->getNumber("induction"), 1.0)
      << "ssh2's verdicts are served by induction";
  EXPECT_GE(Engines->getNumber("pdr"), 1.0)
      << "pdrlock under --engine=pdr is served by PDR";
}

TEST(Daemon, GcManifestKeepsWarmEntriesAcrossDaemonRestarts) {
  std::string CacheDir =
      std::string(::testing::TempDir()) + "daemon_gc_manifest";
  fs::remove_all(CacheDir);
  auto CountEntries = [&] {
    size_t N = 0;
    for (const auto &E : fs::directory_iterator(CacheDir))
      if (E.is_regular_file() && E.path().extension() == ".json")
        ++N;
    return N;
  };

  size_t FirstLifeEntries = 0;
  {
    // Daemon #1 verifies ssh2 and gcs: the manifest stamps it live.
    DaemonOptions O = daemonOptions("gc-manifest-1");
    O.CacheDir = CacheDir;
    TestDaemon TD(O);
    ASSERT_NE(TD.D, nullptr);
    DaemonClient C = mustConnect(TD.D->socketPath());
    ASSERT_TRUE(mustCall(C, frame("verify", "", kernels::ssh2().Source))
                    .getBool("ok"));
    JsonValue Gc = mustCall(C, frame("cache-gc"));
    ASSERT_TRUE(Gc.getBool("ok"));
    EXPECT_EQ(Gc.getNumber("dropped"), 0.0);
    FirstLifeEntries = CountEntries();
    ASSERT_GT(FirstLifeEntries, 0u);
  }

  {
    // Daemon #2 never sees ssh2, yet its gc keeps the entries: the
    // manifest remembers they were live moments ago. The response
    // reports the widening.
    DaemonOptions O = daemonOptions("gc-manifest-2");
    O.CacheDir = CacheDir;
    TestDaemon TD(O);
    ASSERT_NE(TD.D, nullptr);
    DaemonClient C = mustConnect(TD.D->socketPath());
    ASSERT_TRUE(mustCall(C, frame("verify", "", kernels::car().Source))
                    .getBool("ok"));
    JsonValue Gc = mustCall(C, frame("cache-gc"));
    ASSERT_TRUE(Gc.getBool("ok"));
    EXPECT_EQ(Gc.getNumber("dropped"), 0.0)
        << "a restart must not cold-start the warm proof capital";
    EXPECT_GE(Gc.getNumber("manifest_live"), 1.0);
    EXPECT_GE(size_t(Gc.getNumber("kept")), FirstLifeEntries);
  }
}

TEST(Daemon, ShutdownVerbDrainsAndStopsServing) {
  TestDaemon TD(daemonOptions("down"));
  ASSERT_NE(TD.D, nullptr);
  std::string Socket = TD.D->socketPath();
  DaemonClient C = mustConnect(Socket);
  JsonValue Resp = mustCall(C, frame("shutdown"));
  EXPECT_TRUE(Resp.getBool("ok"));
  EXPECT_EQ(Resp.getString("verb"), "shutdown");

  // serve() unlinks the socket on the way out; connects must start
  // failing shortly after the acknowledgment.
  bool Refused = false;
  for (int I = 0; I < 200 && !Refused; ++I) {
    Refused = !DaemonClient::connect(Socket).ok();
    if (!Refused)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(Refused) << "daemon still accepting after shutdown";
}

} // namespace
} // namespace reflex
