//===- tests/prop_check_test.cc - §4.1 reference semantics ------*- C++ -*-===//
//
// Pins each of the five primitive trace patterns to the paper's English
// semantics on concrete traces. The paper stores traces reverse-
// chronologically; ours are chronological, and these tests are the
// evidence the definitions were flipped correctly.
//
//===----------------------------------------------------------------------===//

#include "prop/check.h"
#include "support/rng.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace reflex {
namespace {

/// One component of type "C" plus helpers producing a trace of M(tag)
/// sends/recvs, so tests read as compact action sequences.
struct Fixture {
  Trace T;

  Fixture() { T.Components.push_back({0, "C", {}}); }

  void recv(int64_t Tag) {
    Message M;
    M.Name = "M";
    M.Args = {Value::num(Tag)};
    T.Actions.push_back(Action::recv(0, M));
  }
  void send(int64_t Tag) {
    Message M;
    M.Name = "M";
    M.Args = {Value::num(Tag)};
    T.Actions.push_back(Action::send(0, M));
  }
  void select() { T.Actions.push_back(Action::select(0)); }
};

/// Pattern over Send/Recv of M with one literal or variable argument.
ActionPattern pat(ActionPattern::PatKind Kind, PatTerm Arg) {
  ActionPattern P;
  P.Kind = Kind;
  P.Comp.TypeName = "C";
  P.Msg.MsgName = "M";
  P.Msg.Args = {std::move(Arg)};
  return P;
}

TraceProperty prop(TraceOp Op, PatTerm A, PatTerm B,
                   std::vector<std::string> Vars = {}) {
  TraceProperty TP;
  TP.Vars = std::move(Vars);
  TP.Op = Op;
  TP.A = pat(ActionPattern::Recv, std::move(A));
  TP.B = pat(ActionPattern::Send, std::move(B));
  return TP;
}

TEST(PropCheck, ImmBeforeHolds) {
  Fixture F;
  F.recv(1); // A
  F.send(2); // B, immediately preceded by A
  EXPECT_FALSE(checkTraceProperty(
      F.T, prop(TraceOp::ImmBefore, PatTerm::lit(Value::num(1)),
                PatTerm::lit(Value::num(2)))));
}

TEST(PropCheck, ImmBeforeViolatedByGap) {
  Fixture F;
  F.recv(1);
  F.select(); // an interloper between A and B
  F.send(2);
  auto V = checkTraceProperty(F.T, prop(TraceOp::ImmBefore,
                                        PatTerm::lit(Value::num(1)),
                                        PatTerm::lit(Value::num(2))));
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->TriggerIndex, 2u);
}

TEST(PropCheck, ImmBeforeViolatedAtTraceStart) {
  Fixture F;
  F.send(2); // B with nothing before it
  EXPECT_TRUE(checkTraceProperty(
      F.T, prop(TraceOp::ImmBefore, PatTerm::lit(Value::num(1)),
                PatTerm::lit(Value::num(2)))));
}

TEST(PropCheck, ImmAfterHoldsAndViolates) {
  TraceProperty P = prop(TraceOp::ImmAfter, PatTerm::lit(Value::num(1)),
                         PatTerm::lit(Value::num(2)));
  {
    Fixture F;
    F.recv(1);
    F.send(2);
    EXPECT_FALSE(checkTraceProperty(F.T, P));
  }
  {
    Fixture F;
    F.recv(1);
    F.select();
    F.send(2);
    EXPECT_TRUE(checkTraceProperty(F.T, P)) << "not immediate";
  }
  {
    Fixture F;
    F.recv(1); // A is the last action: nothing follows
    EXPECT_TRUE(checkTraceProperty(F.T, P));
  }
}

TEST(PropCheck, EnablesAnywhereEarlier) {
  TraceProperty P = prop(TraceOp::Enables, PatTerm::lit(Value::num(1)),
                         PatTerm::lit(Value::num(2)));
  {
    Fixture F;
    F.recv(1);
    F.select();
    F.select();
    F.send(2);
    EXPECT_FALSE(checkTraceProperty(F.T, P)) << "gap is fine for Enables";
  }
  {
    Fixture F;
    F.send(2); // B before any A
    F.recv(1);
    auto V = checkTraceProperty(F.T, P);
    ASSERT_TRUE(V.has_value());
    EXPECT_EQ(V->TriggerIndex, 0u) << "A after B does not count";
  }
  {
    Fixture F; // no B at all: vacuous
    F.recv(3);
    EXPECT_FALSE(checkTraceProperty(F.T, P));
  }
}

TEST(PropCheck, EnablesWithVariables) {
  // forall u: Recv(M(u)) Enables Send(M(u)) — the *same* u.
  TraceProperty P = prop(TraceOp::Enables, PatTerm::var("u"),
                         PatTerm::var("u"), {"u"});
  {
    Fixture F;
    F.recv(7);
    F.send(7);
    EXPECT_FALSE(checkTraceProperty(F.T, P));
  }
  {
    Fixture F;
    F.recv(8); // enables only u=8
    F.send(7);
    EXPECT_TRUE(checkTraceProperty(F.T, P));
  }
}

TEST(PropCheck, EnsuresSomewhereLater) {
  TraceProperty P = prop(TraceOp::Ensures, PatTerm::lit(Value::num(1)),
                         PatTerm::lit(Value::num(2)));
  {
    Fixture F;
    F.recv(1);
    F.select();
    F.send(2);
    EXPECT_FALSE(checkTraceProperty(F.T, P));
  }
  {
    Fixture F;
    F.send(2);
    F.recv(1); // trigger at the end, never satisfied
    auto V = checkTraceProperty(F.T, P);
    ASSERT_TRUE(V.has_value());
    EXPECT_EQ(V->TriggerIndex, 1u);
  }
}

TEST(PropCheck, DisablesForbidsEarlier) {
  // Recv(M(1)) Disables Send(M(2)).
  TraceProperty P;
  P.Op = TraceOp::Disables;
  P.A = pat(ActionPattern::Recv, PatTerm::lit(Value::num(1)));
  P.B = pat(ActionPattern::Send, PatTerm::lit(Value::num(2)));
  {
    Fixture F;
    F.send(2); // B before A: fine
    F.recv(1);
    EXPECT_FALSE(checkTraceProperty(F.T, P));
  }
  {
    Fixture F;
    F.recv(1);
    F.send(2); // B after A: violation
    auto V = checkTraceProperty(F.T, P);
    ASSERT_TRUE(V.has_value());
    EXPECT_EQ(V->TriggerIndex, 1u);
  }
}

TEST(PropCheck, DisablesSelfIsNotItsOwnPredecessor) {
  // Send(M(1)) Disables Send(M(1)): one occurrence is fine, two are not.
  TraceProperty P;
  P.Op = TraceOp::Disables;
  P.A = pat(ActionPattern::Send, PatTerm::lit(Value::num(1)));
  P.B = pat(ActionPattern::Send, PatTerm::lit(Value::num(1)));
  Fixture F;
  F.send(1);
  EXPECT_FALSE(checkTraceProperty(F.T, P));
  F.send(1);
  EXPECT_TRUE(checkTraceProperty(F.T, P));
}

// --- The §4.1 duality equations, property-based ---------------------------
// The paper defines: immafter A B tr := immbefore B A (rev tr) and
// ensures A B tr := enables B A (rev tr). Our chronological implementation
// must satisfy exactly these identities on arbitrary traces.

Trace reversed(const Trace &T) {
  Trace R = T;
  std::reverse(R.Actions.begin(), R.Actions.end());
  return R;
}

class DualitySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DualitySweep, RevTraceDualitiesHold) {
  Rng Rand(GetParam());
  for (int Round = 0; Round < 200; ++Round) {
    // Random trace of Send/Recv M(0..2) actions.
    Fixture F;
    size_t Len = Rand.below(8);
    for (size_t I = 0; I < Len; ++I) {
      int64_t Tag = static_cast<int64_t>(Rand.below(3));
      if (Rand.chance(1, 2))
        F.send(Tag);
      else
        F.recv(Tag);
    }
    // Random ground patterns.
    auto RandPat = [&]() {
      return PatTerm::lit(Value::num(static_cast<int64_t>(Rand.below(3))));
    };
    PatTerm A = RandPat(), B = RandPat();

    // immafter A B tr == immbefore B A (rev tr). Note the A/B pattern
    // *kinds* swap roles with the property sides, so build both fully.
    TraceProperty ImmAfterP;
    ImmAfterP.Op = TraceOp::ImmAfter;
    ImmAfterP.A = pat(ActionPattern::Recv, A);
    ImmAfterP.B = pat(ActionPattern::Send, B);
    TraceProperty ImmBeforeDual;
    ImmBeforeDual.Op = TraceOp::ImmBefore;
    ImmBeforeDual.A = pat(ActionPattern::Send, B);
    ImmBeforeDual.B = pat(ActionPattern::Recv, A);
    EXPECT_EQ(checkTraceProperty(F.T, ImmAfterP).has_value(),
              checkTraceProperty(reversed(F.T), ImmBeforeDual).has_value())
        << "ImmAfter/ImmBefore duality, trace:\n"
        << F.T.str();

    // ensures A B tr == enables B A (rev tr).
    TraceProperty EnsuresP;
    EnsuresP.Op = TraceOp::Ensures;
    EnsuresP.A = pat(ActionPattern::Recv, A);
    EnsuresP.B = pat(ActionPattern::Send, B);
    TraceProperty EnablesDual;
    EnablesDual.Op = TraceOp::Enables;
    EnablesDual.A = pat(ActionPattern::Send, B);
    EnablesDual.B = pat(ActionPattern::Recv, A);
    EXPECT_EQ(checkTraceProperty(F.T, EnsuresP).has_value(),
              checkTraceProperty(reversed(F.T), EnablesDual).has_value())
        << "Ensures/Enables duality, trace:\n"
        << F.T.str();

    // Disables is self-dual: disables A B tr == disables B A (rev tr).
    TraceProperty Dis;
    Dis.Op = TraceOp::Disables;
    Dis.A = pat(ActionPattern::Recv, A);
    Dis.B = pat(ActionPattern::Send, B);
    TraceProperty DisDual;
    DisDual.Op = TraceOp::Disables;
    DisDual.A = pat(ActionPattern::Send, B);
    DisDual.B = pat(ActionPattern::Recv, A);
    EXPECT_EQ(checkTraceProperty(F.T, Dis).has_value(),
              checkTraceProperty(reversed(F.T), DisDual).has_value())
        << "Disables self-duality, trace:\n"
        << F.T.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualitySweep,
                         ::testing::Values(3u, 17u, 99u, 2024u));

TEST(PropCheck, EmptyTraceSatisfiesEverything) {
  Fixture F;
  for (TraceOp Op : {TraceOp::ImmBefore, TraceOp::ImmAfter, TraceOp::Enables,
                     TraceOp::Ensures, TraceOp::Disables})
    EXPECT_FALSE(checkTraceProperty(
        F.T, prop(Op, PatTerm::lit(Value::num(1)),
                  PatTerm::lit(Value::num(2)))));
}

} // namespace
} // namespace reflex
