//===- tests/mutation_test.cc - §6.3: bug injection -------------*- C++ -*-===//
//
// The automation-catches-bugs story as a test: guard removals, wrong
// recipients, and dropped flag updates in the benchmark kernels must flip
// the affected property from Proved to not-Proved — the prover must never
// certify a mutant — and the BMC must produce a genuine counterexample
// for the false trace properties.
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"
#include "test_util.h"

namespace reflex {
namespace {

struct Mutation {
  const char *Kernel;
  const char *Find;
  const char *Replace;
  const char *Property;
  size_t BmcDepth; // 0: NI property, no single-trace counterexample
};

class MutationTest : public ::testing::TestWithParam<Mutation> {};

TEST_P(MutationTest, MutantRejectedAndRefuted) {
  const Mutation &M = GetParam();
  const kernels::KernelDef *K = nullptr;
  for (const kernels::KernelDef *Cand : kernels::all())
    if (Cand->Name == M.Kernel)
      K = Cand;
  ASSERT_NE(K, nullptr);

  std::string Source = K->Source;
  size_t Pos = Source.find(M.Find);
  ASSERT_NE(Pos, std::string::npos) << "mutation pattern not found";
  Source.replace(Pos, std::string(M.Find).size(), M.Replace);

  ProgramPtr P = mustLoad(Source);
  ASSERT_NE(P, nullptr);

  // The healthy kernel proves the property...
  ProgramPtr Healthy = kernels::load(*K);
  EXPECT_EQ(verifyOne(*Healthy, M.Property).Status, VerifyStatus::Proved);

  // ...the mutant must not — under any proof engine. PDR and the
  // portfolio search a different invariant space than induction, so each
  // gets its own chance to wrongly certify the bug.
  PropertyResult R = verifyOne(*P, M.Property);
  EXPECT_NE(R.Status, VerifyStatus::Proved) << "prover certified a bug!";
  for (EngineKind Kind :
       {EngineKind::Pdr, EngineKind::Portfolio}) {
    VerifyOptions O;
    O.Engine = Kind;
    PropertyResult ER = verifyOne(*P, M.Property, O);
    EXPECT_NE(ER.Status, VerifyStatus::Proved)
        << engineKindName(Kind) << " certified a bug!";
  }
  // The portfolio is never weaker than induction: the healthy kernel
  // stays proved. (PDR alone may honestly return Unknown here — that
  // one-sidedness is exactly why the portfolio exists.)
  VerifyOptions Port;
  Port.Engine = EngineKind::Portfolio;
  EXPECT_EQ(verifyOne(*Healthy, M.Property, Port).Status,
            VerifyStatus::Proved);

  if (M.BmcDepth > 0) {
    BmcOptions Opts;
    Opts.MaxDepth = M.BmcDepth + 1;
    BmcResult B = bmcSearch(*P, *P->findProperty(M.Property), Opts);
    ASSERT_TRUE(B.Violated) << "no counterexample at depth " << M.BmcDepth;
    // The counterexample genuinely violates the reference semantics.
    EXPECT_TRUE(checkTraceProperty(B.Counterexample,
                                   P->findProperty(M.Property)->traceProp())
                    .has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(
    InjectedBugs, MutationTest,
    ::testing::Values(
        Mutation{"ssh",
                 "if (auth_ok && user == auth_user) {\n    send(T, "
                 "CreatePty(user));\n  }",
                 "send(T, CreatePty(user));", "AuthBeforeTerm", 1},
        Mutation{"ssh", "attempts = 1;", "attempts = 0;",
                 "FirstAttemptDisablesItself", 2},
        Mutation{"car", "crashed = true;", "nop;", "NoLockAfterCrash", 2},
        Mutation{"car",
                 "send(A, Deploy());\n  send(D, DoorsMsg(\"unlock\"));",
                 "send(D, DoorsMsg(\"unlock\"));\n  send(A, Deploy());",
                 "AirbagsImmediatelyAfterCrash", 1},
        Mutation{"browser",
                 "lookup CookieProc(domain == sender.domain) as cp {\n    "
                 "send(cp, CookieSet(sender.domain, k, v));",
                 "lookup CookieProc() as cp {\n    send(cp, "
                 "CookieSet(sender.domain, k, v));",
                 "CookiesStayInDomain", 3},
        Mutation{"browser",
                 "lookup Tab(domain == sender.domain) as t {\n    send(t, "
                 "DeliverCookie(k, v));",
                 "lookup Tab() as t {\n    send(t, DeliverCookie(k, v));",
                 "DomainNonInterference", 0},
        Mutation{"webserver",
                 "handler Listener => Connect(user, pass) {\n  send(ACL, "
                 "CheckCred(user, pass));\n}",
                 "handler Listener => Connect(user, pass) {\n  nc <- spawn "
                 "Client(user);\n  send(ACL, CheckCred(user, pass));\n}",
                 "ClientOnlySpawnedOnLogin", 1},
        Mutation{"browser3", "high vars: focus;", "high vars: ;",
                 "DomainNonInterference", 0}),
    [](const ::testing::TestParamInfo<Mutation> &Info) {
      return std::string(Info.param.Kernel) + "_" +
             std::to_string(Info.index);
    });

} // namespace
} // namespace reflex
