//===- tests/corpus_diff_test.cc - Differential oracle e2e ------*- C++ -*-===//
//
// The differential harness run for real: a small generated corpus pushed
// through all four oracle arms (verdicts + certificates, counterexample
// replay, interpreter refinement, cross-engine/scheduler/cache parity)
// must come back with zero mismatches — the same gate `reflex gen
// --check` and bench_corpus enforce, kept in the tier-1 suite at a scale
// that stays in test time (seconds). A deliberately broken expectation
// shows the harness actually discriminates: flipping one ground-truth
// entry must surface as a verdict mismatch naming that property.
//
//===----------------------------------------------------------------------===//

#include "gen/oracle.h"
#include "test_util.h"

namespace reflex {
namespace {

TEST(CorpusDiff, Scale1IsCleanAcrossAllArms) {
  gen::GenConfig C;
  C.Seed = 1;
  C.Scale = 1;
  gen::GeneratedCorpus Corpus = gen::generateCorpus(C);
  gen::OracleOptions Opts;
  Opts.Jobs = 2;
  gen::OracleReport Rep = gen::runOracle(Corpus, Opts);
  EXPECT_TRUE(Rep.clean()) << gen::describeMismatches(Rep);
  EXPECT_EQ(Rep.Instances, Corpus.Instances.size());
  EXPECT_EQ(Rep.Properties, Corpus.totalProperties());
  // Every flavor of ground truth was actually exercised, not vacuously
  // skipped: proofs carry checked certificates, seeded bugs produce
  // violating counterexamples, the NI split policy stays Unknown.
  EXPECT_GT(Rep.ProvedCertChecked, 0u);
  EXPECT_GT(Rep.RefutedConfirmed, 0u);
  EXPECT_GT(Rep.UnknownConfirmed, 0u);
  EXPECT_GT(Rep.InterpTraces, 0u);
  EXPECT_GT(Rep.InterpExchanges, 0u);
  EXPECT_GT(Rep.ParityArms, 0u);
  EXPECT_EQ(Rep.ProvedCertChecked + Rep.RefutedConfirmed +
                Rep.UnknownConfirmed,
            Rep.Properties);
}

TEST(CorpusDiff, FlippedGroundTruthIsCaught) {
  gen::GenConfig C;
  C.Seed = 1;
  C.Scale = 1;
  gen::GeneratedCorpus Corpus = gen::generateCorpus(C);
  // Sabotage one expectation on a pristine instance: claim its first
  // Proved property is Refuted. The verdict arm must flag exactly that
  // (instance, property) pair — proving the oracle compares for real.
  gen::GeneratedInstance *Victim = nullptr;
  gen::ExpectedVerdict *Flipped = nullptr;
  for (gen::GeneratedInstance &Inst : Corpus.Instances) {
    if (Inst.HasBug)
      continue;
    for (gen::ExpectedVerdict &E : Inst.Expected)
      if (E.Expect == gen::ExpectKind::Proved) {
        Victim = &Inst;
        Flipped = &E;
        break;
      }
    if (Flipped)
      break;
  }
  ASSERT_NE(Flipped, nullptr);
  Flipped->Expect = gen::ExpectKind::Refuted;
  gen::OracleOptions Opts;
  Opts.Jobs = 2;
  // The disagreement is in arm 1; skip the expensive parity sweeps.
  Opts.CrossEngines = false;
  Opts.CrossSchedulers = false;
  Opts.InterpRuns = 0;
  gen::OracleReport Rep = gen::runOracle(Corpus, Opts);
  ASSERT_FALSE(Rep.clean());
  bool Found = false;
  for (const gen::OracleMismatch &M : Rep.Mismatches)
    if (M.Instance == Victim->Name && M.Property == Flipped->Property)
      Found = true;
  EXPECT_TRUE(Found) << "mismatch list never named the sabotaged property:\n"
                     << gen::describeMismatches(Rep);
}

} // namespace
} // namespace reflex
