//===- gen/generator.h - Seeded scenario factory ----------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scenario factory: a seeded, fully deterministic generator of
/// Reflex kernels with matched property and NI-policy families. Every
/// bench before this one ran the same 5–7 hand-written kernels (~41
/// properties, milliseconds of work); this module manufactures workloads
/// of hundreds of properties whose expected verdicts are known *by
/// construction*, so every engine, cache tier, and incremental path has
/// ground truth to be measured — and cross-checked — against.
///
/// An instance is assembled from independent "units", each an instance of
/// a proof template the automation is complete for:
///
///  * gate   — an open/use handler pair guarded by a boolean flag
///             (the fleet pattern): [Ack] Enables [Out] plus
///             atmostonce [Ack];
///  * chain  — a staged done_0..done_{L-1} cascade (the chain pattern):
///             [Out_{i-1}] Enables [Out_i] per stage plus
///             atmostonce [Out_0];
///  * branch — a complete binary if/else nest over message parameters
///             behind an armed flag: [Go] Enables [Hit] needs the guard
///             invariant on every one of the 2^d paths, plus
///             atmostonce [Go];
///  * lookup — the gate template with the emit routed through a
///             config-constrained lookup instead of an init-bound global
///             (exercises the component-origin reasoning).
///
/// Ground truth comes in three flavors, mirroring the differential
/// validation story (docs/CORPUS.md):
///
///  (a) construct-correct instances: every trace property is Proved by
///      construction (the guard invariant argument of each template);
///  (b) bug-injected variants: a seeded fault (drop a guard, drop an arm
///      assignment, drop a chain conjunct) makes exactly one named
///      property Refuted, with the violation reachable within
///      corpusBmcDepth() exchanges — siblings stay Proved;
///  (c) NI policies with known verdicts: the all-high labeling is Proved
///      (every branch condition and high-visible effect has high
///      support), the driver-low labeling is Unknown (a low handler
///      updates high state — Theorem 1's NIlo condition fails).
///
/// Determinism contract: generation consumes a SplitMix64 stream seeded
/// from (Seed, Scale) only — same config, byte-identical corpus. Sources
/// are canonicalized through the existing printer (printProgram), so
/// every emitted instance round-trips the parser to a fixpoint.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_GEN_GENERATOR_H
#define REFLEX_GEN_GENERATOR_H

#include "interp/runtime.h"
#include "reflex/reflex.h"

#include <cstdint>
#include <string>
#include <vector>

namespace reflex {
namespace gen {

/// The two knobs of the factory. Scale grows everything at once:
/// component count, message alphabet, config variables, handler count,
/// branch/lookup nesting depth, and the number of instances.
struct GenConfig {
  uint64_t Seed = 1;
  unsigned Scale = 3; ///< >= 1; bench_corpus pins 6, tests use 1–3.
};

/// What the construction argument says the automation must answer.
enum class ExpectKind : uint8_t { Proved, Refuted, Unknown };

const char *expectKindName(ExpectKind K);

struct ExpectedVerdict {
  std::string Property;
  ExpectKind Expect = ExpectKind::Proved;
  /// One-line construction argument ("guard dropped: Out reachable
  /// before Ack"), carried into the manifest for failure triage.
  std::string Why;
};

struct GeneratedInstance {
  std::string Name;
  /// Canonical source: printProgram of the parsed raw emission. Dumped
  /// verbatim by `reflex gen`, and the fixpoint the round-trip tests pin.
  std::string Source;
  /// Parsed + validated from Source.
  ProgramPtr Program;
  /// One entry per property, in declaration order.
  std::vector<ExpectedVerdict> Expected;
  /// True for the (b) flavor; BugNote names the injected fault.
  bool HasBug = false;
  std::string BugNote;

  const ExpectedVerdict *findExpected(const std::string &Prop) const;
};

/// A deliberately ill-formed mutant of a generated program: Source must
/// FAIL validation with a diagnostic mentioning Needle. Exercises the
/// validator over machine-made junk (undefined vars, arity errors, type
/// errors, duplicate handlers, unknown messages).
struct IllFormedMutant {
  std::string Name;
  std::string Source;
  std::string Needle;
};

struct GeneratedCorpus {
  GenConfig Config;
  std::vector<GeneratedInstance> Instances;

  size_t totalProperties() const;
  size_t totalHandlers() const;
};

/// Generates the corpus for \p C. Aborts (assert) only on internal
/// generator bugs — every emitted source parses, validates, and
/// round-trips by construction.
GeneratedCorpus generateCorpus(const GenConfig &C);

/// Seeded ill-formed mutants derived from the same config (one per
/// mutation kind per seed). Each fails validation; see IllFormedMutant.
std::vector<IllFormedMutant> generateIllFormedMutants(const GenConfig &C);

/// The manifest `reflex gen --out` writes next to the dumped sources:
/// seed, scale, per-instance file names, SHA-256 of each canonical
/// source, and the expected verdict of every property — enough to
/// reproduce and re-judge any corpus failure from one command line.
std::string corpusManifest(const GeneratedCorpus &Corpus);

/// The BMC depth at which every seeded bug's violation is reachable
/// (VerifyOptions::BmcDepthOnUnknown for any corpus verification that
/// wants the (b) flavor to answer Refuted rather than Unknown).
unsigned corpusBmcDepth();

/// VerifyOptions the corpus' expectations are stated against: defaults
/// plus BmcDepthOnUnknown = corpusBmcDepth().
VerifyOptions corpusVerifyOptions();

/// A ScriptFactory driving a generated instance with seeded component
/// traffic: every Driver instance fires a shuffled multi-round burst over
/// the program's message alphabet (payloads from harvestDomain), so the
/// interpreter side of the differential harness produces long, varied
/// traces. Node components stay quiet. \p P must outlive the runtime.
ScriptFactory corpusScripts(const Program &P, uint64_t Seed);

} // namespace gen
} // namespace reflex

#endif // REFLEX_GEN_GENERATOR_H
