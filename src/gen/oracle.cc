//===- gen/oracle.cc - Differential corpus oracle ---------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "gen/oracle.h"

#include "service/scheduler.h"
#include "verify/absreplay.h"

#include <filesystem>
#include <sstream>

#include <unistd.h>

namespace reflex {
namespace gen {

namespace {

ExpectKind toExpectKind(VerifyStatus S) {
  switch (S) {
  case VerifyStatus::Proved:
    return ExpectKind::Proved;
  case VerifyStatus::Refuted:
    return ExpectKind::Refuted;
  default:
    return ExpectKind::Unknown;
  }
}

std::vector<const Program *> corpusPrograms(const GeneratedCorpus &Corpus) {
  std::vector<const Program *> Ps;
  Ps.reserve(Corpus.Instances.size());
  for (const GeneratedInstance &Inst : Corpus.Instances)
    Ps.push_back(Inst.Program.get());
  return Ps;
}

/// How strictly a parity arm is compared against the baseline:
///  * FullKey — status AND reason byte-identical (the determinism
///    contract: same options, so same verdict bytes);
///  * StatusKey — statuses identical (the portfolio races engines, so
///    refutation reasons may legitimately come from a different member);
///  * NoContradiction — a *definite* verdict (Proved/Refuted) must match
///    the baseline status; Unknown is tolerated. This is the soundness
///    cross-check for standalone PDR, which is incomplete on the guard
///    history obligations these templates rest on (see docs/CORPUS.md)
///    but must never contradict the induction engine.
enum class ParityMode : uint8_t { FullKey, StatusKey, NoContradiction };

struct VerdictRow {
  std::string Status;
  std::string Reason;
};

std::vector<VerdictRow> verdictRows(const BatchOutcome &Out) {
  std::vector<VerdictRow> V;
  for (const VerificationReport &R : Out.Reports)
    for (const PropertyResult &PR : R.Results)
      V.push_back({verifyStatusName(PR.Status), PR.Reason});
  return V;
}

void compareArm(const GeneratedCorpus &Corpus,
                const std::vector<VerdictRow> &Base, const BatchOutcome &Out,
                ParityMode Mode, const std::string &ArmName,
                OracleReport &Rep) {
  std::vector<VerdictRow> Got = verdictRows(Out);
  if (Got.size() != Base.size()) {
    Rep.Mismatches.push_back({"", "", "parity",
                              ArmName + ": result count " +
                                  std::to_string(Got.size()) + " vs " +
                                  std::to_string(Base.size())});
    return;
  }
  size_t Flat = 0;
  for (size_t I = 0; I < Corpus.Instances.size(); ++I)
    for (const ExpectedVerdict &E : Corpus.Instances[I].Expected) {
      const VerdictRow &B = Base[Flat];
      const VerdictRow &G = Got[Flat];
      ++Flat;
      bool Bad = false;
      switch (Mode) {
      case ParityMode::FullKey:
        Bad = G.Status != B.Status || G.Reason != B.Reason;
        break;
      case ParityMode::StatusKey:
        Bad = G.Status != B.Status;
        break;
      case ParityMode::NoContradiction:
        Bad = (G.Status == "Proved" || G.Status == "Refuted") &&
              G.Status != B.Status;
        break;
      }
      if (Bad)
        Rep.Mismatches.push_back(
            {Corpus.Instances[I].Name, E.Property, "parity",
             ArmName + ": " + G.Status +
                 (Mode == ParityMode::FullKey && G.Reason != B.Reason
                      ? "|" + G.Reason
                      : "") +
                 " != baseline " + B.Status});
    }
}

} // namespace

OracleReport runOracle(const GeneratedCorpus &Corpus,
                       const OracleOptions &Opts) {
  OracleReport Rep;
  Rep.Instances = Corpus.Instances.size();
  Rep.Properties = Corpus.totalProperties();

  std::vector<const Program *> Programs = corpusPrograms(Corpus);

  // --- Arm 1+2: baseline verdicts vs construction ground truth ----------
  SchedulerOptions Seq;
  Seq.Jobs = 1;
  Seq.SharedCaches = false;
  Seq.Verify = corpusVerifyOptions();
  BatchOutcome Baseline = verifyPrograms(Programs, Seq);

  for (size_t I = 0; I < Corpus.Instances.size(); ++I) {
    const GeneratedInstance &Inst = Corpus.Instances[I];
    const VerificationReport &R = Baseline.Reports[I];
    if (R.Results.size() != Inst.Expected.size()) {
      Rep.Mismatches.push_back(
          {Inst.Name, "", "manifest",
           "report has " + std::to_string(R.Results.size()) +
               " results, manifest expects " +
               std::to_string(Inst.Expected.size())});
      continue;
    }
    for (size_t J = 0; J < R.Results.size(); ++J) {
      const PropertyResult &PR = R.Results[J];
      const ExpectedVerdict &E = Inst.Expected[J];
      if (PR.Name != E.Property) {
        Rep.Mismatches.push_back({Inst.Name, E.Property, "manifest",
                                  "result order: got " + PR.Name});
        continue;
      }
      if (toExpectKind(PR.Status) != E.Expect) {
        Rep.Mismatches.push_back(
            {Inst.Name, PR.Name, "verdict",
             std::string("expected ") + expectKindName(E.Expect) + " (" +
                 E.Why + "), got " + verifyStatusName(PR.Status) +
                 (PR.Reason.empty() ? "" : ": " + PR.Reason)});
        continue;
      }
      switch (E.Expect) {
      case ExpectKind::Proved:
        if (!PR.CertChecked)
          Rep.Mismatches.push_back(
              {Inst.Name, PR.Name, "certificate",
               "proved without a checker-validated certificate"});
        else
          ++Rep.ProvedCertChecked;
        break;
      case ExpectKind::Refuted: {
        const Property *Prop = Inst.Program->findProperty(PR.Name);
        if (PR.Counterexample.Actions.empty()) {
          Rep.Mismatches.push_back({Inst.Name, PR.Name, "counterexample",
                                    "refuted without a counterexample "
                                    "trace"});
          break;
        }
        if (!Prop || !Prop->isTrace()) {
          Rep.Mismatches.push_back({Inst.Name, PR.Name, "manifest",
                                    "refuted property is not a trace "
                                    "property"});
          break;
        }
        auto V = checkTraceProperty(PR.Counterexample, Prop->traceProp());
        if (!V) {
          Rep.Mismatches.push_back(
              {Inst.Name, PR.Name, "counterexample",
               "counterexample does not violate the property under the "
               "concrete reference semantics"});
          break;
        }
        // The CE must be a real trace of the program: replay it through
        // the behavioral abstraction.
        TermContext Ctx;
        BehAbs Abs = buildBehAbs(Ctx, *Inst.Program);
        ReplayResult RR =
            replayTrace(Ctx, *Inst.Program, Abs, PR.Counterexample);
        if (!RR.Included) {
          Rep.Mismatches.push_back({Inst.Name, PR.Name, "replay",
                                    "counterexample not included in the "
                                    "abstraction: " +
                                        RR.Why});
          break;
        }
        ++Rep.RefutedConfirmed;
        break;
      }
      case ExpectKind::Unknown:
        ++Rep.UnknownConfirmed;
        break;
      }
    }
  }

  // --- Arm 3: interpreter traces vs abstraction vs proved verdicts ------
  for (size_t I = 0; I < Corpus.Instances.size(); ++I) {
    const GeneratedInstance &Inst = Corpus.Instances[I];
    const Program &P = *Inst.Program;
    TermContext Ctx;
    BehAbs Abs = buildBehAbs(Ctx, P);
    for (unsigned Run = 0; Run < Opts.InterpRuns; ++Run) {
      const uint64_t Seed = Opts.InterpSeed + 7919 * Run + I;
      Runtime Rt(P, corpusScripts(P, Seed), CallRegistry{}, Seed);
      Rt.start();
      Rt.run(Opts.InterpSteps);
      const Trace &Tr = Rt.trace();
      ++Rep.InterpTraces;
      Rep.InterpExchanges += Tr.Actions.size();
      ReplayResult RR = replayTrace(Ctx, P, Abs, Tr);
      if (!RR.Included) {
        Rep.Mismatches.push_back(
            {Inst.Name, "", "replay",
             "interpreter trace (seed " + std::to_string(Seed) +
                 ") not included in the abstraction: " + RR.Why});
        continue;
      }
      // Every property the prover certified must hold on the concrete
      // trace; on bug instances the refuted property may legitimately
      // fire, so only expected-Proved properties are checked.
      for (size_t J = 0; J < Inst.Expected.size(); ++J) {
        const ExpectedVerdict &E = Inst.Expected[J];
        if (E.Expect != ExpectKind::Proved)
          continue;
        const Property *Prop = P.findProperty(E.Property);
        if (!Prop || !Prop->isTrace())
          continue; // NI has no single-trace semantics.
        auto V = checkTraceProperty(Tr, Prop->traceProp());
        if (V)
          Rep.Mismatches.push_back(
              {Inst.Name, E.Property, "trace-property",
               "proved property violated on interpreter trace (seed " +
                   std::to_string(Seed) + "): " + V->Explanation});
      }
    }
  }

  // --- Arm 4: cross-config parity ---------------------------------------
  const std::vector<VerdictRow> Base = verdictRows(Baseline);

  if (Opts.CrossSchedulers) {
    {
      SchedulerOptions Par = Seq;
      Par.Jobs = Opts.Jobs;
      Par.SharedCaches = true;
      compareArm(Corpus, Base, verifyPrograms(Programs, Par),
                 ParityMode::FullKey, "parallel+sharing", Rep);
      ++Rep.ParityArms;
    }
    {
      SchedulerOptions NoShare = Seq;
      NoShare.Jobs = Opts.Jobs;
      NoShare.SharedCaches = false;
      compareArm(Corpus, Base, verifyPrograms(Programs, NoShare),
                 ParityMode::FullKey, "parallel+noshare", Rep);
      ++Rep.ParityArms;
    }
    // Cache-state parity: populate a throwaway persistent cache, then a
    // warm batch must reproduce the baseline byte-for-byte with every
    // verdict served from disk.
    std::filesystem::path CacheDir =
        Opts.CacheDir.empty()
            ? std::filesystem::temp_directory_path() /
                  ("reflex-gen-oracle-" + std::to_string(::getpid()))
            : std::filesystem::path(Opts.CacheDir);
    Result<std::unique_ptr<ProofCache>> Cache =
        ProofCache::open(CacheDir.string());
    if (!Cache.ok()) {
      Rep.Mismatches.push_back(
          {"", "", "cache", "cannot open parity cache: " + Cache.error()});
    } else {
      SchedulerOptions Cached = Seq;
      Cached.Jobs = Opts.Jobs;
      Cached.SharedCaches = true;
      Cached.Cache = Cache->get();
      compareArm(Corpus, Base, verifyPrograms(Programs, Cached),
                 ParityMode::FullKey, "cache-cold", Rep);
      ++Rep.ParityArms;
      BatchOutcome Warm = verifyPrograms(Programs, Cached);
      compareArm(Corpus, Base, Warm, ParityMode::FullKey, "cache-warm", Rep);
      ++Rep.ParityArms;
      // Refuted verdicts are never persisted (no certificate to check on
      // reload), so the warm floor is every cacheable — i.e. non-Refuted —
      // property.
      size_t Cacheable = 0;
      for (const GeneratedInstance &Inst : Corpus.Instances)
        for (const ExpectedVerdict &E : Inst.Expected)
          if (E.Expect != ExpectKind::Refuted)
            ++Cacheable;
      if (Warm.CacheStats.Hits + Warm.CacheStats.FootprintHits < Cacheable)
        Rep.Mismatches.push_back(
            {"", "", "cache",
             "warm parity batch served only " +
                 std::to_string(Warm.CacheStats.Hits +
                                Warm.CacheStats.FootprintHits) +
                 "/" + std::to_string(Cacheable) +
                 " cacheable verdicts from the cache"});
    }
    if (Opts.CacheDir.empty()) {
      std::error_code EC;
      std::filesystem::remove_all(CacheDir, EC);
    }
  }

  if (Opts.CrossEngines) {
    {
      // Standalone PDR is incomplete on these history obligations (its
      // frames track state reachability, not event precedence), so it
      // may answer Unknown — but a definite PDR verdict contradicting
      // the induction baseline is a soundness bug in one of them.
      SchedulerOptions Pdr = Seq;
      Pdr.Verify.Engine = EngineKind::Pdr;
      compareArm(Corpus, Base, verifyPrograms(Programs, Pdr),
                 ParityMode::NoContradiction, "engine-pdr", Rep);
      ++Rep.ParityArms;
    }
    {
      // The portfolio races induction, so it must land every verdict the
      // baseline does (reasons may come from a different race winner).
      SchedulerOptions Pf = Seq;
      Pf.Jobs = Opts.Jobs;
      Pf.Verify.Engine = EngineKind::Portfolio;
      compareArm(Corpus, Base, verifyPrograms(Programs, Pf),
                 ParityMode::StatusKey, "engine-portfolio", Rep);
      ++Rep.ParityArms;
    }
  }

  return Rep;
}

std::string describeMismatches(const OracleReport &R, size_t Max) {
  std::ostringstream OS;
  const size_t N = std::min(Max, R.Mismatches.size());
  for (size_t I = 0; I < N; ++I) {
    const OracleMismatch &M = R.Mismatches[I];
    OS << "[" << M.Kind << "] " << M.Instance;
    if (!M.Property.empty())
      OS << "/" << M.Property;
    OS << ": " << M.Detail << "\n";
  }
  if (R.Mismatches.size() > N)
    OS << "... and " << (R.Mismatches.size() - N) << " more\n";
  return OS.str();
}

} // namespace gen
} // namespace reflex
