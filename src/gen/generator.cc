//===- gen/generator.cc - Seeded scenario factory ---------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "gen/generator.h"

#include "support/json.h"
#include "support/rng.h"
#include "support/sha256.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace reflex {
namespace gen {

const char *expectKindName(ExpectKind K) {
  switch (K) {
  case ExpectKind::Proved:
    return "Proved";
  case ExpectKind::Refuted:
    return "Refuted";
  case ExpectKind::Unknown:
    return "Unknown";
  }
  return "?";
}

const ExpectedVerdict *
GeneratedInstance::findExpected(const std::string &Prop) const {
  for (const ExpectedVerdict &E : Expected)
    if (E.Property == Prop)
      return &E;
  return nullptr;
}

size_t GeneratedCorpus::totalProperties() const {
  size_t N = 0;
  for (const GeneratedInstance &I : Instances)
    N += I.Expected.size();
  return N;
}

size_t GeneratedCorpus::totalHandlers() const {
  size_t N = 0;
  for (const GeneratedInstance &I : Instances)
    N += I.Program->Handlers.size();
  return N;
}

unsigned corpusBmcDepth() {
  // Every seeded fault is refutable within two exchanges (the double-Ack
  // fault needs a second Ack-producing delivery; the rest violate on the
  // first). The bound must stay exactly there: the BMC is a depth-first
  // enumeration over (component × message × payload) exchanges, so each
  // extra level multiplies the subtree under every early branch by the
  // full branching factor, and at corpus alphabets that exhausts
  // BmcOptions::MaxStates before the fault-bearing branch is reached —
  // silently turning an expected Refuted into Unknown.
  return 2;
}

VerifyOptions corpusVerifyOptions() {
  VerifyOptions Opts;
  Opts.BmcDepthOnUnknown = corpusBmcDepth();
  // Every seeded fault fires regardless of payload values, but the
  // corpus' message alphabet is wide (tens of messages, multi-field
  // payloads): at the default 32 payload combos per message the
  // breadth-first frontier exhausts BmcOptions::MaxStates before the
  // depth-2 faults are reached. Two payloads per message keep the
  // branching factor low enough that depth 2 always completes, which is
  // what the expected-Refuted ground truth relies on.
  Opts.Bmc.MaxPayloadsPerMessage = 2;
  return Opts;
}

namespace {

enum class UnitKind : uint8_t { Gate, Chain, Branch, Lookup };

enum class BugKind : uint8_t {
  None,
  GateDropGuard,   ///< Use handler emits Out unguarded.
  GateDoubleAck,   ///< Extra handler emits Ack without the latch.
  ChainDropStage,  ///< Stage k loses its done_{k-1} conjunct.
  BranchLeak,      ///< Extra handler emits Hit unguarded.
  LookupDropGuard, ///< Lookup-routed emit loses its open guard.
};

/// One unit of an instance: an independent proof-template instantiation
/// with its own component type, message alphabet, and guard variables.
struct UnitPlan {
  UnitKind Kind = UnitKind::Gate;
  unsigned Index = 0;       ///< Name suffix; unique within the instance.
  unsigned ChainLen = 2;    ///< Chain only.
  unsigned Depth = 1;       ///< Branch only: if/else nest depth.
  unsigned ExtraParams = 0; ///< Extra (ignored) payload params on triggers.
  bool StrTag = false;      ///< Second config field on the Node type.
  bool LookupElse = false;  ///< Lookup only: emit the else arm.
  BugKind Bug = BugKind::None;
  unsigned BugStage = 0; ///< ChainDropStage only.
};

struct InstancePlan {
  std::string Name;
  std::vector<UnitPlan> Units;
  unsigned NoiseVars = 0;     ///< State vars touched only by noise.
  unsigned NoiseHandlers = 0; ///< Handlers that only touch noise vars.
  unsigned NoiseIdle = 0;     ///< Declared messages nobody handles.
  bool NiAll = false;         ///< Append the all-high policy (Proved).
  bool NiSplit = false;       ///< Append the driver-low policy (Unknown).
  std::string BugNote;
};

std::string num(unsigned N) { return std::to_string(N); }

/// Deterministic Fisher-Yates driven by the corpus stream.
template <typename T> void shuffle(std::vector<T> &Xs, Rng &R) {
  for (size_t I = Xs.size(); I > 1; --I)
    std::swap(Xs[I - 1], Xs[R.below(I)]);
}

/// The trigger-message payload suffix: ", num" per extra parameter.
std::string extraPayload(const UnitPlan &U) {
  std::string S;
  for (unsigned I = 0; I < U.ExtraParams; ++I)
    S += ", num";
  return S;
}

/// The matching handler parameter suffix: ", e1, e2, ...".
std::string extraParams(const UnitPlan &U, unsigned Unit) {
  std::string S;
  for (unsigned I = 0; I < U.ExtraParams; ++I)
    S += ", e" + num(Unit) + "x" + num(I);
  return S;
}

void emitGateUnit(std::ostringstream &Msgs, std::ostringstream &Vars,
                  std::ostringstream &Handlers, std::ostringstream &Props,
                  const UnitPlan &U, std::vector<ExpectedVerdict> &Exp) {
  const std::string K = num(U.Index);
  const std::string Node = "Node" + K, N = "N" + K;
  Msgs << "message Open" << K << "(num" << extraPayload(U) << ");\n";
  Msgs << "message Use" << K << "(num" << extraPayload(U) << ");\n";
  Msgs << "message Ack" << K << "(num);\n";
  Msgs << "message Out" << K << "(num);\n";
  if (U.Bug == BugKind::GateDoubleAck)
    Msgs << "message Dup" << K << "(num);\n";
  Vars << "var open" << K << ": bool = false;\n";

  Handlers << "handler Driver => Open" << K << "(x" << K
           << extraParams(U, U.Index) << ") {\n"
           << "  if (!open" << K << ") {\n    open" << K << " = true;\n"
           << "    send(" << N << ", Ack" << K << "(x" << K << "));\n  }\n}\n";
  Handlers << "handler Driver => Use" << K << "(y" << K
           << extraParams(U, U.Index) << ") {\n";
  if (U.Bug == BugKind::GateDropGuard)
    Handlers << "  send(" << N << ", Out" << K << "(y" << K << "));\n}\n";
  else
    Handlers << "  if (open" << K << ") {\n    send(" << N << ", Out" << K
             << "(y" << K << "));\n  }\n}\n";
  if (U.Bug == BugKind::GateDoubleAck)
    Handlers << "handler Driver => Dup" << K << "(z" << K << ") {\n"
             << "  send(" << N << ", Ack" << K << "(z" << K << "));\n}\n";

  Props << "property Gate" << K << ":\n  [Send(" << Node << ", Ack" << K
        << "(_))] Enables [Send(" << Node << ", Out" << K << "(_))];\n";
  Exp.push_back({"Gate" + K,
                 U.Bug == BugKind::GateDropGuard ? ExpectKind::Refuted
                                                 : ExpectKind::Proved,
                 U.Bug == BugKind::GateDropGuard
                     ? "guard dropped: Out reachable before any Ack"
                     : "open flag gates Out and is set only with Ack"});
  Props << "property Once" << K << ":\n  atmostonce [Send(" << Node << ", Ack"
        << K << "(_))];\n";
  Exp.push_back({"Once" + K,
                 U.Bug == BugKind::GateDoubleAck ? ExpectKind::Refuted
                                                 : ExpectKind::Proved,
                 U.Bug == BugKind::GateDoubleAck
                     ? "dup handler bypasses the latch: Ack repeats"
                     : "open flag latches after the first Ack"});
}

void emitChainUnit(std::ostringstream &Msgs, std::ostringstream &Vars,
                   std::ostringstream &Handlers, std::ostringstream &Props,
                   const UnitPlan &U, std::vector<ExpectedVerdict> &Exp) {
  const std::string K = num(U.Index);
  const std::string Node = "Node" + K, N = "N" + K;
  for (unsigned I = 0; I < U.ChainLen; ++I) {
    Msgs << "message Go" << K << "s" << I << "(num" << extraPayload(U)
         << ");\n";
    Msgs << "message Out" << K << "s" << I << "(num);\n";
    Vars << "var done" << K << "s" << I << ": bool = false;\n";
  }
  for (unsigned I = 0; I < U.ChainLen; ++I) {
    const std::string S = K + "s" + num(I);
    const bool Broken = U.Bug == BugKind::ChainDropStage && I == U.BugStage;
    Handlers << "handler Driver => Go" << S << "(x" << S
             << extraParams(U, U.Index) << ") {\n";
    if (I == 0 || Broken)
      Handlers << "  if (!done" << S << ") {\n";
    else
      Handlers << "  if (done" << K << "s" << (I - 1) << " && !done" << S
               << ") {\n";
    Handlers << "    done" << S << " = true;\n"
             << "    send(" << N << ", Out" << S << "(x" << S << "));\n  }\n}\n";
  }
  for (unsigned I = 1; I < U.ChainLen; ++I) {
    const bool Broken = U.Bug == BugKind::ChainDropStage && I == U.BugStage;
    Props << "property Chain" << K << "s" << I << ":\n  [Send(" << Node
          << ", Out" << K << "s" << (I - 1) << "(_))] Enables [Send(" << Node
          << ", Out" << K << "s" << I << "(_))];\n";
    Exp.push_back({"Chain" + K + "s" + num(I),
                   Broken ? ExpectKind::Refuted : ExpectKind::Proved,
                   Broken ? "stage conjunct dropped: stage fires out of order"
                          : "done flags force stage order"});
  }
  Props << "property Head" << K << ":\n  atmostonce [Send(" << Node << ", Out"
        << K << "s0(_))];\n";
  Exp.push_back({"Head" + K, ExpectKind::Proved,
                 "stage-0 flag latches after the first emit"});
}

void emitNest(std::ostringstream &OS, const UnitPlan &U, unsigned Level,
              const std::string &Indent) {
  const std::string K = num(U.Index);
  if (Level == U.Depth) {
    OS << Indent << "send(N" << K << ", Hit" << K << "(a" << K << "x0));\n";
    return;
  }
  OS << Indent << "if (a" << K << "x" << Level << " < 5) {\n";
  emitNest(OS, U, Level + 1, Indent + "  ");
  OS << Indent << "} else {\n";
  emitNest(OS, U, Level + 1, Indent + "  ");
  OS << Indent << "}\n";
}

void emitBranchUnit(std::ostringstream &Msgs, std::ostringstream &Vars,
                    std::ostringstream &Handlers, std::ostringstream &Props,
                    const UnitPlan &U, std::vector<ExpectedVerdict> &Exp) {
  const std::string K = num(U.Index);
  const std::string Node = "Node" + K, N = "N" + K;
  Msgs << "message Arm" << K << "(num" << extraPayload(U) << ");\n";
  Msgs << "message Probe" << K << "(";
  for (unsigned I = 0; I < U.Depth; ++I)
    Msgs << (I ? ", num" : "num");
  Msgs << ");\n";
  Msgs << "message Go" << K << "(num);\n";
  Msgs << "message Hit" << K << "(num);\n";
  if (U.Bug == BugKind::BranchLeak)
    Msgs << "message Leak" << K << "(num);\n";
  Vars << "var armed" << K << ": bool = false;\n";

  Handlers << "handler Driver => Arm" << K << "(x" << K
           << extraParams(U, U.Index) << ") {\n"
           << "  if (!armed" << K << ") {\n    armed" << K << " = true;\n"
           << "    send(" << N << ", Go" << K << "(x" << K << "));\n  }\n}\n";
  Handlers << "handler Driver => Probe" << K << "(";
  for (unsigned I = 0; I < U.Depth; ++I)
    Handlers << (I ? ", a" : "a") << K << "x" << I;
  Handlers << ") {\n  if (armed" << K << ") {\n";
  emitNest(Handlers, U, 0, "    ");
  Handlers << "  }\n}\n";
  if (U.Bug == BugKind::BranchLeak)
    Handlers << "handler Driver => Leak" << K << "(w" << K << ") {\n"
             << "  send(" << N << ", Hit" << K << "(w" << K << "));\n}\n";

  Props << "property Gated" << K << ":\n  [Send(" << Node << ", Go" << K
        << "(_))] Enables [Send(" << Node << ", Hit" << K << "(_))];\n";
  Exp.push_back({"Gated" + K,
                 U.Bug == BugKind::BranchLeak ? ExpectKind::Refuted
                                              : ExpectKind::Proved,
                 U.Bug == BugKind::BranchLeak
                     ? "leak handler emits Hit without the armed guard"
                     : "armed flag gates every leaf of the nest"});
  Props << "property ArmOnce" << K << ":\n  atmostonce [Send(" << Node
        << ", Go" << K << "(_))];\n";
  Exp.push_back({"ArmOnce" + K, ExpectKind::Proved,
                 "armed flag latches after the first Go"});
}

void emitLookupUnit(std::ostringstream &Msgs, std::ostringstream &Vars,
                    std::ostringstream &Handlers, std::ostringstream &Props,
                    const UnitPlan &U, std::vector<ExpectedVerdict> &Exp) {
  const std::string K = num(U.Index);
  const std::string Node = "Node" + K, N = "N" + K;
  Msgs << "message Open" << K << "(num" << extraPayload(U) << ");\n";
  Msgs << "message Use" << K << "(num" << extraPayload(U) << ");\n";
  Msgs << "message Ack" << K << "(num);\n";
  Msgs << "message Out" << K << "(num);\n";
  Vars << "var open" << K << ": bool = false;\n";

  Handlers << "handler Driver => Open" << K << "(x" << K
           << extraParams(U, U.Index) << ") {\n"
           << "  if (!open" << K << ") {\n    open" << K << " = true;\n"
           << "    send(" << N << ", Ack" << K << "(x" << K << "));\n  }\n}\n";
  Handlers << "handler Driver => Use" << K << "(y" << K
           << extraParams(U, U.Index) << ") {\n";
  std::string Indent = "  ";
  if (U.Bug != BugKind::LookupDropGuard) {
    Handlers << "  if (open" << K << ") {\n";
    Indent = "    ";
  }
  Handlers << Indent << "lookup " << Node << "(lane == " << K << ") as peer"
           << K << " {\n"
           << Indent << "  send(peer" << K << ", Out" << K << "(y" << K
           << "));\n"
           << Indent << "}";
  if (U.LookupElse)
    Handlers << " else {\n" << Indent << "  nop;\n" << Indent << "}";
  Handlers << "\n";
  if (U.Bug != BugKind::LookupDropGuard)
    Handlers << "  }\n";
  Handlers << "}\n";

  Props << "property Route" << K << ":\n  [Send(" << Node << ", Ack" << K
        << "(_))] Enables [Send(" << Node << ", Out" << K << "(_))];\n";
  Exp.push_back({"Route" + K,
                 U.Bug == BugKind::LookupDropGuard ? ExpectKind::Refuted
                                                   : ExpectKind::Proved,
                 U.Bug == BugKind::LookupDropGuard
                     ? "guard dropped: lookup emit reachable before any Ack"
                     : "open flag gates the lookup-routed emit"});
  Props << "property RouteOnce" << K << ":\n  atmostonce [Send(" << Node
        << ", Ack" << K << "(_))];\n";
  Exp.push_back({"RouteOnce" + K, ExpectKind::Proved,
                 "open flag latches after the first Ack"});
}

/// Renders the raw (pre-canonicalization) source of an instance.
std::string emitInstance(const InstancePlan &Plan,
                         std::vector<ExpectedVerdict> &Exp) {
  std::ostringstream Comps, Msgs, Vars, Init, Handlers, Props;
  Comps << "component Driver \"driver.py\";\n";
  // Two driver instances: component-selection nondeterminism in the
  // interpreter arm costs nothing here and exercises the Select alphabet.
  // Spawned FIRST: the bounded model checker enumerates exchanges in
  // spawn order, and every handler in the corpus lives on Driver —
  // putting the drivers at the front of the component list lets the DFS
  // hit the seeded faults within its first branches instead of wasting
  // its state cap on no-op deliveries to handler-less nodes.
  Init << "  D <- spawn Driver();\n  D2 <- spawn Driver();\n";
  for (const UnitPlan &U : Plan.Units) {
    const std::string K = num(U.Index);
    Comps << "component Node" << K << " \"node" << K << ".py\" { lane: num";
    if (U.StrTag)
      Comps << ", tag: str";
    Comps << " };\n";
    Init << "  N" << K << " <- spawn Node" << K << "(" << K;
    if (U.StrTag)
      Init << ", \"t" << K << "\"";
    Init << ");\n";
  }

  for (const UnitPlan &U : Plan.Units) {
    switch (U.Kind) {
    case UnitKind::Gate:
      emitGateUnit(Msgs, Vars, Handlers, Props, U, Exp);
      break;
    case UnitKind::Chain:
      emitChainUnit(Msgs, Vars, Handlers, Props, U, Exp);
      break;
    case UnitKind::Branch:
      emitBranchUnit(Msgs, Vars, Handlers, Props, U, Exp);
      break;
    case UnitKind::Lookup:
      emitLookupUnit(Msgs, Vars, Handlers, Props, U, Exp);
      break;
    }
  }

  // Noise: handlers that only touch scratch state, plus messages nobody
  // handles. They scale the alphabet and handler count without touching
  // any guard variable, so no expectation changes.
  for (unsigned I = 0; I < Plan.NoiseVars; ++I)
    Vars << "var nv" << I << ": num = 0;\n";
  for (unsigned I = 0; I < Plan.NoiseHandlers; ++I) {
    Msgs << "message Ping" << I << "(num);\n";
    Handlers << "handler Driver => Ping" << I << "(p" << I << ") {\n  nv"
             << (Plan.NoiseVars ? I % Plan.NoiseVars : 0) << " = p" << I
             << ";\n}\n";
  }
  for (unsigned I = 0; I < Plan.NoiseIdle; ++I)
    Msgs << "message Idle" << I << "(str);\n";

  auto emitNi = [&](const char *Name, bool DriverHigh) {
    Props << "property " << Name << ":\n  noninterference {\n"
          << "    high components:";
    bool First = true;
    if (DriverHigh) {
      Props << " Driver";
      First = false;
    }
    for (const UnitPlan &U : Plan.Units) {
      Props << (First ? " " : ", ") << "Node" << U.Index;
      First = false;
    }
    Props << ";\n    high vars:";
    First = true;
    for (const UnitPlan &U : Plan.Units) {
      const std::string K = num(U.Index);
      switch (U.Kind) {
      case UnitKind::Gate:
      case UnitKind::Lookup:
        Props << (First ? " " : ", ") << "open" << K;
        break;
      case UnitKind::Chain:
        for (unsigned I = 0; I < U.ChainLen; ++I)
          Props << (First && I == 0 ? " " : ", ") << "done" << K << "s" << I;
        break;
      case UnitKind::Branch:
        Props << (First ? " " : ", ") << "armed" << K;
        break;
      }
      First = false;
    }
    for (unsigned I = 0; I < Plan.NoiseVars; ++I) {
      Props << (First ? " " : ", ") << "nv" << I;
      First = false;
    }
    Props << ";\n  };\n";
  };

  if (Plan.NiAll) {
    emitNi("NiAll", /*DriverHigh=*/true);
    Exp.push_back({"NiAll", ExpectKind::Proved,
                   "every component and variable is high: no low observer"});
  }
  if (Plan.NiSplit) {
    emitNi("NiSplit", /*DriverHigh=*/false);
    Exp.push_back({"NiSplit", ExpectKind::Unknown,
                   "NIlo: low Driver handlers update high guard state"});
  }

  std::ostringstream OS;
  OS << "program " << Plan.Name << ";\n"
     << Comps.str() << Msgs.str() << Vars.str() << "init {\n"
     << Init.str() << "}\n"
     << Handlers.str() << Props.str();
  return OS.str();
}

[[noreturn]] void genFatal(const std::string &Name, const std::string &What,
                           const std::string &Detail) {
  std::fprintf(stderr, "gen: internal error on instance %s: %s\n%s\n",
               Name.c_str(), What.c_str(), Detail.c_str());
  std::abort();
}

/// Parses, validates, and canonicalizes one raw emission; aborts loudly on
/// any failure (a generator bug by definition — raw emissions are
/// construct-correct).
void canonicalize(GeneratedInstance &Inst, const std::string &Raw) {
  Result<ProgramPtr> R1 = loadProgram(Raw, Inst.Name + ".rfx");
  if (!R1)
    genFatal(Inst.Name, "raw emission failed to load: " + R1.error(), Raw);
  Inst.Source = printProgram(**R1);
  Result<ProgramPtr> R2 = loadProgram(Inst.Source, Inst.Name + ".rfx");
  if (!R2)
    genFatal(Inst.Name, "canonical source failed to load: " + R2.error(),
             Inst.Source);
  if (printProgram(**R2) != Inst.Source)
    genFatal(Inst.Name, "printer is not a fixpoint on canonical source",
             Inst.Source);
  Inst.Program = std::move(*R2);
}

UnitPlan planUnit(unsigned Index, unsigned Scale, Rng &R) {
  UnitPlan U;
  U.Index = Index;
  // Round-robin kinds: every instance holds a balanced mix, so property
  // counts stay predictable while the seed varies the per-unit shape.
  switch (Index % 4) {
  case 0:
    U.Kind = UnitKind::Gate;
    break;
  case 1:
    U.Kind = UnitKind::Chain;
    break;
  case 2:
    U.Kind = UnitKind::Branch;
    break;
  default:
    U.Kind = UnitKind::Lookup;
    break;
  }
  U.ChainLen = 2 + static_cast<unsigned>(R.below(std::min(Scale, 3u)));
  U.Depth = 1 + static_cast<unsigned>(R.below(std::min(Scale, 3u)));
  U.ExtraParams = static_cast<unsigned>(R.below(3));
  U.StrTag = R.chance(1, 2);
  U.LookupElse = R.chance(1, 2);
  return U;
}

void injectBug(InstancePlan &Plan, Rng &R) {
  UnitPlan &U = Plan.Units[R.below(Plan.Units.size())];
  switch (U.Kind) {
  case UnitKind::Gate:
    U.Bug = R.chance(1, 2) ? BugKind::GateDropGuard : BugKind::GateDoubleAck;
    Plan.BugNote = (U.Bug == BugKind::GateDropGuard ? "gate-drop-guard@Node"
                                                    : "gate-double-ack@Node") +
                   num(U.Index);
    break;
  case UnitKind::Chain:
    U.Bug = BugKind::ChainDropStage;
    U.BugStage = 1 + static_cast<unsigned>(R.below(U.ChainLen - 1));
    Plan.BugNote = "chain-drop-stage" + num(U.BugStage) + "@Node" +
                   num(U.Index);
    break;
  case UnitKind::Branch:
    U.Bug = BugKind::BranchLeak;
    Plan.BugNote = "branch-leak@Node" + num(U.Index);
    break;
  case UnitKind::Lookup:
    U.Bug = BugKind::LookupDropGuard;
    Plan.BugNote = "lookup-drop-guard@Node" + num(U.Index);
    break;
  }
}

GeneratedInstance buildInstance(const InstancePlan &Plan) {
  GeneratedInstance Inst;
  Inst.Name = Plan.Name;
  Inst.HasBug = !Plan.BugNote.empty();
  Inst.BugNote = Plan.BugNote;
  std::string Raw = emitInstance(Plan, Inst.Expected);
  canonicalize(Inst, Raw);
  return Inst;
}

} // namespace

GeneratedCorpus generateCorpus(const GenConfig &C) {
  const unsigned Scale = std::max(1u, C.Scale);
  GeneratedCorpus Corpus;
  Corpus.Config = C;
  Corpus.Config.Scale = Scale;
  // Mix scale into the stream so (seed, scale) pairs never alias.
  Rng R(C.Seed * 0x9E3779B97F4A7C15ULL + Scale);

  const unsigned Units = Scale + 2;
  const unsigned NumOk = 3 + (Scale + 1) / 2;
  const unsigned NumBug = 3 + Scale / 2;

  auto planInstance = [&](const std::string &Name) {
    InstancePlan Plan;
    Plan.Name = Name;
    for (unsigned U = 0; U < Units; ++U)
      Plan.Units.push_back(planUnit(U, Scale, R));
    Plan.NoiseVars = 1 + Scale / 2;
    Plan.NoiseHandlers = 1 + Scale / 2;
    Plan.NoiseIdle = 1 + Scale / 3;
    return Plan;
  };

  for (unsigned I = 0; I < NumOk; ++I) {
    InstancePlan Plan = planInstance("gen_ok" + num(I));
    Plan.NiAll = true;
    Corpus.Instances.push_back(buildInstance(Plan));
  }
  for (unsigned I = 0; I < NumBug; ++I) {
    InstancePlan Plan = planInstance("gen_bug" + num(I));
    injectBug(Plan, R);
    Corpus.Instances.push_back(buildInstance(Plan));
  }
  {
    InstancePlan Plan = planInstance("gen_ni0");
    Plan.NiAll = true;
    Plan.NiSplit = true;
    Corpus.Instances.push_back(buildInstance(Plan));
  }
  return Corpus;
}

std::vector<IllFormedMutant> generateIllFormedMutants(const GenConfig &C) {
  // Mutants are structural edits of a small generated instance: take the
  // canonical parts of a one-unit gate and splice in exactly one flaw.
  const std::string Junk = "j" + num(static_cast<unsigned>(C.Seed % 1000));
  const std::string Base = "program mut;\n"
                           "component Driver \"driver.py\";\n"
                           "component Node0 \"node0.py\" { lane: num };\n"
                           "message Open0(num);\n"
                           "message Ack0(num);\n"
                           "var open0: bool = false;\n"
                           "init {\n  N0 <- spawn Node0(0);\n"
                           "  D <- spawn Driver();\n}\n";
  const std::string GoodHandler =
      "handler Driver => Open0(x) {\n  if (!open0) {\n    open0 = true;\n"
      "    send(N0, Ack0(x));\n  }\n}\n";

  std::vector<IllFormedMutant> Out;
  Out.push_back({"undeclared-var",
                 Base + "handler Driver => Open0(x) { " + Junk + " = x; }\n",
                 "undeclared variable"});
  Out.push_back({"send-arity",
                 Base + "handler Driver => Open0(x) { send(N0, Ack0(x, x)); }\n",
                 "payload"});
  Out.push_back({"unknown-message",
                 Base + "handler Driver => Open0(x) { send(N0, " + Junk +
                     "(x)); }\n",
                 "unknown message type"});
  Out.push_back({"non-bool-condition",
                 Base + "handler Driver => Open0(x) { if (x) { nop; } }\n",
                 "must be bool"});
  Out.push_back({"handler-arity", Base + "handler Driver => Open0() { nop; }\n",
                 "parameters"});
  Out.push_back({"duplicate-handler", Base + GoodHandler + GoodHandler,
                 "duplicate handler"});
  Out.push_back({"assign-type-mismatch",
                 Base + "handler Driver => Open0(x) { open0 = x; }\n",
                 "assigning num"});
  Out.push_back({"spawn-config-arity",
                 Base + "handler Driver => Open0(x) { F <- spawn Node0(); }\n",
                 "wrong number of config values"});
  Out.push_back({"unbound-forall",
                 Base + GoodHandler +
                     "property P:\n  [Send(Node0(lane = q), Ack0(_))] Enables "
                     "[Send(Node0, Ack0(_))];\n",
                 "not declared in the forall clause"});
  Out.push_back({"trigger-discipline",
                 Base + GoodHandler +
                     "property P: forall v.\n  [Send(Node0, Ack0(v))] Enables "
                     "[Send(Node0, Ack0(_))];\n",
                 "must occur in the trigger"});
  Out.push_back({"ni-unknown-var",
                 Base + GoodHandler +
                     "property NI:\n  noninterference { high components: "
                     "Node0; high vars: " +
                     Junk + "; };\n",
                 "unknown state variable"});
  return Out;
}

std::string corpusManifest(const GeneratedCorpus &Corpus) {
  JsonWriter W;
  W.beginObject();
  W.field("seed", static_cast<int64_t>(Corpus.Config.Seed));
  W.field("scale", static_cast<int64_t>(Corpus.Config.Scale));
  W.field("bmc_depth", static_cast<int64_t>(corpusBmcDepth()));
  W.field("instances", static_cast<int64_t>(Corpus.Instances.size()));
  W.field("properties", static_cast<int64_t>(Corpus.totalProperties()));
  W.key("kernels");
  W.beginArray();
  for (const GeneratedInstance &Inst : Corpus.Instances) {
    W.beginObject();
    W.field("name", Inst.Name);
    W.field("file", Inst.Name + ".rfx");
    W.field("sha256", sha256Hex(Inst.Source));
    W.field("has_bug", Inst.HasBug);
    if (Inst.HasBug)
      W.field("bug", Inst.BugNote);
    W.key("expected");
    W.beginArray();
    for (const ExpectedVerdict &E : Inst.Expected) {
      W.beginObject();
      W.field("property", E.Property);
      W.field("expect", expectKindName(E.Expect));
      W.field("why", E.Why);
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.take();
}

ScriptFactory corpusScripts(const Program &P, uint64_t Seed) {
  return [&P, Seed](const ComponentInstance &C)
             -> std::unique_ptr<ComponentScript> {
    if (C.TypeName != "Driver")
      return nullptr; // Nodes are sinks: permanently quiet.
    Rng R(Seed ^ (0xD6E8FEB86659FD93ULL * static_cast<uint64_t>(C.Id + 1)));
    std::vector<Value> Nums = harvestDomain(P, BaseType::Num);
    std::vector<Value> Strs = harvestDomain(P, BaseType::Str);
    std::vector<Value> Bools = harvestDomain(P, BaseType::Bool);
    auto pick = [&R](std::vector<Value> &Dom, Value Fallback) {
      return Dom.empty() ? Fallback : Dom[R.below(Dom.size())];
    };
    std::vector<Message> Burst;
    const unsigned Rounds = 3;
    for (unsigned Round = 0; Round < Rounds; ++Round) {
      std::vector<Message> Pack;
      for (const MessageDecl &M : P.Messages) {
        // Trigger messages go every round; the rest (replies, idle noise)
        // only sometimes — they reach the kernel as handler-less
        // exchanges, which the abstraction must absorb too.
        const bool Handled = P.findHandler("Driver", M.Name) != nullptr;
        if (!Handled && !R.chance(1, 4))
          continue;
        Message Msg;
        Msg.Name = M.Name;
        for (BaseType Ty : M.Payload) {
          switch (Ty) {
          case BaseType::Num:
            Msg.Args.push_back(pick(Nums, Value::num(0)));
            break;
          case BaseType::Str:
            Msg.Args.push_back(pick(Strs, Value::str("")));
            break;
          case BaseType::Bool:
            Msg.Args.push_back(pick(Bools, Value::boolean(false)));
            break;
          default:
            Msg.Args.push_back(Value::num(0));
            break;
          }
        }
        Pack.push_back(std::move(Msg));
      }
      shuffle(Pack, R);
      for (Message &M : Pack)
        Burst.push_back(std::move(M));
    }
    return std::make_unique<ScriptedComponent>(
        std::move(Burst), std::map<std::string, ScriptedComponent::Responder>{});
  };
}

} // namespace gen
} // namespace reflex
