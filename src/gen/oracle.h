//===- gen/oracle.h - Differential corpus oracle ----------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential harness over a generated corpus, cross-checking every
/// independent semantic layer the repo has against the generator's
/// construction arguments — COGENT-style: any disagreement is a bug in
/// the generator or in an engine, and the report says which layer saw it.
///
/// Per instance, four arms:
///
///  1. verdicts — verify the corpus (sequential, fresh session) and
///     compare every property's status against the expected verdict;
///     Proved results must carry checker-validated certificates, Refuted
///     results a concrete counterexample trace.
///  2. counterexamples — each Refuted counterexample must actually
///     violate the property under the concrete reference semantics
///     (prop/check.h) AND replay into the program's behavioral
///     abstraction (the CE is a real trace, not a prover artifact).
///  3. interpreter — seeded runtime drives (gen::corpusScripts) produce
///     concrete traces; every trace must replay into the abstraction,
///     and every property the prover certified must hold on it (the
///     end-to-end refinement guarantee on machine-made programs).
///  4. parity — the whole corpus re-verified across engines × jobs ×
///     sharing × cache states; statuses and reasons must be
///     byte-identical across jobs/sharing/cache (the determinism
///     contract), statuses identical under the portfolio (induction is
///     a race member, so every baseline verdict must land), and
///     standalone PDR must never *contradict* the baseline (it may
///     answer Unknown on these history obligations — see docs/CORPUS.md
///     — but a definite disagreeing verdict is a soundness bug).
///
/// Shared by `reflex gen --check`, tests/corpus_diff_test.cc, and the
/// zero-mismatch gate of bench/bench_corpus.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_GEN_ORACLE_H
#define REFLEX_GEN_ORACLE_H

#include "gen/generator.h"

#include <cstddef>
#include <string>
#include <vector>

namespace reflex {
namespace gen {

struct OracleOptions {
  /// Worker count of the parallel parity arms.
  unsigned Jobs = 4;
  /// Seeded interpreter runs per instance (0 disables arm 3).
  unsigned InterpRuns = 2;
  /// Max exchanges per interpreter run.
  size_t InterpSteps = 400;
  /// Base seed for the interpreter drivers.
  uint64_t InterpSeed = 0x5EEDF00D;
  /// Arm 4: re-verify under PDR and the portfolio (status parity).
  bool CrossEngines = true;
  /// Arm 4: re-verify across jobs/sharing/cache-state (byte parity).
  bool CrossSchedulers = true;
  /// Directory for the cache-state parity arm's throwaway proof cache;
  /// empty picks a fresh directory under the system temp dir. Removed
  /// afterwards.
  std::string CacheDir;
};

struct OracleMismatch {
  std::string Instance;
  std::string Property; ///< Empty for instance-level failures.
  /// Which arm disagreed: "verdict", "certificate", "counterexample",
  /// "replay", "trace-property", "parity", "manifest", "cache".
  std::string Kind;
  std::string Detail;
};

struct OracleReport {
  size_t Instances = 0;
  size_t Properties = 0;
  /// Expected-Proved properties confirmed with a checked certificate.
  size_t ProvedCertChecked = 0;
  /// Expected-Refuted properties confirmed by a violating counterexample.
  size_t RefutedConfirmed = 0;
  /// Expected-Unknown (NI split policies) confirmed.
  size_t UnknownConfirmed = 0;
  /// Interpreter exchanges replayed through the abstraction (arm 3).
  size_t InterpExchanges = 0;
  size_t InterpTraces = 0;
  /// Parity configurations compared against the baseline (arm 4).
  size_t ParityArms = 0;
  std::vector<OracleMismatch> Mismatches;

  bool clean() const { return Mismatches.empty(); }
};

/// Runs all four arms over \p Corpus. Deterministic for a fixed
/// (corpus, options) pair.
OracleReport runOracle(const GeneratedCorpus &Corpus,
                       const OracleOptions &Opts = {});

/// Renders the first \p Max mismatches, one per line (for gate failures).
std::string describeMismatches(const OracleReport &R, size_t Max = 12);

} // namespace gen
} // namespace reflex

#endif // REFLEX_GEN_ORACLE_H
