//===- service/scheduler.h - Parallel verification scheduling ---*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Schedules a batch of (program, property) verification jobs across a
/// thread pool, in two phases (docs/PERF.md). Phase 1, once per program:
/// build a FrozenAbstraction — the term context plus symbolically
/// executed handler summaries, frozen immutable — and share it read-only
/// across workers via shared_ptr. Phase 2, per property in parallel:
/// each worker's VerifySession lays a private overlay TermContext over
/// the frozen base (property-local terms are single-threaded state and
/// stay private), while completed solver-memo and invariant-cache
/// entries whose terms live in the frozen base are published to sharded
/// cross-worker caches (SharedVerifyCaches) so one worker's finished
/// proof work is reusable by the others. Properties are handed out from
/// a global work list (dynamic load balancing — NI properties dominate
/// runtimes, so static partitioning would straggle).
///
/// Identical jobs are deduplicated before dispatch: two (program,
/// property) pairs whose program fingerprints (declarations + every
/// handler body, verify/footprint.h) and property text coincide are
/// provably the same verification (verdicts are functions of (program,
/// property, options) only), so only the first is dispatched and the
/// duplicate's declaration-order slot receives a copy of its result.
/// Batches that verify the same kernel under many names — CI matrices,
/// the bench's repeated programs — pay for each distinct proof once.
///
/// Determinism: per-property statuses, reasons, and certificates are
/// functions of (program, property, options) only — the prover is
/// deterministic and all cache tiers (private and shared) are
/// semantically transparent: a hit returns exactly what the worker would
/// have computed. So any worker count, with sharing on or off, produces
/// the same verdict list. Reports are merged with results in declaration
/// order and aggregate work counters summed across every session that
/// served the program.
///
/// Fault tolerance: every job runs inside a catch-all; a worker that
/// throws (or a job that exhausts its budget) is retried on a fresh
/// private session with capped exponential backoff, up to
/// SchedulerOptions::Retries extra attempts, after which the job reports
/// its failure diagnostics in its declaration-order slot. One bad job
/// costs one verdict, never the batch. Injected faults (FaultPlan
/// decisions, which are pure functions of (seed, site, key)) preserve the
/// worker-count determinism above; genuinely *timing*-dependent failures
/// (a real wall-clock deadline under load) by nature may not.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_SERVICE_SCHEDULER_H
#define REFLEX_SERVICE_SCHEDULER_H

#include "service/proofcache.h"
#include "verify/verifier.h"

#include <memory>
#include <mutex>
#include <vector>

namespace reflex {

/// A persistent per-program share, owned by a caller that verifies the
/// same program across many batches (the daemon's open sessions, the
/// incremental verifier's edit loop): the phase-1 FrozenAbstraction plus
/// the phase-2 cross-worker cache tiers, built by the first batch that
/// needs them and reused by every later batch handed the same share.
/// This is what lets an `edit` request's re-verified dependents — and
/// every identical-program request after it — skip abstraction
/// construction entirely. Contract: a share serves exactly one
/// (program, VerifyOptions) pair; after an edit the owner must replace
/// it with a fresh instance (the terms in both tiers reference the old
/// frozen base). All tiers are semantically transparent, so verdicts
/// are byte-identical with or without a share.
struct VerifyShare {
  std::mutex Mu; ///< guards Abs (get-or-build); caches lock internally
  std::shared_ptr<const FrozenAbstraction> Abs;
  SharedVerifyCaches Caches;

  bool warm() const { return Abs != nullptr; }
};

struct SchedulerOptions {
  /// Logical workers. 0 means hardware concurrency; 1 degenerates to the
  /// sequential order (one worker pulls jobs in declaration order with
  /// one session per program, i.e. verifyAll semantics). The scheduler
  /// never runs more OS threads than the machine has cores —
  /// oversubscription only adds context-switch overhead for CPU-bound
  /// proving, and verdicts are worker-count independent anyway.
  unsigned Jobs = 1;
  VerifyOptions Verify;
  /// Optional persistent proof cache, shared by all workers (thread-safe).
  ProofCache *Cache = nullptr;
  /// Transient-failure retries per job: a worker exception (anything the
  /// job throws, including session construction) or a
  /// Timeout/ResourceExhausted result is retried up to this many extra
  /// times, each on a fresh private session, with capped exponential
  /// backoff. Aborted is *not* retried — it means the caller cancelled.
  /// A job that exhausts its attempts reports its last failure in place;
  /// the batch always completes.
  unsigned Retries = 0;
  /// Backoff base: retry k sleeps min(RetryBackoffMs << (k-1), 250) ms
  /// first. 0 disables sleeping (tests).
  unsigned RetryBackoffMs = 5;
  /// Optional fault plan, consulted per attempt at site "worker" (key
  /// "program/property#attempt"; any non-None decision makes the worker
  /// throw) and per job at site "budget" (key "program/property"; any
  /// non-None decision runs the job under a one-step budget, which
  /// exhausts deterministically). Cache IO faults are separate: attach
  /// the same plan to the cache via ProofCache::setFaultPlan.
  const FaultPlan *Faults = nullptr;
  /// Phase-1/phase-2 sharing (docs/PERF.md): build each program's
  /// abstraction once as a shared FrozenAbstraction and attach the
  /// cross-worker cache tiers (solver memo + invariant cache). Off, every
  /// worker builds a fully private session per program — the pre-sharing
  /// behavior, kept as an ablation knob for the bench. Either setting
  /// produces identical verdicts (caches are semantically transparent).
  bool SharedCaches = true;
  /// Reusable batch cancellation token. When set, every job's budget
  /// polls it (in addition to Verify's own budgets — the token replaces
  /// Verify.Cancel for the batch), and jobs the cancellation beats to
  /// dispatch are aborted in place without running. Cancelled jobs
  /// report VerifyStatus::Aborted; Aborted is never retried, never
  /// cached, and never published to shared tiers, so a cancelled batch
  /// cannot poison later identical batches (tests assert
  /// byte-identical reruns). The token is reusable in the sense that
  /// one flag can cover many batches (a daemon client's whole
  /// connection); once fired it stays fired.
  std::shared_ptr<CancelFlag> Cancel;
  /// Optional persistent share (see VerifyShare) for single-program
  /// batches. Ignored when the batch has more than one program or
  /// SharedCaches is off. The share must outlive the call and belong to
  /// this exact (program, Verify) pair.
  VerifyShare *Share = nullptr;
};

/// The merged outcome of a batch run.
struct BatchOutcome {
  /// One report per input program, in input order; results in property
  /// declaration order. Each report's TotalMillis is the summed
  /// per-property time (the sequential-equivalent cost); wall clock for
  /// the whole batch is TotalMillis below.
  std::vector<VerificationReport> Reports;
  /// Batch wall-clock, including per-worker abstraction builds.
  double TotalMillis = 0;
  /// Proof-cache traffic during this batch (zeros when no cache).
  ProofCache::Stats CacheStats;
  /// Jobs not dispatched because they were byte-identical to an earlier
  /// job in the batch (same program fingerprints, same property text);
  /// their slots carry copies of the canonical job's result.
  uint64_t DedupedJobs = 0;

  bool allProved() const;
  unsigned provedCount() const;
  unsigned propertyCount() const;
};

/// Verifies every property of every program in \p Programs on
/// \p Opts.Jobs workers. Programs must be validated and outlive the call.
BatchOutcome verifyPrograms(const std::vector<const Program *> &Programs,
                            const SchedulerOptions &Opts);

/// Single-program convenience (the CLI's `verify --jobs N`).
VerificationReport verifyParallel(const Program &P,
                                  const SchedulerOptions &Opts);

/// Session-scoped batch: verifies only the properties of \p P whose
/// declaration indices appear in \p PropIdx, in that order (results come
/// back in the same order). This is the incremental verifier's dependent
/// re-verification path — after an edit, the footprint-overlapping
/// properties are re-proved as one batch sharing a single frozen
/// abstraction and the sharded cache tiers (plus, via
/// SchedulerOptions::Share, any abstraction a session owner kept warm).
/// Out-of-range indices are ignored. The returned BatchOutcome has
/// exactly one report.
BatchOutcome verifyPropertySubset(const Program &P,
                                  const std::vector<size_t> &PropIdx,
                                  const SchedulerOptions &Opts);

} // namespace reflex

#endif // REFLEX_SERVICE_SCHEDULER_H
