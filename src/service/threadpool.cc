//===- service/threadpool.cc - Fixed-size worker pool -----------*- C++ -*-===//

#include "service/threadpool.h"

namespace reflex {

unsigned ThreadPool::defaultWorkerCount() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 2;
}

ThreadPool::ThreadPool(unsigned Workers) {
  if (Workers == 0)
    Workers = defaultWorkerCount();
  Threads.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I)
    Threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::post(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Stopping)
      return false;
    Queue.push(std::move(Task));
  }
  WorkReady.notify_one();
  return true;
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mu);
  Drained.wait(Lock, [this] { return Queue.empty() && InFlight == 0; });
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Stopping && Threads.empty())
      return;
    Stopping = true;
  }
  WorkReady.notify_all();
  for (std::thread &T : Threads)
    if (T.joinable())
      T.join();
  Threads.clear();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      WorkReady.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty()) {
        // Stopping and nothing left: exit after the queue drains so
        // shutdown never abandons accepted work.
        return;
      }
      Task = std::move(Queue.front());
      Queue.pop();
      ++InFlight;
    }
    Task();
    {
      std::lock_guard<std::mutex> Lock(Mu);
      --InFlight;
      if (Queue.empty() && InFlight == 0)
        Drained.notify_all();
    }
  }
}

} // namespace reflex
