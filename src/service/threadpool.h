//===- service/threadpool.h - Fixed-size worker pool ------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool in the house style: no exceptions
/// escape the library (tasks are required not to throw; the pool itself
/// reports setup failure via Result<T>), explicit lifetime, no global
/// state. The verification scheduler (service/scheduler.h) posts one
/// long-lived pull-loop task per worker; the pool is deliberately minimal
/// — a queue, a set of joinable threads, and a drain barrier.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_SERVICE_THREADPOOL_H
#define REFLEX_SERVICE_THREADPOOL_H

#include "support/result.h"

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace reflex {

/// A fixed set of worker threads draining a FIFO task queue.
///
/// Invariants:
///  * tasks must not throw (library code is exception-free; a throwing
///    task would cross a thread boundary and terminate);
///  * post() after shutdown() is rejected (returns false) instead of
///    asserting, so racing producers have an error path;
///  * the destructor drains the queue and joins every worker.
class ThreadPool {
public:
  /// Spawns \p Workers threads (clamped to at least 1). \p Workers == 0
  /// means "hardware concurrency".
  explicit ThreadPool(unsigned Workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task. Returns false (and drops the task) when the pool
  /// has been shut down.
  bool post(std::function<void()> Task);

  /// Blocks until the queue is empty and every in-flight task finished.
  /// Tasks posted while wait() blocks are waited for too.
  void wait();

  /// Stops accepting work, drains already-queued tasks, and joins all
  /// workers. Idempotent; also run by the destructor.
  void shutdown();

  unsigned workerCount() const { return unsigned(Threads.size()); }

  /// The pool size the scheduler uses for "--jobs 0": hardware
  /// concurrency, with a sane floor when the runtime reports 0.
  static unsigned defaultWorkerCount();

private:
  void workerLoop();

  std::mutex Mu;
  std::condition_variable WorkReady; // workers sleep here
  std::condition_variable Drained;   // wait() sleeps here
  std::queue<std::function<void()>> Queue;
  size_t InFlight = 0; // tasks popped but not yet finished
  bool Stopping = false;
  std::vector<std::thread> Threads;
};

} // namespace reflex

#endif // REFLEX_SERVICE_THREADPOOL_H
