//===- service/scheduler.cc - Parallel verification scheduling ------------===//

#include "service/scheduler.h"

#include "service/threadpool.h"
#include "support/timer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <stdexcept>
#include <thread>

namespace reflex {

bool BatchOutcome::allProved() const {
  for (const VerificationReport &R : Reports)
    if (!R.allProved())
      return false;
  return !Reports.empty();
}

unsigned BatchOutcome::provedCount() const {
  unsigned N = 0;
  for (const VerificationReport &R : Reports)
    N += R.provedCount();
  return N;
}

unsigned BatchOutcome::propertyCount() const {
  unsigned N = 0;
  for (const VerificationReport &R : Reports)
    N += unsigned(R.Results.size());
  return N;
}

namespace {

/// One schedulable unit: a property of a program. Slot is the result
/// position within the program's report (for a full batch it equals the
/// declaration index; for a subset batch it is the position within the
/// requested index list). DupOf points at the byte-identical job whose
/// result this slot copies (SIZE_MAX: dispatch normally).
struct Job {
  size_t ProgIdx;
  size_t Slot;
  size_t PropIdx;
  size_t DupOf = SIZE_MAX;
};

/// Work counters a worker's session contributes to a program's report.
struct WorkCounters {
  size_t TermCount = 0;
  uint64_t SolverQueries = 0;
  uint64_t InvariantCacheHits = 0;
  uint64_t SolverMemoHits = 0;
  uint64_t SolverAssumptionChecks = 0;
  uint64_t SolverTrailUndos = 0;
  uint64_t SolverReasonLogBytes = 0;
};

/// Per-program shared state under SchedulerOptions::SharedCaches: the
/// phase-1 frozen abstraction (built once by whichever worker gets there
/// first, then shared read-only) and the phase-2 cross-worker cache
/// tiers. Heap-allocated per program because the members are immovable.
struct ProgramShare {
  std::mutex Mu; ///< guards Abs (get-or-build); caches lock internally
  std::shared_ptr<const FrozenAbstraction> Abs;
  SharedVerifyCaches Caches;
};

/// The shared core behind verifyPrograms and verifyPropertySubset:
/// verifies, for each program, exactly the properties whose declaration
/// indices appear in its PropIdx list, slotting results in list order.
BatchOutcome runBatch(const std::vector<const Program *> &Programs,
                      const std::vector<std::vector<size_t>> &PropIdx,
                      const SchedulerOptions &Opts) {
  BatchOutcome Out;
  WallTimer Timer;

  ProofCache::Stats Before;
  if (Opts.Cache)
    Before = Opts.Cache->stats();

  // The batch cancellation token overrides any Verify-level flag: one
  // token covers every job of the batch (and, reusably, every batch a
  // caller arms with it). It is delivered through an explicit per-job
  // Deadline rather than VerifyOptions — options get baked into frozen
  // abstractions, which a persistent VerifyShare carries into *later*
  // batches, and a stale client's fired token must never abort them.
  // Cancellation is deliberately not part of the cache options
  // fingerprint: it changes when an attempt ends, never what a
  // completed proof looks like.
  VerifyOptions VOpts = Opts.Verify;
  if (Opts.Cancel)
    VOpts.Cancel = nullptr;
  auto BatchCancelled = [&Opts] {
    return Opts.Cancel && Opts.Cancel->cancelled();
  };

  // Jobs in request order; per-program fingerprints computed once (they
  // render the whole kernel). The cache keys lookups off them, and the
  // dedup pass below uses them as program identity.
  std::vector<Job> Jobs;
  std::vector<ProgramFingerprints> Fps(Programs.size());
  for (size_t PI = 0; PI < Programs.size(); ++PI) {
    Fps[PI] = ProgramFingerprints::compute(*Programs[PI]);
    size_t Slot = 0;
    for (size_t I : PropIdx[PI])
      if (I < Programs[PI]->Properties.size())
        Jobs.push_back({PI, Slot++, I});
  }

  // Dedup identical jobs before dispatch: same declarations, same handler
  // bodies, same property text -> same verdict (the determinism
  // contract), so dispatch the first and copy its slot into the others
  // after the barrier. \x1f separates the components unambiguously (it
  // cannot appear in rendered programs). Deliberately *not* refined by
  // path-granular footprints: slot copying requires byte-identical
  // programs, which HandlersFp already pins (identical printed bodies =>
  // identical rendered paths); footprint-relative equivalence across
  // *different* programs is the proof cache's job, where it is validated
  // per entry rather than assumed per job.
  {
    std::map<std::string, size_t> FirstJob;
    for (size_t J = 0; J < Jobs.size(); ++J) {
      const Job &Jb = Jobs[J];
      std::string IdKey = Fps[Jb.ProgIdx].DeclFp + '\x1f' +
                          Fps[Jb.ProgIdx].HandlersFp + '\x1f' +
                          Programs[Jb.ProgIdx]->Properties[Jb.PropIdx].str();
      auto [It, Fresh] = FirstJob.emplace(std::move(IdKey), J);
      if (!Fresh) {
        Jobs[J].DupOf = It->second;
        ++Out.DedupedJobs;
      }
    }
  }

  // Result slots: each is written by exactly one worker; the pool's
  // wait() barrier publishes them to this thread.
  std::vector<std::vector<PropertyResult>> Slots(Programs.size());
  for (const Job &Jb : Jobs)
    if (Jb.Slot >= Slots[Jb.ProgIdx].size())
      Slots[Jb.ProgIdx].resize(Jb.Slot + 1);

  std::atomic<size_t> NextJob{0};
  std::mutex CountersMu;
  std::vector<WorkCounters> Counters(Programs.size());

  unsigned Workers = Opts.Jobs ? Opts.Jobs : ThreadPool::defaultWorkerCount();
  // Never spawn more workers than jobs: an idle worker would still build
  // nothing, but the clamp keeps session counts (and TSan schedules) tidy.
  if (size_t(Workers) > Jobs.size() && !Jobs.empty())
    Workers = unsigned(Jobs.size());
  if (Workers == 0)
    Workers = 1;
  // Workers is the *logical* concurrency cap; the pool never runs more
  // OS threads than the machine has cores. Oversubscribed CPU-bound
  // workers add context-switch and cache-eviction overhead without
  // adding concurrency — on a single-core host it turns "--jobs 4" into
  // a measurable slowdown. Verdicts are thread-count independent (the
  // determinism contract above), so the clamp is unobservable outside
  // timing.
  unsigned Threads = std::min(Workers, ThreadPool::defaultWorkerCount());
  if (Threads == 0)
    Threads = 1;

  // Phase-1 slots: one shared frozen abstraction (plus cross-worker cache
  // tiers) per program, built on first demand. A single-program batch
  // handed a persistent VerifyShare uses — and warms — that instead, so
  // the abstraction and the cache tiers survive into the owner's next
  // batch (the daemon's session warm path).
  std::vector<std::unique_ptr<ProgramShare>> Shares;
  VerifyShare *Persist =
      (Opts.SharedCaches && Programs.size() == 1) ? Opts.Share : nullptr;
  if (Opts.SharedCaches && !Persist) {
    Shares.reserve(Programs.size());
    for (size_t PI = 0; PI < Programs.size(); ++PI)
      Shares.push_back(std::make_unique<ProgramShare>());
  }

  // Builds a session for one program. Shared mode: get-or-build the
  // program's FrozenAbstraction under its mutex and lay a private overlay
  // session over it; a build whose budget expired is *not* left in the
  // shared slot, so a retry rebuilds from scratch — matching the old
  // fresh-session-per-retry semantics. The cross-worker cache tiers are
  // attached when more than one thread actually runs (on a single thread
  // the private tiers already see every entry first; the shared tiers
  // would only add locking and publish copies) — or always, for a
  // persistent share, whose whole point is carrying entries across
  // batches after this batch's private sessions are gone.
  auto MakeSession = [&](size_t ProgIdx) -> std::unique_ptr<VerifySession> {
    const Program &P = *Programs[ProgIdx];
    if (!Opts.SharedCaches)
      return std::make_unique<VerifySession>(P, VOpts);
    std::mutex &ShMu = Persist ? Persist->Mu : Shares[ProgIdx]->Mu;
    std::shared_ptr<const FrozenAbstraction> &ShAbs =
        Persist ? Persist->Abs : Shares[ProgIdx]->Abs;
    SharedVerifyCaches &ShCaches =
        Persist ? Persist->Caches : Shares[ProgIdx]->Caches;
    std::shared_ptr<const FrozenAbstraction> Abs;
    {
      std::lock_guard<std::mutex> Lock(ShMu);
      if (!ShAbs) {
        ShAbs = FrozenAbstraction::build(P, VOpts);
        if (ShAbs->buildOutcome() != BudgetOutcome::Ok)
          Abs = std::move(ShAbs); // keep the failed build out of the slot
      }
      if (!Abs)
        Abs = ShAbs;
    }
    return std::make_unique<VerifySession>(
        std::move(Abs), (Persist || Threads > 1) ? &ShCaches : nullptr);
  };

  // One job, with isolation and retries: every attempt runs inside a
  // catch-all (the library is exception-free by convention, but workers
  // are the last line of defense — and the fault plan injects throws
  // here on purpose). A crash or a transient budget failure poisons at
  // most this worker's session for the program, which is rebuilt fresh
  // for the retry; the returned result is a pure function of
  // (program, property, options, fault plan), never of interleaving.
  auto RunJob =
      [&](std::map<size_t, std::unique_ptr<VerifySession>> &Sessions,
          const Job &Jb) -> PropertyResult {
    const Program &P = *Programs[Jb.ProgIdx];
    const Property &Prop = P.Properties[Jb.PropIdx];
    const std::string JobTag = P.Name + "/" + Prop.Name;
    const unsigned MaxAttempts = Opts.Retries + 1;
    std::string CrashWhat;
    for (unsigned A = 0;; ++A) {
      if (A && Opts.RetryBackoffMs) {
        uint64_t Ms = std::min<uint64_t>(
            uint64_t(Opts.RetryBackoffMs) << (A - 1), 250);
        std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
      }
      bool Crashed = false;
      PropertyResult R;
      try {
        if (Opts.Faults && Opts.Faults->decide("worker", JobTag + "#" +
                                                             std::to_string(
                                                                 A)) !=
                               FaultKind::None)
          throw std::runtime_error("injected worker fault");
        // Lazy session: a warm cache hit (Unknown, unchecked Proved, or
        // fast-validated Proved) is served without ever building one.
        auto SessionFor = [&]() -> VerifySession & {
          std::unique_ptr<VerifySession> &Session = Sessions[Jb.ProgIdx];
          if (!Session)
            Session = MakeSession(Jb.ProgIdx);
          return *Session;
        };
        bool FaultBudget =
            Opts.Faults &&
            Opts.Faults->decide("budget", JobTag) != FaultKind::None;
        if (FaultBudget || Opts.Cancel) {
          // An explicit per-attempt budget: the injected one-step fault
          // budget, or the batch's limits with the cancellation token
          // attached (the token never rides in VerifyOptions — see the
          // VOpts note above).
          Deadline D;
          if (FaultBudget)
            D.setStepBudget(1);
          else {
            D.setWallMillis(VOpts.TimeoutMillis);
            D.setStepBudget(VOpts.StepBudget);
          }
          if (Opts.Cancel)
            D.setCancelFlag(Opts.Cancel);
          R = verifyPropertyCached(P, VOpts, SessionFor, Prop, Opts.Cache,
                                   &Fps[Jb.ProgIdx], &D);
        } else {
          R = verifyPropertyCached(P, VOpts, SessionFor, Prop, Opts.Cache,
                                   &Fps[Jb.ProgIdx]);
        }
      } catch (const std::exception &E) {
        Crashed = true;
        CrashWhat = E.what();
      } catch (...) {
        Crashed = true;
        CrashWhat = "unknown exception";
      }
      if (Crashed) {
        // The session may have been mid-mutation; never reuse it.
        Sessions[Jb.ProgIdx].reset();
        if (A + 1 < MaxAttempts)
          continue;
        PropertyResult F;
        F.Name = Prop.Name;
        F.Status = VerifyStatus::Aborted;
        F.Reason = "worker crashed: " + CrashWhat + " (" +
                   std::to_string(MaxAttempts) +
                   (MaxAttempts == 1 ? " attempt)" : " attempts)");
        F.Attempts = MaxAttempts;
        return F;
      }
      R.Attempts = A + 1;
      bool Transient = R.Status == VerifyStatus::Timeout ||
                       R.Status == VerifyStatus::ResourceExhausted;
      if (Transient && A + 1 < MaxAttempts) {
        Sessions[Jb.ProgIdx].reset(); // retry on a fresh session
        continue;
      }
      return R;
    }
  };

  auto WorkerBody = [&] {
    // Per-worker sessions: the overlay TermContext and the private memo
    // tiers are not thread-safe and are never shared across workers (the
    // frozen base and the sharded cache tiers underneath them are).
    std::map<size_t, std::unique_ptr<VerifySession>> Sessions;
    for (;;) {
      size_t J = NextJob.fetch_add(1, std::memory_order_relaxed);
      if (J >= Jobs.size())
        break;
      const Job &Jb = Jobs[J];
      if (Jb.DupOf != SIZE_MAX)
        continue; // slot filled from the canonical job after the barrier
      if (BatchCancelled()) {
        // The cancellation beat this job to dispatch: abort it in place,
        // with the same status and reason a Deadline-detected abort
        // mid-proof produces, so reports do not depend on which side of
        // the dispatch the token fired (verifier.cc's budget wording).
        PropertyResult R;
        R.Name = Programs[Jb.ProgIdx]->Properties[Jb.PropIdx].Name;
        R.Status = VerifyStatus::Aborted;
        R.Reason = "verification budget exhausted: cancelled by caller";
        Slots[Jb.ProgIdx][Jb.Slot] = std::move(R);
        continue;
      }
      Slots[Jb.ProgIdx][Jb.Slot] = RunJob(Sessions, Jb);
    }
    // Contribute this worker's session counters before exiting. A slot
    // may be null — the session was never built (every job served warm
    // from the proof cache) or was discarded after a crashed attempt.
    std::lock_guard<std::mutex> Lock(CountersMu);
    for (const auto &[ProgIdx, Session] : Sessions) {
      if (!Session)
        continue;
      WorkCounters &C = Counters[ProgIdx];
      C.TermCount += Session->termContext().termCount();
      C.SolverQueries += Session->solverQueries();
      C.InvariantCacheHits += Session->invariantCacheHits();
      const SolverStats &SS = Session->solverStats();
      C.SolverMemoHits += SS.MemoHits + SS.SharedMemoHits;
      C.SolverAssumptionChecks += SS.AssumptionChecks;
      C.SolverTrailUndos += SS.TrailUndos;
      C.SolverReasonLogBytes += SS.ReasonLogBytes;
    }
  };

  if (Threads == 1) {
    // Degenerate case: run inline; no pool, no synchronization.
    WorkerBody();
  } else {
    // The calling thread is one of the workers: a pool of Threads-1 plus
    // this thread. Blocking in wait() while the pool computes would
    // waste a core's worth of work on machines where cores are scarce.
    ThreadPool Pool(Threads - 1);
    for (unsigned I = 0; I + 1 < Threads; ++I)
      Pool.post(WorkerBody);
    WorkerBody();
    Pool.wait();
  }

  // Fill deduplicated slots from their canonical jobs (the pool's wait()
  // barrier above published every canonical result). The copy includes
  // the live certificate's TermRefs — same lifetime caveat as any slot:
  // consumers that outlive the producing session use CertJson.
  for (const Job &Jb : Jobs)
    if (Jb.DupOf != SIZE_MAX) {
      const Job &Src = Jobs[Jb.DupOf];
      Slots[Jb.ProgIdx][Jb.Slot] = Slots[Src.ProgIdx][Src.Slot];
    }

  // Deterministic merge: input order, declaration order, counters summed.
  Out.Reports.resize(Programs.size());
  for (size_t PI = 0; PI < Programs.size(); ++PI) {
    VerificationReport &R = Out.Reports[PI];
    R.ProgramName = Programs[PI]->Name;
    R.Results = std::move(Slots[PI]);
    for (const PropertyResult &PR : R.Results) {
      R.TotalMillis += PR.Millis;
      if (Opts.Cache) {
        if (PR.CacheHit)
          ++R.ProofCacheHits;
        else
          ++R.ProofCacheMisses;
        if (PR.FootprintHit)
          ++R.FootprintHits;
        if (PR.PathHit)
          ++R.PathHits;
        if (PR.PathFallback)
          ++R.PathFallbacks;
      }
    }
    R.TermCount = Counters[PI].TermCount;
    R.SolverQueries = Counters[PI].SolverQueries;
    R.InvariantCacheHits = Counters[PI].InvariantCacheHits;
    R.SolverMemoHits = Counters[PI].SolverMemoHits;
    R.SolverAssumptionChecks = Counters[PI].SolverAssumptionChecks;
    R.SolverTrailUndos = Counters[PI].SolverTrailUndos;
    R.SolverReasonLogBytes = Counters[PI].SolverReasonLogBytes;
  }

  if (Opts.Cache) {
    ProofCache::Stats After = Opts.Cache->stats();
    Out.CacheStats.Hits = After.Hits - Before.Hits;
    Out.CacheStats.Misses = After.Misses - Before.Misses;
    Out.CacheStats.Stores = After.Stores - Before.Stores;
    Out.CacheStats.Rejected = After.Rejected - Before.Rejected;
    Out.CacheStats.Quarantined = After.Quarantined - Before.Quarantined;
    Out.CacheStats.FootprintHits = After.FootprintHits - Before.FootprintHits;
    Out.CacheStats.PathHits = After.PathHits - Before.PathHits;
    Out.CacheStats.PathFallbacks = After.PathFallbacks - Before.PathFallbacks;
    Out.CacheStats.DecodeMillis = After.DecodeMillis - Before.DecodeMillis;
    Out.CacheStats.RecheckMillis = After.RecheckMillis - Before.RecheckMillis;
    Out.CacheStats.SweptTmp = After.SweptTmp; // counted at open, not per batch
  }
  Out.TotalMillis = Timer.elapsedMillis();
  return Out;
}

} // namespace

BatchOutcome verifyPrograms(const std::vector<const Program *> &Programs,
                            const SchedulerOptions &Opts) {
  std::vector<std::vector<size_t>> Idx(Programs.size());
  for (size_t PI = 0; PI < Programs.size(); ++PI)
    for (size_t I = 0; I < Programs[PI]->Properties.size(); ++I)
      Idx[PI].push_back(I);
  return runBatch(Programs, Idx, Opts);
}

BatchOutcome verifyPropertySubset(const Program &P,
                                  const std::vector<size_t> &PropIdx,
                                  const SchedulerOptions &Opts) {
  return runBatch({&P}, {PropIdx}, Opts);
}

VerificationReport verifyParallel(const Program &P,
                                  const SchedulerOptions &Opts) {
  BatchOutcome Out = verifyPrograms({&P}, Opts);
  VerificationReport R = std::move(Out.Reports.front());
  // For a single program the batch wall clock *is* the program's wall
  // clock; report it the way verifyAll does.
  R.TotalMillis = Out.TotalMillis;
  return R;
}

} // namespace reflex
