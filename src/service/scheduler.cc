//===- service/scheduler.cc - Parallel verification scheduling ------------===//

#include "service/scheduler.h"

#include "service/threadpool.h"
#include "support/timer.h"
#include "verify/incremental.h"

#include <atomic>
#include <map>
#include <memory>

namespace reflex {

bool BatchOutcome::allProved() const {
  for (const VerificationReport &R : Reports)
    if (!R.allProved())
      return false;
  return !Reports.empty();
}

unsigned BatchOutcome::provedCount() const {
  unsigned N = 0;
  for (const VerificationReport &R : Reports)
    N += R.provedCount();
  return N;
}

unsigned BatchOutcome::propertyCount() const {
  unsigned N = 0;
  for (const VerificationReport &R : Reports)
    N += unsigned(R.Results.size());
  return N;
}

namespace {

/// One schedulable unit: a property of a program.
struct Job {
  size_t ProgIdx;
  size_t PropIdx;
};

/// Work counters a worker's session contributes to a program's report.
struct WorkCounters {
  size_t TermCount = 0;
  uint64_t SolverQueries = 0;
  uint64_t InvariantCacheHits = 0;
};

} // namespace

BatchOutcome verifyPrograms(const std::vector<const Program *> &Programs,
                            const SchedulerOptions &Opts) {
  BatchOutcome Out;
  WallTimer Timer;

  ProofCache::Stats Before;
  if (Opts.Cache)
    Before = Opts.Cache->stats();

  // Jobs in declaration order; per-program code fingerprints computed once
  // (they render the whole kernel).
  std::vector<Job> Jobs;
  std::vector<std::string> CodeFPs(Programs.size());
  for (size_t PI = 0; PI < Programs.size(); ++PI) {
    if (Opts.Cache)
      CodeFPs[PI] = codeFingerprint(*Programs[PI]);
    for (size_t I = 0; I < Programs[PI]->Properties.size(); ++I)
      Jobs.push_back({PI, I});
  }

  // Result slots: each is written by exactly one worker; the pool's
  // wait() barrier publishes them to this thread.
  std::vector<std::vector<PropertyResult>> Slots(Programs.size());
  for (size_t PI = 0; PI < Programs.size(); ++PI)
    Slots[PI].resize(Programs[PI]->Properties.size());

  std::atomic<size_t> NextJob{0};
  std::mutex CountersMu;
  std::vector<WorkCounters> Counters(Programs.size());

  unsigned Workers = Opts.Jobs ? Opts.Jobs : ThreadPool::defaultWorkerCount();
  // Never spawn more workers than jobs: an idle worker would still build
  // nothing, but the clamp keeps session counts (and TSan schedules) tidy.
  if (size_t(Workers) > Jobs.size() && !Jobs.empty())
    Workers = unsigned(Jobs.size());
  if (Workers == 0)
    Workers = 1;

  auto WorkerBody = [&] {
    // Private sessions: TermContext / solver memo / invariant cache are
    // not thread-safe and must never be shared across workers.
    std::map<size_t, std::unique_ptr<VerifySession>> Sessions;
    for (;;) {
      size_t J = NextJob.fetch_add(1, std::memory_order_relaxed);
      if (J >= Jobs.size())
        break;
      const Job &Jb = Jobs[J];
      const Program &P = *Programs[Jb.ProgIdx];
      std::unique_ptr<VerifySession> &Session = Sessions[Jb.ProgIdx];
      if (!Session)
        Session = std::make_unique<VerifySession>(P, Opts.Verify);
      Slots[Jb.ProgIdx][Jb.PropIdx] = verifyPropertyCached(
          *Session, P.Properties[Jb.PropIdx], Opts.Cache, CodeFPs[Jb.ProgIdx]);
    }
    // Contribute this worker's session counters before exiting.
    std::lock_guard<std::mutex> Lock(CountersMu);
    for (const auto &[ProgIdx, Session] : Sessions) {
      WorkCounters &C = Counters[ProgIdx];
      C.TermCount += Session->termContext().termCount();
      C.SolverQueries += Session->solverQueries();
      C.InvariantCacheHits += Session->invariantCacheHits();
    }
  };

  if (Workers == 1) {
    // Degenerate case: run inline; no pool, no synchronization.
    WorkerBody();
  } else {
    ThreadPool Pool(Workers);
    for (unsigned I = 0; I < Workers; ++I)
      Pool.post(WorkerBody);
    Pool.wait();
  }

  // Deterministic merge: input order, declaration order, counters summed.
  Out.Reports.resize(Programs.size());
  for (size_t PI = 0; PI < Programs.size(); ++PI) {
    VerificationReport &R = Out.Reports[PI];
    R.ProgramName = Programs[PI]->Name;
    R.Results = std::move(Slots[PI]);
    for (const PropertyResult &PR : R.Results) {
      R.TotalMillis += PR.Millis;
      if (Opts.Cache) {
        if (PR.CacheHit)
          ++R.ProofCacheHits;
        else
          ++R.ProofCacheMisses;
      }
    }
    R.TermCount = Counters[PI].TermCount;
    R.SolverQueries = Counters[PI].SolverQueries;
    R.InvariantCacheHits = Counters[PI].InvariantCacheHits;
  }

  if (Opts.Cache) {
    ProofCache::Stats After = Opts.Cache->stats();
    Out.CacheStats.Hits = After.Hits - Before.Hits;
    Out.CacheStats.Misses = After.Misses - Before.Misses;
    Out.CacheStats.Stores = After.Stores - Before.Stores;
    Out.CacheStats.Rejected = After.Rejected - Before.Rejected;
  }
  Out.TotalMillis = Timer.elapsedMillis();
  return Out;
}

VerificationReport verifyParallel(const Program &P,
                                  const SchedulerOptions &Opts) {
  BatchOutcome Out = verifyPrograms({&P}, Opts);
  VerificationReport R = std::move(Out.Reports.front());
  // For a single program the batch wall clock *is* the program's wall
  // clock; report it the way verifyAll does.
  R.TotalMillis = Out.TotalMillis;
  return R;
}

} // namespace reflex
