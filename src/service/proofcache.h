//===- service/proofcache.h - Persistent content-addressed cache -*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk proof cache behind `reflex verify --cache-dir` and the
/// incremental verifier: verdicts keyed by SHA-256 of
///
///     declaration fingerprint  +  property text  +  canonical options
///
/// where the declaration fingerprint (ProgramFingerprints::DeclFp,
/// verify/footprint.h) covers everything *except* handler bodies. Handler
/// bodies are validated per-entry instead: an entry records the
/// per-handler fingerprints of the program it was proved against, the
/// proof's footprint (path-granular: which paths of each consulted
/// handler the proof entered), and the rendered path fingerprints of the
/// footprint's handlers. A lookup against an edited program is served
/// when the edit is provably irrelevant to the proof: interface
/// fingerprints preserved and, for every footprint handler, the rendered
/// summary unchanged on everything the proof consulted — the whole
/// summary, or every path's emit structure plus the full content of just
/// the entered paths (footprintReusable). This is what makes warm hits
/// survive unrelated edits — including edits *inside* a footprint
/// handler, on branches the proof never entered. Entries store
/// the status, reason, original timing, and — for proved properties —
/// the certificate in two renderings: the audit JSON
/// (Certificate::toJson) and the canonical form (Certificate::canonical)
/// the checker compares.
///
/// Trust model (the paper's de Bruijn criterion, extended across process
/// boundaries): the cache is *untrusted*. Certificates reference
/// hash-consed terms, so a cached proof cannot be rehydrated into a live
/// session; instead, a hit for a proved property is only served after
/// checkCanonicalCertificate re-runs the deterministic derivation in the
/// live session and confirms its canonical form matches the cached
/// certificate byte-for-byte. A corrupt, tampered, or simply stale entry
/// fails that comparison and the property is re-verified in full (and the
/// entry overwritten). What a warm hit buys is skipping the independent
/// checker pass (the comparison subsumes it) and skipping BMC refutation
/// searches for cached Unknowns — and, through the incremental verifier,
/// carrying verdicts across process restarts.
///
/// Thread safety: all public methods are safe to call concurrently (the
/// scheduler's workers share one ProofCache). Writes are atomic
/// (temp-file + rename), so concurrent processes sharing a cache
/// directory at worst duplicate work, never read torn entries.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_SERVICE_PROOFCACHE_H
#define REFLEX_SERVICE_PROOFCACHE_H

#include "support/faultinject.h"
#include "support/result.h"
#include "verify/footprint.h"
#include "verify/verifier.h"

#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace reflex {

/// One cached verdict, as read from disk. Refuted verdicts are never
/// cached (their counterexample traces reference a live runtime; BMC is
/// cheap to re-run relative to proofs), so Status is Proved or Unknown.
struct ProofCacheEntry {
  VerifyStatus Status = VerifyStatus::Unknown;
  std::string Reason;
  /// Wall-clock of the original (cold) verification, for reporting.
  double Millis = 0;
  bool CertChecked = false;
  /// Proved only: canonical certificate (what the checker compares).
  std::string CanonicalCert;
  /// Proved only: audit JSON (what --certs exports on an unchecked hit).
  std::string CertJson;
  /// Proved only: SHA-256 (hex) of CanonicalCert, recorded at store time.
  /// The fast re-check mode (VerifyOptions::FastCacheRecheck) validates
  /// this hash chain instead of replaying obligations. Empty in entries
  /// stored before the field existed — those always take the full
  /// re-check.
  std::string CertSha256;
  /// The proof footprint recorded when the verdict was produced
  /// (verify/footprint.h), in wire encoding — "key" for all paths,
  /// "key@id1,id2" for the entered paths. Not collected -> the entry is
  /// only served for a byte-identical program.
  bool FootprintCollected = false;
  bool FootprintAll = false;
  std::vector<std::string> Footprint;
  /// Rendered path fingerprints of the footprint's handlers, as they were
  /// in the program the verdict was proved against (the "old" side of the
  /// path-granular reuse comparison). Recorded only for collected,
  /// non-AllHandlers footprints; an entry without them can only be served
  /// for a byte-identical program.
  PathFingerprints PathFps;
  /// Per-handler fingerprints of the program the verdict was proved
  /// against, recorded at store time. Lookups compare them against the
  /// current program's fingerprints to decide footprint-relative reuse.
  std::map<std::string, HandlerFingerprint> HandlerFps;
  /// SHA-256 (hex) of the declaration fingerprint the entry was keyed
  /// under (ProofCache::declId), recorded at store time so garbage
  /// collection can group entries by program without re-deriving keys.
  /// Optional, like cert_sha256: entries stored before the field existed
  /// simply have it empty — gc() treats them as unclaimed (dropping one
  /// only ever costs a re-verification, never a wrong verdict).
  std::string DeclSha256;
  /// The engine that produced the verdict ("induction" / "pdr"), restored
  /// into PropertyResult::ServedBy on hits so reports stay byte-identical
  /// across cache states. Empty in pre-portfolio entries (which can no
  /// longer hit anyway: the engine joined the options fingerprint).
  std::string ServedBy;
};

/// A persistent content-addressed store of verification verdicts.
class ProofCache {
public:
  /// Opens (creating if needed) a cache rooted at \p Dir. Sweeps orphaned
  /// `*.tmp.*` files left behind by crashed writers (any tmp file present
  /// at open predates this process; a *concurrent* process sharing the
  /// directory could in the worst case lose an in-flight store — which
  /// costs a re-verification, never a wrong verdict).
  /// Opening also preloads every decodable entry into an in-memory index
  /// in one stat+read pass, so warm batch lookups are served from memory
  /// (each hit re-validated against the file's current size/mtime
  /// signature — an entry that changed on disk falls back to a fresh
  /// read). The index is deliberately *not* maintained by store(): it is
  /// a snapshot of the directory at open time, which keeps every
  /// freshly-written or externally-modified entry on the read-from-disk
  /// path where damage detection lives.
  static Result<std::unique_ptr<ProofCache>> open(const std::string &Dir);

  const std::string &directory() const { return Dir; }

  /// Attaches a fault-injection plan; all subsequent file IO consults it
  /// (sites "cache.read", "cache.write", "cache.rename", keyed by cache
  /// key). Call before sharing the cache across threads; \p Plan must
  /// outlive the cache. Null detaches.
  void setFaultPlan(const FaultPlan *Plan) { Faults = Plan; }

  /// The canonical serialization of the options that shape proofs and
  /// certificates. Part of the key: an entry produced under different
  /// options is a different proof.
  static std::string optionsFingerprint(const VerifyOptions &Opts);

  /// The content-addressed key (64 hex chars). \p DeclFingerprint is
  /// ProgramFingerprints::DeclFp — the program minus handler bodies and
  /// properties — so entries for the same declarations remain findable
  /// across handler edits (per-handler validation happens at lookup).
  static std::string keyFor(const std::string &DeclFingerprint,
                            const Property &Prop, const VerifyOptions &Opts);

  /// Reads the entry for \p Key. A missing file is a plain miss; a file
  /// that is present but damaged — unparsable, truncated, wrong version,
  /// junk status, a proved entry without its certificate — is quarantined
  /// (renamed into quarantine/, preserving the evidence) and counted as
  /// Rejected, then reported as a miss so the caller re-verifies.
  std::optional<ProofCacheEntry> lookup(const std::string &Key);

  /// Moves the entry for \p Key aside into `<dir>/quarantine/<key>.json`,
  /// overwriting any previous quarantined copy of the same key. Used by
  /// lookup for undecodable entries and by verifyPropertyCached for
  /// well-formed entries whose certificate fails the canonical re-check.
  /// No-op if the entry vanished meanwhile (a concurrent quarantine).
  void quarantine(const std::string &Key);

  /// Atomically writes the entry for \p Key. \p ProgramName and
  /// \p PropertyName are stored for human auditing only.
  Result<void> store(const std::string &Key, const ProofCacheEntry &Entry,
                     const std::string &ProgramName,
                     const std::string &PropertyName);

  /// The program identity gc() groups entries by: SHA-256 (hex) of the
  /// declaration fingerprint (ProgramFingerprints::DeclFp). Stored in
  /// every entry at store time (ProofCacheEntry::DeclSha256).
  static std::string declId(const std::string &DeclFingerprint);

  struct GcOutcome {
    uint64_t Scanned = 0; ///< entry files examined
    uint64_t Dropped = 0; ///< entries deleted
    uint64_t Kept = 0;    ///< entries retained (their program is live)
    /// Programs treated as live because the persisted manifest saw them
    /// recently, though the caller's live set did not name them (e.g. a
    /// daemon restarted since they were last verified).
    uint64_t ManifestLive = 0;
    /// Quarantined evidence files surveyed / evicted (oldest first) to
    /// keep quarantine/ within its bound.
    uint64_t QuarantineKept = 0;
    uint64_t QuarantineEvicted = 0;
  };

  /// Footprint-aware garbage collection: scans every entry on disk and
  /// deletes those whose recorded declaration identity
  /// (ProofCacheEntry::DeclSha256) matches no element of
  /// \p LiveDeclSha256 — i.e. no program the caller still knows about.
  /// Entries missing the field (pre-field stores) and undecodable files
  /// are dropped too: eviction costs at most a re-verification, and the
  /// trust model never believes an entry without validating it anyway.
  /// Surviving entries are untouched on disk (warm hits keep hitting).
  /// Safe to run concurrently with lookups and stores — a concurrently
  /// stored entry for a dead program at worst survives until the next
  /// collection. Counted in Stats (GcRuns, GcDropped).
  GcOutcome gc(const std::set<std::string> &LiveDeclSha256);

  /// How long a program's entries survive gc() after it was last named in
  /// a live set, via the persisted manifest (`<dir>/gc.manifest`:
  /// decl id -> last-seen wall-clock seconds). Each gc() stamps the
  /// caller's live set into the manifest and treats every program stamped
  /// within the window as live, so compaction works across daemon
  /// restarts without a warm-up pass — a restart empties the caller's
  /// live set, not the manifest. 0 disables the manifest contribution
  /// (only the caller's set counts; the manifest is still stamped).
  void setGcManifestMaxAge(uint64_t Seconds) { ManifestMaxAge = Seconds; }
  uint64_t gcManifestMaxAge() const { return ManifestMaxAge; }

  /// Bound on quarantine/ entries. lookup() moves damaged entries there
  /// as evidence rather than deleting them; without a bound a persistent
  /// corruption source (bad disk, bit-flipping fault plan) grows it
  /// forever. gc() evicts oldest-first — by (mtime, name), so the
  /// newest evidence survives — down to this many files. 0 keeps
  /// quarantine unbounded.
  void setQuarantineMax(uint64_t N) { QuarantineMax = N; }
  uint64_t quarantineMax() const { return QuarantineMax; }

  /// Cumulative traffic counters (process-lifetime, all threads).
  struct Stats {
    uint64_t Hits = 0;     ///< entry found and (for Proved) re-validated
    uint64_t Misses = 0;   ///< no usable entry
    uint64_t Stores = 0;   ///< entries written
    uint64_t Rejected = 0;    ///< entries refused: undecodable on disk, or
                              ///< the checker rejected the certificate
    uint64_t Quarantined = 0; ///< entries moved aside into quarantine/
    uint64_t SweptTmp = 0;    ///< orphaned *.tmp.* files removed at open
    uint64_t GcRuns = 0;      ///< gc() invocations
    uint64_t GcDropped = 0;   ///< entries deleted across all gc() runs
    /// Times a gc.manifest existed on disk but would not parse (torn or
    /// corrupt); each is replayed as an empty manifest with a warning.
    uint64_t ManifestCorrupt = 0;
    /// Of the hits, how many were footprint-relative (the entry was
    /// stored for an edited-since program version).
    uint64_t FootprintHits = 0;
    /// Of the footprint-relative hits, how many only the path-granular
    /// rule could serve (a footprint handler's rendered summary changed,
    /// but only on paths the proof never entered)…
    uint64_t PathHits = 0;
    /// …and how many footprint-relative candidates (entry present, program
    /// changed) fell back to re-verification.
    uint64_t PathFallbacks = 0;
    /// Phase timings (wall-clock, summed across threads): time spent
    /// reading + decoding entries in lookup(), and time spent
    /// re-validating certificates on hits (full canonical replay or fast
    /// hash-chain validation). The parallel bench reports the split.
    double DecodeMillis = 0;
    double RecheckMillis = 0;
  };
  Stats stats() const;

  // Traffic accounting, called by verifyPropertyCached.
  void noteHit();
  void noteMiss();
  void noteRejected();
  void noteFootprintHit();
  void notePathHit();
  void notePathFallback();
  void noteDecodeMillis(double Ms);
  void noteRecheckMillis(double Ms);

  /// The current program's rendered path fingerprints, memoized per
  /// (program, options) identity for the life of the process — \p MemoKey
  /// must pin both (DeclFp + HandlersFp + options fingerprint). Computed
  /// from \p Live's abstraction on first demand; later lookups for the
  /// same program (any property, any worker) reuse the map. The returned
  /// reference lives as long as the cache.
  const PathFingerprints &pathFingerprintsFor(const std::string &MemoKey,
                                              VerifySession &Live);

  /// The fast re-check: computes SHA-256 over the entry's canonical
  /// certificate and compares it to the recorded CertSha256 (the hash
  /// chain), then structurally validates the certificate JSON — right
  /// property, known justifications, resolvable invariant references —
  /// without replaying obligations. Digest and parse are memoized by
  /// certificate *content* (same bytes, same digest), so a batch
  /// re-check hashes and parses each distinct certificate once per
  /// process. Pre-condition: Entry.CertSha256 is non-empty.
  bool validateCertificateFast(const ProofCacheEntry &Entry,
                               const Property &Prop);

  /// Result of the memoized structural parse (public so the out-of-line
  /// parser helper can name it; not part of the cache's API surface).
  struct CertParse {
    bool StructOk = false;
    std::string PropName;
  };

  /// The content digest of a canonical certificate, served from the same
  /// content-keyed memo the fast re-check uses (one SHA-256 per distinct
  /// certificate per process).
  std::string memoizedDigest(const std::string &CanonicalCert);

  /// The full-recheck memo: once checkCanonicalCertificate has accepted a
  /// certificate against a given program (identified by \p MemoKey —
  /// cache key + handler-body digest + certificate digest), replaying the
  /// byte-identical certificate against the byte-identical program is
  /// guaranteed to accept again (the derivation is deterministic), so
  /// later warm hits skip the replay. This is what keeps warm full-mode
  /// re-checking cheaper than re-proving: each distinct certificate is
  /// replayed through the checker at most once per process.
  bool fullRecheckMemoized(const std::string &MemoKey) const;
  void noteFullRecheckOk(const std::string &MemoKey);

private:
  explicit ProofCache(std::string Dir) : Dir(std::move(Dir)) {}

  std::string pathFor(const std::string &Key) const;
  void preloadIndex();

  /// The persisted GC live-set (decl id -> last-seen seconds since the
  /// Unix epoch). Best-effort on both ends: a missing manifest is an
  /// empty one; a present-but-corrupt manifest (torn write, bad disk) is
  /// also treated as empty, with a stderr warning and a Stats counter —
  /// losing it costs at most early evictions, never wrong verdicts. The
  /// store fsyncs a temp file and renames it over the final path, so a
  /// crash can tear at most the temp, not the published manifest.
  std::map<std::string, uint64_t> loadGcManifest();
  void storeGcManifest(const std::map<std::string, uint64_t> &Seen) const;
  /// Oldest-first eviction keeping quarantine/ within QuarantineMax.
  void boundQuarantine(GcOutcome &Out);

  std::string Dir;
  /// Default: two weeks — long enough to ride out restarts and weekends,
  /// short enough that abandoned programs' entries do get reclaimed.
  uint64_t ManifestMaxAge = 14 * 24 * 60 * 60;
  /// Default: enough evidence to diagnose a corruption burst without
  /// letting a persistent source grow the directory unboundedly.
  uint64_t QuarantineMax = 64;
  const FaultPlan *Faults = nullptr;
  mutable std::mutex Mu;
  Stats S;

  /// Entries preloaded at open(), keyed by cache key, each pinned to the
  /// (size, mtime) signature observed during the preload pass. Bypassed
  /// entirely while a fault plan is attached (fault injection targets the
  /// file IO path).
  struct IndexedEntry {
    uintmax_t Size = 0;
    std::filesystem::file_time_type MTime;
    ProofCacheEntry Entry;
  };
  mutable std::mutex IndexMu;
  std::unordered_map<std::string, IndexedEntry> Index;

  /// Memoized digest + structural validation of canonical certificates,
  /// keyed by the certificate content itself (the map's key equality —
  /// not the claimed digest — pins which bytes the memo entry covers).
  struct CertCheck {
    std::string Sha256;
    CertParse Parse;
  };
  mutable std::mutex ParseMu;
  std::unordered_map<std::string, CertCheck> ParseMemo;

  /// Keys of full re-checks that succeeded this process (see
  /// fullRecheckMemoized). Only successes are memoized — a failed replay
  /// quarantines the entry, so it cannot recur.
  mutable std::mutex RecheckMu;
  std::unordered_set<std::string> RecheckOk;

  /// Per-program rendered path fingerprints (see pathFingerprintsFor).
  /// unordered_map value references are stable across inserts, so handing
  /// them out under the lock is safe.
  mutable std::mutex PathFpsMu;
  std::unordered_map<std::string, PathFingerprints> PathFpsMemo;
};

/// Cache-aware verification of one property in \p Session:
///
///  * \p Cache == nullptr — plain Session.verify(Prop);
///  * miss — full verification, then the verdict is stored;
///  * hit, Proved — checkCanonicalCertificate re-derives the proof in the
///    session and compares; on success the result carries the re-derived
///    (live) certificate with CertChecked = CacheHit = true. Rejection
///    falls back to full verification and overwrites the entry. When the
///    session's options disable certificate checking, the hit is served
///    without re-validation (matching the user's chosen trust level);
///  * hit, Unknown — status and reason are reused directly.
///
/// \p Fps must be ProgramFingerprints::compute(Session.program()), or
/// null to have it computed here (callers verifying many properties
/// should precompute it). The cache key is derived from its DeclFp; a
/// hit whose stored handler fingerprints differ from the current ones is
/// served only when footprintReusable holds against the entry's recorded
/// path-granular footprint and stored path fingerprints (the edit kept
/// every interface and left everything the proof consulted rendered
/// byte-identical), in which case the result carries FootprintHit = true
/// (and PathHit = true when only the path-granular rule could serve it);
/// an incompatible entry is a plain miss (stale, not damaged — no
/// quarantine) and is overwritten after re-verification, with the
/// re-verified result carrying PathFallback = true.
///
/// \p CurPaths, when non-null, must be
/// computePathFingerprints(<current program's abstraction>) — the "new"
/// side of the path comparison; when null it is computed on demand from
/// the live session and memoized in the cache per program, so only
/// lookups that actually face a changed program pay for it.
///
/// \p Budget optionally bounds the whole operation, including the
/// certificate re-check on a warm hit; a re-check that fails only because
/// the budget ran out is *not* a rejection (the entry stays), the
/// property just reports its budget status. Budget statuses are never
/// stored.
///
/// With VerifyOptions::FastCacheRecheck, a Proved hit that carries a
/// certificate hash is served after validateCertificateFast instead of
/// the full canonical re-derivation (FastRecheck = true, CertChecked =
/// false in the result); a failed fast validation quarantines the entry
/// and re-verifies in full. Entries without a hash take the full re-check.
/// Full re-checks of a certificate already accepted for this exact (key,
/// handler bodies, certificate content) this process are served from the
/// recheck memo without replaying (CertChecked = true, no live
/// certificate — CertJson comes from the entry).
PropertyResult verifyPropertyCached(VerifySession &Session,
                                    const Property &Prop, ProofCache *Cache,
                                    const ProgramFingerprints *Fps = nullptr,
                                    Deadline *Budget = nullptr,
                                    const PathFingerprints *CurPaths = nullptr);

/// Lazy-session variant: \p Session is invoked only if a live session is
/// actually needed — a cache miss, a full certificate re-check, or a
/// rejected entry. Unknown hits, unchecked Proved hits, and fast-mode
/// Proved hits are served without ever building one; this is what makes
/// the warm path cheap (no symbolic re-execution of the program) and what
/// the scheduler uses to avoid building sessions for fully cached
/// programs. The provider may be called multiple times and must return
/// the same session (for \p P, with \p Opts) each time.
PropertyResult verifyPropertyCached(
    const Program &P, const VerifyOptions &Opts,
    const std::function<VerifySession &()> &Session, const Property &Prop,
    ProofCache *Cache, const ProgramFingerprints *Fps = nullptr,
    Deadline *Budget = nullptr, const PathFingerprints *CurPaths = nullptr);

} // namespace reflex

#endif // REFLEX_SERVICE_PROOFCACHE_H
