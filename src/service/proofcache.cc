//===- service/proofcache.cc - Persistent content-addressed cache ---------===//

#include "service/proofcache.h"

#include "support/json.h"
#include "support/sha256.h"
#include "support/timer.h"
#include "verify/checker.h"
#include "verify/incremental.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

namespace reflex {

namespace fs = std::filesystem;

namespace {

/// Bumped whenever the entry layout or the canonical certificate form
/// changes; old entries are quarantined at first lookup and re-verified.
constexpr int64_t EntryVersion = 1;

} // namespace

Result<std::unique_ptr<ProofCache>> ProofCache::open(const std::string &Dir) {
  std::error_code EC;
  fs::create_directories(Dir, EC);
  if (EC)
    return Error("cannot create cache directory '" + Dir +
                 "': " + EC.message());
  // Probe writability now so a read-only directory fails loudly at open
  // time rather than silently degrading every store.
  fs::path Probe = fs::path(Dir) / ".probe";
  {
    std::ofstream Out(Probe);
    if (!Out)
      return Error("cache directory '" + Dir + "' is not writable");
  }
  fs::remove(Probe, EC);

  // Sweep orphaned temp files from crashed writers. Anything matching
  // "*.json.tmp.*" predates this process (live writers rename their temp
  // away within one store() call), so removing them only reclaims junk
  // that would otherwise accumulate forever.
  uint64_t Swept = 0;
  for (const fs::directory_entry &DE : fs::directory_iterator(Dir, EC)) {
    if (!DE.is_regular_file(EC))
      continue;
    if (DE.path().filename().string().find(".json.tmp.") ==
        std::string::npos)
      continue;
    std::error_code RmEC;
    if (fs::remove(DE.path(), RmEC))
      ++Swept;
  }

  auto Cache = std::unique_ptr<ProofCache>(new ProofCache(Dir));
  Cache->S.SweptTmp = Swept;
  return Cache;
}

std::string ProofCache::optionsFingerprint(const VerifyOptions &Opts) {
  std::ostringstream OS;
  OS << "skip=" << Opts.SyntacticSkip << ";inv-cache=" << Opts.CacheInvariants
     << ";simplify=" << Opts.Simplify << ";check=" << Opts.CheckCertificates
     << ";bmc=" << Opts.BmcDepthOnUnknown
     << ";max-disjuncts=" << Opts.Limits.MaxDisjuncts
     << ";max-paths=" << Opts.Limits.MaxPaths;
  return OS.str();
}

std::string ProofCache::keyFor(const std::string &CodeFingerprint,
                               const Property &Prop,
                               const VerifyOptions &Opts) {
  Sha256 H;
  H.updateField(CodeFingerprint);
  H.updateField(Prop.str());
  H.updateField(optionsFingerprint(Opts));
  return H.hexDigest();
}

std::string ProofCache::pathFor(const std::string &Key) const {
  return (fs::path(Dir) / (Key + ".json")).string();
}

std::optional<ProofCacheEntry> ProofCache::lookup(const std::string &Key) {
  FaultyIO IO(Faults);
  Result<std::string> Bytes = IO.readFile(pathFor(Key), Key);
  if (!Bytes.ok()) {
    // Distinguish absence (a plain miss) from an unreadable file (an IO
    // error, possibly injected): neither tells us the entry is damaged,
    // so neither quarantines.
    return std::nullopt;
  }

  // From here on the file exists and was read; anything undecodable is
  // damage — quarantine the evidence and report a miss.
  auto Damaged = [&](const char *Why) -> std::optional<ProofCacheEntry> {
    (void)Why;
    quarantine(Key);
    noteRejected();
    return std::nullopt;
  };

  Result<JsonValue> Doc = parseJson(*Bytes);
  if (!Doc.ok() || !Doc->isObject())
    return Damaged("unparsable JSON");
  if (int64_t(Doc->getNumber("version", 0)) != EntryVersion)
    return Damaged("version mismatch");

  ProofCacheEntry E;
  std::string Status = Doc->getString("status");
  if (Status == verifyStatusName(VerifyStatus::Proved))
    E.Status = VerifyStatus::Proved;
  else if (Status == verifyStatusName(VerifyStatus::Unknown))
    E.Status = VerifyStatus::Unknown;
  else
    return Damaged("junk status"); // Refuted/budget statuses never cached
  E.Reason = Doc->getString("reason");
  E.Millis = Doc->getNumber("millis", 0);
  E.CertChecked = Doc->getBool("cert_checked", false);
  E.CanonicalCert = Doc->getString("canonical_cert");
  E.CertJson = Doc->getString("cert_json");
  if (E.Status == VerifyStatus::Proved && E.CanonicalCert.empty())
    return Damaged("proved entry without its certificate");
  return E;
}

void ProofCache::quarantine(const std::string &Key) {
  std::error_code EC;
  fs::path QDir = fs::path(Dir) / "quarantine";
  fs::create_directories(QDir, EC);
  if (EC)
    return; // best effort: evidence preservation must not block verification
  fs::rename(pathFor(Key), QDir / (Key + ".json"), EC);
  if (EC)
    return; // entry vanished (concurrent quarantine/overwrite) — fine
  std::lock_guard<std::mutex> Lock(Mu);
  ++S.Quarantined;
}

Result<void> ProofCache::store(const std::string &Key,
                               const ProofCacheEntry &Entry,
                               const std::string &ProgramName,
                               const std::string &PropertyName) {
  JsonWriter W;
  W.beginObject();
  W.field("version", EntryVersion);
  W.field("program", ProgramName);
  W.field("property", PropertyName);
  W.field("status", verifyStatusName(Entry.Status));
  W.field("reason", Entry.Reason);
  W.key("millis");
  W.value(Entry.Millis);
  W.field("cert_checked", Entry.CertChecked);
  W.field("canonical_cert", Entry.CanonicalCert);
  W.field("cert_json", Entry.CertJson);
  W.endObject();

  // Atomic publish: write and fsync a per-thread temp file, then rename
  // over the final path. Readers either see the old entry or the complete
  // new one; the fsync ensures a crash right after the rename cannot
  // publish an empty or torn entry.
  std::string Final = pathFor(Key);
  std::ostringstream TmpName;
  TmpName << Final << ".tmp." << std::this_thread::get_id();
  FaultyIO IO(Faults);
  if (Result<void> W1 = IO.writeFile(TmpName.str(), W.take() + "\n", Key);
      !W1.ok())
    return Error("cannot write cache entry: " + W1.error());
  if (Result<void> R1 = IO.renameFile(TmpName.str(), Final, Key); !R1.ok()) {
    std::error_code EC;
    fs::remove(TmpName.str(), EC);
    return Error("cannot publish cache entry: " + R1.error());
  }
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ++S.Stores;
  }
  return {};
}

ProofCache::Stats ProofCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return S;
}

void ProofCache::noteHit() {
  std::lock_guard<std::mutex> Lock(Mu);
  ++S.Hits;
}

void ProofCache::noteMiss() {
  std::lock_guard<std::mutex> Lock(Mu);
  ++S.Misses;
}

void ProofCache::noteRejected() {
  std::lock_guard<std::mutex> Lock(Mu);
  ++S.Rejected;
}

PropertyResult verifyPropertyCached(VerifySession &Session,
                                    const Property &Prop, ProofCache *Cache,
                                    const std::string &CodeFingerprint,
                                    Deadline *Budget) {
  auto Verify = [&] {
    return Budget ? Session.verify(Prop, *Budget) : Session.verify(Prop);
  };
  if (!Cache)
    return Verify();

  const VerifyOptions &Opts = Session.options();
  std::string CodeFP = CodeFingerprint.empty()
                           ? codeFingerprint(Session.program())
                           : CodeFingerprint;
  std::string Key = ProofCache::keyFor(CodeFP, Prop, Opts);

  if (std::optional<ProofCacheEntry> E = Cache->lookup(Key)) {
    WallTimer Timer;
    if (E->Status == VerifyStatus::Unknown) {
      // Reusing "the automation could not prove this" needs no proof
      // object; the key ties it to the exact code/property/options.
      PropertyResult R;
      R.Name = Prop.Name;
      R.Status = VerifyStatus::Unknown;
      R.Reason = std::move(E->Reason);
      R.CacheHit = true;
      R.Millis = Timer.elapsedMillis();
      Cache->noteHit();
      return R;
    }
    // Proved. The entry is untrusted: re-derive in this session and
    // require the canonical forms to agree (the checker is the trust
    // anchor, exactly as for freshly produced certificates).
    if (!Opts.CheckCertificates) {
      PropertyResult R;
      R.Name = Prop.Name;
      R.Status = VerifyStatus::Proved;
      R.CertJson = std::move(E->CertJson);
      R.CertChecked = false;
      R.CacheHit = true;
      R.Millis = Timer.elapsedMillis();
      Cache->noteHit();
      return R;
    }
    ProverOptions RecheckOpts = proverOptions(Opts);
    RecheckOpts.Budget = Budget;
    RecheckOutcome Chk = checkCanonicalCertificate(
        Session.termContext(), Session.program(), Session.behAbs(), Prop,
        E->CanonicalCert, RecheckOpts);
    if (Chk.Ok) {
      PropertyResult R;
      R.Name = Prop.Name;
      R.Status = VerifyStatus::Proved;
      R.Cert = std::move(Chk.Rederived);
      R.CertJson = R.Cert.toJson(Session.termContext());
      R.CertChecked = true;
      R.CacheHit = true;
      R.Millis = Timer.elapsedMillis();
      Cache->noteHit();
      return R;
    }
    if (Budget && Budget->expiredNow()) {
      // The re-check failed only because the budget ran out mid-way —
      // that says nothing about the entry, so it stays where it is. The
      // full verification below fails fast with the budget status.
    } else {
      // Tampered/corrupt/stale: quarantine the evidence and fall through
      // to a full verification, which will publish a fresh entry.
      Cache->noteRejected();
      Cache->quarantine(Key);
    }
  } else {
    Cache->noteMiss();
  }

  PropertyResult R = Verify();
  if (R.Status == VerifyStatus::Proved || R.Status == VerifyStatus::Unknown) {
    ProofCacheEntry E;
    E.Status = R.Status;
    E.Reason = R.Reason;
    E.Millis = R.Millis;
    E.CertChecked = R.CertChecked;
    if (R.Status == VerifyStatus::Proved) {
      E.CanonicalCert = R.Cert.canonical(Session.termContext());
      E.CertJson = R.CertJson;
    }
    // Store failures are non-fatal: the cache is an accelerator, the
    // verdict in hand is what matters.
    (void)Cache->store(Key, E, Session.program().Name, Prop.Name);
  }
  return R;
}

} // namespace reflex
