//===- service/proofcache.cc - Persistent content-addressed cache ---------===//

#include "service/proofcache.h"

#include "support/json.h"
#include "support/sha256.h"
#include "support/timer.h"
#include "verify/checker.h"
#include "verify/incremental.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

namespace reflex {

namespace fs = std::filesystem;

namespace {

/// Bumped whenever the entry layout or the canonical certificate form
/// changes; old entries become misses, not parse errors.
constexpr int64_t EntryVersion = 1;

} // namespace

Result<std::unique_ptr<ProofCache>> ProofCache::open(const std::string &Dir) {
  std::error_code EC;
  fs::create_directories(Dir, EC);
  if (EC)
    return Error("cannot create cache directory '" + Dir +
                 "': " + EC.message());
  // Probe writability now so a read-only directory fails loudly at open
  // time rather than silently degrading every store.
  fs::path Probe = fs::path(Dir) / ".probe";
  {
    std::ofstream Out(Probe);
    if (!Out)
      return Error("cache directory '" + Dir + "' is not writable");
  }
  fs::remove(Probe, EC);
  return std::unique_ptr<ProofCache>(new ProofCache(Dir));
}

std::string ProofCache::optionsFingerprint(const VerifyOptions &Opts) {
  std::ostringstream OS;
  OS << "skip=" << Opts.SyntacticSkip << ";inv-cache=" << Opts.CacheInvariants
     << ";simplify=" << Opts.Simplify << ";check=" << Opts.CheckCertificates
     << ";bmc=" << Opts.BmcDepthOnUnknown
     << ";max-disjuncts=" << Opts.Limits.MaxDisjuncts
     << ";max-paths=" << Opts.Limits.MaxPaths;
  return OS.str();
}

std::string ProofCache::keyFor(const std::string &CodeFingerprint,
                               const Property &Prop,
                               const VerifyOptions &Opts) {
  Sha256 H;
  H.updateField(CodeFingerprint);
  H.updateField(Prop.str());
  H.updateField(optionsFingerprint(Opts));
  return H.hexDigest();
}

std::string ProofCache::pathFor(const std::string &Key) const {
  return (fs::path(Dir) / (Key + ".json")).string();
}

std::optional<ProofCacheEntry> ProofCache::lookup(const std::string &Key) {
  std::ifstream In(pathFor(Key));
  if (!In)
    return std::nullopt;
  std::stringstream SS;
  SS << In.rdbuf();

  Result<JsonValue> Doc = parseJson(SS.str());
  if (!Doc.ok() || !Doc->isObject())
    return std::nullopt;
  if (int64_t(Doc->getNumber("version", 0)) != EntryVersion)
    return std::nullopt;

  ProofCacheEntry E;
  std::string Status = Doc->getString("status");
  if (Status == verifyStatusName(VerifyStatus::Proved))
    E.Status = VerifyStatus::Proved;
  else if (Status == verifyStatusName(VerifyStatus::Unknown))
    E.Status = VerifyStatus::Unknown;
  else
    return std::nullopt; // Refuted is never cached; anything else is junk.
  E.Reason = Doc->getString("reason");
  E.Millis = Doc->getNumber("millis", 0);
  E.CertChecked = Doc->getBool("cert_checked", false);
  E.CanonicalCert = Doc->getString("canonical_cert");
  E.CertJson = Doc->getString("cert_json");
  if (E.Status == VerifyStatus::Proved && E.CanonicalCert.empty())
    return std::nullopt; // a proved entry without its proof is unusable
  return E;
}

Result<void> ProofCache::store(const std::string &Key,
                               const ProofCacheEntry &Entry,
                               const std::string &ProgramName,
                               const std::string &PropertyName) {
  JsonWriter W;
  W.beginObject();
  W.field("version", EntryVersion);
  W.field("program", ProgramName);
  W.field("property", PropertyName);
  W.field("status", verifyStatusName(Entry.Status));
  W.field("reason", Entry.Reason);
  W.key("millis");
  W.value(Entry.Millis);
  W.field("cert_checked", Entry.CertChecked);
  W.field("canonical_cert", Entry.CanonicalCert);
  W.field("cert_json", Entry.CertJson);
  W.endObject();

  // Atomic publish: write a per-thread temp file, then rename over the
  // final path. Readers either see the old entry or the complete new one.
  std::string Final = pathFor(Key);
  std::ostringstream TmpName;
  TmpName << Final << ".tmp." << std::this_thread::get_id();
  {
    std::ofstream Out(TmpName.str(), std::ios::trunc);
    if (!Out)
      return Error("cannot write cache entry '" + TmpName.str() + "'");
    Out << W.take() << "\n";
    if (!Out.good())
      return Error("short write on cache entry '" + TmpName.str() + "'");
  }
  std::error_code EC;
  fs::rename(TmpName.str(), Final, EC);
  if (EC) {
    fs::remove(TmpName.str(), EC);
    return Error("cannot publish cache entry '" + Final + "'");
  }
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ++S.Stores;
  }
  return {};
}

ProofCache::Stats ProofCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return S;
}

void ProofCache::noteHit() {
  std::lock_guard<std::mutex> Lock(Mu);
  ++S.Hits;
}

void ProofCache::noteMiss() {
  std::lock_guard<std::mutex> Lock(Mu);
  ++S.Misses;
}

void ProofCache::noteRejected() {
  std::lock_guard<std::mutex> Lock(Mu);
  ++S.Rejected;
}

PropertyResult verifyPropertyCached(VerifySession &Session,
                                    const Property &Prop, ProofCache *Cache,
                                    const std::string &CodeFingerprint) {
  if (!Cache)
    return Session.verify(Prop);

  const VerifyOptions &Opts = Session.options();
  std::string CodeFP = CodeFingerprint.empty()
                           ? codeFingerprint(Session.program())
                           : CodeFingerprint;
  std::string Key = ProofCache::keyFor(CodeFP, Prop, Opts);

  if (std::optional<ProofCacheEntry> E = Cache->lookup(Key)) {
    WallTimer Timer;
    if (E->Status == VerifyStatus::Unknown) {
      // Reusing "the automation could not prove this" needs no proof
      // object; the key ties it to the exact code/property/options.
      PropertyResult R;
      R.Name = Prop.Name;
      R.Status = VerifyStatus::Unknown;
      R.Reason = std::move(E->Reason);
      R.CacheHit = true;
      R.Millis = Timer.elapsedMillis();
      Cache->noteHit();
      return R;
    }
    // Proved. The entry is untrusted: re-derive in this session and
    // require the canonical forms to agree (the checker is the trust
    // anchor, exactly as for freshly produced certificates).
    if (!Opts.CheckCertificates) {
      PropertyResult R;
      R.Name = Prop.Name;
      R.Status = VerifyStatus::Proved;
      R.CertJson = std::move(E->CertJson);
      R.CertChecked = false;
      R.CacheHit = true;
      R.Millis = Timer.elapsedMillis();
      Cache->noteHit();
      return R;
    }
    RecheckOutcome Chk = checkCanonicalCertificate(
        Session.termContext(), Session.program(), Session.behAbs(), Prop,
        E->CanonicalCert, proverOptions(Opts));
    if (Chk.Ok) {
      PropertyResult R;
      R.Name = Prop.Name;
      R.Status = VerifyStatus::Proved;
      R.Cert = std::move(Chk.Rederived);
      R.CertJson = R.Cert.toJson(Session.termContext());
      R.CertChecked = true;
      R.CacheHit = true;
      R.Millis = Timer.elapsedMillis();
      Cache->noteHit();
      return R;
    }
    // Tampered/corrupt/stale: fall through to a full verification, which
    // will overwrite the entry.
    Cache->noteRejected();
  } else {
    Cache->noteMiss();
  }

  PropertyResult R = Session.verify(Prop);
  if (R.Status == VerifyStatus::Proved || R.Status == VerifyStatus::Unknown) {
    ProofCacheEntry E;
    E.Status = R.Status;
    E.Reason = R.Reason;
    E.Millis = R.Millis;
    E.CertChecked = R.CertChecked;
    if (R.Status == VerifyStatus::Proved) {
      E.CanonicalCert = R.Cert.canonical(Session.termContext());
      E.CertJson = R.CertJson;
    }
    // Store failures are non-fatal: the cache is an accelerator, the
    // verdict in hand is what matters.
    (void)Cache->store(Key, E, Session.program().Name, Prop.Name);
  }
  return R;
}

} // namespace reflex
