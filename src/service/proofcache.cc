//===- service/proofcache.cc - Persistent content-addressed cache ---------===//

#include "service/proofcache.h"

#include "support/json.h"
#include "support/sha256.h"
#include "support/timer.h"
#include "verify/checker.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

namespace reflex {

namespace fs = std::filesystem;

namespace {

/// Bumped whenever the entry layout or the canonical certificate form
/// changes. An entry from another version is *stale, not damaged*: it
/// decodes to a plain miss (never quarantined) and is overwritten after
/// re-verification. (cert_sha256 was added without a bump: it is
/// optional, and entries missing it simply take the full re-check path.
/// Version 2 moved the key to the declaration fingerprint and added the
/// proof footprint and per-handler fingerprints. Version 3 made
/// footprints path-granular — entries record which paths of each
/// consulted handler the proof entered, plus the rendered path
/// fingerprints reuse compares; v2 entries carry neither, and their
/// guard order may predate render-stable sorting, so they cannot be
/// validated against an edited program and simply miss.)
constexpr int64_t EntryVersion = 3;

/// The GC manifest's filename. Lives beside the entries (same .json
/// extension a key file has, but keys are 64 hex chars, so no collision);
/// the directory scans skip it by name.
// Deliberately not *.json: directory scans (preload, gc, tests) treat
// every .json file as a cache entry, and the manifest is not one.
constexpr const char *GcManifestName = "gc.manifest";

/// Decodes one entry file's bytes. Returns nullopt for anything a lookup
/// would treat as damage (unparsable, junk status, proved without
/// certificate) — and for other-version entries, which additionally set
/// \p Stale so lookup() reports a plain miss instead of quarantining.
/// Shared by lookup() and the open()-time preload.
std::optional<ProofCacheEntry> decodeEntry(const std::string &Bytes,
                                           bool *Stale = nullptr) {
  Result<JsonValue> Doc = parseJson(Bytes);
  if (!Doc.ok() || !Doc->isObject())
    return std::nullopt;
  if (int64_t(Doc->getNumber("version", 0)) != EntryVersion) {
    // A well-formed entry written under another layout generation (an
    // old process's v2 file, or a newer process's) is not evidence of
    // damage — it is simply unusable here.
    if (Stale && int64_t(Doc->getNumber("version", 0)) > 0)
      *Stale = true;
    return std::nullopt;
  }

  ProofCacheEntry E;
  std::string Status = Doc->getString("status");
  if (Status == verifyStatusName(VerifyStatus::Proved))
    E.Status = VerifyStatus::Proved;
  else if (Status == verifyStatusName(VerifyStatus::Unknown))
    E.Status = VerifyStatus::Unknown;
  else
    return std::nullopt; // Refuted/budget statuses never cached
  E.Reason = Doc->getString("reason");
  E.Millis = Doc->getNumber("millis", 0);
  E.CertChecked = Doc->getBool("cert_checked", false);
  E.CanonicalCert = Doc->getString("canonical_cert");
  E.CertJson = Doc->getString("cert_json");
  E.CertSha256 = Doc->getString("cert_sha256");
  E.DeclSha256 = Doc->getString("decl_sha256");
  E.ServedBy = Doc->getString("served_by");
  if (E.Status == VerifyStatus::Proved && E.CanonicalCert.empty())
    return std::nullopt; // proved entry without its certificate
  E.FootprintCollected = Doc->getBool("footprint_collected", false);
  E.FootprintAll = Doc->getBool("footprint_all", false);
  if (const JsonValue *FP = Doc->get("footprint")) {
    if (!FP->isArray())
      return std::nullopt;
    for (const JsonValue &K : FP->items()) {
      if (!K.isString())
        return std::nullopt;
      E.Footprint.push_back(K.stringValue());
    }
  }
  // Per-handler fingerprints, encoded as {"Comp=>Msg": "bodyfp:ifacefp"}.
  // An entry without them (or with a malformed pair) is treated as damage:
  // version-2 entries always record them, and serving a hit without being
  // able to compare handler bodies would be unsound.
  const JsonValue *HF = Doc->get("handler_fps");
  if (!HF || !HF->isObject())
    return std::nullopt;
  for (const auto &[Key, Val] : HF->entries()) {
    if (!Val.isString())
      return std::nullopt;
    const std::string &Pair = Val.stringValue();
    size_t Colon = Pair.find(':');
    if (Colon == std::string::npos)
      return std::nullopt;
    HandlerFingerprint F;
    F.BodyFp = Pair.substr(0, Colon);
    F.IfaceFp = Pair.substr(Colon + 1);
    E.HandlerFps.emplace(Key, std::move(F));
  }
  // Rendered path fingerprints of the footprint's handlers. Optional as a
  // whole (entries for AllHandlers or uncollected footprints have none);
  // malformed content is damage like any other field.
  if (const JsonValue *PF = Doc->get("path_fps")) {
    if (!PF->isObject())
      return std::nullopt;
    for (const auto &[Key, Val] : PF->entries()) {
      if (!Val.isObject())
        return std::nullopt;
      SummaryFingerprint SF;
      SF.SummaryFp = Val.getString("summary");
      SF.Incomplete = Val.getBool("incomplete", false);
      const JsonValue *Paths = Val.get("paths");
      if (SF.SummaryFp.empty() || !Paths || !Paths->isArray())
        return std::nullopt;
      for (const JsonValue &PV : Paths->items()) {
        if (!PV.isObject())
          return std::nullopt;
        PathFingerprint F;
        F.Id = PV.getString("id");
        F.EmitFp = PV.getString("emit");
        F.FullFp = PV.getString("full");
        if (F.Id.empty() || F.EmitFp.empty() || F.FullFp.empty())
          return std::nullopt;
        SF.Paths.push_back(std::move(F));
      }
      E.PathFps.emplace(Key, std::move(SF));
    }
  }
  return E;
}

} // namespace

Result<std::unique_ptr<ProofCache>> ProofCache::open(const std::string &Dir) {
  std::error_code EC;
  fs::create_directories(Dir, EC);
  if (EC)
    return Error("cannot create cache directory '" + Dir +
                 "': " + EC.message());
  // Probe writability now so a read-only directory fails loudly at open
  // time rather than silently degrading every store.
  fs::path Probe = fs::path(Dir) / ".probe";
  {
    std::ofstream Out(Probe);
    if (!Out)
      return Error("cache directory '" + Dir + "' is not writable");
  }
  fs::remove(Probe, EC);

  // Sweep orphaned temp files from crashed writers. Anything matching
  // "*.json.tmp.*" predates this process (live writers rename their temp
  // away within one store() call), so removing them only reclaims junk
  // that would otherwise accumulate forever.
  uint64_t Swept = 0;
  for (const fs::directory_entry &DE : fs::directory_iterator(Dir, EC)) {
    if (!DE.is_regular_file(EC))
      continue;
    if (DE.path().filename().string().find(".json.tmp.") ==
        std::string::npos)
      continue;
    std::error_code RmEC;
    if (fs::remove(DE.path(), RmEC))
      ++Swept;
  }

  auto Cache = std::unique_ptr<ProofCache>(new ProofCache(Dir));
  Cache->S.SweptTmp = Swept;
  Cache->preloadIndex();
  return Cache;
}

void ProofCache::preloadIndex() {
  // One stat+read pass over the directory: every decodable entry goes
  // into the in-memory index with the (size, mtime) signature it had
  // right now. Undecodable files are left alone — damage handling (with
  // its quarantine + counter semantics) belongs to lookup(), which a
  // damaged entry still reaches because it is simply not indexed.
  std::error_code EC;
  for (const fs::directory_entry &DE : fs::directory_iterator(Dir, EC)) {
    if (!DE.is_regular_file(EC))
      continue;
    const fs::path &P = DE.path();
    if (P.extension() != ".json" || P.filename() == GcManifestName)
      continue;
    std::error_code SzEC, MtEC;
    uintmax_t Size = fs::file_size(P, SzEC);
    fs::file_time_type MTime = fs::last_write_time(P, MtEC);
    if (SzEC || MtEC)
      continue;
    std::ifstream In(P, std::ios::binary);
    if (!In)
      continue;
    std::ostringstream Buf;
    Buf << In.rdbuf();
    std::optional<ProofCacheEntry> E = decodeEntry(Buf.str());
    if (!E)
      continue;
    IndexedEntry IE;
    IE.Size = Size;
    IE.MTime = MTime;
    IE.Entry = std::move(*E);
    Index.emplace(P.stem().string(), std::move(IE));
  }
}

std::string ProofCache::optionsFingerprint(const VerifyOptions &Opts) {
  std::ostringstream OS;
  OS << "skip=" << Opts.SyntacticSkip << ";inv-cache=" << Opts.CacheInvariants
     << ";simplify=" << Opts.Simplify << ";check=" << Opts.CheckCertificates
     << ";bmc=" << Opts.BmcDepthOnUnknown
     << ";bmc-states=" << Opts.Bmc.MaxStates
     << ";bmc-payloads=" << Opts.Bmc.MaxPayloadsPerMessage
     << ";max-disjuncts=" << Opts.Limits.MaxDisjuncts
     << ";max-paths=" << Opts.Limits.MaxPaths
     << ";engine=" << engineKindName(Opts.Engine);
  return OS.str();
}

std::string ProofCache::keyFor(const std::string &DeclFingerprint,
                               const Property &Prop,
                               const VerifyOptions &Opts) {
  Sha256 H;
  H.updateField(DeclFingerprint);
  H.updateField(Prop.str());
  H.updateField(optionsFingerprint(Opts));
  return H.hexDigest();
}

std::string ProofCache::pathFor(const std::string &Key) const {
  return (fs::path(Dir) / (Key + ".json")).string();
}

std::optional<ProofCacheEntry> ProofCache::lookup(const std::string &Key) {
  WallTimer DecodeTimer;
  // Fast path: the open()-time index, re-validated against the file's
  // current stat signature so an entry overwritten, tampered with, or
  // quarantined since open never gets served stale. Skipped while a
  // fault plan is attached — injected IO faults must see real file IO.
  if (!Faults) {
    std::lock_guard<std::mutex> Lock(IndexMu);
    auto It = Index.find(Key);
    if (It != Index.end()) {
      std::error_code SzEC, MtEC;
      fs::path P = pathFor(Key);
      uintmax_t Size = fs::file_size(P, SzEC);
      fs::file_time_type MTime = fs::last_write_time(P, MtEC);
      if (!SzEC && !MtEC && Size == It->second.Size &&
          MTime == It->second.MTime) {
        noteDecodeMillis(DecodeTimer.elapsedMillis());
        return It->second.Entry;
      }
      // The file changed (or vanished) since open: drop the snapshot and
      // take the disk path below, where damage handling lives.
      Index.erase(It);
    }
  }

  FaultyIO IO(Faults);
  Result<std::string> Bytes = IO.readFile(pathFor(Key), Key);
  if (!Bytes.ok()) {
    // Distinguish absence (a plain miss) from an unreadable file (an IO
    // error, possibly injected): neither tells us the entry is damaged,
    // so neither quarantines.
    noteDecodeMillis(DecodeTimer.elapsedMillis());
    return std::nullopt;
  }

  // From here on the file exists and was read; anything undecodable is
  // damage — quarantine the evidence and report a miss — except an entry
  // from another layout version, which is stale: a plain miss, left in
  // place to be overwritten by the re-verification's store.
  bool Stale = false;
  std::optional<ProofCacheEntry> E = decodeEntry(*Bytes, &Stale);
  noteDecodeMillis(DecodeTimer.elapsedMillis());
  if (!E) {
    if (Stale)
      return std::nullopt;
    quarantine(Key);
    noteRejected();
    return std::nullopt;
  }
  return E;
}

void ProofCache::quarantine(const std::string &Key) {
  {
    // The on-disk entry is about to move aside; the open()-time snapshot
    // of it must go with it.
    std::lock_guard<std::mutex> Lock(IndexMu);
    Index.erase(Key);
  }
  std::error_code EC;
  fs::path QDir = fs::path(Dir) / "quarantine";
  fs::create_directories(QDir, EC);
  if (EC)
    return; // best effort: evidence preservation must not block verification
  fs::rename(pathFor(Key), QDir / (Key + ".json"), EC);
  if (EC)
    return; // entry vanished (concurrent quarantine/overwrite) — fine
  std::lock_guard<std::mutex> Lock(Mu);
  ++S.Quarantined;
}

Result<void> ProofCache::store(const std::string &Key,
                               const ProofCacheEntry &Entry,
                               const std::string &ProgramName,
                               const std::string &PropertyName) {
  JsonWriter W;
  W.beginObject();
  W.field("version", EntryVersion);
  W.field("program", ProgramName);
  W.field("property", PropertyName);
  W.field("status", verifyStatusName(Entry.Status));
  W.field("reason", Entry.Reason);
  W.key("millis");
  W.value(Entry.Millis);
  W.field("cert_checked", Entry.CertChecked);
  W.field("canonical_cert", Entry.CanonicalCert);
  W.field("cert_json", Entry.CertJson);
  if (!Entry.CertSha256.empty())
    W.field("cert_sha256", Entry.CertSha256);
  if (!Entry.DeclSha256.empty())
    W.field("decl_sha256", Entry.DeclSha256);
  if (!Entry.ServedBy.empty())
    W.field("served_by", Entry.ServedBy);
  W.field("footprint_collected", Entry.FootprintCollected);
  W.field("footprint_all", Entry.FootprintAll);
  W.key("footprint");
  W.beginArray();
  for (const std::string &K : Entry.Footprint)
    W.value(K);
  W.endArray();
  W.key("handler_fps");
  W.beginObject();
  for (const auto &[K, F] : Entry.HandlerFps)
    W.field(K, F.BodyFp + ":" + F.IfaceFp);
  W.endObject();
  if (!Entry.PathFps.empty()) {
    W.key("path_fps");
    W.beginObject();
    for (const auto &[K, SF] : Entry.PathFps) {
      W.key(K);
      W.beginObject();
      W.field("summary", SF.SummaryFp);
      W.field("incomplete", SF.Incomplete);
      W.key("paths");
      W.beginArray();
      for (const PathFingerprint &F : SF.Paths) {
        W.beginObject();
        W.field("id", F.Id);
        W.field("emit", F.EmitFp);
        W.field("full", F.FullFp);
        W.endObject();
      }
      W.endArray();
      W.endObject();
    }
    W.endObject();
  }
  W.endObject();

  // Atomic publish: write and fsync a per-thread temp file, then rename
  // over the final path. Readers either see the old entry or the complete
  // new one; the fsync ensures a crash right after the rename cannot
  // publish an empty or torn entry.
  std::string Final = pathFor(Key);
  std::ostringstream TmpName;
  TmpName << Final << ".tmp." << std::this_thread::get_id();
  FaultyIO IO(Faults);
  if (Result<void> W1 = IO.writeFile(TmpName.str(), W.take() + "\n", Key);
      !W1.ok())
    return Error("cannot write cache entry: " + W1.error());
  if (Result<void> R1 = IO.renameFile(TmpName.str(), Final, Key); !R1.ok()) {
    std::error_code EC;
    fs::remove(TmpName.str(), EC);
    return Error("cannot publish cache entry: " + R1.error());
  }
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ++S.Stores;
  }
  return {};
}

std::string ProofCache::declId(const std::string &DeclFingerprint) {
  return sha256Hex(DeclFingerprint);
}

std::map<std::string, uint64_t> ProofCache::loadGcManifest() {
  std::map<std::string, uint64_t> Seen;
  fs::path Path = fs::path(Dir) / GcManifestName;
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Seen; // absent: the normal empty state, no warning
  std::ostringstream Buf;
  Buf << In.rdbuf();
  // Present but unreadable as JSON: a torn or corrupt manifest. Treat it
  // as empty — the cost is at most early eviction plus re-verification,
  // and the fresh manifest stored by this gc() replaces the damage — but
  // say so, because silent resets hide a failing disk.
  auto Corrupt = [&](const char *What) {
    std::fprintf(stderr,
                 "warning: proof cache manifest %s is %s; treating as "
                 "empty\n",
                 Path.string().c_str(), What);
    std::lock_guard<std::mutex> Lock(Mu);
    ++S.ManifestCorrupt;
    return Seen;
  };
  Result<JsonValue> Doc = parseJson(Buf.str());
  if (!Doc.ok() || !Doc->isObject())
    return Corrupt("not a JSON object (torn write or corruption)");
  const JsonValue *Decls = Doc->get("decls");
  if (!Decls || !Decls->isObject())
    return Corrupt("missing its decls table");
  for (const auto &[Id, When] : Decls->entries())
    if (When.isNumber() && When.numberValue() >= 0)
      Seen.emplace(Id, uint64_t(When.numberValue()));
  return Seen;
}

void ProofCache::storeGcManifest(
    const std::map<std::string, uint64_t> &Seen) const {
  JsonWriter W;
  W.beginObject();
  W.field("version", int64_t(1));
  W.key("decls");
  W.beginObject();
  for (const auto &[Id, When] : Seen)
    W.field(Id, int64_t(When));
  W.endObject();
  W.endObject();
  // Same atomic publish discipline as entries — FaultyIO::writeFile
  // fsyncs the temp before the rename, so a crash between the two leaves
  // the previous manifest intact and can never publish a torn one. Best
  // effort beyond that: a failed write or rename just keeps the old
  // manifest (costing at most an early eviction and a re-verification).
  fs::path Final = fs::path(Dir) / GcManifestName;
  std::ostringstream TmpName;
  TmpName << Final.string() << ".tmp." << std::this_thread::get_id();
  FaultyIO IO(Faults);
  if (!IO.writeFile(TmpName.str(), W.take() + "\n", GcManifestName).ok())
    return;
  if (!IO.renameFile(TmpName.str(), Final.string(), GcManifestName).ok()) {
    std::error_code EC;
    fs::remove(TmpName.str(), EC);
  }
}

void ProofCache::boundQuarantine(GcOutcome &Out) {
  if (QuarantineMax == 0)
    return;
  fs::path QDir = fs::path(Dir) / "quarantine";
  std::error_code EC;
  // Oldest first by (mtime, name): mtime is when the evidence arrived,
  // the name breaks ties deterministically for same-second bursts.
  std::vector<std::pair<fs::file_time_type, fs::path>> Files;
  for (const fs::directory_entry &DE : fs::directory_iterator(QDir, EC)) {
    if (!DE.is_regular_file(EC))
      continue;
    Files.emplace_back(DE.last_write_time(EC), DE.path());
  }
  std::sort(Files.begin(), Files.end(),
            [](const auto &A, const auto &B) {
              return A.first != B.first ? A.first < B.first
                                        : A.second < B.second;
            });
  size_t Excess =
      Files.size() > QuarantineMax ? Files.size() - QuarantineMax : 0;
  for (size_t I = 0; I < Files.size(); ++I) {
    std::error_code RmEC;
    if (I < Excess && fs::remove(Files[I].second, RmEC) && !RmEC)
      ++Out.QuarantineEvicted;
    else
      ++Out.QuarantineKept;
  }
}

ProofCache::GcOutcome
ProofCache::gc(const std::set<std::string> &LiveDeclSha256) {
  GcOutcome Out;

  // Merge the caller's live set into the persisted manifest, then widen
  // the live set with every program the manifest saw within the retention
  // window: a daemon that restarted since a program was last verified has
  // an empty live set for it, but its entries are still warm capital.
  const uint64_t Now = uint64_t(std::chrono::duration_cast<std::chrono::seconds>(
                                    std::chrono::system_clock::now()
                                        .time_since_epoch())
                                    .count());
  std::map<std::string, uint64_t> Seen = loadGcManifest();
  for (const std::string &Id : LiveDeclSha256)
    Seen[Id] = Now;
  std::set<std::string> Live = LiveDeclSha256;
  for (auto It = Seen.begin(); It != Seen.end();) {
    uint64_t Age = It->second > Now ? 0 : Now - It->second;
    if (ManifestMaxAge == 0 ? LiveDeclSha256.count(It->first) == 0
                            : Age > ManifestMaxAge) {
      It = Seen.erase(It);
      continue;
    }
    if (ManifestMaxAge != 0 && Live.insert(It->first).second)
      ++Out.ManifestLive;
    ++It;
  }
  storeGcManifest(Seen);

  std::error_code EC;
  for (const fs::directory_entry &DE : fs::directory_iterator(Dir, EC)) {
    if (!DE.is_regular_file(EC))
      continue;
    const fs::path &P = DE.path();
    if (P.extension() != ".json" || P.filename() == GcManifestName)
      continue;
    ++Out.Scanned;
    std::string Bytes;
    {
      std::ifstream In(P, std::ios::binary);
      std::ostringstream Buf;
      if (In)
        Buf << In.rdbuf();
      Bytes = Buf.str();
    }
    std::optional<ProofCacheEntry> E = decodeEntry(Bytes);
    bool IsLive = E && !E->DeclSha256.empty() &&
                  Live.count(E->DeclSha256) != 0;
    if (IsLive) {
      ++Out.Kept;
      continue;
    }
    std::error_code RmEC;
    if (!fs::remove(P, RmEC) || RmEC) {
      ++Out.Kept; // could not delete: leave it indexed and findable
      continue;
    }
    ++Out.Dropped;
    std::lock_guard<std::mutex> Lock(IndexMu);
    Index.erase(P.stem().string());
  }
  boundQuarantine(Out);
  std::lock_guard<std::mutex> Lock(Mu);
  ++S.GcRuns;
  S.GcDropped += Out.Dropped;
  return Out;
}

ProofCache::Stats ProofCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return S;
}

void ProofCache::noteHit() {
  std::lock_guard<std::mutex> Lock(Mu);
  ++S.Hits;
}

void ProofCache::noteMiss() {
  std::lock_guard<std::mutex> Lock(Mu);
  ++S.Misses;
}

void ProofCache::noteRejected() {
  std::lock_guard<std::mutex> Lock(Mu);
  ++S.Rejected;
}

void ProofCache::noteFootprintHit() {
  std::lock_guard<std::mutex> Lock(Mu);
  ++S.FootprintHits;
}

void ProofCache::notePathHit() {
  std::lock_guard<std::mutex> Lock(Mu);
  ++S.PathHits;
}

void ProofCache::notePathFallback() {
  std::lock_guard<std::mutex> Lock(Mu);
  ++S.PathFallbacks;
}

const PathFingerprints &
ProofCache::pathFingerprintsFor(const std::string &MemoKey,
                                VerifySession &Live) {
  std::lock_guard<std::mutex> Lock(PathFpsMu);
  auto It = PathFpsMemo.find(MemoKey);
  if (It == PathFpsMemo.end())
    // Computed under the lock on purpose: concurrent workers asking for
    // the same program should wait for one computation, not race N.
    It = PathFpsMemo
             .emplace(MemoKey, computePathFingerprints(Live.termContext(),
                                                       Live.behAbs()))
             .first;
  return It->second;
}

void ProofCache::noteDecodeMillis(double Ms) {
  std::lock_guard<std::mutex> Lock(Mu);
  S.DecodeMillis += Ms;
}

void ProofCache::noteRecheckMillis(double Ms) {
  std::lock_guard<std::mutex> Lock(Mu);
  S.RecheckMillis += Ms;
}

bool ProofCache::fullRecheckMemoized(const std::string &MemoKey) const {
  std::lock_guard<std::mutex> Lock(RecheckMu);
  return RecheckOk.count(MemoKey) != 0;
}

void ProofCache::noteFullRecheckOk(const std::string &MemoKey) {
  std::lock_guard<std::mutex> Lock(RecheckMu);
  RecheckOk.insert(MemoKey);
}

namespace {

bool isKnownJustify(const std::string &Name) {
  static const Justify All[] = {
      Justify::PathInfeasible, Justify::LocalObligation, Justify::CompOrigin,
      Justify::InvariantHistory, Justify::NoCompHistory,
      Justify::GuardPreserved, Justify::SyntacticSkip, Justify::NoPriorLocal,
      Justify::FrameBlocked};
  for (Justify J : All)
    if (Name == justifyName(J))
      return true;
  return false;
}

/// Structural validation of one proof-step object against the set of
/// invariant ids declared in the certificate.
bool stepWellFormed(const JsonValue &Step,
                    const std::vector<int64_t> &InvariantIds) {
  if (!Step.isObject())
    return false;
  const JsonValue *J = Step.get("justify");
  if (!J || !J->isString() || !isKnownJustify(J->stringValue()))
    return false;
  if (const JsonValue *Inv = Step.get("invariant")) {
    if (!Inv->isNumber())
      return false;
    int64_t Id = int64_t(Inv->numberValue());
    bool Found = false;
    for (int64_t Known : InvariantIds)
      Found |= Known == Id;
    if (!Found)
      return false;
  }
  return true;
}

/// The structural half of the fast re-check: the canonical certificate
/// must parse, name a property, carry a kind, and every proof step —
/// top-level and inside each auxiliary invariant — must cite a known
/// justification whose invariant reference (if any) resolves within the
/// certificate itself.
ProofCache::CertParse parseCanonicalCert(const std::string &CanonicalCert) {
  ProofCache::CertParse Out;
  Result<JsonValue> Doc = parseJson(CanonicalCert);
  if (!Doc.ok() || !Doc->isObject())
    return Out;
  Out.PropName = Doc->getString("property");
  if (Out.PropName.empty() || Doc->getString("kind").empty())
    return Out;
  const JsonValue *Steps = Doc->get("steps");
  if (!Steps || !Steps->isArray())
    return Out;
  std::vector<int64_t> InvariantIds;
  const JsonValue *Invs = Doc->get("invariants");
  if (Invs) {
    if (!Invs->isArray())
      return Out;
    for (const JsonValue &Inv : Invs->items()) {
      if (!Inv.isObject())
        return Out;
      InvariantIds.push_back(int64_t(Inv.getNumber("id", 0)));
    }
  }
  for (const JsonValue &Step : Steps->items())
    if (!stepWellFormed(Step, InvariantIds))
      return Out;
  if (Invs)
    for (const JsonValue &Inv : Invs->items()) {
      const JsonValue *ISteps = Inv.get("steps");
      if (!ISteps || !ISteps->isArray())
        return Out;
      for (const JsonValue &Step : ISteps->items())
        if (!stepWellFormed(Step, InvariantIds))
          return Out;
    }
  Out.StructOk = true;
  return Out;
}

} // namespace

bool ProofCache::validateCertificateFast(const ProofCacheEntry &Entry,
                                         const Property &Prop) {
  // The hash chain: the stored digest must cover the stored certificate.
  // This is what makes bit-flips, truncation, and splices detectable
  // without replaying the proof — an attacker able to recompute the
  // digest could as well forge a fresh entry, which is exactly the trust
  // level --fast-cache opts into (see docs/PERF.md). Digest and parse
  // are memoized by certificate *content*: the map's key equality pins
  // which bytes the memo covers, so same bytes always report the same
  // digest, and a batch that re-checks one certificate many times pays
  // for one SHA-256 and one parse.
  CertCheck Checked;
  {
    std::lock_guard<std::mutex> Lock(ParseMu);
    auto It = ParseMemo.find(Entry.CanonicalCert);
    if (It != ParseMemo.end()) {
      Checked = It->second;
    } else {
      Checked.Sha256 = sha256Hex(Entry.CanonicalCert);
      Checked.Parse = parseCanonicalCert(Entry.CanonicalCert);
      ParseMemo.emplace(Entry.CanonicalCert, Checked);
    }
  }
  return Checked.Sha256 == Entry.CertSha256 && Checked.Parse.StructOk &&
         Checked.Parse.PropName == Prop.Name;
}

std::string ProofCache::memoizedDigest(const std::string &CanonicalCert) {
  std::lock_guard<std::mutex> Lock(ParseMu);
  auto It = ParseMemo.find(CanonicalCert);
  if (It == ParseMemo.end()) {
    CertCheck C;
    C.Sha256 = sha256Hex(CanonicalCert);
    C.Parse = parseCanonicalCert(CanonicalCert);
    It = ParseMemo.emplace(CanonicalCert, std::move(C)).first;
  }
  return It->second.Sha256;
}

PropertyResult verifyPropertyCached(
    const Program &P, const VerifyOptions &Opts,
    const std::function<VerifySession &()> &Session, const Property &Prop,
    ProofCache *Cache, const ProgramFingerprints *Fps, Deadline *Budget,
    const PathFingerprints *CurPaths) {
  auto Verify = [&] {
    VerifySession &Live = Session();
    return Budget ? Live.verify(Prop, *Budget) : Live.verify(Prop);
  };
  if (!Cache)
    return Verify();

  ProgramFingerprints LocalFps;
  if (!Fps) {
    LocalFps = ProgramFingerprints::compute(P);
    Fps = &LocalFps;
  }
  std::string Key = ProofCache::keyFor(Fps->DeclFp, Prop, Opts);

  // The current program's rendered path fingerprints — the "new" side of
  // any path comparison, and what a stored verdict records for the next
  // process. Lazy: a byte-identical program (the warm case) never needs
  // them, so the no-edit fast path still serves without a session.
  auto CurPathsFor = [&]() -> const PathFingerprints & {
    if (CurPaths)
      return *CurPaths;
    return Cache->pathFingerprintsFor(
        Fps->DeclFp + '\x1f' + Fps->HandlersFp + '\x1f' +
            ProofCache::optionsFingerprint(Opts),
        Session());
  };

  std::optional<ProofCacheEntry> E = Cache->lookup(Key);
  // Footprint-relative validation (verify/footprint.h): the key covers
  // only declarations, so the entry may have been stored for different
  // handler bodies. Serve it only when the delta to the current program
  // is provably irrelevant to the proof — comparing the stored path
  // fingerprints of the footprint's handlers against the current rendered
  // abstraction; an incompatible entry is stale, not damaged — a plain
  // miss, overwritten after re-verification.
  ProofFootprint EntryFP;
  bool FootprintRelative = false;
  bool PathOnly = false;
  bool PathFellBack = false;
  if (E) {
    FingerprintDelta D = fingerprintDelta(E->HandlerFps, Fps->Handlers);
    EntryFP.Collected = E->FootprintCollected;
    EntryFP.AllHandlers = E->FootprintAll;
    EntryFP.Handlers = decodeFootprintHandlers(E->Footprint);
    if (!D.empty()) {
      const PathFingerprints &New = CurPathsFor();
      if (footprintReusable(EntryFP, D, E->PathFps, New,
                            FootprintGranularity::Path)) {
        FootprintRelative = true;
        PathOnly = !footprintReusable(EntryFP, D, E->PathFps, New,
                                      FootprintGranularity::Handler);
      } else {
        PathFellBack = true;
        Cache->notePathFallback();
        E.reset();
      }
    }
  }

  if (E) {
    WallTimer Timer;
    auto ServeHit = [&](PropertyResult &R) {
      R.Name = Prop.Name;
      R.ServedBy = E->ServedBy;
      R.CacheHit = true;
      R.FootprintHit = FootprintRelative;
      R.PathHit = PathOnly;
      R.Footprint = EntryFP;
      R.Millis = Timer.elapsedMillis();
      Cache->noteHit();
      if (FootprintRelative)
        Cache->noteFootprintHit();
      if (PathOnly)
        Cache->notePathHit();
    };
    if (E->Status == VerifyStatus::Unknown) {
      // Reusing "the automation could not prove this" needs no proof
      // object; the key + footprint validation tie it to code the search
      // actually consulted.
      PropertyResult R;
      R.Status = VerifyStatus::Unknown;
      R.Reason = std::move(E->Reason);
      ServeHit(R);
      return R;
    }
    // Proved. The entry is untrusted: re-derive in a live session and
    // require the canonical forms to agree (the checker is the trust
    // anchor, exactly as for freshly produced certificates).
    if (!Opts.CheckCertificates) {
      PropertyResult R;
      R.Status = VerifyStatus::Proved;
      R.CertJson = std::move(E->CertJson);
      R.CertChecked = false;
      ServeHit(R);
      return R;
    }
    bool TryFullRecheck = true;
    if (Opts.FastCacheRecheck && !E->CertSha256.empty()) {
      // Fast mode: hash chain + memoized structural validation; no
      // session, no obligation replay. An entry that fails this is
      // damaged by construction (its digest does not cover its
      // certificate, or the certificate is structural junk), so it is
      // quarantined rather than retried at full strength.
      TryFullRecheck = false;
      WallTimer RecheckTimer;
      bool FastOk = Cache->validateCertificateFast(*E, Prop);
      Cache->noteRecheckMillis(RecheckTimer.elapsedMillis());
      if (FastOk) {
        PropertyResult R;
        R.Status = VerifyStatus::Proved;
        R.CertJson = std::move(E->CertJson);
        R.CertChecked = false;
        R.FastRecheck = true;
        ServeHit(R);
        return R;
      }
      Cache->noteRejected();
      Cache->quarantine(Key);
    }
    if (TryFullRecheck) {
      // Full-mode memo: replaying a byte-identical certificate against
      // byte-identical handler bodies is deterministic, so once this
      // process has accepted (key, handler bodies, certificate content),
      // later hits are served without rebuilding a session or replaying
      // obligations — this is what keeps warm full-mode re-checking
      // cheaper than re-proving.
      std::string MemoKey =
          Key + ":" + Fps->HandlersFp + ":" +
          Cache->memoizedDigest(E->CanonicalCert);
      if (Cache->fullRecheckMemoized(MemoKey)) {
        PropertyResult R;
        R.Status = VerifyStatus::Proved;
        R.CertJson = std::move(E->CertJson);
        R.CertChecked = true;
        ServeHit(R);
        return R;
      }
      VerifySession &Live = Session();
      ProverOptions RecheckOpts = proverOptions(Opts);
      RecheckOpts.Budget = Budget;
      WallTimer RecheckTimer;
      RecheckOutcome Chk = checkCanonicalCertificate(
          Live.termContext(), Live.program(), Live.behAbs(), Prop,
          E->CanonicalCert, RecheckOpts);
      Cache->noteRecheckMillis(RecheckTimer.elapsedMillis());
      if (Chk.Ok) {
        Cache->noteFullRecheckOk(MemoKey);
        PropertyResult R;
        R.Status = VerifyStatus::Proved;
        R.Cert = std::move(Chk.Rederived);
        R.Cert.Footprint = E->FootprintAll
                               ? std::vector<std::string>{"*"}
                               : E->Footprint;
        R.CertJson = R.Cert.toJson(Live.termContext());
        R.CertChecked = true;
        ServeHit(R);
        return R;
      }
      if (Budget && Budget->expiredNow()) {
        // The re-check failed only because the budget ran out mid-way —
        // that says nothing about the entry, so it stays where it is. The
        // full verification below fails fast with the budget status.
      } else {
        // Tampered/corrupt/stale: quarantine the evidence and fall
        // through to a full verification, which will publish a fresh
        // entry.
        Cache->noteRejected();
        Cache->quarantine(Key);
      }
    }
  } else {
    Cache->noteMiss();
  }

  PropertyResult R = Verify();
  R.PathFallback = PathFellBack;
  if (R.Status == VerifyStatus::Proved || R.Status == VerifyStatus::Unknown) {
    ProofCacheEntry NewE;
    NewE.Status = R.Status;
    NewE.Reason = R.Reason;
    NewE.Millis = R.Millis;
    NewE.CertChecked = R.CertChecked;
    if (R.Status == VerifyStatus::Proved) {
      NewE.CanonicalCert = R.Cert.canonical(Session().termContext());
      NewE.CertJson = R.CertJson;
      NewE.CertSha256 = sha256Hex(NewE.CanonicalCert);
    }
    NewE.FootprintCollected = R.Footprint.Collected;
    NewE.FootprintAll = R.Footprint.AllHandlers;
    NewE.Footprint = encodeFootprintHandlers(R.Footprint.Handlers);
    // Record the rendered path fingerprints of exactly the footprint's
    // handlers — what a later lookup needs as the "old" side of its path
    // comparison. The session exists (Verify just ran in it).
    if (R.Footprint.Collected && !R.Footprint.AllHandlers &&
        !R.Footprint.Handlers.empty()) {
      const PathFingerprints &Cur = CurPathsFor();
      for (const auto &[HKey, HF] : R.Footprint.Handlers) {
        (void)HF;
        auto It = Cur.find(HKey);
        if (It != Cur.end())
          NewE.PathFps.emplace(HKey, It->second);
      }
    }
    NewE.HandlerFps = Fps->Handlers;
    NewE.DeclSha256 = ProofCache::declId(Fps->DeclFp);
    NewE.ServedBy = R.ServedBy;
    // Store failures are non-fatal: the cache is an accelerator, the
    // verdict in hand is what matters.
    (void)Cache->store(Key, NewE, P.Name, Prop.Name);
  }
  return R;
}

PropertyResult verifyPropertyCached(VerifySession &Session,
                                    const Property &Prop, ProofCache *Cache,
                                    const ProgramFingerprints *Fps,
                                    Deadline *Budget,
                                    const PathFingerprints *CurPaths) {
  return verifyPropertyCached(
      Session.program(), Session.options(),
      [&Session]() -> VerifySession & { return Session; }, Prop, Cache, Fps,
      Budget, CurPaths);
}

} // namespace reflex
