//===- kernels/browser.cc - Web browser kernel ------------------*- C++ -*-===//
//
// The Quark-style web browser kernel (§6.1): tabs run in separate
// sandboxed processes, cookies are cached by one cookie process per
// domain, and the kernel mediates all interaction — tab creation (with
// unique ids), cookie traffic (strictly within a domain), and network
// socket authorization (a tab may only open sockets to its own domain;
// the network process then wires the socket to the tab directly, so bulk
// data bypasses the kernel just as Quark's file-descriptor passing does).
//
// This first variant creates a domain's cookie process lazily, on the
// first cookie write from one of its tabs.
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"
#include "kernels/scripts.h"

namespace reflex {
namespace kernels {

static const char BrowserSource[] = R"rfx(
program browser;

component UI "input.py";                       # trusted user-input process
component Network "network.py";                # socket broker
component Tab "tab-webkit.py" { domain: str, id: num };
component CookieProc "cookie-proc.py" { domain: str };

message CreateTab(num, str);       # UI: user opened (id, domain)
message SetCookie(str, str);       # Tab: write cookie (key, value)
message CookieSet(str, str, str);  # kernel -> CookieProc (domain, key, value)
message CookieUpdate(str, str);    # CookieProc: push update (key, value)
message DeliverCookie(str, str);   # kernel -> Tab (key, value)
message OpenSocket(str);           # Tab: request socket to host
message SocketOpen(str);           # kernel -> Network: authorized socket
message Navigate(str);             # Tab: load a page at host
message LoadUrl(str);              # kernel -> Tab: navigation approved

init {
  U <- spawn UI();
  N <- spawn Network();
}

handler UI => CreateTab(i, dom) {
  # Tab ids are unique: refuse duplicates.
  lookup Tab(id == i) as t {
    nop;
  } else {
    nt <- spawn Tab(dom, i);
  }
}

handler Tab => SetCookie(k, v) {
  # Route the cookie to the sender's domain's cookie process, creating it
  # lazily. Tabs can never reach another domain's cookies.
  lookup CookieProc(domain == sender.domain) as cp {
    send(cp, CookieSet(sender.domain, k, v));
  } else {
    ncp <- spawn CookieProc(sender.domain);
    send(ncp, CookieSet(sender.domain, k, v));
  }
}

handler CookieProc => CookieUpdate(k, v) {
  # Push the update to a tab of the same domain.
  lookup Tab(domain == sender.domain) as t {
    send(t, DeliverCookie(k, v));
  }
}

handler Tab => OpenSocket(host) {
  # Whitelist: a tab may only talk to its own domain.
  if (host == sender.domain) {
    send(N, SocketOpen(host));
  }
}

handler Tab => Navigate(url) {
  # Quark-style same-origin navigation: a tab may only load pages from
  # its own domain; cross-domain navigations are dropped.
  if (url == sender.domain) {
    send(sender, LoadUrl(url));
  }
}

# --- Properties (Figure 6, browser rows) ----------------------------------

property TabIdsUnique: forall i.
  [Spawn(Tab(id = i))] Disables [Spawn(Tab(id = i))];

property CookieProcUniquePerDomain: forall d.
  [Spawn(CookieProc(domain = d))] Disables [Spawn(CookieProc(domain = d))];

property CookiesStayInDomain: forall d, k, v.
  [Recv(Tab(domain = d), SetCookie(k, v))]
  Enables [Send(CookieProc(domain = d), CookieSet(_, k, v))];

property TabsConnectedToCookieProc: forall d.
  [Spawn(CookieProc(domain = d))]
  Enables [Send(CookieProc(domain = d), CookieSet(_, _, _))];

property DomainNonInterference: forall d.
  noninterference {
    high components: Tab(domain = d), CookieProc(domain = d), UI;
    high vars: ;
  };

property TabsOnlyOpenAllowedSockets: forall d.
  [Recv(Tab(domain = d), OpenSocket(d))]
  Enables [Send(Network, SocketOpen(d))];
)rfx";

const KernelDef &browser() {
  static const KernelDef K = [] {
    KernelDef D;
    D.Name = "browser";
    D.Description = "Quark-style browser kernel, lazy cookie processes";
    D.Source = BrowserSource;
    D.Rows = {
        {"TabIdsUnique", "Tab processes have unique IDs", 70},
        {"CookieProcUniquePerDomain",
         "Cookie processes are unique per domain", 75},
        {"CookiesStayInDomain",
         "Cookies stay in their domain (tab, cookie process)", 37},
        {"TabsConnectedToCookieProc",
         "Tabs are correctly connected to their cookie process", 38},
        {"DomainNonInterference", "Different domains do not interfere", 229},
        {"TabsOnlyOpenAllowedSockets",
         "Tabs can only open sockets to allowed domains", 94},
    };
    D.PaperKernelLoc = 81;
    D.PaperPropsLoc = 37;
    D.PaperComponentLoc = 970240; // Table 1: sandboxed browser components
    D.MakeScripts = [] { return browserScripts(/*WithFocus=*/false); };
    D.MakeCalls = [] { return CallRegistry(); };
    return D;
  }();
  return K;
}

} // namespace kernels
} // namespace reflex
