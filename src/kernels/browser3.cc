//===- kernels/browser3.cc - Browser variant: focus routing -----*- C++ -*-===//
//
// The paper's browser3 variant: on top of the eager cookie-process design
// it adds focused-tab keyboard routing — the user-input process reports
// focus changes and keystrokes, and the kernel forwards keystrokes to the
// currently focused tab. The focus variable participates in the domain
// non-interference proof through the variable labeling θv (§5.2: "we also
// require a simple labeling function θv of global variables"): `focus` is
// labeled high, which is exactly the user-supplied hint that makes the
// NIhi condition provable.
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"
#include "kernels/scripts.h"

namespace reflex {
namespace kernels {

static const char Browser3Source[] = R"rfx(
program browser3;

component UI "input.py";
component Network "network.py";
component Tab "tab-webkit.py" { domain: str, id: num };
component CookieProc "cookie-proc.py" { domain: str };

message CreateTab(num, str);
message SetCookie(str, str);
message CookieSet(str, str, str);
message CookieUpdate(str, str);
message DeliverCookie(str, str);
message OpenSocket(str);
message SocketOpen(str);
message Navigate(str);
message LoadUrl(str);
message Focus(num);           # UI: tab id gained focus
message KeyPress(str);        # UI: keystroke data
message KeyInput(str);        # kernel -> focused Tab

var focus: num = 0;

init {
  U <- spawn UI();
  N <- spawn Network();
}

handler UI => CreateTab(i, dom) {
  lookup Tab(id == i) as t {
    nop;
  } else {
    nt <- spawn Tab(dom, i);
    lookup CookieProc(domain == dom) as cp {
      nop;
    } else {
      ncp <- spawn CookieProc(dom);
    }
  }
}

handler UI => Focus(i) {
  focus = i;
}

handler UI => KeyPress(data) {
  # Keystrokes go to the focused tab only.
  lookup Tab(id == focus) as t {
    send(t, KeyInput(data));
  }
}

handler Tab => SetCookie(k, v) {
  lookup CookieProc(domain == sender.domain) as cp {
    send(cp, CookieSet(sender.domain, k, v));
  }
}

handler CookieProc => CookieUpdate(k, v) {
  lookup Tab(domain == sender.domain) as t {
    send(t, DeliverCookie(k, v));
  }
}

handler Tab => OpenSocket(host) {
  if (host == sender.domain) {
    send(N, SocketOpen(host));
  }
}

handler Tab => Navigate(url) {
  # Quark-style same-origin navigation: a tab may only load pages from
  # its own domain; cross-domain navigations are dropped.
  if (url == sender.domain) {
    send(sender, LoadUrl(url));
  }
}

# --- Properties (Figure 6, browser3 rows) ---------------------------------

property TabIdsUnique: forall i.
  [Spawn(Tab(id = i))] Disables [Spawn(Tab(id = i))];

property CookieProcUniquePerDomain: forall d.
  [Spawn(CookieProc(domain = d))] Disables [Spawn(CookieProc(domain = d))];

property CookiesStayInDomainTab: forall d, k, v.
  [Recv(Tab(domain = d), SetCookie(k, v))]
  Enables [Send(CookieProc(domain = d), CookieSet(_, k, v))];

property CookiesStayInDomainCookieProc: forall d, k, v.
  [Recv(CookieProc(domain = d), CookieUpdate(k, v))]
  Enables [Send(Tab(domain = d), DeliverCookie(k, v))];

property TabsConnectedToCookieProc: forall d.
  [Spawn(CookieProc(domain = d))]
  Enables [Send(CookieProc(domain = d), CookieSet(_, _, _))];

property DomainNonInterference: forall d.
  noninterference {
    high components: Tab(domain = d), CookieProc(domain = d), UI;
    high vars: focus;
  };

property TabsOnlyOpenAllowedSockets: forall d.
  [Recv(Tab(domain = d), OpenSocket(d))]
  Enables [Send(Network, SocketOpen(d))];
)rfx";

const KernelDef &browser3() {
  static const KernelDef K = [] {
    KernelDef D;
    D.Name = "browser3";
    D.Description = "browser variant: focused-tab keyboard routing (uses θv)";
    D.Source = Browser3Source;
    D.Rows = {
        {"TabIdsUnique", "Tab processes have unique IDs", 295},
        {"CookieProcUniquePerDomain",
         "Cookie processes are unique per domain", 193},
        {"CookiesStayInDomainTab", "Cookies stay in their domain (tab)", 83},
        {"CookiesStayInDomainCookieProc",
         "Cookies stay in their domain (cookie process)", 91},
        {"TabsConnectedToCookieProc",
         "Tabs are correctly connected to their cookie process", 151},
        {"DomainNonInterference", "Different domains do not interfere", 532},
        {"TabsOnlyOpenAllowedSockets",
         "Tabs can only open sockets to allowed domains", 78},
    };
    D.PaperKernelLoc = 81;
    D.PaperPropsLoc = 37;
    D.PaperComponentLoc = 0;
    D.MakeScripts = [] { return browserScripts(/*WithFocus=*/true); };
    D.MakeCalls = [] { return CallRegistry(); };
    return D;
  }();
  return K;
}

} // namespace kernels
} // namespace reflex
