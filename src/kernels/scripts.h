//===- kernels/scripts.h - Shared benchmark scripts -------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Component scripts shared by the three browser kernel variants: the
/// user-input process creates tabs (including a duplicate-id attempt the
/// kernel must refuse), tabs set cookies and request sockets (including a
/// cross-domain attempt the kernel must deny), and cookie processes push
/// updates back.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_KERNELS_SCRIPTS_H
#define REFLEX_KERNELS_SCRIPTS_H

#include "reflex/reflex.h"

namespace reflex {
namespace kernels {

/// Scripts for the browser kernels. \p WithFocus adds the browser3
/// focus/keyboard traffic.
ScriptFactory browserScripts(bool WithFocus);

} // namespace kernels
} // namespace reflex

#endif // REFLEX_KERNELS_SCRIPTS_H
