//===- kernels/synthetic.h - Synthetic scaling kernels ----------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates parameterized "stage chain" kernels for the optimization
/// ablation (§6.4) and scaling tests. A chain kernel of size N has N
/// handlers advancing through N boolean stages; stage i can only complete
/// after stage i-1, and every handler emits a stage-tagged marker once the
/// first stage is done. Two property families scale with N:
///
///  * Chain_i  — [Out(i-1)] Enables [Out(i)]: each proof needs a guard
///    invariant that only two handlers can disturb, so the syntactic-skip
///    optimization turns an O(N) induction case scan into O(1) real work
///    per case.
///
///  * Marker_i — [Out(0)] Enables [Marker(i)]: every proof synthesizes the
///    *same* guard invariant ({stage0 done} => Out(0) in trace), so the
///    subproof cache collapses N invariant inductions into one.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_KERNELS_SYNTHETIC_H
#define REFLEX_KERNELS_SYNTHETIC_H

#include <string>

namespace reflex {
namespace kernels {

/// Reflex source of a chain kernel with \p Stages stages (>= 2).
/// Properties: Chain1..Chain{Stages-1} and Marker0..Marker{Stages-1}.
std::string syntheticChainKernel(unsigned Stages);

/// Reflex source of a fleet kernel with \p Lanes independent lanes
/// (>= 1): scaled *component count*. Init spawns one Node component per
/// lane (config field `lane`) plus a driver; each lane has an open/use
/// handler pair gated by its own state flag. 2N handlers, N+1 spawned
/// components, and 2N properties:
///
///  * Lane_i — [Send(Node(lane=i), Ack_i(_))] Enables
///    [Send(Node(lane=i), Out_i(_))]: each proof synthesizes a lane-local
///    guard invariant only two of the 2N handlers can disturb.
///  * Once_i — atmostonce [Send(Node(lane=i), Ack_i(_))]: the open flag
///    flips exactly once.
///
/// Stresses breadth: handler-count scaling of the induction case scan and
/// the incremental solver's per-path scopes across many handlers.
std::string syntheticFleetKernel(unsigned Lanes);

/// Reflex source of a branch kernel with nesting depth \p Depth
/// (1 <= Depth <= 8): scaled *branch nesting*. One probe handler whose
/// body is a complete binary if/else nest over Depth independent message
/// parameters — 2^Depth symbolic paths, each with a Depth+1-literal path
/// condition, each emitting the same gated Hit message. Properties:
///
///  * Gated   — [Send(Worker, Go(_))] Enables [Send(Worker, Hit(_))]:
///    every one of the 2^Depth paths needs the {armed} => Go invariant.
///  * ArmOnce — atmostonce [Send(Worker, Go(_))].
///
/// Stresses depth: long path conditions exercising the solver's scoped
/// assertion stack (push/assume/pop) and the undo trail.
///
/// With \p PerLeafProps set, each of the 2^Depth leaves instead emits its
/// own Hit_L message after stamping a leaf-distinct literal into a
/// scratch state variable, and the Gated property splits into one
/// Gated_L per leaf. Each Gated_L proof enters exactly leaf L of the
/// probe handler (the other leaves' emits cannot match its trigger), and
/// the {armed} => Go invariant never walks the probe handler at all — so
/// editing one leaf's scratch literal invalidates exactly one proof
/// under path-granular footprints, while the whole Gated_* family
/// re-verifies under handler-granular ones. This is the workload behind
/// bench_incremental's edit_one_branch gate.
std::string syntheticBranchKernel(unsigned Depth, bool PerLeafProps = false);

} // namespace kernels
} // namespace reflex

#endif // REFLEX_KERNELS_SYNTHETIC_H
