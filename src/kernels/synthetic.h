//===- kernels/synthetic.h - Synthetic scaling kernels ----------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates parameterized "stage chain" kernels for the optimization
/// ablation (§6.4) and scaling tests. A chain kernel of size N has N
/// handlers advancing through N boolean stages; stage i can only complete
/// after stage i-1, and every handler emits a stage-tagged marker once the
/// first stage is done. Two property families scale with N:
///
///  * Chain_i  — [Out(i-1)] Enables [Out(i)]: each proof needs a guard
///    invariant that only two handlers can disturb, so the syntactic-skip
///    optimization turns an O(N) induction case scan into O(1) real work
///    per case.
///
///  * Marker_i — [Out(0)] Enables [Marker(i)]: every proof synthesizes the
///    *same* guard invariant ({stage0 done} => Out(0) in trace), so the
///    subproof cache collapses N invariant inductions into one.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_KERNELS_SYNTHETIC_H
#define REFLEX_KERNELS_SYNTHETIC_H

#include <string>

namespace reflex {
namespace kernels {

/// Reflex source of a chain kernel with \p Stages stages (>= 2).
/// Properties: Chain1..Chain{Stages-1} and Marker0..Marker{Stages-1}.
std::string syntheticChainKernel(unsigned Stages);

} // namespace kernels
} // namespace reflex

#endif // REFLEX_KERNELS_SYNTHETIC_H
