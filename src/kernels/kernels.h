//===- kernels/kernels.h - The evaluation benchmark kernels -----*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seven kernels of the paper's evaluation (Figure 6 / Table 1), each
/// written in the Reflex surface syntax with its full property list, plus
/// the component scripts that stand in for the paper's sandboxed
/// processes (WebKit tabs, OpenSSH slaves, Python helpers):
///
///   car        — hypothetical automobile controller (8 properties)
///   browser    — Quark-style web browser kernel (6 properties)
///   browser2   — browser variant: eager cookie-process creation (7)
///   browser3   — browser variant: focused-tab keyboard routing, using
///                the θv variable labeling (7)
///   ssh        — privilege-separated SSH server kernel (5)
///   ssh2       — SSH variant: attempt counting in a component (2)
///   webserver  — authenticated file server (6)
///
/// 41 properties in total, matching the paper's Figure 6 row-for-row; the
/// PaperSeconds column carries the paper's reported verification times so
/// the Figure 6 bench can print paper-vs-ours.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_KERNELS_KERNELS_H
#define REFLEX_KERNELS_KERNELS_H

#include "reflex/reflex.h"

#include <functional>
#include <string>
#include <vector>

namespace reflex {
namespace kernels {

/// One Figure 6 row: a property name in the kernel's Properties section,
/// the paper's description of it, and the paper's reported verification
/// time in seconds.
struct PropertyRow {
  std::string PropertyName;
  std::string PaperDescription;
  double PaperSeconds = 0;
};

/// A benchmark kernel: Reflex source, Figure 6 rows, Table 1 data, and
/// the simulation scripts/calls for running it.
struct KernelDef {
  std::string Name;
  std::string Description;
  std::string Source;
  std::vector<PropertyRow> Rows;
  /// Table 1: lines of sandboxed component code in the paper's benchmark
  /// (0 when the paper reports none for this variant).
  unsigned PaperComponentLoc = 0;
  /// Table 1: paper's kernel code + properties LoC ("64 / 22" -> 64, 22).
  unsigned PaperKernelLoc = 0;
  unsigned PaperPropsLoc = 0;
  /// Simulation: scripts driving each component type, and native calls.
  std::function<ScriptFactory()> MakeScripts;
  std::function<CallRegistry()> MakeCalls;
};

const KernelDef &car();
const KernelDef &browser();
const KernelDef &browser2();
const KernelDef &browser3();
const KernelDef &ssh();
const KernelDef &ssh2();
const KernelDef &webserver();

/// Portfolio demo kernel (kernels/pdrlock.cc): its one property needs a
/// relatively inductive strengthening, so induction answers Unknown but
/// PDR proves it with a clausal certificate. NOT part of all() — the
/// paper's evaluation set stays at 41 properties.
const KernelDef &pdrlock();

/// All seven, in Figure 6 order.
std::vector<const KernelDef *> all();

/// Parses + validates a kernel (aborts on failure: the embedded sources
/// are fixed).
ProgramPtr load(const KernelDef &K);

/// Sum of rows across all kernels (41, as in the paper).
unsigned totalProperties();

} // namespace kernels
} // namespace reflex

#endif // REFLEX_KERNELS_KERNELS_H
