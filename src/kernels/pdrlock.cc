//===- kernels/pdrlock.cc - PDR portfolio demo kernel -----------*- C++ -*-===//
//
// A small interlock kernel built to separate the two proof engines
// (verify/engine.h): its one property needs a *mutually* inductive
// strengthening, so plain handler induction answers Unknown while PDR
// discovers the clausal invariant and proves it (docs/ENGINES.md).
//
// The shape is a bootstrap deadlock: Commit arms the interlock, but only
// once primed; Prime sets the primed bit, but only once armed. From the
// initial state (neither bit set) the pair can never bootstrap, so the
// armed state — and with it Fire's Rogue emission — is unreachable. The
// invariant is the conjunction !armed && !primed, and each conjunct's
// inductive step needs the *other* conjunct: blocking "armed" needs
// "!primed" at the Commit predecessor, and blocking "primed" needs
// "!armed" at the Prime predecessor. The induction engine's nested guard
// synthesis chases exactly that chain — {armed} -> {primed} -> {armed} —
// hits its own in-flight cycle guard, and gives up: hierarchical
// strengthening cannot close a mutual dependency. PDR's frames hold both
// blocked cubes at once, so consecution for each uses the other and the
// two-clause invariant {!armed, !primed} reaches a fixpoint — a
// checkable clausal certificate for a property induction cannot serve.
//
// Not part of the paper's Figure 6 evaluation (kernels::all() stays at
// the paper's 41 properties); exposed separately for the portfolio
// bench and tests.
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"

namespace reflex {
namespace kernels {

static const char PdrlockSource[] = R"rfx(
program pdrlock;

component Driver "driver.py";
component Sink "sink.c";

message Prime();        # set the primed bit (requires armed)
message Commit();       # arm the interlock (requires primed)
message Disarm();       # release the interlock
message Bless(str);     # ask the kernel to bless a payload
message Fire(str);      # try to emit a rogue payload
message Blessed(str);   # kernel -> Sink: payload was blessed
message Rogue(str);     # kernel -> Sink: unblessed emission (unreachable)

var armed: bool = false;
var primed: bool = false;

init {
  D <- spawn Driver();
  S <- spawn Sink();
}

handler Driver => Prime() {
  if (armed) {
    primed = true;
  }
}

handler Driver => Commit() {
  if (primed) {
    armed = true;
  }
}

handler Driver => Disarm() {
  armed = false;
}

handler Driver => Bless(u) {
  send(S, Blessed(u));
}

handler Driver => Fire(u) {
  if (armed) {
    send(S, Rogue(u));
  }
}

# --- Properties -----------------------------------------------------------

property RogueNeedsBlessing: forall u.
  [Send(Sink, Blessed(u))] Enables [Send(Sink, Rogue(u))];
)rfx";

static ScriptFactory pdrlockScripts() {
  return [](const ComponentInstance &C) -> std::unique_ptr<ComponentScript> {
    if (C.TypeName == "Driver")
      return std::make_unique<ScriptedComponent>(
          std::vector<Message>{
              msg("Prime"), msg("Commit"), msg("Bless", {Value::str("pkg")}),
              msg("Fire", {Value::str("pkg")}), msg("Disarm"),
              msg("Fire", {Value::str("pkg")})},
          std::map<std::string, ScriptedComponent::Responder>{});
    if (C.TypeName == "Sink")
      return std::make_unique<ScriptedComponent>(
          std::vector<Message>{},
          std::map<std::string, ScriptedComponent::Responder>{});
    return nullptr;
  };
}

const KernelDef &pdrlock() {
  static const KernelDef K = [] {
    KernelDef D;
    D.Name = "pdrlock";
    D.Description =
        "portfolio demo: interlock needing a mutually inductive invariant";
    D.Source = PdrlockSource;
    D.Rows = {
        {"RogueNeedsBlessing",
         "Unblessed emission requires a prior blessing (vacuously: the "
         "emitting state is unreachable)",
         0},
    };
    D.MakeScripts = pdrlockScripts;
    D.MakeCalls = [] { return CallRegistry(); };
    return D;
  }();
  return K;
}

} // namespace kernels
} // namespace reflex
