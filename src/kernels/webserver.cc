//===- kernels/webserver.cc - Web server kernel -----------------*- C++ -*-===//
//
// The authenticated file server of §6.1: "one component listens on the
// network, one performs access control checks, one accesses the
// filesystem, and one handles successfully-connected clients. The
// listener waits and notifies the kernel of connection attempts, which in
// turn consults the access controller to check permissions. Upon
// successful authentication, the kernel spawns a client component to
// handle this connection ... Each client component handles its own
// connected client, and forwards file requests to the kernel, which
// checks them by consulting the access control component. On success, the
// kernel delivers the request to the disk component and forwards back the
// result."
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"

namespace reflex {
namespace kernels {

static const char WebserverSource[] = R"rfx(
program webserver;

component Listener "listener.py";
component AccessControl "access-control.py";
component Disk "disk.py";
component Client "client-handler.py" { user: str };

message Connect(str, str);        # Listener: connection attempt (user, pass)
message CheckCred(str, str);      # kernel -> AccessControl
message CredOk(str);              # AccessControl: credentials valid
message Welcome(str);             # kernel -> Client: session established
message FileReq(str);             # Client: request file at path
message CheckAcl(str, str);       # kernel -> AccessControl (user, path)
message AclOk(str, str);          # AccessControl: access granted
message ReadFile(str, str);       # kernel -> Disk (user, path)
message FileData(str, str, str);  # Disk: file contents (user, path, data)
message Deliver(str, str, str);   # kernel -> Client (user, path, data)

init {
  L   <- spawn Listener();
  ACL <- spawn AccessControl();
  DSK <- spawn Disk();
}

handler Listener => Connect(user, pass) {
  send(ACL, CheckCred(user, pass));
}

handler AccessControl => CredOk(u) {
  # One client handler per user; duplicates are refused.
  lookup Client(user == u) as c {
    nop;
  } else {
    nc <- spawn Client(u);
    send(nc, Welcome(u));
  }
}

handler Client => FileReq(path) {
  send(ACL, CheckAcl(sender.user, path));
}

handler AccessControl => AclOk(u, path) {
  send(DSK, ReadFile(u, path));
}

handler Disk => FileData(u, path, data) {
  lookup Client(user == u) as c {
    send(c, Deliver(u, path, data));
  }
}

# --- Properties (Figure 6, webserver rows) --------------------------------

property ClientOnlySpawnedOnLogin: forall u.
  [Recv(AccessControl, CredOk(u))] Enables [Spawn(Client(user = u))];

property ClientsNeverDuplicated: forall u.
  [Spawn(Client(user = u))] Disables [Spawn(Client(user = u))];

property FilesOnlyAfterLogin: forall u.
  [Spawn(Client(user = u))] Enables [Send(AccessControl, CheckAcl(u, _))];

property FilesOnlyAfterAuthorization: forall u, p.
  [Recv(AccessControl, AclOk(u, p))] Enables [Send(Disk, ReadFile(u, p))];

property OnlyFilesTheDiskIndicates: forall u, p, d.
  [Recv(Disk, FileData(u, p, d))] Enables [Send(Client, Deliver(u, p, d))];

property AuthorizedRequestsReachDisk: forall u, p.
  [Recv(AccessControl, AclOk(u, p))] Ensures [Send(Disk, ReadFile(u, p))];
)rfx";

static ScriptFactory webserverScripts() {
  return [](const ComponentInstance &C) -> std::unique_ptr<ComponentScript> {
    if (C.TypeName == "Listener")
      return std::make_unique<ScriptedComponent>(
          std::vector<Message>{
              msg("Connect", {Value::str("alice"), Value::str("s3cret")}),
              msg("Connect", {Value::str("mallory"), Value::str("guess")}),
              msg("Connect", {Value::str("alice"), Value::str("s3cret")}),
          },
          std::map<std::string, ScriptedComponent::Responder>{});
    if (C.TypeName == "AccessControl")
      return std::make_unique<ScriptedComponent>(
          std::vector<Message>{},
          std::map<std::string, ScriptedComponent::Responder>{
              {"CheckCred",
               [](const Message &M) {
                 std::vector<Message> Out;
                 if (M.Args[0].asStr() == "alice" &&
                     M.Args[1].asStr() == "s3cret")
                   Out.push_back(msg("CredOk", {M.Args[0]}));
                 return Out;
               }},
              {"CheckAcl", [](const Message &M) {
                 std::vector<Message> Out;
                 // alice may read anything under /pub.
                 const std::string &Path = M.Args[1].asStr();
                 if (Path.rfind("/pub", 0) == 0)
                   Out.push_back(msg("AclOk", {M.Args[0], M.Args[1]}));
                 return Out;
               }}});
    if (C.TypeName == "Disk")
      return std::make_unique<ScriptedComponent>(
          std::vector<Message>{},
          std::map<std::string, ScriptedComponent::Responder>{
              {"ReadFile", [](const Message &M) {
                 return std::vector<Message>{
                     msg("FileData",
                         {M.Args[0], M.Args[1],
                          Value::str("<contents of " + M.Args[1].asStr() +
                                     ">")})};
               }}});
    if (C.TypeName == "Client")
      return std::make_unique<ScriptedComponent>(
          std::vector<Message>{},
          std::map<std::string, ScriptedComponent::Responder>{
              {"Welcome", [](const Message &) {
                 return std::vector<Message>{
                     msg("FileReq", {Value::str("/pub/index.html")}),
                     msg("FileReq", {Value::str("/etc/shadow")})};
               }}});
    return nullptr;
  };
}

const KernelDef &webserver() {
  static const KernelDef K = [] {
    KernelDef D;
    D.Name = "webserver";
    D.Description = "authenticated file server kernel";
    D.Source = WebserverSource;
    D.Rows = {
        {"ClientOnlySpawnedOnLogin",
         "A client is only spawned on successful login", 26},
        {"ClientsNeverDuplicated", "Clients are never duplicated", 70},
        {"FilesOnlyAfterLogin", "Files can only be requested after login",
         87},
        {"FilesOnlyAfterAuthorization",
         "Files are only requested after authorization", 23},
        {"OnlyFilesTheDiskIndicates",
         "Kernel only sends a file where the disk indicates", 34},
        {"AuthorizedRequestsReachDisk",
         "Authorized requests are forwarded to disk", 22},
    };
    D.PaperKernelLoc = 56;
    D.PaperPropsLoc = 29;
    D.PaperComponentLoc = 386; // Table 1: sandboxed web server components
    D.MakeScripts = webserverScripts;
    D.MakeCalls = [] { return CallRegistry(); };
    return D;
  }();
  return K;
}

} // namespace kernels
} // namespace reflex
