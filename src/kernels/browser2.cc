//===- kernels/browser2.cc - Browser variant: eager cookies -----*- C++ -*-===//
//
// The paper's browser2 variant ("the quark variants explore implementation
// trade-offs for handling cookies using cookie processes"): the cookie
// process for a domain is created *eagerly*, together with the domain's
// first tab, instead of lazily on the first cookie write. Cookie routing
// then only ever uses an existing process. The property set splits the
// cookie-confinement policy into its two directions (tab -> cookie
// process, cookie process -> tab), as in Figure 6.
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"
#include "kernels/scripts.h"

namespace reflex {
namespace kernels {

static const char Browser2Source[] = R"rfx(
program browser2;

component UI "input.py";
component Network "network.py";
component Tab "tab-webkit.py" { domain: str, id: num };
component CookieProc "cookie-proc.py" { domain: str };

message CreateTab(num, str);
message SetCookie(str, str);
message CookieSet(str, str, str);
message CookieUpdate(str, str);
message DeliverCookie(str, str);
message OpenSocket(str);
message SocketOpen(str);
message Navigate(str);
message LoadUrl(str);

init {
  U <- spawn UI();
  N <- spawn Network();
}

handler UI => CreateTab(i, dom) {
  lookup Tab(id == i) as t {
    nop;
  } else {
    nt <- spawn Tab(dom, i);
    # Eager: make sure the domain's cookie process exists up front.
    lookup CookieProc(domain == dom) as cp {
      nop;
    } else {
      ncp <- spawn CookieProc(dom);
    }
  }
}

handler Tab => SetCookie(k, v) {
  lookup CookieProc(domain == sender.domain) as cp {
    send(cp, CookieSet(sender.domain, k, v));
  }
}

handler CookieProc => CookieUpdate(k, v) {
  lookup Tab(domain == sender.domain) as t {
    send(t, DeliverCookie(k, v));
  }
}

handler Tab => OpenSocket(host) {
  if (host == sender.domain) {
    send(N, SocketOpen(host));
  }
}

handler Tab => Navigate(url) {
  # Quark-style same-origin navigation: a tab may only load pages from
  # its own domain; cross-domain navigations are dropped.
  if (url == sender.domain) {
    send(sender, LoadUrl(url));
  }
}

# --- Properties (Figure 6, browser2 rows) ---------------------------------

property TabIdsUnique: forall i.
  [Spawn(Tab(id = i))] Disables [Spawn(Tab(id = i))];

property CookieProcUniquePerDomain: forall d.
  [Spawn(CookieProc(domain = d))] Disables [Spawn(CookieProc(domain = d))];

property CookiesStayInDomainTab: forall d, k, v.
  [Recv(Tab(domain = d), SetCookie(k, v))]
  Enables [Send(CookieProc(domain = d), CookieSet(_, k, v))];

property CookiesStayInDomainCookieProc: forall d, k, v.
  [Recv(CookieProc(domain = d), CookieUpdate(k, v))]
  Enables [Send(Tab(domain = d), DeliverCookie(k, v))];

property TabsConnectedToCookieProc: forall d.
  [Spawn(CookieProc(domain = d))]
  Enables [Send(CookieProc(domain = d), CookieSet(_, _, _))];

property DomainNonInterference: forall d.
  noninterference {
    high components: Tab(domain = d), CookieProc(domain = d), UI;
    high vars: ;
  };

property TabsOnlyOpenAllowedSockets: forall d.
  [Recv(Tab(domain = d), OpenSocket(d))]
  Enables [Send(Network, SocketOpen(d))];
)rfx";

const KernelDef &browser2() {
  static const KernelDef K = [] {
    KernelDef D;
    D.Name = "browser2";
    D.Description = "browser variant: eager per-domain cookie processes";
    D.Source = Browser2Source;
    D.Rows = {
        {"TabIdsUnique", "Tab processes have unique IDs", 80},
        {"CookieProcUniquePerDomain",
         "Cookie processes are unique per domain", 130},
        {"CookiesStayInDomainTab", "Cookies stay in their domain (tab)", 64},
        {"CookiesStayInDomainCookieProc",
         "Cookies stay in their domain (cookie process)", 70},
        {"TabsConnectedToCookieProc",
         "Tabs are correctly connected to their cookie process", 88},
        {"DomainNonInterference", "Different domains do not interfere", 338},
        {"TabsOnlyOpenAllowedSockets",
         "Tabs can only open sockets to allowed domains", 106},
    };
    D.PaperKernelLoc = 81;
    D.PaperPropsLoc = 37;
    D.PaperComponentLoc = 0;
    D.MakeScripts = [] { return browserScripts(/*WithFocus=*/false); };
    D.MakeCalls = [] { return CallRegistry(); };
    return D;
  }();
  return K;
}

} // namespace kernels
} // namespace reflex
