//===- kernels/ssh.cc - SSH server kernel -----------------------*- C++ -*-===//
//
// The privilege-separated SSH server kernel of the paper's Figure 3 / §2,
// extended with the attempt-limiting policy of §6.2: the untrusted
// Connection component (which parses raw network data from unmodified SSH
// clients) can attempt password authentication at most three times, and a
// pseudo-terminal is only ever created for a user after the Password
// component has authenticated that exact user.
//
// The "at most 3 attempts" policy is encoded with four trace properties
// (paper: "we encoded this second policy using four different properties,
// demonstrating that despite the restricted design of our property
// language, it can be used to express sophisticated security policies").
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"

namespace reflex {
namespace kernels {

static const char SshSource[] = R"rfx(
program ssh;

component Connection "client.py";   # untrusted network-facing process
component Password "user-auth.c";   # checks the system password file
component Terminal "pty-alloc.c";   # allocates pseudo terminals

message ReqAuth(str, str);          # Connection: user wants to log in
message CheckAuth(str, str, num);   # kernel -> Password, with attempt number
message Auth(str);                  # Password: user authenticated
message ReqTerm(str);               # Connection: user wants a terminal
message CreatePty(str);             # kernel -> Terminal
message Pty(str, fdesc);            # Terminal: fresh PTY descriptor
message TermFd(str, fdesc);         # kernel -> Connection: direct PTY access
message AuthOk(str);                # kernel -> Connection: login succeeded

var attempts: num = 0;
var auth_ok: bool = false;
var auth_user: str = "";

init {
  C <- spawn Connection();
  P <- spawn Password();
  T <- spawn Terminal();
}

handler Connection => ReqAuth(user, pass) {
  # Three strikes: each attempt is tagged with its number so the policy
  # can speak about first/second/third attempts.
  if (attempts == 0) {
    attempts = 1;
    send(P, CheckAuth(user, pass, 1));
  } else {
    if (attempts == 1) {
      attempts = 2;
      send(P, CheckAuth(user, pass, 2));
    } else {
      if (attempts == 2) {
        attempts = 3;
        send(P, CheckAuth(user, pass, 3));
      }
    }
  }
}

handler Password => Auth(user) {
  auth_ok = true;
  auth_user = user;
  send(C, AuthOk(user));
}

handler Connection => ReqTerm(user) {
  if (auth_ok && user == auth_user) {
    send(T, CreatePty(user));
  }
}

handler Terminal => Pty(user, fd) {
  # Hand the client direct access to the PTY, but only for the
  # authenticated user (eliminating post-authentication kernel overhead).
  if (auth_ok && user == auth_user) {
    send(C, TermFd(user, fd));
  }
}

# --- Properties (Figure 6, ssh rows) --------------------------------------

property AttemptOneEnablesTwo:
  [Send(Password, CheckAuth(_, _, 1))]
  Enables [Send(Password, CheckAuth(_, _, 2))];

property FirstAttemptDisablesItself:
  [Send(Password, CheckAuth(_, _, 1))]
  Disables [Send(Password, CheckAuth(_, _, 1))];

property SecondAttemptDisablesItself:
  [Send(Password, CheckAuth(_, _, 2))]
  Disables [Send(Password, CheckAuth(_, _, 2))];

property ThirdAttemptDisablesAll:
  [Send(Password, CheckAuth(_, _, 3))]
  Disables [Send(Password, CheckAuth(_, _, _))];

property AuthBeforeTerm: forall u.
  [Recv(Password, Auth(u))] Enables [Send(Terminal, CreatePty(u))];
)rfx";

static ScriptFactory sshScripts() {
  return [](const ComponentInstance &C) -> std::unique_ptr<ComponentScript> {
    if (C.TypeName == "Connection") {
      // An SSH client fumbling twice before getting the password right,
      // then requesting its terminal.
      auto User = Value::str("alice");
      return std::make_unique<ScriptedComponent>(
          std::vector<Message>{
              msg("ReqAuth", {User, Value::str("hunter1")}),
              msg("ReqAuth", {User, Value::str("hunter3")}),
              msg("ReqAuth", {User, Value::str("hunter2")})},
          std::map<std::string, ScriptedComponent::Responder>{
              {"AuthOk",
               [](const Message &M) {
                 // Login confirmed; now ask for the terminal.
                 return std::vector<Message>{msg("ReqTerm", {M.Args[0]})};
               }},
              {"TermFd", [](const Message &) {
                 return std::vector<Message>{}; // session established
               }}});
    }
    if (C.TypeName == "Password")
      // user-auth.c: checks against the "password file".
      return std::make_unique<ScriptedComponent>(
          std::vector<Message>{},
          std::map<std::string, ScriptedComponent::Responder>{
              {"CheckAuth", [](const Message &M) {
                 std::vector<Message> Out;
                 if (M.Args[0].asStr() == "alice" &&
                     M.Args[1].asStr() == "hunter2")
                   Out.push_back(msg("Auth", {M.Args[0]}));
                 return Out;
               }}});
    if (C.TypeName == "Terminal")
      // pty-alloc.c: allocates a PTY and passes back the descriptor.
      return std::make_unique<ScriptedComponent>(
          std::vector<Message>{},
          std::map<std::string, ScriptedComponent::Responder>{
              {"CreatePty", [](const Message &M) {
                 static int64_t NextFd = 100;
                 return std::vector<Message>{
                     msg("Pty", {M.Args[0], Value::fdesc(NextFd++)})};
               }}});
    return nullptr;
  };
}

const KernelDef &ssh() {
  static const KernelDef K = [] {
    KernelDef D;
    D.Name = "ssh";
    D.Description = "privilege-separated SSH server kernel (paper Fig. 3)";
    D.Source = SshSource;
    D.Rows = {
        {"AttemptOneEnablesTwo", "Each login attempt enables the next one",
         54},
        {"FirstAttemptDisablesItself",
         "The first attempt to login disables itself", 58},
        {"SecondAttemptDisablesItself",
         "The second attempt to login disables itself", 297},
        {"ThirdAttemptDisablesAll",
         "The third attempt to login disables all attempts", 53},
        {"AuthBeforeTerm",
         "Succesful login enables pseudo-terminal creation", 55},
    };
    D.PaperKernelLoc = 64;
    D.PaperPropsLoc = 22;
    D.PaperComponentLoc = 89567; // Table 1: sandboxed SSH components
    D.MakeScripts = sshScripts;
    D.MakeCalls = [] { return CallRegistry(); };
    return D;
  }();
  return K;
}

} // namespace kernels
} // namespace reflex
