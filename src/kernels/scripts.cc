//===- kernels/scripts.cc - Shared benchmark scripts ------------*- C++ -*-===//

#include "kernels/scripts.h"

namespace reflex {
namespace kernels {

ScriptFactory browserScripts(bool WithFocus) {
  return [WithFocus](
             const ComponentInstance &C) -> std::unique_ptr<ComponentScript> {
    if (C.TypeName == "UI") {
      std::vector<Message> Events{
          msg("CreateTab", {Value::num(1), Value::str("example.com")}),
          msg("CreateTab", {Value::num(2), Value::str("mail.net")}),
          // Duplicate tab id: the kernel must refuse to spawn a second
          // tab with id 1 (TabIdsUnique).
          msg("CreateTab", {Value::num(1), Value::str("evil.org")}),
      };
      if (WithFocus) {
        Events.push_back(msg("Focus", {Value::num(1)}));
        Events.push_back(msg("KeyPress", {Value::str("hello world")}));
        Events.push_back(msg("Focus", {Value::num(2)}));
        Events.push_back(msg("KeyPress", {Value::str("compose mail")}));
      }
      return std::make_unique<ScriptedComponent>(
          std::move(Events),
          std::map<std::string, ScriptedComponent::Responder>{});
    }
    if (C.TypeName == "Tab") {
      std::string Domain = C.Config[0].asStr();
      return std::make_unique<ScriptedComponent>(
          std::vector<Message>{
              msg("SetCookie", {Value::str("sid"),
                                Value::str("cookie-for-" + Domain)}),
              // Own-domain socket: granted; cross-domain: denied.
              msg("OpenSocket", {Value::str(Domain)}),
              msg("OpenSocket", {Value::str("tracker.example")}),
              // Same-origin navigation: approved; cross-domain: dropped.
              msg("Navigate", {Value::str(Domain)}),
              msg("Navigate", {Value::str("evil.org")}),
          },
          std::map<std::string, ScriptedComponent::Responder>{});
    }
    if (C.TypeName == "CookieProc") {
      // One cookie process per domain, pushing each accepted cookie back
      // out as an update (which the kernel routes to the domain's tabs).
      return std::make_unique<ScriptedComponent>(
          std::vector<Message>{},
          std::map<std::string, ScriptedComponent::Responder>{
              {"CookieSet", [](const Message &M) {
                 return std::vector<Message>{
                     msg("CookieUpdate", {M.Args[1], M.Args[2]})};
               }}});
    }
    return nullptr; // Network only listens
  };
}

} // namespace kernels
} // namespace reflex
