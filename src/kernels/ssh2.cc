//===- kernels/ssh2.cc - SSH variant: counter component ---------*- C++ -*-===//
//
// The paper's ssh2 variant (§6.2, Figure 6): "uses a separate component to
// count authentication attempts". The attempt limit moves out of kernel
// state into a dedicated Counter component; the kernel only forwards
// authentication requests that the counter has approved.
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"

namespace reflex {
namespace kernels {

static const char Ssh2Source[] = R"rfx(
program ssh2;

component Connection "client.py";
component Password "user-auth.c";
component Terminal "pty-alloc.c";
component Counter "attempt-counter.py";

message ReqAuth(str, str);
message CountReq(str, str);   # kernel -> Counter: may this attempt proceed?
message Approved(str, str);   # Counter: attempt approved
message CheckAuth(str, str);  # kernel -> Password
message Auth(str);
message ReqTerm(str);
message CreatePty(str);
message Pty(str, fdesc);
message TermFd(str, fdesc);
message AuthOk(str);

var auth_ok: bool = false;
var auth_user: str = "";

init {
  C   <- spawn Connection();
  P   <- spawn Password();
  T   <- spawn Terminal();
  CNT <- spawn Counter();
}

handler Connection => ReqAuth(user, pass) {
  send(CNT, CountReq(user, pass));
}

handler Counter => Approved(user, pass) {
  send(P, CheckAuth(user, pass));
}

handler Password => Auth(user) {
  auth_ok = true;
  auth_user = user;
  send(C, AuthOk(user));
}

handler Connection => ReqTerm(user) {
  if (auth_ok && user == auth_user) {
    send(T, CreatePty(user));
  }
}

handler Terminal => Pty(user, fd) {
  if (auth_ok && user == auth_user) {
    send(C, TermFd(user, fd));
  }
}

# --- Properties (Figure 6, ssh2 rows) -------------------------------------

property AuthBeforeTerm: forall u.
  [Recv(Password, Auth(u))] Enables [Send(Terminal, CreatePty(u))];

property AttemptsApprovedByCounter: forall u, p.
  [Recv(Counter, Approved(u, p))] Enables [Send(Password, CheckAuth(u, p))];
)rfx";

static ScriptFactory ssh2Scripts() {
  return [](const ComponentInstance &C) -> std::unique_ptr<ComponentScript> {
    if (C.TypeName == "Connection") {
      auto User = Value::str("bob");
      return std::make_unique<ScriptedComponent>(
          std::vector<Message>{
              msg("ReqAuth", {User, Value::str("wrong")}),
              msg("ReqAuth", {User, Value::str("letmein")}),
              msg("ReqAuth", {User, Value::str("also-wrong")}),
              msg("ReqAuth", {User, Value::str("letmein")})},
          std::map<std::string, ScriptedComponent::Responder>{
              {"AuthOk", [](const Message &M) {
                 return std::vector<Message>{msg("ReqTerm", {M.Args[0]})};
               }}});
    }
    if (C.TypeName == "Counter") {
      // attempt-counter.py: approves at most three attempts.
      struct CounterScript : ComponentScript {
        int Seen = 0;
        void onMessage(const Message &M) override {
          if (M.Name == "CountReq" && ++Seen <= 3)
            sendToKernel(msg("Approved", {M.Args[0], M.Args[1]}));
        }
      };
      return std::make_unique<CounterScript>();
    }
    if (C.TypeName == "Password")
      return std::make_unique<ScriptedComponent>(
          std::vector<Message>{},
          std::map<std::string, ScriptedComponent::Responder>{
              {"CheckAuth", [](const Message &M) {
                 std::vector<Message> Out;
                 if (M.Args[0].asStr() == "bob" &&
                     M.Args[1].asStr() == "letmein")
                   Out.push_back(msg("Auth", {M.Args[0]}));
                 return Out;
               }}});
    if (C.TypeName == "Terminal")
      return std::make_unique<ScriptedComponent>(
          std::vector<Message>{},
          std::map<std::string, ScriptedComponent::Responder>{
              {"CreatePty", [](const Message &M) {
                 static int64_t NextFd = 200;
                 return std::vector<Message>{
                     msg("Pty", {M.Args[0], Value::fdesc(NextFd++)})};
               }}});
    return nullptr;
  };
}

const KernelDef &ssh2() {
  static const KernelDef K = [] {
    KernelDef D;
    D.Name = "ssh2";
    D.Description = "SSH variant: attempt counting in a separate component";
    D.Source = Ssh2Source;
    D.Rows = {
        {"AuthBeforeTerm",
         "Succesful login enables pseudo-terminal creation", 113},
        {"AttemptsApprovedByCounter",
         "Login attempts approved by counter component", 37},
    };
    D.PaperKernelLoc = 64;
    D.PaperPropsLoc = 22;
    D.PaperComponentLoc = 0;
    D.MakeScripts = ssh2Scripts;
    D.MakeCalls = [] { return CallRegistry(); };
    return D;
  }();
  return K;
}

} // namespace kernels
} // namespace reflex
