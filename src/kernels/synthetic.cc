//===- kernels/synthetic.cc - Synthetic scaling kernels ---------*- C++ -*-===//

#include "kernels/synthetic.h"

#include <cassert>
#include <sstream>

namespace reflex {
namespace kernels {

std::string syntheticChainKernel(unsigned Stages) {
  assert(Stages >= 2 && "chain needs at least two stages");
  std::ostringstream OS;
  OS << "program chain" << Stages << ";\n";
  OS << "component Driver \"driver.py\";\n";
  OS << "component Worker \"worker.py\";\n";
  for (unsigned I = 0; I < Stages; ++I) {
    OS << "message Go" << I << "(num);\n";
    OS << "message Out" << I << "(num);\n";
    OS << "message Marker" << I << "(num);\n";
  }
  for (unsigned I = 0; I < Stages; ++I)
    OS << "var done" << I << ": bool = false;\n";
  OS << "init {\n  W <- spawn Worker();\n  D <- spawn Driver();\n}\n";

  for (unsigned I = 0; I < Stages; ++I) {
    OS << "handler Driver => Go" << I << "(x) {\n";
    if (I == 0)
      OS << "  if (!done0) {\n    done0 = true;\n    send(W, Out0(x));\n"
            "  }\n";
    else
      OS << "  if (done" << (I - 1) << " && !done" << I << ") {\n"
         << "    done" << I << " = true;\n"
         << "    send(W, Out" << I << "(x));\n  }\n";
    // Every handler emits its marker once the chain has started; all the
    // Marker_i proofs share the {done0 == true} => Out0 invariant.
    OS << "  if (done0) {\n    send(W, Marker" << I << "(x));\n  }\n";
    OS << "}\n";
  }

  for (unsigned I = 1; I < Stages; ++I)
    OS << "property Chain" << I << ":\n  [Send(Worker, Out" << (I - 1)
       << "(_))] Enables [Send(Worker, Out" << I << "(_))];\n";
  for (unsigned I = 0; I < Stages; ++I)
    OS << "property Marker" << I << ":\n  [Send(Worker, Out0(_))] Enables "
       << "[Send(Worker, Marker" << I << "(_))];\n";
  return OS.str();
}

std::string syntheticFleetKernel(unsigned Lanes) {
  assert(Lanes >= 1 && "fleet needs at least one lane");
  std::ostringstream OS;
  OS << "program fleet" << Lanes << ";\n";
  OS << "component Driver \"driver.py\";\n";
  OS << "component Node \"node.py\" { lane: num };\n";
  for (unsigned I = 0; I < Lanes; ++I) {
    OS << "message Open" << I << "(num);\n";
    OS << "message Use" << I << "(num);\n";
    OS << "message Ack" << I << "(num);\n";
    OS << "message Out" << I << "(num);\n";
  }
  for (unsigned I = 0; I < Lanes; ++I)
    OS << "var open" << I << ": bool = false;\n";
  OS << "init {\n";
  for (unsigned I = 0; I < Lanes; ++I)
    OS << "  N" << I << " <- spawn Node(" << I << ");\n";
  OS << "  D <- spawn Driver();\n}\n";

  for (unsigned I = 0; I < Lanes; ++I) {
    OS << "handler Driver => Open" << I << "(x) {\n"
       << "  if (!open" << I << ") {\n"
       << "    open" << I << " = true;\n"
       << "    send(N" << I << ", Ack" << I << "(x));\n  }\n}\n";
    OS << "handler Driver => Use" << I << "(x) {\n"
       << "  if (open" << I << ") {\n"
       << "    send(N" << I << ", Out" << I << "(x));\n  }\n}\n";
  }

  for (unsigned I = 0; I < Lanes; ++I)
    OS << "property Lane" << I << ":\n  [Send(Node(lane=" << I << "), Ack"
       << I << "(_))] Enables [Send(Node(lane=" << I << "), Out" << I
       << "(_))];\n";
  for (unsigned I = 0; I < Lanes; ++I)
    OS << "property Once" << I << ":\n  atmostonce [Send(Node(lane=" << I
       << "), Ack" << I << "(_))];\n";
  return OS.str();
}

namespace {

/// Emits the complete binary if/else nest of syntheticBranchKernel below
/// \p Level (leaves at \p Depth send Hit). \p Leaf counts emitted leaves
/// in source order; in per-leaf mode each leaf stamps its own literal
/// into `scratch` and emits its own Hit message.
void emitBranchNest(std::ostringstream &OS, unsigned Level, unsigned Depth,
                    const std::string &Indent, bool PerLeaf,
                    unsigned &Leaf) {
  if (Level == Depth) {
    if (PerLeaf) {
      OS << Indent << "scratch = " << Leaf << ";\n";
      OS << Indent << "send(W, Hit" << Leaf << "(a0));\n";
      ++Leaf;
    } else {
      OS << Indent << "send(W, Hit(a0));\n";
    }
    return;
  }
  OS << Indent << "if (a" << Level << " < 5) {\n";
  emitBranchNest(OS, Level + 1, Depth, Indent + "  ", PerLeaf, Leaf);
  OS << Indent << "} else {\n";
  emitBranchNest(OS, Level + 1, Depth, Indent + "  ", PerLeaf, Leaf);
  OS << Indent << "}\n";
}

} // namespace

std::string syntheticBranchKernel(unsigned Depth, bool PerLeafProps) {
  assert(Depth >= 1 && Depth <= 8 && "branch nest depth out of range");
  const unsigned Leaves = 1u << Depth;
  std::ostringstream OS;
  OS << "program branch" << Depth << (PerLeafProps ? "pl" : "") << ";\n";
  OS << "component Driver \"driver.py\";\n";
  OS << "component Worker \"worker.py\";\n";
  OS << "message Arm(num);\n";
  OS << "message Go(num);\n";
  if (PerLeafProps)
    for (unsigned L = 0; L < Leaves; ++L)
      OS << "message Hit" << L << "(num);\n";
  else
    OS << "message Hit(num);\n";
  OS << "message Probe(";
  for (unsigned I = 0; I < Depth; ++I)
    OS << (I ? ", num" : "num");
  OS << ");\n";
  OS << "var armed: bool = false;\n";
  if (PerLeafProps)
    OS << "var scratch: num = 0;\n";
  OS << "init {\n  W <- spawn Worker();\n  D <- spawn Driver();\n}\n";

  OS << "handler Driver => Arm(x) {\n"
     << "  if (!armed) {\n    armed = true;\n    send(W, Go(x));\n  }\n}\n";
  OS << "handler Driver => Probe(";
  for (unsigned I = 0; I < Depth; ++I)
    OS << (I ? ", a" : "a") << I;
  OS << ") {\n  if (armed) {\n";
  unsigned Leaf = 0;
  emitBranchNest(OS, 0, Depth, "    ", PerLeafProps, Leaf);
  OS << "  }\n}\n";

  if (PerLeafProps)
    for (unsigned L = 0; L < Leaves; ++L)
      OS << "property Gated" << L << ":\n  [Send(Worker, Go(_))] Enables "
         << "[Send(Worker, Hit" << L << "(_))];\n";
  else
    OS << "property Gated:\n  [Send(Worker, Go(_))] Enables "
       << "[Send(Worker, Hit(_))];\n";
  OS << "property ArmOnce:\n  atmostonce [Send(Worker, Go(_))];\n";
  return OS.str();
}

} // namespace kernels
} // namespace reflex
