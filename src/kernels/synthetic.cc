//===- kernels/synthetic.cc - Synthetic scaling kernels ---------*- C++ -*-===//

#include "kernels/synthetic.h"

#include <cassert>
#include <sstream>

namespace reflex {
namespace kernels {

std::string syntheticChainKernel(unsigned Stages) {
  assert(Stages >= 2 && "chain needs at least two stages");
  std::ostringstream OS;
  OS << "program chain" << Stages << ";\n";
  OS << "component Driver \"driver.py\";\n";
  OS << "component Worker \"worker.py\";\n";
  for (unsigned I = 0; I < Stages; ++I) {
    OS << "message Go" << I << "(num);\n";
    OS << "message Out" << I << "(num);\n";
    OS << "message Marker" << I << "(num);\n";
  }
  for (unsigned I = 0; I < Stages; ++I)
    OS << "var done" << I << ": bool = false;\n";
  OS << "init {\n  W <- spawn Worker();\n  D <- spawn Driver();\n}\n";

  for (unsigned I = 0; I < Stages; ++I) {
    OS << "handler Driver => Go" << I << "(x) {\n";
    if (I == 0)
      OS << "  if (!done0) {\n    done0 = true;\n    send(W, Out0(x));\n"
            "  }\n";
    else
      OS << "  if (done" << (I - 1) << " && !done" << I << ") {\n"
         << "    done" << I << " = true;\n"
         << "    send(W, Out" << I << "(x));\n  }\n";
    // Every handler emits its marker once the chain has started; all the
    // Marker_i proofs share the {done0 == true} => Out0 invariant.
    OS << "  if (done0) {\n    send(W, Marker" << I << "(x));\n  }\n";
    OS << "}\n";
  }

  for (unsigned I = 1; I < Stages; ++I)
    OS << "property Chain" << I << ":\n  [Send(Worker, Out" << (I - 1)
       << "(_))] Enables [Send(Worker, Out" << I << "(_))];\n";
  for (unsigned I = 0; I < Stages; ++I)
    OS << "property Marker" << I << ":\n  [Send(Worker, Out0(_))] Enables "
       << "[Send(Worker, Marker" << I << "(_))];\n";
  return OS.str();
}

} // namespace kernels
} // namespace reflex
