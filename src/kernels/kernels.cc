//===- kernels/kernels.cc - Kernel registry ---------------------*- C++ -*-===//

#include "kernels/kernels.h"

#include <cstdio>
#include <cstdlib>

namespace reflex {
namespace kernels {

std::vector<const KernelDef *> all() {
  return {&car(),  &browser(), &browser2(), &browser3(),
          &ssh(),  &ssh2(),    &webserver()};
}

ProgramPtr load(const KernelDef &K) {
  Result<ProgramPtr> R = loadProgram(K.Source, K.Name);
  if (!R) {
    std::fprintf(stderr, "embedded kernel '%s' failed to load:\n%s\n",
                 K.Name.c_str(), R.error().c_str());
    std::abort();
  }
  return R.take();
}

unsigned totalProperties() {
  unsigned N = 0;
  for (const KernelDef *K : all())
    N += static_cast<unsigned>(K->Rows.size());
  return N;
}

} // namespace kernels
} // namespace reflex
