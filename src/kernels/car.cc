//===- kernels/car.cc - Automobile controller kernel ------------*- C++ -*-===//
//
// The hypothetical automobile controller of the paper's Figure 5 and §6.1:
// a verified kernel mediating between the engine, airbags, door locks,
// radio, brakes, and cruise control, motivated by Koscher et al.'s
// demonstration that untrusted car components (telematics, radio) can
// inappropriately influence safety-critical ones (engine, brakes).
//
//===----------------------------------------------------------------------===//

#include "kernels/kernels.h"

namespace reflex {
namespace kernels {

static const char CarSource[] = R"rfx(
program car;

# Component types. The executables are descriptive: the runtime attaches
# simulation scripts instead (see carScripts below).
component Engine "engine.c";
component Airbag "airbag.c";
component Doors "doors.c";
component Radio "radio.py";
component Brakes "brakes.c";
component Cruise "cruise.c";

# Messages from components to the kernel.
message Crash();                 # engine detected a crash
message Accelerating();          # engine reports acceleration
message Braking();               # brake pedal pressed
message LockReq();               # doors request locking (e.g. auto-lock)
message DoorState(str);          # doors report "open"/"closed"

# Messages from the kernel to components.
message Deploy();                # fire the airbags
message DoorsMsg(str);           # "lock" / "unlock"
message Volume(str);             # radio volume advice
message CruiseOff();             # disengage cruise control

var crashed: bool = false;

init {
  E  <- spawn Engine();
  A  <- spawn Airbag();
  D  <- spawn Doors();
  R  <- spawn Radio();
  B  <- spawn Brakes();
  CR <- spawn Cruise();
}

handler Engine => Crash() {
  send(A, Deploy());
  send(D, DoorsMsg("unlock"));
  crashed = true;
}

handler Engine => Accelerating() {
  send(R, Volume("crank it up"));
}

handler Brakes => Braking() {
  send(CR, CruiseOff());
}

handler Doors => LockReq() {
  # After a crash the doors must never lock again.
  if (!crashed) {
    send(D, DoorsMsg("lock"));
  }
}

handler Doors => DoorState(s) {
  if (s == "open") {
    send(R, Volume("mute"));
  }
}

# --- Properties (Figure 6, car rows) -------------------------------------

property EngineNoInterfere:
  noninterference {
    high components: Engine;
    high vars: ;
  };

property AirbagsDeployOnCrash:
  [Recv(Engine, Crash())] Ensures [Send(Airbag, Deploy())];

property AirbagsImmediatelyAfterCrash:
  [Recv(Engine, Crash())] ImmAfter [Send(Airbag, Deploy())];

property CruiseOffImmediatelyAfterBraking:
  [Recv(Brakes, Braking())] ImmAfter [Send(Cruise, CruiseOff())];

property DoorsUnlockOnCrash:
  [Recv(Engine, Crash())] Ensures [Send(Doors, DoorsMsg("unlock"))];

property DoorsUnlockImmediatelyAfterAirbags:
  [Send(Airbag, Deploy())] ImmAfter [Send(Doors, DoorsMsg("unlock"))];

property NoLockAfterCrash:
  [Recv(Engine, Crash())] Disables [Send(Doors, DoorsMsg("lock"))];

property AirbagsOnlyDeployOnCrash:
  [Recv(Engine, Crash())] Enables [Send(Airbag, Deploy())];
)rfx";

static ScriptFactory carScripts() {
  return [](const ComponentInstance &C) -> std::unique_ptr<ComponentScript> {
    if (C.TypeName == "Engine")
      return std::make_unique<ScriptedComponent>(
          std::vector<Message>{msg("Accelerating"), msg("Crash")},
          std::map<std::string, ScriptedComponent::Responder>{});
    if (C.TypeName == "Doors")
      return std::make_unique<ScriptedComponent>(
          std::vector<Message>{msg("DoorState", {Value::str("open")}),
                               msg("LockReq"),
                               msg("DoorState", {Value::str("closed")}),
                               msg("LockReq")},
          std::map<std::string, ScriptedComponent::Responder>{});
    if (C.TypeName == "Brakes")
      return std::make_unique<ScriptedComponent>(
          std::vector<Message>{msg("Braking")},
          std::map<std::string, ScriptedComponent::Responder>{});
    return nullptr; // airbag/radio/cruise only listen
  };
}

const KernelDef &car() {
  static const KernelDef K = [] {
    KernelDef D;
    D.Name = "car";
    D.Description = "hypothetical automobile controller (paper Fig. 5)";
    D.Source = CarSource;
    D.Rows = {
        {"EngineNoInterfere",
         "Components do not interfere with the engine", 13},
        {"AirbagsDeployOnCrash",
         "Airbags do deploy when there has been a crash", 6},
        {"AirbagsImmediatelyAfterCrash",
         "Airbags are deployed immediately after crash", 4},
        {"CruiseOffImmediatelyAfterBraking",
         "Cruise control turns off immediately after braking", 5},
        {"DoorsUnlockOnCrash", "Doors unlock when there is a crash", 6},
        {"DoorsUnlockImmediatelyAfterAirbags",
         "Doors unlock immediately after airbags deployed", 6},
        {"NoLockAfterCrash", "Doors can not lock after a crash", 21},
        {"AirbagsOnlyDeployOnCrash",
         "Airbags only deploy if there has been a crash", 6},
    };
    D.PaperKernelLoc = 60; // "60 lines of Reflex code and properties"
    D.PaperPropsLoc = 0;
    D.PaperComponentLoc = 0;
    D.MakeScripts = carScripts;
    D.MakeCalls = [] { return CallRegistry(); };
    return D;
  }();
  return K;
}

} // namespace kernels
} // namespace reflex
