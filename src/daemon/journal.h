//===- daemon/journal.h - Durable verdict journal ---------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durable verdict journal behind crash-safe reflexd. A daemon crash
/// (SIGKILL, OOM, power loss) used to discard every warm session and
/// incremental verdict; the journal makes that state *recoverable
/// capital* without ever making it *trusted*.
///
/// Format: an append-only text file (`verdicts.journal` in the proof
/// cache directory), one record per line:
///
///     RJ1 <sha256-hex-of-payload> <payload-json>\n
///
/// The payload is one of three record types:
///   * `{"type":"session", ...}` — a session snapshot: its name plus a
///     complete, re-decodable open-session request frame (program source
///     inlined, options spelled out) and the program's declaration
///     identity for an integrity cross-check;
///   * `{"type":"verdict", ...}` — one property verdict of a session:
///     property text + name, status, reason, canonical certificate and
///     audit JSON, footprint, engine;
///   * `{"type":"close", ...}` — the session was closed; recovery
///     forgets it.
///
/// Durability: every append is written and fsync'd before the daemon's
/// response leaves the process (commit = fsync). Torn tails — the
/// half-written line a crash mid-append leaves behind — are detected by
/// the per-record checksum at replay and *truncated off the file*, so
/// one crash cannot poison the next.
///
/// Trust model (same as the proof cache): the journal is untrusted
/// input. replay() only reconstructs plain data; the daemon re-admits a
/// recovered Proved verdict into a live session exclusively after
/// checkCanonicalCertificate re-derives the proof and the canonical
/// forms agree. A record that passes its checksum but carries a
/// tampered certificate is therefore re-verified, never served.
///
/// Growth: appends are incremental (a snapshot per open / source-
/// changing edit, verdicts per verify pass); open() compacts the file
/// back to one snapshot + the latest verdicts per live session.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_DAEMON_JOURNAL_H
#define REFLEX_DAEMON_JOURNAL_H

#include "support/result.h"
#include "verify/verifier.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace reflex {

/// One journaled property verdict (Proved or Unknown; budget statuses
/// and Refuted are never journaled, mirroring the proof cache's policy).
struct JournalVerdict {
  std::string PropertyText; ///< Property::str() — the reuse key
  std::string PropertyName;
  VerifyStatus Status = VerifyStatus::Unknown;
  std::string Reason;
  double Millis = 0;
  std::string CanonicalCert; ///< Proved only: what the checker re-derives
  std::string CertJson;      ///< Proved only: audit JSON
  std::string ServedBy;      ///< engine that produced the verdict
  bool FootprintCollected = false;
  bool FootprintAll = false;
  std::vector<std::string> Footprint;
};

/// One recoverable session, as reconstructed by replay: the latest
/// snapshot plus every verdict recorded since it.
struct JournalSession {
  std::string Name;
  /// A complete open-session request frame (decodeDaemonRequest-able):
  /// program source inlined, options spelled out. Recovery re-decodes it
  /// exactly like a client's frame, so replayed sessions carry the same
  /// options their originals verified under.
  std::string OpenFrame;
  /// ProofCache::declId of the program at snapshot time; recovery
  /// re-derives it from the parsed source and skips the session on
  /// mismatch (a frame/identity split means damage).
  std::string DeclSha256;
  /// Property text -> latest journaled verdict.
  std::map<std::string, JournalVerdict> Verdicts;
};

/// What replay recovered, and what it had to discard.
struct JournalReplay {
  std::vector<JournalSession> Sessions; ///< open sessions, oldest first
  uint64_t RecordsReplayed = 0;         ///< checksum-valid records applied
  uint64_t RecordsDiscarded = 0;        ///< records dropped at the tear
  uint64_t BytesTruncated = 0;          ///< torn-tail bytes cut off the file
};

/// The append-only, checksummed, fsync-on-commit verdict journal.
/// Thread-safe: appends serialize on an internal lock.
class VerdictJournal {
public:
  ~VerdictJournal();
  VerdictJournal(const VerdictJournal &) = delete;
  VerdictJournal &operator=(const VerdictJournal &) = delete;

  /// Opens (creating if absent) the journal at \p Path: replays existing
  /// records into \p Replay (never null), truncates any torn tail off
  /// the file, compacts it to the recovered state, and arms it for
  /// appends. Only unreadable/unwritable files error; corrupt content is
  /// data loss to report (in Replay), not failure.
  static Result<std::unique_ptr<VerdictJournal>> open(const std::string &Path,
                                                      JournalReplay *Replay);

  const std::string &path() const { return Path; }

  /// Appends a session snapshot (open-session, or an edit that changed
  /// the source). Fsyncs before returning.
  Result<void> appendSession(const std::string &Name,
                             const std::string &OpenFrame,
                             const std::string &DeclSha256);

  /// Appends one verdict for \p Session. Fsyncs before returning.
  Result<void> appendVerdict(const std::string &Session,
                             const JournalVerdict &V);

  /// Appends a close record: replay stops recovering \p Session.
  Result<void> appendClose(const std::string &Session);

  /// Bytes currently in the journal file (diagnostics).
  uint64_t sizeBytes() const;

  /// Encodes one record line (without trailing newline): checksum header
  /// + payload. Exposed for tests that forge records.
  static std::string encodeRecord(const std::string &PayloadJson);

private:
  explicit VerdictJournal(std::string Path) : Path(std::move(Path)) {}

  Result<void> append(const std::string &PayloadJson);

  std::string Path;
  std::mutex Mu;
  int Fd = -1;
};

} // namespace reflex

#endif // REFLEX_DAEMON_JOURNAL_H
