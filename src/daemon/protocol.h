//===- daemon/protocol.h - reflexd wire protocol ----------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reflexd wire protocol (docs/DAEMON.md): newline-delimited JSON
/// over a Unix-domain stream socket. One request frame, one response
/// frame, in order; a client may pipeline. Every request is an object
/// with a "verb" plus verb-specific fields; every response is an object
/// with "ok" (true/false) — errors are structured frames, never closed
/// connections, except for an oversized frame (the stream cannot be
/// resynchronized past it).
///
/// Requests:
///
///   {"verb":"verify", "program":SOURCE | "path":FILE, "options":{...}}
///   {"verb":"open-session","session":NAME,"program":...,"options":{...}}
///   {"verb":"edit","session":NAME,"program":SOURCE}
///   {"verb":"close-session","session":NAME}
///   {"verb":"stats"} {"verb":"cache-gc"} {"verb":"ping"}
///   {"verb":"shutdown"}
///
/// The "options" object mirrors the `reflex verify` flags one-to-one
/// (same keys modulo `--` and `-`→`_`): jobs, retries, bmc_depth,
/// timeout_ms, step_budget, no_skip, no_simplify, no_cache, no_check,
/// fast_cache, no_share, plus no_proof_cache (skip the daemon's
/// persistent cache for this request/session). Because the mapping is
/// shared with the CLI's semantics, daemon verdicts are byte-identical
/// to one-shot `reflex verify` runs — the determinism contract
/// (verdict = f(program, property, options)) holds across the wire.
/// bmc_states / bmc_payloads carry the counterexample-search resource
/// limits (VerifyOptions::Bmc), defaulting to BmcOptions' own defaults;
/// wide-alphabet clients (the generated corpus) shrink bmc_payloads so
/// a shallow bound completes under the state cap.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_DAEMON_PROTOCOL_H
#define REFLEX_DAEMON_PROTOCOL_H

#include "support/json.h"
#include "support/result.h"
#include "verify/verifier.h"

#include <string>

namespace reflex {

/// Hard cap on one frame's size, both directions. Programs are a few KB;
/// 8 MiB leaves room for certificate-heavy responses while bounding what
/// a hostile peer can make the daemon buffer.
constexpr size_t DaemonMaxFrameBytes = 8u << 20;

/// One decoded request frame.
struct DaemonRequest {
  std::string Verb;
  std::string Session;     ///< session verbs only
  std::string ProgramText; ///< inline source ("program")
  std::string ProgramPath; ///< or a file the daemon reads ("path")
  /// Scheduler knobs (option keys jobs/retries/no_share). Jobs 0 means
  /// "the daemon's --jobs default".
  unsigned Jobs = 0;
  unsigned Retries = 0;
  bool SharedCaches = true;
  /// Consult the daemon's persistent proof cache (off via no_proof_cache).
  bool UseProofCache = true;
  /// Per-property verification options, mapped exactly as the CLI maps
  /// its flags (see cmdVerify in tools/reflex_cli.cc).
  VerifyOptions Verify;
};

/// Parses one request frame. Errors on malformed JSON, a non-object
/// document, a missing/empty verb, or wrongly-typed fields; unknown
/// verbs are *not* rejected here (the daemon answers those with a
/// structured error naming the verb).
Result<DaemonRequest> decodeDaemonRequest(const std::string &Frame);

/// Serializes one property verdict as the protocol's result object:
/// name, status, reason (non-proved), millis, cert/cache provenance
/// flags, and — for proved properties — the certificate JSON embedded
/// verbatim under "cert" (it is already JSON; re-escaping it as a string
/// would force clients to double-parse).
void writePropertyResult(JsonWriter &W, const PropertyResult &R);

/// Serializes a report's verdicts ("results" array) plus the aggregate
/// counters shared by verify/open-session/edit responses.
void writeReportResults(JsonWriter &W, const VerificationReport &Rep);

/// A complete error response frame: {"ok":false,"error":MSG}.
std::string encodeDaemonError(const std::string &Msg);

/// The overload-shedding response: {"ok":false, "error":...,
/// "overloaded":true, "retry_after_ms":N}. Clients distinguish it from a
/// hard failure by the "overloaded" flag and back off (with jitter) at
/// least the hinted interval before retrying — the request was never
/// admitted, so retrying is always safe.
std::string encodeDaemonOverloaded(uint64_t RetryAfterMs);

/// Renders \p R back into a complete open-session request frame with the
/// program source inlined (\p Source) and every option spelled out with
/// the exact keys decodeDaemonRequest reads. The round trip
/// decode(encode(R)) reproduces R; the daemon journals this frame so
/// crash recovery re-opens sessions under byte-identical options.
std::string encodeOpenSessionFrame(const DaemonRequest &R,
                                   const std::string &Source);

} // namespace reflex

#endif // REFLEX_DAEMON_PROTOCOL_H
