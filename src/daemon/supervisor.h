//===- daemon/supervisor.h - Supervised daemon restart ----------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The supervision half of crash-safe reflexd (`reflex daemon
/// --supervise`): a parent process runs the serving daemon as a forked
/// child and restarts it when it dies abnormally — SIGKILL, a crash, a
/// nonzero exit. Combined with the durable verdict journal
/// (daemon/journal.h), a kill -9 mid-batch costs one restart plus one
/// journal replay, not the warm state.
///
/// State machine (one JSON event line on the log per transition):
///
///   serving --child exits 0--------------------------> stopped (exit 0)
///   serving --child dies abnormally--> backoff --restart--> serving
///   backoff --more than MaxRestarts starts within RestartWindowMs-->
///                                                  giving-up (exit 1)
///
/// Backoff between restarts is capped exponential (BackoffMs doubling up
/// to BackoffCapMs), indexed by the number of recent restarts, so a
/// crash-looping child cannot busy-spin the machine; a child that stays
/// up long enough for its start record to age out of the window earns a
/// fresh budget. SIGTERM/SIGINT delivered to the supervisor are
/// forwarded to the child — the daemon's drain handles them — and a
/// child that then exits cleanly ends supervision with exit 0.
///
/// Events are newline-delimited JSON so scripts can follow along:
///   {"event":"serving","pid":N,"restarts":K}
///   {"event":"exited","pid":N,"code":C}   or  ...,"signal":S}
///   {"event":"restarting","delay_ms":D,"recent_restarts":K}
///   {"event":"giving-up","recent_restarts":K,"window_ms":W}
///   {"event":"stopped","pid":N}
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_DAEMON_SUPERVISOR_H
#define REFLEX_DAEMON_SUPERVISOR_H

#include <cstdint>
#include <cstdio>
#include <functional>

namespace reflex {

struct SupervisorOptions {
  /// Give up after more than this many *restarts* land inside one
  /// RestartWindowMs window (the crash-loop detector). 0 means any
  /// abnormal exit is final.
  unsigned MaxRestarts = 5;
  uint64_t RestartWindowMs = 30000;
  /// First restart delay; doubles per recent restart up to the cap.
  uint64_t BackoffMs = 100;
  uint64_t BackoffCapMs = 2000;
  /// Where event lines go (defaults to stderr when null).
  FILE *Log = nullptr;
};

/// Runs \p Child (the serving daemon's whole lifetime: start + serve) in
/// a forked process under the supervision state machine above. Returns
/// the supervisor's exit code: 0 after a clean child exit, nonzero after
/// giving up on a crash loop or failing to fork. Installs SIGTERM/SIGINT
/// forwarding for its own lifetime (restoring the previous handlers on
/// return); call it from a single-threaded process — it forks.
int runSupervised(const SupervisorOptions &Opts,
                  const std::function<int()> &Child);

} // namespace reflex

#endif // REFLEX_DAEMON_SUPERVISOR_H
