//===- daemon/daemon.h - reflexd, the verification daemon ------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// reflexd — a persistent verification daemon. The paper's workflow is
/// edit → re-verify → edit; paying a cold process (parse, abstraction
/// build, cache open) for every iteration wastes exactly the state that
/// makes re-verification cheap. The daemon keeps it alive across
/// requests: one shared persistent ProofCache, and per-program
/// *sessions* holding the parsed program, the warm frozen abstraction +
/// cross-worker cache tiers (service/scheduler.h VerifyShare), and the
/// incremental verifier's verdict store with proof footprints
/// (verify/incremental.h).
///
/// Transport: Unix-domain stream socket, newline-delimited JSON frames
/// (daemon/protocol.h). One thread per client; requests on one
/// connection run in order, connections run concurrently, and all of
/// them share the scheduler's determinism contract — verdicts are
/// functions of (program, property, options), so concurrent clients get
/// byte-identical results to one-shot CLI runs.
///
/// An `edit` request re-fingerprints the session's program, reuses
/// every verdict whose proof footprint is disjoint from the edit, and
/// re-verifies only the dependents — *through the scheduler*, as one
/// batch sharing the session's frozen abstraction and sharded caches
/// (IncrementalVerifier::setScheduler; this resolves the roadmap item
/// about wiring the incremental verifier through the frozen-abstraction
/// path).
///
/// Robustness: a client that disconnects mid-request fires that
/// request's CancelFlag (SchedulerOptions::Cancel) — the batch's jobs
/// abort cooperatively, and because Aborted results are never cached or
/// published to shared tiers, the abandoned request cannot poison any
/// later one. A per-request wall deadline (--request-timeout-ms) rides
/// the same token. Sessions are LRU-bounded (--max-sessions).
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_DAEMON_DAEMON_H
#define REFLEX_DAEMON_DAEMON_H

#include "daemon/journal.h"
#include "daemon/protocol.h"
#include "service/proofcache.h"
#include "service/scheduler.h"
#include "support/result.h"
#include "support/socket.h"
#include "verify/incremental.h"

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace reflex {

struct DaemonOptions {
  /// Where to listen (AF_UNIX; ~107-byte path limit). Required.
  std::string SocketPath;
  /// Default scheduler workers per request (0 = all cores); a request's
  /// options.jobs overrides per request.
  unsigned Jobs = 0;
  /// Optional persistent proof cache shared by every request and session.
  std::string CacheDir;
  /// Open-session LRU bound: opening one beyond this evicts the least
  /// recently used session.
  unsigned MaxSessions = 8;
  /// Per-request wall deadline in ms (0 = none): an overrunning request
  /// is cancelled exactly like a vanished client.
  uint64_t RequestTimeoutMs = 0;
  /// Footprint-aware cache compaction (ProofCache::gc): after a
  /// close-session and at shutdown, drop cache entries whose recorded
  /// program identity matches nothing this daemon run has seen.
  bool AutoGc = false;
  /// Durable verdict journal (daemon/journal.h; requires CacheDir — it
  /// lives at `<cache-dir>/verdicts.journal`): session verdicts are
  /// journaled fsync-first, and start() replays them, re-validating every
  /// Proved verdict through the certificate checker before re-admission.
  bool Journal = true;
  /// Connection cap (0 = unlimited). A client accepted beyond the cap is
  /// answered with one structured overloaded frame and disconnected; no
  /// handler thread is spawned for it.
  unsigned MaxClients = 0;
  /// Admission gate on the verifying verbs (0 = unlimited): at most this
  /// many verify/open-session/edit requests run concurrently; the rest
  /// get the structured overloaded frame without being admitted.
  unsigned MaxInFlight = 0;
  /// Per-client IO progress timeout in ms (0 = none; see
  /// UnixSocket::setIoTimeoutMs): bounds slow-loris senders and stalled
  /// readers without ever disconnecting a merely idle client.
  uint64_t IoTimeoutMs = 0;
  /// Retry-after hint carried in overloaded responses.
  uint64_t RetryAfterMs = 100;
  /// Shutdown drain grace in ms (0 = wait indefinitely): in-flight
  /// requests still running after this long are cancelled through their
  /// CancelFlags (they answer with Aborted statuses, which are never
  /// cached) so SIGTERM always terminates.
  uint64_t DrainCancelMs = 0;
  /// Chaos harness hook: a fault plan attached to every accepted client
  /// socket (sites "sock.read"/"sock.write"). Must outlive the daemon.
  const FaultPlan *SockFaults = nullptr;
};

/// The daemon. start() binds the socket; serve() (or serveInBackground())
/// runs the accept loop until a shutdown request or stop().
class ReflexDaemon {
public:
  static Result<std::unique_ptr<ReflexDaemon>> start(const DaemonOptions &O);
  ~ReflexDaemon();

  ReflexDaemon(const ReflexDaemon &) = delete;
  ReflexDaemon &operator=(const ReflexDaemon &) = delete;

  const std::string &socketPath() const { return Opts.SocketPath; }

  /// Runs the accept loop on the calling thread until shutdown: accepts
  /// clients, spawns one handler thread each, and on shutdown drains
  /// in-flight requests, disconnects idle clients, joins every handler,
  /// and (with AutoGc) compacts the proof cache.
  void serve();

  /// serve() on an internal thread; returns immediately. The destructor
  /// (or stop() + the destructor) joins it.
  void serveInBackground();

  /// Requests shutdown from any thread: no new clients are accepted and
  /// serve() returns once in-flight requests drain. Idempotent.
  void stop();

private:
  explicit ReflexDaemon(DaemonOptions O) : Opts(std::move(O)) {}

  /// One open session: the parsed program, the warm share, and the
  /// incremental verifier's verdict store. Ops on one session serialize
  /// on Mu; the map lock (SessionsMu) is never held across verification.
  struct Session {
    std::mutex Mu;
    std::string Source;
    ProgramPtr Prog;
    /// Request options fixed at open-session (a session is one
    /// (program-lineage, options) pair; change options by reopening).
    unsigned Jobs = 0;
    unsigned Retries = 0;
    bool SharedCaches = true;
    bool UseProofCache = true;
    VerifyOptions Verify;
    /// Warm frozen abstraction + shared cache tiers; replaced wholesale
    /// when an edit changes the program (the old tiers reference the old
    /// frozen base).
    std::unique_ptr<VerifyShare> Share;
    std::unique_ptr<IncrementalVerifier> Inc;
    uint64_t LastUsed = 0;
  };

  void handleClient(std::shared_ptr<UnixSocket> Sock);
  std::string handleRequest(const std::string &Frame, UnixSocket &Sock);

  std::string doVerify(const DaemonRequest &R,
                       const std::shared_ptr<CancelFlag> &Cancel);
  std::string doOpenSession(const DaemonRequest &R,
                            const std::shared_ptr<CancelFlag> &Cancel);
  std::string doEdit(const DaemonRequest &R,
                     const std::shared_ptr<CancelFlag> &Cancel);
  std::string doCloseSession(const DaemonRequest &R);
  std::string doStats();
  std::string doCacheGc();
  std::string doShutdown();

  /// Rebuilds sessions from the journal replay at start(): re-decodes
  /// each snapshot frame, cross-checks the program identity, re-validates
  /// every Proved verdict through the certificate checker, and seeds the
  /// survivors into a fresh IncrementalVerifier — so the first request
  /// after a crash is served from warm state, never from trust.
  void recoverFromJournal(const JournalReplay &Replay);
  /// Journals \p Name's current state: one session snapshot (the complete
  /// re-decodable open-session frame) and one record per journalable
  /// verdict of \p Rep (Proved with a canonical certificate on file, or
  /// Unknown). Append failures are counted, never fatal.
  void journalSessionState(const std::string &Name, const Session &Sess,
                           const DaemonRequest &R,
                           const VerificationReport &Rep);

  /// Loads a request's program from inline text or path; records its
  /// declaration identity for cache GC liveness.
  Result<ProgramPtr> loadRequestProgram(const DaemonRequest &R,
                                        std::string *SourceOut = nullptr);
  SchedulerOptions schedulerOptionsFor(const DaemonRequest &R) const;
  void noteProgramSeen(const Program &P);
  /// Accumulates per-engine verdict counts from a finished report.
  void noteEnginesServed(const VerificationReport &Rep);
  ProofCache::GcOutcome runGc();
  void recordVerb(const std::string &Verb, double Millis, bool Ok);
  /// Renders a GC outcome as the protocol's gc-result fields.
  static void writeGcOutcome(JsonWriter &W, const ProofCache::GcOutcome &G);

  DaemonOptions Opts;
  UnixListener Listener;
  std::unique_ptr<ProofCache> Cache;
  std::unique_ptr<VerdictJournal> Journal;

  std::atomic<bool> Stopping{false};
  std::thread ServeThread; ///< serveInBackground only

  std::mutex ClientsMu;
  std::vector<std::thread> ClientThreads;
  std::vector<std::weak_ptr<UnixSocket>> ClientSocks;
  /// Live (not yet exited) client connections, against MaxClients.
  std::atomic<unsigned> LiveClients{0};
  /// Concurrently verifying requests, against MaxInFlight.
  std::atomic<unsigned> InFlightVerifies{0};
  std::atomic<uint64_t> ShedConnections{0};
  std::atomic<uint64_t> ShedRequests{0};
  uint64_t ClientSeq = 0; ///< accept-order tag for per-socket fault plans

  /// In-flight request drain: shutdown waits for this to reach zero
  /// before disconnecting idle clients. ActiveCancels holds the in-flight
  /// requests' cancellation tokens so a bounded drain (DrainCancelMs) can
  /// fire them.
  std::mutex ActiveMu;
  std::condition_variable ActiveCv;
  unsigned ActiveRequests = 0;
  std::vector<std::weak_ptr<CancelFlag>> ActiveCancels;

  std::mutex SessionsMu;
  std::map<std::string, std::shared_ptr<Session>> Sessions;
  std::atomic<uint64_t> UseTick{0};

  /// Metrics + GC liveness, one lock: per-verb counts and log-scale
  /// latency histograms (<1, <10, <100, <1000, >=1000 ms), error count,
  /// incremental-reuse totals, and every program identity seen this run.
  std::mutex StatsMu;
  std::chrono::steady_clock::time_point StartedAt;
  uint64_t RequestsServed = 0;
  uint64_t RequestErrors = 0;
  uint64_t TotalReused = 0;
  uint64_t TotalFootprintReused = 0;
  uint64_t TotalReverified = 0;
  /// Path-granular footprint reuse (verifier.h report counters): reuses
  /// only the path tier could serve, and reuse checks that fell back.
  uint64_t TotalPathHits = 0;
  uint64_t TotalPathFallbacks = 0;
  std::map<std::string, uint64_t> VerbCounts;
  std::map<std::string, std::array<uint64_t, 5>> VerbLatency;
  /// Verdicts served per engine ("induction"/"pdr"), across every verify,
  /// open-session, and edit report this run — the portfolio's win tally.
  std::map<std::string, uint64_t> EngineServed;
  /// Incremental solver-core work totals (verifier.h report counters),
  /// accumulated from every report the daemon produces; reported by the
  /// stats verb's "solver" object.
  uint64_t TotalSolverQueries = 0;
  uint64_t TotalSolverMemoHits = 0;
  uint64_t TotalSolverAssumptionChecks = 0;
  uint64_t TotalSolverTrailUndos = 0;
  uint64_t TotalSolverReasonLogBytes = 0;
  std::set<std::string> KnownDeclIds;
  /// Journal accounting (under StatsMu; reported by the stats verb).
  uint64_t JournalSessionsRecovered = 0;
  uint64_t JournalVerdictsRecovered = 0;
  /// Journaled verdicts replay *refused* to re-admit: checker rejection,
  /// missing property, identity mismatch, undecodable frame. Each costs a
  /// re-verification on demand, never a wrong verdict.
  uint64_t JournalVerdictsRejected = 0;
  uint64_t JournalSessionsRejected = 0;
  uint64_t JournalRecordsDiscarded = 0;
  uint64_t JournalBytesTruncated = 0;
  uint64_t JournalAppendErrors = 0;
  double JournalRecoveryMillis = 0;
};

} // namespace reflex

#endif // REFLEX_DAEMON_DAEMON_H
