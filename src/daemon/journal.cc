//===- daemon/journal.cc - Durable verdict journal ------------------------===//

#include "daemon/journal.h"

#include "support/json.h"
#include "support/sha256.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace reflex {

namespace {

constexpr const char *RecordMagic = "RJ1";

std::string encodeVerdictPayload(const std::string &Session,
                                 const JournalVerdict &V) {
  JsonWriter W;
  W.beginObject();
  W.field("type", "verdict");
  W.field("session", Session);
  W.field("property", V.PropertyText);
  W.field("name", V.PropertyName);
  W.field("status", verifyStatusName(V.Status));
  W.field("reason", V.Reason);
  W.key("millis");
  W.value(V.Millis);
  W.field("canonical_cert", V.CanonicalCert);
  W.field("cert_json", V.CertJson);
  W.field("served_by", V.ServedBy);
  W.field("footprint_collected", V.FootprintCollected);
  W.field("footprint_all", V.FootprintAll);
  W.key("footprint");
  W.beginArray();
  for (const std::string &H : V.Footprint)
    W.value(H);
  W.endArray();
  W.endObject();
  return W.take();
}

std::string encodeSessionPayload(const std::string &Name,
                                 const std::string &OpenFrame,
                                 const std::string &DeclSha256) {
  JsonWriter W;
  W.beginObject();
  W.field("type", "session");
  W.field("session", Name);
  W.field("frame", OpenFrame);
  W.field("decl_sha256", DeclSha256);
  W.endObject();
  return W.take();
}

std::string encodeClosePayload(const std::string &Name) {
  JsonWriter W;
  W.beginObject();
  W.field("type", "close");
  W.field("session", Name);
  W.endObject();
  return W.take();
}

/// Decodes and applies one checksum-valid payload to the replay state.
/// Unknown types and dangling verdicts are ignored rather than treated
/// as tears: they are forward-compatible noise, not damage.
bool applyPayload(const std::string &Payload, JournalReplay &R) {
  Result<JsonValue> Doc = parseJson(Payload);
  if (!Doc.ok() || !Doc->isObject())
    return false;
  std::string Type = Doc->getString("type");
  std::string Session = Doc->getString("session");
  if (Type.empty() || Session.empty())
    return false;

  auto Find = [&R](const std::string &Name) {
    return std::find_if(R.Sessions.begin(), R.Sessions.end(),
                        [&Name](const JournalSession &S) {
                          return S.Name == Name;
                        });
  };

  if (Type == "session") {
    JournalSession S;
    S.Name = Session;
    S.OpenFrame = Doc->getString("frame");
    S.DeclSha256 = Doc->getString("decl_sha256");
    if (S.OpenFrame.empty())
      return false;
    auto It = Find(Session);
    if (It != R.Sessions.end())
      *It = std::move(S); // new lineage: verdicts below the snapshot reset
    else
      R.Sessions.push_back(std::move(S));
    return true;
  }
  if (Type == "close") {
    auto It = Find(Session);
    if (It != R.Sessions.end())
      R.Sessions.erase(It);
    return true;
  }
  if (Type == "verdict") {
    auto It = Find(Session);
    if (It == R.Sessions.end())
      return true; // verdict for a closed/unknown session: stale, skip
    JournalVerdict V;
    V.PropertyText = Doc->getString("property");
    V.PropertyName = Doc->getString("name");
    std::string Status = Doc->getString("status");
    if (Status == "Proved")
      V.Status = VerifyStatus::Proved;
    else if (Status == "Unknown")
      V.Status = VerifyStatus::Unknown;
    else
      return false; // only verdict statuses are ever journaled
    V.Reason = Doc->getString("reason");
    V.Millis = Doc->getNumber("millis");
    V.CanonicalCert = Doc->getString("canonical_cert");
    V.CertJson = Doc->getString("cert_json");
    V.ServedBy = Doc->getString("served_by");
    V.FootprintCollected = Doc->getBool("footprint_collected");
    V.FootprintAll = Doc->getBool("footprint_all");
    if (const JsonValue *FP = Doc->get("footprint"); FP && FP->isArray())
      for (const JsonValue &H : FP->items())
        if (H.isString())
          V.Footprint.push_back(H.stringValue());
    if (V.PropertyText.empty() ||
        (V.Status == VerifyStatus::Proved && V.CanonicalCert.empty()))
      return false;
    It->Verdicts[V.PropertyText] = std::move(V);
    return true;
  }
  return true; // unknown record type: forward-compatible, skip
}

/// Splits one "RJ1 <sha> <payload>" line; verifies the checksum.
bool decodeRecordLine(std::string_view Line, std::string *PayloadOut) {
  size_t Sp1 = Line.find(' ');
  if (Sp1 == std::string_view::npos ||
      Line.substr(0, Sp1) != RecordMagic)
    return false;
  size_t Sp2 = Line.find(' ', Sp1 + 1);
  if (Sp2 == std::string_view::npos)
    return false;
  std::string_view Sha = Line.substr(Sp1 + 1, Sp2 - Sp1 - 1);
  std::string_view Payload = Line.substr(Sp2 + 1);
  if (Sha.size() != 64 || sha256Hex(Payload) != Sha)
    return false;
  PayloadOut->assign(Payload);
  return true;
}

} // namespace

std::string VerdictJournal::encodeRecord(const std::string &PayloadJson) {
  return std::string(RecordMagic) + " " + sha256Hex(PayloadJson) + " " +
         PayloadJson;
}

VerdictJournal::~VerdictJournal() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd >= 0)
    ::close(Fd);
}

Result<std::unique_ptr<VerdictJournal>>
VerdictJournal::open(const std::string &Path, JournalReplay *Replay) {
  auto J = std::unique_ptr<VerdictJournal>(new VerdictJournal(Path));

  // Replay. The file is read in full; records apply in order until the
  // first damaged line. Everything at and past the tear — a half-written
  // record from a crash mid-append, or bytes some other process mangled —
  // is discarded and *cut off the file*, so the journal is well-formed
  // again before the first new append.
  std::string Bytes;
  {
    std::ifstream In(Path, std::ios::binary);
    if (In) {
      std::ostringstream SS;
      SS << In.rdbuf();
      Bytes = SS.str();
    }
  }
  size_t Good = 0; // byte offset past the last valid record
  size_t Pos = 0;
  bool Torn = false;
  while (Pos < Bytes.size()) {
    size_t NL = Bytes.find('\n', Pos);
    if (NL == std::string::npos) {
      Torn = true; // no newline: the classic torn tail
      break;
    }
    std::string Payload;
    if (!decodeRecordLine(
            std::string_view(Bytes).substr(Pos, NL - Pos), &Payload) ||
        !applyPayload(Payload, *Replay)) {
      Torn = true;
      break;
    }
    ++Replay->RecordsReplayed;
    Pos = NL + 1;
    Good = Pos;
  }
  if (Torn) {
    Replay->BytesTruncated = Bytes.size() - Good;
    // Count the discarded record-shaped chunks for diagnostics.
    for (size_t P = Good; P < Bytes.size();) {
      ++Replay->RecordsDiscarded;
      size_t NL = Bytes.find('\n', P);
      if (NL == std::string::npos)
        break;
      P = NL + 1;
    }
  }

  // Compact: rewrite the surviving state as one snapshot + latest
  // verdicts per session, atomically (write + fsync + rename — the same
  // publish discipline as cache entries). This both truncates the torn
  // tail and bounds growth across restarts.
  {
    std::string Out;
    for (const JournalSession &S : Replay->Sessions) {
      Out += encodeRecord(
                 encodeSessionPayload(S.Name, S.OpenFrame, S.DeclSha256)) +
             "\n";
      for (const auto &[Text, V] : S.Verdicts)
        Out += encodeRecord(encodeVerdictPayload(S.Name, V)) + "\n";
    }
    std::string Tmp = Path + ".tmp";
    int TFd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (TFd < 0)
      return Error("cannot write journal: " + Tmp);
    size_t Off = 0;
    while (Off < Out.size()) {
      ssize_t N = ::write(TFd, Out.data() + Off, Out.size() - Off);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        ::close(TFd);
        return Error("journal write error: " + Tmp);
      }
      Off += size_t(N);
    }
    if (::fsync(TFd) != 0 || ::close(TFd) != 0)
      return Error("journal fsync error: " + Tmp);
    if (std::rename(Tmp.c_str(), Path.c_str()) != 0)
      return Error("cannot publish journal: " + Path);
  }

  J->Fd = ::open(Path.c_str(), O_WRONLY | O_APPEND, 0644);
  if (J->Fd < 0)
    return Error("cannot open journal for append: " + Path);
  return J;
}

Result<void> VerdictJournal::append(const std::string &PayloadJson) {
  std::string Line = encodeRecord(PayloadJson) + "\n";
  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd < 0)
    return Error("journal is closed");
  size_t Off = 0;
  while (Off < Line.size()) {
    ssize_t N = ::write(Fd, Line.data() + Off, Line.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Error("journal append failed: " + Path);
    }
    Off += size_t(N);
  }
  // Commit = fsync: the record is durable before the daemon's response
  // leaves the process. A crash can tear at most the line being written,
  // and the torn tail is truncated at the next replay.
  if (::fsync(Fd) != 0)
    return Error("journal fsync failed: " + Path);
  return {};
}

Result<void> VerdictJournal::appendSession(const std::string &Name,
                                           const std::string &OpenFrame,
                                           const std::string &DeclSha256) {
  return append(encodeSessionPayload(Name, OpenFrame, DeclSha256));
}

Result<void> VerdictJournal::appendVerdict(const std::string &Session,
                                           const JournalVerdict &V) {
  return append(encodeVerdictPayload(Session, V));
}

Result<void> VerdictJournal::appendClose(const std::string &Session) {
  return append(encodeClosePayload(Session));
}

uint64_t VerdictJournal::sizeBytes() const {
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0)
    return 0;
  return uint64_t(St.st_size);
}

} // namespace reflex
