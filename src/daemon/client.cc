//===- daemon/client.cc - reflexd client library --------------------------===//

#include "daemon/client.h"

#include "daemon/protocol.h"

namespace reflex {

Result<DaemonClient> DaemonClient::connect(const std::string &SocketPath) {
  Result<UnixSocket> S = UnixSocket::connectTo(SocketPath);
  if (!S.ok())
    return Error(S.error());
  return DaemonClient(S.take());
}

Result<std::string> DaemonClient::callRaw(const std::string &RequestJson) {
  if (Result<void> Sent = Sock.sendAll(RequestJson + "\n"); !Sent.ok())
    return Error(Sent.error());
  std::string Frame;
  Result<bool> Got = Sock.readLine(Frame, DaemonMaxFrameBytes);
  if (!Got.ok())
    return Error(Got.error());
  if (!*Got)
    return Error("daemon closed the connection without answering");
  return Frame;
}

Result<JsonValue> DaemonClient::call(const std::string &RequestJson) {
  Result<std::string> Frame = callRaw(RequestJson);
  if (!Frame.ok())
    return Error(Frame.error());
  Result<JsonValue> Doc = parseJson(*Frame);
  if (!Doc.ok())
    return Error("unparsable response frame: " + Doc.error());
  return Doc;
}

} // namespace reflex
