//===- daemon/client.cc - reflexd client library --------------------------===//

#include "daemon/client.h"

#include "daemon/protocol.h"
#include "support/faultinject.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace reflex {

Result<DaemonClient> DaemonClient::connect(const std::string &SocketPath) {
  Result<UnixSocket> S = UnixSocket::connectTo(SocketPath);
  if (!S.ok())
    return Error(S.error());
  return DaemonClient(S.take());
}

Result<std::string> DaemonClient::callRaw(const std::string &RequestJson) {
  if (Result<void> Sent = Sock.sendAll(RequestJson + "\n"); !Sent.ok())
    return Error(Sent.error());
  std::string Frame;
  Result<bool> Got = Sock.readLine(Frame, DaemonMaxFrameBytes);
  if (!Got.ok())
    return Error(Got.error());
  if (!*Got)
    return Error("daemon closed the connection without answering");
  return Frame;
}

Result<JsonValue> DaemonClient::call(const std::string &RequestJson) {
  Result<std::string> Frame = callRaw(RequestJson);
  if (!Frame.ok())
    return Error(Frame.error());
  Result<JsonValue> Doc = parseJson(*Frame);
  if (!Doc.ok())
    return Error("unparsable response frame: " + Doc.error());
  return Doc;
}

Result<JsonValue>
DaemonClient::callWithRetry(const std::string &SocketPath,
                            const std::string &RequestJson,
                            const DaemonRetryOptions &RO,
                            unsigned *AttemptsOut) {
  // Seeded jitter: FaultPlan::arg is a pure hash of (seed, site, key), so
  // a client's whole backoff schedule is a deterministic function of its
  // seed — reproducible in tests, decorrelated across seeds in a fleet.
  FaultPlan Jitter(RO.Seed, 0); // zero Permille: only arg(), no faults
  unsigned MaxAttempts = std::max(1u, RO.MaxAttempts);
  std::string LastError = "daemon overloaded";

  for (unsigned Attempt = 0; Attempt < MaxAttempts; ++Attempt) {
    if (AttemptsOut)
      *AttemptsOut = Attempt + 1;
    uint64_t Hint = 0;
    bool Retryable = false;
    Result<DaemonClient> C = connect(SocketPath);
    if (C.ok()) {
      Result<JsonValue> Doc = C->call(RequestJson);
      if (Doc.ok()) {
        if (!Doc->getBool("overloaded"))
          return Doc; // the caller's response, ok:true or a hard error
        Hint = uint64_t(Doc->getNumber("retry_after_ms"));
        LastError = Doc->getString("error", "daemon overloaded");
        Retryable = true;
      } else {
        LastError = Doc.error();
      }
    } else {
      // A supervised daemon may be mid-restart: its socket briefly does
      // not exist. That window is exactly what the backoff is for.
      LastError = C.error();
      Retryable = true;
    }
    if (!Retryable || Attempt + 1 == MaxAttempts)
      break;
    uint64_t Exp = RO.BaseBackoffMs;
    for (unsigned I = 0; I < Attempt && Exp < RO.BackoffCapMs; ++I)
      Exp *= 2;
    uint64_t Span = std::min(std::max(Exp, Hint),
                             std::max(RO.BackoffCapMs, Hint));
    uint64_t Wait =
        Span + Jitter.arg("client.retry", std::to_string(Attempt),
                          Span / 2 + 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(Wait));
  }
  return Error(LastError);
}

} // namespace reflex
