//===- daemon/client.h - reflexd client library -----------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the reflexd protocol (daemon/protocol.h): connect
/// to the daemon's socket, send one JSON frame per request, read one
/// frame back. Used by `reflex client`, the daemon tests, and
/// bench_daemon; anything that can speak newline-delimited JSON over an
/// AF_UNIX socket interoperates.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_DAEMON_CLIENT_H
#define REFLEX_DAEMON_CLIENT_H

#include "support/json.h"
#include "support/result.h"
#include "support/socket.h"

#include <cstdint>
#include <string>

namespace reflex {

/// Backoff policy for callWithRetry. The schedule is deterministic in
/// Seed: capped exponential backoff with seeded jitter (support/
/// faultinject's pure hash supplies the randomness), never below the
/// daemon's retry_after_ms hint.
struct DaemonRetryOptions {
  unsigned MaxAttempts = 5;
  uint64_t BaseBackoffMs = 25;
  uint64_t BackoffCapMs = 1000;
  /// Jitter seed. Callers running many concurrent clients should give
  /// each a distinct seed so their retries do not stampede in lockstep.
  uint64_t Seed = 0;
};

class DaemonClient {
public:
  /// Connects to the daemon listening at \p SocketPath.
  static Result<DaemonClient> connect(const std::string &SocketPath);

  /// One logical request with overload retries: connect, send, read; on a
  /// structured overloaded response ({"overloaded":true}), back off
  /// (seeded jitter, honoring the retry_after_ms hint) and try again on a
  /// *fresh* connection — the daemon sheds either by answering on a live
  /// connection (in-flight cap) or by answering-then-closing (connection
  /// cap), and reconnecting covers both. Connect failures are retried on
  /// the same schedule (a supervised daemon may be mid-restart). Errors
  /// when attempts are exhausted or on a non-retryable transport failure.
  /// \p AttemptsOut (optional) receives the number of attempts used.
  static Result<JsonValue> callWithRetry(const std::string &SocketPath,
                                         const std::string &RequestJson,
                                         const DaemonRetryOptions &RO = {},
                                         unsigned *AttemptsOut = nullptr);

  /// One round-trip: sends \p RequestJson as a frame, reads the response
  /// frame. Errors on transport failure (including the daemon closing
  /// the connection without answering).
  Result<std::string> callRaw(const std::string &RequestJson);

  /// callRaw + parse. The response object's "ok"/"error" fields are the
  /// caller's to inspect — a structured daemon error is a successful
  /// round-trip here.
  Result<JsonValue> call(const std::string &RequestJson);

  UnixSocket &socket() { return Sock; }

private:
  explicit DaemonClient(UnixSocket S) : Sock(std::move(S)) {}

  UnixSocket Sock;
};

} // namespace reflex

#endif // REFLEX_DAEMON_CLIENT_H
