//===- daemon/client.h - reflexd client library -----------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the reflexd protocol (daemon/protocol.h): connect
/// to the daemon's socket, send one JSON frame per request, read one
/// frame back. Used by `reflex client`, the daemon tests, and
/// bench_daemon; anything that can speak newline-delimited JSON over an
/// AF_UNIX socket interoperates.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_DAEMON_CLIENT_H
#define REFLEX_DAEMON_CLIENT_H

#include "support/json.h"
#include "support/result.h"
#include "support/socket.h"

#include <string>

namespace reflex {

class DaemonClient {
public:
  /// Connects to the daemon listening at \p SocketPath.
  static Result<DaemonClient> connect(const std::string &SocketPath);

  /// One round-trip: sends \p RequestJson as a frame, reads the response
  /// frame. Errors on transport failure (including the daemon closing
  /// the connection without answering).
  Result<std::string> callRaw(const std::string &RequestJson);

  /// callRaw + parse. The response object's "ok"/"error" fields are the
  /// caller's to inspect — a structured daemon error is a successful
  /// round-trip here.
  Result<JsonValue> call(const std::string &RequestJson);

  UnixSocket &socket() { return Sock; }

private:
  explicit DaemonClient(UnixSocket S) : Sock(std::move(S)) {}

  UnixSocket Sock;
};

} // namespace reflex

#endif // REFLEX_DAEMON_CLIENT_H
