//===- daemon/daemon.cc - reflexd, the verification daemon ----------------===//

#include "daemon/daemon.h"

#include "reflex/reflex.h"
#include "support/timer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <sys/socket.h>

namespace reflex {

namespace {

using SteadyClock = std::chrono::steady_clock;

double millisSince(SteadyClock::time_point T0) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - T0)
      .count();
}

/// Watches one in-flight request from a side thread: fires \p Cancel the
/// moment the client's socket reports the peer gone, or once the
/// per-request deadline passes. The verification batch polls the flag
/// cooperatively (SchedulerOptions::Cancel), so an abandoned request
/// stops consuming workers within a poll interval instead of running to
/// completion for nobody.
class RequestWatch {
public:
  RequestWatch(const UnixSocket &Sock, std::shared_ptr<CancelFlag> Cancel,
               uint64_t TimeoutMs)
      : T([this, &Sock, Cancel = std::move(Cancel), TimeoutMs] {
          SteadyClock::time_point Start = SteadyClock::now();
          std::unique_lock<std::mutex> Lock(Mu);
          while (!Done) {
            if (Sock.peerClosed() ||
                (TimeoutMs && millisSince(Start) > double(TimeoutMs))) {
              Cancel->cancel();
              return;
            }
            // Interruptible poll: the destructor must not be stuck behind
            // a sleep — the watcher's teardown is on every request's
            // response latency path.
            Cv.wait_for(Lock, std::chrono::milliseconds(10));
          }
        }) {}

  ~RequestWatch() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Done = true;
    }
    Cv.notify_all();
    T.join();
  }

private:
  std::mutex Mu;
  std::condition_variable Cv;
  bool Done = false;
  std::thread T;
};

size_t latencyBucket(double Millis) {
  if (Millis < 1)
    return 0;
  if (Millis < 10)
    return 1;
  if (Millis < 100)
    return 2;
  if (Millis < 1000)
    return 3;
  return 4;
}

} // namespace

Result<std::unique_ptr<ReflexDaemon>>
ReflexDaemon::start(const DaemonOptions &O) {
  if (O.SocketPath.empty())
    return Error("reflexd needs a socket path (--socket)");
  auto D = std::unique_ptr<ReflexDaemon>(new ReflexDaemon(O));
  if (!O.CacheDir.empty()) {
    Result<std::unique_ptr<ProofCache>> C = ProofCache::open(O.CacheDir);
    if (!C.ok())
      return Error(C.error());
    D->Cache = C.take();
  }
  if (D->Cache && O.Journal) {
    // Replay + recover *before* binding the socket: the socket file is
    // the readiness signal clients (and the supervisor's smoke checks)
    // wait on, and it must not appear until recovered sessions are
    // re-validated and seeded — a client must never race recovery.
    JournalReplay Replay;
    Result<std::unique_ptr<VerdictJournal>> J = VerdictJournal::open(
        (std::filesystem::path(O.CacheDir) / "verdicts.journal").string(),
        &Replay);
    if (!J.ok())
      return Error(J.error());
    D->Journal = J.take();
    D->recoverFromJournal(Replay);
  }
  Result<UnixListener> L = UnixListener::bindAt(O.SocketPath);
  if (!L.ok())
    return Error(L.error());
  D->Listener = L.take();
  D->StartedAt = SteadyClock::now();
  return D;
}

void ReflexDaemon::recoverFromJournal(const JournalReplay &Replay) {
  WallTimer Timer;
  uint64_t SessionsIn = 0, SessionsBad = 0, VerdictsIn = 0, VerdictsBad = 0;

  for (const JournalSession &JS : Replay.Sessions) {
    // 1. The snapshot frame is untrusted input; put it through the same
    // decoder a live client's frame takes.
    Result<DaemonRequest> Req = decodeDaemonRequest(JS.OpenFrame);
    if (!Req.ok() || Req->Verb != "open-session" || Req->Session != JS.Name ||
        Req->ProgramText.empty()) {
      ++SessionsBad;
      VerdictsBad += JS.Verdicts.size();
      continue;
    }
    Result<ProgramPtr> P = loadProgram(Req->ProgramText, "<journal>");
    if (!P.ok()) {
      ++SessionsBad;
      VerdictsBad += JS.Verdicts.size();
      continue;
    }
    // 2. Integrity cross-check: the snapshot's recorded program identity
    // must match what its own source re-derives to.
    ProgramFingerprints Fps = ProgramFingerprints::compute(**P);
    if (ProofCache::declId(Fps.DeclFp) != JS.DeclSha256) {
      ++SessionsBad;
      VerdictsBad += JS.Verdicts.size();
      continue;
    }
    noteProgramSeen(**P);

    auto Sess = std::make_shared<Session>();
    Sess->Source = Req->ProgramText;
    Sess->Prog = P.take();
    Sess->Jobs = Req->Jobs;
    Sess->Retries = Req->Retries;
    Sess->SharedCaches = Req->SharedCaches;
    Sess->UseProofCache = Req->UseProofCache;
    Sess->Verify = Req->Verify;
    Sess->Share = std::make_unique<VerifyShare>();
    Sess->Inc = std::make_unique<IncrementalVerifier>(
        Req->Verify, Req->UseProofCache ? Cache.get() : nullptr);
    Sess->LastUsed = ++UseTick;

    // 3. Re-validate each verdict before re-admission. Unknown verdicts
    // carry no trust (reusing one is the proof cache's existing policy);
    // Proved verdicts go through the certificate checker's from-scratch
    // re-derivation — a record that passed its checksum but carries a
    // tampered certificate dies here, not in a client's hands. The
    // lazily-built session is shared across the verdicts so recovery
    // costs one abstraction build per session, not per property.
    std::unique_ptr<VerifySession> VS;
    ProverOptions RecheckOpts = proverOptions(Sess->Verify);
    std::map<std::string, PropertyResult> Seeds;
    for (const auto &[Text, V] : JS.Verdicts) {
      const Property *Prop = nullptr;
      for (const Property &Cand : Sess->Prog->Properties)
        if (Cand.str() == Text) {
          Prop = &Cand;
          break;
        }
      if (!Prop || (V.Status != VerifyStatus::Proved &&
                    V.Status != VerifyStatus::Unknown)) {
        ++VerdictsBad;
        continue;
      }
      PropertyResult R;
      R.Name = Prop->Name;
      R.Status = V.Status;
      R.Reason = V.Reason;
      R.Millis = V.Millis;
      R.ServedBy = V.ServedBy;
      R.Footprint.Collected = V.FootprintCollected;
      R.Footprint.AllHandlers = V.FootprintAll;
      // Journaled footprints use the wire encoding ("key" = all paths,
      // "key@ids" = entered paths); pre-path-granularity records decode
      // conservatively as AllPaths.
      R.Footprint.Handlers = decodeFootprintHandlers(V.Footprint);
      if (V.Status == VerifyStatus::Proved) {
        if (V.CanonicalCert.empty()) {
          ++VerdictsBad;
          continue;
        }
        // The full-recheck memo (keyed exactly like the proof cache's)
        // deduplicates across sessions recovering the same program, and
        // conversely pre-warms later cache hits on this key.
        std::string MemoKey;
        if (Cache)
          MemoKey = ProofCache::keyFor(Fps.DeclFp, *Prop, Sess->Verify) +
                    ":" + Fps.HandlersFp + ":" +
                    Cache->memoizedDigest(V.CanonicalCert);
        if (!MemoKey.empty() && Cache->fullRecheckMemoized(MemoKey)) {
          R.CertJson = V.CertJson;
        } else {
          if (!VS)
            VS = std::make_unique<VerifySession>(*Sess->Prog, Sess->Verify);
          RecheckOutcome Chk =
              checkCanonicalCertificate(VS->termContext(), *Sess->Prog,
                                        VS->behAbs(), *Prop,
                                        V.CanonicalCert, RecheckOpts);
          if (!Chk.Ok) {
            ++VerdictsBad;
            continue;
          }
          // The rederived certificate knows nothing of footprints (the
          // canonical form omits them); restore the journaled footprint
          // so the audit JSON is byte-identical to the original.
          if (V.FootprintCollected)
            Chk.Rederived.Footprint =
                V.FootprintAll ? std::vector<std::string>{"*"} : V.Footprint;
          R.CertJson = Chk.Rederived.toJson(VS->termContext());
          if (!MemoKey.empty())
            Cache->noteFullRecheckOk(MemoKey);
        }
        R.CertChecked = true;
      }
      ++VerdictsIn;
      Seeds[Text] = std::move(R);
    }
    Sess->Inc->seedVerdicts(*Sess->Prog, std::move(Seeds));

    std::lock_guard<std::mutex> Lock(SessionsMu);
    Sessions[JS.Name] = std::move(Sess);
    ++SessionsIn;
  }

  // Replay order is oldest-first; apply the same LRU bound open-session
  // enforces so recovery cannot resurrect more sessions than a live
  // daemon would hold.
  {
    std::lock_guard<std::mutex> Lock(SessionsMu);
    while (Opts.MaxSessions > 0 && Sessions.size() > Opts.MaxSessions) {
      auto Oldest = Sessions.begin();
      for (auto It = Sessions.begin(); It != Sessions.end(); ++It)
        if (It->second->LastUsed < Oldest->second->LastUsed)
          Oldest = It;
      Sessions.erase(Oldest);
      --SessionsIn;
    }
  }

  std::lock_guard<std::mutex> Lock(StatsMu);
  JournalSessionsRecovered = SessionsIn;
  JournalSessionsRejected = SessionsBad;
  JournalVerdictsRecovered = VerdictsIn;
  JournalVerdictsRejected = VerdictsBad;
  JournalRecordsDiscarded = Replay.RecordsDiscarded;
  JournalBytesTruncated = Replay.BytesTruncated;
  JournalRecoveryMillis = Timer.elapsedMillis();
}

void ReflexDaemon::journalSessionState(const std::string &Name,
                                       const Session &Sess,
                                       const DaemonRequest &R,
                                       const VerificationReport &Rep) {
  if (!Journal)
    return;
  DaemonRequest Canon = R;
  Canon.Session = Name;
  ProgramFingerprints Fps = ProgramFingerprints::compute(*Sess.Prog);
  uint64_t Errors = 0;
  if (!Journal
           ->appendSession(Name, encodeOpenSessionFrame(Canon, Sess.Source),
                           ProofCache::declId(Fps.DeclFp))
           .ok())
    ++Errors;
  // Results arrive in property declaration order (the incremental
  // verifier's contract); pair them up to recover each property's text —
  // the reuse key recovery seeds under.
  size_t N = std::min(Rep.Results.size(), Sess.Prog->Properties.size());
  for (size_t I = 0; I < N; ++I) {
    const PropertyResult &PR = Rep.Results[I];
    const Property &Prop = Sess.Prog->Properties[I];
    if (PR.Status != VerifyStatus::Proved &&
        PR.Status != VerifyStatus::Unknown)
      continue; // budget statuses and Refuted are never journaled
    JournalVerdict V;
    V.PropertyText = Prop.str();
    V.PropertyName = PR.Name;
    V.Status = PR.Status;
    V.Reason = PR.Reason;
    V.Millis = PR.Millis;
    V.CertJson = PR.CertJson;
    V.ServedBy = PR.ServedBy;
    V.FootprintCollected = PR.Footprint.Collected;
    V.FootprintAll = PR.Footprint.AllHandlers;
    V.Footprint = encodeFootprintHandlers(PR.Footprint.Handlers);
    if (PR.Status == VerifyStatus::Proved) {
      // The canonical certificate (the checker's comparison target at
      // recovery) lives in the proof cache entry this verdict stored
      // into; the live certificate died with its worker session. Without
      // it the verdict cannot be re-validated, so it is not journaled —
      // a crash then costs that property one re-verification.
      if (!Cache || !Sess.UseProofCache)
        continue;
      std::optional<ProofCacheEntry> E =
          Cache->lookup(ProofCache::keyFor(Fps.DeclFp, Prop, Sess.Verify));
      if (!E || E->CanonicalCert.empty())
        continue;
      V.CanonicalCert = E->CanonicalCert;
    }
    if (!Journal->appendVerdict(Name, V).ok())
      ++Errors;
  }
  if (Errors) {
    std::lock_guard<std::mutex> Lock(StatsMu);
    JournalAppendErrors += Errors;
  }
}

ReflexDaemon::~ReflexDaemon() {
  stop();
  if (ServeThread.joinable())
    ServeThread.join();
  // serve() already joined the client threads on an orderly shutdown;
  // this covers a daemon destroyed without serve() ever running.
  std::lock_guard<std::mutex> Lock(ClientsMu);
  for (std::thread &T : ClientThreads)
    if (T.joinable())
      T.join();
}

void ReflexDaemon::stop() {
  Stopping.store(true, std::memory_order_relaxed);
  Listener.interrupt();
}

void ReflexDaemon::serveInBackground() {
  ServeThread = std::thread([this] { serve(); });
}

void ReflexDaemon::serve() {
  while (!Stopping.load(std::memory_order_relaxed)) {
    Result<UnixSocket> Client = Listener.accept();
    if (!Client.ok())
      break; // interrupted (stop/shutdown) or the listener died
    auto Sock = std::make_shared<UnixSocket>(Client.take());
    if (Opts.IoTimeoutMs)
      Sock->setIoTimeoutMs(Opts.IoTimeoutMs);
    if (Opts.SockFaults)
      Sock->setFaultPlan(Opts.SockFaults,
                         "srv#" + std::to_string(ClientSeq));
    ++ClientSeq;
    if (Opts.MaxClients &&
        LiveClients.load(std::memory_order_relaxed) >= Opts.MaxClients) {
      // Shed at the door: one structured frame, no handler thread. The
      // connection was never admitted, so the client can always retry.
      ShedConnections.fetch_add(1, std::memory_order_relaxed);
      (void)Sock->sendAll(encodeDaemonOverloaded(Opts.RetryAfterMs) + "\n");
      continue;
    }
    LiveClients.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> Lock(ClientsMu);
    ClientSocks.push_back(Sock);
    ClientThreads.emplace_back([this, Sock = std::move(Sock)] {
      handleClient(Sock);
      LiveClients.fetch_sub(1, std::memory_order_relaxed);
    });
  }

  // Drain: every request already being processed runs to completion (its
  // verdicts are real and cacheable); only then are idle connections shut
  // down so their handler threads unblock from readLine and exit. With a
  // drain grace configured, requests still running past it are cancelled
  // through their CancelFlags — they answer with Aborted statuses (never
  // cached), and shutdown always terminates.
  {
    std::unique_lock<std::mutex> Lock(ActiveMu);
    if (Opts.DrainCancelMs &&
        !ActiveCv.wait_for(Lock,
                           std::chrono::milliseconds(Opts.DrainCancelMs),
                           [this] { return ActiveRequests == 0; })) {
      for (std::weak_ptr<CancelFlag> &W : ActiveCancels)
        if (std::shared_ptr<CancelFlag> C = W.lock())
          C->cancel();
    }
    ActiveCv.wait(Lock, [this] { return ActiveRequests == 0; });
  }
  std::vector<std::thread> Threads;
  {
    std::lock_guard<std::mutex> Lock(ClientsMu);
    for (std::weak_ptr<UnixSocket> &W : ClientSocks)
      if (std::shared_ptr<UnixSocket> S = W.lock())
        ::shutdown(S->fd(), SHUT_RDWR);
    Threads.swap(ClientThreads);
    ClientSocks.clear();
  }
  for (std::thread &T : Threads)
    T.join();

  if (Opts.AutoGc && Cache)
    runGc(); // the entries' stores already fsynced; this only compacts
  Listener.close();
}

void ReflexDaemon::handleClient(std::shared_ptr<UnixSocket> Sock) {
  std::string Frame;
  for (;;) {
    Result<bool> Got = Sock->readLine(Frame, DaemonMaxFrameBytes);
    if (!Got.ok()) {
      // Truncated or oversized frame: the stream cannot be resynchronized,
      // so answer (best effort) and drop the connection.
      (void)Sock->sendAll(encodeDaemonError(Got.error()) + "\n");
      return;
    }
    if (!*Got)
      return; // clean EOF: client is done
    if (Frame.empty())
      continue; // tolerate blank keep-alive lines

    std::string Response;
    {
      std::lock_guard<std::mutex> Lock(ActiveMu);
      ++ActiveRequests;
    }
    // Everything a request can throw becomes a structured error frame —
    // one bad request must never take the daemon down.
    try {
      Response = handleRequest(Frame, *Sock);
    } catch (const std::exception &E) {
      Response = encodeDaemonError(std::string("internal error: ") + E.what());
    } catch (...) {
      Response = encodeDaemonError("internal error");
    }
    // The request stays "active" until its response is on the wire:
    // serve()'s shutdown drain waits on this count, so responses —
    // including the shutdown verb's own acknowledgment — are sent before
    // any connection is torn down.
    bool Sent = Sock->sendAll(Response + "\n").ok();
    {
      std::lock_guard<std::mutex> Lock(ActiveMu);
      --ActiveRequests;
      ActiveCv.notify_all();
    }
    if (!Sent)
      return; // client vanished mid-response
    if (Stopping.load(std::memory_order_relaxed))
      return; // shutdown verb on this connection (or a concurrent stop)
  }
}

std::string ReflexDaemon::handleRequest(const std::string &Frame,
                                        UnixSocket &Sock) {
  WallTimer Timer;
  Result<DaemonRequest> Req = decodeDaemonRequest(Frame);
  if (!Req.ok()) {
    recordVerb("invalid", Timer.elapsedMillis(), false);
    return encodeDaemonError(Req.error());
  }

  std::string Response;
  if (Req->Verb == "ping") {
    JsonWriter W;
    W.beginObject();
    W.field("ok", true);
    W.field("verb", "ping");
    W.endObject();
    Response = W.take();
  } else if (Req->Verb == "verify" || Req->Verb == "open-session" ||
             Req->Verb == "edit") {
    // Admission gate: the verifying verbs are the expensive ones, so the
    // in-flight cap applies to them alone. A rejected request was never
    // admitted — nothing was verified, nothing cached — so the client's
    // retry is always safe.
    unsigned Before = InFlightVerifies.fetch_add(1, std::memory_order_acq_rel);
    if (Opts.MaxInFlight && Before >= Opts.MaxInFlight) {
      InFlightVerifies.fetch_sub(1, std::memory_order_acq_rel);
      ShedRequests.fetch_add(1, std::memory_order_relaxed);
      recordVerb(Req->Verb, Timer.elapsedMillis(), false);
      return encodeDaemonOverloaded(Opts.RetryAfterMs);
    }
    // Exception-safe slot release: a request that throws must not consume
    // its admission slot forever (handleClient turns the throw into a
    // structured error and keeps serving).
    struct SlotGuard {
      std::atomic<unsigned> &C;
      ~SlotGuard() { C.fetch_sub(1, std::memory_order_acq_rel); }
    } Slot{InFlightVerifies};
    // Arm a cancellation token watched against client disconnect and the
    // per-request deadline, and registered for the shutdown drain's
    // bounded-grace cancellation.
    auto Cancel = std::make_shared<CancelFlag>();
    {
      std::lock_guard<std::mutex> Lock(ActiveMu);
      ActiveCancels.erase(
          std::remove_if(ActiveCancels.begin(), ActiveCancels.end(),
                         [](const std::weak_ptr<CancelFlag> &W) {
                           return W.expired();
                         }),
          ActiveCancels.end());
      ActiveCancels.push_back(Cancel);
    }
    RequestWatch Watch(Sock, Cancel, Opts.RequestTimeoutMs);
    if (Req->Verb == "verify")
      Response = doVerify(*Req, Cancel);
    else if (Req->Verb == "open-session")
      Response = doOpenSession(*Req, Cancel);
    else
      Response = doEdit(*Req, Cancel);
  } else if (Req->Verb == "close-session") {
    Response = doCloseSession(*Req);
  } else if (Req->Verb == "stats") {
    Response = doStats();
  } else if (Req->Verb == "cache-gc") {
    Response = doCacheGc();
  } else if (Req->Verb == "shutdown") {
    Response = doShutdown();
  } else {
    recordVerb("invalid", Timer.elapsedMillis(), false);
    return encodeDaemonError("unknown verb '" + Req->Verb + "'");
  }

  bool Ok = Response.rfind("{\"ok\":true", 0) == 0;
  recordVerb(Req->Verb, Timer.elapsedMillis(), Ok);
  return Response;
}

Result<ProgramPtr> ReflexDaemon::loadRequestProgram(const DaemonRequest &R,
                                                    std::string *SourceOut) {
  std::string Source = R.ProgramText;
  std::string Origin = "<request>";
  if (Source.empty() && !R.ProgramPath.empty()) {
    std::ifstream In(R.ProgramPath);
    if (!In)
      return Error("cannot open '" + R.ProgramPath + "'");
    std::ostringstream SS;
    SS << In.rdbuf();
    Source = SS.str();
    Origin = R.ProgramPath;
  }
  if (Source.empty())
    return Error("request needs a 'program' (inline source) or 'path'");
  Result<ProgramPtr> P = loadProgram(Source, Origin);
  if (!P.ok())
    return Error(P.error());
  noteProgramSeen(**P);
  if (SourceOut)
    *SourceOut = std::move(Source);
  return P;
}

SchedulerOptions
ReflexDaemon::schedulerOptionsFor(const DaemonRequest &R) const {
  SchedulerOptions S;
  S.Jobs = R.Jobs ? R.Jobs : Opts.Jobs;
  S.Retries = R.Retries;
  S.SharedCaches = R.SharedCaches;
  S.Verify = R.Verify;
  if (R.UseProofCache)
    S.Cache = Cache.get();
  return S;
}

void ReflexDaemon::noteProgramSeen(const Program &P) {
  std::string Id =
      ProofCache::declId(ProgramFingerprints::compute(P).DeclFp);
  std::lock_guard<std::mutex> Lock(StatsMu);
  KnownDeclIds.insert(std::move(Id));
}

void ReflexDaemon::noteEnginesServed(const VerificationReport &Rep) {
  std::lock_guard<std::mutex> Lock(StatsMu);
  for (const PropertyResult &R : Rep.Results)
    if (!R.ServedBy.empty())
      ++EngineServed[R.ServedBy];
  TotalSolverQueries += Rep.SolverQueries;
  TotalSolverMemoHits += Rep.SolverMemoHits;
  TotalSolverAssumptionChecks += Rep.SolverAssumptionChecks;
  TotalSolverTrailUndos += Rep.SolverTrailUndos;
  TotalSolverReasonLogBytes += Rep.SolverReasonLogBytes;
}

void ReflexDaemon::writeGcOutcome(JsonWriter &W,
                                  const ProofCache::GcOutcome &G) {
  W.field("scanned", int64_t(G.Scanned));
  W.field("dropped", int64_t(G.Dropped));
  W.field("kept", int64_t(G.Kept));
  if (G.ManifestLive)
    W.field("manifest_live", int64_t(G.ManifestLive));
  W.field("quarantine_kept", int64_t(G.QuarantineKept));
  W.field("quarantine_evicted", int64_t(G.QuarantineEvicted));
}

ProofCache::GcOutcome ReflexDaemon::runGc() {
  std::set<std::string> Live;
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    Live = KnownDeclIds;
  }
  return Cache->gc(Live);
}

void ReflexDaemon::recordVerb(const std::string &Verb, double Millis,
                              bool Ok) {
  std::lock_guard<std::mutex> Lock(StatsMu);
  ++RequestsServed;
  if (!Ok)
    ++RequestErrors;
  ++VerbCounts[Verb];
  ++VerbLatency[Verb][latencyBucket(Millis)];
}

std::string ReflexDaemon::doVerify(const DaemonRequest &R,
                                   const std::shared_ptr<CancelFlag> &Cancel) {
  Result<ProgramPtr> P = loadRequestProgram(R);
  if (!P.ok())
    return encodeDaemonError(P.error());
  SchedulerOptions S = schedulerOptionsFor(R);
  S.Cancel = Cancel;
  BatchOutcome B = verifyPrograms({P->get()}, S);
  noteEnginesServed(B.Reports[0]);

  JsonWriter W;
  W.beginObject();
  W.field("ok", true);
  W.field("verb", "verify");
  writeReportResults(W, B.Reports[0]);
  W.endObject();
  return W.take();
}

std::string
ReflexDaemon::doOpenSession(const DaemonRequest &R,
                            const std::shared_ptr<CancelFlag> &Cancel) {
  if (R.Session.empty())
    return encodeDaemonError("open-session needs a 'session' name");

  auto Sess = std::make_shared<Session>();
  Result<ProgramPtr> P = loadRequestProgram(R, &Sess->Source);
  if (!P.ok())
    return encodeDaemonError(P.error());
  Sess->Prog = P.take();
  Sess->Jobs = R.Jobs;
  Sess->Retries = R.Retries;
  Sess->SharedCaches = R.SharedCaches;
  Sess->UseProofCache = R.UseProofCache;
  Sess->Verify = R.Verify;
  Sess->Share = std::make_unique<VerifyShare>();
  Sess->Inc = std::make_unique<IncrementalVerifier>(
      R.Verify, R.UseProofCache ? Cache.get() : nullptr);
  Sess->LastUsed = ++UseTick;

  // Publish the session first (replacing any same-named predecessor),
  // then verify outside the map lock so concurrent clients in *other*
  // sessions are never stalled behind this one's initial proving.
  {
    std::lock_guard<std::mutex> Lock(SessionsMu);
    Sessions[R.Session] = Sess;
    while (Sessions.size() > Opts.MaxSessions && Opts.MaxSessions > 0) {
      auto Oldest = Sessions.end();
      for (auto It = Sessions.begin(); It != Sessions.end(); ++It)
        if (It->first != R.Session &&
            (Oldest == Sessions.end() ||
             It->second->LastUsed < Oldest->second->LastUsed))
          Oldest = It;
      if (Oldest == Sessions.end())
        break;
      // Dropping the map's reference is enough: an op still running in
      // the evicted session holds its own shared_ptr and completes.
      Sessions.erase(Oldest);
    }
  }

  std::lock_guard<std::mutex> Lock(Sess->Mu);
  DaemonRequest Base = R;
  SchedulerOptions S = schedulerOptionsFor(Base);
  S.Cancel = Cancel;
  S.Share = Sess->Share.get();
  Sess->Inc->setScheduler(S);
  IncrementalVerifier::Outcome Out = Sess->Inc->verify(*Sess->Prog);
  {
    std::lock_guard<std::mutex> StatsLock(StatsMu);
    TotalReused += Out.Reused;
    TotalFootprintReused += Out.FootprintReused;
    TotalReverified += Out.Reverified;
    TotalPathHits += Out.Report.PathHits;
    TotalPathFallbacks += Out.Report.PathFallbacks;
  }
  noteEnginesServed(Out.Report);
  // Durability point: the session and its verdicts are journaled (each
  // record fsynced) before the response leaves the daemon, so any verdict
  // a client has seen survives a crash.
  journalSessionState(R.Session, *Sess, Base, Out.Report);

  JsonWriter W;
  W.beginObject();
  W.field("ok", true);
  W.field("verb", "open-session");
  W.field("session", R.Session);
  writeReportResults(W, Out.Report);
  W.field("reused", int64_t(Out.Reused));
  W.field("footprint_reused", int64_t(Out.FootprintReused));
  W.field("reverified", int64_t(Out.Reverified));
  W.field("cache_hits", int64_t(Out.CacheHits));
  W.endObject();
  return W.take();
}

std::string ReflexDaemon::doEdit(const DaemonRequest &R,
                                 const std::shared_ptr<CancelFlag> &Cancel) {
  if (R.Session.empty())
    return encodeDaemonError("edit needs a 'session' name");
  std::shared_ptr<Session> Sess;
  {
    std::lock_guard<std::mutex> Lock(SessionsMu);
    auto It = Sessions.find(R.Session);
    if (It == Sessions.end())
      return encodeDaemonError("no open session named '" + R.Session +
                               "' (opened sessions are bounded by "
                               "--max-sessions and may have been evicted)");
    Sess = It->second;
  }

  std::lock_guard<std::mutex> Lock(Sess->Mu);
  Sess->LastUsed = ++UseTick;
  bool SourceChanged = false;
  if (!R.ProgramText.empty() || !R.ProgramPath.empty()) {
    std::string Source;
    DaemonRequest Load = R;
    Result<ProgramPtr> P = loadRequestProgram(Load, &Source);
    if (!P.ok())
      return encodeDaemonError(P.error());
    SourceChanged = Source != Sess->Source;
    if (SourceChanged) {
      // The program changed: the warm frozen abstraction and both shared
      // cache tiers reference the old program's terms, so replace the
      // share before the old Program dies. The incremental verifier's
      // verdict store survives — it holds only strings and footprints,
      // and the footprint comparison against the new fingerprints is
      // exactly what decides which verdicts live on.
      Sess->Share = std::make_unique<VerifyShare>();
      Sess->Prog = P.take();
      Sess->Source = std::move(Source);
    }
  }

  DaemonRequest Base;
  Base.Jobs = Sess->Jobs;
  Base.Retries = Sess->Retries;
  Base.SharedCaches = Sess->SharedCaches;
  Base.UseProofCache = Sess->UseProofCache;
  Base.Verify = Sess->Verify;
  SchedulerOptions S = schedulerOptionsFor(Base);
  S.Cancel = Cancel;
  S.Share = Sess->Share.get();
  Sess->Inc->setScheduler(S);
  IncrementalVerifier::Outcome Out = Sess->Inc->verify(*Sess->Prog);
  {
    std::lock_guard<std::mutex> StatsLock(StatsMu);
    TotalReused += Out.Reused;
    TotalFootprintReused += Out.FootprintReused;
    TotalReverified += Out.Reverified;
    TotalPathHits += Out.Report.PathHits;
    TotalPathFallbacks += Out.Report.PathFallbacks;
  }
  noteEnginesServed(Out.Report);
  // Re-journal the session wholesale: a snapshot record replaces the
  // previous lineage at replay, so post-edit verdicts — including the
  // footprint-reused ones — are what a restart recovers. An edit that
  // changed nothing and re-verified nothing is exactly the state the
  // journal already holds, so the watch-mode tick (the warm re-verify
  // hot path) pays no fsyncs.
  if (SourceChanged || Out.Reverified > 0)
    journalSessionState(R.Session, *Sess, Base, Out.Report);

  JsonWriter W;
  W.beginObject();
  W.field("ok", true);
  W.field("verb", "edit");
  W.field("session", R.Session);
  writeReportResults(W, Out.Report);
  W.field("reused", int64_t(Out.Reused));
  W.field("footprint_reused", int64_t(Out.FootprintReused));
  W.field("reverified", int64_t(Out.Reverified));
  W.field("cache_hits", int64_t(Out.CacheHits));
  W.endObject();
  return W.take();
}

std::string ReflexDaemon::doCloseSession(const DaemonRequest &R) {
  if (R.Session.empty())
    return encodeDaemonError("close-session needs a 'session' name");
  bool Existed = false;
  {
    std::lock_guard<std::mutex> Lock(SessionsMu);
    Existed = Sessions.erase(R.Session) != 0;
  }
  if (Existed && Journal && !Journal->appendClose(R.Session).ok()) {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++JournalAppendErrors;
  }
  JsonWriter W;
  W.beginObject();
  W.field("ok", true);
  W.field("verb", "close-session");
  W.field("session", R.Session);
  W.field("closed", Existed);
  if (Opts.AutoGc && Cache) {
    ProofCache::GcOutcome G = runGc();
    W.key("gc");
    W.beginObject();
    writeGcOutcome(W, G);
    W.endObject();
  }
  W.endObject();
  return W.take();
}

std::string ReflexDaemon::doStats() {
  size_t LiveSessions = 0;
  {
    std::lock_guard<std::mutex> Lock(SessionsMu);
    LiveSessions = Sessions.size();
  }

  JsonWriter W;
  W.beginObject();
  W.field("ok", true);
  W.field("verb", "stats");
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    W.key("uptime_ms");
    W.value(millisSince(StartedAt));
    W.field("requests", int64_t(RequestsServed));
    W.field("errors", int64_t(RequestErrors));
    W.field("sessions", int64_t(LiveSessions));
    W.field("known_programs", int64_t(KnownDeclIds.size()));
    W.field("reused", int64_t(TotalReused));
    W.field("footprint_reused", int64_t(TotalFootprintReused));
    W.field("path_hits", int64_t(TotalPathHits));
    W.field("path_fallbacks", int64_t(TotalPathFallbacks));
    W.field("reverified", int64_t(TotalReverified));
    W.key("shed");
    W.beginObject();
    W.field("connections",
            int64_t(ShedConnections.load(std::memory_order_relaxed)));
    W.field("requests",
            int64_t(ShedRequests.load(std::memory_order_relaxed)));
    W.endObject();
    if (Journal) {
      W.key("journal");
      W.beginObject();
      W.field("path", Journal->path());
      W.field("size_bytes", int64_t(Journal->sizeBytes()));
      W.field("sessions_recovered", int64_t(JournalSessionsRecovered));
      W.field("sessions_rejected", int64_t(JournalSessionsRejected));
      W.field("verdicts_recovered", int64_t(JournalVerdictsRecovered));
      W.field("verdicts_rejected", int64_t(JournalVerdictsRejected));
      W.field("records_discarded", int64_t(JournalRecordsDiscarded));
      W.field("bytes_truncated", int64_t(JournalBytesTruncated));
      W.field("append_errors", int64_t(JournalAppendErrors));
      W.key("recovery_millis");
      W.value(JournalRecoveryMillis);
      W.endObject();
    }
    W.key("engines");
    W.beginObject();
    for (const auto &[Engine, Count] : EngineServed)
      W.field(Engine, int64_t(Count));
    W.endObject();
    W.key("solver");
    W.beginObject();
    W.field("queries", int64_t(TotalSolverQueries));
    W.field("memo_hits", int64_t(TotalSolverMemoHits));
    W.field("assumption_checks", int64_t(TotalSolverAssumptionChecks));
    W.field("trail_undos", int64_t(TotalSolverTrailUndos));
    W.field("reason_log_bytes", int64_t(TotalSolverReasonLogBytes));
    W.endObject();
    W.key("verbs");
    W.beginObject();
    for (const auto &[Verb, Count] : VerbCounts) {
      W.key(Verb);
      W.beginObject();
      W.field("count", int64_t(Count));
      // Log-scale latency histogram; bucket upper bounds in ms, the last
      // one open-ended.
      W.key("latency_ms");
      W.beginObject();
      static const char *Buckets[5] = {"<1", "<10", "<100", "<1000",
                                       ">=1000"};
      const std::array<uint64_t, 5> &H = VerbLatency[Verb];
      for (size_t I = 0; I < 5; ++I)
        W.field(Buckets[I], int64_t(H[I]));
      W.endObject();
      W.endObject();
    }
    W.endObject();
  }
  if (Cache) {
    ProofCache::Stats CS = Cache->stats();
    W.key("proof_cache");
    W.beginObject();
    W.field("dir", Cache->directory());
    W.field("hits", int64_t(CS.Hits));
    W.field("misses", int64_t(CS.Misses));
    W.field("stores", int64_t(CS.Stores));
    W.field("footprint_hits", int64_t(CS.FootprintHits));
    W.field("path_hits", int64_t(CS.PathHits));
    W.field("path_fallbacks", int64_t(CS.PathFallbacks));
    W.field("rejected", int64_t(CS.Rejected));
    W.field("quarantined", int64_t(CS.Quarantined));
    W.field("gc_runs", int64_t(CS.GcRuns));
    W.field("gc_dropped", int64_t(CS.GcDropped));
    W.field("manifest_corrupt", int64_t(CS.ManifestCorrupt));
    W.key("decode_millis");
    W.value(CS.DecodeMillis);
    W.key("recheck_millis");
    W.value(CS.RecheckMillis);
    W.endObject();
  }
  W.endObject();
  return W.take();
}

std::string ReflexDaemon::doCacheGc() {
  if (!Cache)
    return encodeDaemonError("no proof cache attached (--cache-dir)");
  ProofCache::GcOutcome G = runGc();
  JsonWriter W;
  W.beginObject();
  W.field("ok", true);
  W.field("verb", "cache-gc");
  writeGcOutcome(W, G);
  W.endObject();
  return W.take();
}

std::string ReflexDaemon::doShutdown() {
  stop();
  JsonWriter W;
  W.beginObject();
  W.field("ok", true);
  W.field("verb", "shutdown");
  W.endObject();
  return W.take();
}

} // namespace reflex
