//===- daemon/protocol.cc - reflexd wire protocol ---------------*- C++ -*-===//

#include "daemon/protocol.h"

#include <cmath>

namespace reflex {

namespace {

/// Reads an optional non-negative integer option; errors on junk (a
/// string, a negative, a fraction) rather than guessing.
Result<uint64_t> numField(const JsonValue &Obj, std::string_view Key,
                          uint64_t Default) {
  const JsonValue *V = Obj.get(Key);
  if (!V)
    return Default;
  if (!V->isNumber() || V->numberValue() < 0 ||
      V->numberValue() != std::floor(V->numberValue()))
    return Error("option '" + std::string(Key) +
                 "' needs a non-negative integer");
  return uint64_t(V->numberValue());
}

Result<bool> boolField(const JsonValue &Obj, std::string_view Key,
                       bool Default) {
  const JsonValue *V = Obj.get(Key);
  if (!V)
    return Default;
  if (!V->isBool())
    return Error("option '" + std::string(Key) + "' needs a boolean");
  return V->boolValue();
}

Result<std::string> strField(const JsonValue &Obj, std::string_view Key) {
  const JsonValue *V = Obj.get(Key);
  if (!V)
    return std::string();
  if (!V->isString())
    return Error("field '" + std::string(Key) + "' needs a string");
  return V->stringValue();
}

} // namespace

Result<DaemonRequest> decodeDaemonRequest(const std::string &Frame) {
  Result<JsonValue> Doc = parseJson(Frame);
  if (!Doc.ok())
    return Error("malformed request frame: " + Doc.error());
  if (!Doc->isObject())
    return Error("request frame must be a JSON object");

  DaemonRequest R;
  Result<std::string> Verb = strField(*Doc, "verb");
  if (!Verb.ok())
    return Error(Verb.error());
  R.Verb = *Verb;
  if (R.Verb.empty())
    return Error("request frame is missing its 'verb'");

  Result<std::string> Session = strField(*Doc, "session");
  if (!Session.ok())
    return Error(Session.error());
  R.Session = *Session;
  Result<std::string> Prog = strField(*Doc, "program");
  if (!Prog.ok())
    return Error(Prog.error());
  R.ProgramText = *Prog;
  Result<std::string> Path = strField(*Doc, "path");
  if (!Path.ok())
    return Error(Path.error());
  R.ProgramPath = *Path;

  const JsonValue *Opts = Doc->get("options");
  if (!Opts)
    return R;
  if (!Opts->isObject())
    return Error("'options' must be an object");

  // The exact flag→VerifyOptions mapping cmdVerify uses; keeping them in
  // lockstep is what makes daemon verdicts byte-identical to the CLI.
  auto Num = [&](std::string_view K, uint64_t Def) {
    return numField(*Opts, K, Def);
  };
  auto Flag = [&](std::string_view K) { return boolField(*Opts, K, false); };
#define REFLEX_NUM(Dest, Key, Def)                                           \
  do {                                                                       \
    Result<uint64_t> V = Num(Key, Def);                                      \
    if (!V.ok())                                                             \
      return Error(V.error());                                               \
    Dest = *V;                                                               \
  } while (0)
#define REFLEX_FLAG(Dest, Key, Invert)                                       \
  do {                                                                       \
    Result<bool> V = Flag(Key);                                              \
    if (!V.ok())                                                             \
      return Error(V.error());                                               \
    Dest = Invert ? !*V : *V;                                                \
  } while (0)
  uint64_t Tmp = 0;
  REFLEX_NUM(Tmp, "jobs", 0);
  R.Jobs = unsigned(Tmp);
  REFLEX_NUM(Tmp, "retries", 0);
  R.Retries = unsigned(Tmp);
  REFLEX_NUM(Tmp, "bmc_depth", 0);
  R.Verify.BmcDepthOnUnknown = size_t(Tmp);
  REFLEX_NUM(Tmp, "bmc_states", BmcOptions().MaxStates);
  R.Verify.Bmc.MaxStates = size_t(Tmp);
  REFLEX_NUM(Tmp, "bmc_payloads", BmcOptions().MaxPayloadsPerMessage);
  R.Verify.Bmc.MaxPayloadsPerMessage = size_t(Tmp);
  REFLEX_NUM(R.Verify.TimeoutMillis, "timeout_ms", 0);
  REFLEX_NUM(R.Verify.StepBudget, "step_budget", 0);
  REFLEX_FLAG(R.Verify.SyntacticSkip, "no_skip", true);
  REFLEX_FLAG(R.Verify.Simplify, "no_simplify", true);
  REFLEX_FLAG(R.Verify.CacheInvariants, "no_cache", true);
  REFLEX_FLAG(R.Verify.CheckCertificates, "no_check", true);
  REFLEX_FLAG(R.Verify.FastCacheRecheck, "fast_cache", false);
  REFLEX_FLAG(R.SharedCaches, "no_share", true);
  REFLEX_FLAG(R.UseProofCache, "no_proof_cache", true);
#undef REFLEX_NUM
#undef REFLEX_FLAG
  Result<std::string> Engine = strField(*Opts, "engine");
  if (!Engine.ok())
    return Error(Engine.error());
  if (std::optional<EngineKind> K = parseEngineKind(*Engine))
    R.Verify.Engine = *K;
  else
    return Error("option 'engine' must be induction, pdr, or portfolio");
  return R;
}

void writePropertyResult(JsonWriter &W, const PropertyResult &R) {
  W.beginObject();
  W.field("name", R.Name);
  W.field("status", verifyStatusName(R.Status));
  if (R.Status != VerifyStatus::Proved)
    W.field("reason", R.Reason);
  W.key("millis");
  W.value(R.Millis);
  if (R.Status == VerifyStatus::Proved) {
    W.field("cert_checked", R.CertChecked);
    if (!R.CertJson.empty()) {
      // The exported certificate is itself JSON; splice it in verbatim so
      // clients read response.results[i].cert as a document, not as an
      // escaped string to parse a second time.
      W.key("cert");
      W.rawValue(R.CertJson);
    }
  }
  if (R.CacheHit)
    W.field("cache_hit", true);
  if (R.FootprintHit)
    W.field("footprint_hit", true);
  if (R.FastRecheck)
    W.field("fast_recheck", true);
  if (R.Attempts > 1)
    W.field("attempts", int64_t(R.Attempts));
  if (!R.ServedBy.empty())
    W.field("engine", R.ServedBy);
  W.endObject();
}

void writeReportResults(JsonWriter &W, const VerificationReport &Rep) {
  W.field("program", Rep.ProgramName);
  W.key("results");
  W.beginArray();
  for (const PropertyResult &R : Rep.Results)
    writePropertyResult(W, R);
  W.endArray();
  W.field("proved", int64_t(Rep.provedCount()));
  W.field("properties", int64_t(Rep.Results.size()));
  W.key("total_millis");
  W.value(Rep.TotalMillis);
  if (Rep.ProofCacheHits || Rep.ProofCacheMisses) {
    W.field("proof_cache_hits", int64_t(Rep.ProofCacheHits));
    W.field("proof_cache_misses", int64_t(Rep.ProofCacheMisses));
  }
  if (Rep.FootprintHits)
    W.field("footprint_hits", int64_t(Rep.FootprintHits));
  if (Rep.PathHits || Rep.PathFallbacks) {
    W.field("path_hits", int64_t(Rep.PathHits));
    W.field("path_fallbacks", int64_t(Rep.PathFallbacks));
  }
}

std::string encodeDaemonError(const std::string &Msg) {
  JsonWriter W;
  W.beginObject();
  W.field("ok", false);
  W.field("error", Msg);
  W.endObject();
  return W.take();
}

std::string encodeDaemonOverloaded(uint64_t RetryAfterMs) {
  JsonWriter W;
  W.beginObject();
  W.field("ok", false);
  W.field("error", "daemon overloaded; retry after backoff");
  W.field("overloaded", true);
  W.field("retry_after_ms", int64_t(RetryAfterMs));
  W.endObject();
  return W.take();
}

std::string encodeOpenSessionFrame(const DaemonRequest &R,
                                   const std::string &Source) {
  JsonWriter W;
  W.beginObject();
  W.field("verb", "open-session");
  W.field("session", R.Session);
  W.field("program", Source);
  W.key("options");
  W.beginObject();
  // Every key decodeDaemonRequest reads, spelled explicitly — absent-key
  // defaults never enter the round trip, so a default that later changes
  // cannot silently re-interpret an old journal.
  W.field("jobs", int64_t(R.Jobs));
  W.field("retries", int64_t(R.Retries));
  W.field("bmc_depth", int64_t(R.Verify.BmcDepthOnUnknown));
  W.field("bmc_states", int64_t(R.Verify.Bmc.MaxStates));
  W.field("bmc_payloads", int64_t(R.Verify.Bmc.MaxPayloadsPerMessage));
  W.field("timeout_ms", int64_t(R.Verify.TimeoutMillis));
  W.field("step_budget", int64_t(R.Verify.StepBudget));
  W.field("no_skip", !R.Verify.SyntacticSkip);
  W.field("no_simplify", !R.Verify.Simplify);
  W.field("no_cache", !R.Verify.CacheInvariants);
  W.field("no_check", !R.Verify.CheckCertificates);
  W.field("fast_cache", R.Verify.FastCacheRecheck);
  W.field("no_share", !R.SharedCaches);
  W.field("no_proof_cache", !R.UseProofCache);
  W.field("engine", engineKindName(R.Verify.Engine));
  W.endObject();
  W.endObject();
  return W.take();
}

} // namespace reflex
