//===- daemon/supervisor.cc - Supervised daemon restart -------------------===//

#include "daemon/supervisor.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdarg>
#include <deque>
#include <thread>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

namespace reflex {

namespace {

// Signal forwarding: the handler may only touch sig_atomic_t, so the
// child's pid is parked in one. A signal arriving between forks (pid 0)
// is remembered and forwarded to the next child — the operator's SIGTERM
// must not be lost to a restart race.
volatile sig_atomic_t ChildPid = 0;
volatile sig_atomic_t PendingSignal = 0;

void forwardSignal(int Sig) {
  PendingSignal = Sig;
  pid_t Pid = ChildPid;
  if (Pid > 0)
    ::kill(Pid, Sig);
}

using SteadyClock = std::chrono::steady_clock;

uint64_t millisSince(SteadyClock::time_point T0) {
  return uint64_t(std::chrono::duration_cast<std::chrono::milliseconds>(
                      SteadyClock::now() - T0)
                      .count());
}

void logEvent(FILE *Log, const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::vfprintf(Log, Fmt, Args);
  va_end(Args);
  std::fputc('\n', Log);
  std::fflush(Log);
}

} // namespace

int runSupervised(const SupervisorOptions &Opts,
                  const std::function<int()> &Child) {
  FILE *Log = Opts.Log ? Opts.Log : stderr;

  struct sigaction Fwd {};
  Fwd.sa_handler = forwardSignal;
  sigemptyset(&Fwd.sa_mask);
  struct sigaction OldTerm {}, OldInt {};
  ::sigaction(SIGTERM, &Fwd, &OldTerm);
  ::sigaction(SIGINT, &Fwd, &OldInt);
  PendingSignal = 0;

  // Start times of recent children, for the crash-loop window.
  std::deque<SteadyClock::time_point> Starts;
  unsigned Restarts = 0;
  int Exit = 0;

  for (;;) {
    pid_t Pid = ::fork();
    if (Pid < 0) {
      logEvent(Log, "{\"event\":\"fork-failed\",\"errno\":%d}", errno);
      Exit = 1;
      break;
    }
    if (Pid == 0) {
      // The child: restore default dispositions so the daemon's own
      // drain logic (or default termination) sees the signals raw.
      ::sigaction(SIGTERM, &OldTerm, nullptr);
      ::sigaction(SIGINT, &OldInt, nullptr);
      _exit(Child());
    }
    ChildPid = Pid;
    if (int Sig = PendingSignal) // arrived during the fork window
      ::kill(Pid, Sig);
    Starts.push_back(SteadyClock::now());
    logEvent(Log, "{\"event\":\"serving\",\"pid\":%d,\"restarts\":%u}",
             int(Pid), Restarts);

    int Status = 0;
    while (::waitpid(Pid, &Status, 0) < 0 && errno == EINTR) {
      // EINTR: a forwarded signal interrupted the wait; keep waiting for
      // the child to act on it.
    }
    ChildPid = 0;

    if (WIFEXITED(Status) && WEXITSTATUS(Status) == 0) {
      logEvent(Log, "{\"event\":\"stopped\",\"pid\":%d}", int(Pid));
      Exit = 0;
      break;
    }
    if (WIFSIGNALED(Status))
      logEvent(Log, "{\"event\":\"exited\",\"pid\":%d,\"signal\":%d}",
               int(Pid), WTERMSIG(Status));
    else
      logEvent(Log, "{\"event\":\"exited\",\"pid\":%d,\"code\":%d}",
               int(Pid), WIFEXITED(Status) ? WEXITSTATUS(Status) : -1);

    // An abnormal exit after the operator asked us to stop is still a
    // stop — restarting against an explicit SIGTERM/SIGINT would fight
    // the operator. The daemon's orderly drain exits 0 and takes the
    // branch above instead.
    if (PendingSignal) {
      Exit = 1;
      break;
    }

    // Crash-loop detection: count *starts* within the sliding window;
    // exceeding MaxRestarts restarts means the child never stays up.
    while (!Starts.empty() &&
           millisSince(Starts.front()) > Opts.RestartWindowMs)
      Starts.pop_front();
    if (Starts.size() > Opts.MaxRestarts) {
      logEvent(
          Log,
          "{\"event\":\"giving-up\",\"recent_restarts\":%zu,"
          "\"window_ms\":%llu}",
          Starts.size() - 1,
          static_cast<unsigned long long>(Opts.RestartWindowMs));
      Exit = 1;
      break;
    }

    uint64_t Delay = Opts.BackoffMs;
    for (size_t I = 1; I + 1 < Starts.size() && Delay < Opts.BackoffCapMs;
         ++I)
      Delay *= 2;
    if (Delay > Opts.BackoffCapMs)
      Delay = Opts.BackoffCapMs;
    ++Restarts;
    logEvent(Log,
             "{\"event\":\"restarting\",\"delay_ms\":%llu,"
             "\"recent_restarts\":%zu}",
             static_cast<unsigned long long>(Delay), Starts.size());
    std::this_thread::sleep_for(std::chrono::milliseconds(Delay));
    if (PendingSignal) { // the operator gave up during the backoff
      Exit = 1;
      break;
    }
  }

  ::sigaction(SIGTERM, &OldTerm, nullptr);
  ::sigaction(SIGINT, &OldInt, nullptr);
  return Exit;
}

} // namespace reflex
