//===- reflex/reflex.h - Public API umbrella --------------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public face of the library. A downstream user typically needs only
/// this header:
///
/// \code
///   #include "reflex/reflex.h"
///
///   reflex::ProgramPtr P = *reflex::loadProgram(Source);   // parse+validate
///   reflex::VerificationReport R = reflex::verifyProgram(*P);
///   // R.allProved() => every property carries a checked certificate.
///
///   reflex::Runtime Rt(*P, MyScripts, MyCalls);
///   Rt.start();
///   Rt.run(1000);  // drive the kernel against simulated components
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_REFLEX_H
#define REFLEX_REFLEX_H

#include "ast/printer.h"
#include "ast/program.h"
#include "ast/validate.h"
#include "interp/runtime.h"
#include "interp/scripts.h"
#include "parser/parser.h"
#include "prop/check.h"
#include "support/result.h"
#include "verify/absreplay.h"
#include "verify/bmc.h"
#include "verify/verifier.h"

namespace reflex {

/// Parses and validates a Reflex program. On failure, the Error message
/// contains the rendered diagnostics (with source excerpts).
Result<ProgramPtr> loadProgram(std::string_view Source,
                               std::string_view BufferName = "<reflex>");

} // namespace reflex

#endif // REFLEX_REFLEX_H
