//===- reflex/api.cc - Public API facade -------------------------*- C++ -*-===//

#include "reflex/reflex.h"

namespace reflex {

Result<ProgramPtr> loadProgram(std::string_view Source,
                               std::string_view BufferName) {
  DiagnosticEngine Diags;
  ProgramPtr P = parseProgram(Source, Diags);
  if (!P)
    return Error("parse failed:\n" + Diags.render(BufferName, Source));
  if (!validateProgram(*P, Diags))
    return Error("validation failed:\n" + Diags.render(BufferName, Source));
  return P;
}

} // namespace reflex
