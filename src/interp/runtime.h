//===- interp/runtime.h - The Reflex runtime --------------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event-loop runtime: the C++ counterpart of the paper's Ynot
/// interpreter (Figure 4). The paper runs sandboxed component processes
/// (WebKit tabs, OpenSSH slaves, ...) connected over Unix domain sockets;
/// here each component instance is driven by a ComponentScript — an
/// in-process behaviour with an outbox of requests to the kernel and an
/// onMessage callback for kernel deliveries. The substitution preserves
/// everything the verification story depends on: the kernel's action
/// alphabet, the one-exchange-at-a-time event loop (select a ready
/// component, receive, run the handler), and the nondeterminism of
/// component scheduling and native calls.
///
/// An optional runtime monitor re-checks the program's trace properties
/// against the growing concrete trace — the executable face of the
/// paper's guarantee that interpreter traces satisfy everything proved
/// over BehAbs.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_INTERP_RUNTIME_H
#define REFLEX_INTERP_RUNTIME_H

#include "interp/evaluator.h"
#include "prop/check.h"
#include "support/rng.h"

#include <deque>
#include <functional>
#include <memory>
#include <optional>

namespace reflex {

/// The behaviour of a simulated component. Subclass and override
/// onStart/onMessage; queue requests to the kernel with sendToKernel.
class ComponentScript {
public:
  virtual ~ComponentScript() = default;

  /// Called once, right after the component is spawned.
  virtual void onStart() {}
  /// Called when the kernel sends this component a message.
  virtual void onMessage(const Message &M) { (void)M; }

  bool ready() const { return !Outbox.empty(); }
  Message takeRequest() {
    Message M = std::move(Outbox.front());
    Outbox.pop_front();
    return M;
  }

protected:
  /// Queues a request for the kernel.
  void sendToKernel(Message M) { Outbox.push_back(std::move(M)); }

private:
  std::deque<Message> Outbox;
};

/// Creates the script for a newly spawned component instance. May return
/// nullptr for components that never talk (the runtime treats them as
/// permanently quiet).
using ScriptFactory = std::function<std::unique_ptr<ComponentScript>(
    const ComponentInstance &)>;

/// Registry of native functions (the paper's OCaml primitives, e.g.
/// fetching a URL or reading the system password file). Functions return
/// strings; unregistered names return "".
class CallRegistry {
public:
  using Fn = std::function<Value(const std::vector<Value> &)>;

  void add(std::string Name, Fn F) { Fns[std::move(Name)] = std::move(F); }
  Value invoke(const std::string &Name, const std::vector<Value> &Args) const {
    auto It = Fns.find(Name);
    return It == Fns.end() ? Value::str("") : It->second(Args);
  }

private:
  std::map<std::string, Fn> Fns;
};

/// The kernel event loop over simulated components.
class Runtime {
public:
  /// \p P must be validated and outlive the runtime.
  Runtime(const Program &P, ScriptFactory Scripts, CallRegistry Calls,
          uint64_t Seed = 1);

  /// Runs the init section (spawning the initial components).
  void start();

  /// Services one exchange with a randomly selected ready component.
  /// Returns false when no component has a pending request.
  bool step();

  /// Runs until quiescence or \p MaxSteps exchanges; returns the number
  /// of exchanges serviced.
  size_t run(size_t MaxSteps);

  /// Enables the runtime monitor: after every exchange, all trace
  /// properties of the program are re-checked on the concrete trace and
  /// the first violation is retained (see lastViolation).
  void enableMonitor() { Monitor = true; }
  const std::optional<Violation> &lastViolation() const { return Bad; }

  const KernelState &state() const { return St; }
  const Trace &trace() const { return St.Tr; }

  /// The script driving component \p Id (null if none, or crashed).
  ComponentScript *script(int64_t Id);

  /// Crash isolation (components are untrusted, paper §3): a script whose
  /// onStart/onMessage callback throws is marked crashed and detached —
  /// it never becomes ready again — while the kernel event loop and the
  /// runtime monitor keep running. The paper's counterpart is a sandboxed
  /// component process dying: the kernel, which holds all verified state,
  /// shrugs.
  struct CrashRecord {
    int64_t Id = -1;
    std::string Where; ///< "onStart" or "onMessage"
    std::string What;  ///< exception message
  };
  bool isCrashed(int64_t Id) const;
  size_t crashedCount() const { return Crashes.size(); }
  const std::vector<CrashRecord> &crashes() const { return Crashes; }

private:
  void attachScript(const ComponentInstance &C);
  void deliver(int64_t Id, const Message &M);
  void markCrashed(int64_t Id, const char *Where, const char *What);

  const Program &P;
  Evaluator Eval;
  ScriptFactory Scripts;
  CallRegistry Calls;
  Rng Rand;
  KernelState St;
  std::vector<std::unique_ptr<ComponentScript>> ByCompId;
  std::vector<CrashRecord> Crashes;
  bool Monitor = false;
  std::optional<Violation> Bad;
};

} // namespace reflex

#endif // REFLEX_INTERP_RUNTIME_H
