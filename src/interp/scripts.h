//===- interp/scripts.h - Reusable component scripts ------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reusable ComponentScript implementations: a lambda-driven script for
/// one-off behaviours and a table-driven request/reply script used by the
/// benchmark components (the stand-ins for the paper's sandboxed C/Python
/// processes).
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_INTERP_SCRIPTS_H
#define REFLEX_INTERP_SCRIPTS_H

#include "interp/runtime.h"

namespace reflex {

/// A script assembled from std::functions. The callbacks receive a
/// `send` function that queues a request to the kernel.
class LambdaScript : public ComponentScript {
public:
  using SendFn = std::function<void(Message)>;
  using StartFn = std::function<void(const SendFn &)>;
  using MessageFn = std::function<void(const Message &, const SendFn &)>;

  LambdaScript(StartFn OnStart, MessageFn OnMsg)
      : Start(std::move(OnStart)), Msg(std::move(OnMsg)) {}

  void onStart() override {
    if (Start)
      Start([this](Message M) { sendToKernel(std::move(M)); });
  }
  void onMessage(const Message &M) override {
    if (Msg)
      Msg(M, [this](Message Out) { sendToKernel(std::move(Out)); });
  }

private:
  StartFn Start;
  MessageFn Msg;
};

/// A script that fires a fixed sequence of requests at startup and replies
/// to deliveries via a handler table keyed by message name.
class ScriptedComponent : public ComponentScript {
public:
  using Responder =
      std::function<std::vector<Message>(const Message &)>;

  ScriptedComponent(std::vector<Message> Initial,
                    std::map<std::string, Responder> Table)
      : Initial(std::move(Initial)), Table(std::move(Table)) {}

  void onStart() override {
    for (Message &M : Initial)
      sendToKernel(std::move(M));
    Initial.clear();
  }

  void onMessage(const Message &M) override {
    auto It = Table.find(M.Name);
    if (It == Table.end())
      return;
    for (Message &Reply : It->second(M))
      sendToKernel(std::move(Reply));
  }

private:
  std::vector<Message> Initial;
  std::map<std::string, Responder> Table;
};

/// Builds a Message conveniently: msg("ReqAuth", {Value::str("alice"), ...}).
Message msg(std::string Name, std::vector<Value> Args = {});

} // namespace reflex

#endif // REFLEX_INTERP_SCRIPTS_H
