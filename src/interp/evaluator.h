//===- interp/evaluator.h - Concrete command evaluation ---------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concrete small-step core of the Reflex interpreter (paper Figure 4,
/// run_cmd): executes init code and handler bodies over a concrete kernel
/// state, recording every observable action in the trace exactly as the
/// paper's Ynot axiomatization does (Select :: Recv :: command effects).
/// Effects are delegated to callbacks so the same evaluator serves the
/// runtime (deliver to component scripts), the bounded model checker
/// (enumerate), and trace replay.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_INTERP_EVALUATOR_H
#define REFLEX_INTERP_EVALUATOR_H

#include "ast/program.h"
#include "trace/action.h"

#include <functional>
#include <map>
#include <string>

namespace reflex {

/// The concrete state of a running kernel: global variable values
/// (including component globals, stored as comp-id values), the live
/// component set, and the trace so far. Mirrors the paper's
/// (comps, tr, env) triple.
struct KernelState {
  std::map<std::string, Value> Vars;
  Trace Tr; // Tr.Components doubles as the live component set

  /// Hash for BMC state pruning (variables + components; excludes trace).
  size_t stateHash() const;
};

/// Effect callbacks. onCall supplies the nondeterministic result of a
/// native call (the paper's OCaml primitives); onSend observes deliveries;
/// onSpawn observes newly created instances. All observable actions are
/// recorded in the state's trace by the evaluator itself.
struct EffectHooks {
  std::function<Value(const std::string &Fn, const std::vector<Value> &Args)>
      OnCall;
  std::function<void(const ComponentInstance &To, const Message &M)> OnSend;
  std::function<void(const ComponentInstance &NewComp)> OnSpawn;
};

/// Executes concrete kernel steps. The program must be validated.
class Evaluator {
public:
  explicit Evaluator(const Program &P) : P(P) {}

  /// Initializes \p St: declared variable initializers, then the init
  /// section (spawning the initial components).
  void runInit(KernelState &St, const EffectHooks &Hooks) const;

  /// Services one exchange: records Select and Recv for \p SenderId and
  /// message \p M, then runs the matching handler (or nothing if none is
  /// declared).
  void runExchange(KernelState &St, int64_t SenderId, const Message &M,
                   const EffectHooks &Hooks) const;

private:
  struct Env {
    std::map<std::string, Value> Locals;
    int64_t SenderId = -1;
  };

  Value evalExpr(const KernelState &St, const Env &E, const Expr &Ex) const;
  void execCmd(KernelState &St, Env &E, const Cmd &C,
               const EffectHooks &Hooks) const;
  int64_t spawnComp(KernelState &St, const std::string &TypeName,
                    std::vector<Value> Config, const EffectHooks &Hooks) const;

  const Program &P;
};

} // namespace reflex

#endif // REFLEX_INTERP_EVALUATOR_H
