//===- interp/scripts.cc - Reusable component scripts -----------*- C++ -*-===//

#include "interp/scripts.h"

namespace reflex {

Message msg(std::string Name, std::vector<Value> Args) {
  Message M;
  M.Name = std::move(Name);
  M.Args = std::move(Args);
  return M;
}

} // namespace reflex
