//===- interp/evaluator.cc - Concrete command evaluation --------*- C++ -*-===//

#include "interp/evaluator.h"

#include <cassert>

namespace reflex {

size_t KernelState::stateHash() const {
  size_t H = 1469598103934665603ULL;
  auto Mix = [&H](size_t V) {
    H ^= V;
    H *= 1099511628211ULL;
  };
  for (const auto &[Name, V] : Vars) {
    Mix(std::hash<std::string>()(Name));
    Mix(V.hash());
  }
  for (const ComponentInstance &C : Tr.Components) {
    Mix(std::hash<std::string>()(C.TypeName));
    for (const Value &V : C.Config)
      Mix(V.hash());
  }
  return H;
}

void Evaluator::runInit(KernelState &St, const EffectHooks &Hooks) const {
  for (const StateVarDecl &V : P.StateVars)
    St.Vars[V.Name] = V.Init;
  if (!P.Init)
    return;
  Env E;
  execCmd(St, E, *P.Init, Hooks);
  // Init-bound component globals were written into Locals by spawn; hoist
  // them into the global variable map.
  for (const CompGlobal &G : P.CompGlobals) {
    auto It = E.Locals.find(G.Name);
    assert(It != E.Locals.end() && "validated init must bind all globals");
    St.Vars[G.Name] = It->second;
  }
}

void Evaluator::runExchange(KernelState &St, int64_t SenderId,
                            const Message &M,
                            const EffectHooks &Hooks) const {
  const ComponentInstance *Sender = St.Tr.findComponent(SenderId);
  assert(Sender && "exchange with unknown component");
  St.Tr.Actions.push_back(Action::select(SenderId));
  St.Tr.Actions.push_back(Action::recv(SenderId, M));

  const Handler *H = P.findHandler(Sender->TypeName, M.Name);
  if (!H)
    return; // default: no response

  Env E;
  E.SenderId = SenderId;
  assert(H->Params.size() == M.Args.size() && "payload arity mismatch");
  for (size_t I = 0; I < H->Params.size(); ++I)
    if (H->Params[I] != "_")
      E.Locals[H->Params[I]] = M.Args[I];
  execCmd(St, E, *H->Body, Hooks);
}

Value Evaluator::evalExpr(const KernelState &St, const Env &E,
                          const Expr &Ex) const {
  switch (Ex.kind()) {
  case Expr::Lit:
    return cast<LitExpr>(Ex).value();
  case Expr::VarRef: {
    const auto &V = cast<VarRefExpr>(Ex);
    auto It = E.Locals.find(V.name());
    if (It != E.Locals.end())
      return It->second;
    auto GIt = St.Vars.find(V.name());
    assert(GIt != St.Vars.end() && "unvalidated program");
    return GIt->second;
  }
  case Expr::SenderRef:
    assert(E.SenderId >= 0 && "sender outside handler");
    return Value::comp(E.SenderId);
  case Expr::ConfigRef: {
    const auto &CR = cast<ConfigRefExpr>(Ex);
    Value Base = evalExpr(St, E, CR.base());
    const ComponentInstance *C = St.Tr.findComponent(Base.asCompId());
    assert(C && CR.fieldIndex() >= 0 &&
           static_cast<size_t>(CR.fieldIndex()) < C->Config.size());
    return C->Config[CR.fieldIndex()];
  }
  case Expr::Unary:
    return Value::boolean(
        !evalExpr(St, E, cast<UnaryExpr>(Ex).operand()).asBool());
  case Expr::Binary: {
    const auto &B = cast<BinaryExpr>(Ex);
    // Short-circuit booleans first.
    if (B.op() == BinOp::And) {
      if (!evalExpr(St, E, B.lhs()).asBool())
        return Value::boolean(false);
      return evalExpr(St, E, B.rhs());
    }
    if (B.op() == BinOp::Or) {
      if (evalExpr(St, E, B.lhs()).asBool())
        return Value::boolean(true);
      return evalExpr(St, E, B.rhs());
    }
    Value L = evalExpr(St, E, B.lhs());
    Value R = evalExpr(St, E, B.rhs());
    switch (B.op()) {
    case BinOp::Eq:
      return Value::boolean(L == R);
    case BinOp::Ne:
      return Value::boolean(!(L == R));
    case BinOp::Add:
      return Value::num(L.asNum() + R.asNum());
    case BinOp::Sub:
      return Value::num(L.asNum() - R.asNum());
    case BinOp::Lt:
      return Value::boolean(L.asNum() < R.asNum());
    case BinOp::Le:
      return Value::boolean(L.asNum() <= R.asNum());
    case BinOp::Gt:
      return Value::boolean(L.asNum() > R.asNum());
    case BinOp::Ge:
      return Value::boolean(L.asNum() >= R.asNum());
    case BinOp::And:
    case BinOp::Or:
      break; // handled above
    }
    assert(false && "unreachable");
    return Value();
  }
  }
  assert(false && "unknown expression kind");
  return Value();
}

int64_t Evaluator::spawnComp(KernelState &St, const std::string &TypeName,
                             std::vector<Value> Config,
                             const EffectHooks &Hooks) const {
  ComponentInstance C;
  C.Id = static_cast<int64_t>(St.Tr.Components.size());
  C.TypeName = TypeName;
  C.Config = std::move(Config);
  St.Tr.Components.push_back(C);
  St.Tr.Actions.push_back(Action::spawn(C.Id));
  if (Hooks.OnSpawn)
    Hooks.OnSpawn(St.Tr.Components.back());
  return C.Id;
}

void Evaluator::execCmd(KernelState &St, Env &E, const Cmd &C,
                        const EffectHooks &Hooks) const {
  switch (C.kind()) {
  case Cmd::Nop:
    return;
  case Cmd::Block:
    for (const CmdPtr &Sub : castCmd<BlockCmd>(C).commands())
      execCmd(St, E, *Sub, Hooks);
    return;
  case Cmd::Assign: {
    const auto &A = castCmd<AssignCmd>(C);
    St.Vars[A.var()] = evalExpr(St, E, A.rhs());
    return;
  }
  case Cmd::If: {
    const auto &If = castCmd<IfCmd>(C);
    if (evalExpr(St, E, If.cond()).asBool())
      execCmd(St, E, If.thenCmd(), Hooks);
    else
      execCmd(St, E, If.elseCmd(), Hooks);
    return;
  }
  case Cmd::Send: {
    const auto &S = castCmd<SendCmd>(C);
    int64_t Target = evalExpr(St, E, S.target()).asCompId();
    Message M;
    M.Name = S.msgName();
    for (const ExprPtr &Arg : S.args())
      M.Args.push_back(evalExpr(St, E, *Arg));
    St.Tr.Actions.push_back(Action::send(Target, M));
    if (Hooks.OnSend) {
      const ComponentInstance *To = St.Tr.findComponent(Target);
      assert(To);
      Hooks.OnSend(*To, M);
    }
    return;
  }
  case Cmd::Spawn: {
    const auto &S = castCmd<SpawnCmd>(C);
    std::vector<Value> Config;
    for (const ExprPtr &Arg : S.config())
      Config.push_back(evalExpr(St, E, *Arg));
    int64_t Id = spawnComp(St, S.compType(), std::move(Config), Hooks);
    E.Locals[S.bind()] = Value::comp(Id);
    return;
  }
  case Cmd::Call: {
    const auto &Call = castCmd<CallCmd>(C);
    std::vector<Value> Args;
    for (const ExprPtr &Arg : Call.args())
      Args.push_back(evalExpr(St, E, *Arg));
    Value Result = Hooks.OnCall ? Hooks.OnCall(Call.fn(), Args)
                                : Value::str("");
    assert(Result.type() == BaseType::Str && "calls return strings");
    St.Tr.Actions.push_back(Action::call(Call.fn(), Args, Result));
    E.Locals[Call.bind()] = Result;
    return;
  }
  case Cmd::Lookup: {
    const auto &L = castCmd<LookupCmd>(C);
    // Evaluate constraints once, then scan components oldest-first (the
    // deterministic order the NI determinism argument relies on).
    std::vector<std::pair<int, Value>> Constraints;
    for (const LookupConstraint &LC : L.constraints())
      Constraints.emplace_back(LC.FieldIndex, evalExpr(St, E, *LC.Expr));
    const ComponentInstance *Found = nullptr;
    for (const ComponentInstance &Cand : St.Tr.Components) {
      if (Cand.TypeName != L.compType())
        continue;
      bool Ok = true;
      for (const auto &[Index, Required] : Constraints)
        if (!(Cand.Config[Index] == Required)) {
          Ok = false;
          break;
        }
      if (Ok) {
        Found = &Cand;
        break;
      }
    }
    if (Found) {
      E.Locals[L.bind()] = Value::comp(Found->Id);
      execCmd(St, E, L.thenCmd(), Hooks);
    } else {
      execCmd(St, E, L.elseCmd(), Hooks);
    }
    return;
  }
  }
}

} // namespace reflex
