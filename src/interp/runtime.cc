//===- interp/runtime.cc - The Reflex runtime -------------------*- C++ -*-===//

#include "interp/runtime.h"

#include <cassert>

namespace reflex {

Runtime::Runtime(const Program &P, ScriptFactory Scripts, CallRegistry Calls,
                 uint64_t Seed)
    : P(P), Eval(P), Scripts(std::move(Scripts)), Calls(std::move(Calls)),
      Rand(Seed) {}

void Runtime::attachScript(const ComponentInstance &C) {
  assert(static_cast<size_t>(C.Id) == ByCompId.size() &&
         "spawn ids must be dense");
  ByCompId.push_back(Scripts ? Scripts(C) : nullptr);
  if (ByCompId.back()) {
    try {
      ByCompId.back()->onStart();
    } catch (const std::exception &E) {
      markCrashed(C.Id, "onStart", E.what());
    } catch (...) {
      markCrashed(C.Id, "onStart", "unknown exception");
    }
  }
}

void Runtime::deliver(int64_t Id, const Message &M) {
  ComponentScript *S = script(Id);
  if (!S)
    return;
  try {
    S->onMessage(M);
  } catch (const std::exception &E) {
    markCrashed(Id, "onMessage", E.what());
  } catch (...) {
    markCrashed(Id, "onMessage", "unknown exception");
  }
}

void Runtime::markCrashed(int64_t Id, const char *Where, const char *What) {
  Crashes.push_back({Id, Where, What});
  // Detach the script: pending requests die with it, it never becomes
  // ready again, and later kernel sends to it are dropped — exactly a
  // dead component process. Kernel state is untouched.
  if (Id >= 0 && static_cast<size_t>(Id) < ByCompId.size())
    ByCompId[Id].reset();
}

bool Runtime::isCrashed(int64_t Id) const {
  for (const CrashRecord &C : Crashes)
    if (C.Id == Id)
      return true;
  return false;
}

ComponentScript *Runtime::script(int64_t Id) {
  if (Id < 0 || static_cast<size_t>(Id) >= ByCompId.size())
    return nullptr;
  return ByCompId[Id].get();
}

void Runtime::start() {
  EffectHooks Hooks;
  Hooks.OnCall = [this](const std::string &Fn,
                        const std::vector<Value> &Args) {
    return Calls.invoke(Fn, Args);
  };
  Hooks.OnSpawn = [this](const ComponentInstance &C) { attachScript(C); };
  Hooks.OnSend = [this](const ComponentInstance &To, const Message &M) {
    deliver(To.Id, M);
  };
  Eval.runInit(St, Hooks);
}

bool Runtime::step() {
  // Select a ready component uniformly at random — the scheduler's
  // nondeterminism, which the refinement tests deliberately exercise.
  std::vector<int64_t> Ready;
  for (size_t I = 0; I < ByCompId.size(); ++I)
    if (ByCompId[I] && ByCompId[I]->ready())
      Ready.push_back(static_cast<int64_t>(I));
  if (Ready.empty())
    return false;
  int64_t Chosen = Ready[Rand.below(Ready.size())];
  Message M = ByCompId[Chosen]->takeRequest();

  EffectHooks Hooks;
  Hooks.OnCall = [this](const std::string &Fn,
                        const std::vector<Value> &Args) {
    return Calls.invoke(Fn, Args);
  };
  Hooks.OnSpawn = [this](const ComponentInstance &C) { attachScript(C); };
  Hooks.OnSend = [this](const ComponentInstance &To, const Message &Msg) {
    deliver(To.Id, Msg);
  };
  Eval.runExchange(St, Chosen, M, Hooks);

  if (Monitor && !Bad) {
    for (const Property &Prop : P.Properties) {
      if (!Prop.isTrace())
        continue;
      if (auto V = checkTraceProperty(St.Tr, Prop.traceProp())) {
        Bad = V;
        break;
      }
    }
  }
  return true;
}

size_t Runtime::run(size_t MaxSteps) {
  size_t Steps = 0;
  while (Steps < MaxSteps && step())
    ++Steps;
  return Steps;
}

} // namespace reflex
