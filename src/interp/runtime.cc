//===- interp/runtime.cc - The Reflex runtime -------------------*- C++ -*-===//

#include "interp/runtime.h"

#include <cassert>

namespace reflex {

Runtime::Runtime(const Program &P, ScriptFactory Scripts, CallRegistry Calls,
                 uint64_t Seed)
    : P(P), Eval(P), Scripts(std::move(Scripts)), Calls(std::move(Calls)),
      Rand(Seed) {}

void Runtime::attachScript(const ComponentInstance &C) {
  assert(static_cast<size_t>(C.Id) == ByCompId.size() &&
         "spawn ids must be dense");
  ByCompId.push_back(Scripts ? Scripts(C) : nullptr);
  if (ByCompId.back())
    ByCompId.back()->onStart();
}

ComponentScript *Runtime::script(int64_t Id) {
  if (Id < 0 || static_cast<size_t>(Id) >= ByCompId.size())
    return nullptr;
  return ByCompId[Id].get();
}

void Runtime::start() {
  EffectHooks Hooks;
  Hooks.OnCall = [this](const std::string &Fn,
                        const std::vector<Value> &Args) {
    return Calls.invoke(Fn, Args);
  };
  Hooks.OnSpawn = [this](const ComponentInstance &C) { attachScript(C); };
  Hooks.OnSend = [this](const ComponentInstance &To, const Message &M) {
    if (ComponentScript *S = script(To.Id))
      S->onMessage(M);
  };
  Eval.runInit(St, Hooks);
}

bool Runtime::step() {
  // Select a ready component uniformly at random — the scheduler's
  // nondeterminism, which the refinement tests deliberately exercise.
  std::vector<int64_t> Ready;
  for (size_t I = 0; I < ByCompId.size(); ++I)
    if (ByCompId[I] && ByCompId[I]->ready())
      Ready.push_back(static_cast<int64_t>(I));
  if (Ready.empty())
    return false;
  int64_t Chosen = Ready[Rand.below(Ready.size())];
  Message M = ByCompId[Chosen]->takeRequest();

  EffectHooks Hooks;
  Hooks.OnCall = [this](const std::string &Fn,
                        const std::vector<Value> &Args) {
    return Calls.invoke(Fn, Args);
  };
  Hooks.OnSpawn = [this](const ComponentInstance &C) { attachScript(C); };
  Hooks.OnSend = [this](const ComponentInstance &To, const Message &Msg) {
    if (ComponentScript *S = script(To.Id))
      S->onMessage(Msg);
  };
  Eval.runExchange(St, Chosen, M, Hooks);

  if (Monitor && !Bad) {
    for (const Property &Prop : P.Properties) {
      if (!Prop.isTrace())
        continue;
      if (auto V = checkTraceProperty(St.Tr, Prop.traceProp())) {
        Bad = V;
        break;
      }
    }
  }
  return true;
}

size_t Runtime::run(size_t MaxSteps) {
  size_t Steps = 0;
  while (Steps < MaxSteps && step())
    ++Steps;
  return Steps;
}

} // namespace reflex
