//===- parser/token.h - Reflex tokens ---------------------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds of the Reflex surface syntax. The paper shipped a Python
/// frontend translating concrete syntax to the deeply embedded Coq AST;
/// this reproduction implements the frontend in C++ (lexer + recursive
/// descent parser).
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_PARSER_TOKEN_H
#define REFLEX_PARSER_TOKEN_H

#include "support/source_loc.h"

#include <cstdint>
#include <string>

namespace reflex {

enum class TokKind : uint8_t {
  // Literals and identifiers.
  Ident,
  Number,
  String,
  Underscore,

  // Keywords.
  KwProgram,
  KwComponent,
  KwMessage,
  KwVar,
  KwInit,
  KwHandler,
  KwProperty,
  KwForall,
  KwNoninterference,
  KwHigh,
  KwSend,
  KwSpawn,
  KwCall,
  KwLookup,
  KwAs,
  KwIf,
  KwElse,
  KwNop,
  KwSender,
  KwTrue,
  KwFalse,

  // Punctuation and operators.
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Colon,
  Dot,
  Equal,    // =
  Bind,     // <-
  FatArrow, // =>
  EqEq,
  NotEq,
  AndAnd,
  OrOr,
  Bang,
  Plus,
  Minus,
  Less,
  LessEq,
  Greater,
  GreaterEq,

  Eof,
  Error,
};

const char *tokKindName(TokKind K);

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;   // identifier name or decoded string literal
  int64_t NumVal = 0; // Number only
  SourceLoc Loc;

  bool is(TokKind K) const { return Kind == K; }
};

} // namespace reflex

#endif // REFLEX_PARSER_TOKEN_H
