//===- parser/parser.h - Reflex parser --------------------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the Reflex surface syntax. Produces an
/// unvalidated Program; run ast/validate.h next (the parser resolves
/// nothing — name resolution, typing, and the pattern disciplines all live
/// in the validator, mirroring how the paper's frontend defers to the Coq
/// embedding's dependent types).
///
/// Grammar sketch (see README.md for the full reference):
///
///   program    := "program" IDENT ";" decl*
///   decl       := component | message | var | init | handler | property
///   component  := "component" IDENT STRING ("{" field ("," field)* "}")? ";"
///   message    := "message" IDENT "(" types? ")" ";"
///   var        := "var" IDENT ":" type "=" literal ";"
///   init       := "init" block
///   handler    := "handler" IDENT "=>" IDENT "(" idents? ")" block
///   property   := "property" IDENT ":" (forall)? (tracebody | nibody) ";"
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_PARSER_PARSER_H
#define REFLEX_PARSER_PARSER_H

#include "ast/program.h"
#include "support/diagnostics.h"

#include <string_view>

namespace reflex {

/// Parses \p Source into a Program. Returns nullptr if any syntax error
/// was reported to \p Diags. The result is unvalidated; callers must run
/// validateProgram() before handing it to the prover or interpreter.
ProgramPtr parseProgram(std::string_view Source, DiagnosticEngine &Diags);

} // namespace reflex

#endif // REFLEX_PARSER_PARSER_H
